// Worker-count scaling curves for the parallel mapping kernels. Each
// benchmark fans the same figure workload over workers ∈ {1, 2, 4, 8} so
// `scripts/bench_parallel.sh` can record BENCH_parallel.json and
// `verify.sh bench-smoke` can gate serial-vs-parallel regressions. Results
// are bit-identical at every worker count (see the worker-invariance suite);
// only wall clock may move.
package bioschedsim_test

import (
	"flag"
	"fmt"
	"testing"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"
)

// benchWorkers bounds the kernel pool for every scheduleOnly bench:
//
//	go test . -bench Fig5a -args -workers=4
//
// 0 means GOMAXPROCS, matching the sched.WorkerTunable convention.
var benchWorkers = flag.Int("workers", 0, "worker pool bound for WorkerTunable schedulers (0 = GOMAXPROCS)")

// parallelAlgorithms is the set with Traits.Parallel kernels on the
// mapping-decision hot path (ga is covered by its own package benches).
var parallelAlgorithms = []string{"aco", "hbo", "rbs"}

var workerCurve = []int{1, 2, 4, 8}

func benchParallelSchedule(b *testing.B, scenario *workload.Scenario, name string, workers int) {
	b.Helper()
	scheduler, err := sched.New(name, sched.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := scenario.Context()
		if _, err := scheduler.Schedule(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelFig5a sweeps the homogeneous 20x2000 scheduling-time
// workload (Fig. 5a) across worker counts.
func BenchmarkParallelFig5a(b *testing.B) {
	scenario := homScenario(b, 20, 2000)()
	for _, alg := range parallelAlgorithms {
		for _, w := range workerCurve {
			b.Run(fmt.Sprintf("%s/workers-%d", alg, w), func(b *testing.B) {
				benchParallelSchedule(b, scenario, alg, w)
			})
		}
	}
}

// BenchmarkParallelFig6b sweeps the heterogeneous 50x500 scheduling-time
// workload (Fig. 6b) across worker counts.
func BenchmarkParallelFig6b(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	for _, alg := range parallelAlgorithms {
		for _, w := range workerCurve {
			b.Run(fmt.Sprintf("%s/workers-%d", alg, w), func(b *testing.B) {
				benchParallelSchedule(b, scenario, alg, w)
			})
		}
	}
}

// BenchmarkParallelPaperScale is the paper-scale smoke point: 10k VMs x
// 100k cloudlets, homogeneous (the fleet the paper sizes its largest
// tables against). One mapping decision per iteration — run it via
// scripts/bench_parallel.sh with -benchtime=1x; rbs and hbo only, since
// ACO's O(ants*n*m) construction is not a single-smoke-point workload.
func BenchmarkParallelPaperScale(b *testing.B) {
	scenario := homScenario(b, 10000, 100000)()
	for _, alg := range []string{"hbo", "rbs"} {
		for _, w := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", alg, w), func(b *testing.B) {
				benchParallelSchedule(b, scenario, alg, w)
			})
		}
	}
}
