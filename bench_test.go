// Package bioschedsim_test holds the repository-level benchmark harness:
// one benchmark per paper table and figure (see DESIGN.md's per-experiment
// index) plus the ablation benches. Benchmarks run scaled-down instances of
// the exact experiment code paths; `cloudsched figure <id>` regenerates the
// full curves.
package bioschedsim_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bioschedsim/internal/aco"
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/elastic"
	"bioschedsim/internal/hbo"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/online"
	"bioschedsim/internal/rbs"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"

	_ "bioschedsim/internal/experiments" // links every scheduler
)

// paperAlgorithms is the comparison set of the paper's figures.
var paperAlgorithms = []string{"aco", "base", "hbo", "rbs"}

// scheduleOnly benches just the mapping decision (Figs. 5, 6b). The
// -workers flag (see bench_parallel_test.go) bounds the kernel pool of
// WorkerTunable schedulers; results are bit-identical at every setting.
func scheduleOnly(b *testing.B, scenario *workload.Scenario, name string) {
	b.Helper()
	scheduler, err := sched.New(name, sched.WithWorkers(*benchWorkers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := scenario.Context()
		if _, err := scheduler.Schedule(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// endToEnd benches schedule + simulate + metrics (Figs. 4, 6a/6c/6d).
func endToEnd(b *testing.B, mk func() *workload.Scenario, name string) {
	b.Helper()
	scheduler, err := sched.New(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario := mk()
		ctx := scenario.Context()
		start := time.Now()
		assignments, err := scheduler.Schedule(ctx)
		schedTime := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		cls, vms := sched.Split(assignments)
		res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			b.Fatal(err)
		}
		rep := metrics.Collect(name, res.Finished, scenario.Env.VMs, schedTime)
		if rep.SimTime <= 0 {
			b.Fatal("empty report")
		}
	}
}

func homScenario(b *testing.B, vms, cloudlets int) func() *workload.Scenario {
	b.Helper()
	return func() *workload.Scenario {
		s, err := workload.Homogeneous(vms, cloudlets, 42)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
}

func hetScenario(b *testing.B, vms, cloudlets int) func() *workload.Scenario {
	b.Helper()
	return func() *workload.Scenario {
		s, err := workload.Heterogeneous(vms, cloudlets, 4, 42)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
}

// --- Figure 4: homogeneous simulation time ---------------------------------

func BenchmarkFig4a_HomogeneousSimTime(b *testing.B) {
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { endToEnd(b, homScenario(b, 20, 2000), alg) })
	}
}

func BenchmarkFig4b_HomogeneousSimTimeLarge(b *testing.B) {
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { endToEnd(b, homScenario(b, 180, 2000), alg) })
	}
}

// --- Figure 5: homogeneous scheduling time ---------------------------------

func BenchmarkFig5a_HomogeneousSchedTime(b *testing.B) {
	scenario := homScenario(b, 20, 2000)()
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { scheduleOnly(b, scenario, alg) })
	}
}

func BenchmarkFig5b_HomogeneousSchedTimeLarge(b *testing.B) {
	scenario := homScenario(b, 180, 2000)()
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { scheduleOnly(b, scenario, alg) })
	}
}

// --- Figure 6: heterogeneous panels -----------------------------------------

func BenchmarkFig6a_HeterogeneousSimTime(b *testing.B) {
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { endToEnd(b, hetScenario(b, 50, 500), alg) })
	}
}

func BenchmarkFig6b_HeterogeneousSchedTime(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { scheduleOnly(b, scenario, alg) })
	}
}

func BenchmarkFig6c_HeterogeneousImbalance(b *testing.B) {
	// Same end-to-end path; the imbalance metric itself is measured below.
	for _, alg := range paperAlgorithms {
		b.Run(alg, func(b *testing.B) { endToEnd(b, hetScenario(b, 30, 300), alg) })
	}
}

func BenchmarkFig6d_HeterogeneousCost(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	scheduler, err := sched.New("hbo")
	if err != nil {
		b.Fatal(err)
	}
	assignments, err := scheduler.Schedule(scenario.Context())
	if err != nil {
		b.Fatal(err)
	}
	cls, _ := sched.Split(assignments)
	for i, a := range assignments {
		cls[i].VM = a.VM
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cloud.TotalProcessingCost(cls) <= 0 {
			b.Fatal("cost must be positive")
		}
	}
}

// --- Tables ------------------------------------------------------------------

func BenchmarkTableI_HBOCostModel(b *testing.B) {
	scenario := hetScenario(b, 50, 1)()
	vm := scenario.Env.VMs[0]
	c := scenario.Cloudlets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cloud.ProcessingCost(c, vm) < 0 {
			b.Fatal("negative cost")
		}
	}
}

func BenchmarkTableII_ACOSingleIteration(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	cfg := aco.DefaultConfig()
	cfg.Iterations = 1
	s := aco.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(scenario.Context()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIIandIV_HomogeneousGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Homogeneous(100, 1000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVtoVII_HeterogeneousGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Heterogeneous(100, 1000, 4, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationACOParams(b *testing.B) {
	scenario := hetScenario(b, 30, 300)()
	for _, tc := range []struct {
		name string
		cfg  aco.Config
	}{
		{"table2", aco.DefaultConfig()},
		{"alpha-heavy", func() aco.Config { c := aco.DefaultConfig(); c.Alpha, c.Beta = 0.99, 0.01; return c }()},
		{"few-ants", func() aco.Config { c := aco.DefaultConfig(); c.Ants = 5; return c }()},
		{"one-iter", func() aco.Config { c := aco.DefaultConfig(); c.Iterations = 1; return c }()},
	} {
		s := aco.New(tc.cfg)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(scenario.Context()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationHBOFacLB(b *testing.B) {
	scenario := hetScenario(b, 30, 300)()
	for _, tc := range []struct {
		name  string
		facLB float64
	}{
		{"half-fair", 5}, {"fair", 10}, {"default-1.5x", 15}, {"loose-3x", 30},
	} {
		s := hbo.New(hbo.Config{Groups: 2, FacLB: tc.facLB})
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(scenario.Context()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationRBSGroups(b *testing.B) {
	scenario := hetScenario(b, 32, 320)()
	for _, q := range []int{1, 2, 4, 8, 16} {
		s := rbs.New(rbs.Config{Groups: q})
		b.Run(fmt.Sprintf("groups-%02d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(scenario.Context()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtensionSchedulers(b *testing.B) {
	scenario := hetScenario(b, 30, 300)()
	for _, alg := range []string{"pso", "ga", "hybrid", "greedy", "minmin", "maxmin", "costpriority", "random"} {
		b.Run(alg, func(b *testing.B) { scheduleOnly(b, scenario, alg) })
	}
}

// --- Extension subsystems --------------------------------------------------------

func BenchmarkExtOnlinePolicies(b *testing.B) {
	type mk struct {
		name  string
		build func(rnd *rand.Rand) online.Scheduler
	}
	policies := []mk{
		{"rr", func(*rand.Rand) online.Scheduler { return online.NewRoundRobin() }},
		{"least", func(*rand.Rand) online.Scheduler { return online.NewLeastLoaded() }},
		{"eft", func(*rand.Rand) online.Scheduler { return online.NewEarliestFinish() }},
		{"aco", func(r *rand.Rand) online.Scheduler { return online.NewACO(r) }},
		{"hbo", func(r *rand.Rand) online.Scheduler { return online.NewHBO(r) }},
		{"rbs", func(r *rand.Rand) online.Scheduler { return online.NewRBS(r) }},
		{"2choice", func(r *rand.Rand) online.Scheduler { return online.NewTwoChoices(r) }},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scenario := hetScenario(b, 20, 200)()
				arrivals, err := workload.PoissonArrivals(200, 8, 42)
				if err != nil {
					b.Fatal(err)
				}
				policy := p.build(rand.New(rand.NewSource(1)))
				if _, err := online.Run(scenario.Env, policy, scenario.Cloudlets, arrivals, cloud.TimeSharedFactory); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtFailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenario := hetScenario(b, 10, 200)()
		eng := sim.NewEngine()
		broker := cloud.NewBroker(eng, scenario.Env, cloud.TimeSharedFactory)
		for j, c := range scenario.Cloudlets {
			broker.Submit(c, scenario.Env.VMs[j%10])
		}
		for v := 0; v < 3; v++ {
			if err := broker.FailVM(scenario.Env.VMs[v], float64(v+1), cloud.LeastLoadedFailover); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		if len(broker.Finished())+len(broker.Lost()) != 200 {
			b.Fatal("work unaccounted for")
		}
	}
}

func BenchmarkExtAutoscaler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scenario := homScenario(b, 4, 400)()
		eng := sim.NewEngine()
		broker := cloud.NewBroker(eng, scenario.Env, cloud.TimeSharedFactory)
		as, err := elastic.New(broker, elastic.Policy{
			ScaleUpLoad: 4, ScaleDownLoad: 1, Interval: 1, MinVMs: 2, MaxVMs: 32,
			Template: elastic.VMTemplate{MIPS: 1000, PEs: 1, RAM: 512, Bw: 500, Size: 5000},
		}, cloud.TimeSharedFactory, 1000)
		if err != nil {
			b.Fatal(err)
		}
		for j, c := range scenario.Cloudlets {
			broker.Submit(c, scenario.Env.VMs[j%4])
		}
		as.Start()
		eng.Run()
	}
}

func BenchmarkExtNetworkTopologyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := cloud.NewNetworkTopology()
		names := make([]string, 64)
		for j := range names {
			names[j] = fmt.Sprintf("n%d", j)
			topo.AddNode(names[j])
		}
		for j := 1; j < len(names); j++ {
			if err := topo.AddLink(names[j-1], names[j], 0.001, 1000); err != nil {
				b.Fatal(err)
			}
		}
		topo.Build()
		if d, _ := topo.Delay(names[0], names[63]); d <= 0 {
			b.Fatal("bad delay")
		}
	}
}

func BenchmarkExtHostEnergy(b *testing.B) {
	scenario := hetScenario(b, 20, 2000)()
	assignments, err := sched.NewRoundRobin().Schedule(scenario.Context())
	if err != nil {
		b.Fatal(err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
	if err != nil {
		b.Fatal(err)
	}
	model := cloud.LinearPower{Idle: 90, Max: 250}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cloud.HostEnergy(scenario.Env, res.Finished, model); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDeadlineScheduler(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	if err := workload.AssignDeadlines(scenario.Cloudlets, scenario.Env.VMs, 8); err != nil {
		b.Fatal(err)
	}
	s, err := sched.New("deadline")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(scenario.Context()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Objective-evaluation layer kernels ------------------------------------------

// BenchmarkObjectiveDense measures a full Eq. 8 evaluation against the
// materialized matrix on the heterogeneous fleet, where every VM is its own
// exec class (K = m, no compression).
func BenchmarkObjectiveDense(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	ctx := scenario.Context()
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	rnd := rand.New(rand.NewSource(1))
	pos := make([]int, mx.N())
	for i := range pos {
		pos[i] = rnd.Intn(mx.M())
	}
	busy := make([]float64, mx.M())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mx.MakespanOf(pos, busy) <= 0 {
			b.Fatal("bad makespan")
		}
	}
}

// BenchmarkObjectiveCompressed is the same evaluation on the homogeneous
// fleet, where the matrix compresses to a single VM class (K = 1).
func BenchmarkObjectiveCompressed(b *testing.B) {
	scenario := homScenario(b, 180, 2000)()
	ctx := scenario.Context()
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	if mx.K() != 1 {
		b.Fatalf("homogeneous fleet did not compress: K=%d", mx.K())
	}
	rnd := rand.New(rand.NewSource(1))
	pos := make([]int, mx.N())
	for i := range pos {
		pos[i] = rnd.Intn(mx.M())
	}
	busy := make([]float64, mx.M())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mx.MakespanOf(pos, busy) <= 0 {
			b.Fatal("bad makespan")
		}
	}
}

// BenchmarkObjectiveDelta measures the O(1) single-cloudlet reassignment of
// the incremental Evaluator — the per-move cost inside metaheuristic loops,
// to be compared against the O(n+m) full evaluations above.
func BenchmarkObjectiveDelta(b *testing.B) {
	scenario := hetScenario(b, 50, 500)()
	ctx := scenario.Context()
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	rnd := rand.New(rand.NewSource(1))
	pos := make([]int, mx.N())
	for i := range pos {
		pos[i] = rnd.Intn(mx.M())
	}
	e := objective.NewEvaluator(mx, false)
	e.SetAll(pos)
	moves := make([][2]int, 4096)
	for k := range moves {
		moves[k] = [2]int{rnd.Intn(mx.N()), rnd.Intn(mx.M())}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mv := moves[i&4095]
		e.Move(mv[0], mv[1])
		if e.Makespan() <= 0 {
			b.Fatal("bad makespan")
		}
	}
}

// --- Metric kernels -------------------------------------------------------------

func BenchmarkMetricEq12SimulationTime(b *testing.B) {
	scenario := hetScenario(b, 20, 2000)()
	assignments, err := sched.NewRoundRobin().Schedule(scenario.Context())
	if err != nil {
		b.Fatal(err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if metrics.SimulationTime(res.Finished) <= 0 {
			b.Fatal("bad sim time")
		}
	}
}

func BenchmarkMetricEq13TimeImbalance(b *testing.B) {
	scenario := hetScenario(b, 20, 2000)()
	assignments, err := sched.NewRoundRobin().Schedule(scenario.Context())
	if err != nil {
		b.Fatal(err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if metrics.TimeImbalance(res.Finished) < 0 {
			b.Fatal("bad imbalance")
		}
	}
}
