// Command benchobj assembles BENCH_objective.json from `go test -bench`
// logs of the objective-evaluation layer, recording every benchmark with
// kernel-on and kernel-off columns side by side.
//
// Three logs feed it:
//
//   - -kernels: the internal/objective/kernel micro-benchmarks, whose
//     sub-benchmark names already carry the /kernel=on|off dispatch leaf;
//   - -on / -off: the same macro benchmark selection run twice, once with
//     the dispatch layer picking the fastest kernel and once under
//     CLOUDSCHED_NOSIMD=1 (scalar reference).
//
// The historical "schedulers" and "acceptance" sections of an existing
// record (-base) are preserved verbatim — they compare against the growth
// seed, which re-running today's benches cannot reproduce.
//
// Usage (see scripts/bench_objective.sh):
//
//	benchobj -kernels micro.log -on on.log -off off.log \
//	         -base BENCH_objective.json -out BENCH_objective.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// row accumulates the two dispatch columns of one benchmark.
type row struct {
	on, off float64
}

type environment struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Go     string `json:"go"`
}

// normalizeName strips the trailing -GOMAXPROCS suffix the bench runner
// appends when GOMAXPROCS != 1. The only digit-final leaves in the
// objective selection are that suffix, so a bare strip is unambiguous
// (kernel=on|off leaves never end in a digit).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// parseLog reads one bench log into name -> ns/op, folding environment
// header lines into env as they appear.
func parseLog(r io.Reader, env *environment) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			env.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			env.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			env.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		out[normalizeName(m[1])] = ns
	}
	return out, sc.Err()
}

// mergeKernelLog folds a micro-benchmark log whose names end in a
// /kernel=on|off leaf into per-benchmark rows.
func mergeKernelLog(results map[string]float64, rows map[string]*row) {
	for name, ns := range results {
		base, mode, ok := splitKernelLeaf(name)
		if !ok {
			continue
		}
		r := rows[base]
		if r == nil {
			r = &row{}
			rows[base] = r
		}
		if mode == "on" {
			r.on = ns
		} else {
			r.off = ns
		}
	}
}

func splitKernelLeaf(name string) (base, mode string, ok bool) {
	switch {
	case strings.HasSuffix(name, "/kernel=on"):
		return strings.TrimSuffix(name, "/kernel=on"), "on", true
	case strings.HasSuffix(name, "/kernel=off"):
		return strings.TrimSuffix(name, "/kernel=off"), "off", true
	}
	return "", "", false
}

// mergeOnOffLogs pairs the two macro logs by benchmark name.
func mergeOnOffLogs(on, off map[string]float64, rows map[string]*row) {
	for name, ns := range on {
		r := rows[name]
		if r == nil {
			r = &row{}
			rows[name] = r
		}
		r.on = ns
	}
	for name, ns := range off {
		r := rows[name]
		if r == nil {
			r = &row{}
			rows[name] = r
		}
		r.off = ns
	}
}

// record builds the kernels section: both columns plus the off/on ratio,
// so a kernel that loses to scalar reads as a speedup below 1x rather
// than being hidden.
func record(rows map[string]*row) map[string]any {
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	out := map[string]any{}
	for _, n := range names {
		r := rows[n]
		entry := map[string]any{}
		if r.on > 0 {
			entry["kernel_on_ns_op"] = r.on
		}
		if r.off > 0 {
			entry["kernel_off_ns_op"] = r.off
		}
		if r.on > 0 && r.off > 0 {
			entry["speedup"] = fmt.Sprintf("%.2fx", r.off/r.on)
		}
		out[n] = entry
	}
	return out
}

func run(kernelsPath, onPath, offPath, basePath, outPath, desc string, now time.Time) error {
	env := environment{Cores: runtime.GOMAXPROCS(0), Go: runtime.Version()}
	rows := map[string]*row{}

	if kernelsPath != "" {
		results, err := parseFile(kernelsPath, &env)
		if err != nil {
			return err
		}
		mergeKernelLog(results, rows)
	}
	var on, off map[string]float64
	var err error
	if onPath != "" {
		if on, err = parseFile(onPath, &env); err != nil {
			return err
		}
	}
	if offPath != "" {
		if off, err = parseFile(offPath, &env); err != nil {
			return err
		}
	}
	mergeOnOffLogs(on, off, rows)
	if len(rows) == 0 {
		return fmt.Errorf("no benchmark results found in inputs")
	}

	rec := map[string]any{}
	if basePath != "" {
		if buf, err := os.ReadFile(basePath); err == nil {
			var base map[string]any
			if err := json.Unmarshal(buf, &base); err != nil {
				return fmt.Errorf("base record %s: %v", basePath, err)
			}
			// Historical seed comparisons cannot be re-measured; carry
			// them forward untouched.
			for _, k := range []string{"schedulers", "acceptance"} {
				if v, ok := base[k]; ok {
					rec[k] = v
				}
			}
		}
	}
	rec["description"] = desc
	rec["date"] = now.Format("2006-01-02")
	rec["environment"] = env
	rec["kernels"] = record(rows)

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d kernel rows)\n", outPath, len(rows))
	return nil
}

func parseFile(path string, env *environment) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseLog(f, env)
}

func main() {
	kernels := flag.String("kernels", "", "bench log whose names carry /kernel=on|off leaves (internal/objective/kernel)")
	on := flag.String("on", "", "macro bench log with the kernel dispatch layer active")
	off := flag.String("off", "", "macro bench log run under CLOUDSCHED_NOSIMD=1")
	base := flag.String("base", "", "existing record whose schedulers/acceptance sections are preserved")
	out := flag.String("out", "BENCH_objective.json", "output path")
	desc := flag.String("desc", "", "description embedded in the record")
	flag.Parse()
	if *kernels == "" && *on == "" && *off == "" {
		fmt.Fprintln(os.Stderr, "benchobj: nothing to do; pass -kernels and/or -on/-off logs")
		os.Exit(2)
	}
	if err := run(*kernels, *on, *off, *base, *out, *desc, time.Now()); err != nil {
		fmt.Fprintln(os.Stderr, "benchobj:", err)
		os.Exit(1)
	}
}
