package main

import (
	"strings"
	"testing"
)

const microLog = `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCumSum/kernel=on         	    6976	      1457 ns/op
BenchmarkCumSum/kernel=off        	    9540	      1286 ns/op
BenchmarkMaxIndexed/kernel=on-4   	  974666	        13.00 ns/op
BenchmarkMaxIndexed/kernel=off-4  	  739704	        14.94 ns/op
PASS
`

func TestMergeKernelLogPairsDispatchLeaves(t *testing.T) {
	var env environment
	results, err := parseLog(strings.NewReader(microLog), &env)
	if err != nil {
		t.Fatal(err)
	}
	if env.Goos != "linux" || !strings.Contains(env.CPU, "Xeon") {
		t.Fatalf("environment header not parsed: %+v", env)
	}
	rows := map[string]*row{}
	mergeKernelLog(results, rows)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// GOMAXPROCS-suffixed and bare leaves both pair up.
	if r := rows["BenchmarkMaxIndexed"]; r == nil || r.on != 13.00 || r.off != 14.94 {
		t.Fatalf("MaxIndexed row = %+v", rows["BenchmarkMaxIndexed"])
	}
	if r := rows["BenchmarkCumSum"]; r == nil || r.on != 1457 || r.off != 1286 {
		t.Fatalf("CumSum row = %+v", rows["BenchmarkCumSum"])
	}
}

func TestRecordEmitsBothColumnsAndHonestRatio(t *testing.T) {
	rows := map[string]*row{
		"BenchmarkCumSum": {on: 2000, off: 1000}, // kernel LOSES: ratio below 1x
		"BenchmarkOnOnly": {on: 500},
	}
	rec := record(rows)
	cs := rec["BenchmarkCumSum"].(map[string]any)
	if cs["kernel_on_ns_op"] != 2000.0 || cs["kernel_off_ns_op"] != 1000.0 {
		t.Fatalf("columns = %v", cs)
	}
	if cs["speedup"] != "0.50x" {
		t.Fatalf("losing kernel must read as sub-1x speedup, got %v", cs["speedup"])
	}
	oo := rec["BenchmarkOnOnly"].(map[string]any)
	if _, there := oo["speedup"]; there {
		t.Fatal("half-measured row must not fabricate a ratio")
	}
}

func TestMergeOnOffLogsPairsByName(t *testing.T) {
	rows := map[string]*row{}
	mergeOnOffLogs(
		map[string]float64{"BenchmarkObjectiveDense": 550, "BenchmarkObjectiveDelta": 10},
		map[string]float64{"BenchmarkObjectiveDense": 600},
		rows,
	)
	if r := rows["BenchmarkObjectiveDense"]; r.on != 550 || r.off != 600 {
		t.Fatalf("Dense row = %+v", r)
	}
	if r := rows["BenchmarkObjectiveDelta"]; r.on != 10 || r.off != 0 {
		t.Fatalf("Delta row = %+v", r)
	}
}
