// Command benchsmoke parses `go test -bench` output for the worker-count
// scaling benchmarks (bench_parallel_test.go) and either gates on the
// serial-vs-parallel comparison or emits a BENCH_parallel.json record.
//
// Usage:
//
//	go test . -run xxx -bench ParallelFig -benchtime 200ms | benchsmoke -gate
//	go test . -run xxx -bench Parallel | benchsmoke -json BENCH_parallel.json
//
// The gate fails when any benchmark family's best parallel run (minimum
// ns/op over workers > 1) is more than -max-slowdown times its workers=1
// run — a real serialization bug slows every width, while one noisy sample
// cannot trip the smoke. Only large configs are gated: families whose
// serial run is under -min-serial-ns are micro-scale and noise-dominated
// at smoke benchtimes, so they are reported but not judged. On a
// single-core host a parallel pool cannot beat serial, so the gate only
// bounds overhead there and says so; on multicore it doubles as a scaling
// regression tripwire.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkParallelFig5a/aco/workers-1-4   529   98729 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// result is one parsed benchmark line.
type result struct {
	Name    string  // normalized: trailing -GOMAXPROCS suffix stripped
	NsPerOp float64 `json:"ns_op"`
}

// environment echoes the header lines of the bench output plus toolchain
// facts, so the JSON record is self-describing like BENCH_objective.json.
type environment struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Go     string `json:"go"`
}

// curve is the worker-count sweep of one benchmark family
// (e.g. BenchmarkParallelFig5a/aco).
type curve struct {
	Family  string
	NsPerOp map[int]float64 // workers -> ns/op
}

// parseBench reads `go test -bench` output, returning normalized results
// and whatever environment header lines were present.
func parseBench(r io.Reader) ([]result, environment, error) {
	env := environment{Cores: runtime.GOMAXPROCS(0), Go: runtime.Version()}
	var out []result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			env.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			env.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			env.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, env, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		out = append(out, result{Name: normalizeName(m[1]), NsPerOp: ns})
	}
	return out, env, sc.Err()
}

// gomaxprocsSuffix is the "-N" the bench runner appends to every name —
// but only when GOMAXPROCS != 1, so a trailing "-N" on a workers-K leaf is
// ambiguous and must be resolved against the leaf shape: "workers-1" on a
// single-core host has no suffix to strip, "workers-1-4" does.
var (
	gomaxprocsSuffix      = regexp.MustCompile(`-\d+$`)
	workersLeafWithSuffix = regexp.MustCompile(`(workers-\d+)-\d+$`)
	workersLeafNoSuffix   = regexp.MustCompile(`workers-\d+$`)
)

func normalizeName(name string) string {
	if loc := workersLeafWithSuffix.FindStringSubmatchIndex(name); loc != nil {
		return name[:loc[3]] // end of the workers-K group
	}
	if workersLeafNoSuffix.MatchString(name) {
		return name
	}
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// workersRun splits a normalized name into its family and worker count;
// ok is false for benchmarks without a /workers-K leaf. A trailing
// /kernel=on|off sub-benchmark (the objective-kernel dispatch dimension)
// is folded into the family, so each kernel mode forms its own curve;
// a kernel segment ahead of the workers leaf lands in the family via the
// greedy prefix match without any special casing.
var workersLeaf = regexp.MustCompile(`^(.+)/workers-(\d+)(/kernel=(?:on|off))?$`)

func workersRun(name string) (family string, workers int, ok bool) {
	m := workersLeaf.FindStringSubmatch(name)
	if m == nil {
		return "", 0, false
	}
	w, err := strconv.Atoi(m[2])
	if err != nil {
		return "", 0, false
	}
	return m[1] + m[3], w, true
}

// buildCurves groups /workers-K results into per-family sweeps, sorted by
// family name for stable output. Later duplicates overwrite earlier ones
// (go test repeats lines under -count).
func buildCurves(results []result) []curve {
	byFamily := map[string]map[int]float64{}
	for _, r := range results {
		family, w, ok := workersRun(r.Name)
		if !ok {
			continue
		}
		if byFamily[family] == nil {
			byFamily[family] = map[int]float64{}
		}
		byFamily[family][w] = r.NsPerOp
	}
	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		families = append(families, f)
	}
	sort.Strings(families)
	out := make([]curve, 0, len(families))
	for _, f := range families {
		out = append(out, curve{Family: f, NsPerOp: byFamily[f]})
	}
	return out
}

// widest returns the largest worker count in the curve.
func (c curve) widest() int {
	max := 0
	for w := range c.NsPerOp {
		if w > max {
			max = w
		}
	}
	return max
}

// gate compares each family's best parallel run (minimum ns/op over all
// workers > 1) against its workers=1 run. A genuine serialization
// regression slows every pool width, so the best-width comparison keeps
// full detection power while a single noisy sample at one width — routine
// at smoke benchtimes on micro-scale benches — cannot fail the gate. It
// returns one violation string per family whose best parallel run exceeds
// maxSlowdown x serial, and a note when the comparison is vacuous
// (single-core host, so only overhead is bounded). Families whose serial
// run is under minSerialNs are skipped — the per-op time is too small for
// a smoke benchtime to separate real regressions from timer noise — and
// counted in skipped.
func gate(curves []curve, maxSlowdown float64, cores int, minSerialNs float64) (violations []string, note string, skipped int) {
	if cores == 1 {
		note = "GOMAXPROCS=1: parallel pools cannot beat serial here; gating only bounds pool overhead"
	}
	for _, c := range curves {
		serial, ok := c.NsPerOp[1]
		if !ok || serial <= 0 {
			violations = append(violations, fmt.Sprintf("%s: no workers-1 baseline in input", c.Family))
			continue
		}
		if serial < minSerialNs {
			skipped++
			continue
		}
		bestW, bestNs := 0, 0.0
		for w, ns := range c.NsPerOp {
			if w > 1 && (bestW == 0 || ns < bestNs) {
				bestW, bestNs = w, ns
			}
		}
		if bestW == 0 {
			continue
		}
		if ratio := bestNs / serial; ratio > maxSlowdown {
			violations = append(violations,
				fmt.Sprintf("%s: every parallel width is slower than workers-1; best is workers-%d at %.2fx (%.0f vs %.0f ns/op, limit %.2fx)",
					c.Family, bestW, ratio, bestNs, serial, maxSlowdown))
		}
	}
	return violations, note, skipped
}

// jsonRecord mirrors the BENCH_objective.json layout: a self-describing
// header plus per-family worker curves with the speedup at the widest pool.
func jsonRecord(curves []curve, env environment, desc string, now time.Time) map[string]any {
	families := map[string]any{}
	for _, c := range curves {
		entry := map[string]any{}
		workers := make([]int, 0, len(c.NsPerOp))
		for w := range c.NsPerOp {
			workers = append(workers, w)
		}
		sort.Ints(workers)
		for _, w := range workers {
			entry[fmt.Sprintf("workers_%d_ns_op", w)] = c.NsPerOp[w]
		}
		if serial, ok := c.NsPerOp[1]; ok {
			if w := c.widest(); w > 1 && c.NsPerOp[w] > 0 {
				entry[fmt.Sprintf("speedup_at_%d", w)] = fmt.Sprintf("%.2fx", serial/c.NsPerOp[w])
			}
		}
		families[c.Family] = entry
	}
	return map[string]any{
		"description": desc,
		"date":        now.Format("2006-01-02"),
		"environment": env,
		"curves":      families,
	}
}

func run(in io.Reader, out io.Writer, gateMode bool, maxSlowdown, minSerialNs float64, jsonPath, desc string) error {
	results, env, err := parseBench(in)
	if err != nil {
		return err
	}
	curves := buildCurves(results)
	if len(curves) == 0 {
		return fmt.Errorf("no /workers-K benchmark results found in input")
	}
	if jsonPath != "" {
		rec := jsonRecord(curves, env, desc, time.Now())
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d families)\n", jsonPath, len(curves))
	}
	if gateMode {
		violations, note, skipped := gate(curves, maxSlowdown, env.Cores, minSerialNs)
		if note != "" {
			fmt.Fprintf(out, "note: %s\n", note)
		}
		if skipped > 0 {
			fmt.Fprintf(out, "note: %d micro-scale families below %.0f ns/op serial not gated (noise-dominated at smoke benchtimes)\n", skipped, minSerialNs)
		}
		for _, v := range violations {
			fmt.Fprintf(out, "FAIL %s\n", v)
		}
		if len(violations) > 0 {
			return fmt.Errorf("%d worker-scaling violation(s)", len(violations))
		}
		fmt.Fprintf(out, "ok: %d families gated within %.2fx serial (%d skipped)\n", len(curves)-skipped, maxSlowdown, skipped)
	}
	return nil
}

func main() {
	gateMode := flag.Bool("gate", false, "fail when a family's best parallel width exceeds -max-slowdown x its serial run")
	maxSlowdown := flag.Float64("max-slowdown", 1.10, "gate threshold: best parallel ns/op may not exceed this multiple of serial")
	minSerialNs := flag.Float64("min-serial-ns", 1e6, "only gate families whose serial run is at least this many ns/op (smaller ones are noise-dominated smoke samples)")
	jsonPath := flag.String("json", "", "write a BENCH_parallel.json-style record to this path")
	desc := flag.String("desc", "Worker-count scaling of the parallel mapping kernels (bench_parallel_test.go)", "description embedded in the JSON record")
	flag.Parse()
	if !*gateMode && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "benchsmoke: nothing to do; pass -gate and/or -json PATH")
		os.Exit(2)
	}
	if err := run(os.Stdin, os.Stdout, *gateMode, *maxSlowdown, *minSerialNs, *jsonPath, *desc); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}
