package main

import (
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bioschedsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelFig5a/aco/workers-1-4         	      15	   4108897 ns/op
BenchmarkParallelFig5a/aco/workers-2-4         	      28	   2101133 ns/op
BenchmarkParallelFig5a/aco/workers-8-4         	      90	   1050000 ns/op
BenchmarkParallelFig5a/rbs/workers-1-4         	    4276	     14248 ns/op
BenchmarkParallelFig5a/rbs/workers-8-4         	    4100	     14900 ns/op
BenchmarkFig5a_HomogeneousSchedTime/aco-4      	     100	   9999999 ns/op
PASS
ok  	bioschedsim	0.200s
`

func TestParseBenchExtractsResultsAndEnvironment(t *testing.T) {
	results, env, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("parsed %d results, want 6", len(results))
	}
	// The -4 GOMAXPROCS suffix must be stripped from every name.
	if got := results[0].Name; got != "BenchmarkParallelFig5a/aco/workers-1" {
		t.Fatalf("name = %q", got)
	}
	if results[0].NsPerOp != 4108897 {
		t.Fatalf("ns/op = %v", results[0].NsPerOp)
	}
	if env.Goos != "linux" || env.Goarch != "amd64" || !strings.Contains(env.CPU, "Xeon") {
		t.Fatalf("environment header not parsed: %+v", env)
	}
}

// Single-core hosts emit no GOMAXPROCS suffix at all; workers-K leaves
// must survive normalization untouched there.
func TestParseBenchWithoutGomaxprocsSuffix(t *testing.T) {
	const singleCore = `goos: linux
BenchmarkParallelFig5a/aco/workers-1         	      15	   4108897 ns/op
BenchmarkParallelFig5a/aco/workers-8         	      15	   4100000 ns/op
`
	results, _, err := parseBench(strings.NewReader(singleCore))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	if got := results[0].Name; got != "BenchmarkParallelFig5a/aco/workers-1" {
		t.Fatalf("suffix-free workers leaf mangled to %q", got)
	}
	if len(buildCurves(results)) != 1 {
		t.Fatal("suffix-free results did not group into a curve")
	}
}

func TestWorkersRunSplitsFamilyAndCount(t *testing.T) {
	family, w, ok := workersRun("BenchmarkParallelFig6b/hbo/workers-4")
	if !ok || family != "BenchmarkParallelFig6b/hbo" || w != 4 {
		t.Fatalf("got (%q, %d, %v)", family, w, ok)
	}
	// Non-sweep benchmarks are excluded, not misparsed.
	if _, _, ok := workersRun("BenchmarkFig5a_HomogeneousSchedTime/aco"); ok {
		t.Fatal("non-sweep name matched")
	}
}

// The objective-kernel benchmarks carry a /kernel=on|off dispatch
// dimension. Before: plain workers leaves parse as they always did.
// After: the same families with a trailing kernel segment normalize
// (GOMAXPROCS suffix stripped, kernel mode kept) and group into one
// curve per kernel mode.
func TestWorkersRunToleratesKernelSuffix(t *testing.T) {
	before := map[string]struct {
		family  string
		workers int
	}{
		"BenchmarkParallelFig5a/aco/workers-1": {"BenchmarkParallelFig5a/aco", 1},
		"BenchmarkParallelFig5a/aco/workers-8": {"BenchmarkParallelFig5a/aco", 8},
	}
	after := map[string]struct {
		family  string
		workers int
	}{
		"BenchmarkParallelFig5a/aco/workers-1/kernel=on":  {"BenchmarkParallelFig5a/aco/kernel=on", 1},
		"BenchmarkParallelFig5a/aco/workers-8/kernel=on":  {"BenchmarkParallelFig5a/aco/kernel=on", 8},
		"BenchmarkParallelFig5a/aco/workers-1/kernel=off": {"BenchmarkParallelFig5a/aco/kernel=off", 1},
		// A kernel segment ahead of the workers leaf stays in the family.
		"BenchmarkNorms/kernel=off/workers-4": {"BenchmarkNorms/kernel=off", 4},
	}
	for name, want := range before {
		family, w, ok := workersRun(name)
		if !ok || family != want.family || w != want.workers {
			t.Fatalf("before-set %q parsed as (%q, %d, %v), want (%q, %d)", name, family, w, ok, want.family, want.workers)
		}
	}
	for name, want := range after {
		family, w, ok := workersRun(name)
		if !ok || family != want.family || w != want.workers {
			t.Fatalf("after-set %q parsed as (%q, %d, %v), want (%q, %d)", name, family, w, ok, want.family, want.workers)
		}
	}
}

// Full pipeline over kernel-suffixed bench output: names normalize with
// and without the GOMAXPROCS suffix, and the two kernel modes of one
// family gate as independent worker curves.
func TestParseBenchAndCurvesWithKernelDimension(t *testing.T) {
	const kernelOutput = `goos: linux
BenchmarkParallelFig5a/aco/workers-1/kernel=on-4    15	   4108897 ns/op
BenchmarkParallelFig5a/aco/workers-8/kernel=on-4    90	   1050000 ns/op
BenchmarkParallelFig5a/aco/workers-1/kernel=off-4   12	   5208897 ns/op
BenchmarkParallelFig5a/aco/workers-8/kernel=off-4   70	   1350000 ns/op
BenchmarkCumSum/kernel=on-4                       9000	    120000 ns/op
`
	results, _, err := parseBench(strings.NewReader(kernelOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Name; got != "BenchmarkParallelFig5a/aco/workers-1/kernel=on" {
		t.Fatalf("kernel leaf normalized to %q", got)
	}
	if got := results[4].Name; got != "BenchmarkCumSum/kernel=on" {
		t.Fatalf("workerless kernel bench normalized to %q", got)
	}
	curves := buildCurves(results)
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2 (one per kernel mode); workerless bench must be dropped", len(curves))
	}
	if curves[0].Family != "BenchmarkParallelFig5a/aco/kernel=off" || curves[1].Family != "BenchmarkParallelFig5a/aco/kernel=on" {
		t.Fatalf("families = %q, %q", curves[0].Family, curves[1].Family)
	}
	if got := curves[1].NsPerOp[8]; got != 1050000 {
		t.Fatalf("kernel=on workers-8 = %v", got)
	}
	// Suffix-free (GOMAXPROCS=1) kernel leaves survive normalization too.
	bare, _, err := parseBench(strings.NewReader("BenchmarkParallelFig5a/aco/workers-1/kernel=off    12	5208897 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := bare[0].Name; got != "BenchmarkParallelFig5a/aco/workers-1/kernel=off" {
		t.Fatalf("suffix-free kernel leaf mangled to %q", got)
	}
}

func TestBuildCurvesGroupsByFamily(t *testing.T) {
	results, _, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	curves := buildCurves(results)
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2 (aco, rbs); the non-sweep bench must be dropped", len(curves))
	}
	// Sorted by family name: aco before rbs.
	if curves[0].Family != "BenchmarkParallelFig5a/aco" {
		t.Fatalf("first family = %q", curves[0].Family)
	}
	if got := curves[0].NsPerOp[2]; got != 2101133 {
		t.Fatalf("aco workers-2 = %v", got)
	}
	if got := curves[0].widest(); got != 8 {
		t.Fatalf("widest = %d", got)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	curves := []curve{
		{Family: "f/aco", NsPerOp: map[int]float64{1: 1000, 8: 500}},  // speedup
		{Family: "f/rbs", NsPerOp: map[int]float64{1: 1000, 8: 1050}}, // 5% overhead, under 10%
	}
	violations, note, _ := gate(curves, 1.10, 4, 0)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if note != "" {
		t.Fatalf("multicore run produced a single-core note: %q", note)
	}
}

func TestGateFlagsSlowParallelRuns(t *testing.T) {
	curves := []curve{
		{Family: "f/hbo", NsPerOp: map[int]float64{1: 1000, 2: 1350, 8: 1200}}, // best width 20% slower
	}
	violations, _, _ := gate(curves, 1.10, 4, 0)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly 1", violations)
	}
	if !strings.Contains(violations[0], "f/hbo") || !strings.Contains(violations[0], "1.20x") {
		t.Fatalf("violation message lacks family/ratio: %q", violations[0])
	}
}

// One noisy width must not fail the gate: the comparison is against the
// best parallel width, since a real serialization bug slows all of them.
func TestGateToleratesSingleNoisyWidth(t *testing.T) {
	curves := []curve{
		{Family: "f/hbo", NsPerOp: map[int]float64{1: 1000, 2: 1020, 4: 990, 8: 1300}},
	}
	violations, _, _ := gate(curves, 1.10, 4, 0)
	if len(violations) != 0 {
		t.Fatalf("noisy widest width failed the gate: %v", violations)
	}
}

// Micro-scale families (serial below the floor) are skipped, not judged:
// at smoke benchtimes their spread is timer noise, not regression signal.
func TestGateSkipsMicroScaleFamilies(t *testing.T) {
	curves := []curve{
		{Family: "f/rbs", NsPerOp: map[int]float64{1: 14000, 8: 20000}},     // micro, 43% "slower"
		{Family: "f/aco", NsPerOp: map[int]float64{1: 4000000, 8: 3900000}}, // large, gated
	}
	violations, _, skipped := gate(curves, 1.10, 4, 1e6)
	if len(violations) != 0 {
		t.Fatalf("micro-scale family was gated: %v", violations)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	// With the floor off, the same micro family fails — the skip is the
	// floor's doing, not a hole in the comparison.
	violations, _, skipped = gate(curves, 1.10, 4, 0)
	if len(violations) != 1 || skipped != 0 {
		t.Fatalf("floor-off gate = (%v, %d)", violations, skipped)
	}
}

func TestGateNotesSingleCoreHosts(t *testing.T) {
	curves := []curve{{Family: "f/aco", NsPerOp: map[int]float64{1: 1000, 8: 1000}}}
	_, note, _ := gate(curves, 1.10, 1, 0)
	if !strings.Contains(note, "GOMAXPROCS=1") {
		t.Fatalf("single-core note missing: %q", note)
	}
	// The threshold still applies: overhead past the limit fails even there.
	violations, _, _ := gate([]curve{{Family: "f/aco", NsPerOp: map[int]float64{1: 1000, 8: 1500}}}, 1.10, 1, 0)
	if len(violations) != 1 {
		t.Fatalf("single-core overhead violation not flagged: %v", violations)
	}
}

func TestGateRequiresSerialBaseline(t *testing.T) {
	curves := []curve{{Family: "f/aco", NsPerOp: map[int]float64{8: 500}}}
	violations, _, _ := gate(curves, 1.10, 4, 0)
	if len(violations) != 1 || !strings.Contains(violations[0], "workers-1") {
		t.Fatalf("missing-baseline violation = %v", violations)
	}
}

func TestJSONRecordShape(t *testing.T) {
	curves := []curve{{Family: "f/aco", NsPerOp: map[int]float64{1: 1000, 4: 400}}}
	env := environment{Goos: "linux", Cores: 4}
	rec := jsonRecord(curves, env, "test record", time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC))
	if rec["date"] != "2026-08-06" {
		t.Fatalf("date = %v", rec["date"])
	}
	fams := rec["curves"].(map[string]any)
	entry := fams["f/aco"].(map[string]any)
	if entry["workers_1_ns_op"] != 1000.0 || entry["workers_4_ns_op"] != 400.0 {
		t.Fatalf("curve entry = %v", entry)
	}
	if entry["speedup_at_4"] != "2.50x" {
		t.Fatalf("speedup = %v", entry["speedup_at_4"])
	}
}

func TestRunGateEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out, true, 1.10, 1e6, "", ""); err != nil {
		t.Fatalf("gate failed on healthy sample: %v\n%s", err, out.String())
	}
	// The aco family (ms-scale) is gated; the rbs family (14us) is skipped.
	if !strings.Contains(out.String(), "ok: 1 families gated") || !strings.Contains(out.String(), "(1 skipped)") {
		t.Fatalf("summary missing: %q", out.String())
	}
	// Empty input is an error, not a silent pass.
	if err := run(strings.NewReader("PASS\n"), &out, true, 1.10, 1e6, "", ""); err == nil {
		t.Fatal("empty input passed the gate")
	}
}
