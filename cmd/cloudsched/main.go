// Command cloudsched regenerates the paper's tables and figures and runs
// ad-hoc scheduling comparisons on the built-in cloud simulator.
//
// Usage:
//
//	cloudsched list                          # experiments and schedulers
//	cloudsched figure <id> [flags]           # regenerate a figure/ablation
//	cloudsched run [flags]                   # one scenario, full metrics
//	cloudsched params <topic>                # echo the paper's tables
//
// Every run is deterministic for a given -seed; parallelism never changes
// results. The default -scale keeps each figure under a minute on a laptop;
// -scale 1.0 reproduces the paper's full (hours-long) dimensions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/experiments"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/report"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "figure":
		err = cmdFigure(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "params":
		err = cmdParams(os.Args[2:])
	case "validate":
		err = cmdValidate()
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "gentrace":
		err = cmdGenTrace(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cloudsched: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudsched:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cloudsched — bio-inspired cloud scheduling testbed (IPDPSW'16 reproduction)

Commands:
  list                     list experiments and registered schedulers
  figure <id> [flags]      regenerate a paper figure or ablation
      -scale F   problem-size multiplier (default: per-figure laptop scale)
      -seed N    root random seed (default 42)
      -repeats N repetitions averaged per point (default 1)
      -algs CSV  comma-separated scheduler subset (default: paper's four)
      -metric K  override the metric view (see 'list')
      -csv PATH  also write the series as CSV
      -chart     render an ASCII chart after the table
  run [flags]              run one scenario and print full metric reports
      -scenario S     homogeneous | heterogeneous (default heterogeneous)
      -vms N          fleet size (default 50)
      -cloudlets N    batch size (default 1000)
      -dcs N          datacenters, heterogeneous only (default 4)
      -algs CSV       schedulers to compare (default: paper's four)
      -seed N         root random seed (default 42)
  params <topic>           echo the paper's parameter tables
      topics: aco (Table II), hbo (Table I), rbs,
              homogeneous (Tables III-IV), heterogeneous (Tables V-VII)
  validate                 run simulator self-checks (queueing theory,
                           optimality, determinism, Fig. 6 orderings)
  compare <id> [flags]     statistically compare two algorithms on an
                           experiment across seed replications (Welch's t)
      -a / -b ALG     the two algorithms (default aco vs base)
      -runs N         seed replications (default 8)
      -scale F        problem-size multiplier (default: per-figure)
      -seed N         root seed (default 42)
  gentrace [flags]         write a synthetic workload trace (CSV, or the
                           columnar binary format with -columnar)
      -n N -rate R -out PATH -deadline-slack S -columnar -compress
      -process poisson|mmpp|diurnal   arrival process (mmpp: -rate-a -rate-b
      -sojourn-a -sojourn-b; diurnal: -amplitude -period, rate from -rate)
  plan -spec PATH          capacity verdict: binary-search the smallest
                           fleet that sustains the spec's workload within
                           its latency SLO (elastic specs: one autoscaled
                           run from min_vms)
  plan replay -spec PATH -seed N [-fleet K]
                           re-run one measured probe exactly
  plan oracle [flags]      one qmodel differential: simulated mean wait vs
                           the analytic M/M/1 / M/M/c Wq (exits non-zero
                           outside the band)
      -rho F -servers N -vms N -n N -warmup N -mu F -seed N -tol F
  trace convert [flags]    convert a trace between CSV and the columnar
                           binary format (direction sniffed from -in)
      -in PATH -out PATH -block-rows N -compress -readers K
  replay -trace PATH       replay a trace (CSV or columnar, sniffed by
                           magic bytes) through an online policy
      -policy P       online-rr|least|eft|aco|hbo|rbs (default online-eft)
      -vms N -dcs N -seed N -readers K
`)
}

func cmdList() error {
	fmt.Println("Experiments (cloudsched figure <id>):")
	for _, id := range experiments.IDs() {
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %s\n", id, exp.Title)
	}
	fmt.Println("\nSchedulers (-algs):")
	fmt.Printf("  %s\n", strings.Join(sched.Names(), ", "))
	fmt.Println("\nMetric views (-metric):")
	fmt.Printf("  %s\n", strings.Join(experiments.MetricKeys(), ", "))
	return nil
}

// defaultScale keeps each figure tractable interactively. The homogeneous
// scenarios are 1M cloudlets at paper scale, so they get a smaller default.
func defaultScale(id string) float64 {
	if strings.HasPrefix(id, "fig4") || strings.HasPrefix(id, "fig5") {
		return 0.002
	}
	return 0.1
}

func cmdFigure(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	scale := fs.Float64("scale", 0, "problem-size multiplier (0 = per-figure default)")
	seed := fs.Uint64("seed", 42, "root random seed")
	repeats := fs.Int("repeats", 1, "repetitions averaged per point")
	algs := fs.String("algs", "", "comma-separated scheduler subset")
	metric := fs.String("metric", "", "metric view override")
	csvPath := fs.String("csv", "", "write series as CSV to this path")
	chart := fs.Bool("chart", false, "render an ASCII chart")
	markdown := fs.Bool("markdown", false, "emit a Markdown table instead of the aligned text table")
	svgPath := fs.String("svg", "", "also write an SVG chart to this path")
	workers := fs.Int("workers", 0, "sweep parallelism (0 = NumCPU)")
	// Accept both "figure fig6a -chart" and "figure -chart fig6a".
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if id == "" || fs.NArg() > 0 {
		return fmt.Errorf("figure: exactly one experiment id expected (see 'cloudsched list')")
	}
	exp, err := experiments.Lookup(id)
	if err != nil {
		return err
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed, Repeats: *repeats, Workers: *workers}
	if opts.Scale == 0 {
		opts.Scale = defaultScale(id)
	}
	if *algs != "" {
		opts.Algorithms = strings.Split(*algs, ",")
	}
	start := time.Now()
	res, err := exp.Run(opts)
	if err != nil {
		return err
	}
	if *metric != "" {
		res.Metric = *metric
		res.YLabel = *metric
	}
	fmt.Printf("# experiment %s  scale=%g seed=%d repeats=%d  (%.1fs wall)\n",
		id, opts.Scale, opts.Seed, *repeats, time.Since(start).Seconds())
	if *markdown {
		if err := report.WriteMarkdown(os.Stdout, res); err != nil {
			return err
		}
	} else if err := report.WriteTable(os.Stdout, res); err != nil {
		return err
	}
	if *chart {
		fmt.Println()
		fmt.Print(report.Chart(res, 72, 20))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteCSV(f, res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteSVG(f, res, 720, 480); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	algA := fs.String("a", "aco", "first algorithm")
	algB := fs.String("b", "base", "second algorithm")
	runs := fs.Int("runs", 8, "seed replications")
	scale := fs.Float64("scale", 0, "problem-size multiplier (0 = per-figure default)")
	seed := fs.Uint64("seed", 42, "root random seed")
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if id == "" || fs.NArg() > 0 {
		return fmt.Errorf("compare: exactly one experiment id expected")
	}
	exp, err := experiments.Lookup(id)
	if err != nil {
		return err
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed}
	if opts.Scale == 0 {
		opts.Scale = defaultScale(id)
	}
	cmp, err := experiments.Compare(exp, *algA, *algB, opts, *runs)
	if err != nil {
		return err
	}
	fmt.Printf("# %s: %s vs %s over %d seed replications (metric %s, lower is better)\n",
		cmp.ExperimentID, cmp.AlgA, cmp.AlgB, cmp.Runs, cmp.Metric)
	fmt.Printf("%12s %14s %14s %10s %8s\n", "x", cmp.AlgA, cmp.AlgB, "welch-t", "winner")
	for i := range cmp.X {
		fmt.Printf("%12g %14.4f %14.4f %10.2f %8s\n",
			cmp.X[i], cmp.MeanA[i], cmp.MeanB[i], cmp.TStat[i], cmp.Winner[i])
	}
	fmt.Printf("overall winner: %s\n", cmp.Overall)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scenario := fs.String("scenario", "heterogeneous", "homogeneous | heterogeneous")
	vms := fs.Int("vms", 50, "fleet size")
	cloudlets := fs.Int("cloudlets", 1000, "batch size")
	dcs := fs.Int("dcs", 4, "datacenters (heterogeneous only)")
	algs := fs.String("algs", "aco,base,hbo,rbs", "schedulers to compare")
	seed := fs.Uint64("seed", 42, "root random seed")
	workers := fs.Int("workers", 0, "kernel pool for WorkerTunable schedulers (0 = GOMAXPROCS, 1 = serial); assignments are identical at every setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*algs, ",")
	fmt.Printf("# scenario=%s vms=%d cloudlets=%d seed=%d workers=%d\n", *scenario, *vms, *cloudlets, *seed, *workers)
	fmt.Printf("%-12s %14s %14s %12s %12s %14s %10s\n",
		"algorithm", "sched-time", "sim-time(ms)", "imbalance", "count-imb", "cost", "fairness")
	for _, name := range names {
		scheduler, err := sched.New(strings.TrimSpace(name), sched.WithWorkers(*workers))
		if err != nil {
			return err
		}
		rep, err := runScenario(scheduler, *scenario, *vms, *cloudlets, *dcs, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-12s %14v %14.3f %12.3f %12.3f %14.2f %10.3f\n",
			rep.Algorithm, rep.SchedulingTime.Round(time.Microsecond), rep.SimTimeMillis(),
			rep.Imbalance, rep.CountImbalance, rep.Cost, rep.Fairness)
	}
	return nil
}

func runScenario(scheduler sched.Scheduler, scenario string, vms, cloudlets, dcs int, seed uint64) (metrics.Report, error) {
	var (
		scn *workload.Scenario
		err error
	)
	switch scenario {
	case "homogeneous":
		scn, err = workload.Homogeneous(vms, cloudlets, seed)
	case "heterogeneous":
		scn, err = workload.Heterogeneous(vms, cloudlets, dcs, seed)
	default:
		err = fmt.Errorf("unknown scenario %q", scenario)
	}
	if err != nil {
		return metrics.Report{}, err
	}
	ctx := scn.Context()
	start := time.Now()
	assignments, err := scheduler.Schedule(ctx)
	schedTime := time.Since(start)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := sched.ValidateAssignments(ctx, assignments); err != nil {
		return metrics.Report{}, err
	}
	cls, vmList := sched.Split(assignments)
	res, err := cloud.Execute(scn.Env, cloud.TimeSharedFactory, cls, vmList)
	if err != nil {
		return metrics.Report{}, err
	}
	return metrics.Collect(scheduler.Name(), res.Finished, scn.Env.VMs, schedTime), nil
}

func cmdParams(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("params: one topic expected (aco, hbo, rbs, homogeneous, heterogeneous)")
	}
	switch args[0] {
	case "aco":
		fmt.Println("Table II — ACO parameters:")
		fmt.Println("  Ants        50")
		fmt.Println("  Alpha       0.01")
		fmt.Println("  Beta        0.99")
		fmt.Println("  Rho         0.4")
		fmt.Println("  Q           100")
		fmt.Println("  Iterations  20      (maxIterations; see DESIGN.md)")
	case "hbo":
		fmt.Println("Table I — HBO cost model (Eqs. 1-4):")
		fmt.Println("  DCcost_ij = (Size_i + M_i + BW_i) x T_CLj")
		fmt.Println("  Size_i    = dchCPS x sizeVM_i        (storage price x VM image)")
		fmt.Println("  M_i       = dchCPR x RAMVM_i         (memory  price x VM RAM)")
		fmt.Println("  BW_i      = dchCPB x BwVM_i          (bandwidth price x VM bw)")
		fmt.Println("  Groups q  = 2      facLB = 1.5 x fair share (default)")
	case "rbs":
		fmt.Println("RBS parameters (Algorithm 3):")
		fmt.Println("  Groups q  = 2     thresholds v_g = g+1, NID = free VMs per group")
	case "homogeneous":
		fmt.Println("Table III — VM characteristics (homogeneous):")
		fmt.Printf("  %+v\n", workload.HomogeneousVMSpec())
		fmt.Println("Table IV — Cloudlet parameters (homogeneous):")
		fmt.Printf("  %+v\n", workload.HomogeneousCloudletSpec())
	case "heterogeneous":
		fmt.Println("Table V — VM characteristics (heterogeneous):")
		fmt.Printf("  %+v\n", workload.HeterogeneousVMSpec())
		fmt.Println("Table VI — Cloudlet parameters (heterogeneous):")
		fmt.Printf("  %+v\n", workload.HeterogeneousCloudletSpec())
		fmt.Println("Table VII — Datacenter prices (heterogeneous):")
		spec := workload.HeterogeneousDatacenterSpec(4)
		fmt.Printf("  CostPerMemory     %v-%v\n", spec.CostPerMemory.Min, spec.CostPerMemory.Max)
		fmt.Printf("  CostPerStorage    %v-%v\n", spec.CostPerStorage.Min, spec.CostPerStorage.Max)
		fmt.Printf("  CostPerBandwidth  %v-%v\n", spec.CostPerBandwidth.Min, spec.CostPerBandwidth.Max)
		fmt.Printf("  CostPerProcessing %v\n", spec.CostPerProcessing.Min)
	default:
		return fmt.Errorf("params: unknown topic %q", args[0])
	}
	return nil
}
