package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bioschedsim/internal/sched"
)

func TestDefaultScale(t *testing.T) {
	cases := map[string]float64{
		"fig4a": 0.002, "fig4b": 0.002, "fig5a": 0.002, "fig5b": 0.002,
		"fig6a": 0.1, "fig6d": 0.1, "abl-aco-iters": 0.1,
	}
	for id, want := range cases {
		if got := defaultScale(id); got != want {
			t.Errorf("defaultScale(%s): got %v want %v", id, got, want)
		}
	}
}

func TestRunScenario(t *testing.T) {
	scheduler, err := sched.New("base")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runScenario(scheduler, "heterogeneous", 8, 40, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cloudlets != 40 || rep.VMs != 8 || rep.SimTime <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	rep, err = runScenario(scheduler, "homogeneous", 4, 20, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cloudlets != 20 {
		t.Fatalf("homogeneous report: %+v", rep)
	}
	if _, err := runScenario(scheduler, "bogus", 4, 20, 1, 5); err == nil {
		t.Fatal("bogus scenario accepted")
	}
}

func TestCmdParamsTopics(t *testing.T) {
	for _, topic := range []string{"aco", "hbo", "rbs", "homogeneous", "heterogeneous"} {
		if err := cmdParams([]string{topic}); err != nil {
			t.Errorf("params %s: %v", topic, err)
		}
	}
	if err := cmdParams([]string{"bogus"}); err == nil {
		t.Error("bogus topic accepted")
	}
	if err := cmdParams(nil); err == nil {
		t.Error("missing topic accepted")
	}
}

func TestCmdFigureErrors(t *testing.T) {
	if err := cmdFigure([]string{}); err == nil {
		t.Error("missing id accepted")
	}
	if err := cmdFigure([]string{"not-an-experiment"}); err == nil {
		t.Error("unknown id accepted")
	}
	if err := cmdFigure([]string{"fig6a", "extra"}); err == nil {
		t.Error("two positional args accepted")
	}
}

func TestCmdRunUnknownScheduler(t *testing.T) {
	if err := cmdRun([]string{"-algs", "nope", "-vms", "2", "-cloudlets", "4"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if !strings.Contains(sched.Names()[0], "") {
		t.Skip()
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlinePolicyNames(t *testing.T) {
	for _, name := range []string{"online-rr", "online-least", "online-eft", "online-aco", "online-hbo", "online-rbs", "online-2choice"} {
		p, err := onlinePolicy(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy name mismatch: %s vs %s", p.Name(), name)
		}
	}
	if _, err := onlinePolicy("bogus", 1); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestCmdReplayErrors(t *testing.T) {
	if err := cmdReplay([]string{}); err == nil {
		t.Fatal("missing -trace accepted")
	}
	if err := cmdReplay([]string{"-trace", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenTraceAndReplayRoundTrip(t *testing.T) {
	path := t.TempDir() + "/trace.csv"
	if err := cmdGenTrace([]string{"-n", "40", "-rate", "8", "-out", path, "-deadline-slack", "4", "-vms", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReplay([]string{"-trace", path, "-policy", "online-least", "-vms", "10", "-dcs", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCompareErrors(t *testing.T) {
	if err := cmdCompare([]string{}); err == nil {
		t.Fatal("missing id accepted")
	}
	if err := cmdCompare([]string{"not-an-experiment"}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestCmdValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("validate runs a 30k-cloudlet queueing check")
	}
	if err := cmdValidate(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTraceConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/t.csv"
	colPath := dir + "/t.col"
	backPath := dir + "/t2.csv"
	if err := cmdGenTrace([]string{"-n", "300", "-rate", "6", "-deadline-slack", "4", "-vms", "10", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"convert", "-in", csvPath, "-out", colPath, "-block-rows", "64", "-compress"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"convert", "-in", colPath, "-out", backPath}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("csv -> columnar -> csv changed the canonical bytes")
	}
	// Both formats replay identically through the sniffing loader.
	fromCSV, err := readTraceFile(csvPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromCol, err := readTraceFile(colPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != 300 || len(fromCol) != 300 {
		t.Fatalf("loaded %d and %d entries, want 300", len(fromCSV), len(fromCol))
	}
	for i := range fromCSV {
		if fromCSV[i].Cloudlet.ID != fromCol[i].Cloudlet.ID ||
			fromCSV[i].Arrival != fromCol[i].Arrival ||
			fromCSV[i].Cloudlet.Deadline != fromCol[i].Cloudlet.Deadline {
			t.Fatalf("entry %d differs between formats", i)
		}
	}
}

func TestCmdTraceErrors(t *testing.T) {
	if err := cmdTrace(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := cmdTrace([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := cmdTrace([]string{"convert"}); err == nil {
		t.Error("convert without -in/-out accepted")
	}
	if err := cmdTrace([]string{"convert", "-in", "/nonexistent", "-out", "/tmp/x"}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCmdGenTraceColumnar(t *testing.T) {
	dir := t.TempDir()
	colPath := dir + "/gen.col"
	if err := cmdGenTrace([]string{"-n", "100", "-columnar", "-compress", "-out", colPath}); err != nil {
		t.Fatal(err)
	}
	entries, err := readTraceFile(colPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 100 {
		t.Fatalf("generated %d entries, want 100", len(entries))
	}
	if err := cmdGenTrace([]string{"-n", "10", "-columnar"}); err == nil {
		t.Error("-columnar without -out accepted")
	}
}
