package main

import (
	"flag"
	"fmt"

	"bioschedsim/internal/plan"
)

// cmdPlan dispatches the capacity-planning subcommands: a verdict run over
// a spec file, an exact replay of one measured probe, and one
// qmodel-differential oracle case (the command internal/check's
// qmodel-oracle violations print as their replay line).
func cmdPlan(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "replay":
			return cmdPlanReplay(args[1:])
		case "oracle":
			return cmdPlanOracle(args[1:])
		}
	}
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec file (JSON; see EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("plan: -spec is required")
	}
	spec, err := plan.ReadSpec(*specPath)
	if err != nil {
		return err
	}
	v, err := plan.Plan(spec, nil)
	if err != nil {
		return err
	}
	fmt.Printf("# plan %s: %s arrivals, %d cloudlets (%d warmup), SLO p%g ≤ %g s, seed %d\n",
		spec.Name, spec.Workload.Process, spec.Workload.Cloudlets, spec.Workload.Warmup,
		spec.SLO.Quantile*100, spec.SLO.TargetSeconds, spec.Seed)
	fmt.Printf("%8s %8s %10s %12s %12s %6s\n", "fleet", "peak", "count", "mean-wait", "slo-latency", "met")
	for _, p := range v.Probes {
		fmt.Printf("%8d %8d %10d %12.4f %12.4f %6s\n",
			p.Fleet, p.PeakFleet, p.Count, p.MeanWait, p.QuantileValue, yesNo(p.Met))
	}
	switch {
	case v.Elastic && v.Sustainable:
		p := v.Probes[0]
		fmt.Printf("verdict: SUSTAINABLE — autoscaler held the SLO from %d VMs, peaking at %d (%d scale-ups, %d scale-downs)\n",
			spec.Fleet.MinVMs, v.MinFleet, p.ScaleUps, p.ScaleDowns)
	case v.Sustainable:
		fmt.Printf("verdict: SUSTAINABLE — smallest fleet meeting the SLO is %d VMs\n", v.MinFleet)
	default:
		fmt.Printf("verdict: NOT SUSTAINABLE within fleet bounds [%d, %d]\n",
			spec.Fleet.MinVMs, spec.Fleet.MaxVMs)
	}
	fleet := v.MinFleet
	if fleet == 0 {
		fleet = spec.Fleet.MaxVMs
	}
	if v.Elastic {
		fleet = spec.Fleet.MinVMs
	}
	fmt.Printf("replay: %s\n", plan.ReplayCommand(*specPath, spec.Seed, fleet))
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// cmdPlanReplay re-runs one measured probe exactly: same spec, seed, and
// fleet size reproduce the same distribution bit for bit (the line `plan`
// and the check harness print).
func cmdPlanReplay(args []string) error {
	fs := flag.NewFlagSet("plan replay", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec file (JSON)")
	seed := fs.Uint64("seed", 0, "override the spec's seed")
	fleet := fs.Int("fleet", 0, "fleet size (static specs; default min_vms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("plan replay: -spec is required")
	}
	spec, err := plan.ReadSpec(*specPath)
	if err != nil {
		return err
	}
	seedSet, fleetSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "fleet":
			fleetSet = true
		}
	})
	if seedSet {
		spec.Seed = *seed
	}
	size := spec.Fleet.MinVMs
	if fleetSet {
		size = *fleet
	}
	res, err := plan.Run(spec, size, nil)
	if err != nil {
		return err
	}
	rec := res.Recorder
	fmt.Printf("# plan replay %s: fleet %d, seed %d\n", spec.Name, size, spec.Seed)
	fmt.Printf("count            %10d\n", rec.Count())
	fmt.Printf("mean wait        %10.4f s\n", rec.MeanWait())
	fmt.Printf("latency p50      %10.4f s\n", rec.Quantile(0.50))
	fmt.Printf("latency p95      %10.4f s\n", rec.Quantile(0.95))
	fmt.Printf("latency p99      %10.4f s\n", rec.Quantile(0.99))
	fmt.Printf("slo p%g ≤ %g s   %s\n", spec.SLO.Quantile*100, spec.SLO.TargetSeconds, yesNo(res.SLOMet(spec)))
	if spec.Elastic != nil {
		fmt.Printf("peak fleet       %10d (%d scale-ups, %d scale-downs)\n",
			res.PeakFleet, res.ScaleUps, res.ScaleDowns)
	}
	return nil
}

// cmdPlanOracle runs one qmodel differential: the simulated mean queue
// wait of a homogeneous fleet under queue dispatch against the analytic
// M/M/1 or M/M/c Wq. It exits non-zero when the differential lands outside
// the band, so the replay lines printed by `schedcheck` / internal/check
// reproduce the violation with the same exit semantics.
func cmdPlanOracle(args []string) error {
	fs := flag.NewFlagSet("plan oracle", flag.ExitOnError)
	rho := fs.Float64("rho", 0.6, "offered load λ/(c·μ), in (0, 1)")
	servers := fs.Int("servers", 1, "service channels c (PEs across the fleet)")
	vms := fs.Int("vms", 1, "VM count (servers/vms PEs each)")
	n := fs.Int("n", 20000, "arrivals to simulate")
	warmup := fs.Int("warmup", 2000, "leading arrivals excluded from statistics")
	mu := fs.Float64("mu", 1, "per-channel service rate, cloudlets/s")
	seed := fs.Uint64("seed", 1, "root random seed")
	tol := fs.Float64("tol", 0.10, "relative-error band")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := plan.OracleCase{
		Rho: *rho, Servers: *servers, VMs: *vms, N: *n, Warmup: *warmup,
		Mu: *mu, Seed: *seed, Tol: *tol,
	}
	res, err := c.RunOracle(nil)
	if err != nil {
		return err
	}
	model := "M/M/1"
	if c.Servers > 1 {
		model = fmt.Sprintf("M/M/%d", c.Servers)
	}
	fmt.Printf("# oracle rho=%g servers=%d vms=%d n=%d warmup=%d mu=%g seed=%d\n",
		c.Rho, c.Servers, c.VMs, c.N, c.Warmup, c.Mu, c.Seed)
	fmt.Printf("simulated mean wait %10.4f s  (%d/%d samples)\n",
		res.SimMeanWait, res.Count, c.N-c.Warmup)
	fmt.Printf("analytic %s Wq   %10.4f s\n", model, res.TheoryWait)
	fmt.Printf("relative error      %10.4f    (band %g)\n", res.RelErr, c.Tol)
	if !res.Pass(c) {
		return fmt.Errorf("plan oracle: differential FAILED at rho=%g c=%d (rel err %.4f, band %g, %d/%d samples)",
			c.Rho, c.Servers, res.RelErr, c.Tol, res.Count, c.N-c.Warmup)
	}
	fmt.Println("PASS")
	return nil
}
