package main

import (
	"os"
	"strings"
	"testing"
)

// planSpecJSON is a small static capacity spec: λ=4, μ=1 per VM, so a
// handful of VMs meet a loose p95 target and the binary search stays fast.
const planSpecJSON = `{
  "name": "cli-static",
  "workload": {"process": "poisson", "rate": 4, "cloudlets": 800, "warmup": 100, "mean_length_mi": 1000},
  "fleet": {"vm_mips": 1000, "vm_pes": 1, "min_vms": 1, "max_vms": 8, "dispatch": "queue"},
  "slo": {"quantile": 0.95, "target_seconds": 6},
  "seed": 3
}`

const planElasticJSON = `{
  "name": "cli-elastic",
  "workload": {"process": "mmpp", "rate_a": 2, "rate_b": 10, "sojourn_a": 30, "sojourn_b": 10, "cloudlets": 600, "warmup": 50, "mean_length_mi": 1000},
  "fleet": {"vm_mips": 1000, "vm_pes": 1, "min_vms": 1, "max_vms": 12},
  "slo": {"quantile": 0.95, "target_seconds": 30},
  "seed": 5,
  "elastic": {"scale_up_load": 3, "scale_down_load": 0.5, "interval": 2}
}`

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := t.TempDir() + "/spec.json"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdPlanVerdict(t *testing.T) {
	path := writeSpec(t, planSpecJSON)
	if err := cmdPlan([]string{"-spec", path}); err != nil {
		t.Fatalf("plan verdict: %v", err)
	}
}

func TestCmdPlanElasticVerdict(t *testing.T) {
	path := writeSpec(t, planElasticJSON)
	if err := cmdPlan([]string{"-spec", path}); err != nil {
		t.Fatalf("plan elastic verdict: %v", err)
	}
}

func TestCmdPlanErrors(t *testing.T) {
	if err := cmdPlan([]string{}); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := cmdPlan([]string{"-spec", "/nonexistent/spec.json"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeSpec(t, `{"name": "x"}`)
	if err := cmdPlan([]string{"-spec", bad}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestCmdPlanReplay(t *testing.T) {
	path := writeSpec(t, planSpecJSON)
	// The exact flag shape plan.ReplayCommand prints.
	if err := cmdPlanReplay([]string{"-spec", path, "-seed", "3", "-fleet", "6"}); err != nil {
		t.Fatalf("plan replay: %v", err)
	}
	// Defaults: spec seed, min_vms fleet.
	if err := cmdPlanReplay([]string{"-spec", path}); err != nil {
		t.Fatalf("plan replay defaults: %v", err)
	}
	if err := cmdPlanReplay([]string{}); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := cmdPlanReplay([]string{"-spec", path, "-fleet", "0"}); err == nil {
		t.Error("zero fleet accepted")
	}
}

func TestCmdPlanOracle(t *testing.T) {
	// The documented ρ=0.3 M/M/1 case lands well inside its band.
	if err := cmdPlan([]string{"oracle", "-rho", "0.3", "-servers", "1", "-vms", "1",
		"-n", "20000", "-warmup", "2000", "-mu", "1", "-seed", "1", "-tol", "0.10"}); err != nil {
		t.Fatalf("plan oracle: %v", err)
	}
	// An absurdly tight band must fail with a non-zero exit (error).
	err := cmdPlan([]string{"oracle", "-rho", "0.3", "-n", "4000", "-warmup", "400", "-tol", "0.00001"})
	if err == nil {
		t.Fatal("impossible band passed")
	}
	if !strings.Contains(err.Error(), "FAILED") {
		t.Fatalf("failure not attributed to the differential: %v", err)
	}
	if err := cmdPlan([]string{"oracle", "-rho", "1.5"}); err == nil {
		t.Error("unstable rho accepted")
	}
}

func TestGenTraceProcesses(t *testing.T) {
	dir := t.TempDir()
	for _, proc := range []string{"mmpp", "diurnal"} {
		path := dir + "/" + proc + ".csv"
		args := []string{"-n", "200", "-process", proc, "-out", path}
		if proc == "diurnal" {
			args = append(args, "-rate", "6", "-amplitude", "0.8", "-period", "120")
		}
		if err := cmdGenTrace(args); err != nil {
			t.Fatalf("gentrace -process %s: %v", proc, err)
		}
		entries, err := readTraceFile(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 200 {
			t.Fatalf("%s: %d entries, want 200", proc, len(entries))
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].Arrival < entries[i-1].Arrival {
				t.Fatalf("%s: arrivals out of order at %d", proc, i)
			}
		}
	}
	if err := cmdGenTrace([]string{"-n", "10", "-process", "bogus"}); err == nil {
		t.Error("bogus process accepted")
	}
	if err := cmdGenTrace([]string{"-n", "10", "-process", "diurnal", "-amplitude", "1.5"}); err == nil {
		t.Error("out-of-range amplitude accepted")
	}
}
