package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/online"
	"bioschedsim/internal/tracecol"
	"bioschedsim/internal/workload"
)

// arrivalProcess builds a gentrace arrival process by name.
func arrivalProcess(name string, rate, rateA, rateB, sojournA, sojournB, amplitude, period float64) (workload.ArrivalProcess, error) {
	switch name {
	case "poisson":
		return workload.NewPoisson(rate)
	case "mmpp":
		return workload.NewMMPP(rateA, rateB, sojournA, sojournB)
	case "diurnal":
		return workload.NewDiurnal(rate, amplitude, period)
	default:
		return nil, fmt.Errorf("gentrace: unknown arrival process %q (want poisson, mmpp, or diurnal)", name)
	}
}

// onlinePolicy builds a per-arrival policy by name.
func onlinePolicy(name string, seed int64) (online.Scheduler, error) {
	return online.NewPolicy(name, rand.New(rand.NewSource(seed)))
}

// cmdReplay replays a workload trace file through an online policy.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "workload trace, CSV or columnar (see 'cloudsched gentrace' and 'cloudsched trace convert'); format sniffed by magic bytes")
	policyName := fs.String("policy", "online-eft", "per-arrival scheduling policy")
	vms := fs.Int("vms", 50, "fleet size")
	dcs := fs.Int("dcs", 4, "datacenters")
	seed := fs.Uint64("seed", 42, "root random seed")
	readers := fs.Int("readers", 0, "columnar decode pool (0 = GOMAXPROCS); entries identical at every setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	entries, err := readTraceFile(*tracePath, *readers)
	if err != nil {
		return err
	}
	cls, arrivals := workload.Split(entries)

	fleet := workload.GenerateVMs(workload.HeterogeneousVMSpec(), *vms, *seed)
	env, err := workload.GenerateEnvironment(workload.HeterogeneousDatacenterSpec(*dcs), fleet, *seed)
	if err != nil {
		return err
	}
	policy, err := onlinePolicy(*policyName, int64(*seed))
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := online.Run(env, policy, cls, arrivals, cloud.TimeSharedFactory)
	if err != nil {
		return err
	}
	fmt.Printf("# replay %s: %d cloudlets on %d VMs with %s (%.2fs wall)\n",
		*tracePath, len(cls), *vms, *policyName, time.Since(start).Seconds())
	fmt.Printf("mean response   %10.3f s\n", res.MeanResponse)
	fmt.Printf("mean wait       %10.3f s\n", res.MeanWait)
	fmt.Printf("simulation time %10.3f s (Eq. 12)\n", res.SimTime)
	fmt.Printf("imbalance       %10.3f   (Eq. 13)\n", res.Imbalance)
	fmt.Printf("processing cost %10.2f\n", res.Cost)
	fmt.Printf("SLA compliance  %10.3f\n", metrics.SLAComplianceRate(res.Finished))
	return nil
}

// cmdGenTrace writes a synthetic trace file.
func cmdGenTrace(args []string) error {
	fs := flag.NewFlagSet("gentrace", flag.ExitOnError)
	n := fs.Int("n", 1000, "cloudlet count")
	rate := fs.Float64("rate", 4, "mean arrival rate (cloudlets/second; poisson and diurnal)")
	process := fs.String("process", "poisson", "arrival process: poisson | mmpp | diurnal")
	rateA := fs.Float64("rate-a", 2, "mmpp: arrival rate in the calm state")
	rateB := fs.Float64("rate-b", 16, "mmpp: arrival rate in the burst state")
	sojournA := fs.Float64("sojourn-a", 60, "mmpp: mean calm-state holding time (s)")
	sojournB := fs.Float64("sojourn-b", 10, "mmpp: mean burst-state holding time (s)")
	amplitude := fs.Float64("amplitude", 0.5, "diurnal: modulation depth in [0, 1)")
	period := fs.Float64("period", 600, "diurnal: seconds per cycle")
	out := fs.String("out", "", "output path (default stdout)")
	seed := fs.Uint64("seed", 42, "root random seed")
	slack := fs.Float64("deadline-slack", 0, "assign deadlines at this slack (0 = none)")
	vms := fs.Int("vms", 50, "fleet size used to derive deadlines")
	columnar := fs.Bool("columnar", false, "write the columnar binary format instead of CSV (requires -out)")
	compress := fs.Bool("compress", false, "flate-compress columnar blocks (with -columnar)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *columnar && *out == "" {
		return fmt.Errorf("gentrace: -columnar requires -out (binary traces don't go to a terminal)")
	}
	proc, err := arrivalProcess(*process, *rate, *rateA, *rateB, *sojournA, *sojournB, *amplitude, *period)
	if err != nil {
		return err
	}
	entries, err := workload.SyntheticTraceFrom(workload.HeterogeneousCloudletSpec(), *n, proc, *seed)
	if err != nil {
		return err
	}
	if *slack > 0 {
		fleet := workload.GenerateVMs(workload.HeterogeneousVMSpec(), *vms, *seed)
		cls, _ := workload.Split(entries)
		if err := workload.AssignDeadlines(cls, fleet, *slack); err != nil {
			return err
		}
		// Deadlines are relative to batch start; offset by each arrival so
		// late arrivals keep their slack.
		for i := range entries {
			entries[i].Cloudlet.Deadline += entries[i].Arrival
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *columnar {
		opts := tracecol.WriteOptions{}
		if *compress {
			opts.Compression = tracecol.CompressFlate
		}
		if err := tracecol.Write(w, entries, opts); err != nil {
			return err
		}
	} else if err := workload.WriteTrace(w, entries); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(entries), *out)
	}
	return nil
}
