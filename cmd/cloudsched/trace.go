package main

import (
	"flag"
	"fmt"
	"os"

	"bioschedsim/internal/tracecol"
	"bioschedsim/internal/workload"
)

// cmdTrace dispatches the trace toolbox subcommands.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: subcommand expected (convert)")
	}
	switch args[0] {
	case "convert":
		return cmdTraceConvert(args[1:])
	default:
		return fmt.Errorf("trace: unknown subcommand %q (want convert)", args[0])
	}
}

// cmdTraceConvert converts a trace between the CSV and columnar binary
// formats, auto-detecting the input format by its magic bytes: a columnar
// input comes back out as CSV, anything else is parsed as CSV and written
// columnar.
func cmdTraceConvert(args []string) error {
	fs := flag.NewFlagSet("trace convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace (CSV or columnar; format sniffed)")
	out := fs.String("out", "", "output path")
	blockRows := fs.Int("block-rows", tracecol.DefaultBlockRows, "rows per columnar block (text→columnar)")
	compress := fs.Bool("compress", false, "flate-compress columnar blocks (text→columnar)")
	readers := fs.Int("readers", 0, "decode pool for columnar input (0 = GOMAXPROCS); results identical at every setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("trace convert: -in and -out are required")
	}
	prefix := make([]byte, 8)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	n, _ := f.Read(prefix)
	f.Close()
	toText := tracecol.IsColumnar(prefix[:n])

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}

	var rows int
	if toText {
		p, err := tracecol.OpenFile(*in)
		if err != nil {
			dst.Close()
			return err
		}
		defer p.Close()
		rows, err = tracecol.ConvertColumnarToText(p, dst, tracecol.ReadOptions{Readers: *readers})
		if err != nil {
			dst.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %s (columnar, %d blocks) -> %s (csv): %d rows\n",
			*in, len(p.Index().Blocks), *out, rows)
	} else {
		src, err := os.Open(*in)
		if err != nil {
			dst.Close()
			return err
		}
		defer src.Close()
		opts := tracecol.WriteOptions{BlockRows: *blockRows}
		if *compress {
			opts.Compression = tracecol.CompressFlate
		}
		rows, err = tracecol.ConvertTextToColumnar(src, dst, opts)
		if err != nil {
			dst.Close()
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %s (csv) -> %s (columnar, %d rows/block, compress=%v): %d rows\n",
			*in, *out, opts.BlockRows, *compress, rows)
	}
	return dst.Close()
}

// readTraceFile loads a trace in either format for replay, sniffing the
// columnar magic bytes.
func readTraceFile(path string, readers int) ([]workload.TraceEntry, error) {
	return tracecol.ReadFileAuto(path, readers)
}
