package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bioschedsim/internal/tracecol"
	"bioschedsim/internal/workload"
)

// cmdTrace dispatches the trace toolbox subcommands.
func cmdTrace(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("trace: subcommand expected (convert)")
	}
	switch args[0] {
	case "convert":
		return cmdTraceConvert(args[1:])
	default:
		return fmt.Errorf("trace: unknown subcommand %q (want convert)", args[0])
	}
}

// cmdTraceConvert converts a trace between the CSV and columnar binary
// formats, auto-detecting the input format by its magic bytes: a columnar
// input comes back out as CSV, anything else is parsed as CSV and written
// columnar.
func cmdTraceConvert(args []string) error {
	fs := flag.NewFlagSet("trace convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace (CSV or columnar; format sniffed)")
	out := fs.String("out", "", "output path")
	blockRows := fs.Int("block-rows", tracecol.DefaultBlockRows, "rows per columnar block (text→columnar)")
	compress := fs.Bool("compress", false, "flate-compress columnar blocks (text→columnar)")
	readers := fs.Int("readers", 0, "decode pool for columnar input (0 = GOMAXPROCS); results identical at every setting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("trace convert: -in and -out are required")
	}
	prefix := make([]byte, 8)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	// io.ReadFull, not f.Read: a single Read may legally return fewer than
	// 8 bytes without error, which would misclassify a columnar file as CSV.
	n, err := io.ReadFull(f, prefix)
	f.Close()
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return err
	}
	toText := tracecol.IsColumnar(prefix[:n])

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	// A failed conversion must not leave a partial output behind for a later
	// replay run to trip over.
	converted := false
	defer func() {
		if !converted {
			dst.Close()
			os.Remove(*out)
		}
	}()

	var rows int
	if toText {
		p, err := tracecol.OpenFile(*in)
		if err != nil {
			return err
		}
		defer p.Close()
		rows, err = tracecol.ConvertColumnarToText(p, dst, tracecol.ReadOptions{Readers: *readers})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %s (columnar, %d blocks) -> %s (csv): %d rows\n",
			*in, len(p.Index().Blocks), *out, rows)
	} else {
		src, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer src.Close()
		opts := tracecol.WriteOptions{BlockRows: *blockRows}
		if *compress {
			opts.Compression = tracecol.CompressFlate
		}
		rows, err = tracecol.ConvertTextToColumnar(src, dst, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "converted %s (csv) -> %s (columnar, %d rows/block, compress=%v): %d rows\n",
			*in, *out, opts.BlockRows, *compress, rows)
	}
	if err := dst.Close(); err != nil {
		return err
	}
	converted = true
	return nil
}

// readTraceFile loads a trace in either format for replay, sniffing the
// columnar magic bytes.
func readTraceFile(path string, readers int) ([]workload.TraceEntry, error) {
	return tracecol.ReadFileAuto(path, readers)
}
