package main

import (
	"fmt"
	"math/rand"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/qmodel"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
)

// cmdValidate runs the simulator's self-checks: queueing-theory agreement,
// homogeneous optimality, determinism, and the paper's headline orderings.
// These overlap with the test suite on purpose — they let a user verify an
// installed binary without the source tree.
func cmdValidate() error {
	checks := []struct {
		name string
		run  func() error
	}{
		{"M/M/1 mean wait matches theory (ρ=0.7)", checkMM1},
		{"base test is optimal on a homogeneous plant", checkHomogeneousOptimal},
		{"runs are deterministic in the seed", checkDeterminism},
		{"heterogeneous headline orderings (Fig. 6)", checkHeadlines},
	}
	failures := 0
	for _, c := range checks {
		if err := c.run(); err != nil {
			failures++
			fmt.Printf("  [FAIL] %s: %v\n", c.name, err)
		} else {
			fmt.Printf("  [ OK ] %s\n", c.name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d self-checks failed", failures, len(checks))
	}
	fmt.Println("all self-checks passed")
	return nil
}

// checkMM1 validates the DES against the M/M/1 queue.
func checkMM1() error {
	const (
		lambda = 0.7
		mu     = 1.0
		n      = 30000
	)
	r := rand.New(rand.NewSource(11))
	eng := sim.NewEngine()
	env := &cloud.Environment{}
	host := cloud.NewHost(0, cloud.NewPEs(1, 1000), 1<<16, 1<<20, 1<<30)
	cloud.NewDatacenter(0, "dc", cloud.Characteristics{}, []*cloud.Host{host})
	vm := cloud.NewVM(0, 1000, 1, 512, 500, 5000)
	if err := host.Place(vm); err != nil {
		return err
	}
	env.Datacenters = []*cloud.Datacenter{host.Datacenter}
	env.VMs = []*cloud.VM{vm}
	broker := cloud.NewBroker(eng, env, cloud.SpaceSharedFactory)

	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(r.ExpFloat64() / lambda)
		length := r.ExpFloat64() / mu * 1000
		if length < 1e-6 {
			length = 1e-6
		}
		c := cloud.NewCloudlet(i, length, 1, 0, 0)
		delay := at
		eng.ScheduleAt(delay, sim.PriorityAcquire, func() { broker.Submit(c, vm) })
	}
	eng.Run()
	var wait float64
	for _, c := range broker.Finished() {
		wait += c.WaitTime()
	}
	meanWait := wait / float64(n)
	theory, err := qmodel.MM1WaitQueue(lambda, mu)
	if err != nil {
		return err
	}
	if rel := qmodel.RelativeError(meanWait, theory); rel > 0.15 {
		return fmt.Errorf("simulated %.3f vs theory %.3f (%.0f%% off)", meanWait, theory, rel*100)
	}
	return nil
}

// checkHomogeneousOptimal verifies no algorithm beats cyclic assignment on
// identical VMs and cloudlets.
func checkHomogeneousOptimal() error {
	base, err := runScenario(sched.NewRoundRobin(), "homogeneous", 8, 400, 1, 5)
	if err != nil {
		return err
	}
	for _, name := range []string{"aco", "hbo", "rbs"} {
		s, err := sched.New(name)
		if err != nil {
			return err
		}
		rep, err := runScenario(s, "homogeneous", 8, 400, 1, 5)
		if err != nil {
			return err
		}
		if rep.SimTime < base.SimTime*0.999 {
			return fmt.Errorf("%s beat the optimum (%.4f < %.4f)", name, rep.SimTime, base.SimTime)
		}
	}
	return nil
}

// checkDeterminism verifies a stochastic scheduler reproduces exactly.
func checkDeterminism() error {
	s, err := sched.New("aco")
	if err != nil {
		return err
	}
	a, err := runScenario(s, "heterogeneous", 10, 100, 2, 77)
	if err != nil {
		return err
	}
	b, err := runScenario(s, "heterogeneous", 10, 100, 2, 77)
	if err != nil {
		return err
	}
	if a.SimTime != b.SimTime || a.Cost != b.Cost {
		return fmt.Errorf("two identical runs diverged: %v/%v vs %v/%v", a.SimTime, a.Cost, b.SimTime, b.Cost)
	}
	return nil
}

// checkHeadlines verifies the Figure-6 orderings on one mid-size run.
func checkHeadlines() error {
	reps := map[string]struct {
		sim  float64
		cost float64
	}{}
	for _, name := range []string{"aco", "base", "hbo", "rbs"} {
		s, err := sched.New(name)
		if err != nil {
			return err
		}
		rep, err := runScenario(s, "heterogeneous", 50, 1000, 4, 2016)
		if err != nil {
			return err
		}
		reps[name] = struct {
			sim  float64
			cost float64
		}{rep.SimTime, rep.Cost}
	}
	if !(reps["aco"].sim < reps["base"].sim) {
		return fmt.Errorf("ACO (%.1f) not faster than base (%.1f)", reps["aco"].sim, reps["base"].sim)
	}
	if !(reps["hbo"].cost < reps["base"].cost && reps["hbo"].cost < reps["aco"].cost && reps["hbo"].cost < reps["rbs"].cost) {
		return fmt.Errorf("HBO not cheapest: %v", reps)
	}
	return nil
}
