// Command papergen regenerates every evaluation artifact in one run: all
// paper figures (4a–6d), the companion and ablation experiments, and the
// extension experiments, each as an aligned text table plus a CSV series,
// written into an output directory together with a manifest. This is the
// harness EXPERIMENTS.md's numbers come from.
//
// Usage:
//
//	papergen [-out results] [-seed 42] [-scale-hom 0.002] [-scale-het 0.1] [-repeats 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bioschedsim/internal/experiments"
	"bioschedsim/internal/report"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Uint64("seed", 42, "root random seed")
	scaleHom := flag.Float64("scale-hom", 0.002, "scale for homogeneous figures (fig4*, fig5*)")
	scaleHet := flag.Float64("scale-het", 0.1, "scale for heterogeneous figures, ablations, extensions")
	repeats := flag.Int("repeats", 1, "repetitions averaged per point")
	only := flag.String("only", "", "comma-separated subset of experiment ids")
	flag.Parse()

	if err := run(*out, *seed, *scaleHom, *scaleHet, *repeats, *only); err != nil {
		fmt.Fprintln(os.Stderr, "papergen:", err)
		os.Exit(1)
	}
}

func run(out string, seed uint64, scaleHom, scaleHet float64, repeats int, only string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ids := experiments.IDs()
	if only != "" {
		ids = strings.Split(only, ",")
	}
	subset := map[string]bool{}
	for _, id := range ids {
		subset[id] = true
	}

	type entry struct {
		id    string
		title string
		scale float64
		wall  time.Duration
	}
	var manifest []entry
	for _, id := range ids {
		if !subset[id] {
			continue
		}
		exp, err := experiments.Lookup(id)
		if err != nil {
			return err
		}
		scale := scaleHet
		if strings.HasPrefix(id, "fig4") || strings.HasPrefix(id, "fig5") {
			scale = scaleHom
		}
		start := time.Now()
		res, err := exp.Run(experiments.Options{Scale: scale, Seed: seed, Repeats: repeats})
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		wall := time.Since(start)
		if err := writeArtifacts(out, id, scale, seed, repeats, wall, res); err != nil {
			return err
		}
		manifest = append(manifest, entry{id: id, title: exp.Title, scale: scale, wall: wall})
		fmt.Printf("  %-16s %6.1fs  %s\n", id, wall.Seconds(), exp.Title)
	}

	if only != "" {
		// Partial runs refresh individual artifacts without clobbering the
		// full-run manifest.
		fmt.Printf("wrote %d experiments to %s/ (manifest untouched for -only runs)\n", len(manifest), out)
		return nil
	}
	sort.Slice(manifest, func(i, j int) bool { return manifest[i].id < manifest[j].id })
	mf, err := os.Create(filepath.Join(out, "MANIFEST.md"))
	if err != nil {
		return err
	}
	defer mf.Close()
	fmt.Fprintf(mf, "# Generated results\n\nseed %d, repeats %d, scales hom=%g het=%g\n\n", seed, repeats, scaleHom, scaleHet)
	fmt.Fprintln(mf, "| id | title | scale | wall |")
	fmt.Fprintln(mf, "|---|---|---|---|")
	for _, e := range manifest {
		fmt.Fprintf(mf, "| %s | %s | %g | %.1fs |\n", e.id, e.title, e.scale, e.wall.Seconds())
	}
	fmt.Printf("wrote %d experiments + MANIFEST.md to %s/\n", len(manifest), out)
	return nil
}

func writeArtifacts(dir, id string, scale float64, seed uint64, repeats int, wall time.Duration, res *experiments.Result) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	fmt.Fprintf(txt, "# experiment %s  scale=%g seed=%d repeats=%d  (%.1fs wall)\n",
		id, scale, seed, repeats, wall.Seconds())
	if err := report.WriteTable(txt, res); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	if err := report.WriteCSV(csvf, res); err != nil {
		return err
	}
	svgf, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		return err
	}
	defer svgf.Close()
	return report.WriteSVG(svgf, res, 720, 480)
}
