// Command planbench records BENCH_plan.json: capacity-planning run
// throughput of internal/plan's engine — one full simulated M/M/c run
// (arrival generation, central-queue or spread dispatch, DES execution,
// latency recording) at small and large cloudlet counts. Each measurement
// is the best of -repeats runs, so one cold page cache or GC pause cannot
// skew the record.
//
// Usage:
//
//	go run ./cmd/planbench -out BENCH_plan.json
//
// The run is single-threaded by design (the DES kernel is serial), so the
// record reports per-core event throughput; cores are recorded for context
// only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bioschedsim/internal/plan"
)

// measurement is one (dispatch, cloudlets) run result.
type measurement struct {
	Cloudlets    int     `json:"cloudlets"`
	EngineEvents uint64  `json:"engine_events"`
	BestS        float64 `json:"best_s"`
	CloudletsPS  float64 `json:"cloudlets_per_s"`
	EventsPS     float64 `json:"events_per_s"`
}

func main() {
	out := flag.String("out", "BENCH_plan.json", "output JSON path")
	sizes := flag.String("sizes", "1000,100000", "comma-separated cloudlet counts")
	seed := flag.Uint64("seed", 42, "root random seed")
	repeats := flag.Int("repeats", 3, "runs per measurement (best is recorded)")
	flag.Parse()
	if err := run(*out, *sizes, *seed, *repeats); err != nil {
		fmt.Fprintln(os.Stderr, "planbench:", err)
		os.Exit(1)
	}
}

// benchSpec is the standard measurement workload: ρ = 0.7 on an 8-VM
// single-PE fleet with μ = 1, a steadily loaded but stable queue.
func benchSpec(n int, dispatch string, seed uint64) *plan.Spec {
	return &plan.Spec{
		Name: fmt.Sprintf("bench-%s-%d", dispatch, n),
		Workload: plan.WorkloadSpec{
			Process: "poisson", Rate: 5.6, Cloudlets: n, Warmup: n / 10,
			MeanLengthMI: 1000,
		},
		Fleet: plan.FleetSpec{
			VMMips: 1000, VMPes: 1, MinVMs: 8, MaxVMs: 8, Dispatch: dispatch,
		},
		SLO:  plan.SLOSpec{Quantile: 0.99, TargetSeconds: 1e9},
		Seed: seed,
	}
}

func run(out, sizes string, seed uint64, repeats int) error {
	var ns []int
	for _, s := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -sizes entry %q", s)
		}
		ns = append(ns, n)
	}

	results := map[string]measurement{}
	for _, dispatch := range []string{plan.DispatchQueue, plan.DispatchSpread} {
		for _, n := range ns {
			spec := benchSpec(n, dispatch, seed)
			m, err := measure(spec, repeats)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s_%d", dispatch, n)
			results[key] = m
			fmt.Fprintf(os.Stderr, "%s: %.3fs best (%.0f cloudlets/s, %.0f events/s)\n",
				key, m.BestS, m.CloudletsPS, m.EventsPS)
		}
	}

	rec := map[string]any{
		"description": "Capacity-planning run throughput: one full internal/plan simulated run (seeded Poisson arrival generation, exponential service draws, central-queue or spread dispatch, DES execution, histogram latency recording) at rho=0.7 on an 8-VM single-PE fleet. cloudlets_per_s counts completed cloudlets; events_per_s counts DES engine events fired. The engine is serial by design, so these are per-core numbers; cores are context only. Results are bit-identical across repeats (the run is a pure function of spec and seed) — only wall time varies.",
		"date":        time.Now().Format("2006-01-02"),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.GOMAXPROCS(0),
			"go":     runtime.Version(),
		},
		"rho":     0.7,
		"fleet":   8,
		"repeats": repeats,
		"seed":    seed,
		"results": results,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

// measure runs the spec repeats times and keeps the fastest wall time,
// verifying count conservation every run.
func measure(spec *plan.Spec, repeats int) (measurement, error) {
	n := spec.Workload.Cloudlets
	want := uint64(n - spec.Workload.Warmup)
	best := 0.0
	var events uint64
	for i := 0; i < repeats; i++ {
		start := time.Now()
		res, err := plan.Run(spec, spec.Fleet.MinVMs, nil)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return measurement{}, err
		}
		if got := res.Recorder.Count(); got != want {
			return measurement{}, fmt.Errorf("%s: recorded %d observations, want %d", spec.Name, got, want)
		}
		events = res.EngineEvents
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return measurement{
		Cloudlets:    n,
		EngineEvents: events,
		BestS:        best,
		CloudletsPS:  float64(n) / best,
		EventsPS:     float64(events) / best,
	}, nil
}
