// Command schedcheck runs the property-testing harness (internal/check)
// over the registered schedulers: randomized scenarios spanning the paper's
// parameter space and its degenerate corners, checked against the shared
// invariant suite (conservation, determinism, permutation invariance,
// worker invariance, shard-count invariance of the merged Eq. 12/13
// metrics, differential oracle, Eq. 12/13 sanity, empty-batch rejection).
//
// Usage:
//
//	schedcheck [-quick] [-seed N] [-n N] [-duration D] [-schedulers a,b]
//	           [-classes c1,c2] [-max-vms N] [-max-cloudlets N]
//	schedcheck replay -scheduler NAME -scenario CLASS -seed N
//	           -vms N -cloudlets N -dcs N
//
// The default mode generates -n scenarios per class and checks every
// scheduler against each; -quick selects the small CI budget (~2 s),
// -duration keeps launching campaigns with fresh root seeds until the soak
// budget elapses. Failures are shrunk to a minimal reproduction and printed
// with a one-line replay command; feed that line back through the replay
// subcommand to re-execute exactly the failing check. Exit codes: 0 clean,
// 1 invariant violations, 2 usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bioschedsim/internal/check"
	"bioschedsim/internal/sched"

	// Link every scheduler into the registry so campaigns cover the full
	// algorithm set by default.
	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/ga"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/hybrid"
	_ "bioschedsim/internal/pso"
	_ "bioschedsim/internal/rbs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "replay" {
		return runReplay(args[1:], stdout, stderr)
	}
	return runCampaign(args, stdout, stderr)
}

// splitList parses a comma-separated flag value into its non-empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func runCampaign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick        = fs.Bool("quick", false, "CI budget: fewer scenarios, smaller caps")
		seed         = fs.Uint64("seed", 1, "root `seed` for the campaign")
		n            = fs.Int("n", 0, "scenarios per class (0 means the mode default)")
		duration     = fs.Duration("duration", 0, "soak: repeat campaigns with fresh seeds for this long")
		schedulers   = fs.String("schedulers", "", "comma-separated scheduler `names` (default: all registered)")
		classes      = fs.String("classes", "", "comma-separated scenario `classes` (default: all)")
		maxVMs       = fs.Int("max-vms", 0, "cap on generated VM counts (0 means the mode default)")
		maxCloudlets = fs.Int("max-cloudlets", 0, "cap on generated cloudlet counts (0 means the mode default)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedcheck [flags]\n       schedcheck replay -scheduler NAME -scenario CLASS -seed N -vms N -cloudlets N -dcs N\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "scenario classes: %s\nregistered schedulers: %s\n",
			strings.Join(check.Classes(), ", "), strings.Join(sched.Names(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "schedcheck: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	cfg := check.Default()
	if *quick {
		cfg = check.Quick()
	}
	cfg.Seed = *seed
	if *n > 0 {
		cfg.N = *n
	}
	if *maxVMs > 0 {
		cfg.MaxVMs = *maxVMs
	}
	if *maxCloudlets > 0 {
		cfg.MaxCloudlets = *maxCloudlets
	}
	cfg.Schedulers = splitList(*schedulers)
	cfg.Classes = splitList(*classes)

	var (
		total    check.Result
		rounds   int
		deadline = time.Now().Add(*duration)
	)
	for {
		res, err := check.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "schedcheck: %v\n", err)
			return 2
		}
		rounds++
		total.Scenarios += res.Scenarios
		total.Checks += res.Checks
		total.Failures = append(total.Failures, res.Failures...)
		if *duration <= 0 || !time.Now().Before(deadline) {
			break
		}
		cfg.Seed++ // fresh scenarios next round; each round stays replayable
	}

	for _, f := range total.Failures {
		fmt.Fprintln(stdout, f)
	}
	fmt.Fprintf(stdout, "schedcheck: %d checks over %d scenarios (%d rounds): %d violation(s)\n",
		total.Checks, total.Scenarios, rounds, len(total.Failures))
	if !total.OK() {
		return 1
	}
	return 0
}

func runReplay(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedcheck replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scheduler = fs.String("scheduler", "", "scheduler `name` to re-check (required)")
		class     = fs.String("scenario", "", "scenario `class` (required)")
		seed      = fs.Uint64("seed", 0, "scenario `seed`")
		vms       = fs.Int("vms", 0, "VM count")
		cloudlets = fs.Int("cloudlets", 0, "cloudlet count")
		dcs       = fs.Int("dcs", 1, "datacenter count")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedcheck replay -scheduler NAME -scenario CLASS -seed N -vms N -cloudlets N -dcs N\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scheduler == "" || *class == "" {
		fmt.Fprintln(stderr, "schedcheck replay: -scheduler and -scenario are required")
		fs.Usage()
		return 2
	}
	if _, err := sched.New(*scheduler); err != nil {
		fmt.Fprintf(stderr, "schedcheck replay: %v\n", err)
		return 2
	}
	sc := check.Scenario{Class: *class, VMs: *vms, Cloudlets: *cloudlets, DCs: *dcs, Seed: *seed}
	if err := sc.Validate(); err != nil {
		fmt.Fprintf(stderr, "schedcheck replay: %v\n", err)
		return 2
	}
	if v := check.CheckScenario(*scheduler, sc); v != nil {
		fmt.Fprintf(stdout, "FAIL %s %v: %s: %v\n", *scheduler, sc, v.Invariant, v.Err)
		return 1
	}
	fmt.Fprintf(stdout, "ok %s %v\n", *scheduler, sc)
	return 0
}
