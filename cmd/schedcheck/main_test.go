package main

import (
	"strings"
	"testing"

	"bioschedsim/internal/sched"
)

// ladderBroken spills one assignment out of range when the batch is larger
// than the fleet — a conservation violation on most generated scenarios.
type ladderBroken struct{}

func (ladderBroken) Name() string { return "clibroken" }
func (ladderBroken) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[i%len(ctx.VMs)]}
	}
	if len(out) >= 2 {
		out[1] = out[0]
	}
	return out, nil
}

func init() {
	sched.Register("clibroken", func() sched.Scheduler { return ladderBroken{} })
}

func TestQuickCampaignExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-quick", "-schedulers", "base,greedy,hbo,rbs"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "0 violation(s)") {
		t.Fatalf("missing summary line: %s", out.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"stray-arg"},
		{"-schedulers", "nosuchscheduler"},
		{"-classes", "nosuchclass"},
		{"replay"},
		{"replay", "-scheduler", "nosuchscheduler", "-scenario", "heter", "-vms", "1", "-cloudlets", "1"},
		{"replay", "-scheduler", "base", "-scenario", "nosuchclass", "-vms", "1", "-cloudlets", "1"},
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %q: exit %d, want 2 (stdout: %s)", args, code, out.String())
		}
	}
}

func TestReplayOfPassingScenarioExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"replay", "-scheduler", "base", "-scenario", "homog",
		"-seed", "7", "-vms", "4", "-cloudlets", "12", "-dcs", "1"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "ok base") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestBrokenSchedulerRoundTrip drives the acceptance path end to end through
// the CLI: the campaign catches the violation and prints a replay line, and
// feeding that line's flags back through the replay subcommand reproduces
// the failure.
func TestBrokenSchedulerRoundTrip(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-quick", "-schedulers", "clibroken", "-classes", "heter"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("campaign over broken scheduler: exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var replayLine string
	for _, line := range strings.Split(out.String(), "\n") {
		if i := strings.Index(line, "replay: "); i >= 0 {
			replayLine = line[i+len("replay: "):]
			break
		}
	}
	if replayLine == "" {
		t.Fatalf("no replay command in output:\n%s", out.String())
	}
	fields := strings.Fields(replayLine)
	if len(fields) < 2 || fields[0] != "schedcheck" || fields[1] != "replay" {
		t.Fatalf("malformed replay command %q", replayLine)
	}
	var replayOut, replayErr strings.Builder
	if code := run(fields[1:], &replayOut, &replayErr); code != 1 {
		t.Fatalf("replay %q: exit %d, want 1 (stderr: %s)", replayLine, code, replayErr.String())
	}
	if !strings.Contains(replayOut.String(), "conservation") {
		t.Fatalf("replay did not report the conservation violation: %s", replayOut.String())
	}
}

func TestSoakDurationRunsMultipleRounds(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-quick", "-schedulers", "base", "-classes", "homog",
		"-n", "1", "-duration", "10ms"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "rounds") {
		t.Fatalf("missing rounds in summary: %s", out.String())
	}
}
