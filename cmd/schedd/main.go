// Command schedd runs the scheduling daemon: a long-running HTTP/JSON
// service that owns a live cloud environment, coalesces cloudlet
// submissions into time/size-bounded batches, maps each batch with a
// registered scheduler, and executes placements on a persistent broker.
//
// Usage:
//
//	schedd -scheduler aco -addr :8080
//
// Endpoints:
//
//	POST /v1/submit       {"length": 5000} or {"cloudlets": [...]}
//	GET  /v1/status/{id}  cloudlet lifecycle record
//	GET  /v1/schedulers   available algorithms
//	GET  /healthz         readiness (503 while draining)
//	GET  /metrics         Prometheus text format
//
// SIGINT/SIGTERM starts a graceful drain: admission stops (new submits get
// 503), the queue flushes, in-flight batches execute to completion, then
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/service"
	"bioschedsim/internal/workload"

	// Register the batch schedulers the daemon can serve.
	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/ga"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/hybrid"
	_ "bioschedsim/internal/pso"
	_ "bioschedsim/internal/rbs"
)

// options collects every flag so run is testable end to end.
type options struct {
	addr         string
	scenario     string
	vms          int
	dcs          int
	seed         uint64
	drainTimeout time.Duration
	svc          service.Config
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	opt := &options{}
	fs.StringVar(&opt.addr, "addr", ":8080", "listen address (host:port)")
	fs.StringVar(&opt.scenario, "scenario", "heterogeneous", "fleet scenario: homogeneous | heterogeneous")
	fs.IntVar(&opt.vms, "vms", 50, "fleet size")
	fs.IntVar(&opt.dcs, "dcs", 4, "datacenters (heterogeneous only)")
	fs.Uint64Var(&opt.seed, "seed", 42, "root random seed for fleet generation")
	fs.DurationVar(&opt.drainTimeout, "drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	fs.StringVar(&opt.svc.Scheduler, "scheduler", "aco", "mapping algorithm (see /v1/schedulers)")
	fs.IntVar(&opt.svc.BatchSize, "batch", service.DefaultBatchSize, "flush after this many cloudlets coalesce")
	fs.DurationVar(&opt.svc.FlushInterval, "flush", service.DefaultFlushInterval, "flush a partial batch after this long")
	fs.IntVar(&opt.svc.QueueCap, "queue", service.DefaultQueueCap, "admission queue bound (429 beyond it)")
	fs.IntVar(&opt.svc.Workers, "workers", service.DefaultWorkers, "batch-mapping worker pool size")
	fs.IntVar(&opt.svc.SchedWorkers, "sched-workers", service.DefaultSchedWorkers, "kernel pool per mapper for WorkerTunable schedulers (1 = serial; widening oversubscribes unless -workers shrinks)")
	fs.IntVar(&opt.svc.Shards, "shards", service.DefaultShards, "shard the fleet into this many independent engines with load-aware routing (1 = unsharded)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	opt.svc.Seed = int64(opt.seed)
	return opt, nil
}

// buildEnv generates the daemon's fleet from the paper's scenario tables.
func buildEnv(opt *options) (*cloud.Environment, error) {
	switch opt.scenario {
	case "heterogeneous":
		fleet := workload.GenerateVMs(workload.HeterogeneousVMSpec(), opt.vms, opt.seed)
		return workload.GenerateEnvironment(workload.HeterogeneousDatacenterSpec(opt.dcs), fleet, opt.seed)
	case "homogeneous":
		fleet := workload.GenerateVMs(workload.HomogeneousVMSpec(), opt.vms, opt.seed)
		return workload.GenerateEnvironment(workload.HomogeneousDatacenterSpec(1), fleet, opt.seed)
	default:
		return nil, fmt.Errorf("schedd: unknown scenario %q (want homogeneous or heterogeneous)", opt.scenario)
	}
}

// run starts the daemon and blocks until ctx is cancelled, then drains. If
// ready is non-nil it receives the bound listen address once serving — the
// hook integration tests use to find an OS-assigned loopback port.
func run(ctx context.Context, opt *options, ready chan<- string) error {
	env, err := buildEnv(opt)
	if err != nil {
		return err
	}
	svc, err := service.New(env, opt.svc)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errC := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errC <- err
		}
	}()
	log.Printf("schedd: serving on %s (scheduler=%s vms=%d shards=%d batch=%d flush=%v queue=%d workers=%d)",
		ln.Addr(), opt.svc.Scheduler, opt.vms, svc.Shards(), opt.svc.BatchSize, opt.svc.FlushInterval, opt.svc.QueueCap, opt.svc.Workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errC:
		return err
	case <-ctx.Done():
	}

	log.Printf("schedd: draining (timeout %v)", opt.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
	defer cancel()
	// Drain first so status polls keep working while batches finish, then
	// shut the listener down.
	drainErr := svc.Drain(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr == nil {
		log.Printf("schedd: drained cleanly")
	}
	return drainErr
}

func main() {
	opt, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, nil); err != nil {
		log.Fatalf("schedd: %v", err)
	}
}
