package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon boots the full daemon on an OS-assigned loopback port and
// returns its base URL plus a shutdown function that triggers the graceful
// drain and waits for run to exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	opt, err := parseFlags(append([]string{"-addr", "127.0.0.1:0"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errC := make(chan error, 1)
	go func() { errC <- run(ctx, opt, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errC:
		t.Fatalf("daemon died before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	stopped := false
	stop := func() error {
		stopped = true
		cancel()
		select {
		case err := <-errC:
			return err
		case <-time.After(60 * time.Second):
			return fmt.Errorf("drain timed out")
		}
	}
	t.Cleanup(func() {
		if !stopped {
			_ = stop()
		}
	})
	return "http://" + addr, stop
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts a single-sample series value from Prometheus text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in:\n%s", name, body)
	return 0
}

// TestScheddEndToEnd boots the daemon on a loopback port, submits a
// heterogeneous batch over HTTP, polls /v1/status to completion, and
// asserts the /metrics gauges moved.
func TestScheddEndToEnd(t *testing.T) {
	base, stop := startDaemon(t,
		"-scheduler", "hbo", "-vms", "8", "-dcs", "2",
		"-batch", "10", "-flush", "5ms", "-workers", "2")

	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	_, before := httpGet(t, base+"/metrics")
	if v := metricValue(t, before, "schedd_finished_total"); v != 0 {
		t.Fatalf("fresh daemon already finished %v cloudlets", v)
	}

	// A deliberately heterogeneous batch: long and short cloudlets, multi-PE
	// work, deadline-bearing work.
	body := `{"cloudlets": [
		{"length": 18000, "file_size": 300, "output_size": 300},
		{"length": 1200},
		{"length": 9000, "pes": 2},
		{"length": 4000, "deadline": 1000000},
		{"length": 15000}, {"length": 2500}, {"length": 7000},
		{"length": 11000}, {"length": 600}, {"length": 19500}
	]}`
	resp, err := http.Post(base+"/v1/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(ack.IDs) != 10 {
		t.Fatalf("submit: %d, ids %v", resp.StatusCode, ack.IDs)
	}

	// Poll every cloudlet's lifecycle to completion.
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ack.IDs {
		for {
			code, body := httpGet(t, fmt.Sprintf("%s/v1/status/%d", base, id))
			if code != http.StatusOK {
				t.Fatalf("status %d: %d %s", id, code, body)
			}
			var rec struct {
				State string  `json:"state"`
				VM    int     `json:"vm"`
				Exec  float64 `json:"exec_seconds"`
			}
			if err := json.Unmarshal([]byte(body), &rec); err != nil {
				t.Fatal(err)
			}
			if rec.State == "finished" {
				if rec.VM < 0 || rec.Exec <= 0 {
					t.Fatalf("cloudlet %d degenerate: %s", id, body)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cloudlet %d stuck in %q", id, rec.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The observability surface must have moved.
	_, after := httpGet(t, base+"/metrics")
	if v := metricValue(t, after, "schedd_finished_total"); v != 10 {
		t.Fatalf("finished_total = %v, want 10", v)
	}
	if v := metricValue(t, after, "schedd_submitted_total"); v != 10 {
		t.Fatalf("submitted_total = %v, want 10", v)
	}
	if v := metricValue(t, after, "schedd_batch_sim_time_seconds"); v <= 0 {
		t.Fatalf("Eq. 12 gauge never moved: %v", v)
	}
	if !strings.Contains(after, `schedd_scheduling_seconds_bucket{scheduler="hbo"`) {
		t.Fatalf("per-scheduler histogram missing:\n%s", after)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
}

// TestScheddSIGTERMDrains delivers a real SIGTERM to the process while work
// is still coalescing and asserts the daemon drains instead of dropping it:
// run exits nil, which requires every flushed batch — including the final
// partial one — to have executed to completion. (Per-cloudlet terminal
// states are asserted at the service layer in internal/service.)
func TestScheddSIGTERMDrains(t *testing.T) {
	opt, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-scheduler", "base",
		"-vms", "6", "-batch", "50", "-flush", "20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The same signal wiring main uses; scoped so other tests are immune.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stopSignals()
	ready := make(chan string, 1)
	errC := make(chan error, 1)
	go func() { errC <- run(ctx, opt, ready) }()
	base := "http://" + <-ready

	resp, err := http.Post(base+"/v1/submit", "application/json",
		strings.NewReader(`{"cloudlets": [{"length": 5000}, {"length": 8000}, {"length": 3000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ack.IDs) != 3 {
		t.Fatalf("accepted %v", ack.IDs)
	}

	// SIGTERM with the batch still coalescing (flush interval 20ms).
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
