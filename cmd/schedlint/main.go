// Command schedlint runs the repository's static-analysis rules
// (internal/lint): determinism of randomness (including interprocedural
// rand-stream flow), simulated-clock discipline, float-equality safety,
// library print hygiene, lock-copy and lock-hold checks, and goroutine-join
// accounting.
//
// Usage:
//
//	schedlint [-C dir] [-rules r1,r2] [-workers n] [-json|-sarif]
//	          [-baseline file] [-write-baseline file] [-list] [packages ...]
//
// Package patterns are module-root-relative directories, with ./... for the
// whole tree (the default). -json and -sarif emit machine-readable reports
// (schema lint.SchemaVersion); -baseline filters known findings recorded by
// a previous -write-baseline. Exit codes: 0 clean, 1 findings, 2 usage or
// load error — suitable for CI gates (verify.sh runs
// `go run ./cmd/schedlint ./...`; CI additionally uploads the -sarif report
// for inline PR annotations).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bioschedsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output schema. CI consumers rely on these field
// names; extend, do not rename. Schema identifies the report format version
// and moves in lockstep with the SARIF and baseline schemas.
type jsonReport struct {
	Schema      string            `json:"schema"`
	Packages    int               `json:"packages"`
	Count       int               `json:"count"`
	Baselined   int               `json:"baselined"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir           = fs.String("C", ".", "analyze the module containing this `directory`")
		rules         = fs.String("rules", "", "comma-separated `rules` to run (default: all; see -list)")
		workers       = fs.Int("workers", 0, "analysis worker `count`: 0 = GOMAXPROCS, 1 = serial (output is identical at every setting)")
		jsonOut       = fs.Bool("json", false, "emit diagnostics as JSON")
		sarifOut      = fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (for CI code-scanning upload)")
		baseline      = fs.String("baseline", "", "filter findings recorded in this baseline `file`")
		writeBaseline = fs.String("write-baseline", "", "write current findings to this baseline `file` and exit 0")
		listOnly      = fs.Bool("list", false, "list the registered rules and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedlint [flags] [package patterns, default ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-10s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "schedlint: -json and -sarif are mutually exclusive")
		return 2
	}

	var ruleNames []string
	if *rules != "" {
		ruleNames = strings.Split(*rules, ",")
	}
	res, err := lint.Run(lint.Config{
		Dir:      *dir,
		Patterns: fs.Args(),
		Rules:    ruleNames,
		Workers:  *workers,
		Baseline: *baseline,
	})
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(res.Diags)
		if err := b.Write(*writeBaseline); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "schedlint: wrote %d finding(s) to baseline %s\n", len(res.Diags), *writeBaseline)
		return 0
	}

	switch {
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, res); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		rep := jsonReport{
			Schema:      lint.SchemaVersion,
			Packages:    res.Packages,
			Count:       len(res.Diags),
			Baselined:   res.Baselined,
			Diagnostics: res.Diags,
		}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{} // stable schema: [] not null
		}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d.String())
		}
		if n := len(res.Diags); n > 0 {
			fmt.Fprintf(stderr, "schedlint: %d finding(s) across %d package(s)\n", n, res.Packages)
		}
		if res.Baselined > 0 {
			fmt.Fprintf(stderr, "schedlint: %d baselined finding(s) filtered\n", res.Baselined)
		}
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
