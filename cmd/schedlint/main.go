// Command schedlint runs the repository's static-analysis rules
// (internal/lint): determinism of randomness, simulated-clock discipline,
// float-equality safety, library print hygiene, and lock-copy checks.
//
// Usage:
//
//	schedlint [-C dir] [-rules r1,r2] [-json] [-list] [packages ...]
//
// Package patterns are module-root-relative directories, with ./... for the
// whole tree (the default). Exit codes: 0 clean, 1 findings, 2 usage or
// load error — suitable for CI gates (verify.sh runs
// `go run ./cmd/schedlint ./...`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bioschedsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output schema. CI consumers rely on these field
// names; extend, do not rename.
type jsonReport struct {
	Packages    int               `json:"packages"`
	Count       int               `json:"count"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "analyze the module containing this `directory`")
		rules    = fs.String("rules", "", "comma-separated `rules` to run (default: all; see -list)")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		listOnly = fs.Bool("list", false, "list the registered rules and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: schedlint [flags] [package patterns, default ./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-10s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	var ruleNames []string
	if *rules != "" {
		ruleNames = strings.Split(*rules, ",")
	}
	res, err := lint.Run(lint.Config{Dir: *dir, Patterns: fs.Args(), Rules: ruleNames})
	if err != nil {
		fmt.Fprintf(stderr, "schedlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		rep := jsonReport{Packages: res.Packages, Count: len(res.Diags), Diagnostics: res.Diags}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{} // stable schema: [] not null
		}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "schedlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d.String())
		}
		if n := len(res.Diags); n > 0 {
			fmt.Fprintf(stderr, "schedlint: %d finding(s) across %d package(s)\n", n, res.Packages)
		}
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
