package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bioschedsim/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json schema byte-for-byte: CI consumers parse
// this output, so field names, ordering, and indentation are API.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from golden file\n got:\n%s\nwant:\n%s", stdout.String(), want)
	}
	// The golden bytes must stay parseable with the documented field names.
	var rep struct {
		Schema      string `json:"schema"`
		Packages    int    `json:"packages"`
		Count       int    `json:"count"`
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	if rep.Schema != lint.SchemaVersion {
		t.Errorf("schema = %q, want %q (JSON, SARIF, and baseline version together)", rep.Schema, lint.SchemaVersion)
	}
	if rep.Count != len(rep.Diagnostics) || rep.Count != 2 {
		t.Errorf("want count 2 matching diagnostics length, got count=%d len=%d", rep.Count, len(rep.Diagnostics))
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("diagnostic with empty field: %+v", d)
		}
	}
}

// TestJSONCleanTree proves the schema is stable on success: an empty
// diagnostics array (never null), count 0, exit 0.
func TestJSONCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "./internal/lint"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	var rep struct {
		Count       int               `json:"count"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Count != 0 || rep.Diagnostics == nil || len(rep.Diagnostics) != 0 {
		t.Errorf("clean tree must serialize as count 0 with [] diagnostics, got %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), `"diagnostics": []`) {
		t.Errorf("diagnostics must be [] (not null) on a clean tree, got %s", stdout.String())
	}
}

// TestTextOutput checks the human format and the findings exit code.
func TestTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/sched/fixture.go:9:9:") || !strings.Contains(out, "(detrand)") {
		t.Errorf("text output missing file:line:col or rule tag:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr.String())
	}
}

// TestRulesFlag restricts the run to one rule: detrand is excluded and the
// suppressed sentinel stays suppressed, so exactly the one unsuppressed
// floateq finding remains.
func TestRulesFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "-rules", "floateq", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if strings.Contains(out, "detrand") {
		t.Errorf("-rules floateq must not run detrand:\n%s", out)
	}
	if strings.Count(out, "(floateq)") != 1 {
		t.Errorf("want exactly one floateq finding (the sentinel is suppressed):\n%s", out)
	}
}

// TestSARIFGolden pins the -sarif output byte-for-byte and validates the
// invariants GitHub code scanning depends on: schema URI, version 2.1.0, a
// rule catalog every result's ruleIndex resolves into, and SRCROOT-based
// module-relative file URIs.
func TestSARIFGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "-sarif", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-sarif output drifted from golden file\n got:\n%s\nwant:\n%s", stdout.String(), want)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name            string `json:"name"`
					SemanticVersion string `json:"semanticVersion"`
					Rules           []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(want, &log); err != nil {
		t.Fatalf("golden SARIF is not valid JSON: %v", err)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") || log.Version != "2.1.0" {
		t.Errorf("bad $schema/version: %q / %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	drv := log.Runs[0].Tool.Driver
	if drv.Name != "schedlint" || drv.SemanticVersion != lint.SchemaVersion {
		t.Errorf("driver = %s/%s, want schedlint/%s", drv.Name, drv.SemanticVersion, lint.SchemaVersion)
	}
	// Catalog covers every registered rule plus the "ignore" pseudo-rule.
	if want := len(lint.Rules()) + 1; len(drv.Rules) != want {
		t.Errorf("rule catalog has %d entries, want %d", len(drv.Rules), want)
	}
	if len(log.Runs[0].Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(log.Runs[0].Results))
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(drv.Rules) || drv.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result ruleIndex %d does not resolve to ruleId %s", r.RuleIndex, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result missing level/message: %+v", r)
		}
		for _, loc := range r.Locations {
			pl := loc.PhysicalLocation
			if pl.ArtifactLocation.URIBaseID != "SRCROOT" || strings.HasPrefix(pl.ArtifactLocation.URI, "/") {
				t.Errorf("URIs must be SRCROOT-relative, got %+v", pl.ArtifactLocation)
			}
			if pl.Region.StartLine == 0 || pl.Region.StartColumn == 0 {
				t.Errorf("region missing line/col: %+v", pl.Region)
			}
		}
	}
}

// TestJSONSARIFExclusive: the two machine formats cannot share stdout.
func TestJSONSARIFExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr should explain the conflict: %q", stderr.String())
	}
}

// TestBaselineRoundTrip: -write-baseline captures the fixture's findings;
// rerunning with -baseline filters them (exit 0) while a fresh violation
// class would still surface. The baseline file itself carries the shared
// schema version.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bl := filepath.Join(dir, "baseline.json")
	fix := filepath.Join("testdata", "jsonfix")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", fix, "-write-baseline", bl, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("write-baseline exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	var b struct {
		Schema   string `json:"schema"`
		Findings []struct {
			Count int `json:"count"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if b.Schema != lint.SchemaVersion || len(b.Findings) != 2 {
		t.Errorf("baseline schema=%q findings=%d, want %q/2", b.Schema, len(b.Findings), lint.SchemaVersion)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", fix, "-baseline", bl, "-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s", code, stdout.String())
	}
	var rep struct {
		Count     int `json:"count"`
		Baselined int `json:"baselined"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Count != 0 || rep.Baselined != 2 {
		t.Errorf("want count=0 baselined=2, got count=%d baselined=%d", rep.Count, rep.Baselined)
	}
}

// TestWorkersDeterministic: the parallel per-package driver must emit
// byte-identical reports at every worker count — the same contract the
// engine enforces on the code it lints.
func TestWorkersDeterministic(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, w := range []string{"1", "2", "8"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-C", "../..", "-workers", w, "-json", "./..."}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("-workers %s exit = %d; stderr: %s", w, code, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Errorf("output differs across worker counts:\n-workers 1:\n%s\n-workers 8:\n%s", outputs[0], outputs[2])
	}
}

func TestUnknownRuleExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown rule", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr should name the unknown rule: %q", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"detrand", "simclock", "floateq", "noprint", "mutexcopy"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, stdout.String())
		}
	}
}
