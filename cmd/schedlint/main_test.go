package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden pins the -json schema byte-for-byte: CI consumers parse
// this output, so field names, ordering, and indentation are API.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from golden file\n got:\n%s\nwant:\n%s", stdout.String(), want)
	}
	// The golden bytes must stay parseable with the documented field names.
	var rep struct {
		Packages    int `json:"packages"`
		Count       int `json:"count"`
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	if rep.Count != len(rep.Diagnostics) || rep.Count != 2 {
		t.Errorf("want count 2 matching diagnostics length, got count=%d len=%d", rep.Count, len(rep.Diagnostics))
	}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("diagnostic with empty field: %+v", d)
		}
	}
}

// TestJSONCleanTree proves the schema is stable on success: an empty
// diagnostics array (never null), count 0, exit 0.
func TestJSONCleanTree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-json", "./internal/lint"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	var rep struct {
		Count       int               `json:"count"`
		Diagnostics []json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Count != 0 || rep.Diagnostics == nil || len(rep.Diagnostics) != 0 {
		t.Errorf("clean tree must serialize as count 0 with [] diagnostics, got %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), `"diagnostics": []`) {
		t.Errorf("diagnostics must be [] (not null) on a clean tree, got %s", stdout.String())
	}
}

// TestTextOutput checks the human format and the findings exit code.
func TestTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/sched/fixture.go:9:9:") || !strings.Contains(out, "(detrand)") {
		t.Errorf("text output missing file:line:col or rule tag:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr.String())
	}
}

// TestRulesFlag restricts the run to one rule: detrand is excluded and the
// suppressed sentinel stays suppressed, so exactly the one unsuppressed
// floateq finding remains.
func TestRulesFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "jsonfix"), "-rules", "floateq", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	out := stdout.String()
	if strings.Contains(out, "detrand") {
		t.Errorf("-rules floateq must not run detrand:\n%s", out)
	}
	if strings.Count(out, "(floateq)") != 1 {
		t.Errorf("want exactly one floateq finding (the sentinel is suppressed):\n%s", out)
	}
}

func TestUnknownRuleExitCode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown rule", code)
	}
	if !strings.Contains(stderr.String(), "unknown rule") {
		t.Errorf("stderr should name the unknown rule: %q", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"detrand", "simclock", "floateq", "noprint", "mutexcopy"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, stdout.String())
		}
	}
}
