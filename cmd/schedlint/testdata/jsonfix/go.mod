module fixture.example/jsonfix

go 1.22
