// Fixture behind the -json golden test: one detrand and one floateq
// finding, plus a suppressed comparison proving suppressions never reach
// the JSON surface.
package sched

import "math/rand"

func pick(n int) int {
	return rand.Intn(n)
}

func sameScore(a, b float64) bool {
	return a == b
}

func sentinel(total float64) bool {
	return total == 0 //schedlint:ignore floateq fixture sentinel, suppressed on purpose
}
