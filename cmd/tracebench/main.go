// Command tracebench records BENCH_trace.json: trace ingest throughput of
// the CSV text path versus the columnar binary path at several reader
// counts, on a generated synthetic trace (1M rows by default — the paper's
// homogeneous cloudlet scale). Each measurement is the best of -repeats
// runs, so one cold page cache or GC pause cannot skew the record.
//
// Usage:
//
//	go run ./cmd/tracebench -rows 1000000 -out BENCH_trace.json
//
// The record carries the same honest caveat as BENCH_parallel.json: on a
// single-core host the multi-reader curves bound pool overhead, not
// scaling — read environment.cores before quoting speedups.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"bioschedsim/internal/tracecol"
	"bioschedsim/internal/workload"
)

// measurement is one (format, readers) ingest result.
type measurement struct {
	FileBytes int64   `json:"file_bytes"`
	BestS     float64 `json:"best_s"`
	RowsPerS  float64 `json:"rows_per_s"`
	MBPerS    float64 `json:"mb_per_s"`
}

func main() {
	rows := flag.Int("rows", 1_000_000, "trace rows to generate")
	out := flag.String("out", "BENCH_trace.json", "output JSON path")
	seed := flag.Uint64("seed", 42, "generator seed")
	repeats := flag.Int("repeats", 3, "runs per measurement (best is recorded)")
	flag.Parse()
	if err := run(*rows, *out, *seed, *repeats); err != nil {
		fmt.Fprintln(os.Stderr, "tracebench:", err)
		os.Exit(1)
	}
}

func run(rows int, out string, seed uint64, repeats int) error {
	dir, err := os.MkdirTemp("", "tracebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(os.Stderr, "generating %d-row synthetic trace (seed %d)...\n", rows, seed)
	entries, err := workload.SyntheticTrace(workload.HeterogeneousCloudletSpec(), rows, 8, seed)
	if err != nil {
		return err
	}

	textPath := filepath.Join(dir, "trace.csv")
	colPath := filepath.Join(dir, "trace.col")
	flatePath := filepath.Join(dir, "trace.colz")
	if err := writeFile(textPath, func(f *os.File) error { return workload.WriteTrace(f, entries) }); err != nil {
		return err
	}
	if err := writeFile(colPath, func(f *os.File) error {
		return tracecol.Write(f, entries, tracecol.WriteOptions{})
	}); err != nil {
		return err
	}
	if err := writeFile(flatePath, func(f *os.File) error {
		return tracecol.Write(f, entries, tracecol.WriteOptions{Compression: tracecol.CompressFlate})
	}); err != nil {
		return err
	}

	results := map[string]measurement{}
	m, err := measure(textPath, rows, repeats, func() (int, error) {
		f, err := os.Open(textPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		got, err := workload.ReadTrace(f)
		return len(got), err
	})
	if err != nil {
		return err
	}
	results["text"] = m
	fmt.Fprintf(os.Stderr, "text: %.3fs best (%.0f rows/s, %.1f MB/s)\n", m.BestS, m.RowsPerS, m.MBPerS)

	for _, v := range []struct {
		key  string
		path string
	}{{"columnar", colPath}, {"columnar_flate", flatePath}} {
		for _, readers := range []int{1, 2, 4} {
			readers := readers
			m, err := measure(v.path, rows, repeats, func() (int, error) {
				p, err := tracecol.OpenFile(v.path)
				if err != nil {
					return 0, err
				}
				defer p.Close()
				got, err := tracecol.ReadAll(p, tracecol.ReadOptions{Readers: readers})
				return len(got), err
			})
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%s_readers_%d", v.key, readers)
			results[key] = m
			fmt.Fprintf(os.Stderr, "%s: %.3fs best (%.0f rows/s, %.1f MB/s)\n", key, m.BestS, m.RowsPerS, m.MBPerS)
		}
	}

	speedup := results["text"].BestS / results["columnar_readers_1"].BestS
	rec := map[string]any{
		"description": "Trace ingest throughput: CSV text path (workload.ReadTrace with ReuseRecord + preallocation) vs the columnar binary path (internal/tracecol) at decode pools of 1/2/4 readers, on one generated synthetic trace. rows_per_s counts decoded TraceEntry values; mb_per_s is relative to each format's own file size, so the columnar file moving fewer bytes is part of the win. Results are bit-identical across formats and reader counts (round-trip + reader-invariance suites). Honest caveat per BENCH_parallel.json: on a single-core host the readers-2/4 curves bound pool overhead, not scaling — check environment.cores.",
		"date":        time.Now().Format("2006-01-02"),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cores":  runtime.GOMAXPROCS(0),
			"go":     runtime.Version(),
		},
		"rows":    rows,
		"repeats": repeats,
		"seed":    seed,
		"results": results,
		"columnar_vs_text_single_reader": fmt.Sprintf("%.2fx", speedup),
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (columnar vs text at 1 reader: %.2fx)\n", out, speedup)
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measure runs ingest repeats times and keeps the fastest wall time,
// verifying the decoded row count every run.
func measure(path string, wantRows, repeats int, ingest func() (int, error)) (measurement, error) {
	st, err := os.Stat(path)
	if err != nil {
		return measurement{}, err
	}
	best := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		got, err := ingest()
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return measurement{}, err
		}
		if got != wantRows {
			return measurement{}, fmt.Errorf("%s: decoded %d rows, want %d", path, got, wantRows)
		}
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return measurement{
		FileBytes: st.Size(),
		BestS:     best,
		RowsPerS:  float64(wantRows) / best,
		MBPerS:    float64(st.Size()) / 1e6 / best,
	}, nil
}
