// Customsched: how to implement and plug in your own scheduler against the
// sched.Scheduler SPI. The example builds a two-phase "greedy + local
// search" scheduler — greedy earliest-finish seeding followed by randomized
// pairwise improvement — registers it next to the built-ins, and races it
// against the paper's algorithms on a heterogeneous batch.
//
// Run with:
//
//	go run ./examples/customsched
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"

	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/rbs"
)

// localSearch is the custom scheduler: greedy seed, then hill climbing on
// the estimated makespan by moving cloudlets off the critical VM.
type localSearch struct {
	moves int // random improvement attempts
}

// Name implements sched.Scheduler.
func (*localSearch) Name() string { return "localsearch" }

// Schedule implements sched.Scheduler.
func (s *localSearch) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	// Phase 1: greedy earliest-finish seeding (reusing a built-in).
	seed, err := sched.NewGreedy().Schedule(ctx)
	if err != nil {
		return nil, err
	}
	// Phase 2: hill climbing. Track per-VM load; repeatedly try to move a
	// random cloudlet from the most loaded VM to a random other VM and keep
	// the move when the makespan estimate improves.
	load := sched.Load(seed)
	assignIdx := make(map[*cloud.Cloudlet]int, len(seed))
	for i, a := range seed {
		assignIdx[a.Cloudlet] = i
	}
	busiest := func() *cloud.VM {
		var worst *cloud.VM
		for vm, l := range load {
			if worst == nil || l > load[worst] {
				worst = vm
			}
			_ = l
		}
		return worst
	}
	for move := 0; move < s.moves; move++ {
		victim := busiest()
		// Pick a random cloudlet currently on the busiest VM.
		var onVictim []int
		for i, a := range seed {
			if a.VM == victim {
				onVictim = append(onVictim, i)
			}
		}
		if len(onVictim) == 0 {
			break
		}
		i := onVictim[ctx.Rand.Intn(len(onVictim))]
		target := ctx.VMs[ctx.Rand.Intn(len(ctx.VMs))]
		if target == victim {
			continue
		}
		c := seed[i].Cloudlet
		oldCost := load[victim]
		newCost := load[target] + target.EstimateExecTime(c)
		if newCost < oldCost {
			load[victim] -= victim.EstimateExecTime(c)
			load[target] = newCost
			seed[i].VM = target
		}
	}
	return seed, nil
}

func main() {
	nVMs := flag.Int("vms", 60, "VM fleet size")
	nCloudlets := flag.Int("cloudlets", 1200, "cloudlet batch size")
	flag.Parse()

	// Register the custom scheduler exactly like the built-ins do, so CLI
	// tooling and experiment harnesses can find it by name.
	sched.Register("localsearch", func() sched.Scheduler { return &localSearch{moves: 2000} })

	fmt.Println("Racing the custom local-search scheduler against the paper's algorithms:")
	fmt.Printf("%-12s %14s %14s %14s\n", "alg", "sched-time", "sim-time(ms)", "cost")
	for _, name := range []string{"base", "aco", "hbo", "rbs", "localsearch"} {
		scheduler, err := sched.New(name)
		if err != nil {
			log.Fatal(err)
		}
		scenario, err := workload.Heterogeneous(*nVMs, *nCloudlets, 4, 99)
		if err != nil {
			log.Fatal(err)
		}
		ctx := scenario.Context()
		start := time.Now()
		assignments, err := scheduler.Schedule(ctx)
		schedTime := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, assignments); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		cls, vms := sched.Split(assignments)
		res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			log.Fatal(err)
		}
		rep := metrics.Collect(name, res.Finished, scenario.Env.VMs, schedTime)
		fmt.Printf("%-12s %14v %14.1f %14.1f\n",
			name, rep.SchedulingTime.Round(time.Microsecond), rep.SimTimeMillis(), rep.Cost)
	}
}
