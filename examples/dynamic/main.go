// Dynamic: the extension features working together — Poisson cloudlet
// arrivals instead of the paper's batch-at-zero submission, network staging
// delays through a broker-centric star topology, a per-VM Gantt view of the
// resulting execution, and host energy accounting under a linear power
// model.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/hybrid"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/trace"
	"bioschedsim/internal/workload"
)

func main() {
	nVMsF := flag.Int("vms", 12, "VM fleet size")
	nCloudletF := flag.Int("cloudlets", 120, "cloudlet batch size")
	flag.Parse()
	nVMs, nCloudlet := *nVMsF, *nCloudletF
	const (
		rate = 2.0 // cloudlet arrivals per second
		seed = 7
	)

	scenario, err := workload.Heterogeneous(nVMs, nCloudlet, 3, seed)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's future-work hybrid picks its behaviour from the
	// environment: this price-spread plant routes to HBO.
	scheduler := hybrid.Default()
	ctx := scenario.Context()
	assignments, err := scheduler.Schedule(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid scheduler selected behaviour: %s\n\n", scheduler.LastChoice())

	// Build a star topology: the broker in the middle, one spoke per
	// datacenter, 5 ms latency and 10 Gbps per spoke.
	var dcNames []string
	for _, dc := range scenario.Env.Datacenters {
		dcNames = append(dcNames, dc.Name)
	}
	topo, err := cloud.NewStarTopology("broker", dcNames, 0.005, 10000)
	if err != nil {
		log.Fatal(err)
	}

	// Poisson arrivals: cloudlet i becomes available at arrivals[i]; its
	// submission is additionally delayed by the staging transfer time.
	arrivals, err := workload.PoissonArrivals(nCloudlet, rate, seed)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, scenario.Env, cloud.TimeSharedFactory)
	cls, vms := sched.Split(assignments)
	for i, c := range cls {
		staging, err := topo.TransferTime("broker", vms[i].Datacenter().Name, c.FileSize)
		if err != nil {
			log.Fatal(err)
		}
		broker.SubmitAt(c, vms[i], sim.Time(arrivals[i])+staging)
	}
	eng.Run()

	finished := broker.Finished()
	fmt.Printf("executed %d cloudlets over %.1f simulated seconds (%d engine events)\n",
		len(finished), metrics.SimulationTime(finished), eng.Fired())
	fmt.Printf("mean wait %.3f s, mean execution %.3f s, imbalance %.3f\n\n",
		metrics.MeanWaitTime(finished), metrics.MeanExecTime(finished),
		metrics.TimeImbalance(finished))

	// Per-VM activity Gantt.
	fmt.Println(trace.Gantt(finished, 64))

	// Energy accounting: 90 W idle, 250 W loaded hosts.
	energy, err := cloud.HostEnergy(scenario.Env, finished, cloud.LinearPower{Idle: 90, Max: 250})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plant energy over the %.1f s horizon: %.1f kJ across %d hosts\n",
		energy.Horizon, energy.TotalJoules/1000, len(energy.PerHost))

	// Timeline CSV on stdout when asked.
	if len(os.Args) > 1 && os.Args[1] == "-csv" {
		if err := trace.FromFinished(finished).WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
