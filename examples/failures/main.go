// Failures: resilience and elasticity working together. A batch is
// scheduled with ACO; mid-run, a third of the fleet is killed (progress on
// the victims is retained and migrated by the failover policy), and a
// threshold autoscaler — the rule-based EC2 mechanism the paper's §II
// describes — provisions replacement capacity when the surviving VMs
// overload.
//
// Run with:
//
//	go run ./examples/failures
package main

import (
	"flag"
	"fmt"
	"log"

	"bioschedsim/internal/aco"
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/elastic"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"
)

func main() {
	nVMsF := flag.Int("vms", 12, "VM fleet size")
	nCloudletF := flag.Int("cloudlets", 240, "cloudlet batch size")
	flag.Parse()
	nVMs, nCloudlet := *nVMsF, *nCloudletF
	const seed = 21
	scenario, err := workload.Heterogeneous(nVMs, nCloudlet, 3, seed)
	if err != nil {
		log.Fatal(err)
	}
	ctx := scenario.Context()
	assignments, err := aco.Default().Schedule(ctx)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, scenario.Env, cloud.TimeSharedFactory)

	// Autoscaler: replacement capacity arrives when average residency
	// exceeds 8 cloudlets per VM.
	autoscaler, err := elastic.New(broker, elastic.Policy{
		ScaleUpLoad:   8,
		ScaleDownLoad: 1,
		Interval:      2,
		MinVMs:        4,
		MaxVMs:        24,
		Template:      elastic.VMTemplate{MIPS: 2000, PEs: 1, RAM: 512, Bw: 500, Size: 5000},
	}, cloud.TimeSharedFactory, 1000)
	if err != nil {
		log.Fatal(err)
	}

	cls, vms := sched.Split(assignments)
	if err := broker.SubmitAll(cls, vms); err != nil {
		log.Fatal(err)
	}

	// Kill a third of the fleet early in the run; survivors absorb the
	// migrated work via least-loaded failover.
	for i := 0; i < nVMs/3; i++ {
		if err := broker.FailVM(scenario.Env.VMs[i], 5+float64(i), cloud.LeastLoadedFailover); err != nil {
			log.Fatal(err)
		}
	}
	autoscaler.Start()
	eng.Run()

	finished := broker.Finished()
	fmt.Printf("fleet: started with %d VMs, killed %d, ended with %d\n",
		nVMs, nVMs/3, len(scenario.Env.VMs))
	fmt.Printf("cloudlets: %d finished, %d lost, %d migrated by failover\n",
		len(finished), len(broker.Lost()), broker.Migrations())
	fmt.Printf("makespan: %.1f s   imbalance: %.3f\n",
		metrics.SimulationTime(finished), metrics.TimeImbalance(finished))

	fmt.Println("\nautoscaler decisions:")
	if len(autoscaler.Events()) == 0 {
		fmt.Println("  (none — surviving capacity sufficed)")
	}
	for _, e := range autoscaler.Events() {
		fmt.Printf("  t=%6.1fs  %-10s vm%d  (avg residency %.1f, fleet now %d)\n",
			e.Time, e.Act, e.VMID, e.Load, e.Size)
	}

	if len(finished) != nCloudlet {
		log.Fatalf("work lost: %d of %d finished", len(finished), nCloudlet)
	}
	fmt.Println("\nall work completed despite the failures")
}
