// Heterogeneous comparison: the paper's Figure 6 story in one run. All four
// algorithms schedule the same heterogeneous batch; the program prints every
// metric side by side and highlights the paper's headline findings — ACO
// wins simulation time, HBO wins cost, the base test wins count balance,
// and the bio-inspired schedulers pay for their intelligence in scheduling
// time.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"

	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/rbs"
)

func main() {
	nVMsF := flag.Int("vms", 100, "VM fleet size")
	nCloudletF := flag.Int("cloudlets", 2000, "cloudlet batch size")
	workersF := flag.Int("workers", 0, "kernel pool for WorkerTunable schedulers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	nVMs, nCloudlet := *nVMsF, *nCloudletF
	const (
		nDCs = 4
		seed = 2016 // the paper's year; any seed reproduces the shapes
	)
	algorithms := []string{"aco", "base", "hbo", "rbs"}

	fmt.Printf("Heterogeneous scenario: %d VMs (MIPS 500-4000), %d cloudlets (1000-20000 MI), %d datacenters\n\n",
		nVMs, nCloudlet, nDCs)
	fmt.Printf("%-8s %14s %14s %12s %12s %14s\n",
		"alg", "sched-time", "sim-time(ms)", "time-imb", "count-imb", "cost")

	reports := map[string]metrics.Report{}
	for _, name := range algorithms {
		scheduler, err := sched.New(name, sched.WithWorkers(*workersF))
		if err != nil {
			log.Fatal(err)
		}
		// Rebuild the scenario per algorithm: generation is pure in the
		// seed, so every scheduler sees the identical problem.
		scenario, err := workload.Heterogeneous(nVMs, nCloudlet, nDCs, seed)
		if err != nil {
			log.Fatal(err)
		}
		ctx := scenario.Context()
		start := time.Now()
		assignments, err := scheduler.Schedule(ctx)
		schedTime := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		cls, vms := sched.Split(assignments)
		res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			log.Fatal(err)
		}
		rep := metrics.Collect(name, res.Finished, scenario.Env.VMs, schedTime)
		reports[name] = rep
		fmt.Printf("%-8s %14v %14.1f %12.3f %12.3f %14.1f\n",
			name, rep.SchedulingTime.Round(time.Microsecond), rep.SimTimeMillis(),
			rep.Imbalance, rep.CountImbalance, rep.Cost)
	}

	fmt.Println("\nPaper's headline findings (§VI-D2), checked on this run:")
	check := func(label string, ok bool) {
		mark := "PASS"
		if !ok {
			mark = "miss"
		}
		fmt.Printf("  [%s] %s\n", mark, label)
	}
	check("ACO finishes cloudlets fastest (Fig. 6a)",
		reports["aco"].SimTime < reports["base"].SimTime &&
			reports["aco"].SimTime < reports["rbs"].SimTime)
	check("HBO beats the base test on simulation time (Fig. 6a)",
		reports["hbo"].SimTime < reports["base"].SimTime)
	check("base test schedules fastest, ACO slowest (Fig. 6b)",
		reports["base"].SchedulingTime < reports["rbs"].SchedulingTime*10 &&
			reports["aco"].SchedulingTime > reports["hbo"].SchedulingTime)
	check("HBO has the lowest processing cost (Fig. 6d)",
		reports["hbo"].Cost < reports["aco"].Cost &&
			reports["hbo"].Cost < reports["base"].Cost &&
			reports["hbo"].Cost < reports["rbs"].Cost)
	check("base test distributes counts most evenly (Fig. 6c narrative)",
		reports["base"].CountImbalance <= reports["aco"].CountImbalance &&
			reports["base"].CountImbalance <= reports["hbo"].CountImbalance)
}
