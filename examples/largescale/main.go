// Largescale: the paper's homogeneous stress scenario (Figs. 4 and 5) at a
// configurable fraction of the published 1 000 000-cloudlet size. It sweeps
// the fleet and reports how the makespan shrinks as VMs are added and what
// each scheduler's decision time costs — the base test is effectively free
// while the bio-inspired schedulers pay for their search.
//
// Run with (defaults to 1% of the paper's size):
//
//	go run ./examples/largescale [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"

	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/rbs"
)

func main() {
	scale := flag.Float64("scale", 0.01, "fraction of the paper's homogeneous problem size")
	workers := flag.Int("workers", 0, "kernel pool for WorkerTunable schedulers (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	nCloudlets := int(1_000_000 * *scale)
	if nCloudlets < 10 {
		nCloudlets = 10
	}
	fleetSizes := []int{}
	for _, paper := range []int{1000, 3000, 5000, 7000, 9000} {
		n := int(float64(paper) * *scale)
		if n < 2 {
			n = 2
		}
		fleetSizes = append(fleetSizes, n)
	}

	fmt.Printf("Homogeneous scenario at scale %g: %d identical cloudlets (Table IV), fleets %v (Table III)\n\n",
		*scale, nCloudlets, fleetSizes)
	fmt.Printf("%8s | %-10s %14s %16s %12s\n", "VMs", "alg", "sched-time", "sim-time(ms)", "events")

	for _, nVMs := range fleetSizes {
		for _, name := range []string{"base", "aco", "hbo", "rbs"} {
			scheduler, err := sched.New(name, sched.WithWorkers(*workers))
			if err != nil {
				log.Fatal(err)
			}
			scenario, err := workload.Homogeneous(nVMs, nCloudlets, 7)
			if err != nil {
				log.Fatal(err)
			}
			ctx := scenario.Context()
			start := time.Now()
			assignments, err := scheduler.Schedule(ctx)
			schedTime := time.Since(start)
			if err != nil {
				log.Fatal(err)
			}
			cls, vms := sched.Split(assignments)
			res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
			if err != nil {
				log.Fatal(err)
			}
			rep := metrics.Collect(name, res.Finished, scenario.Env.VMs, schedTime)
			fmt.Printf("%8d | %-10s %14v %16.1f %12d\n",
				nVMs, name, rep.SchedulingTime.Round(time.Microsecond), rep.SimTimeMillis(), res.EngineEvents)
		}
		fmt.Println()
	}
	fmt.Println("Note how every scheduler converges to the base test's makespan (the")
	fmt.Println("homogeneous optimum) while their scheduling times differ by orders of")
	fmt.Println("magnitude — the paper's Figure 4 vs Figure 5 contrast.")
}
