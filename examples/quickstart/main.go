// Quickstart: build a small heterogeneous cloud, schedule a batch of
// cloudlets with the paper's ACO scheduler, execute it on the simulator,
// and print the paper's four metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bioschedsim/internal/aco"
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"
)

func main() {
	nVMs := flag.Int("vms", 50, "VM fleet size")
	nCloudlets := flag.Int("cloudlets", 1000, "cloudlet batch size")
	flag.Parse()

	// 1. Materialize the paper's heterogeneous scenario (Tables V-VII):
	//    VMs with MIPS in [500,4000] across 4 datacenters with different
	//    prices, and cloudlets with lengths in [1000,20000] MI.
	scenario, err := workload.Heterogeneous(*nVMs, *nCloudlets, 4, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Schedule the whole batch with ACO (Table II parameters), timing
	//    the decision — the paper's "scheduling time" metric.
	scheduler := aco.Default()
	ctx := scenario.Context()
	start := time.Now()
	assignments, err := scheduler.Schedule(ctx)
	schedulingTime := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, assignments); err != nil {
		log.Fatal(err)
	}

	// 3. Execute the assignment on the discrete-event simulator with
	//    CloudSim-style time-shared VMs.
	cloudlets, vms := sched.Split(assignments)
	result, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cloudlets, vms)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Collect and print the paper's metrics (§VI-C).
	rep := metrics.Collect(scheduler.Name(), result.Finished, scenario.Env.VMs, schedulingTime)
	fmt.Printf("ACO on the heterogeneous scenario (%d VMs, %d cloudlets):\n", *nVMs, *nCloudlets)
	fmt.Printf("  scheduling time    %v\n", rep.SchedulingTime.Round(time.Microsecond))
	fmt.Printf("  simulation time    %.1f ms   (Eq. 12)\n", rep.SimTimeMillis())
	fmt.Printf("  time imbalance     %.3f      (Eq. 13)\n", rep.Imbalance)
	fmt.Printf("  processing cost    %.2f      (Table VII prices)\n", rep.Cost)
	fmt.Printf("  engine events      %d\n", result.EngineEvents)
}
