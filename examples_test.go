package bioschedsim_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesBuildAndRun builds every example program and smoke-runs it
// with tiny parameters, so tier-1 tests catch example rot: an example that
// no longer compiles against the library, or crashes on startup, fails
// here instead of in a reader's terminal.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs build binaries; skipped in -short mode")
	}
	examples := []struct {
		name string
		args []string
		want string // substring the output must contain
	}{
		{"quickstart", []string{"-vms", "4", "-cloudlets", "20"}, "simulation time"},
		{"customsched", []string{"-vms", "4", "-cloudlets", "24"}, "localsearch"},
		{"dynamic", []string{"-vms", "4", "-cloudlets", "12"}, "energy"},
		{"failures", []string{"-vms", "6", "-cloudlets", "24"}, "all work completed"},
		{"heterogeneous", []string{"-vms", "5", "-cloudlets", "40"}, "aco"},
		{"largescale", []string{"-scale", "0.005"}, "homogeneous"},
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, ex := range examples {
		covered[ex.name] = true
	}
	for _, e := range entries {
		if e.IsDir() && !covered[e.Name()] {
			t.Errorf("examples/%s has no smoke-run entry in this test", e.Name())
		}
	}

	binDir := t.TempDir()
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, ex.name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+ex.name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(bin, ex.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("run %v: %v\n%s", ex.args, err, out)
			}
			if !strings.Contains(strings.ToLower(string(out)), ex.want) {
				t.Fatalf("output missing %q:\n%s", ex.want, out)
			}
		})
	}
}
