module bioschedsim

go 1.22
