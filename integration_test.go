package bioschedsim_test

import (
	"testing"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"
)

// runPipeline drives the full library pipeline — generate, schedule,
// validate, execute, measure — for one scheduler on one scenario.
func runPipeline(t *testing.T, name string, scenario *workload.Scenario) metrics.Report {
	t.Helper()
	scheduler, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx := scenario.Context()
	start := time.Now()
	assignments, err := scheduler.Schedule(ctx)
	schedTime := time.Since(start)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := sched.ValidateAssignments(ctx, assignments); err != nil {
		t.Fatalf("%s produced invalid assignments: %v", name, err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(scenario.Env, cloud.TimeSharedFactory, cls, vms)
	if err != nil {
		t.Fatalf("%s execution failed: %v", name, err)
	}
	return metrics.Collect(name, res.Finished, scenario.Env.VMs, schedTime)
}

// TestEveryRegisteredSchedulerEndToEnd exercises the full pipeline for every
// scheduler in the registry on both scenario families.
func TestEveryRegisteredSchedulerEndToEnd(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			het, err := workload.Heterogeneous(12, 120, 3, 7)
			if err != nil {
				t.Fatal(err)
			}
			rep := runPipeline(t, name, het)
			if rep.Cloudlets != 120 {
				t.Fatalf("finished %d of 120", rep.Cloudlets)
			}
			if rep.SimTime <= 0 || rep.Cost <= 0 {
				t.Fatalf("degenerate report: %+v", rep)
			}

			hom, err := workload.Homogeneous(8, 80, 7)
			if err != nil {
				t.Fatal(err)
			}
			rep = runPipeline(t, name, hom)
			if rep.Cloudlets != 80 {
				t.Fatalf("homogeneous finished %d of 80", rep.Cloudlets)
			}
		})
	}
}

// TestPipelineDeterministicAcrossProcessesShape: identical seeds produce
// identical simulated outcomes for stochastic schedulers.
func TestPipelineDeterministic(t *testing.T) {
	for _, name := range []string{"aco", "rbs", "pso", "ga", "random"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mk := func() metrics.Report {
				s, err := workload.Heterogeneous(10, 100, 3, 99)
				if err != nil {
					t.Fatal(err)
				}
				return runPipeline(t, name, s)
			}
			a, b := mk(), mk()
			if a.SimTime != b.SimTime || a.Cost != b.Cost || a.Imbalance != b.Imbalance {
				t.Fatalf("non-deterministic: %+v vs %+v", a, b)
			}
		})
	}
}

// TestHomogeneousOptimality: on a perfectly homogeneous plant the base test
// is the optimum; no scheduler may beat it, and all must be within 10%.
func TestHomogeneousOptimality(t *testing.T) {
	base, err := workload.Homogeneous(10, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	baseRep := runPipeline(t, "base", base)
	for _, name := range []string{"aco", "hbo", "rbs"} {
		s, err := workload.Homogeneous(10, 500, 5)
		if err != nil {
			t.Fatal(err)
		}
		rep := runPipeline(t, name, s)
		if rep.SimTime < baseRep.SimTime*0.999 {
			t.Fatalf("%s beat the homogeneous optimum: %v < %v", name, rep.SimTime, baseRep.SimTime)
		}
		if rep.SimTime > baseRep.SimTime*1.10 {
			t.Fatalf("%s strayed from the optimum: %v vs %v", name, rep.SimTime, baseRep.SimTime)
		}
	}
}

// TestHeterogeneousHeadlines pins the paper's §VI-D2 conclusions on a
// mid-size heterogeneous run.
func TestHeterogeneousHeadlines(t *testing.T) {
	reps := map[string]metrics.Report{}
	for _, name := range []string{"aco", "base", "hbo", "rbs"} {
		s, err := workload.Heterogeneous(50, 1000, 4, 2016)
		if err != nil {
			t.Fatal(err)
		}
		reps[name] = runPipeline(t, name, s)
	}
	if !(reps["aco"].SimTime < reps["base"].SimTime && reps["aco"].SimTime < reps["rbs"].SimTime) {
		t.Fatalf("ACO not fastest: %+v", reps)
	}
	if !(reps["hbo"].SimTime < reps["base"].SimTime) {
		t.Fatalf("HBO not below base: hbo=%v base=%v", reps["hbo"].SimTime, reps["base"].SimTime)
	}
	if !(reps["hbo"].Cost < reps["aco"].Cost && reps["hbo"].Cost < reps["base"].Cost && reps["hbo"].Cost < reps["rbs"].Cost) {
		t.Fatalf("HBO not cheapest: %+v", reps)
	}
	if !(reps["base"].CountImbalance <= reps["hbo"].CountImbalance && reps["base"].CountImbalance <= reps["aco"].CountImbalance) {
		t.Fatalf("base not most count-balanced: %+v", reps)
	}
	if !(reps["base"].SchedulingTime < reps["aco"].SchedulingTime) {
		t.Fatalf("base scheduling not cheaper than ACO")
	}
}

// TestWorkConservationAcrossSchedulers: every cloudlet finishes exactly
// once with zero remaining work, whatever the scheduler.
func TestWorkConservationAcrossSchedulers(t *testing.T) {
	for _, name := range []string{"aco", "base", "hbo", "rbs", "pso", "ga"} {
		s, err := workload.Heterogeneous(9, 90, 3, 31)
		if err != nil {
			t.Fatal(err)
		}
		scheduler, err := sched.New(name)
		if err != nil {
			t.Fatal(err)
		}
		ctx := s.Context()
		assignments, err := scheduler.Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		cls, vms := sched.Split(assignments)
		res, err := cloud.Execute(s.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, c := range res.Finished {
			if seen[c.ID] {
				t.Fatalf("%s: cloudlet %d finished twice", name, c.ID)
			}
			seen[c.ID] = true
			if c.Remaining() != 0 {
				t.Fatalf("%s: cloudlet %d finished with %v MI remaining", name, c.ID, c.Remaining())
			}
			if c.FinishTime < c.StartTime {
				t.Fatalf("%s: cloudlet %d finished before starting", name, c.ID)
			}
		}
		if len(seen) != 90 {
			t.Fatalf("%s: %d distinct cloudlets finished, want 90", name, len(seen))
		}
	}
}

// TestSpaceSharedExecutionPath drives the alternative execution discipline
// end to end.
func TestSpaceSharedExecutionPath(t *testing.T) {
	s, err := workload.Heterogeneous(10, 100, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	assignments, err := sched.NewRoundRobin().Schedule(s.Context())
	if err != nil {
		t.Fatal(err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(s.Env, cloud.SpaceSharedFactory, cls, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != 100 {
		t.Fatalf("finished %d of 100", len(res.Finished))
	}
	// Under space-sharing queued cloudlets wait; some wait must be observed
	// with 10 cloudlets per single-PE VM.
	if metrics.MeanWaitTime(res.Finished) <= 0 {
		t.Fatal("expected queueing under space-shared execution")
	}
}
