// Package aco implements the paper's Ant Colony Optimization scheduler
// (§IV, Algorithm 2, Equations 5–11, Table II parameters).
//
// Each ant builds a complete cloudlet→VM assignment. For cloudlet i an ant
// picks VM j among its allowed set with probability
//
//	p_ij ∝ τ_ij^α · η_ij^β                      (Eq. 5)
//
// where the heuristic desirability η_ij = 1/d_ij is the inverse expected
// execution time
//
//	d_ij = Length_i/(PEs_j·MIPS_j) + FileSize_i/Bw_j   (Eq. 6)
//
// The tabu list enforces the paper's constraint that an ant visits each VM
// once before revisiting: after every VM has been used the list resets,
// which spreads assignments across the fleet in rounds. A tour's quality
// L_k is Eq. 8's estimated makespan — the maximum per-VM sum of d_ij along
// the tour. After all ants finish a tour, pheromone evaporates and is
// reinforced proportionally to tour quality (Eqs. 7–10), with an elitist
// bonus on the iteration-best tour (Eq. 11). The best tour over all
// iterations is returned.
//
// All Eq. 6/8 arithmetic comes from the shared internal/objective layer: a
// compressed execution matrix caches d_ij per (cloudlet, VM-class), η^β is
// precomputed per class alongside it, and tours are scored by an
// incremental Evaluator. The pheromone itself is stored factored as
// τ_ij = g·b_ij with a global decay scalar g, which makes Eq. 9's
// evaporation O(1) instead of O(n·m) and lets Eq. 5's sampling skip the
// per-cell τ^α power entirely: g^α is a common factor of every candidate
// weight, so it cancels in the roulette normalization and only b^α — cached
// and refreshed on deposit — is needed. The sampled distribution is
// mathematically identical to the direct form (individual draws may differ
// in the last float ulp).
//
// Tour construction is the hot path and fans out over Config.Workers: each
// ant owns the xrand child stream indexed by (iteration, ant) and writes
// only its own chunk of the combined tour, so assignments are bit-identical
// for every worker count at a fixed seed. The pheromone update — which
// couples ants — stays serial in ant order after the join.
//
// With Table II's α=0.01, β=0.99 the search is heavily heuristic-driven:
// ACO chases computation speed, which is exactly the behaviour the paper
// reports (best simulation time, worst load imbalance, longest scheduling
// time).
package aco

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"bioschedsim/internal/objective"
	"bioschedsim/internal/objective/kernel"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/xrand"
)

// Config holds the ACO parameters. Defaults reproduce the paper's Table II.
type Config struct {
	Ants       int     // colony size (Table II: 50)
	Alpha      float64 // pheromone weight α (Table II: 0.01)
	Beta       float64 // heuristic weight β (Table II: 0.99)
	Rho        float64 // pheromone decay ρ (Table II: 0.4)
	Q          float64 // pheromone deposit constant (Table II: 100)
	Iterations int     // tour-construction rounds (paper: "maxIterations")
	InitialTau float64 // τ(0), the uniform initial pheromone (Alg. 2's C)
	// MaxMatrixCells bounds the dense per-(cloudlet, VM) pheromone matrix of
	// Eq. 5 and the shared execution-estimate cache. Batches with n·m beyond
	// the bound fall back to a per-VM pheromone vector — exact for the
	// paper's homogeneous scenario (where d_ij is constant per VM) and the
	// only way to run its extreme sizes (1 000 000 cloudlets × 100 000 VMs
	// would need a 10¹¹-cell matrix).
	MaxMatrixCells int64
	// Workers bounds the per-iteration ant-construction pool: 0 means
	// GOMAXPROCS, 1 forces serial. Tours are bit-identical for every worker
	// count — each ant owns the xrand child stream indexed by
	// (iteration, ant), and pheromone deposits are applied serially in ant
	// order after the join.
	Workers int
}

// DefaultConfig returns Table II's parameters with 20 iterations and τ(0)=1.
// The paper's Algorithm 2 leaves maxIterations open ("multiple values were
// tested, and the best parameters were chosen"); 20 is where the combined
// tour quality stops improving on the heterogeneous workload, see the
// abl-aco-params benchmarks.
func DefaultConfig() Config {
	return Config{Ants: 50, Alpha: 0.01, Beta: 0.99, Rho: 0.4, Q: 100, Iterations: 20, InitialTau: 1, MaxMatrixCells: 64 << 20}
}

// Validate rejects configurations the update rules cannot handle.
func (c Config) Validate() error {
	switch {
	case c.Ants <= 0:
		return fmt.Errorf("aco: Ants must be positive, got %d", c.Ants)
	case c.Iterations <= 0:
		return fmt.Errorf("aco: Iterations must be positive, got %d", c.Iterations)
	case c.Rho < 0 || c.Rho >= 1:
		return fmt.Errorf("aco: Rho must be in [0,1), got %v", c.Rho)
	case c.Q <= 0:
		return fmt.Errorf("aco: Q must be positive, got %v", c.Q)
	case c.InitialTau <= 0:
		return fmt.Errorf("aco: InitialTau must be positive, got %v", c.InitialTau)
	case c.Alpha < 0 || c.Beta < 0:
		return fmt.Errorf("aco: Alpha and Beta must be non-negative, got %v/%v", c.Alpha, c.Beta)
	case c.MaxMatrixCells <= 0:
		return fmt.Errorf("aco: MaxMatrixCells must be positive, got %d", c.MaxMatrixCells)
	case c.Workers < 0:
		return fmt.Errorf("aco: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Scheduler is the ACO batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns an ACO scheduler with cfg; zero-value fields fall back to the
// paper's defaults field-by-field.
func New(cfg Config) *Scheduler {
	def := DefaultConfig()
	if cfg.Ants == 0 {
		cfg.Ants = def.Ants
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = def.Alpha, def.Beta
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.Rho == 0 {
		cfg.Rho = def.Rho
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.Q == 0 {
		cfg.Q = def.Q
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = def.Iterations
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.InitialTau == 0 {
		cfg.InitialTau = def.InitialTau
	}
	if cfg.MaxMatrixCells == 0 {
		cfg.MaxMatrixCells = def.MaxMatrixCells
	}
	return &Scheduler{cfg: cfg}
}

// Default returns an ACO scheduler with the paper's Table II parameters.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the scheduler's effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetWorkers implements sched.WorkerTunable: it bounds the ant-construction
// pool (0 = GOMAXPROCS, 1 = serial) without changing any tour.
func (s *Scheduler) SetWorkers(workers int) { s.cfg.Workers = workers }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "aco" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("aco: scheduler requires ctx.Rand")
	}
	run := newRun(s.cfg, ctx)
	best := run.search()
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, v := range best {
		out[i] = sched.Assignment{Cloudlet: ctx.Cloudlets[i], VM: ctx.VMs[v]}
	}
	return out, nil
}

// renormThreshold triggers folding the global decay scalar g back into the
// per-cell base pheromone before g underflows. With ρ=0.4, g reaches it
// after ~650 iterations, so renormalization is essentially free.
const renormThreshold = 1e-120

// minParallelCells is the n·m size below which the ant-construction pool
// stays serial. Each roulette candidate costs a multiply and an add, so the
// break-even point sits well below PopEvaluator's per-individual one.
const minParallelCells = 1 << 12

// run carries the per-call search state. Execution estimates live in a
// shared objective.Matrix (compressed per VM class); pheromone has two
// layouts:
//
//   - dense: the faithful per-(cloudlet, VM) matrix of Eq. 5, used whenever
//     n·m fits within Config.MaxMatrixCells;
//   - vector: one pheromone value per VM, used for the paper's extreme
//     homogeneous sizes (up to 10¹¹ pairs) where a dense matrix is
//     physically impossible. In the homogeneous scenario every cloudlet has
//     identical d_ij per VM, so collapsing the cloudlet dimension is exact;
//     for heterogeneous batches it is an approximation, which is why the
//     threshold is generous and configurable.
//
// Both layouts store τ factored as g·b (see the package comment): evaporate
// touches only g, deposits touch only the cells of the deposited tours, and
// picks read the cached b^α without any math.Pow.
type run struct {
	cfg     Config
	ctx     *sched.Context
	n       int // cloudlets
	m       int // VMs
	workers int // effective construction pool size (≥ 1)
	dense   bool

	mx  *objective.Matrix // shared Eq. 6 cache
	k   int               // VM class count
	cls []int32           // VM → class index

	// etaCls caches η_ij^β per (cloudlet, class) when the execution matrix is
	// materialized; nil means compute on demand (memory-bounded fallback).
	etaCls []float64

	g        float64   // global pheromone decay scalar
	b        []float64 // dense: base pheromone per (cloudlet, VM), row-major
	bAlpha   []float64 // dense: cached b^α, refreshed on deposit
	bVM      []float64 // vector: base pheromone per VM
	bVMAlpha []float64 // vector: cached b^α, refreshed once per iteration

	// tour is the current combined assignment (cloudlet → VM index). Ants
	// write disjoint chunks of it, so the parallel construction phase shares
	// it without synchronization.
	tour []int
	// scratch pools per-worker antScratch values so a parallel iteration
	// never shares tabu lists, roulette weights, or evaluators across
	// goroutines.
	scratch sync.Pool

	bestTour []int
	bestLen  float64
}

// antScratch is one worker's private construction state.
type antScratch struct {
	tabu []bool
	cum  []float64            // roulette cumulative-weight buffer
	eval *objective.Evaluator // incremental Eq. 8 scorer for ant tours
}

func (r *run) getScratch() *antScratch {
	if sc, ok := r.scratch.Get().(*antScratch); ok {
		return sc
	}
	return &antScratch{
		tabu: make([]bool, r.m),
		cum:  make([]float64, r.m),
		eval: objective.NewEvaluator(r.mx, false),
	}
}

func newRun(cfg Config, ctx *sched.Context) *run {
	r := &run{
		cfg: cfg, ctx: ctx,
		n: len(ctx.Cloudlets), m: len(ctx.VMs),
		bestLen: math.Inf(1),
		g:       1,
	}
	// The construction pool: one worker below the dispatch break-even point,
	// otherwise the configured bound. Results never depend on the choice.
	r.workers = objective.EffectiveWorkers(cfg.Workers, int64(r.n)*int64(r.m), minParallelCells)
	r.mx = objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{MaxCells: cfg.MaxMatrixCells, Workers: cfg.Workers})
	r.k = r.mx.K()
	r.cls = make([]int32, r.m)
	for j := 0; j < r.m; j++ {
		r.cls[j] = int32(r.mx.Class(j))
	}
	if r.mx.Cached() {
		// η^β rows are independent; math.Pow per cell is exactly the kind of
		// work that fans out cleanly.
		r.etaCls = make([]float64, r.n*r.k)
		objective.ParallelFor(r.workers, r.n, func(i int) {
			row := r.etaCls[i*r.k : (i+1)*r.k]
			for cl := range row {
				row[cl] = etaPow(r.mx.ExecByClass(i, cl), cfg.Beta)
			}
		})
	}
	r.tour = make([]int, r.n)

	r.dense = int64(r.n)*int64(r.m) <= cfg.MaxMatrixCells
	ba0 := math.Pow(cfg.InitialTau, cfg.Alpha)
	if r.dense {
		r.b = make([]float64, r.n*r.m)
		r.bAlpha = make([]float64, r.n*r.m)
		objective.ParallelFor(r.workers, r.n, func(i int) {
			row := r.b[i*r.m : (i+1)*r.m]
			rowA := r.bAlpha[i*r.m : (i+1)*r.m]
			for idx := range row {
				row[idx] = cfg.InitialTau
				rowA[idx] = ba0
			}
		})
	} else {
		r.bVM = make([]float64, r.m)
		r.bVMAlpha = make([]float64, r.m)
		for j := range r.bVM {
			r.bVM[j] = cfg.InitialTau
			r.bVMAlpha[j] = ba0
		}
	}
	return r
}

// etaPow returns η^β = (1/d)^β with the degenerate d≤0 case clamped so the
// weight stays finite-ready for the roulette's overflow fallback.
func etaPow(d, beta float64) float64 {
	if d <= 0 {
		d = math.SmallestNonzeroFloat64
	}
	return math.Pow(1/d, beta)
}

// eta returns the cached (or on-demand) η_ij^β.
func (r *run) eta(i, j int) float64 {
	if r.etaCls != nil {
		return r.etaCls[i*r.k+int(r.cls[j])]
	}
	return etaPow(r.mx.Exec(i, j), r.cfg.Beta)
}

// search runs the configured iterations and returns the best combined tour.
//
// Following Algorithm 2 and Figure 2, the scheduler "distributes the
// Cloudlets to each ant": the batch is partitioned into one contiguous
// chunk per ant, each ant walks VMs for its own chunk under its own tabu
// list, and the union of all ants' picks is the iteration's solution. The
// best iteration (by Eq. 8 makespan over the union) is returned.
//
// Ants within an iteration are independent — ant k writes only tour[lo:hi)
// of its own chunk and tourLens[k], and draws from its own xrand child
// stream — so construction fans out across the worker pool. Everything that
// couples ants (iteration-best selection, evaporation, deposits in ant
// order, the elitist bonus) runs serially after the join, which is what
// keeps tours bit-identical for every worker count.
func (r *run) search() []int {
	ants := r.cfg.Ants
	if ants > r.n {
		ants = r.n // never more ants than cloudlets; the rest would idle
	}
	chunks := make([][2]int, ants)
	for k := 0; k < ants; k++ {
		chunks[k] = [2]int{k * r.n / ants, (k + 1) * r.n / ants}
	}
	tourLens := make([]float64, ants)
	busy := make([]float64, r.m)
	// One draw off the caller's stream seeds the whole search; ant k of
	// iteration it then owns child stream it·ants+k, so its randomness
	// depends only on (seed, iteration, ant) — never on worker interleaving.
	seed := r.ctx.Rand.Uint64()
	for it := 0; it < r.cfg.Iterations; it++ {
		base := uint64(it) * uint64(ants)
		objective.ParallelFor(r.workers, ants, func(k int) {
			sc := r.getScratch()
			tourLens[k] = r.construct(chunks[k][0], chunks[k][1], xrand.New(seed, base+uint64(k)), sc)
			r.scratch.Put(sc)
		})
		iterBest := 0
		for k := 1; k < ants; k++ {
			if tourLens[k] < tourLens[iterBest] {
				iterBest = k
			}
		}
		// Combined iteration quality: Eq. 8 makespan over the whole batch.
		combined := r.mx.MakespanOf(r.tour, busy)
		if combined < r.bestLen {
			r.bestLen = combined
			r.bestTour = append(r.bestTour[:0], r.tour...)
		}
		r.evaporate()
		// Eq. 9/10: every ant deposits Q/L_k along its own chunk's edges.
		for k := 0; k < ants; k++ {
			r.depositChunk(chunks[k][0], chunks[k][1], r.cfg.Q/tourLens[k])
		}
		// Eq. 11: elitist reinforcement of the iteration-best ant's tour.
		r.depositChunk(chunks[iterBest][0], chunks[iterBest][1], r.cfg.Q/tourLens[iterBest])
		if !r.dense {
			// The vector layout refreshes its K≪n·m cached powers in one pass.
			for j := range r.bVM {
				r.bVMAlpha[j] = math.Pow(r.bVM[j], r.cfg.Alpha)
			}
		}
	}
	return r.bestTour
}

// construct builds one ant's tour for cloudlets [lo,hi) into r.tour[lo:hi]
// and returns its quality L_k per Eq. 8: the maximum over VMs of the summed
// expected execution times the ant routed to that VM. rnd is the ant's own
// child stream and sc its worker-private scratch; the incremental
// evaluator's epoch reset keeps scoring proportional to the chunk, not the
// fleet.
func (r *run) construct(lo, hi int, rnd *rand.Rand, sc *antScratch) float64 {
	tabu := sc.tabu
	for v := range tabu {
		tabu[v] = false
	}
	free := r.m
	// Alg. 2 line 4: the ant starts at a random VM, which is marked visited.
	start := rnd.Intn(r.m)
	tabu[start] = true
	free--
	if free == 0 { // single-VM fleet
		var sum float64
		for i := lo; i < hi; i++ {
			r.tour[i] = start
			sum += r.mx.Exec(i, start)
		}
		return sum
	}
	e := sc.eval
	e.Reset()
	for i := lo; i < hi; i++ {
		j := r.pick(i, tabu, sc.cum, rnd)
		r.tour[i] = j
		e.Assign(i, j)
		tabu[j] = true
		free--
		if free == 0 {
			// Constraint satisfied for every VM: start a fresh visiting round.
			for v := range tabu {
				tabu[v] = false
			}
			free = r.m
		}
	}
	return e.Makespan()
}

// pick samples a VM for cloudlet i by Eq. 5's probabilistic transition rule,
// restricted to VMs outside the tabu list. Weights are b^α·η^β — the g^α
// factor of the true τ^α·η^β is shared by every candidate and cancels in
// the normalization below.
//
// The roulette is prefix-sum form: cum[j] holds the running weight total
// through VM j (tabu VMs contribute exactly 0), and the draw resolves with
// an upper-bound search for the first cum[j] > x. Because cum strictly
// increases at j exactly when weight j is positive, the selected VM always
// carries positive weight and is never tabu. Both halves run through
// internal/objective/kernel, so the same differential suite that pins the
// Eq. 8/12/13 folds pins tour sampling.
func (r *run) pick(i int, tabu []bool, cum []float64, rnd interface{ Float64() float64 }) int {
	cum = cum[:r.m]
	var total float64
	switch {
	case r.dense && r.etaCls != nil:
		// Hot path: the fused kernel masks, multiplies, and accumulates the
		// whole candidate row in one pass over the cached b^α and η^β views.
		ba := r.bAlpha[i*r.m : (i+1)*r.m]
		eta := r.etaCls[i*r.k : (i+1)*r.k]
		total = kernel.WeightedCum(ba, eta, r.cls, tabu, cum)
	case r.dense:
		ba := r.bAlpha[i*r.m : (i+1)*r.m]
		for j := 0; j < r.m; j++ {
			if tabu[j] {
				cum[j] = 0
				continue
			}
			cum[j] = ba[j] * r.eta(i, j)
		}
		total = kernel.CumSum(cum, cum)
	default:
		for j := 0; j < r.m; j++ {
			if tabu[j] {
				cum[j] = 0
				continue
			}
			cum[j] = r.bVMAlpha[j] * r.eta(i, j)
		}
		total = kernel.CumSum(cum, cum)
	}
	if total <= 0 || math.IsInf(total, 1) || math.IsNaN(total) {
		// Degenerate weights (all under/overflowed): fall back to the first
		// allowed VM, keeping the run deterministic.
		for j := 0; j < r.m; j++ {
			if !tabu[j] {
				return j
			}
		}
		return 0
	}
	x := rnd.Float64() * total
	if j := kernel.SearchCum(cum, x); j < r.m {
		return j
	}
	// Float round-off (x rounded up to the total): return the last allowed VM.
	for j := r.m - 1; j >= 0; j-- {
		if !tabu[j] {
			return j
		}
	}
	return 0
}

// evaporate applies Eq. 9's decay τ ← (1−ρ)τ by scaling the global factor
// g in O(1). When g approaches underflow it is folded back into the base
// pheromone cells (rare; see renormThreshold).
func (r *run) evaporate() {
	r.g *= 1 - r.cfg.Rho
	if r.g >= renormThreshold {
		return
	}
	if r.dense {
		for idx := range r.b {
			r.b[idx] *= r.g
			r.bAlpha[idx] = math.Pow(r.b[idx], r.cfg.Alpha)
		}
	} else {
		for j := range r.bVM {
			r.bVM[j] *= r.g
		}
	}
	r.g = 1
}

// depositChunk adds delta pheromone along the current tour's edges for
// cloudlets [lo,hi): τ += delta means b += delta/g in the factored store.
func (r *run) depositChunk(lo, hi int, delta float64) {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	du := delta / r.g
	if !r.dense {
		for i := lo; i < hi; i++ {
			r.bVM[r.tour[i]] += du
		}
		return
	}
	for i := lo; i < hi; i++ {
		idx := i*r.m + r.tour[i]
		r.b[idx] += du
		r.bAlpha[idx] = math.Pow(r.b[idx], r.cfg.Alpha)
	}
}

func init() {
	sched.Register("aco", func() sched.Scheduler { return Default() })
	sched.DeclareTraits("aco", sched.Traits{Stochastic: true, Parallel: true})
}

// TourLength exposes the internal tour-quality function (Eq. 8) for tests
// and ablations: the estimated makespan of an assignment, i.e. the maximum
// over VMs of the summed expected execution times (Eq. 6) routed to it.
func TourLength(assignments []sched.Assignment) float64 {
	return sched.EstimatedMakespan(assignments)
}
