// Package aco implements the paper's Ant Colony Optimization scheduler
// (§IV, Algorithm 2, Equations 5–11, Table II parameters).
//
// Each ant builds a complete cloudlet→VM assignment. For cloudlet i an ant
// picks VM j among its allowed set with probability
//
//	p_ij ∝ τ_ij^α · η_ij^β                      (Eq. 5)
//
// where the heuristic desirability η_ij = 1/d_ij is the inverse expected
// execution time
//
//	d_ij = Length_i/(PEs_j·MIPS_j) + FileSize_i/Bw_j   (Eq. 6)
//
// The tabu list enforces the paper's constraint that an ant visits each VM
// once before revisiting: after every VM has been used the list resets,
// which spreads assignments across the fleet in rounds. A tour's quality
// L_k is Eq. 8's estimated makespan — the maximum per-VM sum of d_ij along
// the tour. After all ants finish a tour, pheromone evaporates and is
// reinforced proportionally to tour quality (Eqs. 7–10), with an elitist
// bonus on the iteration-best tour (Eq. 11). The best tour over all
// iterations is returned.
//
// With Table II's α=0.01, β=0.99 the search is heavily heuristic-driven:
// ACO chases computation speed, which is exactly the behaviour the paper
// reports (best simulation time, worst load imbalance, longest scheduling
// time).
package aco

import (
	"fmt"
	"math"

	"bioschedsim/internal/sched"
)

// Config holds the ACO parameters. Defaults reproduce the paper's Table II.
type Config struct {
	Ants       int     // colony size (Table II: 50)
	Alpha      float64 // pheromone weight α (Table II: 0.01)
	Beta       float64 // heuristic weight β (Table II: 0.99)
	Rho        float64 // pheromone decay ρ (Table II: 0.4)
	Q          float64 // pheromone deposit constant (Table II: 100)
	Iterations int     // tour-construction rounds (paper: "maxIterations")
	InitialTau float64 // τ(0), the uniform initial pheromone (Alg. 2's C)
	// MaxMatrixCells bounds the dense per-(cloudlet, VM) pheromone matrix of
	// Eq. 5. Batches with n·m beyond the bound fall back to a per-VM
	// pheromone vector — exact for the paper's homogeneous scenario (where
	// d_ij is constant per VM) and the only way to run its extreme sizes
	// (1 000 000 cloudlets × 100 000 VMs would need a 10¹¹-cell matrix).
	MaxMatrixCells int64
}

// DefaultConfig returns Table II's parameters with 20 iterations and τ(0)=1.
// The paper's Algorithm 2 leaves maxIterations open ("multiple values were
// tested, and the best parameters were chosen"); 20 is where the combined
// tour quality stops improving on the heterogeneous workload, see the
// abl-aco-params benchmarks.
func DefaultConfig() Config {
	return Config{Ants: 50, Alpha: 0.01, Beta: 0.99, Rho: 0.4, Q: 100, Iterations: 20, InitialTau: 1, MaxMatrixCells: 64 << 20}
}

// Validate rejects configurations the update rules cannot handle.
func (c Config) Validate() error {
	switch {
	case c.Ants <= 0:
		return fmt.Errorf("aco: Ants must be positive, got %d", c.Ants)
	case c.Iterations <= 0:
		return fmt.Errorf("aco: Iterations must be positive, got %d", c.Iterations)
	case c.Rho < 0 || c.Rho >= 1:
		return fmt.Errorf("aco: Rho must be in [0,1), got %v", c.Rho)
	case c.Q <= 0:
		return fmt.Errorf("aco: Q must be positive, got %v", c.Q)
	case c.InitialTau <= 0:
		return fmt.Errorf("aco: InitialTau must be positive, got %v", c.InitialTau)
	case c.Alpha < 0 || c.Beta < 0:
		return fmt.Errorf("aco: Alpha and Beta must be non-negative, got %v/%v", c.Alpha, c.Beta)
	case c.MaxMatrixCells <= 0:
		return fmt.Errorf("aco: MaxMatrixCells must be positive, got %d", c.MaxMatrixCells)
	}
	return nil
}

// Scheduler is the ACO batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns an ACO scheduler with cfg; zero-value fields fall back to the
// paper's defaults field-by-field.
func New(cfg Config) *Scheduler {
	def := DefaultConfig()
	if cfg.Ants == 0 {
		cfg.Ants = def.Ants
	}
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = def.Alpha, def.Beta
	}
	if cfg.Rho == 0 {
		cfg.Rho = def.Rho
	}
	if cfg.Q == 0 {
		cfg.Q = def.Q
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = def.Iterations
	}
	if cfg.InitialTau == 0 {
		cfg.InitialTau = def.InitialTau
	}
	if cfg.MaxMatrixCells == 0 {
		cfg.MaxMatrixCells = def.MaxMatrixCells
	}
	return &Scheduler{cfg: cfg}
}

// Default returns an ACO scheduler with the paper's Table II parameters.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the scheduler's effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "aco" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("aco: scheduler requires ctx.Rand")
	}
	run := newRun(s.cfg, ctx)
	best := run.search()
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, v := range best {
		out[i] = sched.Assignment{Cloudlet: ctx.Cloudlets[i], VM: ctx.VMs[v]}
	}
	return out, nil
}

// run carries the per-call search state. Two pheromone layouts exist:
//
//   - dense: the faithful per-(cloudlet, VM) matrix of Eq. 5, used whenever
//     n·m fits within Config.MaxMatrixCells;
//   - vector: one pheromone value per VM, used for the paper's extreme
//     homogeneous sizes (up to 10¹¹ pairs) where a dense matrix is
//     physically impossible. In the homogeneous scenario every cloudlet has
//     identical d_ij per VM, so collapsing the cloudlet dimension is exact;
//     for heterogeneous batches it is an approximation, which is why the
//     threshold is generous and configurable.
type run struct {
	cfg   Config
	ctx   *sched.Context
	n     int // cloudlets
	m     int // VMs
	dense bool

	d   [][]float64 // dense: d_ij expected execution times (Eq. 6)
	eta [][]float64 // dense: η_ij^β, precomputed
	tau [][]float64 // dense: pheromone τ_ij

	tauVM  []float64 // vector: pheromone per VM
	invCap []float64 // vector: cached 1/(PEs·MIPS) per VM
	invBw  []float64 // vector: cached 1/Bw per VM (0 when Bw is 0)

	tour []int // scratch: current combined assignment (cloudlet → VM index)

	bestTour []int
	bestLen  float64
}

func newRun(cfg Config, ctx *sched.Context) *run {
	r := &run{cfg: cfg, ctx: ctx, n: len(ctx.Cloudlets), m: len(ctx.VMs), bestLen: math.Inf(1)}
	r.dense = int64(r.n)*int64(r.m) <= cfg.MaxMatrixCells
	r.tour = make([]int, r.n)
	if r.dense {
		r.d = make([][]float64, r.n)
		r.eta = make([][]float64, r.n)
		r.tau = make([][]float64, r.n)
		for i, c := range ctx.Cloudlets {
			r.d[i] = make([]float64, r.m)
			r.eta[i] = make([]float64, r.m)
			r.tau[i] = make([]float64, r.m)
			for j, vm := range ctx.VMs {
				dij := vm.EstimateExecTime(c) // Eq. 6
				if dij <= 0 {
					dij = math.SmallestNonzeroFloat64
				}
				r.d[i][j] = dij
				r.eta[i][j] = math.Pow(1/dij, cfg.Beta)
				r.tau[i][j] = cfg.InitialTau
			}
		}
		return r
	}
	r.tauVM = make([]float64, r.m)
	r.invCap = make([]float64, r.m)
	r.invBw = make([]float64, r.m)
	for j, vm := range ctx.VMs {
		r.tauVM[j] = cfg.InitialTau
		r.invCap[j] = 1 / vm.Capacity()
		if vm.Bw > 0 {
			r.invBw[j] = 1 / vm.Bw
		}
	}
	return r
}

// dij returns Eq. 6's expected execution time of cloudlet i on VM j.
func (r *run) dij(i, j int) float64 {
	if r.dense {
		return r.d[i][j]
	}
	c := r.ctx.Cloudlets[i]
	d := c.Length*r.invCap[j] + c.FileSize*r.invBw[j]
	if d <= 0 {
		return math.SmallestNonzeroFloat64
	}
	return d
}

// weight returns Eq. 5's unnormalized transition weight τ^α·η^β.
func (r *run) weight(i, j int) float64 {
	if r.dense {
		return math.Pow(r.tau[i][j], r.cfg.Alpha) * r.eta[i][j]
	}
	return math.Pow(r.tauVM[j], r.cfg.Alpha) * math.Pow(1/r.dij(i, j), r.cfg.Beta)
}

// search runs the configured iterations and returns the best combined tour.
//
// Following Algorithm 2 and Figure 2, the scheduler "distributes the
// Cloudlets to each ant": the batch is partitioned into one contiguous
// chunk per ant, each ant walks VMs for its own chunk under its own tabu
// list, and the union of all ants' picks is the iteration's solution. The
// best iteration (by Eq. 8 makespan over the union) is returned.
func (r *run) search() []int {
	ants := r.cfg.Ants
	if ants > r.n {
		ants = r.n // never more ants than cloudlets; the rest would idle
	}
	chunks := make([][2]int, ants)
	for k := 0; k < ants; k++ {
		chunks[k] = [2]int{k * r.n / ants, (k + 1) * r.n / ants}
	}
	tourLens := make([]float64, ants)
	vmTime := make([]float64, r.m)
	for it := 0; it < r.cfg.Iterations; it++ {
		iterBest := 0
		for k := 0; k < ants; k++ {
			tourLens[k] = r.construct(chunks[k][0], chunks[k][1])
			if tourLens[k] < tourLens[iterBest] {
				iterBest = k
			}
		}
		// Combined iteration quality: Eq. 8 makespan over the whole batch.
		for j := range vmTime {
			vmTime[j] = 0
		}
		for i, j := range r.tour {
			vmTime[j] += r.dij(i, j)
		}
		combined := 0.0
		for _, t := range vmTime {
			if t > combined {
				combined = t
			}
		}
		if combined < r.bestLen {
			r.bestLen = combined
			r.bestTour = append(r.bestTour[:0], r.tour...)
		}
		r.evaporate()
		// Eq. 9/10: every ant deposits Q/L_k along its own chunk's edges.
		for k := 0; k < ants; k++ {
			r.depositChunk(chunks[k][0], chunks[k][1], r.cfg.Q/tourLens[k])
		}
		// Eq. 11: elitist reinforcement of the iteration-best ant's tour.
		r.depositChunk(chunks[iterBest][0], chunks[iterBest][1], r.cfg.Q/tourLens[iterBest])
	}
	return r.bestTour
}

// construct builds one ant's tour for cloudlets [lo,hi) into r.tour[lo:hi]
// and returns its quality L_k per Eq. 8: the maximum over VMs of the summed
// expected execution times the ant routed to that VM.
func (r *run) construct(lo, hi int) float64 {
	rnd := r.ctx.Rand
	tabu := make([]bool, r.m)
	free := r.m
	vmTime := make(map[int]float64, hi-lo)
	// Alg. 2 line 4: the ant starts at a random VM, which is marked visited.
	start := rnd.Intn(r.m)
	tabu[start] = true
	free--
	if free == 0 { // single-VM fleet
		var sum float64
		for i := lo; i < hi; i++ {
			r.tour[i] = start
			sum += r.dij(i, start)
		}
		return sum
	}
	weights := make([]float64, r.m)
	for i := lo; i < hi; i++ {
		j := r.pick(i, tabu, weights, rnd)
		r.tour[i] = j
		vmTime[j] += r.dij(i, j)
		tabu[j] = true
		free--
		if free == 0 {
			// Constraint satisfied for every VM: start a fresh visiting round.
			for v := range tabu {
				tabu[v] = false
			}
			free = r.m
		}
	}
	var length float64
	for _, t := range vmTime {
		if t > length {
			length = t
		}
	}
	return length
}

// pick samples a VM for cloudlet i by Eq. 5's probabilistic transition rule,
// restricted to VMs outside the tabu list.
func (r *run) pick(i int, tabu []bool, weights []float64, rnd interface{ Float64() float64 }) int {
	var total float64
	for j := 0; j < r.m; j++ {
		if tabu[j] {
			weights[j] = 0
			continue
		}
		w := r.weight(i, j)
		weights[j] = w
		total += w
	}
	if total <= 0 || math.IsInf(total, 1) || math.IsNaN(total) {
		// Degenerate weights (all under/overflowed): fall back to the first
		// allowed VM, keeping the run deterministic.
		for j := 0; j < r.m; j++ {
			if !tabu[j] {
				return j
			}
		}
		return 0
	}
	x := rnd.Float64() * total
	for j := 0; j < r.m; j++ {
		x -= weights[j]
		if x < 0 && weights[j] > 0 {
			return j
		}
	}
	// Float round-off: return the last allowed VM.
	for j := r.m - 1; j >= 0; j-- {
		if !tabu[j] {
			return j
		}
	}
	return 0
}

// evaporate applies Eq. 9's decay τ ← (1−ρ)τ to every pheromone cell.
func (r *run) evaporate() {
	decay := 1 - r.cfg.Rho
	if !r.dense {
		for j := range r.tauVM {
			r.tauVM[j] *= decay
		}
		return
	}
	for i := range r.tau {
		row := r.tau[i]
		for j := range row {
			row[j] *= decay
		}
	}
}

// depositChunk adds delta pheromone along the current tour's edges for
// cloudlets [lo,hi).
func (r *run) depositChunk(lo, hi int, delta float64) {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	if !r.dense {
		for i := lo; i < hi; i++ {
			r.tauVM[r.tour[i]] += delta
		}
		return
	}
	for i := lo; i < hi; i++ {
		r.tau[i][r.tour[i]] += delta
	}
}

func init() {
	sched.Register("aco", func() sched.Scheduler { return Default() })
}

// TourLength exposes the internal tour-quality function (Eq. 8) for tests
// and ablations: the estimated makespan of an assignment, i.e. the maximum
// over VMs of the summed expected execution times (Eq. 6) routed to it.
func TourLength(assignments []sched.Assignment) float64 {
	return sched.EstimatedMakespan(assignments)
}
