package aco

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Ants != 50 {
		t.Errorf("Ants: %d want 50", cfg.Ants)
	}
	if cfg.Alpha != 0.01 {
		t.Errorf("Alpha: %v want 0.01", cfg.Alpha)
	}
	if cfg.Beta != 0.99 {
		t.Errorf("Beta: %v want 0.99", cfg.Beta)
	}
	if cfg.Rho != 0.4 {
		t.Errorf("Rho: %v want 0.4", cfg.Rho)
	}
	if cfg.Q != 100 {
		t.Errorf("Q: %v want 100", cfg.Q)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Ants: 0, Alpha: 1, Beta: 1, Rho: .5, Q: 1, Iterations: 1, InitialTau: 1},
		{Ants: 1, Alpha: 1, Beta: 1, Rho: .5, Q: 1, Iterations: 0, InitialTau: 1},
		{Ants: 1, Alpha: 1, Beta: 1, Rho: 1.0, Q: 1, Iterations: 1, InitialTau: 1},
		{Ants: 1, Alpha: 1, Beta: 1, Rho: -.1, Q: 1, Iterations: 1, InitialTau: 1},
		{Ants: 1, Alpha: 1, Beta: 1, Rho: .5, Q: 0, Iterations: 1, InitialTau: 1},
		{Ants: 1, Alpha: 1, Beta: 1, Rho: .5, Q: 1, Iterations: 1, InitialTau: 0},
		{Ants: 1, Alpha: -1, Beta: 1, Rho: .5, Q: 1, Iterations: 1, InitialTau: 1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewFillsDefaults(t *testing.T) {
	s := New(Config{})
	if s.Config() != DefaultConfig() {
		t.Fatalf("zero config did not default: %+v", s.Config())
	}
	custom := New(Config{Ants: 5, Iterations: 3})
	if custom.Config().Ants != 5 || custom.Config().Iterations != 3 {
		t.Fatal("explicit fields overridden")
	}
	if custom.Config().Rho != 0.4 {
		t.Fatal("unset fields not defaulted")
	}
}

func TestScheduleValidAssignments(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 10, 60, 1)
	s := New(Config{Ants: 10, Iterations: 3})
	got, err := s.Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	mk := func() []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 8, 40, 5)
		got, err := New(Config{Ants: 8, Iterations: 3}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID {
			t.Fatalf("non-deterministic at %d: %d vs %d", i, a[i].VM.ID, b[i].VM.ID)
		}
	}
}

func TestACOBeatsRoundRobinOnTourLength(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 12, 120, 9)
	acoAs, err := New(Config{Ants: 20, Iterations: 5}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rrAs, err := sched.NewRoundRobin().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if TourLength(acoAs) >= TourLength(rrAs) {
		t.Fatalf("ACO tour %v not shorter than round-robin %v", TourLength(acoAs), TourLength(rrAs))
	}
}

func TestACOSpreadsAcrossVMs(t *testing.T) {
	// Tabu cycling must prevent total pile-up: every VM receives work when
	// cloudlets outnumber VMs.
	ctx := schedtest.Heterogeneous(t, 6, 60, 3)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range got {
		counts[a.VM.ID]++
	}
	if len(counts) != 6 {
		t.Fatalf("only %d of 6 VMs used", len(counts))
	}
}

func TestSingleVMFleet(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 1, 10, 2)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a.VM != ctx.VMs[0] {
			t.Fatal("single-VM fleet must route everything to it")
		}
	}
}

func TestRequiresRand(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	ctx.Rand = nil
	if _, err := Default().Schedule(ctx); err == nil {
		t.Fatal("expected error without ctx.Rand")
	}
}

func TestInvalidConfigSurfacesAtSchedule(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	s := &Scheduler{cfg: Config{Ants: -1}}
	if _, err := s.Schedule(ctx); err == nil {
		t.Fatal("expected config error")
	}
}

func TestMoreIterationsNeverWorse(t *testing.T) {
	// The returned tour is the best over all iterations, so quality is
	// monotone in iteration count for a fixed seed sequence prefix property.
	// We assert the weaker, always-true property: result ≤ first-iteration
	// greedy bound obtained with 1 iteration and same ant count.
	short, err := New(Config{Ants: 10, Iterations: 1}).Schedule(schedtest.Heterogeneous(t, 8, 60, 21))
	if err != nil {
		t.Fatal(err)
	}
	long, err := New(Config{Ants: 10, Iterations: 8}).Schedule(schedtest.Heterogeneous(t, 8, 60, 21))
	if err != nil {
		t.Fatal(err)
	}
	if TourLength(long) > TourLength(short)+1e-9 {
		t.Fatalf("8 iterations (%v) worse than 1 (%v)", TourLength(long), TourLength(short))
	}
}

func TestPheromoneInfluence(t *testing.T) {
	// With β=0 (no heuristic) and heavy pheromone weight, the search still
	// yields valid assignments — exercising the α-dominant code path.
	ctx := schedtest.Heterogeneous(t, 6, 30, 8)
	got, err := New(Config{Ants: 10, Alpha: 2, Beta: 1e-12, Rho: 0.2, Q: 50, Iterations: 4, InitialTau: 1}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestVectorModeMatchesDenseShapeOnHomogeneous(t *testing.T) {
	// Force vector mode with a tiny MaxMatrixCells: on a homogeneous
	// workload (d_ij constant per VM) it must still produce a valid,
	// well-spread assignment.
	ctx := schedtest.Homogeneous(t, 8, 64, 3)
	s := New(Config{Ants: 8, Iterations: 3, MaxMatrixCells: 1})
	got, err := s.Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range got {
		counts[a.VM.ID]++
	}
	if len(counts) != 8 {
		t.Fatalf("vector mode used only %d of 8 VMs", len(counts))
	}
}

func TestVectorModeDeterministic(t *testing.T) {
	mk := func() []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 6, 48, 7)
		got, err := New(Config{Ants: 6, Iterations: 2, MaxMatrixCells: 1}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID {
			t.Fatalf("vector mode non-deterministic at %d", i)
		}
	}
}

func TestMaxMatrixCellsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMatrixCells = -1
	if cfg.Validate() == nil {
		t.Fatal("negative MaxMatrixCells accepted")
	}
}

func TestRegisteredInSchedRegistry(t *testing.T) {
	s, err := sched.New("aco")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "aco" {
		t.Fatalf("name: %s", s.Name())
	}
}

func TestSchedulePropertyValid(t *testing.T) {
	f := func(seed int64, vmN, clN uint8) bool {
		nVMs := 1 + int(vmN)%8
		nCls := 1 + int(clN)%30
		ctx := schedtest.Heterogeneous(t, nVMs, nCls, seed)
		got, err := New(Config{Ants: 4, Iterations: 2}).Schedule(ctx)
		if err != nil {
			return false
		}
		return sched.ValidateAssignments(ctx, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTourLength(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 2, 4, 1)
	as, _ := sched.NewRoundRobin().Schedule(ctx)
	// Each estimate: 250/1000 + 300/500 = 0.85; two cloudlets per VM →
	// Eq. 8 makespan 1.7.
	if got := TourLength(as); got < 1.69 || got > 1.71 {
		t.Fatalf("tour length: %v", got)
	}
}

func BenchmarkTableII_ACOIteration(b *testing.B) {
	ctx := schedtest.Heterogeneous(b, 50, 500, 1)
	s := New(Config{Ants: 50, Iterations: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Rand = rand.New(rand.NewSource(int64(i)))
		if _, err := s.Schedule(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
