package aco

import (
	"sync"
	"testing"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

// TestWorkerCountInvariant: the ant-construction pool must never change a
// tour — same seed, same schedule, for any Workers setting. The problem is
// sized above minParallelCells so multi-worker runs really fan out.
func TestWorkerCountInvariant(t *testing.T) {
	mk := func(workers int) []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 12, 400, 17)
		got, err := New(Config{Ants: 16, Iterations: 4, Workers: workers}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		for i := range ref {
			if got[i].VM.ID != ref[i].VM.ID {
				t.Fatalf("Workers=%d diverged from serial at cloudlet %d", workers, i)
			}
		}
	}
}

// Below the serial threshold the pool collapses to one worker; the Workers
// setting must still be invisible in the result.
func TestWorkerCountInvariantSmallProblem(t *testing.T) {
	mk := func(workers int) []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 4, 40, 9)
		got, err := New(Config{Ants: 8, Iterations: 3, Workers: workers}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := mk(1)
	got := mk(8)
	for i := range ref {
		if got[i].VM.ID != ref[i].VM.ID {
			t.Fatalf("Workers=8 diverged from serial at cloudlet %d on a sub-threshold problem", i)
		}
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestConcurrentScheduleRace hammers one shared scheduler from many
// goroutines at full pool width; run under -race it proves the per-worker
// scratch really is private (the scheduler itself is stateless per call).
func TestConcurrentScheduleRace(t *testing.T) {
	s := New(Config{Ants: 12, Iterations: 2, Workers: 0})
	ctxs := make([]*sched.Context, 6)
	for g := range ctxs {
		ctxs[g] = schedtest.Heterogeneous(t, 8, 600, int64(100+g))
	}
	var wg sync.WaitGroup
	for g := 0; g < len(ctxs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := ctxs[g]
			got, err := s.Schedule(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if err := sched.ValidateAssignments(ctx, got); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
