// Package check is the property-testing harness for the scheduling stack:
// it generates randomized scenarios over the paper's parameter space
// (Tables III–VII) plus the degenerate shapes unit fixtures never reach
// (single-VM fleets, fleets wider than the batch, VMs with more PEs than
// the fleet has VMs, arrival bursts, empty batches), runs every registered
// scheduler through the full sched.Context → simulator pipeline, and
// asserts one shared invariant suite:
//
//   - conservation — every cloudlet assigned exactly once to an in-range VM
//   - determinism — same scenario seed ⇒ identical assignment vector
//   - permutation — for schedulers declaring the trait, cloudlet-order
//     permutation leaves the estimated makespan unchanged on
//     identical-cloudlet workloads
//   - oracle — the class-compressed objective.Evaluator agrees with a
//     brute-force straight-line reference executor to 1e-9
//   - eq12 — the simulated makespan equals the max per-VM finish time
//     recomputed independently from the finished cloudlets
//   - eq13 — the degree-of-imbalance metrics are finite and non-negative
//   - reject-empty — schedulers refuse zero-length batches with an error
//
// Failing scenarios shrink to a minimal reproduction (halve cloudlets,
// then VMs, re-check) and carry a one-line `schedcheck replay` command.
// Everything is a pure function of the scenario seed: no wall clock, no
// global randomness, so a failure printed in CI replays identically on a
// laptop.
package check

import (
	"math"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"
)

// Built is a fully materialized scenario: the scheduling context, the
// environment it executes on, and (for burst scenarios) per-cloudlet
// arrival offsets. Each Build call returns fresh objects, which is what
// lets the determinism invariant re-run a scenario from scratch.
type Built struct {
	Ctx *sched.Context
	Env *cloud.Environment
	// Arrivals holds staggered submission offsets (seconds from batch
	// start); nil means the paper's batch-at-zero submission.
	Arrivals []sim.Time
	// Identical reports that every cloudlet in the batch has the same
	// demands, which is what the permutation invariant requires.
	Identical bool
}

// HeterogeneousFixture builds the two-datacenter context scheduler unit
// tests share (extracted from internal/schedtest): nVMs VMs with MIPS
// uniform in [500,4000] (Table V), nCls cloudlets with lengths in
// [1000,20000] MI (Table VI), datacenter 0 carrying Table VII's expensive
// price endpoints and datacenter 1 the cheap ones — a fixed ~4–5x price
// spread cost-aware scheduler tests rely on. All draws come from xrand
// streams of seed.
func HeterogeneousFixture(nVMs, nCls int, seed uint64) (*Built, error) {
	mkHosts := func(base, n int) []*cloud.Host {
		hosts := make([]*cloud.Host, n)
		for i := range hosts {
			hosts[i] = cloud.NewHost(base+i, cloud.NewPEs(16, 4000), 1<<20, 1<<20, 1<<30)
		}
		return hosts
	}
	nh := nVMs/8 + 1
	dcs := []*cloud.Datacenter{
		cloud.NewDatacenter(0, "pricey", cloud.Characteristics{
			CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
		}, mkHosts(0, nh)),
		cloud.NewDatacenter(1, "cheap", cloud.Characteristics{
			CostPerMemory: 0.01, CostPerStorage: 0.001, CostPerBandwidth: 0.01, CostPerProcessing: 3,
		}, mkHosts(nh, nh)),
	}
	vms := workload.GenerateVMs(workload.HeterogeneousVMSpec(), nVMs, seed)
	env := &cloud.Environment{Datacenters: dcs, VMs: vms}
	if err := cloud.Allocate(cloud.LeastLoaded{}, env.Hosts(), vms); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	cls := workload.GenerateCloudlets(workload.HeterogeneousCloudletSpec(), nCls, seed)
	return &Built{
		Ctx: &sched.Context{
			Cloudlets: cls, VMs: vms, Datacenters: dcs,
			Rand: xrand.New(seed, 4),
		},
		Env: env,
	}, nil
}

// HomogeneousFixture builds the single-datacenter identical-VM,
// identical-cloudlet context of Tables III–IV (extracted from
// internal/schedtest), seeded through xrand streams.
func HomogeneousFixture(nVMs, nCls int, seed uint64) (*Built, error) {
	nh := nVMs/16 + 1
	hosts := make([]*cloud.Host, nh)
	for i := range hosts {
		hosts[i] = cloud.NewHost(i, cloud.NewPEs(16, 1000), 1<<24, 1<<24, 1<<36)
	}
	dc := cloud.NewDatacenter(0, "dc", cloud.Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, hosts)
	vms := workload.GenerateVMs(workload.HomogeneousVMSpec(), nVMs, seed)
	env := &cloud.Environment{Datacenters: []*cloud.Datacenter{dc}, VMs: vms}
	if err := cloud.Allocate(cloud.FirstFit{}, hosts, vms); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	cls := workload.GenerateCloudlets(workload.HomogeneousCloudletSpec(), nCls, seed)
	return &Built{
		Ctx: &sched.Context{
			Cloudlets: cls, VMs: vms, Datacenters: []*cloud.Datacenter{dc},
			Rand: xrand.New(seed, 4),
		},
		Env:       env,
		Identical: true,
	}, nil
}

// relDiff returns |a−b| scaled by max(1, |a|, |b|): absolute near zero,
// relative for large magnitudes — the comparison every invariant uses.
func relDiff(a, b float64) float64 {
	scale := 1.0
	if s := math.Abs(a); s > scale {
		scale = s
	}
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) / scale
}
