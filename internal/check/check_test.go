package check

import (
	"strings"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"

	// Link every scheduler into the registry so the campaign covers the
	// full algorithm set, exactly as cmd/schedcheck does.
	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/ga"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/hybrid"
	_ "bioschedsim/internal/pso"
	_ "bioschedsim/internal/rbs"
)

// --- deliberately broken schedulers, registered under test-only names ----

// dupFirst duplicates the first assignment in place of the last: a
// conservation violation whenever the batch has at least two cloudlets.
type dupFirst struct{}

func (dupFirst) Name() string { return "testbroken-dup" }
func (dupFirst) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[i%len(ctx.VMs)]}
	}
	if len(out) >= 2 {
		out[len(out)-1] = out[0]
	}
	return out, nil
}

// flaky alternates placements across calls via retained state: a
// determinism violation on fleets with more than one VM.
type flaky struct{ calls int }

func (f *flaky) Name() string { return "testbroken-flaky" }
func (f *flaky) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	f.calls++
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[(i+f.calls)%len(ctx.VMs)]}
	}
	return out, nil
}

// acceptsEmpty happily returns zero assignments for an empty batch.
type acceptsEmpty struct{}

func (acceptsEmpty) Name() string { return "testbroken-empty" }
func (acceptsEmpty) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if len(ctx.Cloudlets) == 0 {
		return nil, nil
	}
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[i%len(ctx.VMs)]}
	}
	return out, nil
}

// brokenParallel shifts every placement by one VM whenever more than one
// worker is configured: a worker-invariance violation on any fleet with at
// least two VMs — the shape of a kernel whose fan-out leaks into results.
type brokenParallel struct{ workers int }

func (b *brokenParallel) Name() string           { return "testbroken-parallel" }
func (b *brokenParallel) SetWorkers(workers int) { b.workers = workers }
func (b *brokenParallel) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	off := 0
	if b.workers > 1 {
		off = 1
	}
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[(i+off)%len(ctx.VMs)]}
	}
	return out, nil
}

// untunable declares Traits.Parallel without implementing
// sched.WorkerTunable: a misdeclared capability the suite must flag.
type untunable struct{}

func (untunable) Name() string { return "testbroken-untunable" }
func (untunable) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[i%len(ctx.VMs)]}
	}
	return out, nil
}

var flakyInstance = &flaky{}

func init() {
	sched.Register("testbroken-dup", func() sched.Scheduler { return dupFirst{} })
	// One shared instance so state survives across sched.New calls, the way
	// a scheduler with hidden global state would behave.
	sched.Register("testbroken-flaky", func() sched.Scheduler { return flakyInstance })
	sched.Register("testbroken-empty", func() sched.Scheduler { return acceptsEmpty{} })
	sched.Register("testbroken-parallel", func() sched.Scheduler { return &brokenParallel{} })
	sched.DeclareTraits("testbroken-parallel", sched.Traits{Parallel: true})
	sched.Register("testbroken-untunable", func() sched.Scheduler { return untunable{} })
	sched.DeclareTraits("testbroken-untunable", sched.Traits{Parallel: true})
}

// realSchedulers is the production registry minus the broken test plants.
func realSchedulers() []string {
	var out []string
	for _, name := range sched.Names() {
		if !strings.HasPrefix(name, "testbroken-") {
			out = append(out, name)
		}
	}
	return out
}

// --- harness self-tests ---------------------------------------------------

func TestQuickCampaignGreenOverAllSchedulers(t *testing.T) {
	cfg := Quick()
	cfg.Schedulers = realSchedulers()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("%v", f)
	}
	wantChecks := len(cfg.Schedulers) * len(Classes()) * cfg.N
	if res.Checks != wantChecks {
		t.Fatalf("ran %d checks, want %d", res.Checks, wantChecks)
	}
}

func TestCampaignIsDeterministic(t *testing.T) {
	cfg := Quick()
	cfg.Schedulers = []string{"base", "random", "rbs"}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Scenarios != b.Scenarios || a.Checks != b.Checks || len(a.Failures) != len(b.Failures) {
		t.Fatalf("same config produced different campaigns: %+v vs %+v", a, b)
	}
}

func TestGenerateIsPureInSeed(t *testing.T) {
	for _, class := range Classes() {
		a, err := Generate(class, 77, 16, 96)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(class, 77, 16, 96)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: Generate not pure: %v vs %v", class, a, b)
		}
	}
}

func TestBuildIsPureInSeed(t *testing.T) {
	sc, err := Generate(ClassHeterogeneous, 5, 16, 96)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ctx.VMs {
		if d := relDiff(a.Ctx.VMs[i].MIPS, b.Ctx.VMs[i].MIPS); d > 0 {
			t.Fatalf("VM %d MIPS differ across builds: %v vs %v", i, a.Ctx.VMs[i].MIPS, b.Ctx.VMs[i].MIPS)
		}
	}
	for i := range a.Ctx.Cloudlets {
		if d := relDiff(a.Ctx.Cloudlets[i].Length, b.Ctx.Cloudlets[i].Length); d > 0 {
			t.Fatalf("cloudlet %d lengths differ across builds", i)
		}
	}
}

func TestScenarioShapes(t *testing.T) {
	for i := uint64(0); i < 20; i++ {
		if sc, err := Generate(ClassWideFleet, i, 16, 96); err != nil || sc.Cloudlets >= sc.VMs {
			t.Fatalf("widefleet seed %d: cloudlets %d not < VMs %d (err %v)", i, sc.Cloudlets, sc.VMs, err)
		}
		if sc, err := Generate(ClassOneVM, i, 16, 96); err != nil || sc.VMs != 1 {
			t.Fatalf("onevm seed %d: VMs = %d (err %v)", i, sc.VMs, err)
		}
		if sc, err := Generate(ClassEmpty, i, 16, 96); err != nil || sc.Cloudlets != 0 {
			t.Fatalf("empty seed %d: cloudlets = %d (err %v)", i, sc.Cloudlets, err)
		}
		sc, err := Generate(ClassMultiPE, i, 16, 96)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, vm := range b.Ctx.VMs {
			if vm.PEs <= len(b.Ctx.VMs) {
				t.Fatalf("multipe seed %d: VM has %d PEs for a %d-VM fleet", i, vm.PEs, len(b.Ctx.VMs))
			}
		}
	}
}

func TestGenerateRejectsUnknownClassAndTinyCaps(t *testing.T) {
	if _, err := Generate("nosuch", 1, 16, 96); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := Generate(ClassHomogeneous, 1, 1, 96); err == nil {
		t.Fatal("tiny caps accepted")
	}
	if err := (Scenario{Class: "nosuch", VMs: 1, DCs: 1}).Validate(); err == nil {
		t.Fatal("unknown class validated")
	}
}

// TestSeededConservationViolationIsCaughtShrunkAndReplayable is the
// acceptance check for the harness itself: a scheduler that returns a
// duplicate assignment must be caught, shrunk to a minimal scenario, and
// reported with a replay command that reproduces the violation.
func TestSeededConservationViolationIsCaughtShrunkAndReplayable(t *testing.T) {
	cfg := Quick()
	cfg.Schedulers = []string{"testbroken-dup"}
	cfg.Classes = []string{ClassHeterogeneous}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("duplicate-assignment scheduler passed the campaign")
	}
	f := res.Failures[0]
	if f.Invariant != InvConservation {
		t.Fatalf("caught invariant %q, want %q (%s)", f.Invariant, InvConservation, f.Err)
	}
	if !strings.Contains(f.Err, "twice") {
		t.Fatalf("unexpected violation message: %s", f.Err)
	}
	// Shrinking must reach the minimal failing shape: two cloudlets (one
	// duplicated) on a single VM.
	if f.Shrunk.Cloudlets > 3 || f.Shrunk.VMs != 1 {
		t.Fatalf("shrunk scenario not minimal: %v", f.Shrunk)
	}
	// The replay command names the shrunk scenario exactly.
	want := f.Shrunk.ReplayCommand("testbroken-dup")
	if f.Replay != want {
		t.Fatalf("replay command %q, want %q", f.Replay, want)
	}
	for _, frag := range []string{"schedcheck replay", "-scheduler testbroken-dup", "-scenario heter", "-seed "} {
		if !strings.Contains(f.Replay, frag) {
			t.Fatalf("replay command %q missing %q", f.Replay, frag)
		}
	}
	// And replaying the shrunk scenario reproduces the violation.
	v := CheckScenario("testbroken-dup", f.Shrunk)
	if v == nil {
		t.Fatal("replaying the shrunk scenario did not reproduce the violation")
	}
	if v.Invariant != InvConservation {
		t.Fatalf("replay reproduced %q, want %q", v.Invariant, InvConservation)
	}
}

// TestSeededWorkerInvarianceViolationIsCaughtShrunkAndReplayable is the
// acceptance check for the worker-invariance suite: a scheduler whose
// results change with the worker count must be caught — even on a
// single-core runner, because workers=2 is always exercised — shrunk to a
// minimal scenario, and reproducible through its replay command.
func TestSeededWorkerInvarianceViolationIsCaughtShrunkAndReplayable(t *testing.T) {
	cfg := Quick()
	cfg.Schedulers = []string{"testbroken-parallel"}
	cfg.Classes = []string{ClassHeterogeneous}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("worker-dependent scheduler passed the campaign")
	}
	f := res.Failures[0]
	if f.Invariant != InvWorkerInvariance {
		t.Fatalf("caught invariant %q, want %q (%s)", f.Invariant, InvWorkerInvariance, f.Err)
	}
	if !strings.Contains(f.Err, "workers=") {
		t.Fatalf("unexpected violation message: %s", f.Err)
	}
	// Minimal failing shape: one cloudlet on a multi-VM fleet (with a single
	// VM the off-by-one cannot show; halving stops at 2 or 3 VMs depending
	// on the generated fleet size's halving path).
	if f.Shrunk.Cloudlets != 1 || f.Shrunk.VMs < 2 || f.Shrunk.VMs > 3 {
		t.Fatalf("shrunk scenario not minimal: %v", f.Shrunk)
	}
	if want := f.Shrunk.ReplayCommand("testbroken-parallel"); f.Replay != want {
		t.Fatalf("replay command %q, want %q", f.Replay, want)
	}
	// And replaying the shrunk scenario reproduces the violation.
	v := CheckScenario("testbroken-parallel", f.Shrunk)
	if v == nil || v.Invariant != InvWorkerInvariance {
		t.Fatalf("replaying the shrunk scenario did not reproduce the violation: %v", v)
	}
}

func TestParallelDeclarationWithoutKnobIsCaught(t *testing.T) {
	sc, err := Generate(ClassHomogeneous, 11, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	v := CheckScenario("testbroken-untunable", sc)
	if v == nil || v.Invariant != InvWorkerInvariance {
		t.Fatalf("misdeclared Parallel trait not caught: %v", v)
	}
	if !strings.Contains(v.Err.Error(), "WorkerTunable") {
		t.Fatalf("unexpected violation message: %v", v.Err)
	}
}

func TestDeterminismViolationIsCaught(t *testing.T) {
	sc, err := Generate(ClassHeterogeneous, 3, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sc.VMs < 2 {
		sc.VMs = 2
	}
	v := CheckScenario("testbroken-flaky", sc)
	if v == nil || v.Invariant != InvDeterminism {
		t.Fatalf("stateful scheduler not caught as determinism violation: %v", v)
	}
}

func TestEmptyBatchAcceptanceIsCaught(t *testing.T) {
	sc := Scenario{Class: ClassEmpty, VMs: 3, Cloudlets: 0, DCs: 1, Seed: 9}
	if v := CheckScenario("testbroken-empty", sc); v == nil || v.Invariant != InvRejectEmpty {
		t.Fatalf("empty-batch acceptance not caught: %v", v)
	}
	// The production baseline rejects empty batches.
	if v := CheckScenario("base", sc); v != nil {
		t.Fatalf("base flagged on empty batch: %v", v)
	}
}

func TestShrinkReturnsPassingScenarioUnchanged(t *testing.T) {
	sc, err := Generate(ClassHomogeneous, 4, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, v := Shrink("base", sc)
	if v != nil || shrunk != sc {
		t.Fatalf("Shrink changed a passing scenario: %v (violation %v)", shrunk, v)
	}
}

func TestFixturesAreExecutable(t *testing.T) {
	for name, build := range map[string]func() (*Built, error){
		"heterogeneous": func() (*Built, error) { return HeterogeneousFixture(6, 30, 5) },
		"homogeneous":   func() (*Built, error) { return HomogeneousFixture(6, 30, 5) },
	} {
		b, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Env.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(b.Ctx.Cloudlets) != 30 || len(b.Ctx.VMs) != 6 {
			t.Fatalf("%s: wrong sizes", name)
		}
	}
}

// TestShardInvarianceViolationIsCaught proves the shard-count-invariance
// check detects a broken cross-shard merge: a planted execution seam that
// skews one cloudlet's finish time whenever more than one shard is in play
// must fail the invariant, while the real executeSharded passes (the green
// campaign above runs it on every scenario).
func TestShardInvarianceViolationIsCaught(t *testing.T) {
	orig := shardExecute
	defer func() { shardExecute = orig }()
	shardExecute = func(b *Built, pos []int, parts [][]*cloud.VM) ([][]*cloud.Cloudlet, error) {
		out, err := executeSharded(b, pos, parts)
		if err != nil || len(parts) == 1 {
			return out, err
		}
		// The plant: one shard's clock drifts — exactly the class of bug a
		// broken metric merge would hide.
		for si := len(out) - 1; si >= 0; si-- {
			if len(out[si]) > 0 {
				out[si][0].FinishTime += 1
				break
			}
		}
		return out, nil
	}
	sc := Scenario{Class: ClassHeterogeneous, VMs: 6, Cloudlets: 12, DCs: 1, Seed: 5}
	v := CheckScenario("base", sc)
	if v == nil {
		t.Fatal("skewed shard execution passed the invariance check")
	}
	if v.Invariant != InvShardInvariance {
		t.Fatalf("caught invariant %q, want %q (%v)", v.Invariant, InvShardInvariance, v.Err)
	}
}

// TestShardInvarianceSkipsSingleVMFleets: a 1-VM fleet admits only the
// trivial partition, so the invariant has nothing to compare and must not
// fail the scenario.
func TestShardInvarianceSkipsSingleVMFleets(t *testing.T) {
	if v := CheckScenario("base", Scenario{Class: ClassOneVM, VMs: 1, Cloudlets: 4, DCs: 1, Seed: 3}); v != nil {
		t.Fatalf("single-VM scenario failed: %v", v)
	}
}

// TestShardInvarianceCoversBurstArrivals pins the staggered-arrival path:
// partitioned execution must respect per-cloudlet arrival offsets and still
// merge bit-identically.
func TestShardInvarianceCoversBurstArrivals(t *testing.T) {
	if v := CheckScenario("base", Scenario{Class: ClassBurst, VMs: 5, Cloudlets: 20, DCs: 1, Seed: 11}); v != nil {
		t.Fatalf("burst scenario failed: %v", v)
	}
}
