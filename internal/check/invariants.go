package check

import (
	"fmt"
	"math"
	"runtime"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/xrand"
)

// OracleTol is the relative tolerance the differential oracle grants the
// class-compressed evaluation layer against the brute-force reference
// executor. The fast path is documented bit-identical for add-only
// evaluation, so 1e-9 is generous.
const OracleTol = 1e-9

// Invariant names, stable API for reports and suppression triage.
const (
	InvConservation     = "conservation"
	InvDeterminism      = "determinism"
	InvPermutation      = "permutation"
	InvWorkerInvariance = "worker-invariance"
	InvShardInvariance  = "shard-invariance"
	InvKernelInvariance = "kernel-invariance"
	InvOracle           = "oracle"
	InvQModelOracle     = "qmodel-oracle"
	InvEq12             = "eq12"
	InvEq13             = "eq13"
	InvRejectEmpty      = "reject-empty"
	InvSchedule         = "schedule" // scheduler errored or panicked on a valid scenario
	InvBuild            = "build"    // the harness could not materialize the scenario
)

// Violation is one invariant breach for one (scheduler, scenario) pair.
type Violation struct {
	Invariant string
	Err       error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s: %v", v.Invariant, v.Err)
}

func violationf(inv, format string, args ...any) *Violation {
	return &Violation{Invariant: inv, Err: fmt.Errorf(format, args...)}
}

// safeSchedule runs Schedule converting panics into errors: a panicking
// scheduler must surface as a checkable violation, not kill the harness.
func safeSchedule(s sched.Scheduler, ctx *sched.Context) (as []sched.Assignment, err error) {
	defer func() {
		if r := recover(); r != nil {
			as, err = nil, fmt.Errorf("panic in %s.Schedule: %v", s.Name(), r)
		}
	}()
	return s.Schedule(ctx)
}

// posVector maps an assignment list onto the canonical vector form
// pos[cloudletIndex] = vmIndex. It requires conservation to have been
// validated first (every cloudlet exactly once, every VM in-context).
func posVector(ctx *sched.Context, as []sched.Assignment) ([]int, error) {
	clIdx := make(map[*cloud.Cloudlet]int, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		clIdx[c] = i
	}
	vmIdx := make(map[*cloud.VM]int, len(ctx.VMs))
	for j, vm := range ctx.VMs {
		vmIdx[vm] = j
	}
	pos := make([]int, len(ctx.Cloudlets))
	for _, a := range as {
		i, ok := clIdx[a.Cloudlet]
		if !ok {
			return nil, fmt.Errorf("assignment references cloudlet %d outside the context", a.Cloudlet.ID)
		}
		j, ok := vmIdx[a.VM]
		if !ok {
			return nil, fmt.Errorf("assignment references VM %d outside the context", a.VM.ID)
		}
		pos[i] = j
	}
	return pos, nil
}

// CheckScenario builds sc and runs the full invariant suite for the named
// scheduler. It returns nil when every applicable invariant holds.
func CheckScenario(scheduler string, sc Scenario) *Violation {
	b, err := sc.Build()
	if err != nil {
		return violationf(InvBuild, "building %v: %v", sc, err)
	}
	s, err := sched.New(scheduler)
	if err != nil {
		return violationf(InvBuild, "%v", err)
	}

	// Zero-length batches: the only correct response is an error.
	if len(b.Ctx.Cloudlets) == 0 {
		if as, err := safeSchedule(s, b.Ctx); err == nil {
			return violationf(InvRejectEmpty,
				"%s accepted an empty batch and returned %d assignments instead of an error", scheduler, len(as))
		}
		return nil
	}

	as, err := safeSchedule(s, b.Ctx)
	if err != nil {
		return violationf(InvSchedule, "%s failed on a valid scenario: %v", scheduler, err)
	}

	// Conservation: each cloudlet exactly once, only in-context VMs.
	if err := sched.ValidateAssignments(b.Ctx, as); err != nil {
		return violationf(InvConservation, "%v", err)
	}
	pos, err := posVector(b.Ctx, as)
	if err != nil {
		return violationf(InvConservation, "%v", err)
	}

	if v := checkDeterminism(scheduler, sc, pos); v != nil {
		return v
	}
	if v := checkWorkerInvariance(scheduler, sc, pos); v != nil {
		return v
	}
	if v := checkPermutation(scheduler, sc, b, as); v != nil {
		return v
	}
	if v := checkOracle(b, as, pos); v != nil {
		return v
	}
	if v := checkExecution(sc, b, as); v != nil {
		return v
	}
	if v := checkShardInvariance(sc, pos); v != nil {
		return v
	}
	return checkKernelInvariance(scheduler, sc)
}

// checkDeterminism rebuilds the scenario from its seed and re-schedules
// with a fresh scheduler instance: the assignment vector must be identical.
func checkDeterminism(scheduler string, sc Scenario, pos []int) *Violation {
	b2, err := sc.Build()
	if err != nil {
		return violationf(InvBuild, "rebuilding %v: %v", sc, err)
	}
	s2, err := sched.New(scheduler)
	if err != nil {
		return violationf(InvBuild, "%v", err)
	}
	as2, err := safeSchedule(s2, b2.Ctx)
	if err != nil {
		return violationf(InvDeterminism, "%s failed on the re-run of the same seed: %v", scheduler, err)
	}
	if err := sched.ValidateAssignments(b2.Ctx, as2); err != nil {
		return violationf(InvDeterminism, "re-run produced invalid assignments: %v", err)
	}
	pos2, err := posVector(b2.Ctx, as2)
	if err != nil {
		return violationf(InvDeterminism, "%v", err)
	}
	for i := range pos {
		if pos[i] != pos2[i] {
			return violationf(InvDeterminism,
				"same seed produced different assignments: cloudlet %d went to VM %d, then VM %d", i, pos[i], pos2[i])
		}
	}
	return nil
}

// checkWorkerInvariance holds schedulers declaring Traits.Parallel to the
// Workers contract: the same seeded scenario re-run at workers ∈ {1, 2,
// GOMAXPROCS} must produce assignments identical to the default-config
// baseline. Worker count 2 is always exercised so real fan-out divergence is
// caught even on a single-core runner.
func checkWorkerInvariance(scheduler string, sc Scenario, want []int) *Violation {
	tr, ok := sched.TraitsOf(scheduler)
	if !ok || !tr.Parallel {
		return nil
	}
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		s, err := sched.New(scheduler, sched.WithWorkers(w))
		if err != nil {
			return violationf(InvBuild, "%v", err)
		}
		if _, tunable := s.(sched.WorkerTunable); !tunable {
			return violationf(InvWorkerInvariance,
				"%s declares Traits.Parallel but does not implement sched.WorkerTunable", scheduler)
		}
		bw, err := sc.Build()
		if err != nil {
			return violationf(InvBuild, "rebuilding %v: %v", sc, err)
		}
		as, err := safeSchedule(s, bw.Ctx)
		if err != nil {
			return violationf(InvWorkerInvariance, "%s failed at workers=%d: %v", scheduler, w, err)
		}
		if err := sched.ValidateAssignments(bw.Ctx, as); err != nil {
			return violationf(InvWorkerInvariance, "workers=%d produced invalid assignments: %v", w, err)
		}
		pos, err := posVector(bw.Ctx, as)
		if err != nil {
			return violationf(InvWorkerInvariance, "%v", err)
		}
		for i := range want {
			if pos[i] != want[i] {
				return violationf(InvWorkerInvariance,
					"%s diverged at workers=%d: cloudlet %d went to VM %d, baseline chose VM %d",
					scheduler, w, i, pos[i], want[i])
			}
		}
	}
	return nil
}

// checkPermutation verifies the declared permutation-invariance trait:
// on identical-cloudlet workloads, shuffling submission order must leave
// the estimated makespan unchanged.
func checkPermutation(scheduler string, sc Scenario, b *Built, as []sched.Assignment) *Violation {
	tr, ok := sched.TraitsOf(scheduler)
	if !ok || !tr.PermutationInvariant || !b.Identical || len(b.Ctx.Cloudlets) < 2 {
		return nil
	}
	b3, err := sc.Build()
	if err != nil {
		return violationf(InvBuild, "rebuilding %v: %v", sc, err)
	}
	// Shuffle the submission order on an independent stream so the
	// scheduler's own ctx.Rand draws stay untouched.
	perm := xrand.New(sc.Seed, 7)
	perm.Shuffle(len(b3.Ctx.Cloudlets), func(i, j int) {
		b3.Ctx.Cloudlets[i], b3.Ctx.Cloudlets[j] = b3.Ctx.Cloudlets[j], b3.Ctx.Cloudlets[i]
	})
	s3, err := sched.New(scheduler)
	if err != nil {
		return violationf(InvBuild, "%v", err)
	}
	as3, err := safeSchedule(s3, b3.Ctx)
	if err != nil {
		return violationf(InvPermutation, "%s failed on the permuted batch: %v", scheduler, err)
	}
	if err := sched.ValidateAssignments(b3.Ctx, as3); err != nil {
		return violationf(InvPermutation, "permuted batch produced invalid assignments: %v", err)
	}
	mk, mk3 := sched.EstimatedMakespan(as), sched.EstimatedMakespan(as3)
	if d := relDiff(mk, mk3); d > OracleTol {
		return violationf(InvPermutation,
			"%s declares permutation invariance but makespan moved %v → %v (rel %.3g) under cloudlet-order permutation",
			scheduler, mk, mk3, d)
	}
	return nil
}

// checkOracle runs the differential oracle: the class-compressed Matrix and
// Evaluator hot path must agree with the straight-line reference executor,
// and the scheduler-facing helper must agree with both.
func checkOracle(b *Built, as []sched.Assignment, pos []int) *Violation {
	mx := objective.NewMatrix(b.Ctx.Cloudlets, b.Ctx.VMs, objective.Options{WithCost: true})
	if err := objective.VerifyAgainstReference(mx, pos, OracleTol); err != nil {
		return violationf(InvOracle, "%v", err)
	}
	ref := objective.ReferenceMakespan(b.Ctx.Cloudlets, b.Ctx.VMs, pos)
	if est := sched.EstimatedMakespan(as); relDiff(est, ref) > OracleTol {
		return violationf(InvOracle,
			"sched.EstimatedMakespan %v diverges from reference %v", est, ref)
	}
	return nil
}

// checkExecution drives the assignment through the simulator and asserts
// the measurement invariants: every cloudlet finishes with sane timestamps,
// Eq. 12's simulated makespan matches an independent recomputation, and
// Eq. 13's imbalance metrics are finite and non-negative.
func checkExecution(sc Scenario, b *Built, as []sched.Assignment) *Violation {
	cls, vms := sched.Split(as)
	var finished []*cloud.Cloudlet
	if b.Arrivals == nil {
		res, err := cloud.Execute(b.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			return violationf(InvEq12, "execution failed: %v", err)
		}
		finished = res.Finished
		// Eq. 12 as the broker computed it must match the metrics package's
		// independent pass over the same cloudlets.
		if d := relDiff(float64(res.SimulationTime()), float64(metrics.SimulationTime(finished))); d > 0 {
			return violationf(InvEq12, "broker Eq.12 %v != metrics Eq.12 %v",
				res.SimulationTime(), metrics.SimulationTime(finished))
		}
	} else {
		var v *Violation
		finished, v = executeWithArrivals(sc, b, as)
		if v != nil {
			return v
		}
	}

	if len(finished) != len(cls) {
		return violationf(InvEq12, "%d of %d cloudlets finished", len(finished), len(cls))
	}
	var minStart, maxFinish sim.Time
	perVM := make(map[*cloud.VM]sim.Time, len(b.Ctx.VMs))
	for i, c := range finished {
		if c.Status != cloud.CloudletFinished {
			return violationf(InvEq12, "cloudlet %d reported finished with status %v", c.ID, c.Status)
		}
		if c.StartTime < c.SubmitTime || c.FinishTime < c.StartTime || c.SubmitTime < 0 {
			return violationf(InvEq12, "cloudlet %d has inconsistent timestamps submit=%v start=%v finish=%v",
				c.ID, c.SubmitTime, c.StartTime, c.FinishTime)
		}
		if c.VM == nil {
			return violationf(InvEq12, "finished cloudlet %d has no recorded VM", c.ID)
		}
		if i == 0 || c.StartTime < minStart {
			minStart = c.StartTime
		}
		if c.FinishTime > maxFinish {
			maxFinish = c.FinishTime
		}
		if c.FinishTime > perVM[c.VM] {
			perVM[c.VM] = c.FinishTime
		}
	}
	// Eq. 12's TmaxFinishTime recomputed independently as the max per-VM
	// finish time must equal the global maximum.
	var perVMMax sim.Time
	for _, t := range perVM {
		if t > perVMMax {
			perVMMax = t
		}
	}
	if d := relDiff(float64(perVMMax), float64(maxFinish)); d > 0 {
		return violationf(InvEq12, "max per-VM finish %v != global max finish %v", perVMMax, maxFinish)
	}
	if d := relDiff(float64(metrics.SimulationTime(finished)), float64(maxFinish-minStart)); d > 0 {
		return violationf(InvEq12, "metrics Eq.12 %v != recomputed span %v",
			metrics.SimulationTime(finished), maxFinish-minStart)
	}

	for name, imb := range map[string]float64{
		"time imbalance (Eq.13)": metrics.TimeImbalance(finished),
		"count imbalance":        metrics.CountImbalance(finished, b.Ctx.VMs),
	} {
		if math.IsNaN(imb) || math.IsInf(imb, 0) || imb < 0 {
			return violationf(InvEq13, "%s = %v, want finite and non-negative", name, imb)
		}
	}
	return nil
}

// executeWithArrivals replays the assignment with the scenario's staggered
// arrival offsets (per cloudlet index, not per assignment position).
func executeWithArrivals(sc Scenario, b *Built, as []sched.Assignment) ([]*cloud.Cloudlet, *Violation) {
	if err := b.Env.Validate(); err != nil {
		return nil, violationf(InvBuild, "environment invalid: %v", err)
	}
	clIdx := make(map[*cloud.Cloudlet]int, len(b.Ctx.Cloudlets))
	for i, c := range b.Ctx.Cloudlets {
		clIdx[c] = i
	}
	cls, vms := sched.Split(as)
	arrivals := make([]sim.Time, len(as))
	for i, c := range cls {
		arrivals[i] = b.Arrivals[clIdx[c]]
	}
	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, b.Env, cloud.TimeSharedFactory)
	if err := broker.SubmitAllSchedule(cls, vms, arrivals); err != nil {
		return nil, violationf(InvEq12, "staged submission failed: %v", err)
	}
	eng.Run()
	if got := len(broker.Finished()); got != len(cls) {
		return nil, violationf(InvEq12, "%d of %d cloudlets finished after burst run (scenario %v)", got, len(cls), sc)
	}
	return broker.Finished(), nil
}
