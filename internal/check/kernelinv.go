package check

import (
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/objective/kernel"
	"bioschedsim/internal/sched"
)

// checkKernelInvariance holds the vectorized objective kernels to their
// differential contract end to end: the same seeded scenario scheduled and
// executed once with the scalar reference kernels forced and once with the
// fastest registered implementation must produce a bit-identical placement
// vector and bit-identical Eq. 12/13 metrics (relDiff > 0, no tolerance).
// The property suite in internal/objective/kernel pins each kernel to its
// scalar loop in isolation; this invariant pins the composition — matrix
// fill, roulette sampling, makespan folds, metric reductions — through a
// whole scheduler run, which is exactly what CLOUDSCHED_NOSIMD toggles.
func checkKernelInvariance(scheduler string, sc Scenario) *Violation {
	fast := kernel.Fastest()
	if fast == kernel.ScalarName {
		return nil // no optimized implementation registered: nothing to diff
	}

	type result struct {
		pos []int
		sim float64 // Eq. 12 over the finished set
		imb float64 // Eq. 13 over the finished set
	}
	runWith := func(name string) (result, *Violation) {
		restore, err := kernel.Force(name)
		if err != nil {
			return result{}, violationf(InvBuild, "forcing kernel %q: %v", name, err)
		}
		defer restore()
		b, err := sc.Build()
		if err != nil {
			return result{}, violationf(InvBuild, "rebuilding %v under kernel %q: %v", sc, name, err)
		}
		s, err := sched.New(scheduler)
		if err != nil {
			return result{}, violationf(InvBuild, "%v", err)
		}
		as, err := safeSchedule(s, b.Ctx)
		if err != nil {
			return result{}, violationf(InvKernelInvariance,
				"%s failed under kernel %q: %v", scheduler, name, err)
		}
		if err := sched.ValidateAssignments(b.Ctx, as); err != nil {
			return result{}, violationf(InvKernelInvariance,
				"kernel %q produced invalid assignments: %v", name, err)
		}
		pos, err := posVector(b.Ctx, as)
		if err != nil {
			return result{}, violationf(InvKernelInvariance, "%v", err)
		}
		var finished []*cloud.Cloudlet
		if b.Arrivals == nil {
			cls, vms := sched.Split(as)
			res, err := cloud.Execute(b.Env, cloud.TimeSharedFactory, cls, vms)
			if err != nil {
				return result{}, violationf(InvKernelInvariance,
					"execution under kernel %q failed: %v", name, err)
			}
			finished = res.Finished
		} else {
			var v *Violation
			finished, v = executeWithArrivals(sc, b, as)
			if v != nil {
				return result{}, v
			}
		}
		return result{
			pos: pos,
			sim: float64(metrics.SimulationTime(finished)),
			imb: metrics.TimeImbalance(finished),
		}, nil
	}

	ref, v := runWith(kernel.ScalarName)
	if v != nil {
		return v
	}
	opt, v := runWith(fast)
	if v != nil {
		return v
	}

	for i := range ref.pos {
		if ref.pos[i] != opt.pos[i] {
			return violationf(InvKernelInvariance,
				"kernel %q diverged from the scalar reference: cloudlet %d went to VM %d, scalar chose VM %d",
				fast, i, opt.pos[i], ref.pos[i])
		}
	}
	if d := relDiff(ref.sim, opt.sim); d > 0 {
		return violationf(InvKernelInvariance,
			"Eq.12 moved across kernels: %v under %q vs %v under scalar (rel %.3g)", opt.sim, fast, ref.sim, d)
	}
	if d := relDiff(ref.imb, opt.imb); d > 0 {
		return violationf(InvKernelInvariance,
			"Eq.13 moved across kernels: %v under %q vs %v under scalar (rel %.3g)", opt.imb, fast, ref.imb, d)
	}
	return nil
}
