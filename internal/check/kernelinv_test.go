package check

import (
	"strings"
	"testing"

	"bioschedsim/internal/objective/kernel"
)

// TestKernelInvarianceViolationIsCaught proves the kernel-invariance check
// detects a broken optimized kernel: a planted implementation whose roulette
// upper-bound search lands one slot off must diverge from the scalar
// reference's placement vector and fail the invariant — and nothing else in
// the suite may mask it, since the plant is self-consistent (deterministic,
// worker-invariant, oracle-clean) and only wrong relative to the scalar
// oracle. The planted failure must then survive shrinking and carry a
// schedcheck replay line, the same triage path every other invariant gets.
func TestKernelInvarianceViolationIsCaught(t *testing.T) {
	plant, ok := kernel.Get(kernel.ScalarName)
	if !ok {
		t.Fatal("scalar reference implementation not registered")
	}
	goodSearch := plant.SearchCum
	plant.Name = "testbroken-searchcum"
	plant.SearchCum = func(cum []float64, x float64) int {
		// The plant: an off-by-one roulette slot — the classic vectorized
		// upper-bound-search bug (<= flipped to <).
		j := goodSearch(cum, x)
		if j+1 < len(cum) {
			return j + 1
		}
		if j > 0 {
			return j - 1
		}
		return j
	}
	restore := kernel.Override(plant)
	defer restore()

	sc := Scenario{Class: ClassHeterogeneous, VMs: 6, Cloudlets: 24, DCs: 1, Seed: 5}
	v := CheckScenario("aco", sc)
	if v == nil {
		t.Fatal("planted broken kernel passed the invariance check")
	}
	if v.Invariant != InvKernelInvariance {
		t.Fatalf("caught invariant %q, want %q (%v)", v.Invariant, InvKernelInvariance, v.Err)
	}

	shrunk, sv := Shrink("aco", sc)
	if sv == nil {
		t.Fatal("shrink lost the planted violation")
	}
	if sv.Invariant != InvKernelInvariance {
		t.Fatalf("shrunk violation is %q, want %q (%v)", sv.Invariant, InvKernelInvariance, sv.Err)
	}
	if shrunk.Cloudlets > sc.Cloudlets || shrunk.VMs > sc.VMs {
		t.Fatalf("shrink grew the scenario: %v from %v", shrunk, sc)
	}
	replay := shrunk.ReplayCommand("aco")
	if !strings.Contains(replay, "schedcheck replay") || !strings.Contains(replay, "-scheduler aco") {
		t.Fatalf("replay line %q missing the schedcheck invocation", replay)
	}
}

// TestKernelInvarianceGreenOnRealKernels pins the other side of the plant:
// with the genuine registered implementations active, the invariant holds on
// the same scenario the plant fails, for a roulette-driven scheduler and a
// deterministic one.
func TestKernelInvarianceGreenOnRealKernels(t *testing.T) {
	sc := Scenario{Class: ClassHeterogeneous, VMs: 6, Cloudlets: 24, DCs: 1, Seed: 5}
	for _, scheduler := range []string{"aco", "base"} {
		if v := CheckScenario(scheduler, sc); v != nil {
			t.Fatalf("%s failed with real kernels: %v", scheduler, v)
		}
	}
}
