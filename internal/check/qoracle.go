package check

import (
	"bioschedsim/internal/plan"
	"bioschedsim/internal/workload"
)

// The qmodel-oracle invariant validates the capacity-planning engine
// against closed-form queueing theory: a homogeneous fleet under plan's
// queue dispatch is an exact M/M/1 (one server) or M/M/c system, so its
// simulated mean wait must agree with internal/qmodel's analytic Wq within
// a documented relative-error band, and every post-warmup completion must
// be recorded (count conservation — a recorder that drops samples can make
// any latency distribution look healthy).
//
// newOracleProcess and newOracleRecorder are plant seams in the style of
// shardExecute: tests swap them for deliberately broken implementations (a
// biased interarrival generator, a sample-dropping recorder) to prove the
// invariant detects both failure modes; production checking always returns
// nil, which makes plan.Run use the spec's real process and recorder.
var (
	newOracleProcess  = func(c plan.OracleCase) workload.ArrivalProcess { return nil }
	newOracleRecorder = func() plan.Recorder { return nil }
)

// OracleCases is the canonical qmodel-differential sweep: ρ ∈
// {0.3, 0.6, 0.9} against M/M/1 (one 1-PE VM) and M/M/c in both fleet
// shapes (c 1-PE VMs behind the central queue, and one c-PE VM). Bands are
// the measured-and-documented tolerances from internal/plan's
// TestQModelDifferential: 10% at ρ ≤ 0.6, 15% at ρ = 0.9 where the
// queue's relaxation time (∝ 1/(1−ρ)²) stretches the transient.
func OracleCases() []plan.OracleCase {
	return []plan.OracleCase{
		{Rho: 0.3, Servers: 1, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.6, Servers: 1, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.9, Servers: 1, VMs: 1, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
		{Rho: 0.3, Servers: 4, VMs: 4, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.6, Servers: 4, VMs: 4, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.9, Servers: 4, VMs: 4, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
		{Rho: 0.3, Servers: 4, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.6, Servers: 4, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
		{Rho: 0.9, Servers: 4, VMs: 1, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
	}
}

// CheckQueueOracle runs the full differential sweep and returns the first
// violation, nil when the simulated queue agrees with theory everywhere.
// Every violation message ends with a runnable `cloudsched plan oracle`
// replay line reproducing the failing case outside the harness.
func CheckQueueOracle() *Violation {
	for _, c := range OracleCases() {
		if v := checkOracleCase(c); v != nil {
			return v
		}
	}
	return nil
}

// checkOracleCase judges one differential configuration.
func checkOracleCase(c plan.OracleCase) *Violation {
	opts := &plan.RunOptions{Process: newOracleProcess(c), Recorder: newOracleRecorder()}
	res, err := c.RunOracle(opts)
	if err != nil {
		return violationf(InvQModelOracle, "running rho=%g c=%d vms=%d: %v", c.Rho, c.Servers, c.VMs, err)
	}
	if want := uint64(c.N - c.Warmup); res.Count != want {
		return violationf(InvQModelOracle,
			"sample loss at rho=%g c=%d: recorded %d of %d post-warmup completions\nreplay: %s",
			c.Rho, c.Servers, res.Count, want, c.ReplayCommand())
	}
	if res.RelErr > c.Tol {
		return violationf(InvQModelOracle,
			"rho=%g c=%d vms=%d: simulated mean wait %.4f vs analytic %.4f — rel err %.4f exceeds band %.2f\nreplay: %s",
			c.Rho, c.Servers, c.VMs, res.SimMeanWait, res.TheoryWait, res.RelErr, c.Tol, c.ReplayCommand())
	}
	return nil
}
