package check

import (
	"strings"
	"testing"

	"bioschedsim/internal/plan"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"
)

// TestQModelOracle is the named CI gate: the real engine must agree with
// the analytic M/M/1 and M/M/c oracles across the whole ρ-sweep. This is
// the green half of the both-ways proof; the plant tests below are the red
// half.
func TestQModelOracle(t *testing.T) {
	if v := CheckQueueOracle(); v != nil {
		t.Fatalf("qmodel oracle violated on the real engine: %v", v)
	}
}

// biasedPoisson is the seeded broken-arrival plant: it draws from the same
// stream as the real Poisson process but scales every interarrival by
// 0.75, the classic "forgot the rate divisor vs scale" generator bug. The
// effective rate is λ/0.75, so at the oracle's ρ=0.3 case the queue
// actually runs at ρ=0.4 and the mean wait lands ~55% off theory — far
// outside every band.
type biasedPoisson struct{ rate float64 }

func (b biasedPoisson) Name() string    { return "biased-poisson" }
func (b biasedPoisson) Rate() float64   { return b.rate }
func (b biasedPoisson) Validate() error { return nil }

func (b biasedPoisson) Offsets(n int, seed uint64) ([]float64, error) {
	r := xrand.New(seed, 5)
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += 0.75 * r.ExpFloat64() / b.rate
		out[i] = t
	}
	return out, nil
}

// TestQModelOracleCatchesBiasedArrivals plants the biased generator behind
// the process seam and requires the invariant to fail with a runnable
// replay line.
func TestQModelOracleCatchesBiasedArrivals(t *testing.T) {
	orig := newOracleProcess
	defer func() { newOracleProcess = orig }()
	newOracleProcess = func(c plan.OracleCase) workload.ArrivalProcess {
		return biasedPoisson{rate: c.Lambda()}
	}
	v := CheckQueueOracle()
	if v == nil {
		t.Fatal("biased interarrival generator passed the qmodel oracle")
	}
	if v.Invariant != InvQModelOracle {
		t.Fatalf("caught invariant %q, want %q (%v)", v.Invariant, InvQModelOracle, v.Err)
	}
	if !strings.Contains(v.Err.Error(), "cloudsched plan oracle -rho ") {
		t.Fatalf("violation lacks a replay line: %v", v.Err)
	}
}

// droppingRecorder is the seeded broken-measurement plant: it silently
// discards every 10th observation — the "metrics pipeline sampled away the
// tail" failure that makes SLO verdicts optimistic.
type droppingRecorder struct {
	inner *plan.LatencyStats
	seen  int
}

func (d *droppingRecorder) Observe(wait, latency float64) {
	d.seen++
	if d.seen%10 == 0 {
		return
	}
	d.inner.Observe(wait, latency)
}

func (d *droppingRecorder) Count() uint64              { return d.inner.Count() }
func (d *droppingRecorder) MeanWait() float64          { return d.inner.MeanWait() }
func (d *droppingRecorder) Quantile(q float64) float64 { return d.inner.Quantile(q) }

// TestQModelOracleCatchesDroppedSamples plants the dropping recorder behind
// the recorder seam: count conservation (N − Warmup recorded observations)
// must flag it, again with a replay line.
func TestQModelOracleCatchesDroppedSamples(t *testing.T) {
	orig := newOracleRecorder
	defer func() { newOracleRecorder = orig }()
	newOracleRecorder = func() plan.Recorder {
		return &droppingRecorder{inner: plan.NewLatencyStats()}
	}
	v := CheckQueueOracle()
	if v == nil {
		t.Fatal("sample-dropping recorder passed the qmodel oracle")
	}
	if v.Invariant != InvQModelOracle {
		t.Fatalf("caught invariant %q, want %q (%v)", v.Invariant, InvQModelOracle, v.Err)
	}
	if !strings.Contains(v.Err.Error(), "sample loss") {
		t.Fatalf("violation not attributed to sample loss: %v", v.Err)
	}
	if !strings.Contains(v.Err.Error(), "cloudsched plan oracle -rho ") {
		t.Fatalf("violation lacks a replay line: %v", v.Err)
	}
}

// TestOracleCasesMatchDocumentedBands pins the sweep table itself: every
// ρ ∈ {0.3, 0.6, 0.9} appears against both an M/M/1 and M/M/c fleet, and
// the bands match the documented 10%/15% policy.
func TestOracleCasesMatchDocumentedBands(t *testing.T) {
	cases := OracleCases()
	seen := map[[2]any]bool{}
	for _, c := range cases {
		if err := c.Validate(); err != nil {
			t.Fatalf("sweep case invalid: %v", err)
		}
		seen[[2]any{c.Rho, c.Servers}] = true
		want := 0.10
		if c.Rho == 0.9 {
			want = 0.15
		}
		if c.Tol != want {
			t.Errorf("rho=%v c=%d: band %v, documented policy %v", c.Rho, c.Servers, c.Tol, want)
		}
	}
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		for _, servers := range []int{1, 4} {
			if !seen[[2]any{rho, servers}] {
				t.Errorf("sweep missing rho=%v servers=%d", rho, servers)
			}
		}
	}
}
