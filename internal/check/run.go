package check

import (
	"fmt"
	"sort"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/xrand"
)

// Config sizes one checking campaign. The zero value is not runnable; use
// Default or Quick and override fields as needed.
type Config struct {
	// Schedulers to check; empty means every registered scheduler.
	Schedulers []string
	// Classes of scenarios to generate; empty means Classes().
	Classes []string
	// Seed is the root of all randomness: scenario sizes, workload content,
	// scheduler streams, permutations. Same seed, same campaign.
	Seed uint64
	// N is the number of scenarios generated per (class); every scheduler
	// runs on every scenario.
	N int
	// MaxVMs and MaxCloudlets cap generated scenario sizes.
	MaxVMs       int
	MaxCloudlets int
}

// Default returns the standard campaign configuration: broad enough to
// exercise the metaheuristics' search loops, small enough to finish in
// seconds.
func Default() Config {
	return Config{Seed: 1, N: 4, MaxVMs: 16, MaxCloudlets: 96}
}

// Quick returns the CI-budget configuration (~2 s across all registered
// schedulers).
func Quick() Config {
	return Config{Seed: 1, N: 2, MaxVMs: 8, MaxCloudlets: 40}
}

// normalized fills in defaults.
func (c Config) normalized() Config {
	if len(c.Schedulers) == 0 {
		c.Schedulers = sched.Names()
	}
	if len(c.Classes) == 0 {
		c.Classes = Classes()
	}
	if c.N <= 0 {
		c.N = 4
	}
	if c.MaxVMs < 2 {
		c.MaxVMs = 16
	}
	if c.MaxCloudlets < 2 {
		c.MaxCloudlets = 96
	}
	return c
}

// Failure is one invariant breach, already shrunk to a minimal
// reproduction and carrying its replay command.
type Failure struct {
	Scheduler string
	Scenario  Scenario // the scenario that first failed
	Shrunk    Scenario // minimal scenario still failing
	Invariant string   // invariant breached at the shrunk scenario
	Err       string
	Replay    string // one-line schedcheck invocation reproducing Shrunk
}

// String renders the failure the way the CLI prints it.
func (f Failure) String() string {
	return fmt.Sprintf("FAIL %s %v: %s: %s\n  shrunk to %v\n  replay: %s",
		f.Scheduler, f.Scenario, f.Invariant, f.Err, f.Shrunk, f.Replay)
}

// Result summarizes a campaign.
type Result struct {
	Scenarios int // scenarios generated
	Checks    int // (scheduler, scenario) pairs checked
	Failures  []Failure
}

// OK reports whether the campaign found no violations.
func (r Result) OK() bool { return len(r.Failures) == 0 }

// Run generates cfg.N scenarios per class and checks every configured
// scheduler against each, shrinking any failure to a minimal reproduction.
// The campaign is a pure function of cfg.
func Run(cfg Config) (Result, error) {
	cfg = cfg.normalized()
	names := append([]string(nil), cfg.Schedulers...)
	sort.Strings(names)
	for _, name := range names {
		if _, err := sched.New(name); err != nil {
			return Result{}, err
		}
	}
	var res Result
	for ci, class := range cfg.Classes {
		for i := 0; i < cfg.N; i++ {
			seed := xrand.Stream(cfg.Seed, uint64(ci)<<32|uint64(i)).Uint64()
			sc, err := Generate(class, seed, cfg.MaxVMs, cfg.MaxCloudlets)
			if err != nil {
				return res, err
			}
			res.Scenarios++
			for _, name := range names {
				res.Checks++
				v := CheckScenario(name, sc)
				if v == nil {
					continue
				}
				shrunk, sv := Shrink(name, sc)
				res.Failures = append(res.Failures, Failure{
					Scheduler: name,
					Scenario:  sc,
					Shrunk:    shrunk,
					Invariant: sv.Invariant,
					Err:       sv.Err.Error(),
					Replay:    shrunk.ReplayCommand(name),
				})
			}
		}
	}
	return res, nil
}

// Shrink reduces a failing scenario to a minimal reproduction by halving
// the cloudlet count while the check still fails, then halving the VM
// count. It returns the smallest still-failing scenario and its violation.
// If sc does not fail, Shrink returns it unchanged with a nil violation.
func Shrink(scheduler string, sc Scenario) (Scenario, *Violation) {
	v := CheckScenario(scheduler, sc)
	if v == nil {
		return sc, nil
	}
	cur := sc
	for cur.Cloudlets > 1 {
		cand := cur
		cand.Cloudlets /= 2
		cv := CheckScenario(scheduler, cand)
		if cv == nil {
			break
		}
		cur, v = cand, cv
	}
	for cur.VMs > 1 {
		cand := cur
		cand.VMs /= 2
		if cand.DCs > cand.VMs {
			cand.DCs = cand.VMs
		}
		cv := CheckScenario(scheduler, cand)
		if cv == nil {
			break
		}
		cur, v = cand, cv
	}
	return cur, v
}
