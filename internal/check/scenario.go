package check

import (
	"fmt"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"
)

// Scenario classes. Each names one shape of the scenario space; together
// they cover the paper's homogeneous/heterogeneous setups and the
// degenerate corners hand-picked fixtures never reach.
const (
	// ClassHomogeneous is the paper's Tables III–IV setup: identical VMs,
	// identical cloudlets, one datacenter.
	ClassHomogeneous = "homog"
	// ClassHeterogeneous is the paper's Tables V–VII setup: VM MIPS in
	// [500,4000], cloudlet lengths in [1000,20000], priced datacenters.
	ClassHeterogeneous = "heter"
	// ClassFixture is the two-datacenter pricey/cheap fixture scheduler
	// unit tests share, with its fixed ~4–5x price spread.
	ClassFixture = "fixture"
	// ClassOneVM degenerates the fleet to a single VM.
	ClassOneVM = "onevm"
	// ClassWideFleet has strictly more VMs than cloudlets, so some VMs
	// must stay idle.
	ClassWideFleet = "widefleet"
	// ClassMultiPE gives every VM more processing elements than the fleet
	// has VMs, stressing the capacity model's PE multiplier.
	ClassMultiPE = "multipe"
	// ClassBurst submits the batch through Poisson arrival bursts instead
	// of the paper's batch-at-zero submission.
	ClassBurst = "burst"
	// ClassEmpty is the zero-length batch; schedulers must reject it.
	ClassEmpty = "empty"
)

// Classes lists every scenario class in canonical order.
func Classes() []string {
	return []string{
		ClassHomogeneous, ClassHeterogeneous, ClassFixture, ClassOneVM,
		ClassWideFleet, ClassMultiPE, ClassBurst, ClassEmpty,
	}
}

// Scenario is one fully specified check input. It is reconstructible from
// its five fields alone — exactly what `schedcheck replay` accepts on the
// command line — because Build derives all content deterministically from
// Seed via xrand streams.
type Scenario struct {
	Class     string
	VMs       int
	Cloudlets int
	DCs       int
	Seed      uint64
}

// String renders the scenario compactly for failure reports.
func (s Scenario) String() string {
	return fmt.Sprintf("%s/vms=%d/cloudlets=%d/dcs=%d/seed=%d", s.Class, s.VMs, s.Cloudlets, s.DCs, s.Seed)
}

// ReplayCommand returns the one-line CLI invocation that rebuilds and
// re-checks exactly this scenario against scheduler.
func (s Scenario) ReplayCommand(scheduler string) string {
	return fmt.Sprintf("schedcheck replay -scheduler %s -scenario %s -seed %d -vms %d -cloudlets %d -dcs %d",
		scheduler, s.Class, s.Seed, s.VMs, s.Cloudlets, s.DCs)
}

// Validate rejects scenarios no builder can materialize.
func (s Scenario) Validate() error {
	if s.VMs < 1 {
		return fmt.Errorf("check: scenario needs at least one VM, got %d", s.VMs)
	}
	if s.Cloudlets < 0 {
		return fmt.Errorf("check: negative cloudlet count %d", s.Cloudlets)
	}
	if s.DCs < 1 {
		return fmt.Errorf("check: scenario needs at least one datacenter, got %d", s.DCs)
	}
	switch s.Class {
	case ClassHomogeneous, ClassHeterogeneous, ClassFixture, ClassOneVM,
		ClassWideFleet, ClassMultiPE, ClassBurst, ClassEmpty:
		return nil
	default:
		return fmt.Errorf("check: unknown scenario class %q (have %v)", s.Class, Classes())
	}
}

// Generate draws a scenario of the given class, sized within the caps, as a
// pure function of seed. The same seed also drives Build's content streams,
// so (class, seed, caps) fully determines the run.
func Generate(class string, seed uint64, maxVMs, maxCloudlets int) (Scenario, error) {
	if maxVMs < 2 || maxCloudlets < 2 {
		return Scenario{}, fmt.Errorf("check: caps too small (maxVMs=%d, maxCloudlets=%d)", maxVMs, maxCloudlets)
	}
	r := xrand.New(seed, 0)
	sc := Scenario{
		Class:     class,
		Seed:      seed,
		VMs:       1 + r.Intn(maxVMs),
		Cloudlets: 1 + r.Intn(maxCloudlets),
		DCs:       1 + r.Intn(3),
	}
	switch class {
	case ClassHomogeneous:
		sc.DCs = 1
	case ClassFixture:
		sc.DCs = 2 // the fixture is two datacenters by construction
	case ClassOneVM:
		sc.VMs, sc.DCs = 1, 1
	case ClassWideFleet:
		sc.VMs = 2 + r.Intn(maxVMs-1)
		sc.Cloudlets = 1 + r.Intn(sc.VMs-1) // strictly fewer cloudlets than VMs
	case ClassMultiPE:
		sc.VMs = 1 + r.Intn(4) // Build gives each VM sc.VMs+1 PEs
	case ClassEmpty:
		sc.Cloudlets = 0
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Build materializes the scenario. Every call returns fresh cloudlets, VMs,
// and context random stream, all derived from s.Seed alone.
func (s Scenario) Build() (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Class {
	case ClassHomogeneous, ClassEmpty:
		scn, err := workload.Homogeneous(s.VMs, s.Cloudlets, s.Seed)
		if err != nil {
			return nil, err
		}
		return &Built{Ctx: scn.Context(), Env: scn.Env, Identical: true}, nil

	case ClassHeterogeneous, ClassOneVM, ClassWideFleet:
		scn, err := workload.Heterogeneous(s.VMs, s.Cloudlets, s.DCs, s.Seed)
		if err != nil {
			return nil, err
		}
		return &Built{Ctx: scn.Context(), Env: scn.Env}, nil

	case ClassFixture:
		return HeterogeneousFixture(s.VMs, s.Cloudlets, s.Seed)

	case ClassMultiPE:
		// Every VM gets more PEs than the fleet has VMs, so per-VM capacity
		// (MIPS × PEs) dominates the fleet width — the shape that catches
		// capacity-vs-count confusions.
		spec := workload.HeterogeneousVMSpec()
		spec.PEs = s.VMs + 1
		vms := workload.GenerateVMs(spec, s.VMs, s.Seed)
		env, err := workload.GenerateEnvironment(workload.HeterogeneousDatacenterSpec(s.DCs), vms, s.Seed)
		if err != nil {
			return nil, err
		}
		cls := workload.GenerateCloudlets(workload.HeterogeneousCloudletSpec(), s.Cloudlets, s.Seed)
		return &Built{
			Ctx: &sched.Context{
				Cloudlets: cls, VMs: vms, Datacenters: env.Datacenters,
				Rand: xrand.New(s.Seed, 4),
			},
			Env: env,
		}, nil

	case ClassBurst:
		scn, err := workload.Heterogeneous(s.VMs, s.Cloudlets, s.DCs, s.Seed)
		if err != nil {
			return nil, err
		}
		// A bursty arrival process: on average a quarter of the batch per
		// simulated second, so the whole batch lands inside a few seconds
		// while VMs are still draining earlier arrivals.
		rate := float64(s.Cloudlets) / 4
		if rate < 1 {
			rate = 1
		}
		offsets, err := workload.PoissonArrivals(s.Cloudlets, rate, s.Seed)
		if err != nil {
			return nil, err
		}
		arrivals := make([]sim.Time, len(offsets))
		for i, t := range offsets {
			arrivals[i] = sim.Time(t)
		}
		return &Built{Ctx: scn.Context(), Env: scn.Env, Arrivals: arrivals}, nil

	default:
		return nil, fmt.Errorf("check: unknown scenario class %q", s.Class)
	}
}
