package check

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sim"
)

// shardExecute is the execution seam for the shard-count-invariance
// invariant. Tests swap it for a deliberately broken implementation to
// prove the invariant actually detects divergence (the seeded plant);
// production checking always runs executeSharded.
var shardExecute = executeSharded

// shardCounts returns the shard counts the invariance check compares,
// clamped so every shard owns at least one VM.
func shardCounts(fleet int) []int {
	counts := []int{1}
	for _, n := range []int{2, 4} {
		if n <= fleet {
			counts = append(counts, n)
		}
	}
	return counts
}

// checkShardInvariance asserts the sharded daemon's metric-merge contract
// at the simulation layer: partition the fleet into n contiguous ranges,
// route every cloudlet to the shard owning its baseline-assigned VM, execute
// each shard on its own engine and broker, and merge. Because the placement
// is pinned to the baseline assignment, per-VM workloads are identical under
// every partition, so the merged Eq. 12 (via both the canonical union and
// the ordered RunStats fold) and Eq. 13 (via the canonical ID-sorted union)
// must be bit-identical at every shard count — compared with relDiff > 0,
// no tolerance.
func checkShardInvariance(sc Scenario, pos []int) *Violation {
	b0, err := sc.Build()
	if err != nil {
		return violationf(InvBuild, "rebuilding %v: %v", sc, err)
	}
	counts := shardCounts(len(b0.Env.VMs))
	if len(counts) < 2 {
		return nil // a 1-VM fleet admits only one partition: nothing to compare
	}

	type result struct {
		finished int
		simUnion float64 // Eq. 12 over the canonical merged union
		simFold  float64 // Eq. 12 via the ordered RunStats fold
		imbUnion float64 // Eq. 13 over the canonical merged union
	}
	var base result
	for ci, n := range counts {
		b, err := sc.Build()
		if err != nil {
			return violationf(InvBuild, "rebuilding %v for %d shards: %v", sc, n, err)
		}
		parts, err := cloud.PartitionVMs(b.Env.VMs, n)
		if err != nil {
			return violationf(InvShardInvariance, "partitioning %d VMs into %d shards: %v", len(b.Env.VMs), n, err)
		}
		finishedParts, err := shardExecute(b, pos, parts)
		if err != nil {
			return violationf(InvShardInvariance, "executing at %d shards: %v", n, err)
		}
		merged := metrics.MergeFinished(finishedParts...)
		var fold metrics.RunStats
		for _, p := range finishedParts { // ascending shard order: the canonical reduction
			fold = fold.Merge(metrics.CollectRunStats(p))
		}
		r := result{
			finished: len(merged),
			simUnion: float64(metrics.SimulationTime(merged)),
			simFold:  float64(fold.SimTime()),
			imbUnion: metrics.TimeImbalance(merged),
		}
		if d := relDiff(r.simUnion, r.simFold); d > 0 {
			return violationf(InvShardInvariance,
				"at %d shards, Eq.12 over the merged union (%v) != the RunStats fold (%v)", n, r.simUnion, r.simFold)
		}
		if ci == 0 {
			base = r
			continue
		}
		if r.finished != base.finished {
			return violationf(InvShardInvariance,
				"%d cloudlets finished at %d shards, %d at %d shards", r.finished, n, base.finished, counts[0])
		}
		if d := relDiff(r.simUnion, base.simUnion); d > 0 {
			return violationf(InvShardInvariance,
				"merged Eq.12 moved across shard counts: %v at %d shards vs %v at %d shards (rel %.3g)",
				r.simUnion, n, base.simUnion, counts[0], d)
		}
		if d := relDiff(r.imbUnion, base.imbUnion); d > 0 {
			return violationf(InvShardInvariance,
				"merged Eq.13 moved across shard counts: %v at %d shards vs %v at %d shards (rel %.3g)",
				r.imbUnion, n, base.imbUnion, counts[0], d)
		}
	}
	return nil
}

// executeSharded runs the baseline assignment partition-respecting: each
// cloudlet executes on the shard owning its assigned VM, each shard on an
// independent engine over a Subset environment that preserves VM identity.
// It returns the per-shard finished sets in ascending shard order.
func executeSharded(b *Built, pos []int, parts [][]*cloud.VM) ([][]*cloud.Cloudlet, error) {
	shardOf := make(map[*cloud.VM]int, len(b.Env.VMs))
	for si, p := range parts {
		for _, vm := range p {
			shardOf[vm] = si
		}
	}
	type group struct {
		cls []*cloud.Cloudlet
		vms []*cloud.VM
		arr []sim.Time
	}
	groups := make([]group, len(parts))
	for i, c := range b.Ctx.Cloudlets {
		vm := b.Ctx.VMs[pos[i]]
		si, ok := shardOf[vm]
		if !ok {
			return nil, fmt.Errorf("assigned VM %d missing from every partition range", vm.ID)
		}
		g := &groups[si]
		g.cls = append(g.cls, c)
		g.vms = append(g.vms, vm)
		var at sim.Time
		if b.Arrivals != nil {
			at = b.Arrivals[i]
		}
		g.arr = append(g.arr, at)
	}
	out := make([][]*cloud.Cloudlet, len(parts))
	for si, p := range parts {
		g := groups[si]
		if len(g.cls) == 0 {
			continue // a shard with no routed work finishes nothing
		}
		sub, err := b.Env.Subset(p)
		if err != nil {
			return nil, fmt.Errorf("shard %d subset: %w", si, err)
		}
		eng := sim.NewEngine()
		broker := cloud.NewBroker(eng, sub, cloud.TimeSharedFactory)
		if err := broker.SubmitAllSchedule(g.cls, g.vms, g.arr); err != nil {
			return nil, fmt.Errorf("shard %d submission: %w", si, err)
		}
		eng.Run()
		if got := len(broker.Finished()); got != len(g.cls) {
			return nil, fmt.Errorf("shard %d finished %d of %d cloudlets", si, got, len(g.cls))
		}
		out[si] = broker.Finished()
	}
	return out, nil
}
