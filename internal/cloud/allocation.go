package cloud

import "fmt"

// AllocationPolicy decides which host receives a VM, the CloudSim
// VmAllocationPolicy analogue. Policies see all hosts across all
// datacenters so multi-datacenter setups balance globally.
type AllocationPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns the host for vm, or nil when no host can take it.
	Pick(hosts []*Host, vm *VM) *Host
}

// FirstFit places each VM on the first host with capacity — CloudSim's
// "simple" allocation. Cheap and deterministic.
type FirstFit struct{}

// Name implements AllocationPolicy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements AllocationPolicy.
func (FirstFit) Pick(hosts []*Host, vm *VM) *Host {
	for _, h := range hosts {
		if h.CanHost(vm) {
			return h
		}
	}
	return nil
}

// LeastLoaded places each VM on the host with the most available MIPS,
// spreading load evenly across the plant.
type LeastLoaded struct{}

// Name implements AllocationPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements AllocationPolicy.
func (LeastLoaded) Pick(hosts []*Host, vm *VM) *Host {
	var best *Host
	for _, h := range hosts {
		if !h.CanHost(vm) {
			continue
		}
		if best == nil || h.AvailableMIPS() > best.AvailableMIPS() {
			best = h
		}
	}
	return best
}

// BestFit places each VM on the host whose remaining MIPS after placement
// would be smallest, packing tightly to leave large holes for big VMs.
type BestFit struct{}

// Name implements AllocationPolicy.
func (BestFit) Name() string { return "best-fit" }

// Pick implements AllocationPolicy.
func (BestFit) Pick(hosts []*Host, vm *VM) *Host {
	var best *Host
	var bestSlack float64
	for _, h := range hosts {
		if !h.CanHost(vm) {
			continue
		}
		slack := h.AvailableMIPS() - vm.Capacity()
		if best == nil || slack < bestSlack {
			best, bestSlack = h, slack
		}
	}
	return best
}

// Allocate places every VM using policy, in order. It fails atomically: on
// the first VM that fits nowhere, already-placed VMs from this call are
// evicted and an error returned.
func Allocate(policy AllocationPolicy, hosts []*Host, vms []*VM) error {
	placed := make([]*VM, 0, len(vms))
	for _, vm := range vms {
		h := policy.Pick(hosts, vm)
		if h == nil {
			for _, p := range placed {
				_ = p.Host.Evict(p)
			}
			return fmt.Errorf("cloud: %s allocation failed: no host for VM %d (capacity %.0f MIPS)",
				policy.Name(), vm.ID, vm.Capacity())
		}
		if err := h.Place(vm); err != nil {
			return err
		}
		placed = append(placed, vm)
	}
	return nil
}
