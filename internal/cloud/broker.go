package cloud

import (
	"fmt"
	"math"

	"bioschedsim/internal/sim"
)

// Environment is a complete resource plant: datacenters with hosts, plus the
// VM fleet placed on them. Workload generators build Environments; brokers
// execute cloudlets on them.
type Environment struct {
	Datacenters []*Datacenter
	VMs         []*VM
}

// Hosts returns every host across all datacenters.
func (e *Environment) Hosts() []*Host {
	var out []*Host
	for _, dc := range e.Datacenters {
		out = append(out, dc.Hosts...)
	}
	return out
}

// Validate checks structural invariants: every VM placed, every host owned.
func (e *Environment) Validate() error {
	for _, dc := range e.Datacenters {
		for _, h := range dc.Hosts {
			if h.Datacenter != dc {
				return fmt.Errorf("cloud: host %d not owned by datacenter %d", h.ID, dc.ID)
			}
		}
	}
	for _, vm := range e.VMs {
		if vm.Host == nil {
			return fmt.Errorf("cloud: VM %d not placed on any host", vm.ID)
		}
	}
	return nil
}

// Broker submits an assigned batch of cloudlets to VMs and drives them to
// completion on one engine, standing in for CloudSim's DatacenterBroker.
type Broker struct {
	eng      *sim.Engine
	env      *Environment
	finished []*Cloudlet
	onFinish FinishFunc // optional user hook, called after bookkeeping

	// Failure-injection state (see failure.go).
	failed     map[*VM]bool
	lost       []*Cloudlet
	migrations int
}

// NewBroker binds every VM in env to a fresh cloudlet scheduler built by
// factory on eng and returns the broker.
func NewBroker(eng *sim.Engine, env *Environment, factory SchedulerFactory) *Broker {
	if factory == nil {
		factory = TimeSharedFactory
	}
	b := &Broker{eng: eng, env: env, failed: make(map[*VM]bool)}
	for _, vm := range env.VMs {
		vm.bind(factory(eng, vm, b.recordFinish))
	}
	return b
}

// OnFinish registers a hook invoked at each cloudlet completion, after the
// broker records it.
func (b *Broker) OnFinish(fn FinishFunc) { b.onFinish = fn }

func (b *Broker) recordFinish(c *Cloudlet) {
	b.finished = append(b.finished, c)
	if b.onFinish != nil {
		b.onFinish(c)
	}
}

// Submit hands cloudlet c to vm at the engine's current time.
func (b *Broker) Submit(c *Cloudlet, vm *VM) {
	if vm.Scheduler() == nil {
		panic(fmt.Sprintf("cloud: VM %d has no bound scheduler", vm.ID))
	}
	vm.Scheduler().Submit(c)
}

// SubmitAll submits a full assignment map (parallel slices) at the current
// time. It returns an error on length mismatch or nil entries.
func (b *Broker) SubmitAll(cloudlets []*Cloudlet, vms []*VM) error {
	if len(cloudlets) != len(vms) {
		return fmt.Errorf("cloud: assignment length mismatch: %d cloudlets, %d VMs", len(cloudlets), len(vms))
	}
	for i, c := range cloudlets {
		if c == nil || vms[i] == nil {
			return fmt.Errorf("cloud: nil entry in assignment at index %d", i)
		}
		b.Submit(c, vms[i])
	}
	return nil
}

// SubmitAt hands cloudlet c to vm after delay simulated seconds, modelling
// staging or staggered arrival.
func (b *Broker) SubmitAt(c *Cloudlet, vm *VM, delay sim.Time) {
	if vm.Scheduler() == nil {
		panic(fmt.Sprintf("cloud: VM %d has no bound scheduler", vm.ID))
	}
	b.eng.Schedule(delay, sim.PriorityAcquire, func() { vm.Scheduler().Submit(c) })
}

// SubmitAllStaged submits an assignment with network staging delays: each
// cloudlet reaches its VM after the topology's transfer time of its input
// file from sourceNode to the VM's datacenter (matched by datacenter name).
func (b *Broker) SubmitAllStaged(cloudlets []*Cloudlet, vms []*VM, topo *NetworkTopology, sourceNode string) error {
	if len(cloudlets) != len(vms) {
		return fmt.Errorf("cloud: assignment length mismatch: %d cloudlets, %d VMs", len(cloudlets), len(vms))
	}
	if topo == nil {
		return b.SubmitAll(cloudlets, vms)
	}
	for i, c := range cloudlets {
		if c == nil || vms[i] == nil {
			return fmt.Errorf("cloud: nil entry in assignment at index %d", i)
		}
		dc := vms[i].Datacenter()
		if dc == nil {
			return fmt.Errorf("cloud: VM %d has no datacenter for staging", vms[i].ID)
		}
		delay, err := topo.TransferTime(sourceNode, dc.Name, c.FileSize)
		if err != nil {
			return err
		}
		if math.IsInf(delay, 1) {
			return fmt.Errorf("cloud: datacenter %q unreachable from %q", dc.Name, sourceNode)
		}
		b.SubmitAt(c, vms[i], delay)
	}
	return nil
}

// SubmitAllSchedule submits an assignment with explicit per-cloudlet
// arrival times (simulated seconds from now), modelling dynamic workload
// arrival instead of the paper's batch-at-zero submission.
func (b *Broker) SubmitAllSchedule(cloudlets []*Cloudlet, vms []*VM, arrivals []sim.Time) error {
	if len(cloudlets) != len(vms) || len(cloudlets) != len(arrivals) {
		return fmt.Errorf("cloud: schedule length mismatch: %d cloudlets, %d VMs, %d arrivals",
			len(cloudlets), len(vms), len(arrivals))
	}
	for i, c := range cloudlets {
		if c == nil || vms[i] == nil {
			return fmt.Errorf("cloud: nil entry in assignment at index %d", i)
		}
		if arrivals[i] < 0 {
			return fmt.Errorf("cloud: negative arrival %v at index %d", arrivals[i], i)
		}
		b.SubmitAt(c, vms[i], arrivals[i])
	}
	return nil
}

// Finished returns completed cloudlets in completion order.
func (b *Broker) Finished() []*Cloudlet { return b.finished }

// Engine returns the broker's simulation engine.
func (b *Broker) Engine() *sim.Engine { return b.eng }

// Environment returns the broker's environment (live view: elasticity
// operations mutate it).
func (b *Broker) Environment() *Environment { return b.env }

// ProvisionVM places a new VM on a host chosen by policy, binds it to a
// cloudlet scheduler built by factory, and adds it to the environment —
// the elastic scale-up primitive (§II's "new instances are instantiated").
func (b *Broker) ProvisionVM(vm *VM, policy AllocationPolicy, factory SchedulerFactory) error {
	if vm == nil {
		return fmt.Errorf("cloud: ProvisionVM: nil VM")
	}
	if vm.Host != nil {
		return fmt.Errorf("cloud: ProvisionVM: VM %d already placed", vm.ID)
	}
	if policy == nil {
		policy = LeastLoaded{}
	}
	if factory == nil {
		factory = TimeSharedFactory
	}
	host := policy.Pick(b.env.Hosts(), vm)
	if host == nil {
		return fmt.Errorf("cloud: ProvisionVM: no host can fit VM %d (%.0f MIPS)", vm.ID, vm.Capacity())
	}
	if err := host.Place(vm); err != nil {
		return err
	}
	vm.bind(factory(b.eng, vm, b.recordFinish))
	b.env.VMs = append(b.env.VMs, vm)
	return nil
}

// ProvisionVMAfter is ProvisionVM with a boot delay: the host capacity is
// reserved immediately (the instance is "launching"), but the VM only joins
// the environment — and can only receive work — after bootDelay simulated
// seconds. Real scale-ups are not instantaneous; EC2-style instances take
// tens of seconds to boot, which is exactly the window where §II's
// threshold rules lag a burst.
func (b *Broker) ProvisionVMAfter(vm *VM, policy AllocationPolicy, factory SchedulerFactory, bootDelay sim.Time) error {
	if bootDelay < 0 {
		return fmt.Errorf("cloud: negative boot delay %v", bootDelay)
	}
	//schedlint:ignore floateq bootDelay is caller input validated non-negative; exact 0 is the documented instant-provisioning case
	if bootDelay == 0 {
		return b.ProvisionVM(vm, policy, factory)
	}
	if vm == nil {
		return fmt.Errorf("cloud: ProvisionVMAfter: nil VM")
	}
	if vm.Host != nil {
		return fmt.Errorf("cloud: ProvisionVMAfter: VM %d already placed", vm.ID)
	}
	if policy == nil {
		policy = LeastLoaded{}
	}
	if factory == nil {
		factory = TimeSharedFactory
	}
	host := policy.Pick(b.env.Hosts(), vm)
	if host == nil {
		return fmt.Errorf("cloud: ProvisionVMAfter: no host can fit VM %d (%.0f MIPS)", vm.ID, vm.Capacity())
	}
	if err := host.Place(vm); err != nil {
		return err
	}
	b.eng.Schedule(bootDelay, sim.PriorityAcquire, func() {
		vm.bind(factory(b.eng, vm, b.recordFinish))
		b.env.VMs = append(b.env.VMs, vm)
	})
	return nil
}

// DecommissionVM removes a VM from the plant: resident cloudlets are
// drained and migrated per failover (nil = least-loaded), the VM is evicted
// from its host, and it leaves the environment — the elastic scale-down
// primitive. Decommissioning the last healthy VM fails.
func (b *Broker) DecommissionVM(vm *VM, failover FailoverPolicy) error {
	idx := -1
	for i, v := range b.env.VMs {
		if v == vm {
			idx = i
			break
		}
	}
	if idx == -1 {
		return fmt.Errorf("cloud: DecommissionVM: VM %d not in environment", vm.ID)
	}
	if failover == nil {
		failover = LeastLoadedFailover
	}
	b.env.VMs = append(b.env.VMs[:idx], b.env.VMs[idx+1:]...)
	healthy := b.healthyVMs()
	if len(healthy) == 0 {
		b.env.VMs = append(b.env.VMs, vm) // restore: nowhere to migrate
		return fmt.Errorf("cloud: DecommissionVM: VM %d is the last healthy VM", vm.ID)
	}
	for _, c := range vm.Scheduler().Drain() {
		target := failover(c, healthy)
		if target == nil {
			b.lost = append(b.lost, c)
			continue
		}
		b.migrations++
		target.Scheduler().Submit(c)
	}
	if vm.Host != nil {
		if err := vm.Host.Evict(vm); err != nil {
			return err
		}
	}
	delete(b.failed, vm)
	return nil
}

// Result summarizes one executed batch.
type Result struct {
	Finished     []*Cloudlet
	MinStart     sim.Time // earliest execution start (Eq. 12's TminStartTime)
	MaxFinish    sim.Time // latest finish (Eq. 12's TmaxFinishTime)
	TotalCost    float64  // summed ProcessingCost
	EngineEvents uint64   // DES events fired, for substrate diagnostics
}

// SimulationTime returns the paper's Eq. 12 metric: the overall span from
// the earliest cloudlet start to the latest cloudlet finish.
func (r *Result) SimulationTime() sim.Time { return r.MaxFinish - r.MinStart }

// Execute is the whole-batch convenience path used by experiments: it builds
// an engine and broker over env, submits the assignment at t=0, runs the
// simulation to completion, and summarizes. The cloudlets must be freshly
// created or ResetAll-ed.
func Execute(env *Environment, factory SchedulerFactory, cloudlets []*Cloudlet, vms []*VM) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	broker := NewBroker(eng, env, factory)
	if err := broker.SubmitAll(cloudlets, vms); err != nil {
		return nil, err
	}
	eng.Run()
	if len(broker.finished) != len(cloudlets) {
		return nil, fmt.Errorf("cloud: %d of %d cloudlets unfinished after run", len(cloudlets)-len(broker.finished), len(cloudlets))
	}
	res := &Result{Finished: broker.finished, EngineEvents: eng.Fired()}
	for i, c := range broker.finished {
		if i == 0 || c.StartTime < res.MinStart {
			res.MinStart = c.StartTime
		}
		if c.FinishTime > res.MaxFinish {
			res.MaxFinish = c.FinishTime
		}
		res.TotalCost += ProcessingCost(c, c.VM)
	}
	return res, nil
}
