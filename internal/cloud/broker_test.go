package cloud

import (
	"math"
	"testing"

	"bioschedsim/internal/sim"
)

// testEnv builds a two-datacenter environment with nVMs identical VMs.
func testEnv(t testing.TB, nVMs int, mips float64) *Environment {
	t.Helper()
	mkHosts := func(base, n int) []*Host {
		hosts := make([]*Host, n)
		for i := range hosts {
			hosts[i] = NewHost(base+i, NewPEs(8, 4000), 1<<16, 1<<20, 1<<30)
		}
		return hosts
	}
	nHosts := nVMs/4 + 1
	dc0 := NewDatacenter(0, "dc0", Characteristics{CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3}, mkHosts(0, nHosts))
	dc1 := NewDatacenter(1, "dc1", Characteristics{CostPerMemory: 0.01, CostPerStorage: 0.001, CostPerBandwidth: 0.01, CostPerProcessing: 3}, mkHosts(nHosts, nHosts))
	env := &Environment{Datacenters: []*Datacenter{dc0, dc1}}
	for i := 0; i < nVMs; i++ {
		env.VMs = append(env.VMs, NewVM(i, mips, 1, 512, 500, 5000))
	}
	if err := Allocate(LeastLoaded{}, env.Hosts(), env.VMs); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvironmentValidate(t *testing.T) {
	env := testEnv(t, 8, 1000)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unplaced VM must fail validation.
	env.VMs = append(env.VMs, NewVM(99, 1000, 1, 512, 500, 5000))
	if err := env.Validate(); err == nil {
		t.Fatal("expected validation error for unplaced VM")
	}
}

func TestEnvironmentHosts(t *testing.T) {
	env := testEnv(t, 4, 1000)
	want := len(env.Datacenters[0].Hosts) + len(env.Datacenters[1].Hosts)
	if got := len(env.Hosts()); got != want {
		t.Fatalf("hosts: got %d want %d", got, want)
	}
}

func TestExecuteRoundRobinBatch(t *testing.T) {
	env := testEnv(t, 4, 1000)
	const n = 40
	cloudlets := make([]*Cloudlet, n)
	vms := make([]*VM, n)
	for i := range cloudlets {
		cloudlets[i] = NewCloudlet(i, 250, 1, 0, 0)
		vms[i] = env.VMs[i%len(env.VMs)]
	}
	res, err := Execute(env, TimeSharedFactory, cloudlets, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != n {
		t.Fatalf("finished: %d", len(res.Finished))
	}
	// 10 cloudlets of 250 MI time-share each 1000-MIPS VM: all finish at 2.5s.
	if !almost(res.SimulationTime(), 2.5, 1e-9) {
		t.Fatalf("simulation time: %v", res.SimulationTime())
	}
	if res.MinStart != 0 {
		t.Fatalf("min start: %v", res.MinStart)
	}
	if res.TotalCost <= 0 {
		t.Fatalf("total cost: %v", res.TotalCost)
	}
	if res.EngineEvents == 0 {
		t.Fatal("no engine events recorded")
	}
}

func TestExecuteAssignmentMismatch(t *testing.T) {
	env := testEnv(t, 2, 1000)
	_, err := Execute(env, TimeSharedFactory, []*Cloudlet{NewCloudlet(0, 100, 1, 0, 0)}, nil)
	if err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestExecuteNilEntry(t *testing.T) {
	env := testEnv(t, 2, 1000)
	_, err := Execute(env, TimeSharedFactory, []*Cloudlet{nil}, []*VM{env.VMs[0]})
	if err == nil {
		t.Fatal("expected nil-entry error")
	}
}

func TestBrokerOnFinishHook(t *testing.T) {
	env := testEnv(t, 2, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	var hooked []int
	b.OnFinish(func(c *Cloudlet) { hooked = append(hooked, c.ID) })
	b.Submit(NewCloudlet(0, 100, 1, 0, 0), env.VMs[0])
	b.Submit(NewCloudlet(1, 200, 1, 0, 0), env.VMs[1])
	eng.Run()
	if len(hooked) != 2 {
		t.Fatalf("hook calls: %v", hooked)
	}
	if len(b.Finished()) != 2 {
		t.Fatalf("finished: %d", len(b.Finished()))
	}
}

func TestBrokerDefaultFactory(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	NewBroker(eng, env, nil)
	if env.VMs[0].Scheduler() == nil {
		t.Fatal("default factory did not bind a scheduler")
	}
	if env.VMs[0].Scheduler().Name() != "time-shared" {
		t.Fatalf("default discipline: %s", env.VMs[0].Scheduler().Name())
	}
}

func TestBrokerSubmitUnboundPanics(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	loose := NewVM(77, 1000, 1, 512, 500, 5000) // never bound
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound VM")
		}
	}()
	b.Submit(NewCloudlet(0, 100, 1, 0, 0), loose)
}

func TestProcessingCost(t *testing.T) {
	hosts := []*Host{NewHost(0, NewPEs(2, 2000), 1<<16, 1<<20, 1<<30)}
	dc := NewDatacenter(0, "dc", Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, hosts)
	_ = dc
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	if err := hosts[0].Place(vm); err != nil {
		t.Fatal(err)
	}
	c := NewCloudlet(0, 2000, 1, 300, 300)
	// resource rate = .004*5000 + .05*512 + .05*500 = 20 + 25.6 + 25 = 70.6
	// cost = 70.6 * 2 + 3 * (2000/1000) = 141.2 + 6 = 147.2
	got := ProcessingCost(c, vm)
	if math.Abs(got-147.2) > 1e-9 {
		t.Fatalf("cost: got %v want 147.2", got)
	}
	if rate := ResourceCostRate(vm); math.Abs(rate-70.6) > 1e-9 {
		t.Fatalf("resource rate: %v", rate)
	}
}

func TestProcessingCostUnplacedVM(t *testing.T) {
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	if ProcessingCost(NewCloudlet(0, 100, 1, 0, 0), vm) != 0 {
		t.Fatal("unplaced VM should cost 0")
	}
	if ResourceCostRate(vm) != 0 {
		t.Fatal("unplaced VM rate should be 0")
	}
}

func TestTotalProcessingCost(t *testing.T) {
	env := testEnv(t, 2, 1000)
	a := NewCloudlet(0, 1000, 1, 0, 0)
	b := NewCloudlet(1, 1000, 1, 0, 0)
	a.VM, b.VM = env.VMs[0], env.VMs[1]
	want := ProcessingCost(a, a.VM) + ProcessingCost(b, b.VM)
	if got := TotalProcessingCost([]*Cloudlet{a, b}); math.Abs(got-want) > 1e-9 {
		t.Fatalf("total: got %v want %v", got, want)
	}
	// Cloudlets without a VM contribute nothing.
	if got := TotalProcessingCost([]*Cloudlet{NewCloudlet(9, 50, 1, 0, 0)}); got != 0 {
		t.Fatalf("no-VM total: %v", got)
	}
}

func TestCheaperDatacenterCostsLess(t *testing.T) {
	env := testEnv(t, 8, 1000) // dc0 expensive, dc1 cheap
	var vmExp, vmCheap *VM
	for _, vm := range env.VMs {
		switch vm.Datacenter().ID {
		case 0:
			vmExp = vm
		case 1:
			vmCheap = vm
		}
	}
	if vmExp == nil || vmCheap == nil {
		t.Fatal("allocation did not spread across datacenters")
	}
	c := NewCloudlet(0, 1000, 1, 0, 0)
	if ProcessingCost(c, vmCheap) >= ProcessingCost(c, vmExp) {
		t.Fatal("cheap datacenter not cheaper")
	}
}
