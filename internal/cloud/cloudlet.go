// Package cloud implements the cloud resource and execution model the paper
// runs its schedulers on: processing elements, hosts, virtual machines,
// cloudlets (tasks), datacenters with a pricing model, VM-to-host allocation
// policies, and time-/space-shared cloudlet execution — the CloudSim
// semantics rebuilt from scratch on the internal/sim kernel.
package cloud

import (
	"fmt"

	"bioschedsim/internal/sim"
)

// CloudletStatus tracks a cloudlet through its lifecycle.
type CloudletStatus int

// Cloudlet lifecycle states.
const (
	CloudletCreated CloudletStatus = iota
	CloudletQueued                 // submitted to a VM, waiting for capacity
	CloudletRunning
	CloudletFinished
)

// String implements fmt.Stringer.
func (s CloudletStatus) String() string {
	switch s {
	case CloudletCreated:
		return "created"
	case CloudletQueued:
		return "queued"
	case CloudletRunning:
		return "running"
	case CloudletFinished:
		return "finished"
	default:
		return fmt.Sprintf("CloudletStatus(%d)", int(s))
	}
}

// Cloudlet is a unit of work: the paper's task abstraction (Table IV/VI).
// Length is in million instructions (MI); a VM with capacity C MIPS
// dedicates some share of C to the cloudlet until Length MI have executed.
type Cloudlet struct {
	ID         int
	Length     float64 // total work, million instructions (cLength)
	PEs        int     // required processing elements (cPesNumber)
	FileSize   float64 // input size, MB (cFileSize)
	OutputSize float64 // output size, MB (cOutputSize)
	// Deadline is the absolute simulated time by which the cloudlet must
	// finish to satisfy its SLA; zero means no deadline. The paper's §I
	// lists deadlines and SLA agreements among the demands schedulers must
	// accommodate; deadline-aware scheduling is an extension here.
	Deadline sim.Time

	// Runtime state, owned by the executing VM's cloudlet scheduler.
	Status     CloudletStatus
	VM         *VM      // assigned VM (set at submission)
	SubmitTime sim.Time // when the broker handed it to the VM
	StartTime  sim.Time // when execution first received capacity
	FinishTime sim.Time // when the last instruction retired
	remaining  float64  // MI left to execute
}

// NewCloudlet returns a cloudlet with the given identity and static demands.
func NewCloudlet(id int, length float64, pes int, fileSize, outputSize float64) *Cloudlet {
	if length <= 0 {
		panic(fmt.Sprintf("cloud: cloudlet %d with non-positive length %v", id, length))
	}
	if pes <= 0 {
		panic(fmt.Sprintf("cloud: cloudlet %d with non-positive PEs %d", id, pes))
	}
	return &Cloudlet{
		ID:         id,
		Length:     length,
		PEs:        pes,
		FileSize:   fileSize,
		OutputSize: outputSize,
		Status:     CloudletCreated,
		remaining:  length,
	}
}

// Remaining returns the million instructions still to execute.
func (c *Cloudlet) Remaining() float64 { return c.remaining }

// ExecTime returns wall-clock (simulated) execution time: finish − start.
// It is only meaningful once the cloudlet finished.
func (c *Cloudlet) ExecTime() sim.Time {
	return c.FinishTime - c.StartTime
}

// MetDeadline reports whether a finished cloudlet satisfied its SLA; it is
// vacuously true without a deadline and false before completion.
func (c *Cloudlet) MetDeadline() bool {
	//schedlint:ignore floateq Deadline 0 is the documented "no SLA" sentinel, assigned literally and never accumulated
	if c.Deadline == 0 {
		return true
	}
	return c.Status == CloudletFinished && c.FinishTime <= c.Deadline
}

// WaitTime returns time spent queued before first receiving capacity.
func (c *Cloudlet) WaitTime() sim.Time {
	return c.StartTime - c.SubmitTime
}

// reset returns the cloudlet to its pre-submission state so workloads can be
// replayed across schedulers within one process.
func (c *Cloudlet) reset() {
	c.Status = CloudletCreated
	c.VM = nil
	c.SubmitTime = 0
	c.StartTime = 0
	c.FinishTime = 0
	c.remaining = c.Length
}

// interrupt returns a drained cloudlet to the created state while keeping
// its progress (remaining work), so migration and failure recovery can
// resubmit it elsewhere without redoing finished instructions. Timestamps
// reflect the most recent placement after resubmission.
func (c *Cloudlet) interrupt() {
	c.Status = CloudletCreated
	c.VM = nil
}

// ResetAll reverts a batch of cloudlets to the created state.
func ResetAll(cloudlets []*Cloudlet) {
	for _, c := range cloudlets {
		c.reset()
	}
}
