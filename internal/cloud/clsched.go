package cloud

import (
	"fmt"
	"sort"

	"bioschedsim/internal/sim"
)

// lengthEps is the residual-work tolerance (in MI) below which a cloudlet is
// considered finished; it absorbs float64 drift in progress accounting.
const lengthEps = 1e-7

// CloudletScheduler executes cloudlets resident on one VM, the CloudSim
// CloudletScheduler analogue. Implementations are bound to a VM and an
// engine by the broker and report completions through a callback.
type CloudletScheduler interface {
	// Name identifies the discipline in reports.
	Name() string
	// Submit hands a cloudlet to the VM at the engine's current time.
	Submit(*Cloudlet)
	// Resident returns the number of cloudlets queued or running.
	Resident() int
	// Drain interrupts every resident cloudlet and returns them with their
	// progress retained (remaining work updated to the current instant).
	// The scheduler is empty afterwards; drained cloudlets are back in the
	// created state and can be resubmitted elsewhere. Used for VM-failure
	// injection and migration.
	Drain() []*Cloudlet
}

// FinishFunc is invoked (inside the engine) whenever a cloudlet completes.
type FinishFunc func(*Cloudlet)

// ---------------------------------------------------------------------------
// Time-shared

// TimeShared divides the VM's total capacity equally among all resident
// cloudlets (processor sharing): with n cloudlets resident each progresses
// at Capacity/n MIPS. This matches CloudSim's CloudletSchedulerTimeShared
// and is the paper's execution discipline.
type TimeShared struct {
	eng      *sim.Engine
	vm       *VM
	onFinish FinishFunc

	resident   []*Cloudlet
	lastUpdate sim.Time
	next       *sim.Event
}

// NewTimeShared returns a time-shared scheduler bound to vm on eng.
func NewTimeShared(eng *sim.Engine, vm *VM, onFinish FinishFunc) *TimeShared {
	if eng == nil || vm == nil {
		panic("cloud: NewTimeShared with nil engine or VM")
	}
	return &TimeShared{eng: eng, vm: vm, onFinish: onFinish, lastUpdate: eng.Now()}
}

// Name implements CloudletScheduler.
func (s *TimeShared) Name() string { return "time-shared" }

// Resident implements CloudletScheduler.
func (s *TimeShared) Resident() int { return len(s.resident) }

// Submit implements CloudletScheduler. Under processor sharing every
// cloudlet starts executing immediately (at a reduced rate).
func (s *TimeShared) Submit(c *Cloudlet) {
	if c.Status != CloudletCreated {
		panic(fmt.Sprintf("cloud: cloudlet %d submitted twice (status %v)", c.ID, c.Status))
	}
	s.advance()
	now := s.eng.Now()
	c.Status = CloudletRunning
	c.VM = s.vm
	c.SubmitTime = now
	c.StartTime = now
	s.resident = append(s.resident, c)
	s.reschedule()
}

// shareMIPS returns the per-cloudlet execution rate right now.
func (s *TimeShared) shareMIPS() float64 {
	if len(s.resident) == 0 {
		return 0
	}
	return s.vm.Capacity() / float64(len(s.resident))
}

// advance retires work done since lastUpdate at the prevailing share.
func (s *TimeShared) advance() {
	now := s.eng.Now()
	elapsed := now - s.lastUpdate
	s.lastUpdate = now
	if elapsed <= 0 || len(s.resident) == 0 {
		return
	}
	done := s.shareMIPS() * elapsed
	for _, c := range s.resident {
		c.remaining -= done
	}
}

// reschedule (re-)arms the completion event for the earliest finisher and
// retires any cloudlet whose remaining work dropped within tolerance.
func (s *TimeShared) reschedule() {
	if s.next != nil {
		s.next.Cancel()
		s.next = nil
	}
	s.collect()
	if len(s.resident) == 0 {
		return
	}
	minRem := s.resident[0].remaining
	for _, c := range s.resident[1:] {
		if c.remaining < minRem {
			minRem = c.remaining
		}
	}
	eta := minRem / s.shareMIPS()
	if eta < 0 {
		eta = 0
	}
	s.next = s.eng.Schedule(eta, sim.PriorityRelease, s.onTick)
}

// onTick fires when the earliest finisher should be done.
func (s *TimeShared) onTick() {
	s.next = nil
	s.advance()
	s.reschedule()
}

// Drain implements CloudletScheduler.
func (s *TimeShared) Drain() []*Cloudlet {
	s.advance()
	if s.next != nil {
		s.next.Cancel()
		s.next = nil
	}
	out := make([]*Cloudlet, len(s.resident))
	copy(out, s.resident)
	for i := range s.resident {
		s.resident[i] = nil
	}
	s.resident = s.resident[:0]
	for _, c := range out {
		c.interrupt()
	}
	return out
}

// collect finishes every resident cloudlet whose work is exhausted.
func (s *TimeShared) collect() {
	now := s.eng.Now()
	kept := s.resident[:0]
	var finished []*Cloudlet
	for _, c := range s.resident {
		if c.remaining <= lengthEps {
			c.remaining = 0
			c.Status = CloudletFinished
			c.FinishTime = now
			finished = append(finished, c)
		} else {
			kept = append(kept, c)
		}
	}
	// Zero the tail so finished cloudlets do not pin the backing array.
	for i := len(kept); i < len(s.resident); i++ {
		s.resident[i] = nil
	}
	s.resident = kept
	if s.onFinish != nil {
		for _, c := range finished {
			s.onFinish(c)
		}
	}
}

// ---------------------------------------------------------------------------
// Space-shared

// SpaceShared grants each running cloudlet exclusive PEs at full MIPS and
// queues the overflow FIFO, matching CloudSim's CloudletSchedulerSpaceShared.
type SpaceShared struct {
	eng      *sim.Engine
	vm       *VM
	onFinish FinishFunc

	freePEs int
	running map[*Cloudlet]*spaceRun
	queue   []*Cloudlet
}

// spaceRun tracks one executing cloudlet so it can be drained mid-flight.
type spaceRun struct {
	pes     int
	rate    float64  // MIPS while running
	started sim.Time // when this run segment began
	event   *sim.Event
}

// NewSpaceShared returns a space-shared scheduler bound to vm on eng.
func NewSpaceShared(eng *sim.Engine, vm *VM, onFinish FinishFunc) *SpaceShared {
	if eng == nil || vm == nil {
		panic("cloud: NewSpaceShared with nil engine or VM")
	}
	return &SpaceShared{eng: eng, vm: vm, onFinish: onFinish, freePEs: vm.PEs, running: make(map[*Cloudlet]*spaceRun)}
}

// Name implements CloudletScheduler.
func (s *SpaceShared) Name() string { return "space-shared" }

// Resident implements CloudletScheduler.
func (s *SpaceShared) Resident() int { return len(s.running) + len(s.queue) }

// Submit implements CloudletScheduler.
func (s *SpaceShared) Submit(c *Cloudlet) {
	if c.Status != CloudletCreated {
		panic(fmt.Sprintf("cloud: cloudlet %d submitted twice (status %v)", c.ID, c.Status))
	}
	c.VM = s.vm
	c.SubmitTime = s.eng.Now()
	c.Status = CloudletQueued
	s.queue = append(s.queue, c)
	s.dispatch()
}

// dispatch starts queued cloudlets while PEs are free.
func (s *SpaceShared) dispatch() {
	now := s.eng.Now()
	for len(s.queue) > 0 {
		c := s.queue[0]
		need := c.PEs
		if need > s.vm.PEs {
			// The cloudlet can never get more PEs than the VM has; run it on
			// all of them rather than deadlocking the queue.
			need = s.vm.PEs
		}
		if need > s.freePEs {
			return
		}
		s.queue = s.queue[1:]
		s.freePEs -= need
		c.Status = CloudletRunning
		c.StartTime = now
		rate := s.vm.MIPS * float64(need)
		eta := c.remaining / rate
		run := &spaceRun{pes: need, rate: rate, started: now}
		run.event = s.eng.Schedule(eta, sim.PriorityRelease, func() { s.finish(c) })
		s.running[c] = run
	}
}

// finish retires one running cloudlet and refills the PEs.
func (s *SpaceShared) finish(c *Cloudlet) {
	run := s.running[c]
	delete(s.running, c)
	c.remaining = 0
	c.Status = CloudletFinished
	c.FinishTime = s.eng.Now()
	s.freePEs += run.pes
	if s.onFinish != nil {
		s.onFinish(c)
	}
	s.dispatch()
}

// Drain implements CloudletScheduler. Running cloudlets keep the progress
// made up to now; queued cloudlets are returned untouched.
func (s *SpaceShared) Drain() []*Cloudlet {
	now := s.eng.Now()
	var out []*Cloudlet
	for c, run := range s.running {
		run.event.Cancel()
		done := run.rate * (now - run.started)
		c.remaining -= done
		if c.remaining < 0 {
			c.remaining = 0
		}
		s.freePEs += run.pes
		out = append(out, c)
	}
	s.running = make(map[*Cloudlet]*spaceRun)
	out = append(out, s.queue...)
	s.queue = nil
	for _, c := range out {
		c.interrupt()
	}
	// Deterministic order for callers that iterate (map order above).
	sortCloudletsByID(out)
	return out
}

// sortCloudletsByID orders a drained batch deterministically.
func sortCloudletsByID(cls []*Cloudlet) {
	sort.Slice(cls, func(i, j int) bool { return cls[i].ID < cls[j].ID })
}

// SchedulerFactory builds a cloudlet scheduler for one VM; the broker uses
// it to bind every VM at run start.
type SchedulerFactory func(eng *sim.Engine, vm *VM, onFinish FinishFunc) CloudletScheduler

// TimeSharedFactory is the SchedulerFactory for TimeShared.
func TimeSharedFactory(eng *sim.Engine, vm *VM, onFinish FinishFunc) CloudletScheduler {
	return NewTimeShared(eng, vm, onFinish)
}

// SpaceSharedFactory is the SchedulerFactory for SpaceShared.
func SpaceSharedFactory(eng *sim.Engine, vm *VM, onFinish FinishFunc) CloudletScheduler {
	return NewSpaceShared(eng, vm, onFinish)
}
