package cloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bioschedsim/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTimeSharedSingleCloudlet(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	var finished []*Cloudlet
	vm.bind(TimeSharedFactory(eng, vm, func(c *Cloudlet) { finished = append(finished, c) }))
	c := NewCloudlet(0, 250, 1, 300, 300)
	vm.Scheduler().Submit(c)
	eng.Run()
	if len(finished) != 1 {
		t.Fatalf("finished: %d", len(finished))
	}
	// 250 MI at 1000 MIPS → 0.25 s.
	if !almost(c.FinishTime, 0.25, 1e-9) {
		t.Fatalf("finish time: %v", c.FinishTime)
	}
	if c.Status != CloudletFinished {
		t.Fatalf("status: %v", c.Status)
	}
}

func TestTimeSharedEqualShare(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	// Two identical cloudlets share 1000 MIPS → each runs at 500 MIPS.
	a := NewCloudlet(0, 500, 1, 0, 0)
	b := NewCloudlet(1, 500, 1, 0, 0)
	vm.Scheduler().Submit(a)
	vm.Scheduler().Submit(b)
	eng.Run()
	if !almost(a.FinishTime, 1.0, 1e-9) || !almost(b.FinishTime, 1.0, 1e-9) {
		t.Fatalf("finish times: %v %v", a.FinishTime, b.FinishTime)
	}
}

func TestTimeSharedUnequalLengths(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	short := NewCloudlet(0, 100, 1, 0, 0)
	long := NewCloudlet(1, 300, 1, 0, 0)
	vm.Scheduler().Submit(short)
	vm.Scheduler().Submit(long)
	eng.Run()
	// Processor sharing: both at 50 MIPS until short finishes at t=2
	// (100 MI/50). Long then has 200 MI left at 100 MIPS → finishes at t=4.
	if !almost(short.FinishTime, 2.0, 1e-9) {
		t.Fatalf("short finish: %v", short.FinishTime)
	}
	if !almost(long.FinishTime, 4.0, 1e-9) {
		t.Fatalf("long finish: %v", long.FinishTime)
	}
}

func TestTimeSharedStaggeredArrival(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	a := NewCloudlet(0, 200, 1, 0, 0)
	b := NewCloudlet(1, 100, 1, 0, 0)
	vm.Scheduler().Submit(a) // t=0: a alone at 100 MIPS
	eng.Schedule(1, sim.PriorityAcquire, func() { vm.Scheduler().Submit(b) })
	eng.Run()
	// t=1: a has 100 MI left; both now at 50 MIPS. Both finish together at t=3.
	if !almost(a.FinishTime, 3.0, 1e-9) {
		t.Fatalf("a finish: %v", a.FinishTime)
	}
	if !almost(b.FinishTime, 3.0, 1e-9) {
		t.Fatalf("b finish: %v", b.FinishTime)
	}
	if b.StartTime != 1.0 {
		t.Fatalf("b start: %v", b.StartTime)
	}
}

func TestTimeSharedMultiPEVM(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 4, 512, 500, 5000) // 400 MIPS aggregate
	vm.bind(TimeSharedFactory(eng, vm, nil))
	c := NewCloudlet(0, 400, 1, 0, 0)
	vm.Scheduler().Submit(c)
	eng.Run()
	if !almost(c.FinishTime, 1.0, 1e-9) {
		t.Fatalf("finish: %v", c.FinishTime)
	}
}

func TestTimeSharedResident(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	for i := 0; i < 5; i++ {
		vm.Scheduler().Submit(NewCloudlet(i, 100, 1, 0, 0))
	}
	if vm.QueuedOrRunning() != 5 {
		t.Fatalf("resident: %d", vm.QueuedOrRunning())
	}
	eng.Run()
	if vm.QueuedOrRunning() != 0 {
		t.Fatalf("resident after run: %d", vm.QueuedOrRunning())
	}
}

func TestTimeSharedDoubleSubmitPanics(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	c := NewCloudlet(0, 100, 1, 0, 0)
	vm.Scheduler().Submit(c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double submit")
		}
	}()
	vm.Scheduler().Submit(c)
}

func TestSpaceSharedSerialExecution(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(SpaceSharedFactory(eng, vm, nil))
	a := NewCloudlet(0, 100, 1, 0, 0)
	b := NewCloudlet(1, 100, 1, 0, 0)
	vm.Scheduler().Submit(a)
	vm.Scheduler().Submit(b)
	eng.Run()
	// FIFO on one PE: a [0,1], b [1,2].
	if !almost(a.FinishTime, 1.0, 1e-9) || !almost(b.FinishTime, 2.0, 1e-9) {
		t.Fatalf("finish times: %v %v", a.FinishTime, b.FinishTime)
	}
	if b.StartTime != 1.0 {
		t.Fatalf("b start: %v (want 1.0, queued)", b.StartTime)
	}
	if b.WaitTime() != 1.0 {
		t.Fatalf("b wait: %v", b.WaitTime())
	}
}

func TestSpaceSharedParallelPEs(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 2, 512, 500, 5000)
	vm.bind(SpaceSharedFactory(eng, vm, nil))
	a := NewCloudlet(0, 100, 1, 0, 0)
	b := NewCloudlet(1, 100, 1, 0, 0)
	c := NewCloudlet(2, 100, 1, 0, 0)
	vm.Scheduler().Submit(a)
	vm.Scheduler().Submit(b)
	vm.Scheduler().Submit(c)
	eng.Run()
	// a,b run in parallel [0,1]; c runs [1,2].
	if !almost(a.FinishTime, 1.0, 1e-9) || !almost(b.FinishTime, 1.0, 1e-9) {
		t.Fatalf("parallel finish: %v %v", a.FinishTime, b.FinishTime)
	}
	if !almost(c.FinishTime, 2.0, 1e-9) {
		t.Fatalf("queued finish: %v", c.FinishTime)
	}
}

func TestSpaceSharedMultiPECloudlet(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 2, 512, 500, 5000)
	vm.bind(SpaceSharedFactory(eng, vm, nil))
	wide := NewCloudlet(0, 400, 2, 0, 0) // needs both PEs → 200 MIPS
	vm.Scheduler().Submit(wide)
	eng.Run()
	if !almost(wide.FinishTime, 2.0, 1e-9) {
		t.Fatalf("wide finish: %v", wide.FinishTime)
	}
}

func TestSpaceSharedOversizedCloudletClamped(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(SpaceSharedFactory(eng, vm, nil))
	wide := NewCloudlet(0, 100, 4, 0, 0) // wants 4 PEs, VM has 1
	vm.Scheduler().Submit(wide)
	eng.Run()
	if wide.Status != CloudletFinished {
		t.Fatal("oversized cloudlet deadlocked")
	}
	if !almost(wide.FinishTime, 1.0, 1e-9) {
		t.Fatalf("clamped finish: %v", wide.FinishTime)
	}
}

// TestSchedulersWorkConservation: total executed MI equals total submitted
// MI and every cloudlet finishes, for random batches on both disciplines.
func TestSchedulersWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, factory := range []SchedulerFactory{TimeSharedFactory, SpaceSharedFactory} {
			eng := sim.NewEngine()
			vm := NewVM(0, 100+r.Float64()*900, 1+r.Intn(4), 512, 500, 5000)
			var finished []*Cloudlet
			vm.bind(factory(eng, vm, func(c *Cloudlet) { finished = append(finished, c) }))
			n := 1 + r.Intn(30)
			var total float64
			for i := 0; i < n; i++ {
				length := 1 + r.Float64()*5000
				total += length
				vm.Scheduler().Submit(NewCloudlet(i, length, 1+r.Intn(2), 0, 0))
			}
			eng.Run()
			if len(finished) != n {
				return false
			}
			var span sim.Time
			for _, c := range finished {
				if c.FinishTime > span {
					span = c.FinishTime
				}
				if c.Remaining() != 0 {
					return false
				}
			}
			// Makespan cannot beat the aggregate-capacity lower bound.
			if span < total/vm.Capacity()-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTimeSharedFinishOrderMatchesLengths: shorter cloudlets never finish
// after longer ones when all arrive together.
func TestTimeSharedFinishOrderMatchesLengths(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	var order []int
	vm.bind(TimeSharedFactory(eng, vm, func(c *Cloudlet) { order = append(order, c.ID) }))
	lengths := []float64{500, 100, 300, 200, 400}
	for i, l := range lengths {
		vm.Scheduler().Submit(NewCloudlet(i, l, 1, 0, 0))
	}
	eng.Run()
	want := []int{1, 3, 2, 4, 0} // ascending by length
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("finish order: %v want %v", order, want)
		}
	}
}

func BenchmarkTimeSharedThousandCloudlets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		vm := NewVM(0, 1000, 1, 512, 500, 5000)
		vm.bind(TimeSharedFactory(eng, vm, nil))
		for j := 0; j < 1000; j++ {
			vm.Scheduler().Submit(NewCloudlet(j, 100+float64(j%7)*50, 1, 0, 0))
		}
		eng.Run()
	}
}

func BenchmarkSpaceSharedThousandCloudlets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		vm := NewVM(0, 1000, 2, 512, 500, 5000)
		vm.bind(SpaceSharedFactory(eng, vm, nil))
		for j := 0; j < 1000; j++ {
			vm.Scheduler().Submit(NewCloudlet(j, 100+float64(j%7)*50, 1, 0, 0))
		}
		eng.Run()
	}
}
