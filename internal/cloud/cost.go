package cloud

// ProcessingCost prices the execution of cloudlet c on VM v using the price
// list of v's datacenter, following the paper's §VI-C-4 ("bandwidth, memory,
// and MIPS needed") and the HBO cost model of Eqs. 1–4:
//
//	resource = CostPerStorage·Size_vm + CostPerMemory·RAM_vm + CostPerBandwidth·Bw_vm
//	cost     = resource · (Length_c / 1000)  +  CostPerProcessing · (Length_c / Capacity_vm)
//
// The first term is Eq. 1's (Size_i + M_i + BW_i) × T_CLj with the cloudlet
// length expressed in kMI so the scale of Table VII's prices stays sensible;
// the second term charges CPU time at the datacenter's processing price
// (Table VII's CostPerProcessing, constant 3 across datacenters).
func ProcessingCost(c *Cloudlet, v *VM) float64 {
	dc := v.Datacenter()
	if dc == nil {
		return 0
	}
	ch := dc.Characteristics
	resource := ch.CostPerStorage*v.Size + ch.CostPerMemory*v.RAM + ch.CostPerBandwidth*v.Bw
	cpuSeconds := c.Length / v.Capacity()
	return resource*(c.Length/1000) + ch.CostPerProcessing*cpuSeconds
}

// ResourceCostRate returns Eq. 1's per-kMI resource price of running work on
// v — the quantity HBO minimizes when ranking datacenters.
func ResourceCostRate(v *VM) float64 {
	dc := v.Datacenter()
	if dc == nil {
		return 0
	}
	ch := dc.Characteristics
	return ch.CostPerStorage*v.Size + ch.CostPerMemory*v.RAM + ch.CostPerBandwidth*v.Bw
}

// TotalProcessingCost sums ProcessingCost over finished cloudlets, using
// each cloudlet's recorded VM.
func TotalProcessingCost(cloudlets []*Cloudlet) float64 {
	var sum float64
	for _, c := range cloudlets {
		if c.VM != nil {
			sum += ProcessingCost(c, c.VM)
		}
	}
	return sum
}
