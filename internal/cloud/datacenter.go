package cloud

import "fmt"

// Characteristics is the datacenter resource price list (the paper's
// Table VII). Prices are per resource unit per cloudlet work unit; see
// ProcessingCost in cost.go for the exact formula.
type Characteristics struct {
	CostPerMemory     float64 // $ per MB of VM RAM per kMI of work
	CostPerStorage    float64 // $ per MB of VM image per kMI of work
	CostPerBandwidth  float64 // $ per Mbps of VM bandwidth per kMI of work
	CostPerProcessing float64 // $ per second of CPU time
}

// Datacenter groups hosts under one price list, mirroring CloudSim's
// Datacenter entity. The HBO scheduler's foragers operate at this
// granularity (one forager per datacenter).
type Datacenter struct {
	ID              int
	Name            string
	Characteristics Characteristics
	Hosts           []*Host
}

// NewDatacenter returns a datacenter owning the given hosts.
func NewDatacenter(id int, name string, ch Characteristics, hosts []*Host) *Datacenter {
	dc := &Datacenter{ID: id, Name: name, Characteristics: ch, Hosts: hosts}
	for _, h := range hosts {
		if h.Datacenter != nil {
			panic(fmt.Sprintf("cloud: host %d already owned by datacenter %d", h.ID, h.Datacenter.ID))
		}
		h.Datacenter = dc
	}
	return dc
}

// VMs returns every VM placed on the datacenter's hosts.
func (d *Datacenter) VMs() []*VM {
	var out []*VM
	for _, h := range d.Hosts {
		out = append(out, h.vms...)
	}
	return out
}

// TotalMIPS returns the datacenter's aggregate host capacity.
func (d *Datacenter) TotalMIPS() float64 {
	var sum float64
	for _, h := range d.Hosts {
		sum += h.TotalMIPS()
	}
	return sum
}
