package cloud

import (
	"fmt"

	"bioschedsim/internal/sim"
)

// Failure injection: VMs can be killed mid-run, interrupting their resident
// cloudlets. A FailoverPolicy decides where interrupted work migrates;
// progress made before the failure is retained (see CloudletScheduler.Drain).
// This is the substrate the robustness tests and the elasticity extension
// build on — the paper's §I motivates schedulers that "adapt to changes in
// the environment".

// FailoverPolicy picks a replacement VM for an interrupted cloudlet from
// the healthy fleet. Returning nil abandons the cloudlet (it is recorded as
// lost).
type FailoverPolicy func(c *Cloudlet, healthy []*VM) *VM

// LeastLoadedFailover migrates each interrupted cloudlet to the healthy VM
// with the fewest resident cloudlets.
func LeastLoadedFailover(c *Cloudlet, healthy []*VM) *VM {
	var best *VM
	for _, vm := range healthy {
		if best == nil || vm.QueuedOrRunning() < best.QueuedOrRunning() {
			best = vm
		}
	}
	return best
}

// FastestFailover migrates to the healthy VM with the highest capacity.
func FastestFailover(c *Cloudlet, healthy []*VM) *VM {
	var best *VM
	for _, vm := range healthy {
		if best == nil || vm.Capacity() > best.Capacity() {
			best = vm
		}
	}
	return best
}

// Failed reports whether the broker has processed a failure for vm.
func (b *Broker) Failed(vm *VM) bool { return b.failed[vm] }

// Lost returns cloudlets abandoned because no failover target existed.
func (b *Broker) Lost() []*Cloudlet { return b.lost }

// Migrations returns the number of cloudlets moved by failure handling.
func (b *Broker) Migrations() int { return b.migrations }

// FailVM schedules a failure of vm at absolute simulated time at. When it
// fires, the VM's resident cloudlets are drained (progress retained) and
// resubmitted per policy; the VM accepts no further work through the
// broker. Returns an error if the VM is not part of the broker's
// environment.
func (b *Broker) FailVM(vm *VM, at sim.Time, policy FailoverPolicy) error {
	if vm.Scheduler() == nil {
		return fmt.Errorf("cloud: FailVM: VM %d has no bound scheduler", vm.ID)
	}
	owned := false
	for _, v := range b.env.VMs {
		if v == vm {
			owned = true
			break
		}
	}
	if !owned {
		return fmt.Errorf("cloud: FailVM: VM %d not in broker environment", vm.ID)
	}
	if policy == nil {
		policy = LeastLoadedFailover
	}
	b.eng.ScheduleAt(at, sim.PriorityHigh, func() {
		if b.failed[vm] {
			return
		}
		b.failed[vm] = true
		drained := vm.Scheduler().Drain()
		healthy := b.healthyVMs()
		for _, c := range drained {
			target := policy(c, healthy)
			if target == nil {
				b.lost = append(b.lost, c)
				continue
			}
			b.migrations++
			target.Scheduler().Submit(c)
		}
	})
	return nil
}

// healthyVMs returns the environment's VMs that have not failed.
func (b *Broker) healthyVMs() []*VM {
	var out []*VM
	for _, vm := range b.env.VMs {
		if !b.failed[vm] {
			out = append(out, vm)
		}
	}
	return out
}
