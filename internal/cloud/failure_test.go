package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"bioschedsim/internal/sim"
)

func TestTimeSharedDrainRetainsProgress(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(TimeSharedFactory(eng, vm, nil))
	c := NewCloudlet(0, 1000, 1, 0, 0) // 10 s alone
	vm.Scheduler().Submit(c)
	eng.RunUntil(4) // 400 MI done
	drained := vm.Scheduler().Drain()
	if len(drained) != 1 || drained[0] != c {
		t.Fatalf("drained: %v", drained)
	}
	if math.Abs(c.Remaining()-600) > 1e-9 {
		t.Fatalf("remaining after drain: %v", c.Remaining())
	}
	if c.Status != CloudletCreated || c.VM != nil {
		t.Fatalf("drained cloudlet not interrupted: %v %v", c.Status, c.VM)
	}
	if vm.QueuedOrRunning() != 0 {
		t.Fatal("scheduler not empty after drain")
	}
	// The old completion event must not fire.
	eng.Run()
	if c.Status == CloudletFinished {
		t.Fatal("stale completion event fired after drain")
	}
}

func TestSpaceSharedDrainRunningAndQueued(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 100, 1, 512, 500, 5000)
	vm.bind(SpaceSharedFactory(eng, vm, nil))
	running := NewCloudlet(0, 1000, 1, 0, 0)
	queued := NewCloudlet(1, 500, 1, 0, 0)
	vm.Scheduler().Submit(running)
	vm.Scheduler().Submit(queued)
	eng.RunUntil(3) // running has 700 MI left; queued untouched
	drained := vm.Scheduler().Drain()
	if len(drained) != 2 {
		t.Fatalf("drained %d cloudlets", len(drained))
	}
	if drained[0].ID != 0 || drained[1].ID != 1 {
		t.Fatalf("drain order: %v %v", drained[0].ID, drained[1].ID)
	}
	if math.Abs(running.Remaining()-700) > 1e-9 {
		t.Fatalf("running remaining: %v", running.Remaining())
	}
	if queued.Remaining() != 500 {
		t.Fatalf("queued remaining: %v", queued.Remaining())
	}
	eng.Run()
	if running.Status == CloudletFinished {
		t.Fatal("stale space-shared completion fired after drain")
	}
}

func TestDrainedCloudletResumesElsewhere(t *testing.T) {
	eng := sim.NewEngine()
	a := NewVM(0, 100, 1, 512, 500, 5000)
	b := NewVM(1, 200, 1, 512, 500, 5000)
	var finished []*Cloudlet
	record := func(c *Cloudlet) { finished = append(finished, c) }
	a.bind(TimeSharedFactory(eng, a, record))
	b.bind(TimeSharedFactory(eng, b, record))
	c := NewCloudlet(0, 1000, 1, 0, 0)
	a.Scheduler().Submit(c)
	eng.RunUntil(4) // 400 MI done on a
	a.Scheduler().Drain()
	b.Scheduler().Submit(c) // resume on b at t=4; 600 MI at 200 MIPS = 3 s
	eng.Run()
	if len(finished) != 1 {
		t.Fatalf("finished: %d", len(finished))
	}
	if !almost(c.FinishTime, 7.0, 1e-9) {
		t.Fatalf("resumed finish: %v (want 7)", c.FinishTime)
	}
	if c.VM != b {
		t.Fatal("cloudlet not recorded on the new VM")
	}
}

func TestBrokerFailVMMigratesWork(t *testing.T) {
	env := testEnv(t, 4, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	cls := make([]*Cloudlet, 12)
	vms := make([]*VM, 12)
	for i := range cls {
		cls[i] = NewCloudlet(i, 2000, 1, 0, 0)
		vms[i] = env.VMs[i%4]
	}
	if err := b.SubmitAll(cls, vms); err != nil {
		t.Fatal(err)
	}
	victim := env.VMs[0]
	if err := b.FailVM(victim, 1.0, LeastLoadedFailover); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(b.Finished()) != 12 {
		t.Fatalf("finished %d of 12 (lost %d)", len(b.Finished()), len(b.Lost()))
	}
	if b.Migrations() != 3 {
		t.Fatalf("migrations: %d want 3", b.Migrations())
	}
	if !b.Failed(victim) {
		t.Fatal("victim not marked failed")
	}
	for _, c := range b.Finished() {
		if c.Remaining() != 0 {
			t.Fatalf("cloudlet %d finished with remaining %v", c.ID, c.Remaining())
		}
		if c.VM == victim && c.FinishTime > 1.0 {
			t.Fatalf("cloudlet %d finished on failed VM after the failure", c.ID)
		}
	}
}

func TestBrokerFailVMIdempotent(t *testing.T) {
	env := testEnv(t, 2, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	c := NewCloudlet(0, 5000, 1, 0, 0)
	b.Submit(c, env.VMs[0])
	if err := b.FailVM(env.VMs[0], 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.FailVM(env.VMs[0], 2, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if b.Migrations() != 1 {
		t.Fatalf("double failure migrated twice: %d", b.Migrations())
	}
	if len(b.Finished()) != 1 {
		t.Fatalf("finished: %d", len(b.Finished()))
	}
}

func TestBrokerFailVMAllFailedLosesWork(t *testing.T) {
	env := testEnv(t, 2, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	c0 := NewCloudlet(0, 10000, 1, 0, 0)
	c1 := NewCloudlet(1, 10000, 1, 0, 0)
	b.Submit(c0, env.VMs[0])
	b.Submit(c1, env.VMs[1])
	if err := b.FailVM(env.VMs[0], 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.FailVM(env.VMs[1], 2, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// VM0's work migrates to VM1 at t=1; at t=2 VM1 fails with no healthy
	// target left: both cloudlets are lost.
	if len(b.Lost()) != 2 {
		t.Fatalf("lost: %d want 2", len(b.Lost()))
	}
	if len(b.Finished()) != 0 {
		t.Fatalf("finished: %d want 0", len(b.Finished()))
	}
}

func TestBrokerFailVMForeignVM(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	foreign := NewVM(99, 1000, 1, 512, 500, 5000)
	if err := b.FailVM(foreign, 1, nil); err == nil {
		t.Fatal("foreign VM accepted")
	}
}

func TestFailoverPolicies(t *testing.T) {
	eng := sim.NewEngine()
	slow := NewVM(0, 500, 1, 512, 500, 5000)
	fast := NewVM(1, 4000, 1, 512, 500, 5000)
	slow.bind(TimeSharedFactory(eng, slow, nil))
	fast.bind(TimeSharedFactory(eng, fast, nil))
	fast.Scheduler().Submit(NewCloudlet(5, 100, 1, 0, 0)) // load the fast VM
	healthy := []*VM{slow, fast}
	c := NewCloudlet(0, 100, 1, 0, 0)
	if got := LeastLoadedFailover(c, healthy); got != slow {
		t.Fatalf("least-loaded picked VM %d", got.ID)
	}
	if got := FastestFailover(c, healthy); got != fast {
		t.Fatalf("fastest picked VM %d", got.ID)
	}
	if LeastLoadedFailover(c, nil) != nil || FastestFailover(c, nil) != nil {
		t.Fatal("empty healthy list should return nil")
	}
}

// TestFailureWorkConservationProperty: with one random mid-run failure and
// least-loaded failover, every cloudlet still completes all its work.
func TestFailureWorkConservationProperty(t *testing.T) {
	f := func(seed int64, victimIdx, failAtRaw uint8) bool {
		env := testEnv(t, 4, 1000)
		eng := sim.NewEngine()
		b := NewBroker(eng, env, TimeSharedFactory)
		const n = 16
		var total float64
		for i := 0; i < n; i++ {
			raw := (seed + int64(i)*97) % 4096
			if raw < 0 {
				raw += 4096
			}
			length := 500 + float64(raw)
			total += length
			b.Submit(NewCloudlet(i, length, 1, 0, 0), env.VMs[i%4])
		}
		victim := env.VMs[int(victimIdx)%4]
		failAt := 0.1 + float64(failAtRaw)/64
		if err := b.FailVM(victim, failAt, LeastLoadedFailover); err != nil {
			return false
		}
		eng.Run()
		if len(b.Finished()) != n || len(b.Lost()) != 0 {
			return false
		}
		for _, c := range b.Finished() {
			if c.Remaining() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
