package cloud

import (
	"fmt"
)

// Host is a physical machine inside a datacenter. It provisions PEs, RAM,
// bandwidth, and storage to VMs; oversubscription is disallowed, matching
// CloudSim's default provisioners.
type Host struct {
	ID      int
	PEs     []PE
	RAM     float64 // MB
	Bw      float64 // Mbps
	Storage float64 // MB

	Datacenter *Datacenter // owning datacenter, set on construction
	vms        []*VM

	usedMIPS    float64
	usedRAM     float64
	usedBw      float64
	usedStorage float64
}

// NewHost returns a host with the given capacities.
func NewHost(id int, pes []PE, ram, bw, storage float64) *Host {
	if len(pes) == 0 {
		panic(fmt.Sprintf("cloud: host %d with no PEs", id))
	}
	return &Host{ID: id, PEs: pes, RAM: ram, Bw: bw, Storage: storage}
}

// TotalMIPS returns the host's aggregate compute capacity.
func (h *Host) TotalMIPS() float64 { return TotalMIPS(h.PEs) }

// AvailableMIPS returns unreserved compute capacity.
func (h *Host) AvailableMIPS() float64 { return h.TotalMIPS() - h.usedMIPS }

// AvailableRAM returns unreserved RAM in MB.
func (h *Host) AvailableRAM() float64 { return h.RAM - h.usedRAM }

// AvailableBw returns unreserved bandwidth in Mbps.
func (h *Host) AvailableBw() float64 { return h.Bw - h.usedBw }

// AvailableStorage returns unreserved storage in MB.
func (h *Host) AvailableStorage() float64 { return h.Storage - h.usedStorage }

// VMs returns the VMs currently placed on the host.
func (h *Host) VMs() []*VM { return h.vms }

// CanHost reports whether the host has capacity for vm.
func (h *Host) CanHost(vm *VM) bool {
	return vm.Capacity() <= h.AvailableMIPS()+1e-9 &&
		vm.RAM <= h.AvailableRAM()+1e-9 &&
		vm.Bw <= h.AvailableBw()+1e-9 &&
		vm.Size <= h.AvailableStorage()+1e-9
}

// Place reserves capacity for vm and records the placement. It returns an
// error when the host lacks capacity.
func (h *Host) Place(vm *VM) error {
	if vm.Host != nil {
		return fmt.Errorf("cloud: VM %d already placed on host %d", vm.ID, vm.Host.ID)
	}
	if !h.CanHost(vm) {
		return fmt.Errorf("cloud: host %d cannot fit VM %d (mips %.0f/%.0f ram %.0f/%.0f bw %.0f/%.0f storage %.0f/%.0f)",
			h.ID, vm.ID, vm.Capacity(), h.AvailableMIPS(), vm.RAM, h.AvailableRAM(),
			vm.Bw, h.AvailableBw(), vm.Size, h.AvailableStorage())
	}
	h.usedMIPS += vm.Capacity()
	h.usedRAM += vm.RAM
	h.usedBw += vm.Bw
	h.usedStorage += vm.Size
	h.vms = append(h.vms, vm)
	vm.Host = h
	return nil
}

// Evict releases vm's reservation. It returns an error when vm is not on
// this host.
func (h *Host) Evict(vm *VM) error {
	for i, resident := range h.vms {
		if resident == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			h.usedMIPS -= vm.Capacity()
			h.usedRAM -= vm.RAM
			h.usedBw -= vm.Bw
			h.usedStorage -= vm.Size
			vm.Host = nil
			return nil
		}
	}
	return fmt.Errorf("cloud: VM %d not on host %d", vm.ID, h.ID)
}
