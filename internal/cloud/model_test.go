package cloud

import (
	"strings"
	"testing"
)

func TestNewPEs(t *testing.T) {
	pes := NewPEs(4, 250)
	if len(pes) != 4 {
		t.Fatalf("len: %d", len(pes))
	}
	if TotalMIPS(pes) != 1000 {
		t.Fatalf("total: %v", TotalMIPS(pes))
	}
}

func TestNewPEsInvalidPanics(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mips float64
	}{{0, 100}, {-1, 100}, {1, 0}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPEs(%d, %v) did not panic", tc.n, tc.mips)
				}
			}()
			NewPEs(tc.n, tc.mips)
		}()
	}
}

func TestCloudletAccessors(t *testing.T) {
	c := NewCloudlet(7, 250, 1, 300, 300)
	if c.Remaining() != 250 {
		t.Fatalf("remaining: %v", c.Remaining())
	}
	if c.Status != CloudletCreated {
		t.Fatalf("status: %v", c.Status)
	}
	c.SubmitTime, c.StartTime, c.FinishTime = 1, 3, 10
	if c.WaitTime() != 2 || c.ExecTime() != 7 {
		t.Fatalf("wait %v exec %v", c.WaitTime(), c.ExecTime())
	}
}

func TestCloudletInvalidPanics(t *testing.T) {
	func() {
		defer func() { _ = recover() }()
		NewCloudlet(0, 0, 1, 0, 0)
		t.Error("zero length did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		NewCloudlet(0, 100, 0, 0, 0)
		t.Error("zero PEs did not panic")
	}()
}

func TestCloudletStatusString(t *testing.T) {
	cases := map[CloudletStatus]string{
		CloudletCreated:   "created",
		CloudletQueued:    "queued",
		CloudletRunning:   "running",
		CloudletFinished:  "finished",
		CloudletStatus(9): "CloudletStatus(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d: got %q want %q", int(s), s.String(), want)
		}
	}
}

func TestResetAll(t *testing.T) {
	c := NewCloudlet(0, 100, 1, 0, 0)
	c.Status = CloudletFinished
	c.remaining = 0
	c.FinishTime = 42
	c.VM = NewVM(0, 100, 1, 0, 0, 0)
	ResetAll([]*Cloudlet{c})
	if c.Status != CloudletCreated || c.remaining != 100 || c.FinishTime != 0 || c.VM != nil {
		t.Fatalf("reset incomplete: %+v", c)
	}
}

func TestVMCapacityAndEstimate(t *testing.T) {
	vm := NewVM(1, 500, 2, 512, 500, 5000)
	if vm.Capacity() != 1000 {
		t.Fatalf("capacity: %v", vm.Capacity())
	}
	c := NewCloudlet(0, 2000, 1, 500, 0)
	// 2000 MI / 1000 MIPS = 2 s, plus 500 MB / 500 Mbps = 1 s staging.
	if got := vm.EstimateExecTime(c); got != 3 {
		t.Fatalf("estimate: %v", got)
	}
}

func TestVMEstimateZeroBandwidth(t *testing.T) {
	vm := NewVM(1, 1000, 1, 512, 0, 5000)
	c := NewCloudlet(0, 1000, 1, 500, 0)
	if got := vm.EstimateExecTime(c); got != 1 {
		t.Fatalf("estimate without bw term: %v", got)
	}
}

func TestHostPlaceEvict(t *testing.T) {
	h := NewHost(0, NewPEs(4, 1000), 4096, 10000, 1<<20)
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	if err := h.Place(vm); err != nil {
		t.Fatal(err)
	}
	if vm.Host != h || len(h.VMs()) != 1 {
		t.Fatal("placement not recorded")
	}
	if h.AvailableMIPS() != 3000 {
		t.Fatalf("available MIPS: %v", h.AvailableMIPS())
	}
	if h.AvailableRAM() != 4096-512 {
		t.Fatalf("available RAM: %v", h.AvailableRAM())
	}
	if err := h.Evict(vm); err != nil {
		t.Fatal(err)
	}
	if vm.Host != nil || len(h.VMs()) != 0 || h.AvailableMIPS() != 4000 {
		t.Fatal("eviction incomplete")
	}
}

func TestHostRejectsOverCapacity(t *testing.T) {
	h := NewHost(0, NewPEs(1, 1000), 1024, 1000, 10000)
	big := NewVM(0, 2000, 1, 512, 500, 5000)
	if h.CanHost(big) {
		t.Fatal("CanHost over-capacity VM")
	}
	if err := h.Place(big); err == nil {
		t.Fatal("Place succeeded over capacity")
	}
}

func TestHostDoublePlaceFails(t *testing.T) {
	h1 := NewHost(0, NewPEs(2, 1000), 4096, 10000, 1<<20)
	h2 := NewHost(1, NewPEs(2, 1000), 4096, 10000, 1<<20)
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	if err := h1.Place(vm); err != nil {
		t.Fatal(err)
	}
	if err := h2.Place(vm); err == nil {
		t.Fatal("second placement should fail")
	}
}

func TestHostEvictAbsentFails(t *testing.T) {
	h := NewHost(0, NewPEs(1, 1000), 1024, 1000, 10000)
	vm := NewVM(0, 500, 1, 512, 500, 5000)
	if err := h.Evict(vm); err == nil {
		t.Fatal("evicting absent VM should fail")
	}
}

func TestDatacenterOwnership(t *testing.T) {
	hosts := []*Host{NewHost(0, NewPEs(1, 1000), 1024, 1000, 10000)}
	dc := NewDatacenter(0, "dc0", Characteristics{CostPerProcessing: 3}, hosts)
	if hosts[0].Datacenter != dc {
		t.Fatal("host not linked to datacenter")
	}
	vm := NewVM(0, 500, 1, 256, 100, 1000)
	if err := hosts[0].Place(vm); err != nil {
		t.Fatal(err)
	}
	if vm.Datacenter() != dc {
		t.Fatal("VM datacenter lookup failed")
	}
	if got := dc.VMs(); len(got) != 1 || got[0] != vm {
		t.Fatalf("dc.VMs: %v", got)
	}
	if dc.TotalMIPS() != 1000 {
		t.Fatalf("dc.TotalMIPS: %v", dc.TotalMIPS())
	}
}

func TestDatacenterDoubleOwnershipPanics(t *testing.T) {
	h := NewHost(0, NewPEs(1, 1000), 1024, 1000, 10000)
	NewDatacenter(0, "a", Characteristics{}, []*Host{h})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double ownership")
		}
	}()
	NewDatacenter(1, "b", Characteristics{}, []*Host{h})
}

func TestAllocationPolicies(t *testing.T) {
	mk := func() []*Host {
		return []*Host{
			NewHost(0, NewPEs(1, 1000), 4096, 10000, 1<<20),
			NewHost(1, NewPEs(1, 3000), 4096, 10000, 1<<20),
			NewHost(2, NewPEs(1, 2000), 4096, 10000, 1<<20),
		}
	}
	vm := func() *VM { return NewVM(0, 900, 1, 512, 500, 5000) }

	if h := (FirstFit{}).Pick(mk(), vm()); h.ID != 0 {
		t.Fatalf("first-fit picked host %d", h.ID)
	}
	if h := (LeastLoaded{}).Pick(mk(), vm()); h.ID != 1 {
		t.Fatalf("least-loaded picked host %d", h.ID)
	}
	if h := (BestFit{}).Pick(mk(), vm()); h.ID != 0 {
		t.Fatalf("best-fit picked host %d", h.ID)
	}
}

func TestAllocationPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    AllocationPolicy
		want string
	}{{FirstFit{}, "first-fit"}, {LeastLoaded{}, "least-loaded"}, {BestFit{}, "best-fit"}} {
		if tc.p.Name() != tc.want {
			t.Fatalf("name: got %q want %q", tc.p.Name(), tc.want)
		}
	}
}

func TestAllocateAtomicFailure(t *testing.T) {
	hosts := []*Host{NewHost(0, NewPEs(1, 1000), 4096, 10000, 1<<20)}
	vms := []*VM{
		NewVM(0, 600, 1, 512, 500, 5000),
		NewVM(1, 600, 1, 512, 500, 5000), // does not fit after the first
	}
	err := Allocate(FirstFit{}, hosts, vms)
	if err == nil {
		t.Fatal("expected allocation failure")
	}
	if !strings.Contains(err.Error(), "no host for VM 1") {
		t.Fatalf("error: %v", err)
	}
	if len(hosts[0].VMs()) != 0 {
		t.Fatal("failed allocation left VMs placed")
	}
	if vms[0].Host != nil {
		t.Fatal("rollback did not clear VM host")
	}
}

func TestAllocateSuccess(t *testing.T) {
	hosts := []*Host{
		NewHost(0, NewPEs(2, 1000), 4096, 10000, 1<<20),
		NewHost(1, NewPEs(2, 1000), 4096, 10000, 1<<20),
	}
	vms := make([]*VM, 4)
	for i := range vms {
		vms[i] = NewVM(i, 900, 1, 512, 500, 5000)
	}
	if err := Allocate(LeastLoaded{}, hosts, vms); err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].VMs()) != 2 || len(hosts[1].VMs()) != 2 {
		t.Fatalf("spread: %d/%d", len(hosts[0].VMs()), len(hosts[1].VMs()))
	}
}
