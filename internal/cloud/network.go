package cloud

import (
	"fmt"
	"math"
)

// NetworkTopology models inter-node latency and bandwidth, the analogue of
// CloudSim's NetworkTopology (the "default network topology" the paper's
// §VI mentions). Nodes are named (brokers, datacenters); links are
// undirected with a latency and a bandwidth; all-pairs delays are computed
// with Floyd–Warshall over latency, tracking the bottleneck bandwidth along
// each chosen path.
//
// The paper's experiments run with networking effects "negligible", so the
// topology is optional: a nil topology means zero staging delay. When one
// is attached (Broker.SubmitAllStaged), each cloudlet's submission to its
// VM is delayed by the path latency plus its input-file transfer time.
type NetworkTopology struct {
	names  map[string]int
	labels []string
	lat    [][]float64 // direct-link latency (s); +Inf when absent
	bw     [][]float64 // direct-link bandwidth (Mbps); 0 when absent

	built  bool
	delay  [][]float64 // all-pairs latency along shortest paths
	pathBw [][]float64 // bottleneck bandwidth along those paths
}

// NewNetworkTopology returns an empty topology.
func NewNetworkTopology() *NetworkTopology {
	return &NetworkTopology{names: map[string]int{}}
}

// AddNode registers a named node and returns its index; re-adding an
// existing name returns the existing index.
func (t *NetworkTopology) AddNode(name string) int {
	if i, ok := t.names[name]; ok {
		return i
	}
	i := len(t.labels)
	t.names[name] = i
	t.labels = append(t.labels, name)
	for r := range t.lat {
		t.lat[r] = append(t.lat[r], math.Inf(1))
		t.bw[r] = append(t.bw[r], 0)
	}
	latRow := make([]float64, i+1)
	bwRow := make([]float64, i+1)
	for c := range latRow {
		latRow[c] = math.Inf(1)
	}
	latRow[i] = 0
	t.lat = append(t.lat, latRow)
	t.bw = append(t.bw, bwRow)
	t.built = false
	return i
}

// AddLink connects two existing nodes with the given latency (seconds) and
// bandwidth (Mbps). Links are undirected; re-adding overwrites.
func (t *NetworkTopology) AddLink(a, b string, latency, bandwidth float64) error {
	ia, ok := t.names[a]
	if !ok {
		return fmt.Errorf("cloud: unknown topology node %q", a)
	}
	ib, ok := t.names[b]
	if !ok {
		return fmt.Errorf("cloud: unknown topology node %q", b)
	}
	if ia == ib {
		return fmt.Errorf("cloud: self-link on %q", a)
	}
	if latency < 0 || bandwidth <= 0 {
		return fmt.Errorf("cloud: invalid link %q-%q (latency %v, bw %v)", a, b, latency, bandwidth)
	}
	t.lat[ia][ib], t.lat[ib][ia] = latency, latency
	t.bw[ia][ib], t.bw[ib][ia] = bandwidth, bandwidth
	t.built = false
	return nil
}

// Build computes all-pairs shortest delays (Floyd–Warshall on latency) and
// the bottleneck bandwidth along each shortest path. It is idempotent and
// called lazily by the query methods.
func (t *NetworkTopology) Build() {
	n := len(t.labels)
	t.delay = make([][]float64, n)
	t.pathBw = make([][]float64, n)
	for i := 0; i < n; i++ {
		t.delay[i] = append([]float64(nil), t.lat[i]...)
		t.pathBw[i] = append([]float64(nil), t.bw[i]...)
		t.pathBw[i][i] = math.Inf(1)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				via := t.delay[i][k] + t.delay[k][j]
				if via < t.delay[i][j] {
					t.delay[i][j] = via
					t.pathBw[i][j] = math.Min(t.pathBw[i][k], t.pathBw[k][j])
				}
			}
		}
	}
	t.built = true
}

// Delay returns the end-to-end latency between two nodes in seconds.
// Unreachable pairs return +Inf.
func (t *NetworkTopology) Delay(a, b string) (float64, error) {
	ia, ib, err := t.pair(a, b)
	if err != nil {
		return 0, err
	}
	return t.delay[ia][ib], nil
}

// Bandwidth returns the bottleneck bandwidth (Mbps) along the shortest
// path between two nodes; 0 when unreachable.
func (t *NetworkTopology) Bandwidth(a, b string) (float64, error) {
	ia, ib, err := t.pair(a, b)
	if err != nil {
		return 0, err
	}
	bw := t.pathBw[ia][ib]
	if math.IsInf(t.delay[ia][ib], 1) {
		return 0, nil
	}
	return bw, nil
}

// TransferTime returns the simulated seconds needed to move sizeMB from a
// to b: path latency plus size over bottleneck bandwidth. Same-node
// transfers are free. Unreachable pairs return +Inf.
func (t *NetworkTopology) TransferTime(a, b string, sizeMB float64) (float64, error) {
	ia, ib, err := t.pair(a, b)
	if err != nil {
		return 0, err
	}
	if ia == ib {
		return 0, nil
	}
	d := t.delay[ia][ib]
	if math.IsInf(d, 1) {
		return math.Inf(1), nil
	}
	if sizeMB <= 0 {
		return d, nil
	}
	return d + sizeMB/t.pathBw[ia][ib], nil
}

// Nodes returns the registered node names in registration order.
func (t *NetworkTopology) Nodes() []string {
	return append([]string(nil), t.labels...)
}

func (t *NetworkTopology) pair(a, b string) (int, int, error) {
	ia, ok := t.names[a]
	if !ok {
		return 0, 0, fmt.Errorf("cloud: unknown topology node %q", a)
	}
	ib, ok := t.names[b]
	if !ok {
		return 0, 0, fmt.Errorf("cloud: unknown topology node %q", b)
	}
	if !t.built {
		t.Build()
	}
	return ia, ib, nil
}

// NewStarTopology builds the conventional broker-centric star: one center
// node connected to every leaf with identical latency and bandwidth — the
// shape of CloudSim's default single-broker experiments.
func NewStarTopology(center string, leaves []string, latency, bandwidth float64) (*NetworkTopology, error) {
	t := NewNetworkTopology()
	t.AddNode(center)
	for _, leaf := range leaves {
		t.AddNode(leaf)
		if err := t.AddLink(center, leaf, latency, bandwidth); err != nil {
			return nil, err
		}
	}
	t.Build()
	return t, nil
}
