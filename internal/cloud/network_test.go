package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"bioschedsim/internal/sim"
)

func TestTopologyDirectLink(t *testing.T) {
	topo := NewNetworkTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	if err := topo.AddLink("a", "b", 0.01, 1000); err != nil {
		t.Fatal(err)
	}
	d, err := topo.Delay("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.01 {
		t.Fatalf("delay: %v", d)
	}
	bw, err := topo.Bandwidth("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if bw != 1000 {
		t.Fatalf("bandwidth: %v", bw)
	}
	// 500 MB over 1000 Mbps + 10ms latency.
	tt, err := topo.TransferTime("a", "b", 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt-0.51) > 1e-12 {
		t.Fatalf("transfer time: %v", tt)
	}
}

func TestTopologyMultiHopShortestPath(t *testing.T) {
	topo := NewNetworkTopology()
	for _, n := range []string{"a", "b", "c"} {
		topo.AddNode(n)
	}
	// Direct a-c is slow; a-b-c is faster but bottlenecked at 100 Mbps.
	if err := topo.AddLink("a", "c", 1.0, 10000); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("a", "b", 0.1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("b", "c", 0.1, 100); err != nil {
		t.Fatal(err)
	}
	d, _ := topo.Delay("a", "c")
	if math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("shortest delay: %v", d)
	}
	bw, _ := topo.Bandwidth("a", "c")
	if bw != 100 {
		t.Fatalf("bottleneck bandwidth: %v", bw)
	}
}

func TestTopologySameNodeFree(t *testing.T) {
	topo := NewNetworkTopology()
	topo.AddNode("x")
	tt, err := topo.TransferTime("x", "x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tt != 0 {
		t.Fatalf("same-node transfer: %v", tt)
	}
}

func TestTopologyUnreachable(t *testing.T) {
	topo := NewNetworkTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	d, err := topo.Delay("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("unreachable delay: %v", d)
	}
	bw, _ := topo.Bandwidth("a", "b")
	if bw != 0 {
		t.Fatalf("unreachable bandwidth: %v", bw)
	}
	tt, _ := topo.TransferTime("a", "b", 10)
	if !math.IsInf(tt, 1) {
		t.Fatalf("unreachable transfer: %v", tt)
	}
}

func TestTopologyErrors(t *testing.T) {
	topo := NewNetworkTopology()
	topo.AddNode("a")
	if err := topo.AddLink("a", "ghost", 1, 1); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := topo.AddLink("a", "a", 1, 1); err == nil {
		t.Fatal("self-link accepted")
	}
	topo.AddNode("b")
	if err := topo.AddLink("a", "b", -1, 1); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := topo.AddLink("a", "b", 1, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := topo.Delay("ghost", "a"); err == nil {
		t.Fatal("unknown node query accepted")
	}
}

func TestTopologyAddNodeIdempotent(t *testing.T) {
	topo := NewNetworkTopology()
	i := topo.AddNode("a")
	if topo.AddNode("a") != i {
		t.Fatal("re-adding node changed index")
	}
	if len(topo.Nodes()) != 1 {
		t.Fatalf("nodes: %v", topo.Nodes())
	}
}

func TestTopologyRebuildAfterMutation(t *testing.T) {
	topo := NewNetworkTopology()
	topo.AddNode("a")
	topo.AddNode("b")
	if err := topo.AddLink("a", "b", 1.0, 100); err != nil {
		t.Fatal(err)
	}
	d, _ := topo.Delay("a", "b")
	if d != 1.0 {
		t.Fatalf("before: %v", d)
	}
	// Add a faster two-hop route; queries must see it without manual Build.
	topo.AddNode("c")
	if err := topo.AddLink("a", "c", 0.1, 100); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("c", "b", 0.1, 100); err != nil {
		t.Fatal(err)
	}
	d, _ = topo.Delay("a", "b")
	if math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("after rebuild: %v", d)
	}
}

func TestStarTopology(t *testing.T) {
	topo, err := NewStarTopology("broker", []string{"dc0", "dc1", "dc2"}, 0.005, 10000)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := topo.Delay("broker", "dc1")
	if d != 0.005 {
		t.Fatalf("hub delay: %v", d)
	}
	// Leaf to leaf goes through the hub.
	d, _ = topo.Delay("dc0", "dc2")
	if math.Abs(d-0.01) > 1e-12 {
		t.Fatalf("leaf-leaf delay: %v", d)
	}
}

// TestTopologyDelayMetricProperties: symmetry and triangle inequality hold
// for random star-ish topologies.
func TestTopologyDelayMetricProperties(t *testing.T) {
	f := func(lat1, lat2, lat3 uint16) bool {
		l1 := 0.001 + float64(lat1%1000)/1000
		l2 := 0.001 + float64(lat2%1000)/1000
		l3 := 0.001 + float64(lat3%1000)/1000
		topo := NewNetworkTopology()
		for _, n := range []string{"a", "b", "c"} {
			topo.AddNode(n)
		}
		if topo.AddLink("a", "b", l1, 100) != nil ||
			topo.AddLink("b", "c", l2, 100) != nil ||
			topo.AddLink("a", "c", l3, 100) != nil {
			return false
		}
		dab, _ := topo.Delay("a", "b")
		dba, _ := topo.Delay("b", "a")
		dbc, _ := topo.Delay("b", "c")
		dac, _ := topo.Delay("a", "c")
		if dab != dba {
			return false
		}
		return dac <= dab+dbc+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAllStagedDelaysStarts(t *testing.T) {
	env := testEnv(t, 2, 1000)
	topo, err := NewStarTopology("broker", []string{"dc0", "dc1"}, 0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	cls := []*Cloudlet{
		NewCloudlet(0, 100, 1, 500, 0), // 0.5s latency + 0.5s transfer = 1.0s
		NewCloudlet(1, 100, 1, 0, 0),   // latency only
	}
	if err := b.SubmitAllStaged(cls, []*VM{env.VMs[0], env.VMs[1]}, topo, "broker"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !almost(cls[0].SubmitTime, 1.0, 1e-9) {
		t.Fatalf("staged submit 0: %v", cls[0].SubmitTime)
	}
	if !almost(cls[1].SubmitTime, 0.5, 1e-9) {
		t.Fatalf("staged submit 1: %v", cls[1].SubmitTime)
	}
	if len(b.Finished()) != 2 {
		t.Fatalf("finished: %d", len(b.Finished()))
	}
}

func TestSubmitAllStagedNilTopology(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	c := NewCloudlet(0, 100, 1, 0, 0)
	if err := b.SubmitAllStaged([]*Cloudlet{c}, []*VM{env.VMs[0]}, nil, "broker"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if c.SubmitTime != 0 {
		t.Fatalf("nil topology should submit immediately, got %v", c.SubmitTime)
	}
}

func TestSubmitAllStagedUnreachable(t *testing.T) {
	env := testEnv(t, 1, 1000)
	topo := NewNetworkTopology()
	topo.AddNode("broker")
	topo.AddNode("dc0") // no link
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	err := b.SubmitAllStaged([]*Cloudlet{NewCloudlet(0, 100, 1, 10, 0)}, []*VM{env.VMs[0]}, topo, "broker")
	if err == nil {
		t.Fatal("unreachable datacenter accepted")
	}
}

func TestSubmitAllSchedule(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	cls := []*Cloudlet{
		NewCloudlet(0, 100, 1, 0, 0),
		NewCloudlet(1, 100, 1, 0, 0),
	}
	vms := []*VM{env.VMs[0], env.VMs[0]}
	if err := b.SubmitAllSchedule(cls, vms, []sim.Time{0, 5}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if cls[0].SubmitTime != 0 || cls[1].SubmitTime != 5 {
		t.Fatalf("arrival times: %v %v", cls[0].SubmitTime, cls[1].SubmitTime)
	}
}

func TestSubmitAllScheduleErrors(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	c := NewCloudlet(0, 100, 1, 0, 0)
	if err := b.SubmitAllSchedule([]*Cloudlet{c}, []*VM{env.VMs[0]}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := b.SubmitAllSchedule([]*Cloudlet{c}, []*VM{env.VMs[0]}, []sim.Time{-1}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}
