package cloud

import "fmt"

// PE is a processing element (one core) with a fixed MIPS rating.
type PE struct {
	MIPS float64
}

// NewPEs returns n identical processing elements rated at mips.
func NewPEs(n int, mips float64) []PE {
	if n <= 0 || mips <= 0 {
		panic(fmt.Sprintf("cloud: invalid PE spec n=%d mips=%v", n, mips))
	}
	pes := make([]PE, n)
	for i := range pes {
		pes[i] = PE{MIPS: mips}
	}
	return pes
}

// TotalMIPS sums the MIPS ratings of a PE list.
func TotalMIPS(pes []PE) float64 {
	var sum float64
	for _, p := range pes {
		sum += p.MIPS
	}
	return sum
}
