package cloud

import (
	"fmt"
	"math"
	"sort"

	"bioschedsim/internal/sim"
)

// PowerModel maps a host's CPU utilization (0..1) to power draw in watts,
// mirroring CloudSim's power package. The paper's related work motivates
// energy-aware scheduling ([27]); these models let the simulator account
// for the energy consequences of an assignment.
type PowerModel interface {
	// Power returns watts at the given utilization; implementations clamp
	// utilization into [0,1].
	Power(utilization float64) float64
}

// LinearPower draws Idle watts at zero utilization and scales linearly to
// Max at full utilization — the classic server model.
type LinearPower struct {
	Idle float64 // watts at 0% utilization
	Max  float64 // watts at 100% utilization
}

// Power implements PowerModel.
func (p LinearPower) Power(u float64) float64 {
	return p.Idle + (p.Max-p.Idle)*clampUtil(u)
}

// SqrtPower rises steeply at low utilization (Idle + (Max−Idle)·√u), the
// shape of frequency-scaled CPUs that pay most of their power early.
type SqrtPower struct {
	Idle float64
	Max  float64
}

// Power implements PowerModel.
func (p SqrtPower) Power(u float64) float64 {
	return p.Idle + (p.Max-p.Idle)*math.Sqrt(clampUtil(u))
}

// CubicPower rises slowly at low utilization (Idle + (Max−Idle)·u³),
// approximating DVFS-governed cores that stay cheap until loaded.
type CubicPower struct {
	Idle float64
	Max  float64
}

// Power implements PowerModel.
func (p CubicPower) Power(u float64) float64 {
	u = clampUtil(u)
	return p.Idle + (p.Max-p.Idle)*u*u*u
}

func clampUtil(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// EnergyReport summarizes a run's energy accounting.
type EnergyReport struct {
	TotalJoules float64           // plant-wide energy over the horizon
	PerHost     map[*Host]float64 // joules per host
	Horizon     sim.Time          // accounting window (0..makespan)
}

// busyWindow is a VM's [start, end) activity interval.
type busyWindow struct{ start, end sim.Time }

// HostEnergy integrates a run's energy use per host under the given power
// model. The utilization model matches the time-shared execution semantics:
// a VM contributes its full reserved capacity to its host's utilization
// while it has resident cloudlets (first start to last finish of the
// cloudlets assigned to it), and nothing outside that busy window. The
// accounting horizon runs from 0 to the latest finish time; hosts draw
// their idle power whenever no resident VM is busy.
func HostEnergy(env *Environment, finished []*Cloudlet, model PowerModel) (*EnergyReport, error) {
	if model == nil {
		return nil, fmt.Errorf("cloud: nil power model")
	}
	busy := map[*VM]busyWindow{}
	var horizon sim.Time
	for _, c := range finished {
		if c.VM == nil {
			return nil, fmt.Errorf("cloud: cloudlet %d has no VM; run it first", c.ID)
		}
		w, ok := busy[c.VM]
		if !ok {
			w = busyWindow{start: c.StartTime, end: c.FinishTime}
		} else {
			if c.StartTime < w.start {
				w.start = c.StartTime
			}
			if c.FinishTime > w.end {
				w.end = c.FinishTime
			}
		}
		busy[c.VM] = w
		if c.FinishTime > horizon {
			horizon = c.FinishTime
		}
	}

	report := &EnergyReport{PerHost: make(map[*Host]float64), Horizon: horizon}
	for _, host := range env.Hosts() {
		joules := hostEnergyOne(host, busy, model, horizon)
		report.PerHost[host] = joules
		report.TotalJoules += joules
	}
	return report, nil
}

// hostEnergyOne integrates one host's piecewise-constant utilization over
// [0, horizon]: utilization changes only at VM busy-window boundaries, so
// energy is the sum over segments of P(u) × dt.
func hostEnergyOne(host *Host, busy map[*VM]busyWindow, model PowerModel, horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	type edge struct {
		t     sim.Time
		delta float64 // capacity change in MIPS (+ on start, − on end)
	}
	var edges []edge
	for _, vm := range host.VMs() {
		w, ok := busy[vm]
		if !ok || w.end <= w.start {
			continue
		}
		edges = append(edges, edge{t: w.start, delta: vm.Capacity()})
		edges = append(edges, edge{t: w.end, delta: -vm.Capacity()})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })

	total := host.TotalMIPS()
	var joules float64
	var used float64
	prev := sim.Time(0)
	for _, e := range edges {
		if e.t > prev {
			joules += model.Power(used/total) * (e.t - prev)
			prev = e.t
		}
		used += e.delta
	}
	if horizon > prev {
		joules += model.Power(used/total) * (horizon - prev)
	}
	return joules
}
