package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerModels(t *testing.T) {
	lin := LinearPower{Idle: 100, Max: 300}
	if lin.Power(0) != 100 || lin.Power(1) != 300 || lin.Power(0.5) != 200 {
		t.Fatalf("linear: %v %v %v", lin.Power(0), lin.Power(1), lin.Power(0.5))
	}
	sq := SqrtPower{Idle: 100, Max: 300}
	if math.Abs(sq.Power(0.25)-200) > 1e-12 {
		t.Fatalf("sqrt at .25: %v", sq.Power(0.25))
	}
	cb := CubicPower{Idle: 100, Max: 300}
	if math.Abs(cb.Power(0.5)-125) > 1e-12 {
		t.Fatalf("cubic at .5: %v", cb.Power(0.5))
	}
}

func TestPowerModelsClamp(t *testing.T) {
	for _, m := range []PowerModel{
		LinearPower{100, 300}, SqrtPower{100, 300}, CubicPower{100, 300},
	} {
		if m.Power(-1) != 100 {
			t.Fatalf("%T below range: %v", m, m.Power(-1))
		}
		if m.Power(2) != 300 {
			t.Fatalf("%T above range: %v", m, m.Power(2))
		}
	}
}

// TestPowerModelsMonotoneProperty: all models are non-decreasing in u.
func TestPowerModelsMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ua, ub := float64(a)/65535, float64(b)/65535
		if ua > ub {
			ua, ub = ub, ua
		}
		for _, m := range []PowerModel{
			LinearPower{50, 250}, SqrtPower{50, 250}, CubicPower{50, 250},
		} {
			if m.Power(ua) > m.Power(ub)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// energyEnv builds one single-host environment with two VMs.
func energyEnv(t *testing.T) *Environment {
	t.Helper()
	host := NewHost(0, NewPEs(2, 1000), 1<<16, 1<<20, 1<<30) // 2000 MIPS total
	dc := NewDatacenter(0, "dc", Characteristics{CostPerProcessing: 3}, []*Host{host})
	vms := []*VM{
		NewVM(0, 1000, 1, 512, 500, 5000),
		NewVM(1, 1000, 1, 512, 500, 5000),
	}
	for _, vm := range vms {
		if err := host.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	return &Environment{Datacenters: []*Datacenter{dc}, VMs: vms}
}

func TestHostEnergyAnalytic(t *testing.T) {
	env := energyEnv(t)
	// VM0 busy [0,10): host at 50% utilization. VM1 busy [5,10): 100% on
	// [5,10). Horizon 10.
	c0 := NewCloudlet(0, 100, 1, 0, 0)
	c0.VM, c0.StartTime, c0.FinishTime = env.VMs[0], 0, 10
	c1 := NewCloudlet(1, 100, 1, 0, 0)
	c1.VM, c1.StartTime, c1.FinishTime = env.VMs[1], 5, 10
	model := LinearPower{Idle: 100, Max: 300}
	rep, err := HostEnergy(env, []*Cloudlet{c0, c1}, model)
	if err != nil {
		t.Fatal(err)
	}
	// [0,5): u=.5 → 200 W × 5 s = 1000 J; [5,10): u=1 → 300 W × 5 = 1500 J.
	if math.Abs(rep.TotalJoules-2500) > 1e-9 {
		t.Fatalf("total joules: %v", rep.TotalJoules)
	}
	if rep.Horizon != 10 {
		t.Fatalf("horizon: %v", rep.Horizon)
	}
	host := env.Hosts()[0]
	if math.Abs(rep.PerHost[host]-2500) > 1e-9 {
		t.Fatalf("per-host: %v", rep.PerHost[host])
	}
}

func TestHostEnergyIdleDraw(t *testing.T) {
	env := energyEnv(t)
	// One cloudlet busy [2,4); horizon 4; idle before 2.
	c := NewCloudlet(0, 100, 1, 0, 0)
	c.VM, c.StartTime, c.FinishTime = env.VMs[0], 2, 4
	rep, err := HostEnergy(env, []*Cloudlet{c}, LinearPower{Idle: 100, Max: 300})
	if err != nil {
		t.Fatal(err)
	}
	// [0,2): idle 100 W × 2 = 200 J; [2,4): u=.5 → 200 × 2 = 400 J.
	if math.Abs(rep.TotalJoules-600) > 1e-9 {
		t.Fatalf("total: %v", rep.TotalJoules)
	}
}

func TestHostEnergyEndToEnd(t *testing.T) {
	env := testEnv(t, 4, 1000)
	cls := make([]*Cloudlet, 20)
	vms := make([]*VM, 20)
	for i := range cls {
		cls[i] = NewCloudlet(i, 500, 1, 0, 0)
		vms[i] = env.VMs[i%4]
	}
	res, err := Execute(env, TimeSharedFactory, cls, vms)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := HostEnergy(env, res.Finished, LinearPower{Idle: 50, Max: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJoules <= 0 {
		t.Fatalf("energy: %v", rep.TotalJoules)
	}
	// Lower bound: every host idling over the horizon.
	minJ := 50.0 * float64(rep.Horizon) * float64(len(env.Hosts()))
	if rep.TotalJoules < minJ {
		t.Fatalf("energy %v below idle floor %v", rep.TotalJoules, minJ)
	}
}

func TestHostEnergyErrors(t *testing.T) {
	env := energyEnv(t)
	if _, err := HostEnergy(env, nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	orphan := NewCloudlet(0, 100, 1, 0, 0) // no VM
	if _, err := HostEnergy(env, []*Cloudlet{orphan}, LinearPower{100, 300}); err == nil {
		t.Fatal("unexecuted cloudlet accepted")
	}
}

func TestHostEnergyEmptyRun(t *testing.T) {
	env := energyEnv(t)
	rep, err := HostEnergy(env, nil, LinearPower{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalJoules != 0 || rep.Horizon != 0 {
		t.Fatalf("empty run: %+v", rep)
	}
}

// TestHostEnergyBusyBeatsIdleProperty: for a fixed horizon, a run with any
// busy window consumes at least the idle-only energy.
func TestHostEnergyBusyBeatsIdleProperty(t *testing.T) {
	f := func(startRaw, lenRaw uint8) bool {
		env := energyEnv(t)
		start := float64(startRaw % 50)
		end := start + 1 + float64(lenRaw%50)
		c := NewCloudlet(0, 100, 1, 0, 0)
		c.VM, c.StartTime, c.FinishTime = env.VMs[0], start, end
		model := LinearPower{Idle: 10, Max: 100}
		rep, err := HostEnergy(env, []*Cloudlet{c}, model)
		if err != nil {
			return false
		}
		return rep.TotalJoules >= 10*float64(rep.Horizon)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
