package cloud

import (
	"testing"

	"bioschedsim/internal/sim"
)

func TestProvisionVMAddsCapacity(t *testing.T) {
	env := testEnv(t, 2, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	if b.Engine() != eng || b.Environment() != env {
		t.Fatal("accessors broken")
	}
	fresh := NewVM(50, 2000, 1, 512, 500, 5000)
	if err := b.ProvisionVM(fresh, nil, nil); err != nil {
		t.Fatal(err)
	}
	if fresh.Host == nil || fresh.Scheduler() == nil {
		t.Fatal("provisioned VM not placed or bound")
	}
	if len(env.VMs) != 3 {
		t.Fatalf("fleet: %d", len(env.VMs))
	}
	// It must execute work and report completions through the broker.
	b.Submit(NewCloudlet(0, 1000, 1, 0, 0), fresh)
	eng.Run()
	if len(b.Finished()) != 1 {
		t.Fatalf("finished: %d", len(b.Finished()))
	}
}

func TestProvisionVMErrors(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	if err := b.ProvisionVM(nil, nil, nil); err == nil {
		t.Fatal("nil VM accepted")
	}
	if err := b.ProvisionVM(env.VMs[0], nil, nil); err == nil {
		t.Fatal("already-placed VM accepted")
	}
	huge := NewVM(51, 1e12, 1, 512, 500, 5000)
	if err := b.ProvisionVM(huge, nil, nil); err == nil {
		t.Fatal("unplaceable VM accepted")
	}
}

func TestProvisionVMAfterBootDelay(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	vm := NewVM(60, 1000, 1, 512, 500, 5000)
	if err := b.ProvisionVMAfter(vm, nil, nil, 30); err != nil {
		t.Fatal(err)
	}
	// Capacity is reserved immediately but the VM is not live yet.
	if vm.Host == nil {
		t.Fatal("host not reserved at launch")
	}
	if len(env.VMs) != 1 || vm.Scheduler() != nil {
		t.Fatal("VM live before boot completed")
	}
	eng.RunUntil(29)
	if len(env.VMs) != 1 {
		t.Fatal("VM joined before boot delay elapsed")
	}
	eng.RunUntil(31)
	if len(env.VMs) != 2 || vm.Scheduler() == nil {
		t.Fatal("VM did not join after boot")
	}
	b.Submit(NewCloudlet(0, 1000, 1, 0, 0), vm)
	eng.Run()
	if len(b.Finished()) != 1 {
		t.Fatal("booted VM did not execute")
	}
}

func TestProvisionVMAfterErrors(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	vm := NewVM(61, 1000, 1, 512, 500, 5000)
	if err := b.ProvisionVMAfter(vm, nil, nil, -1); err == nil {
		t.Fatal("negative boot delay accepted")
	}
	if err := b.ProvisionVMAfter(nil, nil, nil, 1); err == nil {
		t.Fatal("nil VM accepted")
	}
	if err := b.ProvisionVMAfter(env.VMs[0], nil, nil, 1); err == nil {
		t.Fatal("placed VM accepted")
	}
	huge := NewVM(62, 1e12, 1, 512, 500, 5000)
	if err := b.ProvisionVMAfter(huge, nil, nil, 1); err == nil {
		t.Fatal("unplaceable VM accepted")
	}
	// Zero delay delegates to the immediate path.
	instant := NewVM(63, 1000, 1, 512, 500, 5000)
	if err := b.ProvisionVMAfter(instant, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if instant.Scheduler() == nil {
		t.Fatal("zero-delay provision not immediate")
	}
}

func TestDecommissionVMMigratesResidents(t *testing.T) {
	env := testEnv(t, 3, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	victim := env.VMs[0]
	b.Submit(NewCloudlet(0, 5000, 1, 0, 0), victim)
	b.Submit(NewCloudlet(1, 5000, 1, 0, 0), victim)
	eng.RunUntil(1)
	host := victim.Host
	if err := b.DecommissionVM(victim, nil); err != nil {
		t.Fatal(err)
	}
	if len(env.VMs) != 2 {
		t.Fatalf("fleet after decommission: %d", len(env.VMs))
	}
	if victim.Host != nil {
		t.Fatal("decommissioned VM still placed")
	}
	for _, vm := range host.VMs() {
		if vm == victim {
			t.Fatal("host still lists the VM")
		}
	}
	if b.Migrations() != 2 {
		t.Fatalf("migrations: %d", b.Migrations())
	}
	eng.Run()
	if len(b.Finished()) != 2 {
		t.Fatalf("finished: %d (work lost)", len(b.Finished()))
	}
}

func TestDecommissionVMErrors(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	foreign := NewVM(99, 1000, 1, 512, 500, 5000)
	if err := b.DecommissionVM(foreign, nil); err == nil {
		t.Fatal("foreign VM accepted")
	}
	// Last healthy VM must be refused and the fleet restored.
	if err := b.DecommissionVM(env.VMs[0], nil); err == nil {
		t.Fatal("last VM decommission accepted")
	}
	if len(env.VMs) != 1 {
		t.Fatalf("fleet not restored: %d", len(env.VMs))
	}
}

func TestSubmitAtNegativeDelayPanics(t *testing.T) {
	env := testEnv(t, 1, 1000)
	eng := sim.NewEngine()
	b := NewBroker(eng, env, TimeSharedFactory)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.SubmitAt(NewCloudlet(0, 100, 1, 0, 0), env.VMs[0], -1)
}

func TestSchedulerNamesAndResident(t *testing.T) {
	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 2, 512, 500, 5000)
	ss := NewSpaceShared(eng, vm, nil)
	if ss.Name() != "space-shared" {
		t.Fatalf("name: %s", ss.Name())
	}
	if ss.Resident() != 0 {
		t.Fatalf("fresh resident: %d", ss.Resident())
	}
	vm.bind(ss)
	vm.Scheduler().Submit(NewCloudlet(0, 100, 1, 0, 0))
	vm.Scheduler().Submit(NewCloudlet(1, 100, 1, 0, 0))
	vm.Scheduler().Submit(NewCloudlet(2, 100, 1, 0, 0))
	if ss.Resident() != 3 { // 2 running + 1 queued
		t.Fatalf("resident: %d", ss.Resident())
	}
}

func TestNewSchedulersNilArgsPanic(t *testing.T) {
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	for name, fn := range map[string]func(){
		"time-shared nil engine":  func() { NewTimeShared(nil, vm, nil) },
		"space-shared nil engine": func() { NewSpaceShared(nil, vm, nil) },
		"time-shared nil vm":      func() { NewTimeShared(sim.NewEngine(), nil, nil) },
		"space-shared nil vm":     func() { NewSpaceShared(sim.NewEngine(), nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewVMInvalidPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero mips": func() { NewVM(0, 0, 1, 512, 500, 5000) },
		"zero pes":  func() { NewVM(0, 1000, 0, 512, 500, 5000) },
		"no host":   func() { NewHost(0, nil, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVMQueuedOrRunningUnbound(t *testing.T) {
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	if vm.QueuedOrRunning() != 0 {
		t.Fatal("unbound VM should report 0 residents")
	}
	if vm.Scheduler() != nil {
		t.Fatal("unbound VM should have nil scheduler")
	}
}
