package cloud

import "fmt"

// PartitionVMs splits a fleet into n contiguous, disjoint ranges that
// together cover it exactly — the ownership map of a sharded daemon, where
// each shard's engine executes only the VMs of its range. The first
// len(vms) mod n ranges are one VM larger, so range sizes differ by at most
// one. The split is a pure function of (vms, n): the same fleet always
// partitions identically, which is what lets a sharded run be replayed.
//
// VM identity is preserved: the returned ranges alias the input slice's
// *VM pointers (IDs, host placement, and datacenter pricing untouched).
func PartitionVMs(vms []*VM, n int) ([][]*VM, error) {
	if n < 1 {
		return nil, fmt.Errorf("cloud: partition into %d shards; need at least 1", n)
	}
	if n > len(vms) {
		return nil, fmt.Errorf("cloud: cannot partition %d VMs into %d shards; shards must not exceed fleet size", len(vms), n)
	}
	out := make([][]*VM, n)
	size, extra := len(vms)/n, len(vms)%n
	lo := 0
	for i := range out {
		hi := lo + size
		if i < extra {
			hi++
		}
		out[i] = vms[lo:hi:hi]
		lo = hi
	}
	return out, nil
}

// Subset derives an environment owning only the given VMs while sharing e's
// datacenters (read-only after construction, so concurrent shard engines
// can price and validate against them safely). Every VM must belong to e
// and appear at most once; the *VM pointers are kept as-is, so nothing is
// renumbered — a cloudlet finishing on shard 3 reports the same VM ID it
// would have reported on an unsharded fleet.
func (e *Environment) Subset(vms []*VM) (*Environment, error) {
	if len(vms) == 0 {
		return nil, fmt.Errorf("cloud: empty VM subset")
	}
	member := make(map[*VM]bool, len(e.VMs))
	for _, vm := range e.VMs {
		member[vm] = true
	}
	seen := make(map[*VM]bool, len(vms))
	for _, vm := range vms {
		if vm == nil {
			return nil, fmt.Errorf("cloud: nil VM in subset")
		}
		if !member[vm] {
			return nil, fmt.Errorf("cloud: VM %d is not part of the environment", vm.ID)
		}
		if seen[vm] {
			return nil, fmt.Errorf("cloud: VM %d appears twice in the subset", vm.ID)
		}
		seen[vm] = true
	}
	return &Environment{
		Datacenters: e.Datacenters,
		VMs:         append([]*VM(nil), vms...),
	}, nil
}
