package cloud

import "testing"

// shardTestEnv builds one datacenter with a host large enough for n VMs.
func shardTestEnv(t *testing.T, n int) *Environment {
	t.Helper()
	host := NewHost(0, NewPEs(64, 4000), 1<<30, 1<<30, 1<<40)
	dc := NewDatacenter(0, "dc", Characteristics{CostPerProcessing: 1}, []*Host{host})
	vms := make([]*VM, n)
	for i := range vms {
		vms[i] = NewVM(i, 1000, 1, 512, 1024, 100)
		if err := host.Place(vms[i]); err != nil {
			t.Fatal(err)
		}
	}
	env := &Environment{Datacenters: []*Datacenter{dc}, VMs: vms}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPartitionVMsContiguousDisjointCovering(t *testing.T) {
	env := shardTestEnv(t, 10)
	for _, n := range []int{1, 2, 3, 4, 10} {
		parts, err := PartitionVMs(env.VMs, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("n=%d: %d ranges", n, len(parts))
		}
		next := 0
		for i, p := range parts {
			if len(p) == 0 {
				t.Fatalf("n=%d: empty range %d", n, i)
			}
			for _, vm := range p {
				if vm != env.VMs[next] {
					t.Fatalf("n=%d: range %d not contiguous at fleet index %d", n, i, next)
				}
				next++
			}
		}
		if next != len(env.VMs) {
			t.Fatalf("n=%d: ranges cover %d of %d VMs", n, next, len(env.VMs))
		}
		// Sizes differ by at most one.
		min, max := len(parts[0]), len(parts[0])
		for _, p := range parts {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: range sizes spread %d..%d", n, min, max)
		}
	}
}

func TestPartitionVMsRejectsBadCounts(t *testing.T) {
	env := shardTestEnv(t, 3)
	if _, err := PartitionVMs(env.VMs, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := PartitionVMs(env.VMs, -1); err == nil {
		t.Fatal("n=-1 accepted")
	}
	if _, err := PartitionVMs(env.VMs, 4); err == nil {
		t.Fatal("more shards than VMs accepted")
	}
}

func TestSubsetPreservesIdentity(t *testing.T) {
	env := shardTestEnv(t, 6)
	sub, err := env.Subset(env.VMs[2:5])
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.VMs) != 3 {
		t.Fatalf("subset fleet %d, want 3", len(sub.VMs))
	}
	for i, vm := range sub.VMs {
		if vm != env.VMs[2+i] {
			t.Fatalf("subset VM %d is not the same object as fleet VM %d", i, 2+i)
		}
		if vm.ID != 2+i {
			t.Fatalf("subset renumbered VM: got ID %d, want %d", vm.ID, 2+i)
		}
	}
	if &sub.Datacenters[0] == &env.Datacenters[0] && sub.Datacenters[0] != env.Datacenters[0] {
		t.Fatal("datacenters not shared")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset environment invalid: %v", err)
	}
}

func TestSubsetRejectsForeignNilAndDuplicateVMs(t *testing.T) {
	env := shardTestEnv(t, 3)
	other := shardTestEnv(t, 1)
	if _, err := env.Subset(nil); err == nil {
		t.Fatal("empty subset accepted")
	}
	if _, err := env.Subset([]*VM{other.VMs[0]}); err == nil {
		t.Fatal("foreign VM accepted")
	}
	if _, err := env.Subset([]*VM{env.VMs[0], nil}); err == nil {
		t.Fatal("nil VM accepted")
	}
	if _, err := env.Subset([]*VM{env.VMs[1], env.VMs[1]}); err == nil {
		t.Fatal("duplicate VM accepted")
	}
}
