package cloud

import (
	"math/rand"
	"testing"

	"bioschedsim/internal/qmodel"
	"bioschedsim/internal/sim"
)

// TestMM1QueueAgainstTheory validates the discrete-event substrate against
// queueing theory: a single 1-PE space-shared VM fed Poisson arrivals with
// exponential service demands is an M/M/1 queue, whose mean waiting time in
// queue is Wq = ρ/(μ−λ) with ρ = λ/μ. A simulator that drifts from this is
// broken in a way unit tests on hand-picked schedules cannot catch.
func TestMM1QueueAgainstTheory(t *testing.T) {
	const (
		lambda = 0.7 // arrivals per second
		mu     = 1.0 // services per second
		n      = 60000
	)
	r := rand.New(rand.NewSource(11))

	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000) // 1000 MIPS
	var done []*Cloudlet
	vm.bind(SpaceSharedFactory(eng, vm, func(c *Cloudlet) { done = append(done, c) }))

	// Exponential service time S → length = S × 1000 MI at 1000 MIPS.
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(r.ExpFloat64() / lambda)
		length := r.ExpFloat64() / mu * 1000
		if length < 1e-6 {
			length = 1e-6
		}
		c := NewCloudlet(i, length, 1, 0, 0)
		eng.ScheduleAt(at, sim.PriorityAcquire, func() { vm.Scheduler().Submit(c) })
	}
	eng.Run()

	if len(done) != n {
		t.Fatalf("finished %d of %d", len(done), n)
	}
	var totalWait float64
	for _, c := range done {
		totalWait += c.WaitTime()
	}
	meanWait := totalWait / float64(n)
	theory, err := qmodel.MM1WaitQueue(lambda, mu) // 0.7/0.3 ≈ 2.333 s
	if err != nil {
		t.Fatal(err)
	}
	if qmodel.RelativeError(meanWait, theory) > 0.10 {
		t.Fatalf("M/M/1 mean wait: simulated %.4f s vs theory %.4f s (>10%% off)", meanWait, theory)
	}
}

// TestMMcQueueAgainstTheory validates multi-PE space-shared execution: a
// 3-PE VM where each cloudlet occupies one PE is an M/M/3 queue, checked
// against the Erlang-C mean wait.
func TestMMcQueueAgainstTheory(t *testing.T) {
	const (
		lambda = 2.0
		mu     = 1.0
		c      = 3
		n      = 60000
	)
	r := rand.New(rand.NewSource(19))

	eng := sim.NewEngine()
	vm := NewVM(0, 1000, c, 512, 500, 5000)
	var done []*Cloudlet
	vm.bind(SpaceSharedFactory(eng, vm, func(cl *Cloudlet) { done = append(done, cl) }))

	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(r.ExpFloat64() / lambda)
		length := r.ExpFloat64() / mu * 1000 // per-PE MIPS is 1000
		if length < 1e-6 {
			length = 1e-6
		}
		cl := NewCloudlet(i, length, 1, 0, 0)
		eng.ScheduleAt(at, sim.PriorityAcquire, func() { vm.Scheduler().Submit(cl) })
	}
	eng.Run()

	var totalWait float64
	for _, cl := range done {
		totalWait += cl.WaitTime()
	}
	meanWait := totalWait / float64(n)
	theory, err := qmodel.MMcWaitQueue(lambda, mu, c) // 0.4444 s
	if err != nil {
		t.Fatal(err)
	}
	if qmodel.RelativeError(meanWait, theory) > 0.10 {
		t.Fatalf("M/M/3 mean wait: simulated %.4f s vs theory %.4f s (>10%% off)", meanWait, theory)
	}
}

// TestMD1QueueAgainstTheory repeats the validation with deterministic
// service (M/D/1): Wq = ρ/(2μ(1−ρ)), half the M/M/1 wait — a sharp check
// that the simulator's service-time handling is exact, not just averaged.
func TestMD1QueueAgainstTheory(t *testing.T) {
	const (
		lambda = 0.6
		mu     = 1.0
		n      = 60000
	)
	r := rand.New(rand.NewSource(13))

	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	var done []*Cloudlet
	vm.bind(SpaceSharedFactory(eng, vm, func(c *Cloudlet) { done = append(done, c) }))

	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(r.ExpFloat64() / lambda)
		c := NewCloudlet(i, 1000/mu, 1, 0, 0) // constant 1 s service
		eng.ScheduleAt(at, sim.PriorityAcquire, func() { vm.Scheduler().Submit(c) })
	}
	eng.Run()

	var totalWait float64
	for _, c := range done {
		totalWait += c.WaitTime()
	}
	meanWait := totalWait / float64(n)
	theory, err := qmodel.MD1WaitQueue(lambda, mu) // 0.6/0.8 = 0.75 s
	if err != nil {
		t.Fatal(err)
	}
	if qmodel.RelativeError(meanWait, theory) > 0.10 {
		t.Fatalf("M/D/1 mean wait: simulated %.4f s vs theory %.4f s (>10%% off)", meanWait, theory)
	}
}

// TestProcessorSharingMeanResponse validates the time-shared discipline:
// an M/M/1 processor-sharing queue has mean response time 1/(μ−λ),
// identical to FCFS M/M/1 — but reached through completely different
// per-cloudlet dynamics, so it exercises the share-recomputation machinery.
func TestProcessorSharingMeanResponse(t *testing.T) {
	const (
		lambda = 0.5
		mu     = 1.0
		n      = 40000
	)
	r := rand.New(rand.NewSource(17))

	eng := sim.NewEngine()
	vm := NewVM(0, 1000, 1, 512, 500, 5000)
	var done []*Cloudlet
	vm.bind(TimeSharedFactory(eng, vm, func(c *Cloudlet) { done = append(done, c) }))

	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += sim.Time(r.ExpFloat64() / lambda)
		length := r.ExpFloat64() / mu * 1000
		if length < 1e-6 {
			length = 1e-6
		}
		c := NewCloudlet(i, length, 1, 0, 0)
		eng.ScheduleAt(at, sim.PriorityAcquire, func() { vm.Scheduler().Submit(c) })
	}
	eng.Run()

	var totalResp float64
	for _, c := range done {
		totalResp += c.FinishTime - c.SubmitTime
	}
	meanResp := totalResp / float64(n)
	theory, err := qmodel.MM1Response(lambda, mu) // 2 s
	if err != nil {
		t.Fatal(err)
	}
	if qmodel.RelativeError(meanResp, theory) > 0.10 {
		t.Fatalf("M/M/1-PS mean response: simulated %.4f s vs theory %.4f s (>10%% off)", meanResp, theory)
	}
}
