package cloud

import (
	"fmt"

	"bioschedsim/internal/sim"
)

// VM is a virtual machine (Table III/V characteristics). Its compute
// capacity is MIPS × PEs; RAM/Bw/Size are reservations charged against the
// host and priced by the owning datacenter.
type VM struct {
	ID   int
	MIPS float64 // per-PE million instructions per second (vmMips)
	PEs  int     // processing elements (vmPesNumber)
	RAM  float64 // MB (vmRam)
	Bw   float64 // Mbps (vmBw)
	Size float64 // image size, MB (vmSize)

	Host      *Host             // set by allocation
	scheduler CloudletScheduler // execution engine for resident cloudlets
}

// NewVM returns a VM with the given identity and capacity.
func NewVM(id int, mips float64, pes int, ram, bw, size float64) *VM {
	if mips <= 0 || pes <= 0 {
		panic(fmt.Sprintf("cloud: VM %d with invalid capacity mips=%v pes=%d", id, mips, pes))
	}
	return &VM{ID: id, MIPS: mips, PEs: pes, RAM: ram, Bw: bw, Size: size}
}

// Capacity returns the VM's total compute capacity in MIPS.
func (v *VM) Capacity() float64 { return v.MIPS * float64(v.PEs) }

// Datacenter returns the datacenter hosting the VM, or nil before allocation.
func (v *VM) Datacenter() *Datacenter {
	if v.Host == nil {
		return nil
	}
	return v.Host.Datacenter
}

// Scheduler returns the VM's cloudlet scheduler, or nil before the broker
// binds one.
func (v *VM) Scheduler() CloudletScheduler { return v.scheduler }

// bind attaches a cloudlet scheduler; called by the broker at run start.
func (v *VM) bind(s CloudletScheduler) { v.scheduler = s }

// QueuedOrRunning returns the number of cloudlets currently resident on the
// VM (queued plus executing). Schedulers that balance on load read this.
func (v *VM) QueuedOrRunning() int {
	if v.scheduler == nil {
		return 0
	}
	return v.scheduler.Resident()
}

// EstimateExecTime returns the idealized execution time of a cloudlet on
// this VM assuming it runs alone: length / capacity, plus input staging time
// over the VM's bandwidth. This is the d_ij quantity of the paper's Eq. 6.
func (v *VM) EstimateExecTime(c *Cloudlet) sim.Time {
	t := c.Length / v.Capacity()
	if v.Bw > 0 {
		t += c.FileSize / v.Bw
	}
	return t
}
