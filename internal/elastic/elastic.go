// Package elastic implements threshold-rule autoscaling, the mechanism the
// paper's §II attributes to Amazon EC2: "through monitoring, if the load
// increases beyond a specific threshold, then new instances are
// instantiated". An Autoscaler samples the fleet's average residency on a
// fixed interval and provisions or decommissions VMs against configured
// watermarks — the rule-based baseline the bio-inspired schedulers are
// meant to improve upon.
package elastic

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/sim"
)

// VMTemplate describes the instance type the autoscaler launches.
type VMTemplate struct {
	MIPS float64
	PEs  int
	RAM  float64
	Bw   float64
	Size float64
}

// Policy is the threshold rule set.
type Policy struct {
	// ScaleUpLoad adds a VM when average residency (cloudlets per VM)
	// exceeds it.
	ScaleUpLoad float64
	// ScaleDownLoad removes one idle VM when average residency falls below
	// it. Only completely idle VMs are removed.
	ScaleDownLoad float64
	// Interval is the monitoring period in simulated seconds.
	Interval sim.Time
	// MinVMs/MaxVMs bound the fleet.
	MinVMs, MaxVMs int
	// Template is the instance type launched on scale-up.
	Template VMTemplate
	// BootDelay is how long a scaled-up instance takes before it can accept
	// work (0 = instant). Real clouds pay tens of seconds here, which is
	// the lag window threshold autoscaling is criticized for.
	BootDelay sim.Time
	// MonitorUntil keeps monitoring alive through idle instants up to this
	// simulated time (0 = monitor only while the fleet holds cloudlets, the
	// batch behavior). Open-arrival workloads must set it to the last
	// arrival: a momentarily drained fleet between arrivals would otherwise
	// end monitoring for the rest of the run.
	MonitorUntil sim.Time
}

// Validate rejects unusable policies.
func (p Policy) Validate() error {
	switch {
	case p.Interval <= 0:
		return fmt.Errorf("elastic: Interval must be positive, got %v", p.Interval)
	case p.ScaleUpLoad <= p.ScaleDownLoad:
		return fmt.Errorf("elastic: ScaleUpLoad (%v) must exceed ScaleDownLoad (%v)", p.ScaleUpLoad, p.ScaleDownLoad)
	case p.MinVMs < 1:
		return fmt.Errorf("elastic: MinVMs must be at least 1, got %d", p.MinVMs)
	case p.MaxVMs < p.MinVMs:
		return fmt.Errorf("elastic: MaxVMs (%d) below MinVMs (%d)", p.MaxVMs, p.MinVMs)
	case p.Template.MIPS <= 0 || p.Template.PEs <= 0:
		return fmt.Errorf("elastic: template needs positive MIPS and PEs")
	case p.BootDelay < 0:
		return fmt.Errorf("elastic: BootDelay must be non-negative, got %v", p.BootDelay)
	}
	return nil
}

// Action is a scaling decision kind.
type Action int

// Actions.
const (
	ScaleUp Action = iota
	ScaleDown
)

// String implements fmt.Stringer.
func (a Action) String() string {
	if a == ScaleUp {
		return "scale-up"
	}
	return "scale-down"
}

// Event records one scaling decision.
type Event struct {
	Time sim.Time
	Act  Action
	VMID int
	Load float64 // average residency that triggered the decision
	Size int     // fleet size after the action
}

// Autoscaler monitors a broker's fleet and applies the policy.
type Autoscaler struct {
	broker  *cloud.Broker
	policy  Policy
	factory cloud.SchedulerFactory
	alloc   cloud.AllocationPolicy

	nextID  int
	events  []Event
	stopped bool
}

// New returns an autoscaler over broker. nextID seeds fresh VM identifiers
// (use a value above the existing fleet's IDs).
func New(broker *cloud.Broker, policy Policy, factory cloud.SchedulerFactory, nextID int) (*Autoscaler, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		factory = cloud.TimeSharedFactory
	}
	return &Autoscaler{broker: broker, policy: policy, factory: factory, alloc: cloud.LeastLoaded{}, nextID: nextID}, nil
}

// Events returns the scaling decisions taken so far.
func (a *Autoscaler) Events() []Event { return a.events }

// Stop halts monitoring after the current tick.
func (a *Autoscaler) Stop() { a.stopped = true }

// Start begins periodic monitoring on the broker's engine. Monitoring
// reschedules itself while cloudlets remain in flight or until Stop.
func (a *Autoscaler) Start() {
	a.broker.Engine().Schedule(a.policy.Interval, sim.PriorityLow, a.tick)
}

// load returns the fleet's average residency.
func (a *Autoscaler) load() float64 {
	vms := a.broker.Environment().VMs
	if len(vms) == 0 {
		return 0
	}
	total := 0
	for _, vm := range vms {
		total += vm.QueuedOrRunning()
	}
	return float64(total) / float64(len(vms))
}

// tick applies the threshold rules once and reschedules itself.
func (a *Autoscaler) tick() {
	if a.stopped {
		return
	}
	env := a.broker.Environment()
	now := a.broker.Engine().Now()
	load := a.load()
	switch {
	case load > a.policy.ScaleUpLoad && len(env.VMs) < a.policy.MaxVMs:
		tmpl := a.policy.Template
		vm := cloud.NewVM(a.nextID, tmpl.MIPS, tmpl.PEs, tmpl.RAM, tmpl.Bw, tmpl.Size)
		a.nextID++
		if err := a.broker.ProvisionVMAfter(vm, a.alloc, a.factory, a.policy.BootDelay); err == nil {
			a.events = append(a.events, Event{Time: now, Act: ScaleUp, VMID: vm.ID, Load: load, Size: len(env.VMs)})
			// Once the instance is up, pull work off the busiest VM so the
			// new capacity actually relieves the backlog (capacity without
			// rebalancing only helps future arrivals).
			a.broker.Engine().Schedule(a.policy.BootDelay, sim.PriorityLow, func() {
				a.rebalance(vm)
			})
		}
	case load < a.policy.ScaleDownLoad && len(env.VMs) > a.policy.MinVMs:
		// Remove one fully idle VM, if any.
		for _, vm := range env.VMs {
			if vm.QueuedOrRunning() == 0 {
				if err := a.broker.DecommissionVM(vm, nil); err == nil {
					a.events = append(a.events, Event{Time: now, Act: ScaleDown, VMID: vm.ID, Load: load, Size: len(env.VMs)})
				}
				break
			}
		}
	}
	// Keep monitoring while work remains (or arrivals are still due, when
	// the policy declares a horizon): the engine drains when no events are
	// left, so reschedule only then — otherwise monitoring would keep the
	// simulation alive forever.
	if a.busy() || now < a.policy.MonitorUntil {
		a.broker.Engine().Schedule(a.policy.Interval, sim.PriorityLow, a.tick)
	}
}

// rebalance drains the busiest VM and redistributes its resident cloudlets
// between itself and the freshly booted VM, booking by estimated execution
// time so the faster machine takes proportionally more.
func (a *Autoscaler) rebalance(fresh *cloud.VM) {
	if fresh.Scheduler() == nil {
		return // boot raced a Stop or the provision failed
	}
	var busiest *cloud.VM
	for _, vm := range a.broker.Environment().VMs {
		if vm == fresh {
			continue
		}
		if busiest == nil || vm.QueuedOrRunning() > busiest.QueuedOrRunning() {
			busiest = vm
		}
	}
	if busiest == nil || busiest.QueuedOrRunning() < 2 {
		return // nothing worth splitting
	}
	drained := busiest.Scheduler().Drain()
	// Cache the Eq. 6 estimates over the two candidate VMs once: the greedy
	// booking below reads each estimate up to three times (two peeks plus the
	// commit), which previously recomputed the formula every time.
	pair := []*cloud.VM{busiest, fresh}
	mx := objective.NewMatrix(drained, pair, objective.Options{})
	var loadBusiest, loadFresh float64
	for i, c := range drained {
		if loadFresh+mx.Exec(i, 1) < loadBusiest+mx.Exec(i, 0) {
			loadFresh += mx.Exec(i, 1)
			fresh.Scheduler().Submit(c)
		} else {
			loadBusiest += mx.Exec(i, 0)
			busiest.Scheduler().Submit(c)
		}
	}
}

// busy reports whether any VM still holds cloudlets.
func (a *Autoscaler) busy() bool {
	for _, vm := range a.broker.Environment().VMs {
		if vm.QueuedOrRunning() > 0 {
			return true
		}
	}
	return false
}
