package elastic

import (
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sim"
)

// plant builds an environment with nVMs 1000-MIPS VMs on ample hosts.
func plant(t testing.TB, nVMs int) (*cloud.Environment, *sim.Engine, *cloud.Broker) {
	t.Helper()
	hosts := make([]*cloud.Host, 4)
	for i := range hosts {
		hosts[i] = cloud.NewHost(i, cloud.NewPEs(32, 4000), 1<<20, 1<<20, 1<<32)
	}
	cloud.NewDatacenter(0, "dc0", cloud.Characteristics{CostPerProcessing: 3}, hosts)
	env := &cloud.Environment{Datacenters: []*cloud.Datacenter{hosts[0].Datacenter}}
	for i := 0; i < nVMs; i++ {
		env.VMs = append(env.VMs, cloud.NewVM(i, 1000, 1, 512, 500, 5000))
	}
	if err := cloud.Allocate(cloud.LeastLoaded{}, hosts, env.VMs); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, env, cloud.TimeSharedFactory)
	return env, eng, broker
}

func defaultPolicy() Policy {
	return Policy{
		ScaleUpLoad:   4,
		ScaleDownLoad: 1,
		Interval:      1,
		MinVMs:        2,
		MaxVMs:        16,
		Template:      VMTemplate{MIPS: 1000, PEs: 1, RAM: 512, Bw: 500, Size: 5000},
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := defaultPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		func() Policy { p := defaultPolicy(); p.Interval = 0; return p }(),
		func() Policy { p := defaultPolicy(); p.ScaleUpLoad = 1; p.ScaleDownLoad = 2; return p }(),
		func() Policy { p := defaultPolicy(); p.MinVMs = 0; return p }(),
		func() Policy { p := defaultPolicy(); p.MaxVMs = 1; return p }(),
		func() Policy { p := defaultPolicy(); p.Template.MIPS = 0; return p }(),
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestActionString(t *testing.T) {
	if ScaleUp.String() != "scale-up" || ScaleDown.String() != "scale-down" {
		t.Fatal("action strings wrong")
	}
}

func TestAutoscalerScalesUpUnderBurst(t *testing.T) {
	env, eng, broker := plant(t, 2)
	as, err := New(broker, defaultPolicy(), cloud.TimeSharedFactory, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Flood the 2-VM fleet: 40 long cloudlets, ~20 per VM >> ScaleUpLoad 4.
	for i := 0; i < 40; i++ {
		broker.Submit(cloud.NewCloudlet(i, 20000, 1, 0, 0), env.VMs[i%2])
	}
	as.Start()
	eng.Run()
	if len(broker.Finished()) != 40 {
		t.Fatalf("finished: %d", len(broker.Finished()))
	}
	ups := 0
	for _, e := range as.Events() {
		if e.Act == ScaleUp {
			ups++
		}
	}
	if ups == 0 {
		t.Fatal("no scale-up under burst")
	}
	if len(env.VMs) <= 2 {
		t.Fatalf("fleet did not grow: %d", len(env.VMs))
	}
	if len(env.VMs) > 16 {
		t.Fatalf("fleet exceeded MaxVMs: %d", len(env.VMs))
	}
}

func TestAutoscalerScalesDownWhenIdle(t *testing.T) {
	env, eng, broker := plant(t, 6)
	p := defaultPolicy()
	p.MinVMs = 2
	as, err := New(broker, p, cloud.TimeSharedFactory, 100)
	if err != nil {
		t.Fatal(err)
	}
	// One lonely long cloudlet: average residency ~0.17 < ScaleDownLoad.
	broker.Submit(cloud.NewCloudlet(0, 50000, 1, 0, 0), env.VMs[0])
	as.Start()
	eng.Run()
	downs := 0
	for _, e := range as.Events() {
		if e.Act == ScaleDown {
			downs++
		}
	}
	if downs == 0 {
		t.Fatal("no scale-down while mostly idle")
	}
	if len(env.VMs) < p.MinVMs {
		t.Fatalf("fleet below MinVMs: %d", len(env.VMs))
	}
	if len(broker.Finished()) != 1 {
		t.Fatalf("work lost during scale-down: finished %d", len(broker.Finished()))
	}
}

func TestAutoscalerRespectsMax(t *testing.T) {
	env, eng, broker := plant(t, 2)
	p := defaultPolicy()
	p.MaxVMs = 3
	as, err := New(broker, p, cloud.TimeSharedFactory, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		broker.Submit(cloud.NewCloudlet(i, 30000, 1, 0, 0), env.VMs[i%2])
	}
	as.Start()
	eng.Run()
	if len(env.VMs) > 3 {
		t.Fatalf("MaxVMs violated: %d", len(env.VMs))
	}
}

func TestAutoscalerStop(t *testing.T) {
	env, eng, broker := plant(t, 2)
	as, err := New(broker, defaultPolicy(), cloud.TimeSharedFactory, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		broker.Submit(cloud.NewCloudlet(i, 20000, 1, 0, 0), env.VMs[i%2])
	}
	as.Start()
	as.Stop()
	eng.Run()
	if len(as.Events()) != 0 {
		t.Fatalf("stopped autoscaler acted: %v", as.Events())
	}
}

func TestAutoscalerBootDelaySlowsRelief(t *testing.T) {
	run := func(boot sim.Time) float64 {
		env, eng, broker := plant(t, 2)
		p := defaultPolicy()
		p.BootDelay = boot
		as, err := New(broker, p, cloud.TimeSharedFactory, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			broker.Submit(cloud.NewCloudlet(i, 20000, 1, 0, 0), env.VMs[i%2])
		}
		as.Start()
		eng.Run()
		if len(broker.Finished()) != 40 {
			t.Fatalf("finished %d of 40", len(broker.Finished()))
		}
		var max sim.Time
		for _, c := range broker.Finished() {
			if c.FinishTime > max {
				max = c.FinishTime
			}
		}
		return max
	}
	instant := run(0)
	slow := run(200)
	if slow <= instant {
		t.Fatalf("makespan with 200 s boot delay (%v) should exceed instant boot (%v)", slow, instant)
	}
}

func TestAutoscalerReducesMakespan(t *testing.T) {
	run := func(scale bool) float64 {
		env, eng, broker := plant(t, 2)
		if scale {
			as, err := New(broker, defaultPolicy(), cloud.TimeSharedFactory, 100)
			if err != nil {
				t.Fatal(err)
			}
			as.Start()
		}
		for i := 0; i < 40; i++ {
			broker.Submit(cloud.NewCloudlet(i, 20000, 1, 0, 0), env.VMs[i%2])
		}
		eng.Run()
		var max sim.Time
		for _, c := range broker.Finished() {
			if c.FinishTime > max {
				max = c.FinishTime
			}
		}
		return max
	}
	static := run(false)
	scaled := run(true)
	if scaled >= static*0.8 {
		t.Fatalf("autoscaler+rebalance makespan %v not clearly below static %v", scaled, static)
	}
}

func TestPolicyRejectsNegativeBootDelay(t *testing.T) {
	p := defaultPolicy()
	p.BootDelay = -1
	if p.Validate() == nil {
		t.Fatal("negative boot delay accepted")
	}
}

func TestNewRejectsBadPolicy(t *testing.T) {
	_, eng, broker := plant(t, 2)
	_ = eng
	p := defaultPolicy()
	p.Interval = -1
	if _, err := New(broker, p, nil, 0); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestProvisionedVMsReceiveWork(t *testing.T) {
	env, eng, broker := plant(t, 2)
	as, err := New(broker, defaultPolicy(), cloud.TimeSharedFactory, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Steady drip of arrivals so newly provisioned VMs can pick up later
	// submissions through least-loaded online placement.
	for i := 0; i < 60; i++ {
		c := cloud.NewCloudlet(i, 10000, 1, 0, 0)
		at := sim.Time(i) * 0.2
		eng.ScheduleAt(at, sim.PriorityAcquire, func() {
			vms := env.VMs
			best := vms[0]
			for _, vm := range vms[1:] {
				if vm.QueuedOrRunning() < best.QueuedOrRunning() {
					best = vm
				}
			}
			broker.Submit(c, best)
		})
	}
	as.Start()
	eng.Run()
	if len(broker.Finished()) != 60 {
		t.Fatalf("finished: %d", len(broker.Finished()))
	}
	usedProvisioned := false
	for _, c := range broker.Finished() {
		if c.VM.ID >= 100 {
			usedProvisioned = true
			break
		}
	}
	if !usedProvisioned {
		t.Fatal("no provisioned VM ever received work")
	}
}

// TestMonitorSurvivesIdleGap pins the open-arrival contract: a second burst
// scheduled after an idle gap must still be monitored when the policy
// declares a MonitorUntil horizon — and, the old batch behavior, monitoring
// must die at the first drained tick without one.
func TestMonitorSurvivesIdleGap(t *testing.T) {
	burst := func(monitorUntil sim.Time) int {
		env, eng, broker := plant(t, 2)
		pol := defaultPolicy()
		pol.MonitorUntil = monitorUntil
		as, err := New(broker, pol, cloud.TimeSharedFactory, 100)
		if err != nil {
			t.Fatal(err)
		}
		// One trivial cloudlet at t=0, then nothing until a 40-cloudlet
		// burst at t=10 — the fleet is fully drained at every tick between.
		eng.ScheduleAt(0, sim.PriorityAcquire, func() {
			broker.Submit(cloud.NewCloudlet(0, 100, 1, 0, 0), env.VMs[0])
		})
		for i := 1; i <= 40; i++ {
			c := cloud.NewCloudlet(i, 20000, 1, 0, 0)
			vm := env.VMs[i%2]
			eng.ScheduleAt(10, sim.PriorityAcquire, func() { broker.Submit(c, vm) })
		}
		as.Start()
		eng.Run()
		if got := len(broker.Finished()); got != 41 {
			t.Fatalf("finished: %d, want 41", got)
		}
		ups := 0
		for _, ev := range as.Events() {
			if ev.Act == ScaleUp {
				ups++
			}
		}
		return ups
	}
	if ups := burst(10); ups == 0 {
		t.Fatal("MonitorUntil=10: burst after the idle gap saw no scale-ups — monitoring died at a drained tick")
	}
	if ups := burst(0); ups != 0 {
		t.Fatalf("MonitorUntil=0 (batch behavior): %d scale-ups after monitoring should have stopped", ups)
	}
}
