package experiments

import (
	"fmt"
	"sync"

	"bioschedsim/internal/aco"
	"bioschedsim/internal/ga"
	"bioschedsim/internal/hbo"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/pso"
	"bioschedsim/internal/rbs"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/xrand"
)

// Ablation experiments: instead of sweeping VM count, these sweep one
// design parameter on a fixed heterogeneous scenario (the paper's Tables
// V–VII sizes, scaled by Options.Scale) and report how the paper's metrics
// respond. DESIGN.md's "Ablations" table indexes them.

// ablationScenario fixes the problem size for parameter sweeps: the paper's
// heterogeneous midpoint of 500 VMs and 5 000 cloudlets, scaled.
func ablationScenario(opts Options) (vms, cloudlets int) {
	opts = opts.normalized()
	return scaleCount(500, opts.Scale, 2), scaleCount(5000, opts.Scale, 10)
}

// paramSweep runs build(x) for every x on the fixed ablation scenario,
// in parallel, and returns one Point per x keyed by label.
func paramSweep(xs []float64, label string, opts Options, build func(x float64) sched.Scheduler) ([]Point, error) {
	opts = opts.normalized()
	nVMs, nCls := ablationScenario(opts)
	points := make([]Point, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for idx := range xs {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			scheduler := build(xs[idx])
			var acc accumulator
			for rep := 0; rep < opts.Repeats; rep++ {
				// Unlike figure sweeps, every x shares the same workload
				// seed: only the parameter under study varies.
				seed := xrand.Stream(opts.Seed, uint64(rep)).Uint64()
				report, err := runOnce(scheduler, pointSpec{
					kind: heterogeneous, vms: nVMs, cloudlets: nCls, dcs: 4,
				}, seed)
				if err != nil {
					errs[idx] = fmt.Errorf("%s x=%v: %w", label, xs[idx], err)
					return
				}
				acc.add(report)
			}
			points[idx] = Point{X: xs[idx], Reports: map[string]metrics.Report{label: acc.mean(label)}}
		}(idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// ablation builds an Experiment around a paramSweep.
func ablation(id, title, xlabel, metric, ylabel, label string, xs []float64, build func(x float64) sched.Scheduler) *Experiment {
	e := &Experiment{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel, Metric: metric}
	e.Run = func(opts Options) (*Result, error) {
		points, err := paramSweep(xs, label, opts, build)
		if err != nil {
			return nil, err
		}
		return &Result{ID: e.ID, Title: e.Title, XLabel: e.XLabel, YLabel: e.YLabel, Metric: e.Metric, Points: points}, nil
	}
	return e
}

func init() {
	registerExperiment(ablation("abl-aco-iters",
		"ACO sensitivity: iterations vs simulation time (Table II context)",
		"maxIterations", "sim_ms", "Simulation Time of Cloudlets (ms)", "aco",
		[]float64{1, 2, 5, 10, 20, 40},
		func(x float64) sched.Scheduler {
			cfg := aco.DefaultConfig()
			cfg.Iterations = int(x)
			return aco.New(cfg)
		}))
	registerExperiment(ablation("abl-aco-ants",
		"ACO sensitivity: colony size vs simulation time (Table II: 50)",
		"Ants", "sim_ms", "Simulation Time of Cloudlets (ms)", "aco",
		[]float64{5, 10, 25, 50, 100},
		func(x float64) sched.Scheduler {
			cfg := aco.DefaultConfig()
			cfg.Ants = int(x)
			return aco.New(cfg)
		}))
	registerExperiment(ablation("abl-aco-beta",
		"ACO sensitivity: heuristic weight β vs simulation time (Table II: 0.99)",
		"Beta (with Alpha = 1-Beta)", "sim_ms", "Simulation Time of Cloudlets (ms)", "aco",
		[]float64{0.01, 0.25, 0.5, 0.75, 0.99},
		func(x float64) sched.Scheduler {
			cfg := aco.DefaultConfig()
			cfg.Beta = x
			cfg.Alpha = 1 - x
			return aco.New(cfg)
		}))
	registerExperiment(ablation("abl-hbo-faclb",
		"HBO sensitivity: load-balance factor vs processing cost",
		"facLB (x fair share)", "cost", "Processing Cost", "hbo",
		[]float64{0.5, 1, 1.5, 2, 3, 5},
		func(x float64) sched.Scheduler {
			// FacLB is absolute cloudlets-per-VM; express x in fair shares of
			// the ablation scenario so the sweep is size-independent.
			return &facLBScaled{mult: x}
		}))
	registerExperiment(ablation("abl-ga-generations",
		"GA sensitivity: generations vs simulation time (the §II convergence-cost critique [17])",
		"Generations", "sim_ms", "Simulation Time of Cloudlets (ms)", "ga",
		[]float64{1, 5, 20, 60, 120},
		func(x float64) sched.Scheduler {
			cfg := ga.DefaultConfig()
			cfg.Generations = int(x)
			return ga.New(cfg)
		}))
	registerExperiment(ablation("abl-pso-objective",
		"PSO sensitivity: optimization objective vs processing cost (0=makespan, 1=cost, 2=combined)",
		"Objective (0=makespan, 1=cost, 2=combined)", "cost", "Processing Cost", "pso",
		[]float64{0, 1, 2},
		func(x float64) sched.Scheduler {
			cfg := pso.DefaultConfig()
			cfg.Objective = pso.Objective(int(x))
			return pso.New(cfg)
		}))
	registerExperiment(ablation("abl-rbs-groups",
		"RBS sensitivity: group count vs simulation time",
		"Groups (q)", "sim_ms", "Simulation Time of Cloudlets (ms)", "rbs",
		[]float64{1, 2, 4, 8, 16},
		func(x float64) sched.Scheduler {
			return rbs.New(rbs.Config{Groups: int(x)})
		}))
}

// facLBScaled wraps HBO so the configured facLB multiplier is resolved
// against each batch's fair share at schedule time.
type facLBScaled struct {
	mult float64
}

// Name implements sched.Scheduler.
func (*facLBScaled) Name() string { return "hbo" }

// Schedule implements sched.Scheduler.
func (f *facLBScaled) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	fair := float64(len(ctx.Cloudlets)) / float64(len(ctx.VMs))
	if fair < 1 {
		fair = 1
	}
	return hbo.New(hbo.Config{Groups: 2, FacLB: f.mult * fair}).Schedule(ctx)
}
