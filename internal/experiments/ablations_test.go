package experiments

import (
	"testing"

	"bioschedsim/internal/stats"
)

func ablOpts() Options {
	// 10 VMs, 100 cloudlets: enough signal for shape assertions, fast.
	return Options{Scale: 0.02, Seed: 42}
}

func TestAblationsRegistered(t *testing.T) {
	for _, id := range []string{"abl-aco-iters", "abl-aco-ants", "abl-aco-beta", "abl-hbo-faclb", "abl-rbs-groups", "abl-extensions"} {
		if _, err := Lookup(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestAblationSharesWorkloadAcrossX(t *testing.T) {
	// The whole point of an ablation: only the parameter varies. The base
	// report fields that do not depend on the parameter (cloudlets, VMs)
	// must be constant across x.
	res := runFig(t, "abl-rbs-groups", ablOpts())
	first := res.Points[0].Reports["rbs"]
	for _, p := range res.Points[1:] {
		rep := p.Reports["rbs"]
		if rep.Cloudlets != first.Cloudlets || rep.VMs != first.VMs {
			t.Fatalf("workload size varies across x: %+v vs %+v", rep, first)
		}
	}
}

func TestAblationHBOFacLBCostMonotone(t *testing.T) {
	res := runFig(t, "abl-hbo-faclb", ablOpts())
	xs, ys := res.Series("hbo")
	slope, err := stats.Slope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if slope >= 0 {
		t.Fatalf("cost should fall as facLB loosens, slope %v (ys=%v)", slope, ys)
	}
}

func TestAblationACOItersImprove(t *testing.T) {
	res := runFig(t, "abl-aco-iters", ablOpts())
	_, ys := res.Series("aco")
	if len(ys) < 3 {
		t.Fatalf("too few points: %v", ys)
	}
	first, last := ys[0], ys[len(ys)-1]
	if last > first {
		t.Fatalf("more iterations should not worsen makespan: 1 iter %v vs max %v", first, last)
	}
}

func TestAblationACOBetaHeuristicWins(t *testing.T) {
	res := runFig(t, "abl-aco-beta", ablOpts())
	_, ys := res.Series("aco")
	// β=0.01 (pheromone-only) must be worse than β=0.99 (Table II).
	if ys[len(ys)-1] >= ys[0] {
		t.Fatalf("heuristic-heavy ACO (%v) should beat pheromone-heavy (%v)", ys[len(ys)-1], ys[0])
	}
}

func TestAblationExtensionsRunAllSchedulers(t *testing.T) {
	exp, err := Lookup("abl-extensions")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"aco", "base", "hbo", "rbs", "pso", "ga", "hybrid", "greedy", "minmin", "maxmin"}
	for _, alg := range want {
		if _, ys := res.Series(alg); len(ys) == 0 {
			t.Fatalf("%s missing from extension comparison", alg)
		}
	}
}
