package experiments

import (
	"fmt"

	"bioschedsim/internal/stats"
	"bioschedsim/internal/xrand"
)

// Comparison is a seed-replicated, per-point statistical comparison of two
// algorithms on one experiment: does A beat B beyond seed noise?
type Comparison struct {
	ExperimentID string
	Metric       string
	AlgA, AlgB   string
	Runs         int

	X       []float64 // sweep positions
	MeanA   []float64 // per-point mean of A over the replications
	MeanB   []float64
	TStat   []float64 // Welch's t per point (negative favours A)
	Winner  []string  // "a", "b", or "tie" per point at the 2.0 threshold
	Overall string    // majority winner across points
}

// Compare reruns the experiment `runs` times with derived seeds and tests,
// at every sweep point, whether algA's metric is significantly below
// algB's (Welch's t, threshold 2.0 — lower is better for every metric the
// figures use except fairness/sla, which callers should invert).
func Compare(exp *Experiment, algA, algB string, opts Options, runs int) (*Comparison, error) {
	if runs < 2 {
		return nil, fmt.Errorf("experiments: Compare needs at least 2 runs, got %d", runs)
	}
	if algA == algB {
		return nil, fmt.Errorf("experiments: comparing %q against itself", algA)
	}
	opts = opts.normalized()
	opts.Algorithms = []string{algA, algB}

	var xs []float64
	var samplesA, samplesB [][]float64
	for r := 0; r < runs; r++ {
		o := opts
		o.Seed = xrand.Stream(opts.Seed, uint64(r)).Uint64()
		res, err := exp.Run(o)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication %d: %w", r, err)
		}
		xA, yA := res.Series(algA)
		_, yB := res.Series(algB)
		if len(yA) != len(yB) || len(yA) == 0 {
			return nil, fmt.Errorf("experiments: mismatched series for %s/%s", algA, algB)
		}
		if xs == nil {
			xs = xA
			samplesA = make([][]float64, len(xs))
			samplesB = make([][]float64, len(xs))
		}
		if len(xA) != len(xs) {
			return nil, fmt.Errorf("experiments: replication %d changed sweep shape", r)
		}
		for i := range yA {
			samplesA[i] = append(samplesA[i], yA[i])
			samplesB[i] = append(samplesB[i], yB[i])
		}
	}

	cmp := &Comparison{
		ExperimentID: exp.ID, Metric: exp.Metric, AlgA: algA, AlgB: algB, Runs: runs, X: xs,
	}
	winsA, winsB := 0, 0
	for i := range xs {
		sa, sb := stats.Summarize(samplesA[i]), stats.Summarize(samplesB[i])
		cmp.MeanA = append(cmp.MeanA, sa.Mean)
		cmp.MeanB = append(cmp.MeanB, sb.Mean)
		t, _, err := stats.WelchT(samplesA[i], samplesB[i])
		if err != nil {
			// Zero-variance point (e.g. deterministic scheduler on both
			// sides): decide on raw means.
			t = 0
			switch {
			case sa.Mean < sb.Mean:
				t = -99
			case sa.Mean > sb.Mean:
				t = 99
			}
		}
		cmp.TStat = append(cmp.TStat, t)
		switch {
		case t < -2:
			cmp.Winner = append(cmp.Winner, "a")
			winsA++
		case t > 2:
			cmp.Winner = append(cmp.Winner, "b")
			winsB++
		default:
			cmp.Winner = append(cmp.Winner, "tie")
		}
	}
	switch {
	case winsA > winsB:
		cmp.Overall = algA
	case winsB > winsA:
		cmp.Overall = algB
	default:
		cmp.Overall = "tie"
	}
	return cmp, nil
}
