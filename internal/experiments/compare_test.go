package experiments

import (
	"testing"
)

func TestCompareACOvsBase(t *testing.T) {
	exp, err := Lookup("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(exp, "aco", "base", Options{Scale: 0.04, Seed: 42}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Overall != "aco" {
		t.Fatalf("overall winner: %s (t=%v)", cmp.Overall, cmp.TStat)
	}
	if len(cmp.X) != len(cmp.MeanA) || len(cmp.X) != len(cmp.TStat) || len(cmp.X) != len(cmp.Winner) {
		t.Fatalf("ragged comparison: %+v", cmp)
	}
	for i, w := range cmp.Winner {
		switch w {
		case "a", "b", "tie":
		default:
			t.Fatalf("bad winner %q at %d", w, i)
		}
	}
}

func TestCompareSymmetry(t *testing.T) {
	exp, err := Lookup("fig6d")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := Compare(exp, "hbo", "base", Options{Scale: 0.04, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Compare(exp, "base", "hbo", Options{Scale: 0.04, Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ab.TStat {
		if ab.TStat[i] != -ba.TStat[i] {
			t.Fatalf("t not antisymmetric at %d: %v vs %v", i, ab.TStat[i], ba.TStat[i])
		}
	}
	// The winner is an algorithm name, so both argument orders must agree.
	if ab.Overall != ba.Overall {
		t.Fatalf("argument order changed the winner: %s vs %s", ab.Overall, ba.Overall)
	}
}

func TestCompareErrors(t *testing.T) {
	exp, err := Lookup("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(exp, "aco", "base", Options{Scale: 0.02}, 1); err == nil {
		t.Fatal("single run accepted")
	}
	if _, err := Compare(exp, "aco", "aco", Options{Scale: 0.02}, 2); err == nil {
		t.Fatal("self-comparison accepted")
	}
	if _, err := Compare(exp, "nosuch", "base", Options{Scale: 0.02}, 2); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestCompareDeterministicPair(t *testing.T) {
	// base vs rbs scheduling time on homogeneous: both near-deterministic in
	// means; Compare must not error on low-variance samples.
	exp, err := Lookup("fig4a")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(exp, "base", "rbs", Options{Scale: 0.002, Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Winner) == 0 {
		t.Fatal("empty comparison")
	}
}
