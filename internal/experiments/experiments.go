// Package experiments reproduces the paper's evaluation (§VI): the
// homogeneous scenario behind Figures 4 and 5 and the heterogeneous
// scenario behind Figure 6, plus the parameter ablations DESIGN.md calls
// out. Each figure panel is a registered Experiment that sweeps VM count,
// runs every algorithm at every point, and reports the panel's metric.
//
// Sweeps run points in parallel on a bounded worker pool; every point draws
// its workload from an xrand substream of the root seed, so results are
// identical regardless of worker count or scheduling order.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"

	// Link every scheduler into the registry so experiments can look the
	// paper's algorithms (and the extension baselines) up by name.
	_ "bioschedsim/internal/aco"
	_ "bioschedsim/internal/ga"
	_ "bioschedsim/internal/hbo"
	_ "bioschedsim/internal/hybrid"
	_ "bioschedsim/internal/pso"
	_ "bioschedsim/internal/rbs"
)

// PaperAlgorithms are the four schedulers the paper compares, in its own
// presentation order.
var PaperAlgorithms = []string{"aco", "base", "hbo", "rbs"}

// Options configures a sweep run.
type Options struct {
	// Scale multiplies the paper's problem sizes (VM and cloudlet counts).
	// 1.0 reproduces the published dimensions (up to 100 000 VMs and
	// 1 000 000 cloudlets — hours of wall time, exactly as the paper
	// reports); the CLI defaults to a laptop-friendly fraction.
	Scale float64
	// Seed is the root of all randomness in the sweep.
	Seed uint64
	// Workers bounds sweep parallelism; 0 means runtime.NumCPU().
	Workers int
	// Repeats averages each (point, algorithm) over this many seeded
	// repetitions; 0 means 1.
	Repeats int
	// Algorithms selects the schedulers; nil means PaperAlgorithms.
	Algorithms []string
}

// normalized fills in defaults.
func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = PaperAlgorithms
	}
	return o
}

// Point is one x-axis position of a sweep with every algorithm's report.
type Point struct {
	X       float64                   // actual VM count used
	Reports map[string]metrics.Report // algorithm → averaged report
}

// Result is a completed experiment with enough labeling to print the
// paper's figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Metric string // metric key, see (Result).Extract
	Points []Point
}

// Series returns (x, y) vectors for one algorithm under the result's
// metric, for plotting and trend assertions.
func (r *Result) Series(algorithm string) (xs, ys []float64) {
	for _, p := range r.Points {
		rep, ok := p.Reports[algorithm]
		if !ok {
			continue
		}
		xs = append(xs, p.X)
		ys = append(ys, ExtractMetric(rep, r.Metric))
	}
	return xs, ys
}

// ExtractMetric maps a metric key to its value in a report. Keys:
// sim_ms (Figs. 4, 6a), sched_h (Fig. 5), sched_s (Fig. 6b),
// imbalance (Fig. 6c), cost (Fig. 6d), fairness, mean_exec_s, mean_wait_s.
func ExtractMetric(rep metrics.Report, key string) float64 {
	switch key {
	case "sim_ms":
		return rep.SimTimeMillis()
	case "sched_h":
		return rep.SchedulingHours()
	case "sched_s":
		return rep.SchedulingSeconds()
	case "imbalance":
		return rep.Imbalance
	case "imbalance_count":
		return rep.CountImbalance
	case "cost":
		return rep.Cost
	case "fairness":
		return rep.Fairness
	case "sla":
		return rep.SLACompliance
	case "energy_j":
		return rep.EnergyJoules
	case "mean_exec_s":
		return float64(rep.MeanExec)
	case "mean_wait_s":
		return float64(rep.MeanWait)
	default:
		panic(fmt.Sprintf("experiments: unknown metric key %q", key))
	}
}

// MetricKeys lists the keys ExtractMetric accepts.
func MetricKeys() []string {
	return []string{"sim_ms", "sched_h", "sched_s", "imbalance", "imbalance_count", "cost", "fairness", "sla", "energy_j", "mean_exec_s", "mean_wait_s"}
}

// scenarioKind selects the workload family for runPoint.
type scenarioKind int

const (
	homogeneous scenarioKind = iota
	heterogeneous
)

// pointSpec is one unit of sweep work.
type pointSpec struct {
	kind       scenarioKind
	vms        int
	cloudlets  int
	dcs        int
	seed       uint64
	algorithms []string
	repeats    int
}

// runPoint executes every algorithm at one sweep point and returns the
// averaged reports keyed by algorithm name.
func runPoint(spec pointSpec) (map[string]metrics.Report, error) {
	reports := make(map[string]metrics.Report, len(spec.algorithms))
	for _, name := range spec.algorithms {
		scheduler, err := sched.New(name)
		if err != nil {
			return nil, err
		}
		var acc accumulator
		for rep := 0; rep < spec.repeats; rep++ {
			seed := xrand.Stream(spec.seed, uint64(rep)).Uint64()
			report, err := runOnce(scheduler, spec, seed)
			if err != nil {
				return nil, fmt.Errorf("%s at vms=%d: %w", name, spec.vms, err)
			}
			acc.add(report)
		}
		reports[name] = acc.mean(name)
	}
	return reports, nil
}

// runOnce materializes the scenario, schedules (timing the call), executes,
// and collects the paper's metrics.
func runOnce(scheduler sched.Scheduler, spec pointSpec, seed uint64) (metrics.Report, error) {
	var (
		scn *workload.Scenario
		err error
	)
	switch spec.kind {
	case homogeneous:
		scn, err = workload.Homogeneous(spec.vms, spec.cloudlets, seed)
	case heterogeneous:
		scn, err = workload.Heterogeneous(spec.vms, spec.cloudlets, spec.dcs, seed)
	default:
		err = fmt.Errorf("experiments: unknown scenario kind %d", spec.kind)
	}
	if err != nil {
		return metrics.Report{}, err
	}
	ctx := scn.Context()

	start := time.Now()
	assignments, err := scheduler.Schedule(ctx)
	schedTime := time.Since(start)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := sched.ValidateAssignments(ctx, assignments); err != nil {
		return metrics.Report{}, fmt.Errorf("invalid schedule: %w", err)
	}
	cls, vms := sched.Split(assignments)
	res, err := cloud.Execute(scn.Env, cloud.TimeSharedFactory, cls, vms)
	if err != nil {
		return metrics.Report{}, err
	}
	report := metrics.Collect(scheduler.Name(), res.Finished, scn.Env.VMs, schedTime)
	// Energy accounting under the default server power model; near-free to
	// compute and it powers the ext-energy experiment.
	if energy, err := cloud.HostEnergy(scn.Env, res.Finished, defaultPowerModel); err == nil {
		report.EnergyJoules = energy.TotalJoules
	}
	return report, nil
}

// defaultPowerModel is the 90 W idle / 250 W loaded linear server used for
// plant-wide energy accounting.
var defaultPowerModel = cloud.LinearPower{Idle: 90, Max: 250}

// accumulator averages reports across repeats.
type accumulator struct {
	n         int
	schedTime time.Duration
	simTime   float64
	imbalance float64
	countImb  float64
	cost      float64
	fairness  float64
	sla       float64
	energy    float64
	meanExec  float64
	meanWait  float64
	cloudlets int
	vms       int
}

func (a *accumulator) add(r metrics.Report) {
	a.n++
	a.schedTime += r.SchedulingTime
	a.simTime += r.SimTime
	a.imbalance += r.Imbalance
	a.countImb += r.CountImbalance
	a.cost += r.Cost
	a.fairness += r.Fairness
	a.sla += r.SLACompliance
	a.energy += r.EnergyJoules
	a.meanExec += float64(r.MeanExec)
	a.meanWait += float64(r.MeanWait)
	a.cloudlets = r.Cloudlets
	a.vms = r.VMs
}

func (a *accumulator) mean(algorithm string) metrics.Report {
	if a.n == 0 {
		return metrics.Report{Algorithm: algorithm}
	}
	n := float64(a.n)
	return metrics.Report{
		Algorithm:      algorithm,
		Cloudlets:      a.cloudlets,
		VMs:            a.vms,
		SchedulingTime: a.schedTime / time.Duration(a.n),
		SimTime:        a.simTime / n,
		Imbalance:      a.imbalance / n,
		CountImbalance: a.countImb / n,
		Cost:           a.cost / n,
		Fairness:       a.fairness / n,
		SLACompliance:  a.sla / n,
		EnergyJoules:   a.energy / n,
		MeanExec:       a.meanExec / n,
		MeanWait:       a.meanWait / n,
	}
}

// scaleCount scales a paper problem size, flooring at min.
func scaleCount(paper int, scale float64, min int) int {
	n := int(float64(paper) * scale)
	if n < min {
		n = min
	}
	return n
}
