package experiments

import (
	"testing"
	"time"

	"bioschedsim/internal/metrics"
	"bioschedsim/internal/stats"
)

// hetOpts is a small-but-meaningful heterogeneous configuration: 200
// cloudlets over 2–38 VMs.
func hetOpts() Options {
	return Options{Scale: 0.04, Seed: 42, Repeats: 1}
}

func runFig(t *testing.T, id string, opts Options) *Result {
	t.Helper()
	exp, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatalf("%s: no points", id)
	}
	return res
}

// mean of the series y values.
func meanY(res *Result, alg string) float64 {
	_, ys := res.Series(alg)
	return stats.Summarize(ys).Mean
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6c-count", "fig6d"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered (have %v)", id, IDs())
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig4aSimulationTimeDecreasesAndConverges(t *testing.T) {
	res := runFig(t, "fig4a", Options{Scale: 0.002, Seed: 1})
	for _, alg := range PaperAlgorithms {
		xs, ys := res.Series(alg)
		slope, err := stats.Slope(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if slope >= 0 {
			t.Fatalf("%s: simulation time does not decrease with VMs (slope %v)", alg, slope)
		}
	}
	// Homogeneous convergence: every algorithm within 10% of the base test
	// at every point (the paper's "behave closely to the Base test").
	for _, p := range res.Points {
		base := ExtractMetric(p.Reports["base"], "sim_ms")
		for _, alg := range PaperAlgorithms {
			v := ExtractMetric(p.Reports[alg], "sim_ms")
			if v > base*1.10+1e-9 {
				t.Fatalf("%s at vms=%v: %v more than 10%% above base %v", alg, p.X, v, base)
			}
		}
	}
}

func TestFig5SchedulingTimeBaseCheapest(t *testing.T) {
	res := runFig(t, "fig5a", Options{Scale: 0.002, Seed: 1})
	for _, p := range res.Points {
		base := p.Reports["base"].SchedulingTime
		aco := p.Reports["aco"].SchedulingTime
		if aco <= base {
			t.Fatalf("vms=%v: ACO scheduling time %v not above base %v", p.X, aco, base)
		}
	}
	if meanY(res, "aco") <= meanY(res, "base") {
		t.Fatal("mean ACO scheduling time not above base")
	}
}

func TestFig6aACOBestHBOBeatsBase(t *testing.T) {
	res := runFig(t, "fig6a", hetOpts())
	acoMean, baseMean, hboMean, rbsMean := meanY(res, "aco"), meanY(res, "base"), meanY(res, "hbo"), meanY(res, "rbs")
	if acoMean >= baseMean {
		t.Fatalf("ACO mean sim time %v not below base %v", acoMean, baseMean)
	}
	if hboMean >= baseMean {
		t.Fatalf("HBO mean sim time %v not below base %v", hboMean, baseMean)
	}
	if acoMean >= hboMean*1.1 {
		t.Fatalf("ACO (%v) should be at least competitive with HBO (%v)", acoMean, hboMean)
	}
	// RBS tracks the base test (±25% on the mean).
	if rbsMean > baseMean*1.25 || rbsMean < baseMean*0.55 {
		t.Fatalf("RBS mean %v strays too far from base %v", rbsMean, baseMean)
	}
}

func TestFig6bSchedulingTimeOrdering(t *testing.T) {
	res := runFig(t, "fig6b", hetOpts())
	base, rbs, hbo, aco := meanY(res, "base"), meanY(res, "rbs"), meanY(res, "hbo"), meanY(res, "aco")
	if !(base <= rbs*1.5+1e-6) { // base and rbs are both near-zero
		t.Fatalf("base %v not cheapest (rbs %v)", base, rbs)
	}
	if !(hbo < aco) {
		t.Fatalf("ordering violated: hbo %v should be below aco %v", hbo, aco)
	}
	if !(rbs < aco) {
		t.Fatalf("ordering violated: rbs %v should be below aco %v", rbs, aco)
	}
}

func TestFig6cCountImbalanceOrdering(t *testing.T) {
	res := runFig(t, "fig6c-count", hetOpts())
	base, rbs, hbo, aco := meanY(res, "base"), meanY(res, "rbs"), meanY(res, "hbo"), meanY(res, "aco")
	// The paper's §VI-D2 ordering: base best, RBS second, then HBO, ACO worst.
	if base > rbs+1e-9 {
		t.Fatalf("base count imbalance %v above rbs %v", base, rbs)
	}
	if rbs >= hbo {
		t.Fatalf("rbs %v not below hbo %v", rbs, hbo)
	}
	// ACO and HBO are both far less count-balanced than base/RBS; their
	// relative order fluctuates with fleet size (see EXPERIMENTS.md).
	if aco <= rbs || hbo <= rbs {
		t.Fatalf("aco %v and hbo %v should both exceed rbs %v", aco, hbo, rbs)
	}
	if aco <= base {
		t.Fatalf("aco %v should be far more count-imbalanced than base %v", aco, base)
	}
}

func TestFig6dHBOCheapest(t *testing.T) {
	res := runFig(t, "fig6d", hetOpts())
	hboMean := meanY(res, "hbo")
	for _, alg := range []string{"aco", "base", "rbs"} {
		if hboMean >= meanY(res, alg) {
			t.Fatalf("HBO mean cost %v not below %s %v", hboMean, alg, meanY(res, alg))
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	opts1 := Options{Scale: 0.02, Seed: 7, Workers: 1, Algorithms: []string{"aco", "rbs"}}
	optsN := Options{Scale: 0.02, Seed: 7, Workers: 8, Algorithms: []string{"aco", "rbs"}}
	a := runFig(t, "fig6a", opts1)
	b := runFig(t, "fig6a", optsN)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		for _, alg := range []string{"aco", "rbs"} {
			av := a.Points[i].Reports[alg].SimTime
			bv := b.Points[i].Reports[alg].SimTime
			if av != bv {
				t.Fatalf("point %d %s: %v vs %v across worker counts", i, alg, av, bv)
			}
		}
	}
}

func TestRepeatsAveraging(t *testing.T) {
	opts := Options{Scale: 0.02, Seed: 3, Repeats: 3, Algorithms: []string{"rbs"}}
	res := runFig(t, "fig6a", opts)
	for _, p := range res.Points {
		if p.Reports["rbs"].SimTime <= 0 {
			t.Fatalf("averaged report empty at vms=%v", p.X)
		}
	}
}

func TestSeriesAndExtract(t *testing.T) {
	res := runFig(t, "fig6d", Options{Scale: 0.02, Seed: 5, Algorithms: []string{"base"}})
	xs, ys := res.Series("base")
	if len(xs) != len(res.Points) || len(ys) != len(xs) {
		t.Fatalf("series lengths: %d %d", len(xs), len(ys))
	}
	if xs2, _ := res.Series("absent"); len(xs2) != 0 {
		t.Fatal("absent algorithm should give empty series")
	}
	rep := metrics.Report{SimTime: 2, SchedulingTime: time.Hour, Imbalance: 3, CountImbalance: 4, Cost: 5, Fairness: 6, SLACompliance: 0.5, EnergyJoules: 9, MeanExec: 7, MeanWait: 8}
	cases := map[string]float64{
		"sim_ms": 2000, "sched_h": 1, "sched_s": 3600,
		"imbalance": 3, "imbalance_count": 4, "cost": 5, "fairness": 6,
		"sla": 0.5, "energy_j": 9, "mean_exec_s": 7, "mean_wait_s": 8,
	}
	for key, want := range cases {
		if got := ExtractMetric(rep, key); got != want {
			t.Fatalf("%s: got %v want %v", key, got, want)
		}
	}
	for _, key := range MetricKeys() {
		ExtractMetric(rep, key) // must not panic
	}
}

func TestExtractMetricUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExtractMetric(metrics.Report{}, "bogus")
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale != 1 || o.Workers <= 0 || o.Repeats != 1 || len(o.Algorithms) != len(PaperAlgorithms) {
		t.Fatalf("normalized: %+v", o)
	}
}

func TestVMCountGenerators(t *testing.T) {
	if got := Fig4aVMCounts(); len(got) != 9 || got[0] != 1000 || got[8] != 9000 {
		t.Fatalf("fig4a counts: %v", got)
	}
	if got := Fig4bVMCounts(); len(got) != 5 || got[0] != 10000 || got[4] != 90000 {
		t.Fatalf("fig4b counts: %v", got)
	}
	if got := Fig6VMCounts(); len(got) != 10 || got[0] != 50 || got[9] != 950 {
		t.Fatalf("fig6 counts: %v", got)
	}
}

func TestScaleCountFloors(t *testing.T) {
	if scaleCount(1000, 0.0001, 2) != 2 {
		t.Fatal("floor not applied")
	}
	if scaleCount(1000, 0.5, 2) != 500 {
		t.Fatal("scaling wrong")
	}
}
