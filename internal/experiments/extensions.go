package experiments

import (
	"fmt"
	"sync"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/elastic"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/online"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"
)

// Extension experiments beyond the paper's figures: online (per-arrival)
// scheduling under increasing load, and SLA compliance under shrinking
// deadline slack. Both are registered like the figures, so
// `cloudsched figure ext-online` / `ext-sla` regenerate them.

// onlineSchedulers builds the per-arrival policy set for one run.
func onlineSchedulers(seed uint64) map[string]online.Scheduler {
	return map[string]online.Scheduler{
		"online-rr":      online.NewRoundRobin(),
		"online-least":   online.NewLeastLoaded(),
		"online-eft":     online.NewEarliestFinish(),
		"online-aco":     online.NewACO(xrand.New(seed, 10)),
		"online-hbo":     online.NewHBO(xrand.New(seed, 11)),
		"online-rbs":     online.NewRBS(xrand.New(seed, 12)),
		"online-2choice": online.NewTwoChoices(xrand.New(seed, 13)),
	}
}

// runOnlinePoint executes every online policy at one arrival rate.
func runOnlinePoint(rate float64, opts Options) (map[string]metrics.Report, error) {
	opts = opts.normalized()
	nVMs, nCls := ablationScenario(opts)
	reports := map[string]metrics.Report{}
	for name, policy := range onlineSchedulers(opts.Seed) {
		scn, err := workload.Heterogeneous(nVMs, nCls, 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		arrivals, err := workload.PoissonArrivals(nCls, rate, opts.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := online.Run(scn.Env, policy, scn.Cloudlets, arrivals, cloud.TimeSharedFactory)
		if err != nil {
			return nil, fmt.Errorf("%s at rate %v: %w", name, rate, err)
		}
		rep := metrics.Collect(name, res.Finished, scn.Env.VMs, time.Since(start))
		// For online runs the headline number is mean response, surfaced
		// through the mean_exec_s channel's sibling field.
		rep.MeanExec = res.MeanResponse
		rep.MeanWait = res.MeanWait
		reports[name] = rep
	}
	return reports, nil
}

// runSLAPoint executes the batch schedulers with deadlines at one slack.
func runSLAPoint(slack float64, opts Options) (map[string]metrics.Report, error) {
	opts = opts.normalized()
	nVMs, nCls := ablationScenario(opts)
	algorithms := opts.Algorithms
	if len(algorithms) == 0 || len(algorithms) == len(PaperAlgorithms) {
		algorithms = append([]string{"deadline"}, PaperAlgorithms...)
	}
	reports := map[string]metrics.Report{}
	for _, name := range algorithms {
		scheduler, err := sched.New(name)
		if err != nil {
			return nil, err
		}
		scn, err := workload.Heterogeneous(nVMs, nCls, 4, opts.Seed)
		if err != nil {
			return nil, err
		}
		if err := workload.AssignDeadlines(scn.Cloudlets, scn.Env.VMs, slack); err != nil {
			return nil, err
		}
		ctx := scn.Context()
		start := time.Now()
		assignments, err := scheduler.Schedule(ctx)
		schedTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s at slack %v: %w", name, slack, err)
		}
		if err := sched.ValidateAssignments(ctx, assignments); err != nil {
			return nil, err
		}
		cls, vms := sched.Split(assignments)
		res, err := cloud.Execute(scn.Env, cloud.TimeSharedFactory, cls, vms)
		if err != nil {
			return nil, err
		}
		reports[name] = metrics.Collect(name, res.Finished, scn.Env.VMs, schedTime)
	}
	return reports, nil
}

// runElasticPoint runs a burst against a deliberately small fleet twice —
// once static, once with the threshold autoscaler at the given boot delay —
// and reports both makespans.
func runElasticPoint(bootDelay float64, opts Options) (map[string]metrics.Report, error) {
	opts = opts.normalized()
	nVMs, nCls := ablationScenario(opts)
	small := nVMs / 4
	if small < 2 {
		small = 2
	}
	runOne := func(autoscale bool) (metrics.Report, error) {
		scn, err := workload.Heterogeneous(small, nCls, 2, opts.Seed)
		if err != nil {
			return metrics.Report{}, err
		}
		eng := sim.NewEngine()
		broker := cloud.NewBroker(eng, scn.Env, cloud.TimeSharedFactory)
		if autoscale {
			as, err := elastic.New(broker, elastic.Policy{
				ScaleUpLoad:   4,
				ScaleDownLoad: 1,
				Interval:      2,
				MinVMs:        small,
				MaxVMs:        nVMs,
				Template:      elastic.VMTemplate{MIPS: 2000, PEs: 1, RAM: 512, Bw: 500, Size: 5000},
				BootDelay:     sim.Time(bootDelay),
			}, cloud.TimeSharedFactory, 100000)
			if err != nil {
				return metrics.Report{}, err
			}
			as.Start()
		}
		for i, c := range scn.Cloudlets {
			broker.Submit(c, scn.Env.VMs[i%small])
		}
		eng.Run()
		return metrics.Collect("elastic", broker.Finished(), scn.Env.VMs, 0), nil
	}
	static, err := runOne(false)
	if err != nil {
		return nil, err
	}
	static.Algorithm = "static"
	scaled, err := runOne(true)
	if err != nil {
		return nil, err
	}
	return map[string]metrics.Report{"static": static, "elastic": scaled}, nil
}

// extSweep fans a per-point runner over xs with bounded parallelism.
func extSweep(xs []float64, opts Options, runPt func(x float64, o Options) (map[string]metrics.Report, error)) ([]Point, error) {
	opts = opts.normalized()
	points := make([]Point, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports, err := runPt(xs[i], opts)
			if err != nil {
				errs[i] = err
				return
			}
			points[i] = Point{X: xs[i], Reports: reports}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

func init() {
	extOnline := &Experiment{
		ID:     "ext-online",
		Title:  "Online (per-arrival) scheduling under increasing Poisson load",
		XLabel: "Arrival rate (cloudlets/second)",
		YLabel: "Mean response time (s)",
		Metric: "mean_exec_s",
	}
	extOnline.Run = func(opts Options) (*Result, error) {
		points, err := extSweep([]float64{1, 2, 4, 8, 16, 32}, opts, runOnlinePoint)
		if err != nil {
			return nil, err
		}
		return &Result{ID: extOnline.ID, Title: extOnline.Title, XLabel: extOnline.XLabel,
			YLabel: extOnline.YLabel, Metric: extOnline.Metric, Points: points}, nil
	}
	registerExperiment(extOnline)

	extSLA := &Experiment{
		ID:     "ext-sla",
		Title:  "SLA compliance vs deadline slack (batch schedulers + deadline-aware)",
		XLabel: "Deadline slack (x best-case execution)",
		YLabel: "SLA compliance rate",
		Metric: "sla",
	}
	extSLA.Run = func(opts Options) (*Result, error) {
		points, err := extSweep([]float64{2, 4, 8, 16, 32, 64}, opts, runSLAPoint)
		if err != nil {
			return nil, err
		}
		return &Result{ID: extSLA.ID, Title: extSLA.Title, XLabel: extSLA.XLabel,
			YLabel: extSLA.YLabel, Metric: extSLA.Metric, Points: points}, nil
	}
	registerExperiment(extSLA)

	extElastic := &Experiment{
		ID:     "ext-elastic",
		Title:  "Threshold autoscaling vs instance boot delay (burst on a quarter-size fleet)",
		XLabel: "Instance boot delay (s)",
		YLabel: "Simulation Time of Cloudlets (ms)",
		Metric: "sim_ms",
	}
	extElastic.Run = func(opts Options) (*Result, error) {
		points, err := extSweep([]float64{0, 10, 30, 60, 120}, opts, runElasticPoint)
		if err != nil {
			return nil, err
		}
		return &Result{ID: extElastic.ID, Title: extElastic.Title, XLabel: extElastic.XLabel,
			YLabel: extElastic.YLabel, Metric: extElastic.Metric, Points: points}, nil
	}
	registerExperiment(extElastic)
}
