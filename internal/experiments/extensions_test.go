package experiments

import (
	"testing"
)

func TestExtOnlineRegisteredAndRuns(t *testing.T) {
	exp, err := Lookup("ext-online")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points: %d", len(res.Points))
	}
	for _, name := range []string{"online-rr", "online-least", "online-eft", "online-aco", "online-hbo", "online-rbs"} {
		xs, ys := res.Series(name)
		if len(xs) != 6 {
			t.Fatalf("%s: series length %d", name, len(xs))
		}
		for i, y := range ys {
			if y <= 0 {
				t.Fatalf("%s: non-positive response at x=%v", name, xs[i])
			}
		}
	}
}

func TestExtOnlineResponseGrowsWithLoad(t *testing.T) {
	exp, err := Lookup("ext-online")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"online-rr", "online-least"} {
		_, ys := res.Series(name)
		if ys[len(ys)-1] <= ys[0] {
			t.Fatalf("%s: response did not grow with load: %v", name, ys)
		}
	}
}

func TestExtSLARegisteredAndMonotone(t *testing.T) {
	exp, err := Lookup("ext-sla")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Compliance must (weakly) improve with slack for every algorithm and
	// reach 1.0 at the loosest setting.
	for _, name := range []string{"deadline", "aco", "base", "hbo", "rbs"} {
		_, ys := res.Series(name)
		if len(ys) == 0 {
			t.Fatalf("%s missing", name)
		}
		for i := 1; i < len(ys); i++ {
			if ys[i] < ys[i-1]-0.15 {
				t.Fatalf("%s: compliance fell sharply with more slack: %v", name, ys)
			}
		}
		if ys[len(ys)-1] < 0.99 {
			t.Fatalf("%s: not compliant at 64x slack: %v", name, ys[len(ys)-1])
		}
	}
}

func TestExtEnergyFollowsMakespan(t *testing.T) {
	exp, err := Lookup("ext-energy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Energy must be positive everywhere, and ACO (fastest completion,
	// shortest idle horizon) must use less than the base test on average.
	sum := map[string]float64{}
	for _, alg := range PaperAlgorithms {
		_, ys := res.Series(alg)
		for _, y := range ys {
			if y <= 0 {
				t.Fatalf("%s: non-positive energy %v", alg, y)
			}
			sum[alg] += y
		}
	}
	if sum["aco"] >= sum["base"] {
		t.Fatalf("ACO energy %v not below base %v", sum["aco"], sum["base"])
	}
}

func TestExtElasticAutoscalerHelpsAndBootDelayHurts(t *testing.T) {
	exp, err := Lookup("ext-elastic")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, elastic := res.Series("elastic")
	_, static := res.Series("static")
	if len(elastic) != 5 || len(static) != 5 {
		t.Fatalf("series lengths: %d/%d", len(elastic), len(static))
	}
	// Static is boot-delay-independent; elastic must beat it at every point.
	for i := range elastic {
		if elastic[i] >= static[i] {
			t.Fatalf("point %d: autoscaled %v not below static %v", i, elastic[i], static[i])
		}
		if static[i] != static[0] {
			t.Fatalf("static makespan varied with boot delay: %v", static)
		}
	}
	// Longer boots erode the benefit.
	if elastic[len(elastic)-1] <= elastic[0] {
		t.Fatalf("120s boot (%v) should be worse than instant (%v)", elastic[len(elastic)-1], elastic[0])
	}
}

func TestExtSLADeadlineSchedulerWinsSensitiveRegion(t *testing.T) {
	exp, err := Lookup("ext-sla")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(Options{Scale: 0.05, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// At the 16x slack point the deadline-aware scheduler must beat the
	// cost-driven HBO, which ignores deadlines entirely.
	var deadline16, hbo16 float64
	for _, p := range res.Points {
		if p.X == 16 {
			deadline16 = ExtractMetric(p.Reports["deadline"], "sla")
			hbo16 = ExtractMetric(p.Reports["hbo"], "sla")
		}
	}
	if deadline16 <= hbo16 {
		t.Fatalf("deadline scheduler (%v) not above HBO (%v) at 16x slack", deadline16, hbo16)
	}
}
