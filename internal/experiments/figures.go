package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// Experiment is one registered, regenerable paper artifact.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Metric string // key for ExtractMetric
	// Run executes the sweep and returns the labeled result.
	Run func(opts Options) (*Result, error)
}

var (
	expMu       sync.RWMutex
	expRegistry = map[string]*Experiment{}
)

// registerExperiment adds an experiment at init time.
func registerExperiment(e *Experiment) {
	expMu.Lock()
	defer expMu.Unlock()
	if _, dup := expRegistry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	expRegistry[e.ID] = e
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (*Experiment, error) {
	expMu.RLock()
	defer expMu.RUnlock()
	e, ok := expRegistry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	expMu.RLock()
	defer expMu.RUnlock()
	out := make([]string, 0, len(expRegistry))
	for id := range expRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// figure builds a standard figure experiment around a sweep.
func figure(id, title, metric, ylabel string, run func(Options) ([]Point, error)) *Experiment {
	e := &Experiment{ID: id, Title: title, XLabel: "Number of Virtual Machines (VMs)", YLabel: ylabel, Metric: metric}
	e.Run = func(opts Options) (*Result, error) {
		points, err := run(opts)
		if err != nil {
			return nil, err
		}
		return &Result{ID: e.ID, Title: e.Title, XLabel: e.XLabel, YLabel: e.YLabel, Metric: e.Metric, Points: points}, nil
	}
	return e
}

func init() {
	hom4a := func(o Options) ([]Point, error) { return homogeneousSweep(Fig4aVMCounts(), o) }
	hom4b := func(o Options) ([]Point, error) { return homogeneousSweep(Fig4bVMCounts(), o) }
	het := func(o Options) ([]Point, error) { return heterogeneousSweep(Fig6VMCounts(), o) }

	registerExperiment(figure("fig4a",
		"Simulation Time of the Homogeneous Scenario (1k-9k VMs)",
		"sim_ms", "Simulation Time of Cloudlets (ms)", hom4a))
	registerExperiment(figure("fig4b",
		"Simulation Time of the Homogeneous Scenario (10k-90k VMs)",
		"sim_ms", "Simulation Time of Cloudlets (ms)", hom4b))
	registerExperiment(figure("fig5a",
		"Scheduling Time for the Homogeneous Scenario (1k-9k VMs)",
		"sched_h", "Scheduling Time of Cloudlets (Hours)", hom4a))
	registerExperiment(figure("fig5b",
		"Scheduling Time for the Homogeneous Scenario (10k-90k VMs)",
		"sched_h", "Scheduling Time of Cloudlets (Hours)", hom4b))
	registerExperiment(figure("fig6a",
		"Heterogeneous Scenario: Simulation Time",
		"sim_ms", "Simulation Time of Cloudlets (ms)", het))
	registerExperiment(figure("fig6b",
		"Heterogeneous Scenario: Scheduling Time",
		"sched_s", "Scheduling Time of Cloudlets (Seconds)", het))
	registerExperiment(figure("fig6c",
		"Heterogeneous Scenario: Degree of Time Imbalance",
		"imbalance", "Time Degree of Imbalance", het))
	registerExperiment(figure("fig6d",
		"Heterogeneous Scenario: Processing Costs",
		"cost", "Processing Cost", het))
	// fig6c-count is the companion view of Figure 6c under the paper's
	// §VI-D2 narrative ("equal number of Cloudlets"): Eq. 13's shape applied
	// to per-VM cloudlet counts instead of per-cloudlet execution times.
	// See EXPERIMENTS.md for why both views are reported.
	registerExperiment(figure("fig6c-count",
		"Heterogeneous Scenario: Degree of Count Imbalance (companion to Fig. 6c)",
		"imbalance_count", "Count Degree of Imbalance", het))
	// ext-energy reports plant-wide energy (90/250 W linear hosts) for the
	// paper's algorithms over the heterogeneous sweep: faster completion
	// means a shorter horizon of idle draw, so the Fig. 6a winners also win
	// energy — the coupling the related work [27] optimizes directly.
	registerExperiment(figure("ext-energy",
		"Heterogeneous Scenario: plant energy (linear 90/250 W hosts)",
		"energy_j", "Energy (J)", het))
	// abl-extensions compares the paper's three algorithms against the
	// related-work baselines this repo also implements (PSO, GA, hybrid,
	// plus the classical greedy family) on the heterogeneous sweep.
	registerExperiment(figure("abl-extensions",
		"Extension baselines on the Heterogeneous Scenario",
		"sim_ms", "Simulation Time of Cloudlets (ms)",
		func(o Options) ([]Point, error) {
			if len(o.Algorithms) == 0 {
				o.Algorithms = []string{"aco", "base", "hbo", "rbs", "pso", "ga", "hybrid", "greedy", "minmin", "maxmin"}
			}
			return heterogeneousSweep(Fig6VMCounts(), o)
		}))
}
