package experiments

import (
	"fmt"
	"sync"

	"bioschedsim/internal/xrand"
)

// sweep runs one pointSpec per VM count on a bounded worker pool and
// assembles the ordered Points. Each point derives its seed from the root
// seed and its index, so the outcome is independent of worker interleaving.
func sweep(kind scenarioKind, vmCounts []int, cloudlets, dcs int, opts Options) ([]Point, error) {
	opts = opts.normalized()
	points := make([]Point, len(vmCounts))
	errs := make([]error, len(vmCounts))

	type job struct{ idx int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := pointSpec{
					kind:       kind,
					vms:        vmCounts[j.idx],
					cloudlets:  cloudlets,
					dcs:        dcs,
					seed:       xrand.Stream(opts.Seed, uint64(j.idx)).Uint64(),
					algorithms: opts.Algorithms,
					repeats:    opts.Repeats,
				}
				reports, err := runPoint(spec)
				if err != nil {
					errs[j.idx] = err
					continue
				}
				points[j.idx] = Point{X: float64(vmCounts[j.idx]), Reports: reports}
			}
		}()
	}
	for i := range vmCounts {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep point %d (vms=%d): %w", i, vmCounts[i], err)
		}
	}
	return points, nil
}

// homogeneousSweep runs the paper's homogeneous scenario over the given
// paper-scale VM counts (Tables III–IV workload; 1 000 000 cloudlets).
func homogeneousSweep(paperVMCounts []int, opts Options) ([]Point, error) {
	opts = opts.normalized()
	vmCounts := make([]int, len(paperVMCounts))
	for i, v := range paperVMCounts {
		vmCounts[i] = scaleCount(v, opts.Scale, 2)
	}
	cloudlets := scaleCount(1_000_000, opts.Scale, 10)
	return sweep(homogeneous, vmCounts, cloudlets, 1, opts)
}

// heterogeneousSweep runs the paper's heterogeneous scenario over the given
// paper-scale VM counts (Tables V–VII; 5 000 cloudlets, 4 datacenters).
func heterogeneousSweep(paperVMCounts []int, opts Options) ([]Point, error) {
	opts = opts.normalized()
	vmCounts := make([]int, len(paperVMCounts))
	for i, v := range paperVMCounts {
		vmCounts[i] = scaleCount(v, opts.Scale, 2)
	}
	cloudlets := scaleCount(5_000, opts.Scale, 10)
	return sweep(heterogeneous, vmCounts, cloudlets, 4, opts)
}

// steps returns {from, from+by, ..., to} inclusive.
func steps(from, to, by int) []int {
	var out []int
	for v := from; v <= to; v += by {
		out = append(out, v)
	}
	return out
}

// Fig4aVMCounts are the paper's Figure 4a/5a x-axis values: 1 000–9 000 VMs.
func Fig4aVMCounts() []int { return steps(1000, 9000, 1000) }

// Fig4bVMCounts are the paper's Figure 4b/5b x-axis values: 10 000–90 000 VMs.
func Fig4bVMCounts() []int { return steps(10000, 90000, 20000) }

// Fig6VMCounts are the paper's Figure 6 x-axis values: 50–950 VMs.
func Fig6VMCounts() []int { return steps(50, 950, 100) }
