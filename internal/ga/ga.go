// Package ga implements a genetic-algorithm scheduler, the related-work
// baseline of [6] ("a GA scheduler that scans the entire job queue...to
// minimize the makespan of the tasks only"): chromosomes are integer
// vectors mapping each cloudlet to a VM; selection is k-tournament,
// crossover is uniform, mutation reassigns a gene to a random VM, and the
// top individuals survive unchanged (elitism).
//
// §II notes GA schedulers "are slow for Cloud due to the time to converge"
// [17] — which this implementation reproduces: its scheduling time sits
// well above the swarm algorithms at equal solution quality (see the
// abl-extensions benchmarks).
package ga

import (
	"fmt"
	"math"
	"sort"

	"bioschedsim/internal/objective"
	"bioschedsim/internal/sched"
)

// Config holds the GA parameters.
type Config struct {
	Population   int     // chromosomes per generation
	Generations  int     // evolution rounds
	MutationRate float64 // per-gene reassignment probability
	TournamentK  int     // tournament size for parent selection
	Elite        int     // chromosomes copied unchanged each generation
	// Workers bounds the fitness-evaluation pool; 0 means GOMAXPROCS, 1
	// forces serial. Results are identical for every value — evaluation is
	// pure per chromosome and randomness lives only in breeding.
	Workers int
}

// DefaultConfig returns a conventional small-population setup.
func DefaultConfig() Config {
	return Config{Population: 40, Generations: 60, MutationRate: 0.02, TournamentK: 3, Elite: 2}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Population <= 1:
		return fmt.Errorf("ga: Population must exceed 1, got %d", c.Population)
	case c.Generations <= 0:
		return fmt.Errorf("ga: Generations must be positive, got %d", c.Generations)
	case c.MutationRate < 0 || c.MutationRate > 1:
		return fmt.Errorf("ga: MutationRate must be in [0,1], got %v", c.MutationRate)
	case c.TournamentK <= 0 || c.TournamentK > c.Population:
		return fmt.Errorf("ga: TournamentK must be in [1,Population], got %d", c.TournamentK)
	case c.Elite < 0 || c.Elite >= c.Population:
		return fmt.Errorf("ga: Elite must be in [0,Population), got %d", c.Elite)
	case c.Workers < 0:
		return fmt.Errorf("ga: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Scheduler is the GA batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns a GA scheduler; zero fields fall back to defaults.
func New(cfg Config) *Scheduler {
	def := DefaultConfig()
	if cfg.Population == 0 {
		cfg.Population = def.Population
	}
	if cfg.Generations == 0 {
		cfg.Generations = def.Generations
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.MutationRate == 0 {
		cfg.MutationRate = def.MutationRate
	}
	if cfg.TournamentK == 0 {
		cfg.TournamentK = def.TournamentK
	}
	// Elite 0 and Workers 0 are valid explicit choices; keep them.
	return &Scheduler{cfg: cfg}
}

// Default returns a GA scheduler with DefaultConfig.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetWorkers implements sched.WorkerTunable: it bounds the fitness pool
// (0 = GOMAXPROCS, 1 = serial) without changing any chromosome.
func (s *Scheduler) SetWorkers(workers int) { s.cfg.Workers = workers }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "ga" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("ga: scheduler requires ctx.Rand")
	}
	n, m := len(ctx.Cloudlets), len(ctx.VMs)
	rnd := ctx.Rand

	// All Eq. 6 estimates and makespan evaluations come from the shared
	// evaluation layer. Fitness is pure, so whole generations evaluate in one
	// batch: breeding (which consumes randomness) runs first, evaluation
	// (which consumes none) after, leaving the rand sequence — and therefore
	// the result — unchanged relative to interleaved per-child evaluation
	// while letting the batch fan out across workers.
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{Workers: s.cfg.Workers})
	pe := objective.NewPopEvaluator(mx, objective.Makespan, s.cfg.Workers)
	batch := make([][]int, 0, s.cfg.Population)
	vals := make([]float64, s.cfg.Population)

	type chromo struct {
		genes []int
		fit   float64
	}
	pop := make([]chromo, s.cfg.Population)
	batch = batch[:0]
	for p := range pop {
		genes := make([]int, n)
		for i := range genes {
			genes[i] = rnd.Intn(m)
		}
		pop[p].genes = genes
		batch = append(batch, genes)
	}
	pe.Eval(batch, vals)
	for p := range pop {
		pop[p].fit = vals[p]
	}

	tournament := func() *chromo {
		best := &pop[rnd.Intn(len(pop))]
		for k := 1; k < s.cfg.TournamentK; k++ {
			cand := &pop[rnd.Intn(len(pop))]
			if cand.fit < best.fit {
				best = cand
			}
		}
		return best
	}

	next := make([]chromo, s.cfg.Population)
	bestGenes := append([]int(nil), pop[0].genes...)
	bestFit := math.Inf(1)
	for gen := 0; gen < s.cfg.Generations; gen++ {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit < pop[b].fit })
		if pop[0].fit < bestFit {
			bestFit = pop[0].fit
			copy(bestGenes, pop[0].genes)
		}
		// Elitism: carry the best through unchanged.
		for e := 0; e < s.cfg.Elite; e++ {
			if next[e].genes == nil {
				next[e].genes = make([]int, n)
			}
			copy(next[e].genes, pop[e].genes)
			next[e].fit = pop[e].fit
		}
		// Breed the rest: uniform crossover + mutation.
		batch = batch[:0]
		for p := s.cfg.Elite; p < s.cfg.Population; p++ {
			ma, pa := tournament(), tournament()
			if next[p].genes == nil {
				next[p].genes = make([]int, n)
			}
			child := next[p].genes
			for i := 0; i < n; i++ {
				if rnd.Intn(2) == 0 {
					child[i] = ma.genes[i]
				} else {
					child[i] = pa.genes[i]
				}
				if rnd.Float64() < s.cfg.MutationRate {
					child[i] = rnd.Intn(m)
				}
			}
			batch = append(batch, child)
		}
		pe.Eval(batch, vals)
		for p := s.cfg.Elite; p < s.cfg.Population; p++ {
			next[p].fit = vals[p-s.cfg.Elite]
		}
		pop, next = next, pop
	}
	for p := range pop {
		if pop[p].fit < bestFit {
			bestFit = pop[p].fit
			copy(bestGenes, pop[p].genes)
		}
	}

	out := make([]sched.Assignment, n)
	for i, v := range bestGenes {
		out[i] = sched.Assignment{Cloudlet: ctx.Cloudlets[i], VM: ctx.VMs[v]}
	}
	return out, nil
}

func init() {
	sched.Register("ga", func() sched.Scheduler { return Default() })
	sched.DeclareTraits("ga", sched.Traits{Stochastic: true, Parallel: true})
}
