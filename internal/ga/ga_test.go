package ga

import (
	"testing"
	"testing/quick"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Population: 1, Generations: 1, MutationRate: .1, TournamentK: 1},
		{Population: 4, Generations: 0, MutationRate: .1, TournamentK: 1},
		{Population: 4, Generations: 1, MutationRate: 1.5, TournamentK: 1},
		{Population: 4, Generations: 1, MutationRate: .1, TournamentK: 9},
		{Population: 4, Generations: 1, MutationRate: .1, TournamentK: 2, Elite: 4},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.Population != 40 || cfg.Generations != 60 || cfg.TournamentK != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestScheduleValidAndDeterministic(t *testing.T) {
	mk := func() []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 8, 50, 3)
		got, err := New(Config{Population: 10, Generations: 10}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestGABeatsRandomOnMakespan(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 10, 100, 7)
	gaAs, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := schedtest.Heterogeneous(t, 10, 100, 7)
	randAs, err := sched.NewRandom().Schedule(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if sched.EstimatedMakespan(gaAs) >= sched.EstimatedMakespan(randAs) {
		t.Fatalf("GA makespan %v not below random %v",
			sched.EstimatedMakespan(gaAs), sched.EstimatedMakespan(randAs))
	}
}

func TestMoreGenerationsNeverWorse(t *testing.T) {
	run := func(gens int) float64 {
		ctx := schedtest.Heterogeneous(t, 8, 60, 13)
		got, err := New(Config{Population: 12, Generations: gens, MutationRate: .02, TournamentK: 3, Elite: 2}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return sched.EstimatedMakespan(got)
	}
	short, long := run(1), run(40)
	if long > short*1.3 {
		t.Fatalf("40 generations (%v) much worse than 1 (%v)", long, short)
	}
}

func TestZeroEliteAllowed(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 5, 20, 1)
	got, err := New(Config{Population: 6, Generations: 5, MutationRate: .05, TournamentK: 2, Elite: 0}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestRequiresRand(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	ctx.Rand = nil
	if _, err := Default().Schedule(ctx); err == nil {
		t.Fatal("expected error without ctx.Rand")
	}
}

func TestRegistered(t *testing.T) {
	s, err := sched.New("ga")
	if err != nil || s.Name() != "ga" {
		t.Fatalf("registry: %v %v", s, err)
	}
}

func TestPropertyValid(t *testing.T) {
	f := func(seed int64, vmN, clN uint8) bool {
		ctx := schedtest.Heterogeneous(t, 1+int(vmN)%8, 1+int(clN)%40, seed)
		got, err := New(Config{Population: 6, Generations: 4}).Schedule(ctx)
		if err != nil {
			return false
		}
		return sched.ValidateAssignments(ctx, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerCountInvariant: the parallel fitness pool must never change the
// result — same seed, same schedule, for any Workers setting. The problem is
// sized above the evaluator's serial threshold so multi-worker runs really
// run concurrently.
func TestWorkerCountInvariant(t *testing.T) {
	mk := func(workers int) []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 12, 300, 17)
		got, err := New(Config{Population: 120, Generations: 4, Workers: workers}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		for i := range ref {
			if got[i].VM.ID != ref[i].VM.ID {
				t.Fatalf("Workers=%d diverged from serial at cloudlet %d", workers, i)
			}
		}
	}
}
