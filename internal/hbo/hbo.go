// Package hbo implements the paper's Honey Bee Optimization scheduler
// (§III, Algorithm 1, Equations 1–4, Table I cost model).
//
// The colony metaphor maps onto the cloud as follows: cloudlets are split
// into q groups forming food sources; one foraging bee per datacenter
// evaluates how profitable its datacenter is for a given cloudlet using the
// cost function
//
//	DCcost_ij = (Size_i + M_i + BW_i) · T_CLj        (Eq. 1)
//	Size_i    = dchCPS · sizeVM_i                    (Eq. 2)
//	M_i       = dchCPR · RAMVM_i                     (Eq. 3)
//	BW_i      = dchCPB · BwVM_i                      (Eq. 4)
//
// i.e. the datacenter's storage/RAM/bandwidth prices applied to the VM's
// reservations, scaled by the cloudlet length. Scout bees then place each
// cloudlet on the least-loaded VM of the cheapest datacenter, unless that
// datacenter already carries facLB assignments per VM — Algorithm 1's
// load-balance factor — in which case the cloudlet spills to the next
// cheapest datacenter.
//
// HBO therefore optimizes monetary cost first with a mild balance
// constraint, which is exactly the paper's reported profile: cheapest
// processing cost (Fig. 6d), simulation time slightly better than the base
// test (Fig. 6a), imbalance between RBS and ACO (Fig. 6c), and scheduling
// time cheaper than ACO but dearer than RBS (Fig. 6b).
package hbo

import (
	"fmt"
	"sort"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/sched"
)

// Config holds the HBO parameters.
type Config struct {
	// Groups is q, the number of food-source groups the cloudlet list is
	// divided into (the paper's Figure 1 shows two).
	Groups int
	// FacLB is Algorithm 1's load-balance factor: the maximum average number
	// of cloudlets per VM a datacenter may carry before scouts spill to the
	// next-cheapest datacenter. Zero means 1.5× the fair share
	// len(cloudlets)/len(vms): cheap datacenters absorb half again their
	// equal slice of the batch before the remainder spills down the price
	// ranking — a deliberately loose bound, matching the paper's note that
	// the balancing factor's effect on HBO's decisions "is minimal" (§VI-D2).
	FacLB float64
	// Workers bounds the pool used for the parallel precompute phases (the
	// per-group forage-order sorts and, on compressible fleets, the Eq. 6
	// class matrix): 0 means GOMAXPROCS, 1 forces serial. The scout loop's
	// placements are bit-identical for every worker count — the precompute
	// only changes when estimates are computed, never their values.
	Workers int
}

// DefaultConfig returns two groups and fair-share load balancing.
func DefaultConfig() Config { return Config{Groups: 2, FacLB: 0} }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Groups <= 0 {
		return fmt.Errorf("hbo: Groups must be positive, got %d", c.Groups)
	}
	if c.FacLB < 0 {
		return fmt.Errorf("hbo: FacLB must be non-negative, got %v", c.FacLB)
	}
	if c.Workers < 0 {
		return fmt.Errorf("hbo: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Scheduler is the HBO batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns an HBO scheduler; a zero Groups falls back to the default 2.
func New(cfg Config) *Scheduler {
	if cfg.Groups == 0 {
		cfg.Groups = DefaultConfig().Groups
	}
	return &Scheduler{cfg: cfg}
}

// Default returns an HBO scheduler with the paper's configuration.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the scheduler's effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetWorkers implements sched.WorkerTunable: it bounds the precompute pool
// (0 = GOMAXPROCS, 1 = serial) without changing any placement.
func (s *Scheduler) SetWorkers(workers int) { s.cfg.Workers = workers }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "hbo" }

// maxPrecomputeClasses caps the parallel forage precompute: materializing
// the class matrix costs n×K estimates where the on-demand scout loop
// computes exactly n, so it only pays off when the fleet compresses to a
// handful of exec-equivalence classes (K=1 for the paper's homogeneous
// scenario). Beyond the cap the serial single-pass form stays cheaper even
// against a full worker pool.
const maxPrecomputeClasses = 8

// dcState is a foraging bee's view of one datacenter.
type dcState struct {
	dc       *cloud.Datacenter
	vms      []*cloud.VM
	idx      []int32 // global indices into ctx.VMs, parallel to vms
	costRate float64 // mean Eq. 1 resource rate across the DC's VMs
	assigned int     // cloudlets routed here so far
	// vmLoad books estimated busy seconds per VM so Algorithm 1's
	// VMleastLoad pick is speed-aware; this is what keeps HBO's simulation
	// time slightly ahead of the base test (Fig. 6a) even though its
	// datacenter choice is purely price-driven.
	vmLoad []float64
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	states, err := buildStates(ctx)
	if err != nil {
		return nil, err
	}
	facLB := s.cfg.FacLB
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if facLB == 0 {
		// Loose fair share: each datacenter may absorb 1.5× its VMs' equal
		// slice of the batch before scouts spill to the next-cheapest one.
		facLB = 1.5 * float64(len(ctx.Cloudlets)) / float64(len(ctx.VMs))
		if facLB < 1 {
			facLB = 1
		}
	}

	cls := ctx.Cloudlets
	n := len(cls)
	workers := objective.EffectiveWorkers(s.cfg.Workers, int64(n), 0)

	groups := divide(n, s.cfg.Groups)
	// Algorithm 1 processes the largest food source first, and within a
	// group repeatedly extracts the longest cloudlet (line 6's
	// CloudLetL ← max(Groups_k)), so expensive work books first — both the
	// cost savings (long work lands on cheap datacenters) and the LPT-style
	// makespan quality of HBO flow from this order. The per-group extraction
	// orders are independent, so the q stable sorts run on the worker pool;
	// each produces exactly the permutation it would serially.
	sort.SliceStable(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
	objective.ParallelFor(workers, len(groups), func(gi int) {
		g := groups[gi]
		sort.SliceStable(g, func(a, b int) bool { return cls[g[a]].Length > cls[g[b]].Length })
	})

	// Forager estimates: the serial scout loop reads each (cloudlet, chosen
	// VM) estimate exactly once, so by default the shared layer's on-demand
	// form beats materializing. With a worker pool and a compressible fleet
	// the n×K class matrix is instead batch-built in parallel up front and
	// the loop reads cached cells. Matrix.Exec is bit-identical to ExecTime
	// in every mode, so the cutover never changes a placement.
	mx := objective.NewMatrix(cls, ctx.VMs, objective.Options{Mode: objective.OnDemand})
	if workers > 1 && mx.K() <= maxPrecomputeClasses {
		mx = objective.NewMatrix(cls, ctx.VMs, objective.Options{Mode: objective.Materialized, Workers: s.cfg.Workers})
	}

	chosen := make([]int32, n) // cloudlet index → global VM index
	for _, group := range groups {
		for _, ci := range group {
			st := chooseDatacenter(states, cls[ci], facLB)
			vi := leastLoadedVM(st)
			st.vmLoad[vi] += mx.Exec(int(ci), int(st.idx[vi]))
			st.assigned++
			chosen[ci] = st.idx[vi]
		}
	}
	// Emit in submission order so broker records align with inputs.
	out := make([]sched.Assignment, n)
	for i, c := range cls {
		out[i] = sched.Assignment{Cloudlet: c, VM: ctx.VMs[chosen[i]]}
	}
	return out, nil
}

// buildStates prepares one dcState per datacenter holding VMs. When the
// context has no datacenter information (or VMs are unplaced), the whole
// fleet is treated as a single anonymous datacenter so HBO still functions.
func buildStates(ctx *sched.Context) ([]*dcState, error) {
	byDC := map[*cloud.Datacenter][]int32{}
	var anonymous []int32
	for j, vm := range ctx.VMs {
		if dc := vm.Datacenter(); dc != nil {
			byDC[dc] = append(byDC[dc], int32(j))
		} else {
			anonymous = append(anonymous, int32(j))
		}
	}
	var states []*dcState
	add := func(dc *cloud.Datacenter, idx []int32) {
		st := &dcState{dc: dc, idx: idx, vms: make([]*cloud.VM, len(idx)), vmLoad: make([]float64, len(idx))}
		for i, j := range idx {
			st.vms[i] = ctx.VMs[j]
			st.costRate += cloud.ResourceCostRate(st.vms[i])
		}
		st.costRate /= float64(len(idx))
		states = append(states, st)
	}
	// Iterate ctx.Datacenters for deterministic order; fall back to the map
	// only for datacenters reachable from VMs but absent from the context.
	seen := map[*cloud.Datacenter]bool{}
	for _, dc := range ctx.Datacenters {
		if idx := byDC[dc]; len(idx) > 0 {
			add(dc, idx)
			seen[dc] = true
		}
	}
	for dc, idx := range byDC {
		if !seen[dc] {
			add(dc, idx)
		}
	}
	// The map iteration above is only non-deterministic when the caller
	// failed to list datacenters in ctx; sort by ID to stay reproducible.
	sort.SliceStable(states, func(i, j int) bool {
		if states[i].dc == nil || states[j].dc == nil {
			return states[j].dc != nil
		}
		return states[i].dc.ID < states[j].dc.ID
	})
	if len(anonymous) > 0 {
		add(nil, anonymous)
	}
	if len(states) == 0 {
		return nil, fmt.Errorf("hbo: no VMs grouped into datacenters")
	}
	return states, nil
}

// divide splits the cloudlet indices [0, n) into q food-source groups of
// near-equal size.
func divide(n, q int) [][]int32 {
	if q > n {
		q = n
	}
	groups := make([][]int32, q)
	for i := 0; i < n; i++ {
		groups[i%q] = append(groups[i%q], int32(i))
	}
	return groups
}

// chooseDatacenter ranks datacenters by Eq. 1 cost for cloudlet c and
// returns the cheapest one that is not saturated per facLB; if all are
// saturated it returns the globally least-saturated one.
func chooseDatacenter(states []*dcState, c *cloud.Cloudlet, facLB float64) *dcState {
	var best *dcState
	bestCost := 0.0
	for _, st := range states {
		if float64(st.assigned) >= facLB*float64(len(st.vms)) {
			continue // Algorithm 1 line 10: saturated, scouts look elsewhere
		}
		cost := st.costRate * c.Length // Eq. 1: rate × T_CLj
		if best == nil || cost < bestCost {
			best, bestCost = st, cost
		}
	}
	if best != nil {
		return best
	}
	// Every datacenter saturated (facLB set below fair share): pick the one
	// with the lowest fill ratio to keep degrading gracefully.
	best = states[0]
	bestRatio := float64(best.assigned) / float64(len(best.vms))
	for _, st := range states[1:] {
		if ratio := float64(st.assigned) / float64(len(st.vms)); ratio < bestRatio {
			best, bestRatio = st, ratio
		}
	}
	return best
}

// leastLoadedVM returns the index of st's VM with the smallest booked load.
func leastLoadedVM(st *dcState) int {
	best, bestLoad := 0, st.vmLoad[0]
	for i := 1; i < len(st.vmLoad); i++ {
		if st.vmLoad[i] < bestLoad {
			best, bestLoad = i, st.vmLoad[i]
		}
	}
	return best
}

func init() {
	sched.Register("hbo", func() sched.Scheduler { return Default() })
	// HBO is rule-driven (no ctx.Rand draws), but its forage ordering is
	// submission-order-sensitive, so no permutation claim. Its precompute
	// phases run on a worker pool that never changes a placement (Parallel).
	sched.DeclareTraits("hbo", sched.Traits{Parallel: true})
}
