package hbo

import (
	"testing"
	"testing/quick"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Groups != 2 {
		t.Fatalf("Groups: %d want 2", cfg.Groups)
	}
	if cfg.FacLB != 0 {
		t.Fatalf("FacLB: %v want 0 (fair share)", cfg.FacLB)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Groups: -1}).Validate() == nil {
		t.Fatal("negative groups accepted")
	}
	if (Config{Groups: 2, FacLB: -0.5}).Validate() == nil {
		t.Fatal("negative facLB accepted")
	}
	if err := (Config{Groups: 4, FacLB: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaultsGroups(t *testing.T) {
	if New(Config{}).Config().Groups != 2 {
		t.Fatal("zero Groups not defaulted")
	}
	if New(Config{Groups: 5}).Config().Groups != 5 {
		t.Fatal("explicit Groups overridden")
	}
}

func TestScheduleValid(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 12, 100, 1)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestHBOCheaperThanRoundRobin(t *testing.T) {
	// The core claim of Fig. 6d: HBO's cost-driven foraging beats
	// cost-oblivious cyclic assignment.
	ctx := schedtest.Heterogeneous(t, 20, 300, 7)
	hboAs, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rrAs, _ := sched.NewRoundRobin().Schedule(ctx)
	if schedtest.TotalCost(hboAs) >= schedtest.TotalCost(rrAs) {
		t.Fatalf("HBO cost %v not below round-robin %v",
			schedtest.TotalCost(hboAs), schedtest.TotalCost(rrAs))
	}
}

func TestHBOPrefersCheapDatacenterUnderCapacity(t *testing.T) {
	// With facLB large enough to avoid spilling, everything goes to the
	// cheap datacenter.
	ctx := schedtest.Heterogeneous(t, 10, 20, 3)
	got, err := New(Config{Groups: 2, FacLB: 1e9}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a.VM.Datacenter().Name != "cheap" {
			t.Fatalf("cloudlet %d routed to %s", a.Cloudlet.ID, a.VM.Datacenter().Name)
		}
	}
}

func TestHBODefaultFillsCheapDatacenterFirst(t *testing.T) {
	// Under the default fair-share facLB the cheap datacenter absorbs its
	// full share before anything spills to the pricey one, so with
	// unsaturating load everything lands cheap.
	ctx := schedtest.Heterogeneous(t, 10, 200, 3)
	got, err := New(Config{Groups: 2, FacLB: 60}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a.VM.Datacenter().Name != "cheap" {
			t.Fatalf("cloudlet %d escaped to %s below saturation", a.Cloudlet.ID, a.VM.Datacenter().Name)
		}
	}
}

func TestHBOFacLBSpillsToOtherDatacenters(t *testing.T) {
	// A fair-share facLB saturates the cheap datacenter halfway through the
	// batch and must spill the remainder onto the pricey one.
	ctx := schedtest.Heterogeneous(t, 10, 200, 3)
	got, err := Default().Schedule(ctx) // default facLB is the fair share
	if err != nil {
		t.Fatal(err)
	}
	byDC := map[string]int{}
	for _, a := range got {
		byDC[a.VM.Datacenter().Name]++
	}
	if byDC["pricey"] == 0 {
		t.Fatal("facLB never spilled to the second datacenter")
	}
	if byDC["cheap"] < byDC["pricey"] {
		t.Fatalf("cheap DC should get at least half: %v", byDC)
	}
}

func TestHBOLongestCloudletsGoCheapest(t *testing.T) {
	// Algorithm 1's max() extraction sends long work to cheap datacenters
	// first: under a fair-share facLB the mean length routed cheap must
	// exceed the mean length routed pricey.
	ctx := schedtest.Heterogeneous(t, 10, 300, 13)
	got, err := New(Config{Groups: 2, FacLB: 36}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[string]float64{}
	n := map[string]float64{}
	for _, a := range got {
		name := a.VM.Datacenter().Name
		sum[name] += a.Cloudlet.Length
		n[name]++
	}
	if n["pricey"] == 0 {
		t.Fatal("no spill to pricey DC")
	}
	if sum["cheap"]/n["cheap"] <= sum["pricey"]/n["pricey"] {
		t.Fatalf("cheap DC mean length %v not above pricey %v",
			sum["cheap"]/n["cheap"], sum["pricey"]/n["pricey"])
	}
}

func TestHBOLeastLoadedWithinDatacenter(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 8, 160, 11)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range got {
		counts[a.VM.ID]++
	}
	// Fair-share spill plus least-loaded booking must touch every VM.
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 VMs used", len(counts))
	}
}

func TestHBOAssignmentOrderMatchesInput(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 6, 30, 5)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if a.Cloudlet != ctx.Cloudlets[i] {
			t.Fatalf("assignment %d out of input order", i)
		}
	}
}

func TestHBOWorksWithoutDatacenters(t *testing.T) {
	// VMs never placed on hosts: HBO degrades to a single anonymous group.
	vms := []*cloud.VM{
		cloud.NewVM(0, 1000, 1, 512, 500, 5000),
		cloud.NewVM(1, 2000, 1, 512, 500, 5000),
	}
	cls := []*cloud.Cloudlet{
		cloud.NewCloudlet(0, 1000, 1, 300, 300),
		cloud.NewCloudlet(1, 2000, 1, 300, 300),
		cloud.NewCloudlet(2, 3000, 1, 300, 300),
	}
	ctx := &sched.Context{Cloudlets: cls, VMs: vms}
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestHBOSingleGroupAndManyGroups(t *testing.T) {
	for _, q := range []int{1, 3, 7, 100} {
		ctx := schedtest.Heterogeneous(t, 9, 45, int64(q))
		got, err := New(Config{Groups: q}).Schedule(ctx)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestHBOTightFacLBStillTerminates(t *testing.T) {
	// facLB below fair share saturates every datacenter; the scheduler must
	// still assign everything via the least-filled fallback.
	ctx := schedtest.Heterogeneous(t, 4, 100, 2)
	got, err := New(Config{Groups: 2, FacLB: 0.5}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestDividePartitions(t *testing.T) {
	cls := make([]*cloud.Cloudlet, 10)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 100, 1, 0, 0)
	}
	groups := divide(len(cls), 3)
	if len(groups) != 3 {
		t.Fatalf("groups: %d", len(groups))
	}
	seen := make(map[int32]bool)
	for _, g := range groups {
		for _, ci := range g {
			seen[ci] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("partition lost cloudlets: %d", len(seen))
	}
	// More groups than cloudlets clamps.
	if got := divide(2, 5); len(got) != 2 {
		t.Fatalf("clamp failed: %d groups", len(got))
	}
}

func TestRegisteredInSchedRegistry(t *testing.T) {
	s, err := sched.New("hbo")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "hbo" {
		t.Fatalf("name: %s", s.Name())
	}
}

func TestSchedulePropertyValid(t *testing.T) {
	f := func(seed int64, vmN, clN, q uint8) bool {
		nVMs := 1 + int(vmN)%10
		nCls := 1 + int(clN)%50
		groups := 1 + int(q)%5
		ctx := schedtest.Heterogeneous(t, nVMs, nCls, seed)
		got, err := New(Config{Groups: groups}).Schedule(ctx)
		if err != nil {
			return false
		}
		return sched.ValidateAssignments(ctx, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableI_HBOCost(b *testing.B) {
	ctx := schedtest.Heterogeneous(b, 50, 1000, 1)
	s := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
