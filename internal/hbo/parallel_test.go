package hbo

import (
	"sync"
	"testing"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

// TestWorkerCountInvariant: the precompute pool (parallel group sorts plus,
// on this homogeneous fleet, the materialized class matrix) must never
// change a placement. The batch is sized above the serial threshold so
// multi-worker runs take the parallel path for real.
func TestWorkerCountInvariant(t *testing.T) {
	mk := func(workers int) []sched.Assignment {
		ctx := schedtest.Homogeneous(t, 8, 40000, 3)
		got, err := New(Config{Groups: 3, Workers: workers}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		for i := range ref {
			if got[i].VM.ID != ref[i].VM.ID {
				t.Fatalf("Workers=%d diverged from serial at cloudlet %d", workers, i)
			}
		}
	}
}

// On a heterogeneous fleet (K ≈ m, beyond maxPrecomputeClasses) the scout
// loop stays on-demand; Workers must still be invisible in the result.
func TestWorkerCountInvariantHeterogeneous(t *testing.T) {
	mk := func(workers int) []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 12, 500, 7)
		got, err := New(Config{Workers: workers}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := mk(1)
	got := mk(8)
	for i := range ref {
		if got[i].VM.ID != ref[i].VM.ID {
			t.Fatalf("Workers=8 diverged from serial at cloudlet %d", i)
		}
	}
}

func TestValidateRejectsNegativeWorkers(t *testing.T) {
	if err := (Config{Groups: 2, Workers: -1}).Validate(); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestConcurrentScheduleRace hammers one shared scheduler from many
// goroutines at full pool width; run under -race it proves the precompute
// phases share nothing mutable across calls.
func TestConcurrentScheduleRace(t *testing.T) {
	s := New(Config{Groups: 4, Workers: 0})
	ctxs := make([]*sched.Context, 6)
	for g := range ctxs {
		ctxs[g] = schedtest.Homogeneous(t, 8, 40000, int64(300+g))
	}
	var wg sync.WaitGroup
	for g := 0; g < len(ctxs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := s.Schedule(ctxs[g])
			if err != nil {
				t.Error(err)
				return
			}
			if err := sched.ValidateAssignments(ctxs[g], got); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
