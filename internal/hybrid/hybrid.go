// Package hybrid implements the scheduler the paper proposes as future work
// (§VII): "a hybrid scheduling algorithm in which the conditions of the
// system and environment against pre-selected requirements function as key
// elements to select a specific behavior of the scheduling algorithm. In
// order to obtain such approach, a modular solution will be designed."
//
// The modular solution here composes the three studied algorithms behind
// one Scheduler. The requirement ("objective") may be pinned — speed routes
// to ACO, cost to HBO, balance to RBS, per the paper's own conclusions about
// which algorithm wins each objective — or left on Auto, in which case the
// scheduler inspects the environment's conditions: a wide datacenter price
// spread makes cost dominate (HBO), a heterogeneous fleet makes computation
// speed dominate (ACO), and a homogeneous plant needs only cheap balanced
// spreading (RBS).
package hybrid

import (
	"fmt"

	"bioschedsim/internal/aco"
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/hbo"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/rbs"
	"bioschedsim/internal/sched"
)

// Objective is the pre-selected requirement driving algorithm selection.
type Objective string

// Objectives.
const (
	Auto    Objective = "auto"    // inspect the environment each batch
	Speed   Objective = "speed"   // minimize simulation time → ACO
	Money   Objective = "cost"    // minimize processing cost → HBO
	Balance Objective = "balance" // spread load cheaply → RBS
)

// Config holds the hybrid parameters.
type Config struct {
	Objective Objective
	// PriceSpread is the min→max datacenter resource-price ratio above
	// which Auto treats cost as the dominant concern. Default 2.
	PriceSpread float64
	// SpeedSpread is the min→max VM MIPS ratio above which Auto treats
	// computation speed as the dominant concern. Default 2.
	SpeedSpread float64

	// Delegate configurations; zero values use each package's defaults.
	ACO aco.Config
	HBO hbo.Config
	RBS rbs.Config
}

// DefaultConfig returns an Auto-objective hybrid with spread thresholds of 2.
func DefaultConfig() Config {
	return Config{Objective: Auto, PriceSpread: 2, SpeedSpread: 2}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch c.Objective {
	case Auto, Speed, Money, Balance:
	default:
		return fmt.Errorf("hybrid: unknown objective %q", c.Objective)
	}
	if c.PriceSpread < 1 || c.SpeedSpread < 1 {
		return fmt.Errorf("hybrid: spreads must be ≥ 1, got price=%v speed=%v", c.PriceSpread, c.SpeedSpread)
	}
	return nil
}

// Scheduler is the condition-driven composite scheduler.
type Scheduler struct {
	cfg Config
	aco *aco.Scheduler
	hbo *hbo.Scheduler
	rbs *rbs.Scheduler

	lastChoice string // behaviour chosen on the most recent Schedule call
}

// New returns a hybrid scheduler; zero fields fall back to defaults.
func New(cfg Config) *Scheduler {
	def := DefaultConfig()
	if cfg.Objective == "" {
		cfg.Objective = def.Objective
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.PriceSpread == 0 {
		cfg.PriceSpread = def.PriceSpread
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.SpeedSpread == 0 {
		cfg.SpeedSpread = def.SpeedSpread
	}
	return &Scheduler{cfg: cfg, aco: aco.New(cfg.ACO), hbo: hbo.New(cfg.HBO), rbs: rbs.New(cfg.RBS)}
}

// Default returns an Auto-objective hybrid scheduler.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "hybrid" }

// LastChoice reports which behaviour ("aco", "hbo", "rbs") the most recent
// Schedule call selected; empty before the first call.
func (s *Scheduler) LastChoice() string { return s.lastChoice }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	objective := s.cfg.Objective
	if objective == Auto {
		objective = s.classify(ctx)
	}
	var delegate sched.Scheduler
	switch objective {
	case Speed:
		delegate = s.aco
	case Money:
		delegate = s.hbo
	case Balance:
		delegate = s.rbs
	default:
		return nil, fmt.Errorf("hybrid: unresolvable objective %q", objective)
	}
	s.lastChoice = delegate.Name()
	return delegate.Schedule(ctx)
}

// classify inspects the environment's conditions and picks the objective,
// implementing §VII's "conditions of the system and environment against
// pre-selected requirements".
func (s *Scheduler) classify(ctx *sched.Context) Objective {
	// Price spread across datacenters, measured on each VM's Eq. 1 rate.
	minRate, maxRate := 0.0, 0.0
	haveRate := false
	for _, vm := range ctx.VMs {
		rate := cloud.ResourceCostRate(vm)
		if rate <= 0 {
			continue
		}
		if !haveRate {
			minRate, maxRate, haveRate = rate, rate, true
			continue
		}
		if rate < minRate {
			minRate = rate
		}
		if rate > maxRate {
			maxRate = rate
		}
	}
	if haveRate && maxRate/minRate >= s.cfg.PriceSpread {
		return Money
	}
	// Compute-speed spread across the fleet, scanned over the shared layer's
	// exec-equivalence classes: the class representatives cover every
	// distinct capacity, so the spread is identical at K≤m probes.
	reps := objective.ClassesOf(ctx.VMs).Reps
	minCap, maxCap := reps[0].Capacity(), reps[0].Capacity()
	for _, vm := range reps[1:] {
		c := vm.Capacity()
		if c < minCap {
			minCap = c
		}
		if c > maxCap {
			maxCap = c
		}
	}
	if minCap > 0 && maxCap/minCap >= s.cfg.SpeedSpread {
		return Speed
	}
	return Balance
}

func init() {
	sched.Register("hybrid", func() sched.Scheduler { return Default() })
	sched.DeclareTraits("hybrid", sched.Traits{})
}
