package hybrid

import (
	"math/rand"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{Objective: "bogus", PriceSpread: 2, SpeedSpread: 2}).Validate() == nil {
		t.Fatal("bogus objective accepted")
	}
	if (Config{Objective: Auto, PriceSpread: 0.5, SpeedSpread: 2}).Validate() == nil {
		t.Fatal("sub-1 spread accepted")
	}
}

func TestPinnedObjectives(t *testing.T) {
	cases := map[Objective]string{Speed: "aco", Money: "hbo", Balance: "rbs"}
	for obj, want := range cases {
		s := New(Config{Objective: obj})
		ctx := schedtest.Heterogeneous(t, 6, 30, 5)
		got, err := s.Schedule(ctx)
		if err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		if s.LastChoice() != want {
			t.Fatalf("objective %s chose %s, want %s", obj, s.LastChoice(), want)
		}
	}
}

func TestAutoPicksCostOnWidePriceSpread(t *testing.T) {
	// schedtest.Heterogeneous has a ~4-5x price spread between datacenters.
	s := Default()
	ctx := schedtest.Heterogeneous(t, 8, 40, 3)
	if _, err := s.Schedule(ctx); err != nil {
		t.Fatal(err)
	}
	if s.LastChoice() != "hbo" {
		t.Fatalf("auto on price-spread environment chose %s, want hbo", s.LastChoice())
	}
}

func TestAutoPicksBalanceOnHomogeneousPlant(t *testing.T) {
	s := Default()
	ctx := schedtest.Homogeneous(t, 8, 40, 3)
	if _, err := s.Schedule(ctx); err != nil {
		t.Fatal(err)
	}
	if s.LastChoice() != "rbs" {
		t.Fatalf("auto on homogeneous plant chose %s, want rbs", s.LastChoice())
	}
}

func TestAutoPicksSpeedOnFastSpreadUniformPrices(t *testing.T) {
	// Build a plant with uniform prices but an 8x VM speed spread.
	hosts := []*cloud.Host{cloud.NewHost(0, cloud.NewPEs(32, 4000), 1<<24, 1<<24, 1<<36)}
	cloud.NewDatacenter(0, "dc", cloud.Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, hosts)
	vms := []*cloud.VM{
		cloud.NewVM(0, 500, 1, 512, 500, 5000),
		cloud.NewVM(1, 4000, 1, 512, 500, 5000),
	}
	for _, vm := range vms {
		if err := hosts[0].Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	cls := []*cloud.Cloudlet{
		cloud.NewCloudlet(0, 1000, 1, 300, 300),
		cloud.NewCloudlet(1, 2000, 1, 300, 300),
		cloud.NewCloudlet(2, 3000, 1, 300, 300),
	}
	ctx := &sched.Context{Cloudlets: cls, VMs: vms, Rand: rand.New(rand.NewSource(1))}
	s := Default()
	if _, err := s.Schedule(ctx); err != nil {
		t.Fatal(err)
	}
	if s.LastChoice() != "aco" {
		t.Fatalf("auto on speed-spread plant chose %s, want aco", s.LastChoice())
	}
}

func TestHybridMatchesDelegateQuality(t *testing.T) {
	// Pinned-cost hybrid must produce the same total cost as plain HBO.
	hy := New(Config{Objective: Money})
	hyAs, err := hy.Schedule(schedtest.Heterogeneous(t, 10, 80, 9))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sched.New("hbo")
	if err != nil {
		t.Fatal(err)
	}
	dAs, err := direct.Schedule(schedtest.Heterogeneous(t, 10, 80, 9))
	if err != nil {
		t.Fatal(err)
	}
	if schedtest.TotalCost(hyAs) != schedtest.TotalCost(dAs) {
		t.Fatalf("hybrid cost %v differs from HBO %v", schedtest.TotalCost(hyAs), schedtest.TotalCost(dAs))
	}
}

func TestLastChoiceEmptyBeforeUse(t *testing.T) {
	if Default().LastChoice() != "" {
		t.Fatal("LastChoice should be empty before scheduling")
	}
}

func TestNewDefaults(t *testing.T) {
	s := New(Config{})
	if s.Config().Objective != Auto || s.Config().PriceSpread != 2 || s.Config().SpeedSpread != 2 {
		t.Fatalf("defaults: %+v", s.Config())
	}
}

func TestHybridInvalidConfigSurfaces(t *testing.T) {
	s := New(Config{Objective: "bogus"})
	if _, err := s.Schedule(schedtest.Heterogeneous(t, 4, 8, 1)); err == nil {
		t.Fatal("bogus objective accepted at schedule time")
	}
}

func TestHybridContextValidation(t *testing.T) {
	if _, err := Default().Schedule(&sched.Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestHybridZeroPriceFleetFallsThrough(t *testing.T) {
	// VMs without datacenters have no price information: classify must skip
	// the cost branch and use the speed spread instead.
	vms := []*cloud.VM{
		cloud.NewVM(0, 500, 1, 512, 500, 5000),
		cloud.NewVM(1, 4000, 1, 512, 500, 5000),
	}
	cls := []*cloud.Cloudlet{cloud.NewCloudlet(0, 1000, 1, 0, 0)}
	ctx := &sched.Context{Cloudlets: cls, VMs: vms, Rand: rand.New(rand.NewSource(1))}
	s := Default()
	if _, err := s.Schedule(ctx); err != nil {
		t.Fatal(err)
	}
	if s.LastChoice() != "aco" {
		t.Fatalf("priceless fast-spread plant chose %s, want aco", s.LastChoice())
	}
}

func TestRegistered(t *testing.T) {
	s, err := sched.New("hybrid")
	if err != nil || s.Name() != "hybrid" {
		t.Fatalf("registry: %v %v", s, err)
	}
}
