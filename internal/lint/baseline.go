package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline records known, triaged findings so a new rule can land while
// its legacy findings are burned down incrementally instead of being
// suppressed in bulk. Entries are keyed by (file, rule, message) — not line —
// so unrelated edits that shift code do not invalidate the baseline, and
// Count bounds how many identical findings an entry absorbs: the file can
// only shrink, never silently grow.
type Baseline struct {
	// Schema pins the baseline format to the emitter version (SchemaVersion).
	Schema string `json:"schema"`
	// Findings are the tolerated legacy findings, sorted by file, rule,
	// message for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one tolerated legacy finding class.
type BaselineEntry struct {
	File    string `json:"file"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Count is the number of identical findings this entry absorbs (≥ 1).
	Count int `json:"count"`
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("baseline %s: schema %q does not match this binary's %q; regenerate with -write-baseline", path, b.Schema, SchemaVersion)
	}
	for i, e := range b.Findings {
		if e.File == "" || e.Rule == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline %s: entry %d is malformed (file/rule/message required, count ≥ 1)", path, i)
		}
	}
	return &b, nil
}

// NewBaseline builds a baseline absorbing exactly the given findings.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, d := range diags {
		counts[BaselineEntry{File: d.File, Rule: d.Rule, Message: d.Message}]++
	}
	b := &Baseline{Schema: SchemaVersion, Findings: make([]BaselineEntry, 0, len(counts))}
	for e, n := range counts {
		e.Count = n
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// Write renders the baseline to path as indented JSON with a trailing
// newline, the form committed to version control.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into the findings that survive (new — not absorbed by
// the baseline) and the count absorbed. Each entry absorbs at most Count
// matching findings, so a finding class that multiplies past its recorded
// count surfaces again.
func (b *Baseline) Filter(diags []Diagnostic) (kept []Diagnostic, absorbed int) {
	budget := make(map[BaselineEntry]int, len(b.Findings))
	for _, e := range b.Findings {
		key := BaselineEntry{File: e.File, Rule: e.Rule, Message: e.Message}
		budget[key] += e.Count
	}
	kept = diags[:0:0]
	for _, d := range diags {
		key := BaselineEntry{File: d.File, Rule: d.Rule, Message: d.Message}
		if budget[key] > 0 {
			budget[key]--
			absorbed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, absorbed
}
