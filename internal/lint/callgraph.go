package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// This file is the interprocedural half of the engine: a per-module static
// call graph built over the loader's shared go/types objects. Because the
// loader memoizes every module package (targets and dependencies alike) in
// one type-checker universe, a *types.Func seen at a call site in package A
// is the very same object as the one seen at its declaration in package B —
// so edges unify across packages for free.
//
// The graph is deliberately conservative on dynamic dispatch: calls through
// interface methods and through function-typed variables produce no edge.
// Rules built on the graph therefore never report a violation that cannot
// happen through the recorded static calls; they may miss violations routed
// through dynamic calls, which the dynamic invariants in internal/check
// still cover.

// sinkCall is one direct call from a module function into a standard-library
// package member (time.Now, rand.Intn, ...). Rules query these with a
// predicate; the graph does not interpret them.
type sinkCall struct {
	pkg  string // import path of the standard-library package
	name string // member name
	pos  token.Pos
}

// callEdge is one static call from a module function to another module
// function, positioned at the call expression.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// funcNode is the per-function record of the call graph.
type funcNode struct {
	fn    *types.Func
	pkg   *Package // declaring package
	decl  *ast.FuncDecl
	calls []callEdge
	sinks []sinkCall
	// communicates is the memoized goroleak property: the function body
	// directly joins/communicates (WaitGroup Done/Wait, channel op, close,
	// context use). Transitive closure is computed on demand.
	communicates bool
}

// CallGraph is the module-wide static call graph plus the derived
// fan-out-parameter facts the randshare rule consumes.
type CallGraph struct {
	nodes map[*types.Func]*funcNode
	// concurrentParams[fn][i] is true when fn's i-th parameter is a
	// function value that fn (or a fan-out function fn forwards it to)
	// invokes or references from inside a `go` statement. A closure passed
	// at such a position escapes onto another goroutine.
	concurrentParams map[*types.Func][]bool
}

// buildCallGraph constructs the graph over every loaded module package.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:            make(map[*types.Func]*funcNode),
		concurrentParams: make(map[*types.Func][]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.addFunc(canonical(fn), p, fd)
			}
		}
	}
	g.markConcurrentParams(pkgs)
	return g
}

// canonical maps a possibly-instantiated generic function to its declared
// origin so call sites and declarations key the same node.
func canonical(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// addFunc records one declared function: its static callees and its direct
// standard-library sink calls. Calls made inside function literals nested in
// the body are attributed to the enclosing declared function — a closure
// runs with the enclosing function's obligations as far as determinism
// scoping is concerned.
func (g *CallGraph) addFunc(fn *types.Func, p *Package, fd *ast.FuncDecl) {
	node := &funcNode{fn: fn, pkg: p, decl: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, spkg, sname := resolveCall(p, call)
		switch {
		case callee != nil:
			node.calls = append(node.calls, callEdge{callee: callee, pos: call.Pos()})
		case spkg != "":
			node.sinks = append(node.sinks, sinkCall{pkg: spkg, name: sname, pos: call.Pos()})
		}
		return true
	})
	node.communicates = bodyCommunicates(p, fd.Body)
	g.nodes[fn] = node
}

// resolveCall resolves a call expression to a static callee: either a
// declared function/method (callee != nil) or a standard-library package
// member (pkg, name). Interface-method and function-value calls resolve to
// neither — the conservative non-edge.
func resolveCall(p *Package, call *ast.CallExpr) (callee *types.Func, pkg, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return classifyFunc(canonical(fn), p)
		}
	case *ast.SelectorExpr:
		// Package-qualified call: pkg.Fn(...).
		if _, _, ok := pkgMember(p.Info, fun); ok {
			if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
				return classifyFunc(canonical(fn), p)
			}
			return nil, "", ""
		}
		// Method call: static only when the receiver is a concrete type.
		if sel, ok := p.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil, "", "" // dynamic dispatch: no edge
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return classifyFunc(canonical(fn), p)
			}
		}
	}
	return nil, "", ""
}

// classifyFunc splits a resolved function into a module-internal callee or a
// standard-library sink. Functions from placeholder packages (no source, no
// stub) still carry their import path, which is what sink predicates match.
func classifyFunc(fn *types.Func, p *Package) (*types.Func, string, string) {
	fp := fn.Pkg()
	if fp == nil {
		return nil, "", "" // builtins (len, append) and error.Error
	}
	if fp == p.Types || isModulePath(fp.Path(), p) {
		return fn, "", ""
	}
	return nil, fp.Path(), fn.Name()
}

// isModulePath reports whether path names a package of the module under
// analysis (p belongs to it, so its Path/Rel pair gives the module prefix).
func isModulePath(path string, p *Package) bool {
	mod := strings.TrimSuffix(p.Path, "/"+p.Rel)
	if p.Rel == "" {
		mod = p.Path
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

// node returns the graph node for fn, or nil for functions without bodies
// in the module (external, stubbed, or interface methods).
func (g *CallGraph) node(fn *types.Func) *funcNode {
	return g.nodes[canonical(fn)]
}

// SinkPath is one witness that a function transitively reaches a
// standard-library sink: the chain of module functions ending at the
// function whose body contains the sink call.
type SinkPath struct {
	Funcs []*types.Func
	Pkg   string // sink package path
	Name  string // sink member name
	Pos   token.Pos
}

// String renders the chain as "a → b → time.Now" using package-qualified
// names, ending at the sink itself.
func (sp *SinkPath) String() string {
	parts := make([]string, 0, len(sp.Funcs)+1)
	for _, fn := range sp.Funcs {
		parts = append(parts, funcDisplayName(fn))
	}
	parts = append(parts, sinkPkgBase(sp.Pkg)+"."+sp.Name)
	return strings.Join(parts, " → ")
}

// funcDisplayName renders pkg.Func or pkg.(*T).Method for diagnostics.
func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		if base := fn.Pkg().Name(); base != "" {
			return base + "." + name
		}
	}
	return name
}

// Reaches reports whether fn's body, or any module function statically
// reachable from it, calls a standard-library member matched by sink. It
// returns the first witness path found (deterministic: edges are visited in
// source order) or nil. Results are not memoized across predicates; callers
// memoize per rule via reachCache.
func (g *CallGraph) Reaches(fn *types.Func, sink func(pkg, name string) bool) *SinkPath {
	return g.reach(canonical(fn), sink, make(map[*types.Func]bool))
}

func (g *CallGraph) reach(fn *types.Func, sink func(pkg, name string) bool, seen map[*types.Func]bool) *SinkPath {
	if seen[fn] {
		return nil
	}
	seen[fn] = true
	node := g.nodes[fn]
	if node == nil {
		return nil
	}
	for _, s := range node.sinks {
		if sink(s.pkg, s.name) {
			return &SinkPath{Funcs: []*types.Func{fn}, Pkg: s.pkg, Name: s.name, Pos: s.pos}
		}
	}
	for _, e := range node.calls {
		if sp := g.reach(canonical(e.callee), sink, seen); sp != nil {
			return &SinkPath{Funcs: append([]*types.Func{fn}, sp.Funcs...), Pkg: sp.Pkg, Name: sp.Name, Pos: sp.Pos}
		}
	}
	return nil
}

// reachCache memoizes Reaches results for one (rule, run) pair so a hot
// helper queried from many call sites is walked once. It is shared across
// the per-package analysis workers, hence the lock.
type reachCache struct {
	g    *CallGraph
	sink func(pkg, name string) bool

	mu   sync.Mutex
	memo map[*types.Func]*SinkPath
}

func newReachCache(g *CallGraph, sink func(pkg, name string) bool) *reachCache {
	return &reachCache{g: g, sink: sink, memo: make(map[*types.Func]*SinkPath)}
}

func (rc *reachCache) reaches(fn *types.Func) *SinkPath {
	fn = canonical(fn)
	rc.mu.Lock()
	if sp, ok := rc.memo[fn]; ok {
		rc.mu.Unlock()
		return sp
	}
	rc.mu.Unlock()
	sp := rc.g.Reaches(fn, rc.sink)
	rc.mu.Lock()
	rc.memo[fn] = sp
	rc.mu.Unlock()
	return sp
}

// Communicates reports whether fn, or any module function statically
// reachable from it, performs a join/communication action (WaitGroup
// Done/Wait, channel send/receive/close, context use). goroleak treats a
// goroutine whose body communicates as observable — it has a join channel or
// a WaitGroup tying it back to a waiter.
func (g *CallGraph) Communicates(fn *types.Func) bool {
	return g.communicates(canonical(fn), make(map[*types.Func]bool))
}

func (g *CallGraph) communicates(fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	node := g.nodes[fn]
	if node == nil {
		return false
	}
	if node.communicates {
		return true
	}
	for _, e := range node.calls {
		if g.communicates(canonical(e.callee), seen) {
			return true
		}
	}
	return false
}

// bodyCommunicates is the direct (intra-body) half of the goroleak property.
func bodyCommunicates(p *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := p.Info.Types[e.X]; ok && t.Type != nil {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(e.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if isSyncMethod(p, fun, "WaitGroup", "Done") || isSyncMethod(p, fun, "WaitGroup", "Wait") ||
					isSyncMethod(p, fun, "Cond", "Wait") || isSyncMethod(p, fun, "Cond", "Signal") ||
					isSyncMethod(p, fun, "Cond", "Broadcast") {
					found = true
				}
				// ctx.Done(), ctx.Err(), ctx.Deadline(): context-aware
				// goroutines have a cancellation protocol.
				if spkg, _, ok := typeNamedIn(p, fun.X); ok && spkg == "context" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isSyncMethod reports whether sel is a method call named method on a value
// whose (possibly pointered) named type is sync.typeName.
func isSyncMethod(p *Package, sel *ast.SelectorExpr, typeName, method string) bool {
	if sel.Sel.Name != method {
		return false
	}
	pkg, name, ok := typeNamedIn(p, sel.X)
	return ok && pkg == "sync" && name == typeName
}

// typeNamedIn resolves expr's named type to (declaring package path, type
// name), unwrapping one pointer level.
func typeNamedIn(p *Package, expr ast.Expr) (string, string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// markConcurrentParams computes, to a fixpoint, which function parameters
// escape onto goroutines: directly (the parameter is referenced inside a
// `go` statement in the declaring body) or transitively (the parameter is
// forwarded as an argument into an already-marked position of another
// call). objective.ParallelFor's fn parameter is the canonical direct case;
// a wrapper that forwards its callback into ParallelFor is the transitive
// one.
func (g *CallGraph) markConcurrentParams(pkgs []*Package) {
	// Seed: parameters referenced inside go statements of their own body.
	for fn, node := range g.nodes {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := paramObjects(sig)
		if len(params) == 0 {
			continue
		}
		marks := make([]bool, len(params))
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			ast.Inspect(gs.Call, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := node.pkg.Info.Uses[id]
				for i, p := range params {
					if p != nil && obj == p && isFuncType(p.Type()) {
						marks[i] = true
					}
				}
				return true
			})
			return true
		})
		for _, m := range marks {
			if m {
				g.concurrentParams[fn] = marks
				break
			}
		}
	}

	// Propagate: a parameter forwarded into a concurrent position is itself
	// concurrent. Iterate to fixpoint (the forward graph is small).
	for changed := true; changed; {
		changed = false
		for fn, node := range g.nodes {
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			params := paramObjects(sig)
			if len(params) == 0 {
				continue
			}
			ast.Inspect(node.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, _, _ := resolveCall(node.pkg, call)
				if callee == nil {
					return true
				}
				cmarks := g.concurrentParams[callee]
				if cmarks == nil {
					return true
				}
				for ai, arg := range call.Args {
					if ai >= len(cmarks) || !cmarks[ai] {
						continue
					}
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := node.pkg.Info.Uses[id]
					for pi, p := range params {
						if p != nil && obj == p && isFuncType(p.Type()) {
							marks := g.concurrentParams[fn]
							if marks == nil {
								marks = make([]bool, len(params))
								g.concurrentParams[fn] = marks
							}
							if !marks[pi] {
								marks[pi] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// ConcurrentArg reports whether the i-th argument position of a call to fn
// hands the value to another goroutine.
func (g *CallGraph) ConcurrentArg(fn *types.Func, i int) bool {
	marks := g.concurrentParams[canonical(fn)]
	return i < len(marks) && marks[i]
}

// paramObjects flattens a signature's parameter objects (variadic included).
func paramObjects(sig *types.Signature) []*types.Var {
	tuple := sig.Params()
	out := make([]*types.Var, tuple.Len())
	for i := 0; i < tuple.Len(); i++ {
		out[i] = tuple.At(i)
	}
	return out
}

// isFuncType reports whether t's underlying type is a function signature.
func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
