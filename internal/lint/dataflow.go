package lint

import (
	"go/ast"
	"go/types"
)

// This file is the lightweight dataflow half of the engine: where the call
// graph answers "who calls whom", these helpers answer "where did this value
// come from" — through simple assignments, call arguments, and closure
// captures. The analysis is intentionally shallow (no heap modeling, no
// aliasing through containers): rules use it to distinguish a value created
// inside a scope from one captured across a concurrency boundary, which is
// exactly the split-don't-share question the determinism model asks.

// declaredWithin reports whether obj's declaration lies inside node's source
// range — the test for "is this variable local to the closure or captured
// from the enclosing function".
func declaredWithin(obj types.Object, node ast.Node) bool {
	if obj == nil || node == nil {
		return false
	}
	pos := obj.Pos()
	return pos >= node.Pos() && pos < node.End()
}

// rootIdent walks selector/index/star chains to the base identifier:
// r.ctx.Rand → r, streams[i] → streams. Call results have no root — the
// value was produced, not read — so any chain passing through a call
// returns nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// originExpr finds the expression a variable was initialized from inside
// scope: the RHS of its `:=` / var declaration. It returns nil when the
// variable is not declared in scope or has no single initializer (e.g. a
// plain `var x T` later assigned).
func originExpr(p *Package, scope ast.Node, obj types.Object) ast.Expr {
	var origin ast.Expr
	ast.Inspect(scope, func(n ast.Node) bool {
		if origin != nil {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || p.Info.Defs[id] != obj {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					origin = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					origin = st.Rhs[0] // multi-value call: the call expression
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if p.Info.Defs[name] != obj {
					continue
				}
				if i < len(st.Values) {
					origin = st.Values[i]
				}
			}
		}
		return origin == nil
	})
	return origin
}

// capturedFrom reports whether an identifier use inside scope ultimately
// reads state captured from outside scope, following alias chains
// (`r2 := r; r2.Intn(n)` captures whatever r captures). A chain ending at a
// call expression originates inside the scope — calls produce fresh values —
// and a chain ending at a parameter of the scope's own function literal is
// local by definition. depth bounds pathological alias chains.
func capturedFrom(p *Package, scope ast.Node, id *ast.Ident, depth int) bool {
	if depth <= 0 {
		return true // give up conservatively: treat as captured
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	if !declaredWithin(obj, scope) {
		return true
	}
	// Declared inside the scope: fresh unless it merely aliases a captured
	// value.
	origin := originExpr(p, scope, obj)
	if origin == nil {
		return false
	}
	switch o := ast.Unparen(origin).(type) {
	case *ast.CallExpr:
		return false // produced inside the scope
	case *ast.UnaryExpr, *ast.CompositeLit:
		return false
	default:
		if root := rootIdent(o); root != nil {
			return capturedFrom(p, scope, root, depth-1)
		}
		_ = o
	}
	return false
}

// constructsLocally reports whether the variable behind root was initialized
// in fn's body from a composite literal (optionally address-taken) of any
// type — i.e. the enclosing function is constructing the value, so it is not
// yet shared with other goroutines. lockheld uses this to exempt
// constructor-style field initialization from guarded-field findings.
func constructsLocally(p *Package, fn ast.Node, root *ast.Ident) bool {
	obj := p.Info.Uses[root]
	if obj == nil {
		obj = p.Info.Defs[root]
	}
	if obj == nil || !declaredWithin(obj, fn) {
		return false
	}
	origin := originExpr(p, fn, obj)
	if origin == nil {
		return false
	}
	switch o := ast.Unparen(origin).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := ast.Unparen(o.X).(*ast.CompositeLit)
		return lit
	}
	return false
}
