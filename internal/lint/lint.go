// Package lint is schedlint's analysis engine: a zero-dependency static
// analyzer (go/parser + go/ast + go/token + go/types only) that enforces the
// repository's determinism, simulated-clock, float-safety, and concurrency
// invariants.
//
// The paper's comparisons are only reproducible when every scheduler run is a
// pure function of its inputs and seed. That discipline is threaded through
// the code by convention — randomness flows through an injected *rand.Rand
// (internal/xrand) and is split, never shared, across goroutines; simulation
// code reads time only from the engine's simulated clock; Eq. 12/13 style
// float accumulations are never compared exactly. One stray global rand call,
// wall-clock read, or shared stream silently breaks replays; this package
// turns each convention into a machine-checked rule:
//
//   - detrand:   no global math/rand functions (and no wall-clock-seeded
//     rand.New) in deterministic packages — including transitively, through
//     helpers in other module packages (the call graph proves it).
//   - simclock:  no time.Now/Since/Sleep/... in simulation and scheduler
//     packages, directly or through any statically reachable helper.
//   - floateq:   no ==/!= between floating-point operands in scheduler and
//     objective code.
//   - noprint:   no fmt.Print*/println, log.Print*/Fatal*/Panic*, or
//     os.Stdout/os.Stderr writes in library packages; output goes through
//     internal/report.
//   - mutexcopy: no by-value copies of types that contain a sync lock.
//   - randshare: no *rand.Rand / xrand.Source value captured by a goroutine
//     closure or a worker-pool callback (objective.ParallelFor and friends);
//     derive a per-index child stream instead (PR 5 determinism model).
//   - lockheld:  no channel operations or blocking waits while holding a
//     mutex, and no access to a "// guarded by: mu" field without the lock.
//   - goroleak:  no goroutine launched in internal/ without a visible join
//     (sync.WaitGroup, channel, or context).
//
// The engine is interprocedural: the loader type-checks every module package
// once into one shared universe, a static call graph links them
// (conservative on dynamic dispatch), and a lightweight dataflow layer
// distinguishes values created inside a concurrency scope from values
// captured across it.
//
// A finding can be suppressed, with an audit trail, by a comment on the same
// line or the line above:
//
//	//schedlint:ignore <rule> <reason>
//
// The reason is mandatory; malformed or unknown-rule directives are
// themselves diagnosed (rule "ignore") so typos cannot silently disable a
// check. Legacy findings can instead be carried in a baseline file (see
// Baseline), which new rules use to land without bulk suppressions.
package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// SchemaVersion names the diagnostic output schema emitted by the JSON and
// SARIF writers and recorded in baseline files. The three surfaces version
// together: bump once here when any of them changes shape.
const SchemaVersion = "schedlint/v2"

// Diagnostic is one finding, positioned at a module-root-relative file path.
// The JSON field names are a stable schema consumed by CI tooling.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Rule is one named invariant check. Check appends findings for a single
// loaded package; the engine handles scoping, suppression, and ordering.
type Rule struct {
	// Name is the identifier used by -rules and //schedlint:ignore.
	Name string
	// Doc is a one-line description shown by schedlint -list.
	Doc string
	// Scope reports whether the rule applies to a package, identified by its
	// module-root-relative path (e.g. "internal/sched", "cmd/schedd").
	Scope func(rel string) bool
	// Check reports findings via report; positions are token.Pos values in
	// the package's FileSet. a carries the whole-module context (call graph,
	// every loaded package) for interprocedural rules.
	Check func(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any))
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is any directory inside the target module; the engine walks up to
	// the enclosing go.mod. Empty means ".".
	Dir string
	// Patterns are package patterns relative to Dir: a directory path like
	// ./internal/sched, or a tree like ./... . Empty means ["./..."].
	Patterns []string
	// Rules are the enabled rule names; empty means all registered rules.
	Rules []string
	// Workers bounds the per-package analysis fan-out under the repository
	// convention: 0 means GOMAXPROCS, 1 forces serial. Loading and
	// type-checking are always performed once per package regardless;
	// workers only parallelize rule application, whose output is ordered by
	// the final sort and therefore identical at every worker count.
	Workers int
	// Baseline is an optional path to a baseline file (see Baseline): known
	// findings recorded there are filtered from the result and counted in
	// Result.Baselined instead.
	Baseline string
	// Cache optionally shares loaded, type-checked packages across Run
	// calls. Every package is parsed and type-checked at most once per
	// Cache lifetime; the zero Config loads fresh. Sources must not change
	// for the lifetime of a Cache.
	Cache *Cache
}

// Result is a completed analysis.
type Result struct {
	// Diags are the surviving findings, sorted by file, line, column, rule.
	Diags []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
	// Baselined counts findings absorbed by the Config.Baseline file.
	Baselined int
}

// Analysis is the whole-module context handed to every rule: all loaded
// packages (targets and dependencies in one type-checker universe) and the
// static call graph over them.
type Analysis struct {
	// Pkgs is every loaded module package, sorted by import path.
	Pkgs []*Package
	// Graph is the module-wide static call graph.
	Graph *CallGraph

	byTypes map[*types.Package]*Package

	mu    sync.Mutex
	reach map[string]*reachCache
}

func newAnalysis(pkgs []*Package) *Analysis {
	a := &Analysis{
		Pkgs:    pkgs,
		Graph:   buildCallGraph(pkgs),
		byTypes: make(map[*types.Package]*Package, len(pkgs)),
		reach:   make(map[string]*reachCache),
	}
	for _, p := range pkgs {
		if p.Types != nil {
			a.byTypes[p.Types] = p
		}
	}
	return a
}

// RelOf resolves a loaded types.Package back to its module-root-relative
// directory. ok is false for standard-library stubs and placeholders.
func (a *Analysis) RelOf(tp *types.Package) (string, bool) {
	p, ok := a.byTypes[tp]
	if !ok {
		return "", false
	}
	return p.Rel, true
}

// reachCacheFor returns the shared, concurrency-safe sink-reachability cache
// for one rule, so a hot helper queried from many packages is walked once.
func (a *Analysis) reachCacheFor(rule string, sink func(pkg, name string) bool) *reachCache {
	a.mu.Lock()
	defer a.mu.Unlock()
	rc, ok := a.reach[rule]
	if !ok {
		rc = newReachCache(a.Graph, sink)
		a.reach[rule] = rc
	}
	return rc
}

// Rules returns the registered rules in their canonical order.
func Rules() []Rule { return registry }

// RuleNames returns the registered rule names in canonical order.
func RuleNames() []string {
	names := make([]string, len(registry))
	for i, r := range registry {
		names[i] = r.Name
	}
	return names
}

// Run loads every package matched by cfg and applies the enabled rules.
// It returns an error only for environmental failures (no module, bad
// pattern, unknown rule name, unreadable baseline); findings are data, not
// errors.
func Run(cfg Config) (*Result, error) {
	rules, err := selectRules(cfg.Rules)
	if err != nil {
		return nil, err
	}
	var baseline *Baseline
	if cfg.Baseline != "" {
		baseline, err = LoadBaseline(cfg.Baseline)
		if err != nil {
			return nil, err
		}
	}
	ld, err := cfg.loader()
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := ld.loadPatterns(patterns)
	if err != nil {
		return nil, err
	}
	analysis := newAnalysis(ld.allLoaded())

	// Per-package rule application fans out across the worker pool; each
	// worker writes only its own package's slot, and the final merge+sort is
	// order-insensitive, so results are bit-identical at every worker count
	// — the same contract the engine enforces on the code it lints.
	perPkg := make([][]Diagnostic, len(pkgs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	analyze := func(i int) {
		p := pkgs[i]
		sup := scanSuppressions(p, ld.relFile)
		diags := append([]Diagnostic(nil), sup.malformed...)
		for _, r := range rules {
			if r.Scope != nil && !r.Scope(p.Rel) {
				continue
			}
			rule := r // capture for the closure below
			r.Check(analysis, p, func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				d := Diagnostic{
					File:    ld.relFile(position.Filename),
					Line:    position.Line,
					Col:     position.Column,
					Rule:    rule.Name,
					Message: fmt.Sprintf(format, args...),
				}
				if sup.suppresses(d) {
					return
				}
				diags = append(diags, d)
			})
		}
		perPkg[i] = diags
	}
	if workers <= 1 {
		for i := range pkgs {
			analyze(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					analyze(i)
				}
			}()
		}
		for i := range pkgs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	res := &Result{Diags: diags, Packages: len(pkgs)}
	if baseline != nil {
		res.Diags, res.Baselined = baseline.Filter(res.Diags)
	}
	return res, nil
}

// selectRules resolves names against the registry, defaulting to all.
func selectRules(names []string) ([]Rule, error) {
	if len(names) == 0 {
		return registry, nil
	}
	byName := make(map[string]Rule, len(registry))
	for _, r := range registry {
		byName[r.Name] = r
	}
	var out []Rule
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", n, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}

// inScope reports whether module-relative path rel is pkgs[i] or below it.
func inScope(rel string, pkgs []string) bool {
	for _, p := range pkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// underDir reports whether rel sits under the given top-level directory.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}
