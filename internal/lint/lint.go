// Package lint is schedlint's analysis engine: a zero-dependency static
// analyzer (go/parser + go/ast + go/token + go/types only) that enforces the
// repository's determinism, simulated-clock, and float-safety invariants.
//
// The paper's comparisons are only reproducible when every scheduler run is a
// pure function of its inputs and seed. That discipline is threaded through
// the code by convention — randomness flows through an injected *rand.Rand
// (internal/xrand), simulation code reads time only from the engine's
// simulated clock, and Eq. 12/13 style float accumulations are never compared
// exactly. One stray global rand call or wall-clock read silently breaks
// replays; this package turns each convention into a machine-checked rule:
//
//   - detrand:   no global math/rand functions (and no wall-clock-seeded
//     rand.New) in deterministic packages.
//   - simclock:  no time.Now/Since/Sleep/... in simulation and scheduler
//     packages; the engine's simulated clock is the only legal time source.
//   - floateq:   no ==/!= between floating-point operands in scheduler and
//     objective code.
//   - noprint:   no fmt.Print*/println in library packages; output goes
//     through internal/report.
//   - mutexcopy: no by-value copies of types that contain a sync lock.
//
// A finding can be suppressed, with an audit trail, by a comment on the same
// line or the line above:
//
//	//schedlint:ignore <rule> <reason>
//
// The reason is mandatory; malformed or unknown-rule directives are
// themselves diagnosed (rule "ignore") so typos cannot silently disable a
// check.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a module-root-relative file path.
// The JSON field names are a stable schema consumed by CI tooling.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// Rule is one named invariant check. Check appends findings for a single
// loaded package; the engine handles scoping, suppression, and ordering.
type Rule struct {
	// Name is the identifier used by -rules and //schedlint:ignore.
	Name string
	// Doc is a one-line description shown by schedlint -list.
	Doc string
	// Scope reports whether the rule applies to a package, identified by its
	// module-root-relative path (e.g. "internal/sched", "cmd/schedd").
	Scope func(rel string) bool
	// Check reports findings via report; positions are token.Pos values in
	// the package's FileSet.
	Check func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is any directory inside the target module; the engine walks up to
	// the enclosing go.mod. Empty means ".".
	Dir string
	// Patterns are package patterns relative to Dir: a directory path like
	// ./internal/sched, or a tree like ./... . Empty means ["./..."].
	Patterns []string
	// Rules are the enabled rule names; empty means all registered rules.
	Rules []string
}

// Result is a completed analysis.
type Result struct {
	// Diags are the surviving findings, sorted by file, line, column, rule.
	Diags []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
}

// Rules returns the registered rules in their canonical order.
func Rules() []Rule { return registry }

// RuleNames returns the registered rule names in canonical order.
func RuleNames() []string {
	names := make([]string, len(registry))
	for i, r := range registry {
		names[i] = r.Name
	}
	return names
}

// Run loads every package matched by cfg and applies the enabled rules.
// It returns an error only for environmental failures (no module, bad
// pattern, unknown rule name); findings are data, not errors.
func Run(cfg Config) (*Result, error) {
	rules, err := selectRules(cfg.Rules)
	if err != nil {
		return nil, err
	}
	ld, err := newLoader(cfg.Dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := ld.loadPatterns(patterns)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		sup := scanSuppressions(p, ld.relFile)
		diags = append(diags, sup.malformed...)
		for _, r := range rules {
			if r.Scope != nil && !r.Scope(p.Rel) {
				continue
			}
			rule := r // capture for the closure below
			r.Check(p, func(pos token.Pos, format string, args ...any) {
				position := p.Fset.Position(pos)
				d := Diagnostic{
					File:    ld.relFile(position.Filename),
					Line:    position.Line,
					Col:     position.Column,
					Rule:    rule.Name,
					Message: fmt.Sprintf(format, args...),
				}
				if sup.suppresses(d) {
					return
				}
				diags = append(diags, d)
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return &Result{Diags: diags, Packages: len(pkgs)}, nil
}

// selectRules resolves names against the registry, defaulting to all.
func selectRules(names []string) ([]Rule, error) {
	if len(names) == 0 {
		return registry, nil
	}
	byName := make(map[string]Rule, len(registry))
	for _, r := range registry {
		byName[r.Name] = r
	}
	var out []Rule
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", n, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return out, nil
}

// inScope reports whether module-relative path rel is pkgs[i] or below it.
func inScope(rel string, pkgs []string) bool {
	for _, p := range pkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// underDir reports whether rel sits under the given top-level directory.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}
