package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// fixtureCase drives one golden-source module under testdata/src. want maps
// "file:line" (module-relative) to the rules expected to fire there, in the
// engine's sorted order; every other line must stay clean.
type fixtureCase struct {
	name  string
	rules []string
	want  map[string][]string
}

func fixtureCases() []fixtureCase {
	return []fixtureCase{
		{
			name:  "detrand",
			rules: []string{"detrand"},
			want: map[string][]string{
				"internal/sched/fixture.go:13": {"detrand"},
				"internal/sched/fixture.go:18": {"detrand"},
				"internal/sched/fixture.go:19": {"detrand"},
				"internal/sched/fixture.go:20": {"detrand", "detrand"},
				"internal/sched/fixture.go:25": {"detrand"},
			},
		},
		{
			name:  "simclock",
			rules: []string{"simclock"},
			want: map[string][]string{
				"internal/sim/fixture.go:10": {"simclock"},
				"internal/sim/fixture.go:11": {"simclock"},
				"internal/sim/fixture.go:15": {"simclock"},
				"internal/sim/fixture.go:20": {"simclock"},
				"internal/sim/fixture.go:22": {"simclock"},
				// internal/service and cmd/tool read the clock too, but sit
				// outside the rule's scope: nothing expected there.
			},
		},
		{
			name:  "floateq",
			rules: []string{"floateq"},
			want: map[string][]string{
				"internal/objective/fixture.go:12": {"floateq"},
				"internal/objective/fixture.go:13": {"floateq"},
				"internal/objective/fixture.go:18": {"floateq"},
				"internal/objective/fixture.go:23": {"floateq"},
			},
		},
		{
			name:  "noprint",
			rules: []string{"noprint"},
			want: map[string][]string{
				"internal/foo/fixture.go:18": {"noprint"},
				"internal/foo/fixture.go:19": {"noprint"},
				"internal/foo/fixture.go:20": {"noprint"},
				"internal/foo/fixture.go:42": {"noprint"},
				"internal/foo/fixture.go:43": {"noprint"},
				"internal/foo/fixture.go:49": {"noprint"},
				"internal/foo/fixture.go:50": {"noprint"},
			},
		},
		{
			name:  "mutexcopy",
			rules: []string{"mutexcopy"},
			want: map[string][]string{
				"internal/foo/fixture.go:20": {"mutexcopy"},
				"internal/foo/fixture.go:25": {"mutexcopy"},
				"internal/foo/fixture.go:31": {"mutexcopy"},
				"internal/foo/fixture.go:38": {"mutexcopy"},
				"internal/foo/fixture.go:46": {"mutexcopy"},
			},
		},
		{
			name:  "randshare",
			rules: []string{"randshare"},
			want: map[string][]string{
				"internal/sched/fixture.go:19": {"randshare"},
				"internal/sched/fixture.go:28": {"randshare"},
				"internal/sched/fixture.go:36": {"randshare"},
				"internal/sched/fixture.go:44": {"randshare"},
				"internal/sched/fixture.go:45": {"randshare"},
				"internal/sched/fixture.go:52": {"randshare"},
				"internal/sched/fixture.go:68": {"randshare"},
			},
		},
		{
			name:  "lockheld",
			rules: []string{"lockheld"},
			want: map[string][]string{
				"internal/foo/fixture.go:25":  {"lockheld"},
				"internal/foo/fixture.go:42":  {"lockheld"},
				"internal/foo/fixture.go:51":  {"lockheld"},
				"internal/foo/fixture.go:58":  {"lockheld"},
				"internal/foo/fixture.go:66":  {"lockheld"},
				"internal/foo/fixture.go:110": {"lockheld"},
				"internal/foo/fixture.go:113": {"lockheld"},
			},
		},
		{
			name:  "goroleak",
			rules: []string{"goroleak"},
			want: map[string][]string{
				"internal/foo/fixture.go:11": {"goroleak"},
				"internal/foo/fixture.go:22": {"goroleak"},
				// cmd/tool launches fire-and-forget too, but commands are out
				// of scope: nothing expected there.
			},
		},
		{
			name:  "interproc",
			rules: []string{"detrand", "simclock"},
			want: map[string][]string{
				"internal/sched/fixture.go:12": {"detrand"},
				"internal/sim/fixture.go:12":   {"simclock"},
			},
		},
		{
			name:  "ignore",
			rules: []string{"floateq"},
			want: map[string][]string{
				"internal/objective/fixture.go:29": {"floateq"},
				"internal/objective/fixture.go:37": {"floateq"},
				"internal/objective/fixture.go:43": {"ignore"},
				"internal/objective/fixture.go:44": {"floateq"},
				"internal/objective/fixture.go:50": {"ignore"},
				"internal/objective/fixture.go:51": {"floateq"},
			},
		},
	}
}

func TestRulesOnFixtures(t *testing.T) {
	for _, tc := range fixtureCases() {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{
				Dir:   filepath.Join("testdata", "src", tc.name),
				Rules: tc.rules,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := make(map[string][]string)
			for _, d := range res.Diags {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				got[key] = append(got[key], d.Rule)
			}
			for _, rules := range got {
				sort.Strings(rules)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull:\n%s", got, tc.want, renderDiags(res.Diags))
			}
		})
	}
}

func renderDiags(diags []Diagnostic) string {
	out := ""
	for _, d := range diags {
		out += d.String() + "\n"
	}
	return out
}

// TestSelfClean pins the acceptance criterion: the repository's own tree has
// zero findings under every rule (all remaining float sentinels carry
// justified suppressions).
func TestSelfClean(t *testing.T) {
	res, err := Run(Config{Dir: "../.."})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diags) != 0 {
		t.Errorf("repository is not schedlint-clean:\n%s", renderDiags(res.Diags))
	}
	if res.Packages < 20 {
		t.Errorf("expected to analyze the whole module, got only %d packages", res.Packages)
	}
}

// TestSeededViolation proves the gate trips: a global math/rand call written
// into a scratch module's internal/sched package must produce a detrand
// diagnostic with its file:line.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "sched")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded.example/repo\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "bad.go"),
		"package sched\n\nimport \"math/rand\"\n\nfunc pick(n int) int {\n\treturn rand.Intn(n)\n}\n")

	res, err := Run(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("want exactly one finding, got %d:\n%s", len(res.Diags), renderDiags(res.Diags))
	}
	d := res.Diags[0]
	if d.Rule != "detrand" || d.File != "internal/sched/bad.go" || d.Line != 6 {
		t.Errorf("want detrand at internal/sched/bad.go:6, got %s", d.String())
	}
}

// TestSeededRandShareViolation pins the PR's both-ways acceptance criterion
// for randshare: a shared stream captured by a goroutine closure, planted in
// a scratch module, is flagged with its exact file:line:col; the surrounding
// clean derivation is not.
func TestSeededRandShareViolation(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "worker")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module seeded.example/repo\n\ngo 1.22\n")
	writeFile(t, filepath.Join(pkg, "bad.go"), `package worker

import "math/rand"

func fanOut(r *rand.Rand, out chan<- int) {
	go func() {
		out <- r.Intn(100)
	}()
	go func() {
		local := rand.New(rand.NewSource(7))
		out <- local.Intn(100)
	}()
}
`)

	res, err := Run(Config{Dir: dir, Rules: []string{"randshare"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("want exactly one finding, got %d:\n%s", len(res.Diags), renderDiags(res.Diags))
	}
	d := res.Diags[0]
	if d.Rule != "randshare" || d.File != "internal/worker/bad.go" || d.Line != 7 || d.Col != 10 {
		t.Errorf("want randshare at internal/worker/bad.go:7:10, got %s", d.String())
	}
}

func TestUnknownRule(t *testing.T) {
	if _, err := Run(Config{Dir: "../..", Rules: []string{"nosuchrule"}}); err == nil {
		t.Fatal("want error for unknown rule, got nil")
	}
}

func TestRuleNamesStable(t *testing.T) {
	want := []string{"detrand", "simclock", "floateq", "noprint", "mutexcopy", "randshare", "lockheld", "goroleak"}
	if got := RuleNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("rule registry changed: got %v want %v (names are suppression/CLI API)", got, want)
	}
}

// TestCacheEquivalence: analyses through a shared Cache are bit-identical
// to fresh loads — the cache only skips re-parsing and re-type-checking.
func TestCacheEquivalence(t *testing.T) {
	fresh, err := Run(Config{Dir: "../.."})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cache := NewCache()
	for i := 0; i < 2; i++ {
		cached, err := Run(Config{Dir: "../..", Cache: cache})
		if err != nil {
			t.Fatalf("cached Run %d: %v", i, err)
		}
		if !reflect.DeepEqual(fresh.Diags, cached.Diags) || fresh.Packages != cached.Packages {
			t.Errorf("cached run %d differs: fresh %d diags / %d pkgs, cached %d diags / %d pkgs",
				i, len(fresh.Diags), fresh.Packages, len(cached.Diags), cached.Packages)
		}
	}
}

// BenchmarkRunRepo measures a full-module analysis with a cold loader: every
// iteration parses and type-checks the whole repository.
func BenchmarkRunRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Dir: "../.."})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Diags) != 0 {
			b.Fatalf("repo not clean: %d findings", len(res.Diags))
		}
	}
}

// BenchmarkRunRepoCached is the same analysis through a shared Cache: after
// the first iteration every package is served from the memoized universe, so
// the delta against BenchmarkRunRepo is the parse+type-check cost the cache
// eliminates for repeated Run calls (the schedlint CLI calls Run once per
// invocation, but editor/watch integrations and the test suite call it many
// times).
func BenchmarkRunRepoCached(b *testing.B) {
	cache := NewCache()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Dir: "../..", Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Diags) != 0 {
			b.Fatalf("repo not clean: %d findings", len(res.Diags))
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
