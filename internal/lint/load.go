package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (module path + "/" + Rel).
	Path string
	// Rel is the module-root-relative directory, "" for the root package.
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Fset positions every file in the loader's shared FileSet.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (possibly with swallowed errors).
	Types *types.Package
	// Info holds the recorded type information rules consult.
	Info *types.Info
}

// loader resolves and type-checks module packages without any external
// tooling. Module-internal imports are loaded recursively from source;
// standard-library imports resolve to the embedded stubs (stubs.go) or, for
// packages no rule inspects, to empty placeholder packages. Swallowing the
// resulting "undeclared name" errors is deliberate: every rule works from
// qualified-identifier resolution and module-local type information, both of
// which survive partial type-checking.
//
// Every package is parsed and type-checked exactly once per loader: targets
// and dependencies share one memoized universe (pkgs), so analyzing N
// packages that all import internal/cloud type-checks internal/cloud once,
// not N times. mu serializes the recursive load so a loader — and therefore
// a Cache — may be shared across goroutines and Run calls.
type loader struct {
	mu      sync.Mutex
	fset    *token.FileSet
	modPath string // module path from go.mod
	modRoot string // absolute directory containing go.mod
	pkgs    map[string]*Package
	loading map[string]bool
	fakes   map[string]*types.Package
}

// Cache shares loaders — and with them every parsed, type-checked package —
// across Run calls, keyed by resolved module root. A CLI process or a test
// binary that analyzes the same module repeatedly pays the parse+check cost
// once; see BenchmarkRunRepoCached. Sources must not change for the
// lifetime of a Cache.
type Cache struct {
	mu      sync.Mutex
	loaders map[string]*loader
}

// NewCache returns an empty shared load cache.
func NewCache() *Cache {
	return &Cache{loaders: make(map[string]*loader)}
}

// loader resolves cfg's Dir to a loader, reusing the Cache's instance for
// that module root when a Cache is configured.
func (cfg Config) loader() (*loader, error) {
	if cfg.Cache == nil {
		return newLoader(cfg.Dir)
	}
	cfg.Cache.mu.Lock()
	defer cfg.Cache.mu.Unlock()
	// Resolve the module root first so "." and an absolute path to the same
	// module share one loader.
	probe, err := newLoader(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if ld, ok := cfg.Cache.loaders[probe.modRoot]; ok {
		return ld, nil
	}
	cfg.Cache.loaders[probe.modRoot] = probe
	return probe, nil
}

// allLoaded returns every package the loader has materialized — targets and
// transitively loaded dependencies — sorted by import path. This is the
// universe the call graph is built over.
func (l *loader) allLoaded() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// newLoader walks up from dir to the enclosing go.mod.
func newLoader(dir string) (*loader, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found in or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &loader{
		fset:    token.NewFileSet(),
		modPath: modPath,
		modRoot: root,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		fakes:   make(map[string]*types.Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", file)
}

// relFile rewrites an absolute file name to a module-root-relative one so
// diagnostics and golden files are stable across checkouts.
func (l *loader) relFile(name string) string {
	if rel, err := filepath.Rel(l.modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// loadPatterns expands patterns (relative to the module root) into package
// directories and loads each one. Results are sorted by import path.
func (l *loader) loadPatterns(patterns []string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := filepath.Join(l.modRoot, filepath.FromSlash(pat))
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory under the module root", pat)
		}
		if !recursive {
			if hasGoFiles(dir) {
				dirs[dir] = true
			}
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	out := make([]*Package, 0, len(sorted))
	for _, d := range sorted {
		p, err := l.load(l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// load parses and type-checks one module package, memoized by import path.
// It is the locked public entry; the recursive work happens in loadLocked.
func (l *loader) load(importPath string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadLocked(importPath)
}

// loadLocked does the real load under l.mu (the import callback re-enters it
// for module-internal dependencies, so it must not lock).
func (l *loader) loadLocked(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("package %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %s: no non-test Go files in %s", importPath, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    (*stubImporter)(l),
		FakeImportC: true,
		// Partial type information is expected (stubbed imports); rules are
		// written to tolerate it, so type errors are swallowed.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	p := &Package{
		Path:  importPath,
		Rel:   filepath.ToSlash(rel),
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// stubImporter resolves imports during type-checking: module-internal
// packages load from source, stubbed standard-library packages type-check
// from the embedded sources, and everything else becomes an empty named
// placeholder.
type stubImporter loader

func (im *stubImporter) Import(importPath string) (*types.Package, error) {
	l := (*loader)(im)
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/") {
		p, err := l.loadLocked(importPath)
		if err != nil {
			// A broken internal import degrades to a placeholder so the
			// importing package still gets checked.
			return l.fake(importPath), nil
		}
		return p.Types, nil
	}
	if src, ok := stdStubs[importPath]; ok {
		return l.stub(importPath, src), nil
	}
	return l.fake(importPath), nil
}

// stub type-checks an embedded standard-library stub once and caches it.
func (l *loader) stub(importPath, src string) *types.Package {
	if p, ok := l.fakes[importPath]; ok {
		return p
	}
	f, err := parser.ParseFile(l.fset, "stub:"+importPath, src, parser.SkipObjectResolution)
	if err != nil {
		panic(fmt.Sprintf("lint: bad embedded stub for %s: %v", importPath, err))
	}
	conf := types.Config{Importer: (*stubImporter)(l), Error: func(error) {}}
	p, _ := conf.Check(importPath, l.fset, []*ast.File{f}, nil)
	p.MarkComplete()
	l.fakes[importPath] = p
	return p
}

// fake returns an empty placeholder package whose name is the last path
// element, which is what qualified-identifier resolution needs.
func (l *loader) fake(importPath string) *types.Package {
	if p, ok := l.fakes[importPath]; ok {
		return p
	}
	p := types.NewPackage(importPath, path.Base(importPath))
	p.MarkComplete()
	l.fakes[importPath] = p
	return p
}
