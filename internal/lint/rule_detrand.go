package lint

import (
	"go/ast"
	"go/token"
)

// randGlobals are the package-level math/rand (and math/rand/v2) functions
// that draw from the shared, interleaving-dependent global source. The
// constructors New/NewSource/NewZipf are deliberately absent: building an
// explicitly seeded generator is the sanctioned pattern.
var randGlobals = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// checkDetRand enforces the determinism contract for randomness: every draw
// in a deterministic package must come through an injected *rand.Rand (built
// from internal/xrand streams), never the global math/rand source, and a
// local generator must not be seeded from the wall clock. The direct walk
// below covers this package's own bodies; the interprocedural pass then
// follows every static call that leaves the deterministic set into helper
// packages, so a convenience wrapper three calls deep drawing from the
// global source is flagged at the call site that imports the
// nondeterminism.
func checkDetRand(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	reportTransitiveSinks(a, p, "detrand",
		func(rel string) bool { return inScope(rel, deterministicPkgs) },
		func(pkg, name string) bool {
			return (pkg == "math/rand" || pkg == "math/rand/v2") && randGlobals[name]
		},
		report)
	walkFiles(p, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			pkg, name, ok := pkgMember(p.Info, e)
			if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
				return true
			}
			if randGlobals[name] {
				report(e.Pos(), "global %s.%s draws from the process-wide source; inject a seeded *rand.Rand (internal/xrand) instead", pkg, name)
			}
		case *ast.CallExpr:
			if clock := wallClockSeed(p, e); clock != "" {
				report(e.Pos(), "rand generator seeded from wall clock (%s); derive the seed from configuration so runs replay", clock)
			}
		}
		return true
	})
}

// wallClockSeed reports (as "time.X") a wall-clock read anywhere inside the
// arguments of a rand.New/rand.NewSource call, catching the classic
// rand.New(rand.NewSource(time.Now().UnixNano())) anti-pattern even when the
// surrounding package is exempt from simclock.
func wallClockSeed(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkg, name, ok := pkgMember(p.Info, sel)
	if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || (name != "New" && name != "NewSource") {
		return ""
	}
	// rand.New(rand.NewSource(...)) nests two matching calls; let the inner
	// NewSource report so one expression yields one diagnostic.
	if name == "New" {
		for _, arg := range call.Args {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if s, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if ipkg, iname, ok := pkgMember(p.Info, s); ok && ipkg == pkg && iname == "NewSource" {
						return ""
					}
				}
			}
		}
	}
	for _, arg := range call.Args {
		var found string
		ast.Inspect(arg, func(n ast.Node) bool {
			s, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, member, ok := pkgMember(p.Info, s); ok && pkg == "time" && member == "Now" {
				found = "time.Now"
				return false
			}
			return true
		})
		if found != "" {
			return found
		}
	}
	return ""
}
