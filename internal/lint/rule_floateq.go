package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatEq flags exact equality between floating-point operands in
// scheduler/objective code. Fitness values there are sums over execution
// times (Eq. 8, Eq. 12/13) whose low bits depend on accumulation order, so
// `a == b` is a latent bug: two mathematically equal schedules can compare
// unequal (breaking tie-breaks and convergence tests) or, worse, an
// optimization that reorders a loop changes behavior. Comparisons where both
// sides are compile-time constants are allowed — those are exact by
// construction.
func checkFloatEq(_ *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	walkFiles(p, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, xok := p.Info.Types[be.X]
		yt, yok := p.Info.Types[be.Y]
		if !xok || !yok {
			return true
		}
		if xt.Value != nil && yt.Value != nil { // constant-folded: exact
			return true
		}
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		report(be.Pos(), "floating-point %s comparison; accumulation order makes exact equality unreliable — compare with an epsilon or an integer representation", be.Op)
		return true
	})
}

// isFloat reports whether t is (or is named with underlying) float32/64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
