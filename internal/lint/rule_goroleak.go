package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoroLeak flags goroutines launched in library packages with no
// visible join protocol. An unjoined goroutine outlives the work it serves:
// the daemon's graceful drain can return while it still touches a session,
// tests pass while it races the next one, and under -race the schedule that
// exposes it may never occur. Every sanctioned launch in this repository is
// tied back to a waiter somehow — sync.WaitGroup Add/Done/Wait, a result or
// done channel, or a context — so the rule asks only that the goroutine's
// body (or, via the call graph, anything it statically calls) communicates:
//
//   - a WaitGroup Done/Wait or Cond signal,
//   - any channel operation (send, receive, close, range, select),
//   - a context.Context consultation,
//
// or that the launch itself hands the goroutine a join handle (a channel,
// context, or *sync.WaitGroup argument). Fire-and-forget computation with
// none of those is unobservable by construction and gets flagged.
func checkGoroLeak(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	walkFiles(p, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtJoined(a, p, gs) {
			return true
		}
		report(gs.Go, "goroutine has no visible join (no WaitGroup Done/Wait, channel operation, or context reachable from its body); tie it to a waiter so drains and tests can prove it finished")
		return true
	})
}

// goStmtJoined reports whether the launch is observably joined.
func goStmtJoined(a *Analysis, p *Package, gs *ast.GoStmt) bool {
	// A join handle passed at launch counts: `go worker(results)` or
	// `go run(ctx, ...)`.
	for _, arg := range gs.Call.Args {
		if tv, ok := p.Info.Types[arg]; ok && isJoinHandleType(tv.Type) {
			return true
		}
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if bodyCommunicates(p, fun.Body) {
			return true
		}
		// The closure may delegate the protocol to helpers: follow its
		// static calls through the graph.
		joined := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if joined {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee, _, _ := resolveCall(p, call); callee != nil && a.Graph.Communicates(callee) {
				joined = true
			}
			return true
		})
		return joined
	default:
		callee, _, _ := resolveCall(p, gs.Call)
		if callee == nil {
			// Dynamic launch (function value, interface method): the body is
			// invisible to static analysis; stay conservative and trust it.
			return true
		}
		return a.Graph.Communicates(callee)
	}
}

// isJoinHandleType reports whether t can carry a join protocol across the
// launch: a channel, a *sync.WaitGroup, or a context.Context.
func isJoinHandleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "sync" && name == "WaitGroup") || (pkg == "context" && name == "Context")
}
