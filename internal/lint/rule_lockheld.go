package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkLockHeld polices critical sections two ways.
//
// First, blocking-while-locked: a mutex held across a channel send/receive,
// a blocking select, or a sync.WaitGroup/Cond wait couples the lock's hold
// time to another goroutine's progress — the shape of every execMu-style
// deadlock (the daemon's batcher blocks on a saturated worker channel while
// a worker needs the lock to drain). The scan is linear per function scope:
// Lock/RLock adds the receiver expression to the held set, Unlock/RUnlock
// removes it, `defer x.Unlock()` holds to function end, and a `return`
// clears the set (branch-local lock+return idioms stay clean). Function
// literals are separate scopes: a closure's body runs under its caller's
// lock state, not its definition site's, so it is scanned on its own.
//
// Second, guarded fields: a struct field annotated
//
//	// guarded by: mu
//
// must only be read or written in functions that visibly lock that mutex
// (any `….mu.Lock()` / RLock in the enclosing declaration), or while the
// enclosing function is still constructing the value (the dataflow layer
// proves the variable originates from a composite literal in this
// function, so it cannot be shared yet). Helper functions that rely on the
// caller's lock carry an explicit //schedlint:ignore lockheld audit line.
func checkLockHeld(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	guarded := collectGuardedFields(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl:
				if e.Body != nil {
					scanLockScope(p, e.Body, report)
					checkGuardedAccesses(p, e, e.Body, guarded, report)
				}
				return true
			case *ast.FuncLit:
				scanLockScope(p, e.Body, report)
				return true
			}
			return true
		})
	}
}

// blockingOp describes one operation that can block while a lock is held.
func blockingOp(p *Package, n ast.Node) (token.Pos, string) {
	switch e := n.(type) {
	case *ast.SendStmt:
		return e.Arrow, "channel send"
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return e.OpPos, "channel receive"
		}
	case *ast.RangeStmt:
		if tv, ok := p.Info.Types[e.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return e.Range, "range over channel"
			}
		}
	case *ast.SelectStmt:
		for _, c := range e.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return token.NoPos, "" // has default: non-blocking
			}
		}
		return e.Select, "blocking select"
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if isSyncMethod(p, sel, "WaitGroup", "Wait") {
				return e.Pos(), "sync.WaitGroup.Wait"
			}
			if isSyncMethod(p, sel, "Cond", "Wait") {
				return e.Pos(), "sync.Cond.Wait"
			}
			if pkg, name, ok := pkgMember(p.Info, sel); ok && pkg == "time" && name == "Sleep" {
				return e.Pos(), "time.Sleep"
			}
		}
	}
	return token.NoPos, ""
}

// scanLockScope walks one function scope in source order, tracking which
// mutexes are held and reporting blocking operations inside critical
// sections. Nested function literals are skipped — each is its own scope.
func scanLockScope(p *Package, body *ast.BlockStmt, report func(pos token.Pos, format string, args ...any)) {
	held := make(map[string]int) // mutex expression → line locked at
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, scanned on its own
		case *ast.ReturnStmt:
			// Leaving the function releases everything (deferred Unlocks run,
			// branch-local sections end).
			clear(held)
			return true
		case *ast.SelectStmt:
			// The select is the blocking point; the channel ops inside its
			// comm clauses are cases of it, not standalone operations. Report
			// the select itself when blocking, then scan only the clause
			// bodies.
			if len(held) > 0 {
				if pos, what := blockingOp(p, e); what != "" {
					mutex, line := oneHeld(held)
					report(pos, "%s while holding %s (locked at line %d); a goroutine blocked here couples the critical section to another goroutine's progress — move the operation outside the lock", what, mutex, line)
				}
			}
			for _, c := range e.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if mutex, op, ok := lockOp(p, e); ok {
				switch op {
				case "Lock", "RLock":
					held[mutex] = p.Fset.Position(e.Pos()).Line
				case "Unlock", "RUnlock":
					delete(held, mutex)
				}
				return true
			}
		case *ast.DeferStmt:
			// defer mu.Unlock(): the lock stays held for the remainder of
			// the scan, which is the point — walk past it without treating
			// the call as a release.
			if _, op, ok := lockOp(p, e.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return false
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if pos, what := blockingOp(p, n); what != "" {
			mutex, line := oneHeld(held)
			report(pos, "%s while holding %s (locked at line %d); a goroutine blocked here couples the critical section to another goroutine's progress — move the operation outside the lock", what, mutex, line)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// oneHeld picks the lexically smallest held mutex for a stable message.
func oneHeld(held map[string]int) (string, int) {
	best := ""
	for m := range held {
		if best == "" || m < best {
			best = m
		}
	}
	return best, held[best]
}

// lockOp matches a call of the form expr.Lock/Unlock/RLock/RUnlock where
// expr's type is sync.Mutex or sync.RWMutex, returning the printed mutex
// expression and the operation name.
func lockOp(p *Package, call *ast.CallExpr) (mutex, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	pkg, name, isNamed := typeNamedIn(p, sel.X)
	if !isNamed || pkg != "sync" || (name != "Mutex" && name != "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), op, true
}

// guardedField records one "// guarded by: mu" annotation.
type guardedField struct {
	mutex string // bare mutex field/variable name
}

// collectGuardedFields parses guarded-by comments on struct fields. The
// annotation is the doc or trailing comment of the field:
//
//	// guarded by: execMu
//	session *online.Session
func collectGuardedFields(p *Package) map[*types.Var]guardedField {
	out := make(map[*types.Var]guardedField)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardAnnotation(field.Doc) // doc comment above
				if mutex == "" {
					mutex = guardAnnotation(field.Comment) // trailing
				}
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						out[v] = guardedField{mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a "guarded by: mu" comment
// group, tolerating prose around it ("// guarded by: mu (see batchLoop)").
func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.ToLower(c.Text)
		idx := strings.Index(text, "guarded by:")
		if idx < 0 {
			continue
		}
		rest := c.Text[idx+len("guarded by:"):]
		fields := strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '(' || r == ')' || r == ',' || r == '.' || r == ';'
		})
		if len(fields) > 0 {
			return fields[0]
		}
	}
	return ""
}

// checkGuardedAccesses reports selector accesses to guarded fields in
// functions that never lock the guarding mutex and are not constructing the
// value.
func checkGuardedAccesses(p *Package, decl *ast.FuncDecl, body *ast.BlockStmt, guarded map[*types.Var]guardedField, report func(pos token.Pos, format string, args ...any)) {
	if len(guarded) == 0 {
		return
	}
	locked := lockedMutexNames(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, ok := guarded[v]
		if !ok {
			return true
		}
		if locked[g.mutex] {
			return true
		}
		if root := rootIdent(sel.X); root != nil && constructsLocally(p, body, root) {
			return true // still building the value; not shared yet
		}
		report(sel.Sel.Pos(), "field %s is marked `guarded by: %s` but %s is never locked in this function; lock it, or carry the caller-holds contract as an audited suppression", types.ExprString(sel), g.mutex, g.mutex)
		return true
	})
}

// lockedMutexNames collects the bare final names of every mutex this
// declaration locks anywhere (including in nested literals): s.execMu.Lock()
// yields "execMu". Position-insensitive by design — the linear blocking scan
// handles ordering; the guarded-field check only asks "does this function
// participate in the locking discipline at all".
func lockedMutexNames(p *Package, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		mutex, op, ok := lockOp(p, call)
		if !ok || (op != "Lock" && op != "RLock") {
			return true
		}
		if i := strings.LastIndexByte(mutex, '.'); i >= 0 {
			mutex = mutex[i+1:]
		}
		out[mutex] = true
		return true
	})
	return out
}
