package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// syncLockTypes are the sync types whose by-value copy detaches waiters or
// duplicates lock state. (sync.Map and sync.Pool embed one of these, so the
// recursive containment walk catches them through their fields.)
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// checkMutexCopy flags by-value movement of lock-containing values: function
// parameters, results, and receivers declared by value; assignments that
// copy an existing variable; and range variables that copy elements out of a
// slice, array, or map. It complements `go vet`'s copylocks so the invariant
// holds even when vet is skipped, and so violations share schedlint's
// suppression and JSON surface.
func checkMutexCopy(_ *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	walkFiles(p, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncDecl:
			if e.Recv != nil {
				checkFieldList(p, e.Recv, "receiver", report)
			}
			checkFieldList(p, e.Type.Params, "parameter", report)
		case *ast.FuncLit:
			checkFieldList(p, e.Type.Params, "parameter", report)
		case *ast.AssignStmt:
			for i, rhs := range e.Rhs {
				// Assigning to the blank identifier discards the copy; it is
				// the idiomatic "reference without use" and holds no state.
				if i < len(e.Lhs) {
					if id, ok := e.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				checkCopyExpr(p, rhs, "assignment", report)
			}
		case *ast.ValueSpec:
			for _, v := range e.Values {
				checkCopyExpr(p, v, "assignment", report)
			}
		case *ast.ReturnStmt:
			// Returning a composite literal constructs; returning an existing
			// variable copies — only the latter duplicates lock state.
			for _, v := range e.Results {
				checkCopyExpr(p, v, "return", report)
			}
		case *ast.RangeStmt:
			if e.Value == nil {
				return true
			}
			// The value variable's type is not in Info.Types (it is being
			// defined); derive the element type from the ranged expression.
			if t := rangeElemType(p.Info.Types[e.X].Type); t != nil && containsLock(t, nil) {
				report(e.Value.Pos(), "range value copies %s, which contains a sync lock; range over indices or use pointers", types.TypeString(t, types.RelativeTo(p.Types)))
			}
		}
		return true
	})
}

// checkFieldList flags by-value lock-containing entries of a parameter,
// result, or receiver list.
func checkFieldList(p *Package, fl *ast.FieldList, kind string, report func(pos token.Pos, format string, args ...any)) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := p.Info.Types[f.Type].Type
		if t == nil || !containsLock(t, nil) {
			continue
		}
		report(f.Type.Pos(), "%s passes %s by value, copying its sync lock; use a pointer", kind, types.TypeString(t, types.RelativeTo(p.Types)))
	}
}

// checkCopyExpr flags an assignment or return expression that copies an
// existing lock-containing value. Composite literals, function calls, and
// address-taking construct or reference rather than copy, so they pass.
func checkCopyExpr(p *Package, rhs ast.Expr, verb string, report func(pos token.Pos, format string, args ...any)) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := p.Info.Types[rhs].Type
	if t == nil || !containsLock(t, nil) {
		return
	}
	report(rhs.Pos(), "%s copies %s, which contains a sync lock; use a pointer", verb, types.TypeString(t, types.RelativeTo(p.Types)))
}

// rangeElemType returns the per-iteration value type of a ranged container,
// or nil when ranging yields no copyable value (channels yield elements too,
// but copying out of a channel is a transfer, not a duplication).
func rangeElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer: // range over *[N]T
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	case *types.Map:
		return u.Elem()
	}
	return nil
}

// containsLock reports whether t transitively contains a sync lock by value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
