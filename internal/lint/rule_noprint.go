package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// stdoutPrinters are the fmt functions that write to the process's stdout
// directly. The Fprint/Sprint families are fine: writing to an injected
// io.Writer is exactly what internal/report does.
var stdoutPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// checkNoPrint keeps library packages from writing to stdout/stderr behind
// the caller's back: a scheduler that prints corrupts papergen's CSV/SVG
// pipelines and the daemon's logs. Rendering belongs in internal/report (or
// any injected io.Writer); commands under cmd/ may print freely.
func checkNoPrint(p *Package, report func(pos token.Pos, format string, args ...any)) {
	walkFiles(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if pkg, name, ok := pkgMember(p.Info, fun); ok && pkg == "fmt" && stdoutPrinters[name] {
				report(call.Pos(), "fmt.%s writes to stdout from a library package; render through internal/report or an injected io.Writer", name)
			}
		case *ast.Ident:
			if fun.Name != "print" && fun.Name != "println" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin {
				report(call.Pos(), "builtin %s writes to stderr and is not part of the supported output surface; use internal/report", fun.Name)
			}
		}
		return true
	})
}
