package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// stdoutPrinters are the fmt functions that write to the process's stdout
// directly. The Fprint/Sprint families are fine: writing to an injected
// io.Writer is exactly what internal/report does — unless the injected
// writer is literally os.Stdout/os.Stderr, which the selector check below
// catches.
var stdoutPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// logWriters are the package log functions that write to the process's
// standard logger (stderr). Fatal* additionally calls os.Exit and Panic*
// panics — a library package deciding to kill the process is worse than one
// printing. Constructors (log.New) are fine: a logger over an injected
// writer is sanctioned output.
var logWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// checkNoPrint keeps library packages from writing to stdout/stderr behind
// the caller's back: a scheduler that prints corrupts papergen's CSV/SVG
// pipelines and the daemon's logs. Rendering belongs in internal/report (or
// any injected io.Writer); commands under cmd/ may print freely. Flagged
// here: fmt.Print*, builtin print/println, log.Print*/Fatal*/Panic* (the
// process-wide logger writes to stderr, and Fatal kills the process), and
// any use of os.Stdout/os.Stderr — whether written to directly, passed to
// fmt.Fprintf, or handed to a constructor.
func checkNoPrint(_ *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	walkFiles(p, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch fun := e.Fun.(type) {
			case *ast.SelectorExpr:
				if pkg, name, ok := pkgMember(p.Info, fun); ok {
					switch {
					case pkg == "fmt" && stdoutPrinters[name]:
						report(e.Pos(), "fmt.%s writes to stdout from a library package; render through internal/report or an injected io.Writer", name)
					case pkg == "log" && logWriters[name]:
						extra := ""
						if strings.HasPrefix(name, "Fatal") {
							extra = " and exits the process"
						} else if strings.HasPrefix(name, "Panic") {
							extra = " and panics"
						}
						report(e.Pos(), "log.%s writes to the process-wide logger%s from a library package; accept an injected *log.Logger or io.Writer", name, extra)
					}
				}
			case *ast.Ident:
				if fun.Name != "print" && fun.Name != "println" {
					return true
				}
				if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin {
					report(e.Pos(), "builtin %s writes to stderr and is not part of the supported output surface; use internal/report", fun.Name)
				}
			}
		case *ast.SelectorExpr:
			if pkg, name, ok := pkgMember(p.Info, e); ok && pkg == "os" && (name == "Stdout" || name == "Stderr") {
				report(e.Pos(), "os.%s referenced from a library package; take an injected io.Writer so callers own the output streams", name)
			}
		}
		return true
	})
}
