package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// checkRandShare enforces the PR 5 determinism model's first law: rand
// streams are split, never shared, across goroutines. A *rand.Rand (or an
// xrand.Source behind it) is a mutable cursor; two goroutines drawing from
// one make every value depend on worker interleaving, which silently breaks
// seed replay and the bit-identical-at-every-worker-count contract.
//
// The rule fires when a rand-typed value crosses a concurrency boundary by
// capture or by argument:
//
//   - captured by the closure of a `go` statement,
//   - captured by a callback passed to a fan-out function — a function
//     whose parameter escapes onto a goroutine, detected interprocedurally
//     (objective.ParallelFor, PopEvaluator worker pools, and any wrapper
//     that forwards its callback into one),
//   - passed as a direct argument in a `go f(rng)` launch.
//
// The sanctioned pattern passes clean: capture a plain integer seed and
// derive a per-index child stream inside the closure (xrand.Stream(seed, i)
// / xrand.New(seed, i) / rand.New(...)), because a value produced by a call
// inside the closure is fresh by construction. Alias chains are followed
// (`r2 := r` shares whatever r shares), and per-index reads of a pre-split
// stream slice (streams[i]) are allowed — indexing is the materialized form
// of splitting.
func checkRandShare(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	seen := make(map[token.Pos]bool) // nested scopes can revisit a use; report once
	flag := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		report(pos, format, args...)
	}
	walkFiles(p, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			// Direct launch arguments: `go worker(rng)` hands the parent's
			// stream to the new goroutine. Calls as arguments are fresh
			// values (xrand.New(seed, i), src.Split() drawn serially at
			// launch) and pass.
			for _, arg := range e.Call.Args {
				checkRandArg(p, arg, "`go` statement argument", flag)
			}
			if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
				scanConcurrentClosure(p, lit, "goroutine closure", flag)
			}
		case *ast.CallExpr:
			callee, _, _ := resolveCall(p, e)
			if callee == nil {
				return true
			}
			for i, arg := range e.Args {
				if !a.Graph.ConcurrentArg(callee, i) {
					continue
				}
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					scanConcurrentClosure(p, lit, funcDisplayName(callee)+" callback", flag)
				}
			}
		}
		return true
	})
}

// scanConcurrentClosure reports every rand-typed value the closure reads
// from its enclosing function — identifier captures, field chains rooted at
// captured values (r.ctx.Rand), and aliases of either.
func scanConcurrentClosure(p *Package, lit *ast.FuncLit, where string, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[e].(*types.Var)
			if !ok || obj.IsField() {
				return true // field names are reported at their selector
			}
			if !isRandType(obj.Type()) {
				return true
			}
			if capturedFrom(p, lit, e, 8) {
				report(e.Pos(), "%s %s is shared with the %s; derive a per-index child stream inside it (xrand.Stream/xrand.New from a captured seed) instead",
					randTypeName(obj.Type()), e.Name, where)
			}
		case *ast.SelectorExpr:
			tv, ok := p.Info.Types[e]
			if !ok || !isRandType(tv.Type) {
				return true
			}
			root := rootIdent(e)
			if root == nil {
				return true // rooted at a call: produced inside the closure
			}
			if hasIndexStep(e) {
				return true // streams[i].x: per-index read of a pre-split slice
			}
			if capturedFrom(p, lit, root, 8) {
				report(e.Pos(), "%s %s reaches a stream shared with the %s; derive a per-index child stream inside it instead",
					randTypeName(tv.Type), types.ExprString(e), where)
			}
			return false // the chain is reported once, at the outermost selector
		}
		return true
	})
}

// checkRandArg flags a rand-typed launch argument that is an existing value
// rather than a fresh derivation.
func checkRandArg(p *Package, arg ast.Expr, where string, report func(pos token.Pos, format string, args ...any)) {
	expr := ast.Unparen(arg)
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return // calls (xrand.New, src.Split()) and literals are fresh
	}
	tv, ok := p.Info.Types[expr]
	if !ok || !isRandType(tv.Type) {
		return
	}
	if e, ok := expr.(*ast.SelectorExpr); ok && hasIndexStep(e) {
		return
	}
	report(expr.Pos(), "%s %s handed to a goroutine as a %s; pass a per-goroutine child stream (xrand.New/Stream, or Split before launch) instead",
		randTypeName(tv.Type), types.ExprString(expr), where)
}

// hasIndexStep reports whether the selector chain passes through an index
// expression (streams[i], shards[k].rng): the per-slot read of a pre-split
// collection, which is the materialized form of the split-don't-share rule.
func hasIndexStep(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			return true
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isRandType reports whether t is a rand-stream type: *math/rand.Rand (v1 or
// v2), the rand.Source/Source64 interfaces, or an xrand.Source (matched by
// package basename so fixture modules hit it too).
func isRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	pkgPath, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		return name == "Rand" || name == "Source" || name == "Source64" || name == "Zipf"
	}
	return path.Base(pkgPath) == "xrand" && name == "Source"
}

// randTypeName renders the offending type compactly for diagnostics.
func randTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil && named.Obj().Pkg() != nil {
		return "*" + named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}
