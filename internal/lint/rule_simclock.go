package lint

import (
	"go/ast"
	"go/token"
)

// wallClockFuncs are the package time entry points that read or depend on
// the machine's clock. Pure types and constants (time.Duration, time.Second)
// are fine — schedulers may *represent* durations; they may not *observe*
// real time.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// checkSimClock enforces that simulation and scheduler packages observe time
// only through the discrete-event engine's simulated clock (sim.Engine /
// online.Session.Now). A wall-clock read in these packages makes makespan,
// flow-time, and replayed traces depend on host speed and scheduling jitter.
// The interprocedural pass extends the guarantee through helpers: a call
// into an out-of-scope module package whose static call graph reaches
// time.Now is flagged here, at the deterministic caller, with the witness
// chain.
func checkSimClock(a *Analysis, p *Package, report func(pos token.Pos, format string, args ...any)) {
	reportTransitiveSinks(a, p, "simclock",
		func(rel string) bool { return inScope(rel, deterministicPkgs) },
		func(pkg, name string) bool { return pkg == "time" && wallClockFuncs[name] },
		report)
	walkFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pkgMember(p.Info, sel)
		if !ok || pkg != "time" || !wallClockFuncs[name] {
			return true
		}
		report(sel.Pos(), "wall-clock time.%s in simulation code; the engine's simulated clock is the only legal time source here", name)
		return true
	})
}
