package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose behavior must be a pure function
// of (inputs, seed): the bio-inspired schedulers and baselines, the
// simulation engine, the shared objective layer, and workload generation.
// detrand and simclock police these; floateq polices the same set because
// its Eq. 12/13 style accumulations live here.
var deterministicPkgs = []string{
	"internal/aco",
	"internal/hbo",
	"internal/rbs",
	"internal/ga",
	"internal/pso",
	"internal/hybrid",
	"internal/elastic",
	"internal/sched",
	"internal/sim",
	"internal/objective",
	"internal/online",
	"internal/workload",
	"internal/tracecol",
	"internal/cloud",
	"internal/check",
	"internal/schedtest",
}

// simclockExempt are packages inside the deterministic set's neighborhood
// that legitimately read the wall clock: the daemon and the experiment
// runner measure real scheduling time (the paper's SA metric), and commands
// talk to humans in real time.
//
// Note simclock's scope is deterministicPkgs, so this allowlist is
// documentation of *why* internal/service, internal/experiments, and cmd/*
// are outside it rather than a filter applied at runtime — keep the two in
// sync if the scope ever widens.
var simclockExempt = []string{
	"internal/service",
	"internal/experiments",
	"cmd",
}

// registry holds every rule in canonical order. Rule names are part of the
// suppression and -rules surface; treat them as API.
var registry = []Rule{
	{
		Name:  "detrand",
		Doc:   "no global math/rand functions or wall-clock-seeded rand.New in deterministic packages; inject a seeded *rand.Rand (internal/xrand)",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkDetRand,
	},
	{
		Name:  "simclock",
		Doc:   "no time.Now/Since/Sleep/... in simulation and scheduler packages; the engine's simulated clock is the only time source",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkSimClock,
	},
	{
		Name:  "floateq",
		Doc:   "no ==/!= between floating-point operands in scheduler/objective code; use an epsilon or an integer representation",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkFloatEq,
	},
	{
		Name:  "noprint",
		Doc:   "no fmt.Print*/print/println in library packages; render through internal/report or an injected io.Writer",
		Scope: func(rel string) bool { return underDir(rel, "internal") },
		Check: checkNoPrint,
	},
	{
		Name:  "mutexcopy",
		Doc:   "no by-value copies of types containing a sync lock (params, results, assignments, range variables)",
		Scope: func(rel string) bool { return true },
		Check: checkMutexCopy,
	},
}

// pkgMember resolves a selector expression to (package path, member name)
// when its qualifier is an imported package, e.g. rand.Intn → ("math/rand",
// "Intn"). It follows go/types resolution, so locally shadowed package names
// are not misreported.
func pkgMember(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// walkFiles applies fn to every node of every file in the package.
func walkFiles(p *Package, fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
