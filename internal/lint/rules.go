package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose behavior must be a pure function
// of (inputs, seed): the bio-inspired schedulers and baselines, the
// simulation engine, the shared objective layer, and workload generation.
// detrand and simclock police these; floateq polices the same set because
// its Eq. 12/13 style accumulations live here.
var deterministicPkgs = []string{
	"internal/aco",
	"internal/hbo",
	"internal/rbs",
	"internal/ga",
	"internal/pso",
	"internal/hybrid",
	"internal/elastic",
	"internal/sched",
	"internal/sim",
	"internal/objective", // prefix match: covers internal/objective/kernel too

	"internal/online",
	"internal/workload",
	"internal/tracecol",
	"internal/cloud",
	"internal/check",
	"internal/schedtest",
	"internal/plan",
	"internal/qmodel",
}

// simclockExempt are packages inside the deterministic set's neighborhood
// that legitimately read the wall clock: the daemon and the experiment
// runner measure real scheduling time (the paper's SA metric), and commands
// talk to humans in real time.
//
// Note simclock's scope is deterministicPkgs, so this allowlist is
// documentation of *why* internal/service, internal/experiments, and cmd/*
// are outside it rather than a filter applied at runtime — keep the two in
// sync if the scope ever widens.
var simclockExempt = []string{
	"internal/service",
	"internal/experiments",
	"cmd",
}

// registry holds every rule in canonical order. Rule names are part of the
// suppression and -rules surface; treat them as API. New rules append —
// renaming or reordering breaks committed suppressions and baselines.
var registry = []Rule{
	{
		Name:  "detrand",
		Doc:   "no global math/rand functions or wall-clock-seeded rand.New in deterministic packages, directly or through helpers; inject a seeded *rand.Rand (internal/xrand)",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkDetRand,
	},
	{
		Name:  "simclock",
		Doc:   "no time.Now/Since/Sleep/... in simulation and scheduler packages, directly or through helpers; the engine's simulated clock is the only time source",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkSimClock,
	},
	{
		Name:  "floateq",
		Doc:   "no ==/!= between floating-point operands in scheduler/objective code; use an epsilon or an integer representation",
		Scope: func(rel string) bool { return inScope(rel, deterministicPkgs) },
		Check: checkFloatEq,
	},
	{
		Name:  "noprint",
		Doc:   "no fmt.Print*/print/println, log.Print*/Fatal*/Panic*, or os.Stdout/os.Stderr writes in library packages; render through internal/report or an injected io.Writer",
		Scope: func(rel string) bool { return underDir(rel, "internal") },
		Check: checkNoPrint,
	},
	{
		Name:  "mutexcopy",
		Doc:   "no by-value copies of types containing a sync lock (params, results, assignments, range variables)",
		Scope: func(rel string) bool { return true },
		Check: checkMutexCopy,
	},
	{
		Name:  "randshare",
		Doc:   "no *rand.Rand/xrand.Source shared across goroutines (go closures, ParallelFor-style callbacks); split per-index child streams instead",
		Scope: func(rel string) bool { return true },
		Check: checkRandShare,
	},
	{
		Name:  "lockheld",
		Doc:   "no channel ops or blocking waits while holding a mutex, and no `guarded by:` field access without its lock",
		Scope: func(rel string) bool { return true },
		Check: checkLockHeld,
	},
	{
		Name:  "goroleak",
		Doc:   "no goroutine launched in internal/ without a visible join (WaitGroup, channel, or context)",
		Scope: func(rel string) bool { return underDir(rel, "internal") },
		Check: checkGoroLeak,
	},
}

// pkgMember resolves a selector expression to (package path, member name)
// when its qualifier is an imported package, e.g. rand.Intn → ("math/rand",
// "Intn"). It follows go/types resolution, so locally shadowed package names
// are not misreported.
func pkgMember(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// walkFiles applies fn to every node of every file in the package.
func walkFiles(p *Package, fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// reportTransitiveSinks is the interprocedural core shared by detrand and
// simclock: for every call in p that leaves the rule's scope into another
// module package, ask the call graph whether the callee transitively
// reaches a forbidden standard-library sink, and report the witness path at
// the call site. Calls to functions in in-scope packages are skipped — the
// rule flags those directly at their own bodies, so one violation yields
// one finding, at the innermost in-scope frame.
func reportTransitiveSinks(a *Analysis, p *Package, ruleName string, ruleScope func(rel string) bool,
	sink func(pkg, name string) bool, report func(pos token.Pos, format string, args ...any)) {
	rc := a.reachCacheFor(ruleName, sink)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := a.Graph.node(fn)
			if node == nil {
				continue
			}
			for _, edge := range node.calls {
				calleePkg := edge.callee.Pkg()
				if calleePkg == nil {
					continue
				}
				if rel, ok := a.RelOf(calleePkg); !ok || ruleScope(rel) {
					continue // in-scope callee: flagged at its own body
				}
				if sp := rc.reaches(edge.callee); sp != nil {
					report(edge.pos, "call to %s transitively reaches %s.%s (via %s)", funcDisplayName(edge.callee), sinkPkgBase(sp.Pkg), sp.Name, sp.String())
				}
			}
		}
	}
}

// sinkPkgBase shortens a sink package path for messages (math/rand → rand).
func sinkPkgBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
