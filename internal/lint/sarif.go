package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning ingests
// for inline PR annotations. The structs below are the minimal valid subset:
// one run, one driver with the rule catalog, one result per diagnostic. The
// driver's semanticVersion carries SchemaVersion so SARIF, -json, and
// baseline files version together.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name            string      `json:"name"`
	InformationURI  string      `json:"informationUri"`
	SemanticVersion string      `json:"semanticVersion"`
	Rules           []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders res as a SARIF 2.1.0 log. The rule catalog always
// lists every registered rule (findings or not), so annotation consumers can
// resolve ruleIndex stably; file URIs are module-root-relative with
// SRCROOT as the base id, which GitHub resolves against the checkout.
func WriteSARIF(w io.Writer, res *Result) error {
	ruleIndex := make(map[string]int, len(registry)+1)
	rules := make([]sarifRule, 0, len(registry)+1)
	add := func(name, doc string) {
		ruleIndex[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, r := range registry {
		add(r.Name, r.Doc)
	}
	// The suppression parser's own diagnostics carry the pseudo-rule
	// "ignore"; give them a catalog entry too so every result resolves.
	add("ignore", "malformed //schedlint:ignore suppression directive")

	results := make([]sarifResult, 0, len(res.Diags))
	for _, d := range res.Diags {
		idx, ok := ruleIndex[d.Rule]
		if !ok {
			idx = len(rules)
			ruleIndex[d.Rule] = idx
			rules = append(rules, sarifRule{ID: d.Rule, ShortDescription: sarifMessage{Text: d.Rule}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File, URIBaseID: "SRCROOT"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:            "schedlint",
				InformationURI:  "https://github.com/bioschedsim/bioschedsim",
				SemanticVersion: SchemaVersion,
				Rules:           rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
