package lint

// stdStubs holds miniature source stubs for the standard-library packages
// whose *member identity* matters to a rule. The engine never type-checks
// the real standard library (that would drag go/build, GOROOT source, and
// cgo handling into a tool that must stay dependency-free and fast);
// instead, imports of these packages resolve to the stubs below, which is
// exactly enough for:
//
//   - detrand/simclock/noprint: resolving the qualifier of rand.X / time.X /
//     fmt.X to the right package,
//   - mutexcopy: knowing that sync.Mutex and friends are lock-carrying named
//     struct types, so containment in user structs is visible,
//   - floateq: float-typed results of common stdlib calls (time.Duration's
//     Seconds, rand.Float64, math.Abs, ...) so comparisons involving them
//     still get a concrete float type.
//
// Every other import resolves to an empty placeholder package; the resulting
// "undeclared name" type errors are swallowed, and rules only ever consult
// information that survives such partial checking.
var stdStubs = map[string]string{
	"sync": `package sync

type Locker interface {
	Lock()
	Unlock()
}

type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return false }

type RWMutex struct{ w Mutex }

func (rw *RWMutex) Lock()           {}
func (rw *RWMutex) Unlock()         {}
func (rw *RWMutex) RLock()          {}
func (rw *RWMutex) RUnlock()        {}
func (rw *RWMutex) TryLock() bool   { return false }
func (rw *RWMutex) TryRLock() bool  { return false }
func (rw *RWMutex) RLocker() Locker { return nil }

type WaitGroup struct{ state uint64 }

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}

type Once struct{ done uint32 }

func (o *Once) Do(f func()) {}

type Pool struct{ New func() any }

func (p *Pool) Get() any  { return nil }
func (p *Pool) Put(x any) {}

type Map struct{ mu Mutex }

func (m *Map) Load(key any) (any, bool)                  { return nil, false }
func (m *Map) Store(key, value any)                      {}
func (m *Map) LoadOrStore(key, value any) (any, bool)    { return nil, false }
func (m *Map) LoadAndDelete(key any) (any, bool)         { return nil, false }
func (m *Map) Delete(key any)                            {}
func (m *Map) Range(f func(key, value any) bool)         {}
func (m *Map) CompareAndSwap(key, old, new any) bool     { return false }
func (m *Map) CompareAndDelete(key, old any) bool        { return false }
func (m *Map) Swap(key, value any) (previous any, loaded bool) { return nil, false }

type Cond struct {
	L Locker
}

func NewCond(l Locker) *Cond { return &Cond{L: l} }
func (c *Cond) Wait()        {}
func (c *Cond) Signal()      {}
func (c *Cond) Broadcast()   {}

func OnceFunc(f func()) func() { return f }
`,

	"time": `package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

func (d Duration) Seconds() float64      { return 0 }
func (d Duration) Minutes() float64      { return 0 }
func (d Duration) Hours() float64        { return 0 }
func (d Duration) Nanoseconds() int64    { return 0 }
func (d Duration) Microseconds() int64   { return 0 }
func (d Duration) Milliseconds() int64   { return 0 }
func (d Duration) String() string        { return "" }
func (d Duration) Round(m Duration) Duration    { return 0 }
func (d Duration) Truncate(m Duration) Duration { return 0 }

type Time struct{ wall uint64 }

func (t Time) Sub(u Time) Duration   { return 0 }
func (t Time) Add(d Duration) Time   { return t }
func (t Time) Before(u Time) bool    { return false }
func (t Time) After(u Time) bool     { return false }
func (t Time) Equal(u Time) bool     { return false }
func (t Time) IsZero() bool          { return false }
func (t Time) Unix() int64           { return 0 }
func (t Time) UnixMilli() int64      { return 0 }
func (t Time) UnixNano() int64       { return 0 }
func (t Time) Format(layout string) string { return "" }
func (t Time) String() string        { return "" }

func Now() Time                 { return Time{} }
func Since(t Time) Duration     { return 0 }
func Until(t Time) Duration     { return 0 }
func Sleep(d Duration)          {}
func After(d Duration) <-chan Time { return nil }
func Tick(d Duration) <-chan Time  { return nil }
func Unix(sec int64, nsec int64) Time { return Time{} }
func ParseDuration(s string) (Duration, error) { return 0, nil }

type Timer struct{ C <-chan Time }

func NewTimer(d Duration) *Timer            { return nil }
func AfterFunc(d Duration, f func()) *Timer { return nil }
func (t *Timer) Stop() bool                 { return false }
func (t *Timer) Reset(d Duration) bool      { return false }

type Ticker struct{ C <-chan Time }

func NewTicker(d Duration) *Ticker { return nil }
func (t *Ticker) Stop()            {}
func (t *Ticker) Reset(d Duration) {}
`,

	"math/rand": `package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Source64 interface {
	Source
	Uint64() uint64
}

func NewSource(seed int64) Source { return nil }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func (r *Rand) Seed(seed int64)                     {}
func (r *Rand) Int63() int64                        { return 0 }
func (r *Rand) Uint32() uint32                      { return 0 }
func (r *Rand) Uint64() uint64                      { return 0 }
func (r *Rand) Int31() int32                        { return 0 }
func (r *Rand) Int() int                            { return 0 }
func (r *Rand) Int63n(n int64) int64                { return 0 }
func (r *Rand) Int31n(n int32) int32                { return 0 }
func (r *Rand) Intn(n int) int                      { return 0 }
func (r *Rand) Float64() float64                    { return 0 }
func (r *Rand) Float32() float32                    { return 0 }
func (r *Rand) ExpFloat64() float64                 { return 0 }
func (r *Rand) NormFloat64() float64                { return 0 }
func (r *Rand) Perm(n int) []int                    { return nil }
func (r *Rand) Shuffle(n int, swap func(i, j int))  {}
func (r *Rand) Read(p []byte) (n int, err error)    { return 0, nil }

type Zipf struct{ r *Rand }

func NewZipf(r *Rand, s float64, v float64, imax uint64) *Zipf { return nil }
func (z *Zipf) Uint64() uint64                                 { return 0 }

func Seed(seed int64)                     {}
func Int63() int64                        { return 0 }
func Uint32() uint32                      { return 0 }
func Uint64() uint64                      { return 0 }
func Int31() int32                        { return 0 }
func Int() int                            { return 0 }
func Int63n(n int64) int64                { return 0 }
func Int31n(n int32) int32                { return 0 }
func Intn(n int) int                      { return 0 }
func Float64() float64                    { return 0 }
func Float32() float32                    { return 0 }
func ExpFloat64() float64                 { return 0 }
func NormFloat64() float64                { return 0 }
func Perm(n int) []int                    { return nil }
func Shuffle(n int, swap func(i, j int))  {}
func Read(p []byte) (n int, err error)    { return 0, nil }
`,

	"context": `package context

import "time"

type CancelFunc func()

type Context interface {
	Deadline() (deadline time.Time, ok bool)
	Done() <-chan struct{}
	Err() error
	Value(key any) any
}

func Background() Context                                              { return nil }
func TODO() Context                                                    { return nil }
func WithCancel(parent Context) (Context, CancelFunc)                  { return nil, nil }
func WithTimeout(parent Context, d time.Duration) (Context, CancelFunc) { return nil, nil }
func WithDeadline(parent Context, t time.Time) (Context, CancelFunc)   { return nil, nil }
func WithValue(parent Context, key, val any) Context                   { return nil }
`,

	"math": `package math

const (
	MaxFloat64             = 0x1p1023 * (1 + (1 - 0x1p-52))
	SmallestNonzeroFloat64 = 0x1p-1022 * 0x1p-52
	MaxInt64               = 1<<63 - 1
	MaxInt                 = 1<<63 - 1
	Pi                     = 3.14159265358979323846264338327950288419716939937510582097494459
)

func Abs(x float64) float64               { return 0 }
func Max(x, y float64) float64            { return 0 }
func Min(x, y float64) float64            { return 0 }
func Mod(x, y float64) float64            { return 0 }
func Sqrt(x float64) float64              { return 0 }
func Pow(x, y float64) float64            { return 0 }
func Exp(x float64) float64               { return 0 }
func Log(x float64) float64               { return 0 }
func Log2(x float64) float64              { return 0 }
func Floor(x float64) float64             { return 0 }
func Ceil(x float64) float64              { return 0 }
func Trunc(x float64) float64             { return 0 }
func Round(x float64) float64             { return 0 }
func Inf(sign int) float64                { return 0 }
func NaN() float64                        { return 0 }
func IsNaN(f float64) bool                { return false }
func IsInf(f float64, sign int) bool      { return false }
func Float64bits(f float64) uint64        { return 0 }
func Float64frombits(b uint64) float64    { return 0 }
`,
}
