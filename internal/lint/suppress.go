package lint

import (
	"fmt"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//schedlint:ignore <rule> <reason>
//
// A directive silences diagnostics of the named rule ("all" silences every
// rule) on the directive's own line and on the line immediately below it,
// which covers both trailing comments and a comment line above the offending
// statement. The reason is mandatory: suppressions are audit records, and a
// bare ignore tells a reviewer nothing.
const ignorePrefix = "schedlint:ignore"

// suppression is one parsed directive.
type suppression struct {
	rule string
}

// suppressionSet indexes a package's directives by (file, line).
type suppressionSet struct {
	byLine    map[string]map[int][]suppression
	malformed []Diagnostic
}

// scanSuppressions parses every ignore directive in the package and
// diagnoses malformed ones under the pseudo-rule "ignore"; relFile rewrites
// raw position file names to the module-relative form diagnostics use.
func scanSuppressions(p *Package, relFile func(string) string) *suppressionSet {
	s := &suppressionSet{byLine: make(map[string]map[int][]suppression)}
	known := make(map[string]bool, len(registry))
	for _, r := range registry {
		known[r.Name] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				file, line := pos.Filename, pos.Line
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					s.malformed = append(s.malformed, Diagnostic{
						File: relFile(file), Line: line, Col: pos.Column, Rule: "ignore",
						Message: "malformed suppression: want //schedlint:ignore <rule> <reason>",
					})
					continue
				case fields[0] != "all" && !known[fields[0]]:
					s.malformed = append(s.malformed, Diagnostic{
						File: relFile(file), Line: line, Col: pos.Column, Rule: "ignore",
						Message: fmt.Sprintf("suppression names unknown rule %q (known: %s)",
							fields[0], strings.Join(append(RuleNames(), "all"), ", ")),
					})
					continue
				case len(fields) < 2:
					s.malformed = append(s.malformed, Diagnostic{
						File: relFile(file), Line: line, Col: pos.Column, Rule: "ignore",
						Message: fmt.Sprintf("suppression of %s needs a reason: //schedlint:ignore %s <reason>", fields[0], fields[0]),
					})
					continue
				}
				if s.byLine[file] == nil {
					s.byLine[file] = make(map[int][]suppression)
				}
				s.byLine[file][line] = append(s.byLine[file][line], suppression{rule: fields[0]})
			}
		}
	}
	return s
}

// suppresses reports whether a directive covers the diagnostic: same file,
// matching rule (or "all"), on the diagnostic's line or the line above.
// File names in directives are raw position file names; the caller passes a
// rewritten module-relative diagnostic, so match on suffix-insensitive keys
// is avoided by storing raw names — see fileKeys.
func (s *suppressionSet) suppresses(d Diagnostic) bool {
	for file, lines := range s.byLine {
		if !sameFile(file, d.File) {
			continue
		}
		for _, sup := range lines[d.Line] {
			if sup.rule == "all" || sup.rule == d.Rule {
				return true
			}
		}
		for _, sup := range lines[d.Line-1] {
			if sup.rule == "all" || sup.rule == d.Rule {
				return true
			}
		}
	}
	return false
}

// sameFile matches a raw (absolute) position file name against a
// module-relative diagnostic path.
func sameFile(raw, rel string) bool {
	raw = strings.ReplaceAll(raw, "\\", "/")
	return raw == rel || strings.HasSuffix(raw, "/"+rel)
}
