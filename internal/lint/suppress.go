package lint

import (
	"fmt"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//schedlint:ignore <rule> <reason>
//
// A directive silences diagnostics of the named rule ("all" silences every
// rule) on the directive's own line and on the line immediately below it,
// which covers both trailing comments and a comment line above the offending
// statement. The reason is mandatory: suppressions are audit records, and a
// bare ignore tells a reviewer nothing.
const ignorePrefix = "schedlint:ignore"

// suppression is one parsed directive.
type suppression struct {
	rule string
}

// suppressionSet indexes a package's directives by (file, line).
type suppressionSet struct {
	byLine    map[string]map[int][]suppression
	malformed []Diagnostic
}

// directiveResult classifies one comment parsed by parseIgnoreDirective.
type directiveResult int

const (
	notDirective       directiveResult = iota // comment is not a suppression
	directiveOK                               // valid: Rule carries the target
	directiveMalformed                        // malformed: Problem carries the message
)

// parsedDirective is the outcome of parsing one comment text.
type parsedDirective struct {
	Kind    directiveResult
	Rule    string // valid directives: the suppressed rule name (or "all")
	Problem string // malformed directives: the diagnostic message
}

// parseIgnoreDirective parses a raw comment (exactly as the AST carries it,
// comment markers included) as a //schedlint:ignore directive. It is a pure
// function over the text — position handling stays in scanSuppressions — so
// it can be fuzzed directly (FuzzSuppressDirective): for arbitrary input it
// must never panic and must classify into exactly one of the three results,
// with Rule resolving to a registered name (or "all") whenever Kind is
// directiveOK. knownRule reports whether a rule name exists; parsing treats
// it as an oracle so the fuzz target can substitute its own.
func parseIgnoreDirective(raw string, knownRule func(string) bool) parsedDirective {
	text := strings.TrimPrefix(raw, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return parsedDirective{Kind: notDirective}
	}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return parsedDirective{Kind: directiveMalformed,
			Problem: "malformed suppression: want //schedlint:ignore <rule> <reason>"}
	case fields[0] != "all" && !knownRule(fields[0]):
		return parsedDirective{Kind: directiveMalformed,
			Problem: fmt.Sprintf("suppression names unknown rule %q (known: %s)",
				fields[0], strings.Join(append(RuleNames(), "all"), ", "))}
	case len(fields) < 2:
		return parsedDirective{Kind: directiveMalformed,
			Problem: fmt.Sprintf("suppression of %s needs a reason: //schedlint:ignore %s <reason>", fields[0], fields[0])}
	}
	return parsedDirective{Kind: directiveOK, Rule: fields[0]}
}

// scanSuppressions parses every ignore directive in the package and
// diagnoses malformed ones under the pseudo-rule "ignore"; relFile rewrites
// raw position file names to the module-relative form diagnostics use.
func scanSuppressions(p *Package, relFile func(string) string) *suppressionSet {
	s := &suppressionSet{byLine: make(map[string]map[int][]suppression)}
	known := make(map[string]bool, len(registry))
	for _, r := range registry {
		known[r.Name] = true
	}
	knownRule := func(name string) bool { return known[name] }
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnoreDirective(c.Text, knownRule)
				if d.Kind == notDirective {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				file, line := pos.Filename, pos.Line
				if d.Kind == directiveMalformed {
					s.malformed = append(s.malformed, Diagnostic{
						File: relFile(file), Line: line, Col: pos.Column, Rule: "ignore",
						Message: d.Problem,
					})
					continue
				}
				if s.byLine[file] == nil {
					s.byLine[file] = make(map[int][]suppression)
				}
				s.byLine[file][line] = append(s.byLine[file][line], suppression{rule: d.Rule})
			}
		}
	}
	return s
}

// suppresses reports whether a directive covers the diagnostic: same file,
// matching rule (or "all"), on the diagnostic's line or the line above.
// File names in directives are raw position file names; the caller passes a
// rewritten module-relative diagnostic, so match on suffix-insensitive keys
// is avoided by storing raw names — see fileKeys.
func (s *suppressionSet) suppresses(d Diagnostic) bool {
	for file, lines := range s.byLine {
		if !sameFile(file, d.File) {
			continue
		}
		for _, sup := range lines[d.Line] {
			if sup.rule == "all" || sup.rule == d.Rule {
				return true
			}
		}
		for _, sup := range lines[d.Line-1] {
			if sup.rule == "all" || sup.rule == d.Rule {
				return true
			}
		}
	}
	return false
}

// sameFile matches a raw (absolute) position file name against a
// module-relative diagnostic path.
func sameFile(raw, rel string) bool {
	raw = strings.ReplaceAll(raw, "\\", "/")
	return raw == rel || strings.HasSuffix(raw, "/"+rel)
}
