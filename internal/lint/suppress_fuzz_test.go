package lint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzSuppressDirective drives the pure directive parser with arbitrary
// comment text. The parser sits on an untrusted boundary in the sense that
// any contributor's comment reaches it, and a panic here would take down the
// whole analysis (and with it the CI gate), so the invariants are:
//
//   - never panic, for any input;
//   - classify into exactly one of {not-a-directive, ok, malformed};
//   - a directive classified ok names a registered rule or "all" — typos can
//     never silently disable a check;
//   - inputs without the schedlint:ignore marker are never directives;
//   - a valid directive is stable under comment-marker and whitespace
//     wrapping (// vs /* */), since both comment forms carry directives.
func FuzzSuppressDirective(f *testing.F) {
	seeds := []string{
		"//schedlint:ignore detrand seeded sentinel for fixtures",
		"// schedlint:ignore all generated file",
		"/*schedlint:ignore floateq exact-by-construction*/",
		"//schedlint:ignore",
		"//schedlint:ignore detrand",
		"//schedlint:ignore nosuchrule because",
		"// plain comment",
		"//schedlint:ignoredetrand reason",
		"//schedlint:ignore  detrand \t tab-separated reason",
		"//SCHEDLINT:IGNORE detrand case matters",
		"//schedlint:ignore all nbsp",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := func(name string) bool {
		for _, r := range registry {
			if r.Name == name {
				return true
			}
		}
		return false
	}
	f.Fuzz(func(t *testing.T, raw string) {
		d := parseIgnoreDirective(raw, known)
		switch d.Kind {
		case notDirective:
			if d.Rule != "" || d.Problem != "" {
				t.Fatalf("non-directive carries payload: %+v", d)
			}
		case directiveOK:
			if d.Rule != "all" && !known(d.Rule) {
				t.Fatalf("parser accepted unregistered rule %q from %q", d.Rule, raw)
			}
			if d.Problem != "" {
				t.Fatalf("ok directive carries a problem: %+v", d)
			}
			// A rule name came out of strings.Fields: no spaces possible.
			if strings.IndexFunc(d.Rule, unicode.IsSpace) >= 0 {
				t.Fatalf("rule name contains whitespace: %q", d.Rule)
			}
		case directiveMalformed:
			if d.Problem == "" {
				t.Fatalf("malformed directive without a message from %q", raw)
			}
			if d.Rule != "" {
				t.Fatalf("malformed directive carries a rule: %+v", d)
			}
		default:
			t.Fatalf("impossible classification %d from %q", d.Kind, raw)
		}

		// Inputs that do not mention the marker can never be directives.
		if !strings.Contains(raw, ignorePrefix) && d.Kind != notDirective {
			t.Fatalf("input without %q classified as directive: %q → %+v", ignorePrefix, raw, d)
		}

		// Valid directives are stable under the other comment wrapping.
		if d.Kind == directiveOK && strings.HasPrefix(raw, "//") {
			wrapped := "/*" + strings.TrimPrefix(raw, "//") + "*/"
			if d2 := parseIgnoreDirective(wrapped, known); d2.Kind != directiveOK || d2.Rule != d.Rule {
				t.Fatalf("block-comment wrapping changed the parse: %q → %+v vs %q → %+v", raw, d, wrapped, d2)
			}
		}
	})
}
