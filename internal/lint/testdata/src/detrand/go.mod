module fixture.example/detrand

go 1.22
