// Fixture for the detrand rule: global math/rand draws and wall-clock
// seeding are violations; injected generators and explicit seeds are not.
// Expected diagnostics live in the lint_test.go table, keyed by line.
package sched

import (
	"math/rand"
	"time"
)

// globalDraw uses the process-wide source: line 13 violates.
func globalDraw(n int) int {
	return rand.Intn(n)
}

// moreGlobals: lines 18, 19, 20 violate.
func moreGlobals() float64 {
	rand.Seed(1)
	rand.Shuffle(3, func(i, j int) {})
	return rand.Float64() + rand.ExpFloat64()
}

// wallClockSeed seeds from the wall clock: line 25 violates.
func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// injected draws from a caller-supplied generator: clean.
func injected(r *rand.Rand, n int) int {
	return r.Intn(n)
}

// explicitSeed builds a generator from a fixed seed: clean.
func explicitSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// fakeRand proves go/types-based resolution: a local identifier named rand
// is not the package.
type fakeRand struct{}

func (fakeRand) Intn(n int) int { return 0 }

// shadowed is clean: rand here is a local variable.
func shadowed() int {
	rand := fakeRand{}
	return rand.Intn(3)
}
