module fixture.example/floateq

go 1.22
