// Fixture for the floateq rule: exact ==/!= between float operands is a
// violation; constant folding, integer comparisons, and epsilon tests are
// not. Expected diagnostics live in the lint_test.go table, keyed by line.
package objective

import "math"

type fitness float64

// eq compares accumulated floats exactly: lines 12, 13 violate.
func eq(a, b float64, c, d float32) bool {
	return a == b ||
		c != d
}

// namedFloat violates through a defined type with float underlying: line 18.
func namedFloat(a, b fitness) bool {
	return a == b
}

// zeroSentinel compares a variable to the constant 0: line 23 violates.
func zeroSentinel(total float64) bool {
	return total == 0
}

// constFold is exact by construction (both operands constant): clean.
func constFold() bool {
	return 1.5 == 3.0/2.0
}

// integers are exact: clean.
func integers(a, b int) bool {
	return a == b
}

// epsilon is the sanctioned comparison: clean.
func epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}
