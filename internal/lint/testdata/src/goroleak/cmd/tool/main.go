// Commands sit outside goroleak's internal/ scope: this fire-and-forget
// launch must stay clean.
package main

func main() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}
