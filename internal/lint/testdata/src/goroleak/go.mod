module fixture.example/goroleak

go 1.22
