// Fixture for the goroleak rule: goroutines with no visible join protocol
// are violations; WaitGroup discipline, channel operations (direct or via a
// called helper), join-handle launch arguments, and dynamic launches are
// clean. Expected diagnostics live in the lint_test.go table, keyed by line.
package foo

import "sync"

// fireAndForget launches pure computation nothing can wait for: violation.
func fireAndForget(xs []int) {
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s
	}()
}

// viaHelper launches a helper that never communicates: violation.
func viaHelper() {
	go spin(100)
}

func spin(n int) {
	for i := 0; i < n; i++ {
		_ = i * i
	}
}

// joined follows the WaitGroup protocol: clean.
func joined(xs []int) int {
	var wg sync.WaitGroup
	total := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			total += x
		}
	}()
	wg.Wait()
	return total
}

// channelJoin sends its result on a channel: clean.
func channelJoin() int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	return <-ch
}

// handleArg hands the goroutine a channel at launch: clean.
func handleArg() <-chan int {
	ch := make(chan int, 1)
	go produce(ch)
	return ch
}

func produce(ch chan int) { ch <- 1 }

// transitive delegates the join protocol to a called helper: clean (the
// call graph proves produce communicates).
func transitive(ch chan int) {
	go func() {
		produce(ch)
	}()
}

// dynamic launches through a function value; the body is invisible to static
// analysis, so the rule stays conservative: clean.
func dynamic(fn func()) {
	go fn()
}
