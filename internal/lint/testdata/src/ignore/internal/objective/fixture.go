// Fixture for //schedlint:ignore handling: well-formed directives silence
// diagnostics on their own line and the line below; wrong-rule directives
// silence nothing; directives without a reason or naming an unknown rule
// are themselves diagnosed (rule "ignore"). Expected diagnostics live in
// the lint_test.go table, keyed by line.
package objective

// sameLine is suppressed by a trailing directive: clean.
func sameLine(total float64) bool {
	return total == 0 //schedlint:ignore floateq sum of non-negative terms, exact zero iff all terms are zero
}

// lineAbove is suppressed by the directive on the preceding line: clean.
func lineAbove(a float64) bool {
	//schedlint:ignore floateq zero is the documented unset sentinel
	return a == 0
}

// allRule is suppressed by the wildcard: clean.
func allRule(a, b float64) bool {
	//schedlint:ignore all fixture exercising the wildcard
	return a == b
}

// wrongRule names a different rule, so floateq still fires: line 29
// violates.
func wrongRule(a float64) bool {
	//schedlint:ignore detrand directive aimed at the wrong rule
	return a != 0
}

// tooFar sits two lines above the comparison, out of directive range:
// line 37 violates.
func tooFar(a float64) bool {
	//schedlint:ignore floateq directives only reach one line down

	return a == 0
}

// missingReason is malformed: line 43 gets an "ignore" diagnostic and the
// comparison on line 44 still violates.
func missingReason(a float64) bool {
	//schedlint:ignore floateq
	return a == 0
}

// unknownRule is malformed: line 50 gets an "ignore" diagnostic and the
// comparison on line 51 still violates.
func unknownRule(a float64) bool {
	//schedlint:ignore floateqq typo in the rule name
	return a == 0
}
