module fixture.example/interproc

go 1.22
