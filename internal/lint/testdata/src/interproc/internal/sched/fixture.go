// Fixture for the interprocedural detrand pass: a deterministic package
// calling a helper whose static call graph reaches the global rand source is
// flagged at the call site, with the witness chain. Expected diagnostics
// live in the lint_test.go table, keyed by line.
package sched

import "fixture.example/interproc/internal/util"

// jittered imports nondeterminism through util.Jitter: violation (detrand)
// at the call.
func jittered(n int) int {
	return util.Jitter(n)
}

// pure calls a sink-free helper: clean.
func pure(a, b int) int {
	return util.Pure(a, b)
}
