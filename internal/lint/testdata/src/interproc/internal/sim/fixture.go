// Fixture for the interprocedural simclock pass: the wall-clock read is two
// module calls away (util.Wrap → util.stamp → time.Now), and the violation
// lands on the simulation package's call site with that witness chain.
// Expected diagnostics live in the lint_test.go table, keyed by line.
package sim

import "fixture.example/interproc/internal/util"

// stamped reaches time.Now through two hops: violation (simclock) at the
// call.
func stamped() int64 {
	return util.Wrap()
}

// bounded calls the same helper package's sink-free function: clean.
func bounded(a, b int) int {
	return util.Pure(a, b)
}
