// Package util sits outside the deterministic set: it may read the clock
// and the global rand source itself, but a deterministic package calling
// into it imports the nondeterminism — which the interprocedural pass must
// pin on the caller.
package util

import (
	"math/rand"
	"time"
)

// Jitter draws from the process-wide source: a one-hop rand sink.
func Jitter(n int) int { return rand.Intn(n) }

// Wrap reaches time.Now through a second hop (stamp).
func Wrap() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }

// Pure reaches no sink: calls to it stay clean everywhere.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}
