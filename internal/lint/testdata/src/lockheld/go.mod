module fixture.example/lockheld

go 1.22
