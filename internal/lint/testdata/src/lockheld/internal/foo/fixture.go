// Fixture for the lockheld rule: blocking operations inside critical
// sections and unguarded accesses to `guarded by:` fields are violations;
// branch-local lock+return idioms, closures as separate scopes, and
// constructor-time field access are clean. Expected diagnostics live in the
// lint_test.go table, keyed by line.
package foo

import (
	"sync"
	"time"
)

type queue struct {
	mu sync.Mutex
	// guarded by: mu
	items []int
	out   chan int
}

// sendWhileLocked performs a channel send inside the critical section:
// violation at the send.
func (q *queue) sendWhileLocked(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.out <- v
	q.mu.Unlock()
}

// sendAfterUnlock releases before sending: clean.
func (q *queue) sendAfterUnlock(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.out <- v
}

// deferHolds keeps the lock through a deferred Unlock, so the receive still
// happens under it: violation.
func (q *queue) deferHolds() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	v := <-q.out
	_ = q.items
	return v
}

// waitWhileLocked parks on a WaitGroup inside the critical section:
// violation.
func (q *queue) waitWhileLocked(wg *sync.WaitGroup) {
	q.mu.Lock()
	wg.Wait()
	q.mu.Unlock()
}

// sleepWhileLocked sleeps inside the critical section: violation.
func (q *queue) sleepWhileLocked() {
	q.mu.Lock()
	time.Sleep(time.Millisecond)
	q.mu.Unlock()
}

// selects: the blocking select violates; the one with a default is clean.
func (q *queue) selects() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.out:
		return v
	}
}

func (q *queue) trySelect() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.out:
		return v
	default:
		return -1
	}
}

// tryPop is the branch-local lock+return idiom: clean.
func (q *queue) tryPop() (int, bool) {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return 0, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.mu.Unlock()
	q.out <- v
	return v, true
}

// closureScope returns a closure: its body runs under the caller's lock
// state, not this function's, so the send inside it is clean here.
func (q *queue) closureScope() func(int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return func(v int) {
		q.out <- v
	}
}

// peek reads the guarded field without ever locking mu: violations at both
// accesses.
func (q *queue) peek() int {
	if len(q.items) == 0 {
		return -1
	}
	return q.items[0]
}

// newQueue is still constructing the value, so the guarded write is clean.
func newQueue() *queue {
	q := &queue{out: make(chan int, 1)}
	q.items = make([]int, 0, 8)
	return q
}
