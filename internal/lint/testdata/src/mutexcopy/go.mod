module fixture.example/mutexcopy

go 1.22
