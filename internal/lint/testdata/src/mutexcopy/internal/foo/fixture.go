// Fixture for the mutexcopy rule: by-value movement of lock-containing
// values is a violation; construction and pointer passing are not. Expected
// diagnostics live in the lint_test.go table, keyed by line.
package foo

import "sync"

// guarded contains a lock directly; nested embeds one transitively.
type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner guarded
	tag   string
}

// byValueParam copies the lock on every call: line 20 violates.
func byValueParam(g guarded) int {
	return g.n
}

// byValueReceiver copies the lock on every method call: line 25 violates.
func (g guarded) byValueReceiver() int {
	return g.n
}

// derefCopy duplicates live lock state: line 31 violates.
func derefCopy(g *guarded) {
	cp := *g
	_ = cp
}

// rangeCopy copies each element out of the slice: line 38 violates.
func rangeCopy(gs []nested) int {
	total := 0
	for _, g := range gs {
		total += g.inner.n
	}
	return total
}

// returnCopy leaks a copy of live state: line 46 violates.
func returnCopy(g *nested) nested {
	return *g
}

// construct returns a fresh composite literal: clean.
func construct() guarded {
	return guarded{}
}

// pointers move references, never lock state: clean.
func pointers(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// indexRange avoids the element copy: clean.
func indexRange(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
