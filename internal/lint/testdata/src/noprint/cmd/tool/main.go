// Commands own the terminal; cmd/ is outside noprint's scope.
package main

import "fmt"

func main() {
	fmt.Println("ok")
}
