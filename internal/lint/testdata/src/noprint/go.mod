module fixture.example/noprint

go 1.22
