// Fixture for the noprint rule: stdout/stderr writes from library packages
// are violations; Sprintf/Fprintf to an injected writer are not. Expected
// diagnostics live in the lint_test.go table, keyed by line.
package foo

import (
	"fmt"
	"io"
)

// chatty writes to stdout/stderr behind the caller's back: lines 14, 15, 16
// violate.
func chatty(n int) {
	fmt.Println("n =", n)
	fmt.Printf("%d\n", n)
	println("debug", n)
}

// clean renders through values and injected writers.
func clean(w io.Writer, n int) string {
	fmt.Fprintf(w, "%d\n", n)
	return fmt.Sprintf("%d", n)
}

// printlnMethod proves builtin resolution: a method named println is clean.
type logger struct{}

func (logger) println(args ...any) {}

func viaMethod() {
	var l logger
	l.println("fine")
}
