// Fixture for the noprint rule: stdout/stderr writes from library packages
// are violations — fmt.Print*, builtin println, log.Print*/Fatal*, and any
// reference to os.Stdout/os.Stderr; Sprintf/Fprintf to an injected writer
// are not. Expected diagnostics live in the lint_test.go table, keyed by
// line.
package foo

import (
	"fmt"
	"io"
	"log"
	"os"
)

// chatty writes to stdout/stderr behind the caller's back: lines 18, 19, 20
// violate.
func chatty(n int) {
	fmt.Println("n =", n)
	fmt.Printf("%d\n", n)
	println("debug", n)
}

// clean renders through values and injected writers.
func clean(w io.Writer, n int) string {
	fmt.Fprintf(w, "%d\n", n)
	return fmt.Sprintf("%d", n)
}

// printlnMethod proves builtin resolution: a method named println is clean.
type logger struct{}

func (logger) println(args ...any) {}

func viaMethod() {
	var l logger
	l.println("fine")
}

// logging writes to the process-wide logger: lines 42, 43 violate (and
// Fatal additionally kills the process).
func logging(err error) {
	log.Printf("x: %v", err)
	log.Fatalln(err)
}

// streams reaches for the process streams directly: lines 49, 50 violate
// (one finding per os.Std* reference).
func streams() {
	fmt.Fprintf(os.Stdout, "hi\n")
	w := os.Stderr
	_ = w
}

// injectedLogger writes through a caller-supplied logger: clean.
func injectedLogger(lg *log.Logger, n int) {
	lg.Printf("%d", n)
}
