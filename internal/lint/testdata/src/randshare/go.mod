module fixture.example/randshare

go 1.22
