// Package parallel is a miniature objective.ParallelFor: its callback
// parameter escapes onto worker goroutines, which the engine's fan-out
// analysis must discover (directly for For, transitively for Map).
package parallel

import "sync"

// For runs fn(i) for every i in [0, n) across goroutines.
func For(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Map forwards its callback into For: the concurrent-parameter mark must
// propagate through this wrapper.
func Map(n int, fn func(i int)) { For(n, fn) }
