// Fixture for the randshare rule: rand streams crossing a concurrency
// boundary by capture or argument are violations; deriving per-index child
// streams inside the concurrent scope, and per-index reads of pre-split
// stream slices, are the sanctioned patterns. Expected diagnostics live in
// the lint_test.go table, keyed by line.
package sched

import (
	"math/rand"

	"fixture.example/randshare/internal/parallel"
	"fixture.example/randshare/internal/xrand"
)

// sharedGoClosure captures the parent's *rand.Rand in a goroutine closure:
// violation at the use of r.
func sharedGoClosure(r *rand.Rand, done chan struct{}) {
	go func() {
		_ = r.Intn(10)
		close(done)
	}()
}

// sharedCallback captures an xrand.Source in a ParallelFor-style callback:
// violation (For's fn parameter escapes onto worker goroutines).
func sharedCallback(src *xrand.Source, n int) {
	parallel.For(n, func(i int) {
		_ = src.Uint64()
	})
}

// sharedViaMap proves the fan-out mark propagates through wrappers:
// violation inside a Map callback.
func sharedViaMap(src *xrand.Source, n int) {
	parallel.Map(n, func(i int) {
		_ = src.Float64()
	})
}

// aliased shares through an alias chain: both the aliasing read of r and the
// use of r2 violate.
func aliased(r *rand.Rand, done chan struct{}) {
	go func() {
		r2 := r
		_ = r2.Intn(3)
		close(done)
	}()
}

// launchArg hands the stream over as a `go` argument: violation at r.
func launchArg(r *rand.Rand, done chan struct{}) {
	go consume(r, done)
}

func consume(r *rand.Rand, done chan struct{}) {
	_ = r.Intn(5)
	close(done)
}

type config struct {
	Rng *xrand.Source
}

// fieldChain reaches a shared stream through a captured struct: violation at
// cfg.Rng.
func fieldChain(cfg *config, n int) {
	parallel.For(n, func(i int) {
		_ = cfg.Rng.Uint64()
	})
}

// splitPerIndex derives a child stream inside each callback: clean (the PR 5
// determinism model's sanctioned pattern).
func splitPerIndex(seed uint64, n int) {
	parallel.For(n, func(i int) {
		src := xrand.Stream(seed, i)
		_ = src.Uint64()
	})
}

// freshInside builds a generator inside the goroutine from a captured plain
// seed: clean.
func freshInside(seed int64, done chan struct{}) {
	go func() {
		r := rand.New(rand.NewSource(seed))
		_ = r.Intn(4)
		close(done)
	}()
}

// preSplit reads a pre-split stream slice per index: clean (indexing is the
// materialized form of splitting).
func preSplit(seed uint64, n int) {
	streams := make([]*xrand.Source, n)
	for i := range streams {
		streams[i] = xrand.Stream(seed, i)
	}
	parallel.For(n, func(i int) {
		_ = streams[i].Uint64()
	})
}

type shard struct{ rng *xrand.Source }

// shardRead reaches a stream through an indexed shard: clean.
func shardRead(shards []shard, n int) {
	parallel.For(n, func(i int) {
		_ = shards[i].rng.Uint64()
	})
}

// launchFresh passes a freshly derived child at launch: clean (calls are
// fresh values).
func launchFresh(seed uint64, done chan struct{}) {
	go consumeSrc(xrand.Stream(seed, 1), done)
}

func consumeSrc(s *xrand.Source, done chan struct{}) {
	_ = s.Uint64()
	close(done)
}
