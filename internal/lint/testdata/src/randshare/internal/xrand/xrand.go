// Package xrand mirrors the repository's splittable-stream package closely
// enough for the randshare rule's type matching (package basename "xrand",
// type Source).
package xrand

// Source is a deterministic stream cursor.
type Source struct{ state uint64 }

// Stream derives the i-th child stream of seed.
func Stream(seed uint64, i int) *Source { return &Source{state: seed ^ uint64(i)*0x9e3779b97f4a7c15} }

// Uint64 advances the cursor.
func (s *Source) Uint64() uint64 { s.state++; return s.state }

// Float64 draws a float in [0, 1).
func (s *Source) Float64() float64 { return float64(s.Uint64()%1000) / 1000 }
