// Commands talk to humans in real time; cmd/ is outside simclock's scope.
package main

import "time"

func main() {
	_ = time.Now()
}
