module fixture.example/simclock

go 1.22
