// The daemon measures real scheduling time (the paper's SA metric), so
// internal/service sits outside simclock's scope: nothing here is flagged.
package service

import "time"

func measure() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
