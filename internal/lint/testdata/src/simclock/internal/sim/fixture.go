// Fixture for the simclock rule: wall-clock reads in simulation packages
// are violations; representing durations is not. Expected diagnostics live
// in the lint_test.go table, keyed by line.
package sim

import "time"

// readClock observes real time: lines 10, 11, 15 violate.
func readClock() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	// Representing a duration (time.Millisecond above) is fine; observing
	// the clock is not.
	var d time.Duration = 2 * time.Second
	return time.Since(start) + d
}

// ticker schedules on the host clock: lines 20, 22 violate.
func ticker() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	_ = time.After(time.Minute)
}

// represent only names duration types and constants: clean.
func represent(budget time.Duration) float64 {
	return budget.Seconds()
}
