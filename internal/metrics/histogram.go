package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a thread-safe fixed-bucket histogram in the cumulative style
// Prometheus expects: observation x lands in the first bucket whose upper
// bound is ≥ x, and a snapshot reports, per bound, how many observations
// were ≤ it, plus the running sum and count. The scheduling service records
// per-scheduler scheduling-time distributions with it; nothing in it is
// HTTP-specific, so ablation harnesses can reuse it for any latency-shaped
// quantity.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on empty, unsorted, duplicate, or non-finite bounds — bucket
// layouts are static configuration, where failing fast at construction is
// the only sensible behaviour.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: non-finite histogram bound %v", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly ascending at index %d (%v after %v)", i, b, bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponentially spaced bounds start, start·factor,
// start·factor², … — the standard layout for latency histograms. It panics
// on non-positive start, factor ≤ 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one value. NaN observations are dropped — they would
// poison the sum without being attributable to any bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Merge folds o's observations into h: per-bucket counts, the observation
// count, and the running sum all add. Both histograms must share the same
// bucket layout; like NewHistogram, a mismatch panics because layouts are
// static configuration. Merge locks o only long enough to copy its state
// and never holds both locks at once, so any two histograms can be merged
// concurrently with ongoing Observe calls — the sharded daemon uses this to
// render one fleet-wide series from per-shard histograms at scrape time.
func (h *Histogram) Merge(o *Histogram) {
	o.mu.Lock()
	counts := append([]uint64(nil), o.counts...)
	sum, count := o.sum, o.count
	bounds := o.bounds
	o.mu.Unlock()

	if len(bounds) != len(h.bounds) {
		panic(fmt.Sprintf("metrics: merging histograms with %d and %d bounds", len(h.bounds), len(bounds)))
	}
	for i, b := range bounds {
		if b != h.bounds[i] { // layout identity is exact equality by design
			panic(fmt.Sprintf("metrics: merging histograms with different bounds at index %d (%v vs %v)", i, h.bounds[i], b))
		}
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.sum += sum
	h.count += count
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, ascending (excludes +Inf)
	Cumulative []uint64  // per bound: observations ≤ bound
	Sum        float64
	Count      uint64 // total observations, including the +Inf bucket
}

// Snapshot returns a cumulative view suitable for direct rendering as
// Prometheus `_bucket`/`_sum`/`_count` series.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds:     h.bounds, // immutable after construction
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var running uint64
	for i := range h.bounds {
		running += h.counts[i]
		snap.Cumulative[i] = running
	}
	return snap
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket layout the
// way Prometheus' histogram_quantile does: find the first bucket whose
// cumulative count reaches q·Count and interpolate linearly within it,
// treating the first bucket's lower edge as 0. Observations above the last
// bound live in the implicit +Inf bucket, so any quantile landing there
// clamps to the last finite bound — the histogram cannot resolve beyond it.
// It returns NaN for an empty histogram or a q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	snap := h.Snapshot()
	if snap.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(snap.Count)
	last := len(snap.Bounds) - 1
	for i, cum := range snap.Cumulative {
		if float64(cum) < rank {
			continue
		}
		lo, loCount := 0.0, uint64(0)
		if i > 0 {
			lo, loCount = snap.Bounds[i-1], snap.Cumulative[i-1]
		}
		in := snap.Cumulative[i] - loCount
		if in == 0 {
			return snap.Bounds[i]
		}
		return lo + (snap.Bounds[i]-lo)*(rank-float64(loCount))/float64(in)
	}
	// The rank falls in the +Inf bucket: clamp to the largest finite bound.
	return snap.Bounds[last]
}
