package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramCumulativeSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	// ≤1: {0.5, 1}; ≤10: +{5}; ≤100: +{50}; +Inf: +{500, 5000}.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if snap.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (snapshot %+v)", i, snap.Cumulative[i], w, snap)
		}
	}
	if got, wantSum := snap.Sum, 0.5+1+5+50+500+5000; got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	snap := h.Snapshot()
	if snap.Count != 1 || math.IsNaN(snap.Sum) {
		t.Fatalf("NaN observation polluted the histogram: %+v", snap)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {10, 1},
		"duplicate":  {1, 1},
		"nan":        {math.NaN()},
		"inf":        {math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds accepted", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ExpBuckets(0, 2, 3) accepted")
			}
		}()
		ExpBuckets(0, 2, 3)
	}()
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 10)
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.Cumulative[len(snap.Cumulative)-1] > snap.Count {
		t.Fatalf("cumulative exceeds count: %+v", snap)
	}
}

func TestHistogramQuantile(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64 // math.NaN() means "expect NaN"
	}{
		{"empty histogram", []float64{1, 10}, nil, 0.5, math.NaN()},
		{"negative q", []float64{1, 10}, []float64{5}, -0.1, math.NaN()},
		{"q above one", []float64{1, 10}, []float64{5}, 1.5, math.NaN()},
		{"NaN q", []float64{1, 10}, []float64{5}, math.NaN(), math.NaN()},
		// A single observation in (1,10] interpolates within that bucket:
		// rank q·1 over 1 in-bucket count spans the bucket linearly.
		{"single observation median", []float64{1, 10}, []float64{5}, 0.5, 1 + 9*0.5},
		{"single observation p100", []float64{1, 10}, []float64{5}, 1, 10},
		// First bucket's lower edge is 0.
		{"first bucket interpolates from zero", []float64{10, 20}, []float64{1, 2, 3, 4}, 0.5, 5},
		// Observations above the last bound land in +Inf and clamp.
		{"out-of-range clamps to last bound", []float64{1, 10}, []float64{500, 600, 700}, 0.9, 10},
		{"zero q of nonempty", []float64{1, 10}, []float64{0.5, 5}, 0, 0},
		// Even split across two buckets: p50 hits the first bound exactly.
		{"even split", []float64{1, 10}, []float64{0.5, 1, 5, 7}, 0.5, 1},
		{"p75 of even split", []float64{1, 10}, []float64{0.5, 1, 5, 7}, 0.75, 1 + 9*0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Quantile(%v) = %v, want NaN", tc.q, got)
				}
				return
			}
			if !approx(got, tc.want) {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 2, 16))
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 * float64(i%64))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, cur, prev)
		}
		prev = cur
	}
}
