package metrics

import (
	"sort"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective/kernel"
	"bioschedsim/internal/sim"
)

// RunStats holds the partial aggregates from which Eq. 12 (simulation time)
// and Eq. 13 (degree of time imbalance) are computable over a union of
// cloudlet sets without revisiting the cloudlets — the reduction state of a
// sharded daemon, where each shard's engine finishes its own cloudlets and
// the service must report fleet-wide figures.
//
// Determinism contract: Eq. 12 and Eq. 13's numerator only involve min/max,
// which are exact under any association, so SimTime and the (MaxExec −
// MinExec) spread are bit-identical however a cloudlet set is partitioned
// and merged. SumExec is a float accumulation whose grouping follows the
// merge order, so Imbalance computed from folded RunStats is deterministic
// for a fixed shard layout (fold shards in ascending index order) but not
// guaranteed bit-identical across different shard counts; when cross-layout
// bit-identity is required — the shard-count-invariance check — compute
// Eq. 13 over MergeFinished's canonical union instead, whose summation
// order is independent of the partition.
type RunStats struct {
	Count     int
	MinStart  sim.Time
	MaxFinish sim.Time
	MinExec   float64
	MaxExec   float64
	SumExec   float64
}

// CollectRunStats aggregates one finished set through the Eq. 12/13
// reduction kernels: min/max are seeded from the first cloudlet and SumExec
// accumulates in slice order, exactly like the historical scalar fold. The
// zero RunStats is the empty set and is the identity of Merge.
func CollectRunStats(cloudlets []*cloud.Cloudlet) RunStats {
	if len(cloudlets) == 0 {
		return RunStats{}
	}
	starts, finishes, execs := gather3(cloudlets)
	var s RunStats
	s.Count = len(cloudlets)
	s.MinStart, _, _ = kernel.MinMaxSum(starts)
	_, s.MaxFinish, _ = kernel.MinMaxSum(finishes)
	s.MinExec, s.MaxExec, s.SumExec = kernel.MinMaxSum(execs)
	return s
}

// Merge folds o into s and returns the combined aggregate — the ordered
// shard-metric reduction. It is exact (bit-identical under any grouping)
// for every field except SumExec, whose float additions follow the fold
// order; callers wanting a canonical result fold shards in ascending index
// order. An empty side is the identity.
func (s RunStats) Merge(o RunStats) RunStats {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	if o.MinStart < s.MinStart {
		s.MinStart = o.MinStart
	}
	if o.MaxFinish > s.MaxFinish {
		s.MaxFinish = o.MaxFinish
	}
	if o.MinExec < s.MinExec {
		s.MinExec = o.MinExec
	}
	if o.MaxExec > s.MaxExec {
		s.MaxExec = o.MaxExec
	}
	s.SumExec += o.SumExec
	s.Count += o.Count
	return s
}

// SimTime returns Eq. 12 over the aggregated set: max finish − min start,
// 0 for the empty aggregate. Exactly SimulationTime of the underlying
// union, under any partition.
func (s RunStats) SimTime() sim.Time {
	if s.Count == 0 {
		return 0
	}
	return s.MaxFinish - s.MinStart
}

// Imbalance returns Eq. 13 over the aggregated set: (max − min) / avg of
// per-cloudlet execution times, 0 for the empty aggregate or a zero
// average. See the type comment for the SumExec grouping caveat.
func (s RunStats) Imbalance() float64 {
	if s.Count == 0 {
		return 0
	}
	avg := s.SumExec / float64(s.Count)
	if avg == 0 {
		return 0
	}
	return (s.MaxExec - s.MinExec) / avg
}

// MergeFinished merges per-shard finished sets into the canonical union:
// every cloudlet of every part, ordered by ascending cloudlet ID (ties kept
// in part order, though IDs are unique in practice). Because the order
// depends only on the union's membership — never on how it was partitioned
// or in which order shards completed — every metric computed over the
// merged slice, including order-sensitive float accumulations like
// TimeImbalance's sum, is bit-identical across shard layouts. This is the
// merge the shard-count-invariance check relies on.
func MergeFinished(parts ...[]*cloud.Cloudlet) []*cloud.Cloudlet {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]*cloud.Cloudlet, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
