package metrics

import (
	"math"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/xrand"
)

// finishedSet fabricates n finished cloudlets with xrand-drawn timelines.
func finishedSet(n int, seed uint64) []*cloud.Cloudlet {
	r := xrand.New(seed, 0)
	out := make([]*cloud.Cloudlet, n)
	for i := range out {
		c := cloud.NewCloudlet(i+1, 1000, 1, 0, 0)
		c.SubmitTime = sim.Time(r.Float64())
		c.StartTime = c.SubmitTime + sim.Time(r.Float64()*3)
		c.FinishTime = c.StartTime + sim.Time(0.1+r.Float64()*17)
		out[i] = c
	}
	return out
}

// partitions splits cloudlets into k round-robin parts — deliberately
// non-contiguous, so the union order differs from every part order.
func partitions(cls []*cloud.Cloudlet, k int) [][]*cloud.Cloudlet {
	parts := make([][]*cloud.Cloudlet, k)
	for i, c := range cls {
		parts[i%k] = append(parts[i%k], c)
	}
	return parts
}

func TestRunStatsMatchesDirectMetrics(t *testing.T) {
	cls := finishedSet(37, 7)
	s := CollectRunStats(cls)
	if got, want := float64(s.SimTime()), float64(SimulationTime(cls)); got != want {
		t.Fatalf("SimTime %v != SimulationTime %v", got, want)
	}
	if got, want := s.Imbalance(), TimeImbalance(cls); got != want {
		t.Fatalf("Imbalance %v != TimeImbalance %v", got, want)
	}
	if s.Count != 37 {
		t.Fatalf("Count = %d", s.Count)
	}
}

func TestRunStatsMergeIdentityAndEmpty(t *testing.T) {
	var zero RunStats
	if zero.SimTime() != 0 || zero.Imbalance() != 0 {
		t.Fatal("empty aggregate not zero")
	}
	s := CollectRunStats(finishedSet(5, 1))
	if got := s.Merge(zero); got != s {
		t.Fatalf("merge with empty changed the aggregate: %+v vs %+v", got, s)
	}
	if got := zero.Merge(s); got != s {
		t.Fatalf("empty.Merge(s) != s: %+v vs %+v", got, s)
	}
}

// TestRunStatsSimTimePartitionInvariant is the Eq. 12 half of the
// determinism contract: min/max folds are exact, so the merged simulation
// time is bit-identical under every partition and fold order.
func TestRunStatsSimTimePartitionInvariant(t *testing.T) {
	cls := finishedSet(64, 42)
	want := CollectRunStats(cls).SimTime()
	for _, k := range []int{1, 2, 3, 4, 7, 64} {
		var folded RunStats
		for _, p := range partitions(cls, k) {
			folded = folded.Merge(CollectRunStats(p))
		}
		if got := folded.SimTime(); float64(got) != float64(want) {
			t.Fatalf("k=%d: folded SimTime %v != whole-set %v", k, got, want)
		}
		if folded.Count != 64 {
			t.Fatalf("k=%d: folded count %d", k, folded.Count)
		}
		// The Eq. 13 numerator is min/max too, hence exact.
		whole := CollectRunStats(cls)
		if folded.MinExec != whole.MinExec || folded.MaxExec != whole.MaxExec {
			t.Fatalf("k=%d: exec extrema moved under partition", k)
		}
	}
}

// TestMergeFinishedCanonicalOrder is the Eq. 13 half: the ID-sorted union
// is independent of the partition, so even order-sensitive float sums over
// it are bit-identical across shard layouts.
func TestMergeFinishedCanonicalOrder(t *testing.T) {
	cls := finishedSet(50, 3)
	want := TimeImbalance(MergeFinished(cls))
	for _, k := range []int{1, 2, 3, 5, 50} {
		merged := MergeFinished(partitions(cls, k)...)
		if len(merged) != len(cls) {
			t.Fatalf("k=%d: merged %d of %d", k, len(merged), len(cls))
		}
		for i := 1; i < len(merged); i++ {
			if merged[i-1].ID > merged[i].ID {
				t.Fatalf("k=%d: merge not ID-ordered at %d", k, i)
			}
		}
		if got := TimeImbalance(merged); got != want {
			t.Fatalf("k=%d: Eq.13 over merged union %v != canonical %v", k, got, want)
		}
	}
	if got := MergeFinished(); got == nil || len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := ExpBuckets(1, 2, 5) // 1 2 4 8 16
	a, b := NewHistogram(bounds), NewHistogram(bounds)
	for _, v := range []float64{0.5, 3, 100} {
		a.Observe(v)
	}
	for _, v := range []float64{1, 7, 9} {
		b.Observe(v)
	}
	a.Merge(b)
	snap := a.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("merged count %d, want 6", snap.Count)
	}
	if want := 0.5 + 3 + 100 + 1 + 7 + 9; snap.Sum != want {
		t.Fatalf("merged sum %v, want %v", snap.Sum, want)
	}
	// Cumulative ≤8 covers 0.5, 3, 1, 7: four observations.
	if got := snap.Cumulative[3]; got != 4 {
		t.Fatalf("cumulative ≤8 = %d, want 4", got)
	}
	// b unchanged.
	if got := b.Snapshot().Count; got != 3 {
		t.Fatalf("source histogram mutated: count %d", got)
	}
}

func TestHistogramMergeRejectsLayoutMismatch(t *testing.T) {
	for name, other := range map[string]*Histogram{
		"different length": NewHistogram(ExpBuckets(1, 2, 4)),
		"different bounds": NewHistogram(ExpBuckets(2, 2, 5)),
	} {
		h := NewHistogram(ExpBuckets(1, 2, 5))
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: merge did not panic", name)
				}
			}()
			h.Merge(other)
		}()
	}
}

func TestRunStatsImbalanceFinite(t *testing.T) {
	cls := finishedSet(10, 9)
	s := CollectRunStats(cls)
	if v := s.Imbalance(); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		t.Fatalf("imbalance %v", v)
	}
}
