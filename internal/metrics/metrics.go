// Package metrics computes the paper's performance measurements (§VI-C):
// scheduling time, simulation time (Eq. 12), degree of time imbalance
// (Eq. 13), and processing cost, plus supporting utilization and fairness
// measures used by the ablations.
package metrics

import (
	"fmt"
	"time"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective/kernel"
	"bioschedsim/internal/sim"
)

// gather3 extracts the start, finish, and execution-time columns of a
// cloudlet set into flat float64 slices — the structure-of-arrays shape the
// Eq. 12/13 reduction kernels fold. sim.Time is an alias of float64, so the
// columns carry the exact stored values.
func gather3(cloudlets []*cloud.Cloudlet) (starts, finishes, execs []float64) {
	n := len(cloudlets)
	buf := make([]float64, 3*n)
	starts, finishes, execs = buf[:n], buf[n:2*n], buf[2*n:]
	for i, c := range cloudlets {
		starts[i] = c.StartTime
		finishes[i] = c.FinishTime
		execs[i] = c.ExecTime()
	}
	return starts, finishes, execs
}

// SimulationTime implements Eq. 12 over finished cloudlets:
// T_sim = max(FinishTime) − min(StartTime). It returns 0 for an empty set.
func SimulationTime(cloudlets []*cloud.Cloudlet) sim.Time {
	if len(cloudlets) == 0 {
		return 0
	}
	starts, finishes, _ := gather3(cloudlets)
	minStart, _, _ := kernel.MinMaxSum(starts)
	_, maxFinish, _ := kernel.MinMaxSum(finishes)
	return maxFinish - minStart
}

// TimeImbalance implements Eq. 13: (T_max − T_min) / T_avg over cloudlet
// execution times. Zero means perfectly even execution; it returns 0 for an
// empty set or when the average execution time is 0.
func TimeImbalance(cloudlets []*cloud.Cloudlet) float64 {
	if len(cloudlets) == 0 {
		return 0
	}
	_, _, execs := gather3(cloudlets)
	min, max, sum := kernel.MinMaxSum(execs)
	avg := sum / float64(len(cloudlets))
	if avg == 0 {
		return 0
	}
	return (max - min) / avg
}

// ProcessingCost sums the per-cloudlet datacenter prices (§VI-C-4).
func ProcessingCost(cloudlets []*cloud.Cloudlet) float64 {
	return cloud.TotalProcessingCost(cloudlets)
}

// MeanExecTime returns the average cloudlet execution time.
func MeanExecTime(cloudlets []*cloud.Cloudlet) sim.Time {
	if len(cloudlets) == 0 {
		return 0
	}
	var sum sim.Time
	for _, c := range cloudlets {
		sum += c.ExecTime()
	}
	return sum / sim.Time(len(cloudlets))
}

// MeanWaitTime returns the average queueing delay before execution.
func MeanWaitTime(cloudlets []*cloud.Cloudlet) sim.Time {
	if len(cloudlets) == 0 {
		return 0
	}
	var sum sim.Time
	for _, c := range cloudlets {
		sum += c.WaitTime()
	}
	return sum / sim.Time(len(cloudlets))
}

// CountImbalance applies Eq. 13's shape to per-VM cloudlet counts:
// (count_max − count_min) / count_avg over the VMs. This is the
// "equal number of Cloudlets" notion of balance the paper's §VI-D2
// narrative uses to explain Figure 6c — the base test is 0 by construction.
// VMs that received nothing count as zero.
func CountImbalance(cloudlets []*cloud.Cloudlet, vms []*cloud.VM) float64 {
	if len(vms) == 0 || len(cloudlets) == 0 {
		return 0
	}
	counts := make(map[*cloud.VM]int, len(vms))
	for _, c := range cloudlets {
		if c.VM != nil {
			counts[c.VM]++
		}
	}
	min, max, sum := counts[vms[0]], counts[vms[0]], 0
	for _, vm := range vms {
		n := counts[vm]
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		sum += n
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(vms))
	return (float64(max) - float64(min)) / avg
}

// SLAViolations counts finished cloudlets that carried a deadline and
// missed it.
func SLAViolations(cloudlets []*cloud.Cloudlet) int {
	n := 0
	for _, c := range cloudlets {
		if c.Deadline != 0 && !c.MetDeadline() {
			n++
		}
	}
	return n
}

// SLAComplianceRate returns the fraction of deadline-bearing cloudlets that
// met their deadline; 1.0 when none carry deadlines.
func SLAComplianceRate(cloudlets []*cloud.Cloudlet) float64 {
	constrained, met := 0, 0
	for _, c := range cloudlets {
		if c.Deadline == 0 {
			continue
		}
		constrained++
		if c.MetDeadline() {
			met++
		}
	}
	if constrained == 0 {
		return 1
	}
	return float64(met) / float64(constrained)
}

// JainFairness computes Jain's fairness index over per-VM assigned work
// (Σx)²/(n·Σx²): 1.0 is perfectly fair, 1/n is maximally unfair. VMs that
// received no cloudlets count with zero load.
func JainFairness(cloudlets []*cloud.Cloudlet, vms []*cloud.VM) float64 {
	if len(vms) == 0 {
		return 0
	}
	load := make(map[*cloud.VM]float64, len(vms))
	for _, c := range cloudlets {
		if c.VM != nil {
			load[c.VM] += c.Length
		}
	}
	var sum, sumSq float64
	for _, vm := range vms {
		x := load[vm]
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(vms)) * sumSq)
}

// Report is the full per-run measurement record the experiment harness
// stores for each (algorithm, scenario) point.
type Report struct {
	Algorithm      string
	Cloudlets      int
	VMs            int
	SchedulingTime time.Duration // wall-clock spent inside Scheduler.Schedule
	SimTime        sim.Time      // Eq. 12, simulated seconds
	Imbalance      float64       // Eq. 13 (per-cloudlet execution times)
	CountImbalance float64       // Eq. 13's shape over per-VM counts (§VI-D2 narrative)
	Cost           float64       // §VI-C-4
	Fairness       float64       // Jain's index over assigned MI
	SLACompliance  float64       // fraction of deadline-bearing cloudlets on time
	EnergyJoules   float64       // plant energy over the horizon (set by harnesses that model power)
	MeanExec       sim.Time
	MeanWait       sim.Time
}

// Collect assembles a Report from a finished run.
func Collect(algorithm string, finished []*cloud.Cloudlet, vms []*cloud.VM, schedTime time.Duration) Report {
	return Report{
		Algorithm:      algorithm,
		Cloudlets:      len(finished),
		VMs:            len(vms),
		SchedulingTime: schedTime,
		SimTime:        SimulationTime(finished),
		Imbalance:      TimeImbalance(finished),
		CountImbalance: CountImbalance(finished, vms),
		Cost:           ProcessingCost(finished),
		Fairness:       JainFairness(finished, vms),
		SLACompliance:  SLAComplianceRate(finished),
		MeanExec:       MeanExecTime(finished),
		MeanWait:       MeanWaitTime(finished),
	}
}

// String renders the report compactly for logs.
func (r Report) String() string {
	return fmt.Sprintf("%s: n=%d m=%d sched=%v sim=%.3fs imb=%.3f cost=%.1f fair=%.3f",
		r.Algorithm, r.Cloudlets, r.VMs, r.SchedulingTime, r.SimTime, r.Imbalance, r.Cost, r.Fairness)
}

// SimTimeMillis returns Eq. 12's value in the paper's milliseconds unit
// (Figs. 4 and 6a).
func (r Report) SimTimeMillis() float64 { return r.SimTime * 1000 }

// SchedulingHours returns the scheduling time in the paper's hours unit
// (Fig. 5).
func (r Report) SchedulingHours() float64 { return r.SchedulingTime.Hours() }

// SchedulingSeconds returns the scheduling time in seconds (Fig. 6b).
func (r Report) SchedulingSeconds() float64 { return r.SchedulingTime.Seconds() }
