package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"bioschedsim/internal/cloud"
)

// done fabricates a finished cloudlet with the given times.
func done(id int, length, start, finish float64, vm *cloud.VM) *cloud.Cloudlet {
	c := cloud.NewCloudlet(id, length, 1, 300, 300)
	c.StartTime = start
	c.FinishTime = finish
	c.Status = cloud.CloudletFinished
	c.VM = vm
	return c
}

func TestSimulationTimeEq12(t *testing.T) {
	cls := []*cloud.Cloudlet{
		done(0, 100, 2, 10, nil),
		done(1, 100, 0, 5, nil),
		done(2, 100, 1, 12, nil),
	}
	// max finish 12 − min start 0 = 12.
	if got := SimulationTime(cls); got != 12 {
		t.Fatalf("Tsim: %v want 12", got)
	}
}

func TestSimulationTimeEmpty(t *testing.T) {
	if SimulationTime(nil) != 0 {
		t.Fatal("empty set should give 0")
	}
}

func TestTimeImbalanceEq13(t *testing.T) {
	cls := []*cloud.Cloudlet{
		done(0, 100, 0, 1, nil), // exec 1
		done(1, 100, 0, 2, nil), // exec 2
		done(2, 100, 0, 3, nil), // exec 3
	}
	// (3−1)/2 = 1.
	if got := TimeImbalance(cls); math.Abs(got-1) > 1e-12 {
		t.Fatalf("imbalance: %v want 1", got)
	}
}

func TestTimeImbalanceUniformIsZero(t *testing.T) {
	cls := []*cloud.Cloudlet{
		done(0, 100, 0, 5, nil),
		done(1, 100, 1, 6, nil),
		done(2, 100, 2, 7, nil),
	}
	if got := TimeImbalance(cls); got != 0 {
		t.Fatalf("imbalance of equal exec times: %v", got)
	}
}

func TestTimeImbalanceDegenerate(t *testing.T) {
	if TimeImbalance(nil) != 0 {
		t.Fatal("empty should be 0")
	}
	zero := []*cloud.Cloudlet{done(0, 100, 5, 5, nil)}
	if TimeImbalance(zero) != 0 {
		t.Fatal("zero-exec-time set should be 0")
	}
}

// TestTimeImbalanceNonNegativeProperty: Eq. 13 is ≥ 0 for any sample.
func TestTimeImbalanceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var cls []*cloud.Cloudlet
		for i, v := range raw {
			e := math.Abs(v)
			if math.IsNaN(e) || math.IsInf(e, 0) {
				e = 1
			}
			cls = append(cls, done(i, 100, 0, e, nil))
		}
		return TimeImbalance(cls) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanExecAndWait(t *testing.T) {
	cls := []*cloud.Cloudlet{
		done(0, 100, 1, 3, nil), // exec 2, wait 1 (submit 0)
		done(1, 100, 3, 7, nil), // exec 4, wait 3
	}
	if got := MeanExecTime(cls); got != 3 {
		t.Fatalf("mean exec: %v", got)
	}
	if got := MeanWaitTime(cls); got != 2 {
		t.Fatalf("mean wait: %v", got)
	}
	if MeanExecTime(nil) != 0 || MeanWaitTime(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
}

func TestJainFairness(t *testing.T) {
	vms := []*cloud.VM{
		cloud.NewVM(0, 1000, 1, 512, 500, 5000),
		cloud.NewVM(1, 1000, 1, 512, 500, 5000),
	}
	even := []*cloud.Cloudlet{
		done(0, 100, 0, 1, vms[0]),
		done(1, 100, 0, 1, vms[1]),
	}
	if got := JainFairness(even, vms); math.Abs(got-1) > 1e-12 {
		t.Fatalf("even fairness: %v want 1", got)
	}
	skew := []*cloud.Cloudlet{
		done(0, 100, 0, 1, vms[0]),
		done(1, 100, 0, 1, vms[0]),
	}
	// All load on 1 of 2 VMs → 1/2.
	if got := JainFairness(skew, vms); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("skewed fairness: %v want 0.5", got)
	}
	if JainFairness(nil, nil) != 0 {
		t.Fatal("no VMs should give 0")
	}
	if JainFairness(nil, vms) != 0 {
		t.Fatal("no load should give 0")
	}
}

func TestCollectAndUnits(t *testing.T) {
	vm := cloud.NewVM(0, 1000, 1, 512, 500, 5000)
	cls := []*cloud.Cloudlet{done(0, 100, 0, 2.5, vm)}
	r := Collect("aco", cls, []*cloud.VM{vm}, 90*time.Minute)
	if r.Algorithm != "aco" || r.Cloudlets != 1 || r.VMs != 1 {
		t.Fatalf("identity fields: %+v", r)
	}
	if r.SimTime != 2.5 {
		t.Fatalf("sim time: %v", r.SimTime)
	}
	if r.SimTimeMillis() != 2500 {
		t.Fatalf("millis: %v", r.SimTimeMillis())
	}
	if r.SchedulingHours() != 1.5 {
		t.Fatalf("hours: %v", r.SchedulingHours())
	}
	if r.SchedulingSeconds() != 5400 {
		t.Fatalf("seconds: %v", r.SchedulingSeconds())
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSLAMetrics(t *testing.T) {
	met := done(0, 100, 0, 5, nil)
	met.Deadline = 10
	missed := done(1, 100, 0, 20, nil)
	missed.Deadline = 10
	free := done(2, 100, 0, 100, nil) // no deadline
	cls := []*cloud.Cloudlet{met, missed, free}

	if got := SLAViolations(cls); got != 1 {
		t.Fatalf("violations: %d", got)
	}
	if got := SLAComplianceRate(cls); got != 0.5 {
		t.Fatalf("compliance: %v", got)
	}
	if got := SLAComplianceRate([]*cloud.Cloudlet{free}); got != 1 {
		t.Fatalf("unconstrained compliance: %v", got)
	}
	if !met.MetDeadline() || missed.MetDeadline() || !free.MetDeadline() {
		t.Fatal("MetDeadline logic wrong")
	}
	// Unfinished constrained cloudlet counts as violation via MetDeadline.
	pending := cloud.NewCloudlet(3, 100, 1, 0, 0)
	pending.Deadline = 10
	if pending.MetDeadline() {
		t.Fatal("unfinished constrained cloudlet should not have met its deadline")
	}
}

func TestProcessingCostDelegates(t *testing.T) {
	host := cloud.NewHost(0, cloud.NewPEs(1, 2000), 1<<16, 1<<20, 1<<30)
	cloud.NewDatacenter(0, "dc", cloud.Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, []*cloud.Host{host})
	vm := cloud.NewVM(0, 1000, 1, 512, 500, 5000)
	if err := host.Place(vm); err != nil {
		t.Fatal(err)
	}
	cls := []*cloud.Cloudlet{done(0, 1000, 0, 1, vm)}
	if got, want := ProcessingCost(cls), cloud.TotalProcessingCost(cls); got != want {
		t.Fatalf("cost: %v want %v", got, want)
	}
	if ProcessingCost(cls) <= 0 {
		t.Fatal("cost should be positive")
	}
}
