package objective_test

import (
	"sync/atomic"
	"testing"

	"bioschedsim/internal/objective"
	"bioschedsim/internal/schedtest"
)

// TestParallelForVisitsEveryIndex exercises both dispatch shapes of the
// shared fan-out primitive: serial, and a real multi-goroutine pool with
// more items than workers — every index must run exactly once either way.
func TestParallelForVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const items = 257 // prime: never divides evenly into chunks
		var hits [items]int32
		objective.ParallelFor(workers, items, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
		objective.ParallelFor(workers, 0, func(int) { t.Fatal("ran on empty range") })
	}
}

// TestEffectiveWorkersCutover pins the serial cutover and the 0-means-all
// convention.
func TestEffectiveWorkersCutover(t *testing.T) {
	if w := objective.EffectiveWorkers(8, 10, 1000); w != 1 {
		t.Fatalf("below break-even resolved to %d workers, want 1", w)
	}
	if w := objective.EffectiveWorkers(8, 2000, 1000); w != 8 {
		t.Fatalf("above break-even resolved to %d workers, want 8", w)
	}
	if w := objective.EffectiveWorkers(0, 1<<20, 0); w < 1 {
		t.Fatalf("workers=0 resolved to %d, want GOMAXPROCS (>=1)", w)
	}
	if w := objective.EffectiveWorkers(-3, 1<<20, 0); w < 1 {
		t.Fatalf("negative workers resolved to %d, want >=1", w)
	}
}

// TestMatrixAccessorsShareProblemSlices pins the trivial accessors: the
// matrix exposes the exact slices it was built over.
func TestMatrixAccessorsShareProblemSlices(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 3, 6, 1)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	if got := mx.Cloudlets(); len(got) != len(ctx.Cloudlets) || got[0] != ctx.Cloudlets[0] {
		t.Fatal("Cloudlets() does not share the problem slice")
	}
	if got := mx.VMs(); len(got) != len(ctx.VMs) || got[0] != ctx.VMs[0] {
		t.Fatal("VMs() does not share the problem slice")
	}
}

// TestExecTimesHandBuiltClasses covers the scalar fallback for a Classes
// value assembled by hand (no structure-of-arrays views): results must
// match the kernel-backed path of a classesOf-built partition bit for bit.
func TestExecTimesHandBuiltClasses(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	built := objective.ClassesOf(ctx.VMs)
	hand := &objective.Classes{Index: built.Index, Reps: built.Reps, K: built.K}
	bufA := make([]float64, built.K)
	bufB := make([]float64, built.K)
	for _, c := range ctx.Cloudlets {
		a := built.ExecTimes(c, bufA)
		b := hand.ExecTimes(c, bufB)
		for i := range a {
			if bits(a[i]) != bits(b[i]) {
				t.Fatalf("hand-built Classes ExecTimes[%d] = %v, kernel path %v", i, b[i], a[i])
			}
		}
	}
}
