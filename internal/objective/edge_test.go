package objective_test

import (
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/schedtest"
)

// TestCostOfAndMakespanOfEmptyAssignment pins the degenerate assignment
// vector: zero assigned cloudlets must cost nothing and have zero makespan,
// in both the materialized and on-demand storage modes.
func TestCostOfAndMakespanOfEmptyAssignment(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	for name, opts := range map[string]objective.Options{
		"materialized": {Mode: objective.Materialized, WithCost: true},
		"ondemand":     {Mode: objective.OnDemand},
	} {
		mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, opts)
		if got := mx.CostOf(nil); got != 0 {
			t.Fatalf("%s: CostOf(empty) = %v, want 0", name, got)
		}
		busy := make([]float64, mx.M())
		if got := mx.MakespanOf(nil, busy); got != 0 {
			t.Fatalf("%s: MakespanOf(empty) = %v, want 0", name, got)
		}
	}
}

// TestNormsSingleClassFleet pins Norms on the paper's homogeneous scenario
// (one exec-equivalence class): the kernel-backed gather over the compressed
// row must equal the brute-force flat (i, j) loop bit for bit, in every
// storage mode, including the cost side computed from concrete VMs when the
// matrix was built without cost caching.
func TestNormsSingleClassFleet(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 6, 12, 1)
	var wantTime, wantCost float64
	for _, c := range ctx.Cloudlets {
		for _, vm := range ctx.VMs {
			wantTime += objective.ExecTime(c, vm)
			wantCost += cloud.ProcessingCost(c, vm)
		}
	}
	for name, opts := range map[string]objective.Options{
		"materialized":      {Mode: objective.Materialized, WithCost: true},
		"materialized-time": {Mode: objective.Materialized},
		"ondemand":          {Mode: objective.OnDemand},
	} {
		mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, opts)
		if mx.K() != 1 {
			t.Fatalf("%s: homogeneous fleet has K=%d, want 1", name, mx.K())
		}
		gotTime, gotCost := mx.Norms()
		if bits(gotTime) != bits(wantTime) || bits(gotCost) != bits(wantCost) {
			t.Fatalf("%s: Norms() = (%v, %v), brute force (%v, %v)", name, gotTime, gotCost, wantTime, wantCost)
		}
	}
}

// TestExecByClassVsExecTimeHeterogeneous is the compression regression on a
// heterogeneous fixture: every class representative's cached row entry and
// the kernel-backed ExecTimes gather must be bit-identical to the scalar
// ExecTime of the representative — the exact seam a wrong class key or a
// divergent ExecRow kernel would break.
func TestExecByClassVsExecTimeHeterogeneous(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 7, 21, 2)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{Mode: objective.Materialized})
	classes := objective.ClassesOf(ctx.VMs)
	if classes.K < 2 {
		t.Fatalf("heterogeneous fixture collapsed to %d class(es)", classes.K)
	}
	buf := make([]float64, classes.K)
	for i, c := range ctx.Cloudlets {
		row := classes.ExecTimes(c, buf)
		for cl, rep := range classes.Reps {
			want := objective.ExecTime(c, rep)
			if got := mx.ExecByClass(i, cl); bits(got) != bits(want) {
				t.Fatalf("ExecByClass(%d,%d) = %v, ExecTime of rep = %v", i, cl, got, want)
			}
			if bits(row[cl]) != bits(want) {
				t.Fatalf("ExecTimes(%d)[%d] = %v, ExecTime of rep = %v", i, cl, row[cl], want)
			}
		}
	}
}

// TestMinExecTimeMatchesBruteMin pins Classes.MinExecTime against a direct
// scan over the whole fleet.
func TestMinExecTimeMatchesBruteMin(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 5, 9, 1)
	classes := objective.ClassesOf(ctx.VMs)
	for _, c := range ctx.Cloudlets {
		want := objective.ExecTime(c, ctx.VMs[0])
		for _, vm := range ctx.VMs[1:] {
			if e := objective.ExecTime(c, vm); e < want {
				want = e
			}
		}
		if got := classes.MinExecTime(c); bits(got) != bits(want) {
			t.Fatalf("MinExecTime = %v, brute min %v", got, want)
		}
	}
}
