package objective

import "bioschedsim/internal/objective/kernel"

// Evaluator maintains the fitness of one assignment under single-cloudlet
// updates. A full evaluation of Eq. 8 is O(n); the Evaluator books per-VM
// load once and then keeps makespan and total cost current through O(1)
// amortized delta updates — the dominant cost in GA mutation, PSO velocity
// updates, ACO tour construction, and list-scheduling heuristics.
//
// Two caveats define the contract:
//
//   - Floating point: delta updates accumulate in move order, so after
//     removals the per-VM sums may differ from a fresh SetAll in the last
//     ulp (float addition is not associative). Add-only usage (SetAll,
//     Assign, tour construction) is bit-identical to the canonical full
//     evaluation.
//   - Makespan is maintained as a running maximum. Additions update it in
//     O(1); removing load from the current argmax VM marks it stale and the
//     next Makespan() call rescans the touched VMs (O(m) worst case, rare
//     in practice).
//
// Evaluator is not safe for concurrent use; PopEvaluator gives each worker
// its own.
type Evaluator struct {
	mx *Matrix

	pos      []int     // cloudlet → VM index (valid where posStamp matches)
	busy     []float64 // estimated busy seconds per VM (valid where stamp matches)
	cost     float64   // summed processing cost of assigned cloudlets
	withCost bool

	// Sparse-reset bookkeeping: busy[j] is only meaningful when
	// stamp[j] == epoch, pos[i] only when posStamp[i] == epoch; Reset bumps
	// the epoch in O(1) instead of zeroing n+m entries, so per-ant tour
	// scoring on huge problems stays proportional to the tour, not the batch.
	stamp    []uint32
	posStamp []uint32
	epoch    uint32
	touched  []int32

	max      float64 // running max over busy
	maxStale bool    // true after load left the argmax VM
}

// NewEvaluator returns an empty evaluator over mx. Track cost only costs
// anything when cloudlets are assigned.
func NewEvaluator(mx *Matrix, withCost bool) *Evaluator {
	return &Evaluator{
		mx:       mx,
		pos:      make([]int, mx.n),
		busy:     make([]float64, mx.m),
		stamp:    make([]uint32, mx.m),
		posStamp: make([]uint32, mx.n),
		withCost: withCost,
		epoch:    1,
	}
}

// Reset unassigns every cloudlet in O(1).
func (e *Evaluator) Reset() {
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: stamps are all invalid anyway, restart
		for j := range e.stamp {
			e.stamp[j] = 0
		}
		for i := range e.posStamp {
			e.posStamp[i] = 0
		}
		e.epoch = 1
	}
	e.touched = e.touched[:0]
	e.cost = 0
	e.max = 0
	e.maxStale = false
}

// load returns a pointer to the live busy cell for VM j, zeroing it on
// first touch this epoch.
func (e *Evaluator) load(j int) *float64 {
	if e.stamp[j] != e.epoch {
		e.stamp[j] = e.epoch
		e.busy[j] = 0
		e.touched = append(e.touched, int32(j))
	}
	return &e.busy[j]
}

// Assign books unassigned cloudlet i onto VM j in O(1). For tour
// construction (add-only) this is bit-identical to a final full evaluation.
func (e *Evaluator) Assign(i, j int) {
	if e.posStamp[i] == e.epoch {
		e.Move(i, j)
		return
	}
	e.posStamp[i] = e.epoch
	e.pos[i] = j
	b := e.load(j)
	*b += e.mx.Exec(i, j)
	if *b > e.max {
		e.max = *b
	}
	if e.withCost {
		e.cost += e.mx.Cost(i, j)
	}
}

// Move reassigns cloudlet i to VM j (delta evaluation). Moving to the
// current VM is a no-op. Unassigned cloudlets are simply assigned.
func (e *Evaluator) Move(i, j int) {
	if e.posStamp[i] != e.epoch {
		e.Assign(i, j)
		return
	}
	from := e.pos[i]
	if from == j {
		return
	}
	fb := e.load(from)
	if *fb >= e.max {
		e.maxStale = true // the argmax is about to shrink; recompute lazily
	}
	*fb -= e.mx.Exec(i, from)
	e.pos[i] = j
	b := e.load(j)
	*b += e.mx.Exec(i, j)
	if *b > e.max {
		e.max = *b
	}
	if e.withCost {
		e.cost += e.mx.Cost(i, j) - e.mx.Cost(i, from)
	}
}

// SetAll assigns the whole vector pos at once: a full O(n) evaluation in
// the canonical order (equivalent to Reset followed by Assign for each i).
func (e *Evaluator) SetAll(pos []int) {
	e.Reset()
	for i, j := range pos {
		e.posStamp[i] = e.epoch
		e.pos[i] = j
		b := e.load(j)
		*b += e.mx.Exec(i, j)
		if *b > e.max {
			e.max = *b
		}
		if e.withCost {
			e.cost += e.mx.Cost(i, j)
		}
	}
}

// Assignment returns cloudlet i's current VM index, -1 if unassigned.
func (e *Evaluator) Assignment(i int) int {
	if e.posStamp[i] != e.epoch {
		return -1
	}
	return e.pos[i]
}

// Load returns the estimated busy seconds booked on VM j.
func (e *Evaluator) Load(j int) float64 {
	if e.stamp[j] != e.epoch {
		return 0
	}
	return e.busy[j]
}

// Makespan returns Eq. 8's estimated makespan of the current assignment.
// O(1) unless a removal invalidated the running max, in which case the
// touched VMs are rescanned.
func (e *Evaluator) Makespan() float64 {
	if e.maxStale {
		e.max = kernel.MaxIndexed(e.busy, e.touched)
		e.maxStale = false
	}
	return e.max
}

// TotalCost returns the summed §VI-C-4 processing cost of the current
// assignment. The evaluator must have been built with withCost.
func (e *Evaluator) TotalCost() float64 {
	if !e.withCost {
		panic("objective: Evaluator built without cost tracking")
	}
	return e.cost
}
