package objective

import (
	"testing"

	"bioschedsim/internal/cloud"
)

// TestEvaluatorEpochWrap drives Reset through the uint32 epoch wrap: stamps
// from the previous 2³²−1 epochs must all read as invalid afterwards, so a
// wrapped evaluator starts exactly as empty as a fresh one.
func TestEvaluatorEpochWrap(t *testing.T) {
	vms := []*cloud.VM{{ID: 0, MIPS: 1000, PEs: 1, Bw: 100}, {ID: 1, MIPS: 500, PEs: 2, Bw: 50}}
	cls := []*cloud.Cloudlet{{ID: 0, Length: 4000, FileSize: 300}, {ID: 1, Length: 9000, FileSize: 600}}
	mx := NewMatrix(cls, vms, Options{})
	e := NewEvaluator(mx, false)
	e.Assign(0, 1)
	e.Assign(1, 0)
	want := e.Makespan()

	e.epoch = ^uint32(0) // force the wrap on the next Reset
	e.Reset()
	if e.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", e.epoch)
	}
	if e.Makespan() != 0 || e.Assignment(0) != -1 || e.Load(1) != 0 {
		t.Fatal("wrapped Reset left stale state visible")
	}
	e.Assign(0, 1)
	e.Assign(1, 0)
	if got := e.Makespan(); got != want {
		t.Fatalf("makespan after wrap = %v, want %v", got, want)
	}
}
