package objective_test

import (
	"math"
	"math/rand"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/schedtest"
)

// TestEvaluatorAddOnlyBitIdentical: building an assignment through Assign
// calls must reproduce the canonical full evaluation bit for bit.
func TestEvaluatorAddOnlyBitIdentical(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 7, 80, 11)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{WithCost: true})
	e := objective.NewEvaluator(mx, true)
	rnd := rand.New(rand.NewSource(12))
	pos := make([]int, mx.N())
	for i := range pos {
		pos[i] = rnd.Intn(mx.M())
		e.Assign(i, pos[i])
	}
	busy := make([]float64, mx.M())
	if got, want := e.Makespan(), mx.MakespanOf(pos, busy); bits(got) != bits(want) {
		t.Fatalf("Makespan=%v want %v", got, want)
	}
	if got, want := e.TotalCost(), mx.CostOf(pos); bits(got) != bits(want) {
		t.Fatalf("TotalCost=%v want %v", got, want)
	}
	// SetAll must agree with the incremental build exactly.
	e2 := objective.NewEvaluator(mx, true)
	e2.SetAll(pos)
	if bits(e2.Makespan()) != bits(e.Makespan()) || bits(e2.TotalCost()) != bits(e.TotalCost()) {
		t.Fatal("SetAll disagrees with Assign sequence")
	}
	for j := 0; j < mx.M(); j++ {
		if bits(e2.Load(j)) != bits(e.Load(j)) {
			t.Fatalf("Load(%d) mismatch", j)
		}
	}
}

// TestEvaluatorMoveDelta: random single-cloudlet reassignments must track
// the full evaluation within float round-off.
func TestEvaluatorMoveDelta(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 6, 50, 13)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{WithCost: true})
	e := objective.NewEvaluator(mx, true)
	rnd := rand.New(rand.NewSource(14))
	pos := make([]int, mx.N())
	for i := range pos {
		pos[i] = rnd.Intn(mx.M())
	}
	e.SetAll(pos)
	busy := make([]float64, mx.M())
	for step := 0; step < 500; step++ {
		i, j := rnd.Intn(mx.N()), rnd.Intn(mx.M())
		pos[i] = j
		e.Move(i, j)
		if got := e.Assignment(i); got != j {
			t.Fatalf("step %d: Assignment(%d)=%d want %d", step, i, got, j)
		}
		want := mx.MakespanOf(pos, busy)
		if got := e.Makespan(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("step %d: Makespan=%v want %v", step, got, want)
		}
		wantCost := mx.CostOf(pos)
		if got := e.TotalCost(); math.Abs(got-wantCost) > 1e-9*wantCost {
			t.Fatalf("step %d: TotalCost=%v want %v", step, got, wantCost)
		}
	}
}

// TestEvaluatorMaxStale pins the lazy-rescan path: removing load from the
// argmax VM must produce the exact new maximum.
func TestEvaluatorMaxStale(t *testing.T) {
	// Unit-capacity VMs with no bandwidth term: exec time == length.
	vms := []*cloud.VM{cloud.NewVM(0, 1, 1, 0, 0, 0), cloud.NewVM(1, 1, 1, 0, 0, 0)}
	cls := []*cloud.Cloudlet{
		cloud.NewCloudlet(0, 3, 1, 0, 0),
		cloud.NewCloudlet(1, 2, 1, 0, 0),
		cloud.NewCloudlet(2, 1, 1, 0, 0),
	}
	mx := objective.NewMatrix(cls, vms, objective.Options{})
	e := objective.NewEvaluator(mx, false)
	e.SetAll([]int{0, 0, 0})
	if got := e.Makespan(); got != 6 {
		t.Fatalf("initial makespan %v want 6", got)
	}
	e.Move(0, 1) // loads 3,3 — argmax shrank
	if got := e.Makespan(); got != 3 {
		t.Fatalf("after move 0→1: %v want 3", got)
	}
	e.Move(1, 1) // loads 1,5 — other VM grows
	if got := e.Makespan(); got != 5 {
		t.Fatalf("after move 1→1: %v want 5", got)
	}
	e.Move(1, 1) // no-op
	if got := e.Makespan(); got != 5 {
		t.Fatalf("no-op move changed makespan to %v", got)
	}
	if got := e.Load(0); got != 1 {
		t.Fatalf("Load(0)=%v want 1", got)
	}
}

func TestEvaluatorResetAndUnassigned(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 4, 10, 15)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	e := objective.NewEvaluator(mx, false)
	if got := e.Assignment(0); got != -1 {
		t.Fatalf("fresh Assignment(0)=%d want -1", got)
	}
	if got := e.Load(0); got != 0 {
		t.Fatalf("fresh Load(0)=%v want 0", got)
	}
	e.Move(0, 2) // moving an unassigned cloudlet assigns it
	if got := e.Assignment(0); got != 2 {
		t.Fatalf("Move-assign gave %d want 2", got)
	}
	e.Assign(0, 3) // assigning an assigned cloudlet moves it
	if got := e.Assignment(0); got != 3 {
		t.Fatalf("Assign-move gave %d want 3", got)
	}
	e.Reset()
	if got := e.Assignment(0); got != -1 {
		t.Fatalf("post-Reset Assignment(0)=%d want -1", got)
	}
	if got := e.Makespan(); got != 0 {
		t.Fatalf("post-Reset Makespan=%v want 0", got)
	}
	if got := e.Load(3); got != 0 {
		t.Fatalf("post-Reset Load(3)=%v want 0", got)
	}
	// Epoch reuse after Reset must still be exact.
	e.Assign(1, 0)
	if got, want := e.Makespan(), mx.Exec(1, 0); bits(got) != bits(want) {
		t.Fatalf("post-Reset Makespan=%v want %v", got, want)
	}
}

func TestTotalCostPanicsWithoutCost(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 2, 4, 16)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	e := objective.NewEvaluator(mx, false)
	defer func() {
		if recover() == nil {
			t.Fatal("TotalCost without cost tracking did not panic")
		}
	}()
	e.TotalCost()
}
