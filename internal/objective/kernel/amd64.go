//go:build amd64

package kernel

// amd64 variant: registered only where it pays. It shares the portable
// unrolled kernels for everything element-wise and order-pinned (on amd64
// the 8x/4x unrolls already keep the divider and FMA ports busy; assembly
// would buy nothing bit-identical for the ordered sums) and replaces the
// roulette search with a branchless binary upper-bound search: the Go
// compiler lowers the half-step select to CMOVQcc on amd64, so the probe
// loop runs without a mispredictable branch, and O(log m) probes beat the
// linear count as soon as the fleet outgrows a couple of cache lines.
//
// Contract note: the binary search assumes the documented non-decreasing,
// NaN-free cum array (prefix sums of non-negative weights). On that domain
// it is exactly the scalar reference's first-entry-greater-than-x index —
// the differential suite and FuzzKernelVsReference hold it to that.

var archImpl = &Impl{
	Name:        "amd64",
	ExecRow:     execRowUnrolled,
	CumSum:      cumSumUnrolled,
	SearchCum:   searchCumBranchless,
	WeightedCum: weightedCumUnrolled,
	Max:         maxUnrolled,
	MaxIndexed:  maxIndexedUnrolled,
	SumIndexed:  sumIndexedUnrolled,
	MinMaxSum:   minMaxSumUnrolled,
}

// searchCumLinearCutoff is the array length below which the branchless
// linear count wins: a handful of cache lines scans faster than a
// pointer-chasing binary descent.
const searchCumLinearCutoff = 32

func searchCumBranchless(cum []float64, x float64) int {
	n := len(cum)
	if n < searchCumLinearCutoff {
		return searchCumUnrolled(cum, x)
	}
	// Invariant: every entry before base is ≤ x, every entry from base+n on
	// is > x. The half-step either skips the lower half or shrinks the
	// window — a data-dependent select, not a branch.
	base := 0
	for n > 1 {
		half := n / 2
		if cum[base+half-1] <= x {
			base += half
		}
		n -= half
	}
	if n == 1 && cum[base] <= x {
		base++
	}
	return base
}
