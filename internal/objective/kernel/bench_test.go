package kernel_test

import (
	"testing"

	"bioschedsim/internal/objective/kernel"
	"bioschedsim/internal/xrand"
)

// The micro-benchmarks below run every kernel twice — /kernel=on uses the
// fastest registered implementation, /kernel=off forces the scalar
// reference — so one `go test -bench .` log carries both columns for
// scripts/bench_objective.sh. benchsmoke understands the /kernel=on|off
// leaf, so these names also survive its name normalization.

// benchN is a paper-scale row length: the Fig. 5 homogeneous workload has
// 2000 cloudlets, and class rows top out at the fleet size.
const benchN = 2048

// withKernel runs fn under both dispatch modes as named sub-benchmarks.
func withKernel(b *testing.B, fn func(b *testing.B)) {
	for _, mode := range []struct{ label, impl string }{
		{"kernel=on", kernel.Fastest()},
		{"kernel=off", kernel.ScalarName},
	} {
		b.Run(mode.label, func(b *testing.B) {
			restore, err := kernel.Force(mode.impl)
			if err != nil {
				b.Fatal(err)
			}
			defer restore()
			fn(b)
		})
	}
}

func benchFloats(n int, seed uint64) []float64 {
	rnd := xrand.New(seed, 0)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rnd.Float64()*1e4 + 1e-3
	}
	return xs
}

func BenchmarkExecRow(b *testing.B) {
	caps := benchFloats(benchN, 1)
	bws := benchFloats(benchN, 2)
	dst := make([]float64, benchN)
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernel.ExecRow(64000, 1200, caps, bws, dst)
		}
	})
}

func BenchmarkCumSum(b *testing.B) {
	w := benchFloats(benchN, 3)
	cum := make([]float64, benchN)
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kernel.CumSum(cum, w) <= 0 {
				b.Fatal("bad total")
			}
		}
	})
}

func BenchmarkSearchCum(b *testing.B) {
	w := benchFloats(benchN, 4)
	cum := make([]float64, benchN)
	total := kernel.CumSum(cum, w)
	probes := benchFloats(256, 5)
	for i := range probes {
		probes[i] = probes[i] / 1e4 * total
	}
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kernel.SearchCum(cum, probes[i&255]) < 0 {
				b.Fatal("bad index")
			}
		}
	})
}

func BenchmarkWeightedCum(b *testing.B) {
	const k = 7                  // VM classes behind the benchN virtual machines
	ba := benchFloats(benchN, 6) // per-VM pheromone^alpha
	eta := benchFloats(k, 7)     // per-class heuristic^beta
	rnd := xrand.New(8, 0)
	cls := make([]int32, benchN)
	tabu := make([]bool, benchN)
	for i := range cls {
		cls[i] = int32(rnd.Intn(k))
		tabu[i] = rnd.Intn(8) == 0
	}
	cum := make([]float64, benchN)
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kernel.WeightedCum(ba, eta, cls, tabu, cum) <= 0 {
				b.Fatal("bad total")
			}
		}
	})
}

func BenchmarkMax(b *testing.B) {
	xs := benchFloats(benchN, 9)
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kernel.Max(xs) <= 0 {
				b.Fatal("bad max")
			}
		}
	})
}

func BenchmarkMinMaxSum(b *testing.B) {
	xs := benchFloats(benchN, 10)
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mn, mx, sum := kernel.MinMaxSum(xs)
			if mn > mx || sum <= 0 {
				b.Fatal("bad fold")
			}
		}
	})
}

func BenchmarkSumIndexed(b *testing.B) {
	const k = 7
	vals := benchFloats(k, 11)
	rnd := xrand.New(12, 0)
	idx := make([]int32, benchN)
	for i := range idx {
		idx[i] = int32(rnd.Intn(k))
	}
	withKernel(b, func(b *testing.B) {
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc = kernel.SumIndexed(acc, vals, idx)
		}
		if acc <= 0 {
			b.Fatal("bad sum")
		}
	})
}

func BenchmarkMaxIndexed(b *testing.B) {
	const m = 64 // busy slots (one per VM)
	vals := benchFloats(m, 13)
	rnd := xrand.New(14, 0)
	idx := make([]int32, 16) // touched set, as in Evaluator rescans
	for i := range idx {
		idx[i] = int32(rnd.Intn(m))
	}
	withKernel(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if kernel.MaxIndexed(vals, idx) <= 0 {
				b.Fatal("bad max")
			}
		}
	})
}
