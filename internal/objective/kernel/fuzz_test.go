package kernel

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeFloats reinterprets data as little-endian float64s — raw bit
// patterns, so the fuzzer reaches denormals, ±Inf, NaN payloads, and ±0
// without any generator bias.
func decodeFloats(data []byte) []float64 {
	n := len(data) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out
}

// FuzzKernelVsReference drives every registered optimized implementation
// against the scalar reference on fuzzer-shaped inputs: arbitrary lengths
// (lane tails included), arbitrary bit patterns for the element-wise and
// reduction kernels, and contract-sanitized inputs (non-decreasing, NaN-free
// cum; non-NaN probe) for the roulette search, whose upper-bound form is
// only specified on that domain. Every comparison is bit-identity.
func FuzzKernelVsReference(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("AAAAAAAA"))
	f.Add([]byte("AAAAAAAABBBBBBBBCCCCCCCCDDDDDDDDEEEEEEEEFFFFFFFFGGGGGGGGHHHHHHHHI"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xf8, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := decodeFloats(data)
		n := len(xs)
		for _, im := range optimized(t) {
			// ExecRow: element-wise, any bit pattern admissible.
			half := n / 2
			caps, bws := xs[:half], xs[half:half*2]
			length, fileSize := 3000.0, 300.0
			if n > 0 {
				length = xs[n-1]
			}
			want := make([]float64, half)
			got := make([]float64, half)
			execRowScalar(length, fileSize, caps, bws, want)
			im.ExecRow(length, fileSize, caps, bws, got)
			diffSlices(t, im.Name, "ExecRow", want, got)

			// CumSum: ordered sum, any bit pattern admissible.
			want = make([]float64, n)
			got = make([]float64, n)
			wantTotal := cumSumScalar(want, xs)
			gotTotal := im.CumSum(got, xs)
			diffVal(t, im.Name, "CumSum total", wantTotal, gotTotal)
			diffSlices(t, im.Name, "CumSum", want, got)

			// SearchCum: sanitize to the documented contract — cum is the
			// prefix sum of finite non-negative weights, the probe is non-NaN.
			w := make([]float64, n)
			for i, x := range xs {
				x = math.Abs(x)
				if math.IsNaN(x) || math.IsInf(x, 0) {
					x = float64(i)
				}
				w[i] = x
			}
			cum := make([]float64, n)
			total := cumSumScalar(cum, w)
			probes := []float64{-1, 0, total / 2, total, total * 2}
			for _, x := range xs {
				if !math.IsNaN(x) {
					probes = append(probes, x)
				}
			}
			for _, x := range probes {
				if sj, oj := searchCumScalar(cum, x), im.SearchCum(cum, x); sj != oj {
					t.Fatalf("%s/SearchCum(n=%d, x=%v) = %d, scalar %d", im.Name, n, x, oj, sj)
				}
			}

			// WeightedCum: classes and tabu masks derived from the raw bytes.
			k := 1 + n%5
			eta := make([]float64, k)
			for i := range eta {
				if i < n {
					eta[i] = xs[i]
				}
			}
			cls := make([]int32, n)
			tabu := make([]bool, n)
			for i := 0; i < n; i++ {
				cls[i] = int32(int(data[i]) % k)
				tabu[i] = data[i]&0x80 != 0
			}
			wantTotal = weightedCumScalar(xs, eta, cls, tabu, want)
			gotTotal = im.WeightedCum(xs, eta, cls, tabu, got)
			diffVal(t, im.Name, "WeightedCum total", wantTotal, gotTotal)
			diffSlices(t, im.Name, "WeightedCum", want, got)

			// Reductions: any bit pattern admissible.
			diffVal(t, im.Name, "Max", maxScalar(xs), im.Max(xs))
			wmin, wmax, wsum := minMaxSumScalar(xs)
			gmin, gmax, gsum := im.MinMaxSum(xs)
			diffVal(t, im.Name, "MinMaxSum min", wmin, gmin)
			diffVal(t, im.Name, "MinMaxSum max", wmax, gmax)
			diffVal(t, im.Name, "MinMaxSum sum", wsum, gsum)

			// Indexed gathers: indices folded into range from the raw bytes.
			if n > 0 {
				idx := make([]int32, len(data)%97)
				for i := range idx {
					idx[i] = int32(int(data[i%len(data)]) % n)
				}
				diffVal(t, im.Name, "MaxIndexed", maxIndexedScalar(xs, idx), im.MaxIndexed(xs, idx))
				diffVal(t, im.Name, "SumIndexed", sumIndexedScalar(wsum, xs, idx), im.SumIndexed(wsum, xs, idx))
			}
		}
	})
}

func diffVal(t *testing.T, impl, kernel string, want, got float64) {
	t.Helper()
	if !eqBits(want, got) {
		t.Fatalf("%s/%s = %v (bits %016x), scalar %v (bits %016x)",
			impl, kernel, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func diffSlices(t *testing.T, impl, kernel string, want, got []float64) {
	t.Helper()
	for i := range want {
		if !eqBits(want[i], got[i]) {
			t.Fatalf("%s/%s[%d] = %v, scalar %v", impl, kernel, i, got[i], want[i])
		}
	}
}
