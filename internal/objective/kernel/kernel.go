// Package kernel is the vectorized inner-loop layer under the objective
// evaluation stack: hand-unrolled float64 kernels for the dense row
// operations every scheduler in this repository funnels through — Eq. 6
// execution-row construction, the prefix-sum roulette behind ACO's
// transition rule, the weighted b^α·η^β row product feeding it, and the
// min/max/sum reductions backing Eq. 8, Matrix.Norms, and the Eq. 12/13
// metric folds.
//
// The layer is built around a differential contract, following the biosimd
// pattern: every kernel ships with a boring scalar reference implementation
// in this package, and the optimized variants must return results
// BIT-IDENTICAL to that reference on every input the contract admits. (One
// carve-out, held by the fuzz harness: when a result is NaN, its payload
// bits are unspecified — Go itself does not pin which operand's payload an
// addition propagates — so any NaN matches any NaN.) The
// unrolled implementations therefore preserve the reference's accumulation
// association exactly — unrolling removes loop overhead, bounds checks, and
// branches, and buys instruction-level parallelism on the element-wise and
// max-reduction kernels, but never reassociates an ordered float sum. (A
// reassociating kernel — multi-accumulator sums, pairwise reduction — would
// only be 1e-9-oracle-compatible; nothing placement- or metric-visible may
// use one, because the check suite's kernel-invariance invariant demands
// bit-identical placements and Eq. 12/13 with kernels forced on and off.
// See DESIGN.md §14 for the per-kernel policy table.)
//
// Dispatch: Select() installs the implementation the platform policy picks
// — the build-tag-gated amd64 variant where one is registered, the portable
// unrolled variant otherwise — unless the CLOUDSCHED_NOSIMD environment
// knob is set, which forces the scalar reference so CI can hold the
// fallback path green. Tests flip paths with Force and plant broken
// kernels with Override; both restore. All call sites go through the
// package-level wrappers, which read the active implementation from an
// atomic pointer, so flipping is safe under -race.
package kernel

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// EnvNoSIMD is the environment knob Select honors: any value other than
// empty or "0" forces the scalar reference implementation, so CI matrix
// legs can exercise the fallback path without code changes.
const EnvNoSIMD = "CLOUDSCHED_NOSIMD"

// Impl is one complete kernel implementation set. Every function must obey
// the contract documented on its package-level wrapper; the scalar
// implementation is the executable specification.
type Impl struct {
	// Name identifies the implementation in Select/Force/Active.
	Name string

	// ExecRow fills dst[k] with Eq. 6's d for a cloudlet of the given
	// Length and FileSize on VM class k: length/caps[k], plus
	// fileSize/bws[k] when bws[k] > 0. caps and bws must have at least
	// len(dst) entries.
	ExecRow func(length, fileSize float64, caps, bws, dst []float64)

	// CumSum writes the inclusive in-order prefix sum of w into cum
	// (cum[j] = w[0]+…+w[j], accumulated in ascending index order) and
	// returns the total. cum may alias w. len(cum) must equal len(w).
	CumSum func(cum, w []float64) float64

	// SearchCum returns the roulette slot for x on the non-decreasing
	// cumulative-weight array cum: the smallest j with cum[j] > x, i.e.
	// the number of leading entries ≤ x; len(cum) when every entry is ≤ x.
	// The array must be non-decreasing and NaN-free — CumSum/WeightedCum
	// output over finite non-negative weights qualifies; callers guard the
	// degenerate totals (ACO's pick checks total for 0/Inf/NaN first).
	SearchCum func(cum []float64, x float64) int

	// WeightedCum fuses the Eq. 5 weight row with its prefix sum: for each
	// VM j, the weight is ba[j]·eta[cls[j]] — or exactly 0 when tabu[j] —
	// and cum[j] receives the running in-order total, which is returned.
	// ba, cls, and tabu must have at least len(cum) entries; eta is
	// indexed by class id.
	WeightedCum func(ba, eta []float64, cls []int32, tabu []bool, cum []float64) float64

	// Max returns the maximum of (0, xs...): the Eq. 8 max scan over
	// per-VM loads, which are non-negative, with the same zero floor the
	// canonical scan uses. NaN entries are skipped (x > acc is false).
	Max func(xs []float64) float64

	// MaxIndexed returns the maximum of (0, vals[idx[0]], vals[idx[1]], …)
	// — the Evaluator's stale-makespan rescan over its touched VM set.
	MaxIndexed func(vals []float64, idx []int32) float64

	// SumIndexed continues the in-order accumulation acc + vals[idx[0]] +
	// vals[idx[1]] + … and returns it — the Matrix.Norms gather, where the
	// accumulator is threaded across rows so the grouping stays identical
	// to the historical flat (i, j) loop.
	SumIndexed func(acc float64, vals []float64, idx []int32) float64

	// MinMaxSum returns the minimum, maximum, and in-order sum of xs, with
	// min and max seeded from xs[0] (so an all-NaN or NaN-first slice
	// propagates exactly like the canonical seeded scan) and (0, 0, 0) for
	// an empty slice. Backs the Eq. 12/13 folds in internal/metrics.
	MinMaxSum func(xs []float64) (min, max, sum float64)
}

// complete reports whether every kernel slot is populated.
func (im *Impl) complete() error {
	switch {
	case im.Name == "":
		return fmt.Errorf("kernel: Impl has no name")
	case im.ExecRow == nil, im.CumSum == nil, im.SearchCum == nil,
		im.WeightedCum == nil, im.Max == nil, im.MaxIndexed == nil,
		im.SumIndexed == nil, im.MinMaxSum == nil:
		return fmt.Errorf("kernel: Impl %q is missing kernel functions", im.Name)
	}
	return nil
}

var (
	mu       sync.Mutex       // guards registry and override
	registry map[string]*Impl // every selectable implementation by name
	override *Impl            // when non-nil, what fastestLocked returns (test plant seam)

	active atomic.Pointer[Impl]
)

func init() {
	registry = map[string]*Impl{
		scalarImpl.Name:   scalarImpl,
		unrolledImpl.Name: unrolledImpl,
	}
	if archImpl != nil {
		registry[archImpl.Name] = archImpl
	}
	Select()
}

// fastestLocked resolves the non-scalar default: the planted override if one
// is installed, else the build-tag-gated arch variant, else the portable
// unrolled implementation. mu must be held.
func fastestLocked() *Impl {
	if override != nil {
		return override
	}
	if archImpl != nil {
		return archImpl
	}
	return unrolledImpl
}

// Fastest returns the name of the implementation Select would install when
// the CLOUDSCHED_NOSIMD knob is unset — the "kernels on" side of the
// check suite's kernel-invariance invariant.
func Fastest() string {
	mu.Lock()
	defer mu.Unlock()
	return fastestLocked().Name
}

// Select installs the implementation the platform policy picks — Fastest(),
// unless the CLOUDSCHED_NOSIMD environment knob forces the scalar
// reference — and returns its name. It runs once at package init; call it
// again after changing the environment to re-resolve.
func Select() string {
	mu.Lock()
	defer mu.Unlock()
	im := fastestLocked()
	if v := os.Getenv(EnvNoSIMD); v != "" && v != "0" {
		im = scalarImpl
	}
	active.Store(im)
	return im.Name
}

// Active returns the name of the installed implementation.
func Active() string { return active.Load().Name }

// ScalarName is the registry name of the scalar reference implementation —
// the "kernels off" side of every differential comparison.
const ScalarName = "scalar"

// Names lists every selectable implementation, sorted; differential tests
// iterate this to cover each dispatch path against the scalar reference.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns a copy of the named implementation, ok=false when it is not
// registered. Plant authors copy the scalar reference and perturb one slot;
// the copy never aliases registry state, so mutating it is safe.
func Get(name string) (Impl, bool) {
	mu.Lock()
	defer mu.Unlock()
	im, ok := registry[name]
	if !ok {
		return Impl{}, false
	}
	return *im, true
}

// Force installs the named implementation regardless of platform policy or
// the environment knob and returns a restore func reinstating the previous
// one. The check suite uses it to run scenarios with kernels forced on and
// forced off.
func Force(name string) (restore func(), err error) {
	mu.Lock()
	im, ok := registry[name]
	mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("kernel: no implementation %q (have %v)", name, Names())
	}
	prev := active.Swap(im)
	return func() { active.Store(prev) }, nil
}

// Override registers im and makes it the Fastest() resolution until the
// returned restore func runs — the seam broken-kernel plants use to prove
// the check suite's kernel-invariance invariant detects a divergent kernel.
// It panics on an incomplete Impl and installs im immediately.
func Override(im Impl) (restore func()) {
	if err := im.complete(); err != nil {
		panic(err)
	}
	mu.Lock()
	prevOverride, prevReg, hadReg := override, registry[im.Name], false
	if prevReg != nil {
		hadReg = true
	}
	override = &im
	registry[im.Name] = &im
	mu.Unlock()
	prevActive := active.Swap(&im)
	return func() {
		mu.Lock()
		override = prevOverride
		if hadReg {
			registry[im.Name] = prevReg
		} else {
			delete(registry, im.Name)
		}
		mu.Unlock()
		active.Store(prevActive)
	}
}

// --- package-level wrappers: the only call surface the hot paths use -----

// ExecRow fills dst with Eq. 6 execution estimates; see Impl.ExecRow.
func ExecRow(length, fileSize float64, caps, bws, dst []float64) {
	active.Load().ExecRow(length, fileSize, caps, bws, dst)
}

// CumSum writes the inclusive prefix sum of w into cum and returns the
// total; see Impl.CumSum.
func CumSum(cum, w []float64) float64 { return active.Load().CumSum(cum, w) }

// SearchCum returns the roulette slot for x on the non-decreasing
// cumulative array cum; see Impl.SearchCum.
func SearchCum(cum []float64, x float64) int { return active.Load().SearchCum(cum, x) }

// WeightedCum fuses the tabu-masked ba·eta row product with its prefix sum;
// see Impl.WeightedCum.
func WeightedCum(ba, eta []float64, cls []int32, tabu []bool, cum []float64) float64 {
	return active.Load().WeightedCum(ba, eta, cls, tabu, cum)
}

// Max returns max(0, xs...); see Impl.Max.
func Max(xs []float64) float64 { return active.Load().Max(xs) }

// MaxIndexed returns max(0, vals[idx]...); see Impl.MaxIndexed.
func MaxIndexed(vals []float64, idx []int32) float64 {
	return active.Load().MaxIndexed(vals, idx)
}

// SumIndexed continues acc with the in-order gather sum of vals[idx]; see
// Impl.SumIndexed.
func SumIndexed(acc float64, vals []float64, idx []int32) float64 {
	return active.Load().SumIndexed(acc, vals, idx)
}

// MinMaxSum returns the seeded min, max, and in-order sum of xs; see
// Impl.MinMaxSum.
func MinMaxSum(xs []float64) (min, max, sum float64) { return active.Load().MinMaxSum(xs) }
