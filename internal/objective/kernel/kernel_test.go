package kernel

import (
	"math"
	"testing"

	"bioschedsim/internal/xrand"
)

// lengths is the differential sweep: empty, single, both unroll factors ±1,
// primes that never align with a lane boundary, and a paper-scale tail.
// (4 and 8 are the two unroll widths in use; 3/5/7/9 bracket them.)
var lengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 31, 32, 33, 97, 1009, 4093, 100003}

// valueClass generates one deterministic test vector of n floats in a given
// numeric regime. Regimes cover the magnitudes the objective layer can
// produce: ordinary positives, denormals, huge near-overflow values, exact
// zeros, and sign-mixed data for the reductions.
type valueClass struct {
	name string
	gen  func(n int, stream uint64) []float64
}

var valueClasses = []valueClass{
	{"uniform", func(n int, stream uint64) []float64 {
		rnd := xrand.New(11, stream)
		out := make([]float64, n)
		for i := range out {
			out[i] = rnd.Float64() * 1e3
		}
		return out
	}},
	{"denormal", func(n int, stream uint64) []float64 {
		rnd := xrand.New(12, stream)
		out := make([]float64, n)
		for i := range out {
			out[i] = math.SmallestNonzeroFloat64 * float64(rnd.Intn(1<<20))
		}
		return out
	}},
	{"huge", func(n int, stream uint64) []float64 {
		rnd := xrand.New(13, stream)
		out := make([]float64, n)
		for i := range out {
			out[i] = (0.5 + rnd.Float64()) * 1e300
		}
		return out
	}},
	{"zeros-mixed", func(n int, stream uint64) []float64 {
		rnd := xrand.New(14, stream)
		out := make([]float64, n)
		for i := range out {
			if rnd.Intn(3) == 0 {
				out[i] = 0
			} else {
				out[i] = rnd.Float64()
			}
		}
		return out
	}},
	{"signed", func(n int, stream uint64) []float64 {
		rnd := xrand.New(15, stream)
		out := make([]float64, n)
		for i := range out {
			out[i] = (rnd.Float64() - 0.5) * 2e6
		}
		return out
	}},
}

// optimized returns every registered non-scalar implementation; the
// differential suite runs each against the scalar reference.
func optimized(t testing.TB) []*Impl {
	t.Helper()
	var out []*Impl
	mu.Lock()
	defer mu.Unlock()
	for name, im := range registry {
		if name != ScalarName {
			out = append(out, im)
		}
	}
	if len(out) == 0 {
		t.Fatal("no optimized implementations registered")
	}
	return out
}

// eqBits compares float64s for bit-identity — stronger than == in that it
// distinguishes ±0 — except NaN payloads: any NaN equals any NaN, because Go
// itself does not specify which operand's payload an addition propagates
// (the compiler may commute float ops), so payload identity is explicitly
// outside the kernel contract.
func eqBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestExecRowMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				caps := vc.gen(n, 1)
				bws := vc.gen(n, 2)
				for i := range caps {
					if caps[i] < 0 {
						caps[i] = -caps[i] // capacities are positive in the model
					}
				}
				length, fileSize := 3000.0+float64(n), 300.0
				want := make([]float64, n)
				got := make([]float64, n)
				execRowScalar(length, fileSize, caps, bws, want)
				im.ExecRow(length, fileSize, caps, bws, got)
				for k := range want {
					if !eqBits(want[k], got[k]) {
						t.Fatalf("%s/ExecRow n=%d class=%s: dst[%d] = %v, scalar %v",
							im.Name, n, vc.name, k, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestCumSumMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				w := vc.gen(n, 3)
				want := make([]float64, n)
				got := make([]float64, n)
				wantTotal := cumSumScalar(want, w)
				gotTotal := im.CumSum(got, w)
				if !eqBits(wantTotal, gotTotal) {
					t.Fatalf("%s/CumSum n=%d class=%s: total %v, scalar %v", im.Name, n, vc.name, gotTotal, wantTotal)
				}
				for j := range want {
					if !eqBits(want[j], got[j]) {
						t.Fatalf("%s/CumSum n=%d class=%s: cum[%d] = %v, scalar %v",
							im.Name, n, vc.name, j, got[j], want[j])
					}
				}
				// In-place aliasing (cum == w) must produce the same result.
				inPlace := append([]float64(nil), w...)
				im.CumSum(inPlace, inPlace)
				for j := range want {
					if !eqBits(want[j], inPlace[j]) {
						t.Fatalf("%s/CumSum n=%d class=%s aliased: cum[%d] = %v, scalar %v",
							im.Name, n, vc.name, j, inPlace[j], want[j])
					}
				}
			}
		}
	}
}

// searchProbes returns the x values worth probing against a cumulative
// array: below, inside (including exact boundary hits, where the ≤/> split
// matters most), at the total, and beyond it.
func searchProbes(cum []float64, total float64, stream uint64) []float64 {
	probes := []float64{-1, 0, total, total * 2, math.Inf(1), -math.MaxFloat64}
	rnd := xrand.New(16, stream)
	for i := 0; i < 8 && len(cum) > 0; i++ {
		probes = append(probes, cum[rnd.Intn(len(cum))])                     // exact boundary
		probes = append(probes, rnd.Float64()*total)                         // interior draw, the roulette's real shape
		probes = append(probes, math.Nextafter(cum[rnd.Intn(len(cum))], -1)) // just below a boundary
	}
	return probes
}

func TestSearchCumMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				// Contract: cum must be non-decreasing and NaN-free — build it
				// as the prefix sum of absolute weights, exactly how the
				// roulette consumers do.
				w := vc.gen(n, 4)
				for i := range w {
					w[i] = math.Abs(w[i])
				}
				cum := make([]float64, n)
				total := cumSumScalar(cum, w)
				for _, x := range searchProbes(cum, total, uint64(n)) {
					want := searchCumScalar(cum, x)
					got := im.SearchCum(cum, x)
					if want != got {
						t.Fatalf("%s/SearchCum n=%d class=%s x=%v: got %d, scalar %d",
							im.Name, n, vc.name, x, got, want)
					}
				}
			}
		}
	}
}

func TestWeightedCumMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				ba := vc.gen(n, 5)
				k := 1 + n%7
				eta := vc.gen(k, 6)
				rnd := xrand.New(17, uint64(n))
				cls := make([]int32, n)
				tabu := make([]bool, n)
				for j := range cls {
					cls[j] = int32(rnd.Intn(k))
					tabu[j] = rnd.Intn(3) == 0
				}
				want := make([]float64, n)
				got := make([]float64, n)
				wantTotal := weightedCumScalar(ba, eta, cls, tabu, want)
				gotTotal := im.WeightedCum(ba, eta, cls, tabu, got)
				if !eqBits(wantTotal, gotTotal) {
					t.Fatalf("%s/WeightedCum n=%d class=%s: total %v, scalar %v",
						im.Name, n, vc.name, gotTotal, wantTotal)
				}
				for j := range want {
					if !eqBits(want[j], got[j]) {
						t.Fatalf("%s/WeightedCum n=%d class=%s: cum[%d] = %v, scalar %v",
							im.Name, n, vc.name, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// withNaNs sprinkles NaNs into a copy of xs: the reductions must treat them
// exactly like the scalar scan does (a NaN never wins a comparison; a
// NaN-first slice poisons the seeded min/max; sums propagate in order).
func withNaNs(xs []float64, stream uint64) []float64 {
	out := append([]float64(nil), xs...)
	rnd := xrand.New(18, stream)
	for i := range out {
		if rnd.Intn(5) == 0 {
			out[i] = math.NaN()
		}
	}
	return out
}

func TestMaxMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				for _, xs := range [][]float64{vc.gen(n, 7), withNaNs(vc.gen(n, 7), uint64(n))} {
					want, got := maxScalar(xs), im.Max(xs)
					if !eqBits(want, got) {
						t.Fatalf("%s/Max n=%d class=%s: got %v, scalar %v", im.Name, n, vc.name, got, want)
					}
				}
			}
		}
	}
}

func TestMaxIndexedAndSumIndexedMatchScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				vals := vc.gen(n+1, 8) // n+1 so the n=0 case still has a value pool
				rnd := xrand.New(19, uint64(n))
				idx := make([]int32, n)
				for i := range idx {
					idx[i] = int32(rnd.Intn(len(vals)))
				}
				if want, got := maxIndexedScalar(vals, idx), im.MaxIndexed(vals, idx); !eqBits(want, got) {
					t.Fatalf("%s/MaxIndexed n=%d class=%s: got %v, scalar %v", im.Name, n, vc.name, got, want)
				}
				for _, acc := range []float64{0, -3.5, 1e18} {
					if want, got := sumIndexedScalar(acc, vals, idx), im.SumIndexed(acc, vals, idx); !eqBits(want, got) {
						t.Fatalf("%s/SumIndexed n=%d class=%s acc=%v: got %v, scalar %v",
							im.Name, n, vc.name, acc, got, want)
					}
				}
			}
		}
	}
}

func TestMinMaxSumMatchesScalar(t *testing.T) {
	for _, im := range optimized(t) {
		for _, n := range lengths {
			for _, vc := range valueClasses {
				for _, xs := range [][]float64{vc.gen(n, 9), withNaNs(vc.gen(n, 9), uint64(n))} {
					wmin, wmax, wsum := minMaxSumScalar(xs)
					gmin, gmax, gsum := im.MinMaxSum(xs)
					if !eqBits(wmin, gmin) || !eqBits(wmax, gmax) || !eqBits(wsum, gsum) {
						t.Fatalf("%s/MinMaxSum n=%d class=%s: got (%v,%v,%v), scalar (%v,%v,%v)",
							im.Name, n, vc.name, gmin, gmax, gsum, wmin, wmax, wsum)
					}
				}
			}
		}
	}
}

// --- dispatch --------------------------------------------------------------

func TestSelectHonorsNoSIMDKnob(t *testing.T) {
	prev := Active()
	defer func() {
		if _, err := Force(prev); err != nil {
			t.Fatal(err)
		}
	}()

	t.Setenv(EnvNoSIMD, "1")
	if got := Select(); got != ScalarName {
		t.Fatalf("Select with %s=1 installed %q, want %q", EnvNoSIMD, got, ScalarName)
	}
	if Active() != ScalarName {
		t.Fatalf("Active after forced-scalar Select: %q", Active())
	}

	t.Setenv(EnvNoSIMD, "0")
	if got := Select(); got != Fastest() {
		t.Fatalf("Select with %s=0 installed %q, want Fastest %q", EnvNoSIMD, got, Fastest())
	}

	t.Setenv(EnvNoSIMD, "")
	if got := Select(); got != Fastest() {
		t.Fatalf("Select with %s unset installed %q, want Fastest %q", EnvNoSIMD, got, Fastest())
	}
}

func TestForceInstallsAndRestores(t *testing.T) {
	before := Active()
	restore, err := Force(ScalarName)
	if err != nil {
		t.Fatal(err)
	}
	if Active() != ScalarName {
		t.Fatalf("Force(scalar) left %q active", Active())
	}
	restore()
	if Active() != before {
		t.Fatalf("restore left %q active, want %q", Active(), before)
	}
	if _, err := Force("no-such-impl"); err == nil {
		t.Fatal("Force accepted an unknown implementation name")
	}
}

func TestNamesCoverBothSidesOfTheDiff(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen[ScalarName] || !seen["unrolled"] {
		t.Fatalf("Names() = %v, want at least scalar and unrolled", names)
	}
	if f := Fastest(); f == ScalarName || !seen[f] {
		t.Fatalf("Fastest() = %q, want a registered non-scalar implementation (have %v)", f, names)
	}
}

func TestOverrideInstallsPlantAndRestores(t *testing.T) {
	before, beforeFastest := Active(), Fastest()
	plant := *scalarImpl
	plant.Name = "testplant"
	plant.Max = func(xs []float64) float64 { return maxScalar(xs) + 1 }
	restore := Override(plant)
	if Active() != "testplant" || Fastest() != "testplant" {
		t.Fatalf("Override left Active=%q Fastest=%q", Active(), Fastest())
	}
	if got := Max([]float64{2}); got != 3 {
		t.Fatalf("planted Max not dispatched: got %v, want 3", got)
	}
	restore()
	if Active() != before || Fastest() != beforeFastest {
		t.Fatalf("restore left Active=%q Fastest=%q, want %q/%q", Active(), Fastest(), before, beforeFastest)
	}
	for _, n := range Names() {
		if n == "testplant" {
			t.Fatal("restore left the plant registered")
		}
	}
}

func TestOverrideRejectsIncompleteImpl(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Override accepted an incomplete Impl")
		}
	}()
	Override(Impl{Name: "hollow"})
}

// TestWrappersDispatchActive pins the package-level wrappers to the active
// implementation: a one-value smoke through every wrapper.
func TestWrappersDispatchActive(t *testing.T) {
	caps, bws := []float64{2}, []float64{4}
	dst := make([]float64, 1)
	ExecRow(8, 12, caps, bws, dst)
	if want := 8.0/2 + 12.0/4; dst[0] != want {
		t.Fatalf("ExecRow wrapper: %v, want %v", dst[0], want)
	}
	cum := make([]float64, 3)
	if total := CumSum(cum, []float64{1, 2, 3}); total != 6 || cum[1] != 3 {
		t.Fatalf("CumSum wrapper: total %v cum %v", total, cum)
	}
	if j := SearchCum(cum, 2.5); j != 1 {
		t.Fatalf("SearchCum wrapper: %d, want 1", j)
	}
	wc := make([]float64, 2)
	if total := WeightedCum([]float64{2, 3}, []float64{5}, []int32{0, 0}, []bool{false, true}, wc); total != 10 {
		t.Fatalf("WeightedCum wrapper: total %v, want 10", total)
	}
	if m := Max([]float64{1, 9, 4}); m != 9 {
		t.Fatalf("Max wrapper: %v", m)
	}
	if m := MaxIndexed([]float64{1, 9, 4}, []int32{0, 2}); m != 4 {
		t.Fatalf("MaxIndexed wrapper: %v", m)
	}
	if s := SumIndexed(1, []float64{1, 9, 4}, []int32{0, 2}); s != 6 {
		t.Fatalf("SumIndexed wrapper: %v", s)
	}
	if mn, mx, sum := MinMaxSum([]float64{3, 1, 2}); mn != 1 || mx != 3 || sum != 6 {
		t.Fatalf("MinMaxSum wrapper: %v %v %v", mn, mx, sum)
	}
}
