//go:build !amd64

package kernel

// No arch-specific variant registered: dispatch falls through to the
// portable unrolled implementation. (The ordered-sum kernels cannot be
// reassociated on any platform — see the package comment — so a new arch
// entry is only worth adding where a bit-preserving trick pays, the way
// amd64's branchless binary roulette search does.)
var archImpl *Impl
