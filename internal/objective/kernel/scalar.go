package kernel

// This file is the executable specification of the kernel layer: one
// deliberately boring scalar loop per kernel, written the way the original
// in-package code wrote it before the kernels existed. Every optimized
// implementation is differential-tested against these functions and must
// match them bit for bit on contract-valid inputs.
//
// Keep these loops naive. Their value is that a reader can check each one
// against the paper's formula (or the historical accumulation order) in a
// few seconds.

var scalarImpl = &Impl{
	Name:        ScalarName,
	ExecRow:     execRowScalar,
	CumSum:      cumSumScalar,
	SearchCum:   searchCumScalar,
	WeightedCum: weightedCumScalar,
	Max:         maxScalar,
	MaxIndexed:  maxIndexedScalar,
	SumIndexed:  sumIndexedScalar,
	MinMaxSum:   minMaxSumScalar,
}

// execRowScalar is Eq. 6 exactly as cloud.VM.EstimateExecTime computes it:
// length over capacity, plus the transfer term only when the class has
// bandwidth.
func execRowScalar(length, fileSize float64, caps, bws, dst []float64) {
	for k := range dst {
		t := length / caps[k]
		if bws[k] > 0 {
			t += fileSize / bws[k]
		}
		dst[k] = t
	}
}

// cumSumScalar accumulates in ascending index order — the association every
// optimized variant must preserve.
func cumSumScalar(cum, w []float64) float64 {
	var acc float64
	for j := range w {
		acc += w[j]
		cum[j] = acc
	}
	return acc
}

// searchCumScalar walks the array front to back and returns the first index
// whose entry exceeds x. On a non-decreasing array this is the upper-bound
// roulette slot: entries ≤ x form a prefix, so the result equals their
// count.
func searchCumScalar(cum []float64, x float64) int {
	for j, v := range cum {
		if v > x {
			return j
		}
	}
	return len(cum)
}

// weightedCumScalar is Eq. 5's masked weight row fused with its running
// total: w_j = ba_j·η^β[class(j)], exactly 0 for tabu VMs, accumulated in
// ascending VM order. The zero is added like any other weight so the
// accumulator arithmetic is identical across implementations.
func weightedCumScalar(ba, eta []float64, cls []int32, tabu []bool, cum []float64) float64 {
	var acc float64
	for j := range cum {
		var w float64
		if !tabu[j] {
			w = ba[j] * eta[cls[j]]
		}
		acc += w
		cum[j] = acc
	}
	return acc
}

// maxScalar is the canonical Eq. 8 max scan: seeded at 0 because per-VM
// loads are non-negative.
func maxScalar(xs []float64) float64 {
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// maxIndexedScalar is maxScalar over a gather.
func maxIndexedScalar(vals []float64, idx []int32) float64 {
	var max float64
	for _, j := range idx {
		if v := vals[j]; v > max {
			max = v
		}
	}
	return max
}

// sumIndexedScalar continues acc over the gather in index order.
func sumIndexedScalar(acc float64, vals []float64, idx []int32) float64 {
	for _, j := range idx {
		acc += vals[j]
	}
	return acc
}

// minMaxSumScalar seeds min and max from the first element — the exact
// shape of the historical Eq. 12/13 loops in internal/metrics — and sums in
// order.
func minMaxSumScalar(xs []float64) (min, max, sum float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return min, max, sum
}
