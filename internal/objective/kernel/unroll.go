package kernel

// Portable hand-unrolled implementations — pure Go, compiled on every
// platform so the differential tests can exercise them everywhere, and the
// default dispatch choice where no arch-specific variant is registered.
//
// Two unroll disciplines, chosen per kernel by its data dependence:
//
//   - Element-wise and max-reduction kernels (ExecRow, Max, MaxIndexed)
//     unroll 8x with independent lanes: divisions and compares from
//     different lanes overlap in the pipeline, and max is associative and
//     commutative over floats (NaN never wins a > comparison in either
//     shape), so lane-combining is still bit-identical to the scalar scan.
//
//   - Ordered accumulations (CumSum, WeightedCum, SumIndexed, MinMaxSum's
//     sum) unroll 4x but keep ONE accumulator fed in ascending index
//     order: float addition is not associative, and these sums feed
//     placement decisions and Eq. 12/13 metrics that must be bit-identical
//     with kernels on and off. Unrolling here buys only loop-overhead and
//     bounds-check elimination — the honest limit of vectorizing an
//     order-pinned sum.
//
// SearchCum unrolls the branchless count form: on a non-decreasing array
// the upper-bound index equals the number of entries ≤ x, each element
// contributes independently, and integer lane-counts recombine exactly.

var unrolledImpl = &Impl{
	Name:        "unrolled",
	ExecRow:     execRowUnrolled,
	CumSum:      cumSumUnrolled,
	SearchCum:   searchCumUnrolled,
	WeightedCum: weightedCumUnrolled,
	Max:         maxUnrolled,
	MaxIndexed:  maxIndexedUnrolled,
	SumIndexed:  sumIndexedUnrolled,
	MinMaxSum:   minMaxSumUnrolled,
}

func execRowUnrolled(length, fileSize float64, caps, bws, dst []float64) {
	n := len(dst)
	caps = caps[:n]
	bws = bws[:n]
	k := 0
	for ; k+8 <= n; k += 8 {
		t0 := length / caps[k]
		t1 := length / caps[k+1]
		t2 := length / caps[k+2]
		t3 := length / caps[k+3]
		t4 := length / caps[k+4]
		t5 := length / caps[k+5]
		t6 := length / caps[k+6]
		t7 := length / caps[k+7]
		if bws[k] > 0 {
			t0 += fileSize / bws[k]
		}
		if bws[k+1] > 0 {
			t1 += fileSize / bws[k+1]
		}
		if bws[k+2] > 0 {
			t2 += fileSize / bws[k+2]
		}
		if bws[k+3] > 0 {
			t3 += fileSize / bws[k+3]
		}
		if bws[k+4] > 0 {
			t4 += fileSize / bws[k+4]
		}
		if bws[k+5] > 0 {
			t5 += fileSize / bws[k+5]
		}
		if bws[k+6] > 0 {
			t6 += fileSize / bws[k+6]
		}
		if bws[k+7] > 0 {
			t7 += fileSize / bws[k+7]
		}
		dst[k] = t0
		dst[k+1] = t1
		dst[k+2] = t2
		dst[k+3] = t3
		dst[k+4] = t4
		dst[k+5] = t5
		dst[k+6] = t6
		dst[k+7] = t7
	}
	for ; k < n; k++ {
		t := length / caps[k]
		if bws[k] > 0 {
			t += fileSize / bws[k]
		}
		dst[k] = t
	}
}

func cumSumUnrolled(cum, w []float64) float64 {
	n := len(w)
	cum = cum[:n]
	var acc float64
	j := 0
	for ; j+4 <= n; j += 4 {
		acc += w[j]
		cum[j] = acc
		acc += w[j+1]
		cum[j+1] = acc
		acc += w[j+2]
		cum[j+2] = acc
		acc += w[j+3]
		cum[j+3] = acc
	}
	for ; j < n; j++ {
		acc += w[j]
		cum[j] = acc
	}
	return acc
}

func searchCumUnrolled(cum []float64, x float64) int {
	n := len(cum)
	var c0, c1, c2, c3 int
	j := 0
	for ; j+4 <= n; j += 4 {
		if cum[j] <= x {
			c0++
		}
		if cum[j+1] <= x {
			c1++
		}
		if cum[j+2] <= x {
			c2++
		}
		if cum[j+3] <= x {
			c3++
		}
	}
	for ; j < n; j++ {
		if cum[j] <= x {
			c0++
		}
	}
	return c0 + c1 + c2 + c3
}

func weightedCumUnrolled(ba, eta []float64, cls []int32, tabu []bool, cum []float64) float64 {
	n := len(cum)
	ba = ba[:n]
	cls = cls[:n]
	tabu = tabu[:n]
	var acc float64
	j := 0
	for ; j+4 <= n; j += 4 {
		var w0, w1, w2, w3 float64
		if !tabu[j] {
			w0 = ba[j] * eta[cls[j]]
		}
		if !tabu[j+1] {
			w1 = ba[j+1] * eta[cls[j+1]]
		}
		if !tabu[j+2] {
			w2 = ba[j+2] * eta[cls[j+2]]
		}
		if !tabu[j+3] {
			w3 = ba[j+3] * eta[cls[j+3]]
		}
		acc += w0
		cum[j] = acc
		acc += w1
		cum[j+1] = acc
		acc += w2
		cum[j+2] = acc
		acc += w3
		cum[j+3] = acc
	}
	for ; j < n; j++ {
		var w float64
		if !tabu[j] {
			w = ba[j] * eta[cls[j]]
		}
		acc += w
		cum[j] = acc
	}
	return acc
}

func maxUnrolled(xs []float64) float64 {
	var m0, m1, m2, m3, m4, m5, m6, m7 float64
	n := len(xs)
	i := 0
	for ; i+8 <= n; i += 8 {
		if xs[i] > m0 {
			m0 = xs[i]
		}
		if xs[i+1] > m1 {
			m1 = xs[i+1]
		}
		if xs[i+2] > m2 {
			m2 = xs[i+2]
		}
		if xs[i+3] > m3 {
			m3 = xs[i+3]
		}
		if xs[i+4] > m4 {
			m4 = xs[i+4]
		}
		if xs[i+5] > m5 {
			m5 = xs[i+5]
		}
		if xs[i+6] > m6 {
			m6 = xs[i+6]
		}
		if xs[i+7] > m7 {
			m7 = xs[i+7]
		}
	}
	for ; i < n; i++ {
		if xs[i] > m0 {
			m0 = xs[i]
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	if m4 > m0 {
		m0 = m4
	}
	if m5 > m0 {
		m0 = m5
	}
	if m6 > m0 {
		m0 = m6
	}
	if m7 > m0 {
		m0 = m7
	}
	return m0
}

func maxIndexedUnrolled(vals []float64, idx []int32) float64 {
	var m0, m1, m2, m3 float64
	n := len(idx)
	i := 0
	for ; i+4 <= n; i += 4 {
		if v := vals[idx[i]]; v > m0 {
			m0 = v
		}
		if v := vals[idx[i+1]]; v > m1 {
			m1 = v
		}
		if v := vals[idx[i+2]]; v > m2 {
			m2 = v
		}
		if v := vals[idx[i+3]]; v > m3 {
			m3 = v
		}
	}
	for ; i < n; i++ {
		if v := vals[idx[i]]; v > m0 {
			m0 = v
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

func sumIndexedUnrolled(acc float64, vals []float64, idx []int32) float64 {
	n := len(idx)
	i := 0
	for ; i+4 <= n; i += 4 {
		acc += vals[idx[i]]
		acc += vals[idx[i+1]]
		acc += vals[idx[i+2]]
		acc += vals[idx[i+3]]
	}
	for ; i < n; i++ {
		acc += vals[idx[i]]
	}
	return acc
}

func minMaxSumUnrolled(xs []float64) (min, max, sum float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0, 0
	}
	mn0, mn1, mn2, mn3 := xs[0], xs[0], xs[0], xs[0]
	mx0, mx1, mx2, mx3 := xs[0], xs[0], xs[0], xs[0]
	var acc float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		if x0 < mn0 {
			mn0 = x0
		}
		if x0 > mx0 {
			mx0 = x0
		}
		if x1 < mn1 {
			mn1 = x1
		}
		if x1 > mx1 {
			mx1 = x1
		}
		if x2 < mn2 {
			mn2 = x2
		}
		if x2 > mx2 {
			mx2 = x2
		}
		if x3 < mn3 {
			mn3 = x3
		}
		if x3 > mx3 {
			mx3 = x3
		}
		acc += x0
		acc += x1
		acc += x2
		acc += x3
	}
	for ; i < n; i++ {
		x := xs[i]
		if x < mn0 {
			mn0 = x
		}
		if x > mx0 {
			mx0 = x
		}
		acc += x
	}
	if mn1 < mn0 {
		mn0 = mn1
	}
	if mn2 < mn0 {
		mn0 = mn2
	}
	if mn3 < mn0 {
		mn0 = mn3
	}
	if mx1 > mx0 {
		mx0 = mx1
	}
	if mx2 > mx0 {
		mx0 = mx2
	}
	if mx3 > mx0 {
		mx0 = mx3
	}
	return mn0, mx0, acc
}
