// Package objective is the shared objective-evaluation layer every scheduler
// in this repository builds on. It centralizes the paper's Eq. 6 quantity
//
//	d_ij = Length_i/(PEs_j·MIPS_j) + FileSize_i/Bw_j
//
// and the two fitness functions derived from it — Eq. 8's estimated makespan
// (the max per-VM sum of d_ij) and the §VI-C-4 processing cost — behind one
// cache-friendly kernel, so ACO, GA, PSO, HBO, the greedy/list heuristics,
// the autoscaler, and the online policies can never drift on their shared
// semantics and never recompute the same estimate twice.
//
// Three pieces:
//
//   - Matrix: the cached d_ij (and optionally cost_ij) store. VMs are
//     partitioned into exec-equivalence classes (identical capacity and
//     bandwidth ⇒ identical d_ij column), so the dense n×m matrix compresses
//     to n×K where K is the number of distinct VM classes — K=1 for the
//     paper's homogeneous scenario, which is what makes its extreme sizes
//     (1 000 000 cloudlets × 100 000 VMs) cacheable at all. When even n×K
//     exceeds the memory bound the Matrix transparently computes entries on
//     demand with the exact same formula. In every mode Exec(i, j) returns a
//     value bit-identical to VMs[j].EstimateExecTime(Cloudlets[i]).
//
//   - Evaluator: full and incremental (delta) evaluation of makespan and
//     cost over an assignment vector. Reassigning one cloudlet updates the
//     fitness in O(1) amortized instead of O(n), which is the dominant cost
//     in metaheuristic search loops.
//
//   - PopEvaluator: a bounded-worker parallel population evaluator whose
//     results are identical regardless of worker count — the same
//     determinism contract internal/experiments guarantees for sweeps.
package objective

import (
	"math"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective/kernel"
)

// Mode selects the Matrix storage strategy.
type Mode int

// Storage modes.
const (
	// Auto materializes the compressed n×K matrix when it fits within
	// MaxCells and falls back to OnDemand otherwise. The right choice for
	// search algorithms that read entries many times.
	Auto Mode = iota
	// Materialized always builds the n×K matrix (panics on overflow of the
	// bound is avoided: it builds regardless of MaxCells).
	Materialized
	// OnDemand never materializes; every access computes the exact Eq. 6
	// (and cost) formula. The right choice for single-pass consumers that
	// touch each (cloudlet, VM) pair at most once or twice (e.g. HBO).
	OnDemand
)

// DefaultMaxCells bounds the compressed matrix at 64 Mi entries (512 MiB of
// float64 per matrix), mirroring ACO's historical MaxMatrixCells default.
const DefaultMaxCells = 64 << 20

// minParallelCells is the materialized cell count below which row
// construction stays serial: each cell is a handful of flops, so the
// break-even point sits lower than PopEvaluator's per-individual one.
const minParallelCells = 1 << 13

// Options tunes Matrix construction.
type Options struct {
	// Mode selects the storage strategy; zero value is Auto.
	Mode Mode
	// MaxCells bounds the materialized n×K cell count in Auto mode; zero
	// means DefaultMaxCells.
	MaxCells int64
	// WithCost additionally caches the §VI-C-4 processing cost per
	// (cloudlet, class). Cost() works either way; WithCost only decides
	// whether it is precomputed.
	WithCost bool
	// Workers bounds the row-construction pool when the matrix is
	// materialized: 0 means GOMAXPROCS, 1 forces serial. Each cloudlet's row
	// is computed independently into its own slot, so cell values are
	// bit-identical for every worker count.
	Workers int
}

// Matrix is the cached execution-estimate (and optionally cost) store for
// one scheduling problem. It is immutable after construction and safe for
// concurrent readers.
type Matrix struct {
	cloudlets []*cloud.Cloudlet
	vms       []*cloud.VM
	n, m      int

	classes *Classes // VM partition; classes.K == 1 for homogeneous fleets

	exec []float64 // n×K row-major d_ij per (cloudlet, class); nil when on demand
	cost []float64 // n×K processing cost per (cloudlet, class); nil unless WithCost
}

// NewMatrix builds the evaluation matrix for the (cloudlets, vms) problem.
// Both slices must be non-empty; entries must be non-nil.
func NewMatrix(cloudlets []*cloud.Cloudlet, vms []*cloud.VM, opts Options) *Matrix {
	if len(cloudlets) == 0 || len(vms) == 0 {
		panic("objective: empty cloudlet or VM list")
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = DefaultMaxCells
	}
	withCost := opts.WithCost
	mx := &Matrix{
		cloudlets: cloudlets,
		vms:       vms,
		n:         len(cloudlets),
		m:         len(vms),
		classes:   classesOf(vms, withCost),
	}
	k := mx.classes.K
	cells := int64(mx.n) * int64(k)
	materialize := opts.Mode == Materialized || (opts.Mode == Auto && cells <= maxCells)
	if !materialize {
		return mx
	}
	mx.exec = make([]float64, cells)
	if withCost {
		mx.cost = make([]float64, cells)
	}
	// Rows are disjoint slices of the backing arrays, so they materialize in
	// parallel without changing a single bit of any cell.
	workers := EffectiveWorkers(opts.Workers, cells, minParallelCells)
	ParallelFor(workers, mx.n, func(i int) {
		c := cloudlets[i]
		row := mx.exec[i*k : (i+1)*k]
		mx.classes.ExecTimes(c, row)
		if withCost {
			crow := mx.cost[i*k : (i+1)*k]
			for cl, rep := range mx.classes.Reps {
				crow[cl] = cloud.ProcessingCost(c, rep)
			}
		}
	})
	return mx
}

// ExecTime is the single source of truth for the paper's Eq. 6 estimate: the
// idealized execution time of c alone on v. It is exactly
// v.EstimateExecTime(c); every scheduler routes through this (or through a
// Matrix caching it) instead of calling the cloud model directly.
func ExecTime(c *cloud.Cloudlet, v *cloud.VM) float64 {
	return v.EstimateExecTime(c)
}

// N returns the cloudlet count.
func (mx *Matrix) N() int { return mx.n }

// M returns the VM count.
func (mx *Matrix) M() int { return mx.m }

// K returns the number of distinct VM exec-equivalence classes.
func (mx *Matrix) K() int { return mx.classes.K }

// Cached reports whether the compressed matrix is materialized.
func (mx *Matrix) Cached() bool { return mx.exec != nil }

// Cloudlets returns the problem's cloudlet list (shared, do not mutate).
func (mx *Matrix) Cloudlets() []*cloud.Cloudlet { return mx.cloudlets }

// VMs returns the problem's VM list (shared, do not mutate).
func (mx *Matrix) VMs() []*cloud.VM { return mx.vms }

// Class returns the exec-equivalence class of VM j.
func (mx *Matrix) Class(j int) int { return int(mx.classes.Index[j]) }

// Exec returns Eq. 6's d_ij for cloudlet i on VM j, bit-identical to
// vms[j].EstimateExecTime(cloudlets[i]) in every storage mode.
func (mx *Matrix) Exec(i, j int) float64 {
	if mx.exec != nil {
		return mx.exec[i*mx.classes.K+int(mx.classes.Index[j])]
	}
	return ExecTime(mx.cloudlets[i], mx.vms[j])
}

// ExecByClass returns d for cloudlet i on any VM of class cl.
func (mx *Matrix) ExecByClass(i, cl int) float64 {
	if mx.exec != nil {
		return mx.exec[i*mx.classes.K+cl]
	}
	return ExecTime(mx.cloudlets[i], mx.classes.Reps[cl])
}

// Cost returns the §VI-C-4 processing cost of running cloudlet i on VM j,
// bit-identical to cloud.ProcessingCost in every storage mode.
//
// Note cost equivalence needs the full class key (resource rate and
// processing price, not just capacity/bandwidth); Matrix only guarantees it
// when built WithCost, and otherwise computes from the concrete VM.
func (mx *Matrix) Cost(i, j int) float64 {
	if mx.cost != nil {
		return mx.cost[i*mx.classes.K+int(mx.classes.Index[j])]
	}
	return cloud.ProcessingCost(mx.cloudlets[i], mx.vms[j])
}

// MakespanOf computes Eq. 8's estimated makespan of the assignment vector
// pos (pos[i] = VM index for cloudlet i) using busy as scratch (len ≥ m).
// The accumulation order (ascending i, then a max scan over VMs) is the
// canonical one every full evaluation in this repository uses, so results
// are reproducible across algorithms.
func (mx *Matrix) MakespanOf(pos []int, busy []float64) float64 {
	busy = busy[:mx.m]
	for j := range busy {
		busy[j] = 0
	}
	if mx.exec != nil {
		k := mx.classes.K
		idx := mx.classes.Index
		for i, j := range pos {
			busy[j] += mx.exec[i*k+int(idx[j])]
		}
	} else {
		for i, j := range pos {
			busy[j] += ExecTime(mx.cloudlets[i], mx.vms[j])
		}
	}
	return kernel.Max(busy)
}

// CostOf sums the processing cost of the assignment vector pos in ascending
// cloudlet order.
func (mx *Matrix) CostOf(pos []int) float64 {
	var total float64
	if mx.cost != nil {
		k := mx.classes.K
		idx := mx.classes.Index
		for i, j := range pos {
			total += mx.cost[i*k+int(idx[j])]
		}
		return total
	}
	for i, j := range pos {
		total += cloud.ProcessingCost(mx.cloudlets[i], mx.vms[j])
	}
	return total
}

// Norms returns the summed exec time and cost over every (cloudlet, VM)
// pair — the normalizers multi-objective searches (PSO Combined) divide by.
// Accumulation iterates (i, then j) exactly like the historical in-algorithm
// matrices did: the kernel gathers each cloudlet's compressed class row
// through the VM→class index, threading one accumulator across rows so the
// grouping matches the flat (i, j) loop bit for bit. Zero sums are lifted to
// 1 so they can be divided by.
func (mx *Matrix) Norms() (normTime, normCost float64) {
	idx := mx.classes.Index
	row := make([]float64, mx.classes.K)
	for i := 0; i < mx.n; i++ {
		if mx.exec != nil {
			normTime = kernel.SumIndexed(normTime, mx.exec[i*mx.classes.K:(i+1)*mx.classes.K], idx)
		} else {
			normTime = kernel.SumIndexed(normTime, mx.classes.ExecTimes(mx.cloudlets[i], row), idx)
		}
		if mx.cost != nil {
			normCost = kernel.SumIndexed(normCost, mx.cost[i*mx.classes.K:(i+1)*mx.classes.K], idx)
		} else {
			// Cost equivalence needs the full pricing key, which this matrix was
			// not built with: sum from the concrete VMs like Cost() does.
			for j := 0; j < mx.m; j++ {
				normCost += cloud.ProcessingCost(mx.cloudlets[i], mx.vms[j])
			}
		}
	}
	//schedlint:ignore floateq sum of non-negative exec times is exactly 0 iff every term is 0; guards division by zero
	if normTime == 0 {
		normTime = 1
	}
	//schedlint:ignore floateq sum of non-negative costs is exactly 0 iff every term is 0; guards division by zero
	if normCost == 0 {
		normCost = 1
	}
	return normTime, normCost
}

// ---------------------------------------------------------------------------

// Classes is a partition of a VM fleet into exec-equivalence classes: two
// VMs land in the same class iff they produce bit-identical d_ij for every
// cloudlet (same capacity and bandwidth; same pricing too when the partition
// was built for cost equivalence).
type Classes struct {
	// Index maps VM position → class id in [0, K).
	Index []int32
	// Reps holds one representative VM per class.
	Reps []*cloud.VM
	// K is the class count.
	K int

	// caps and bws hold each class representative's capacity and bandwidth
	// in class order — the structure-of-arrays inputs kernel.ExecRow fills a
	// whole Eq. 6 row from without touching a VM pointer per class.
	caps, bws []float64
}

// ClassesOf partitions vms by execution equivalence (capacity, bandwidth).
func ClassesOf(vms []*cloud.VM) *Classes { return classesOf(vms, false) }

type classKey struct {
	cap, bw    float64
	rate, proc float64 // cost key components; zero unless withCost
}

func classesOf(vms []*cloud.VM, withCost bool) *Classes {
	cl := &Classes{Index: make([]int32, len(vms))}
	seen := make(map[classKey]int32, 8)
	for j, vm := range vms {
		key := classKey{cap: vm.Capacity(), bw: vm.Bw}
		if withCost {
			key.rate = cloud.ResourceCostRate(vm)
			if dc := vm.Datacenter(); dc != nil {
				key.proc = dc.Characteristics.CostPerProcessing
			}
		}
		id, ok := seen[key]
		if !ok {
			id = int32(len(cl.Reps))
			seen[key] = id
			cl.Reps = append(cl.Reps, vm)
			cl.caps = append(cl.caps, vm.Capacity())
			cl.bws = append(cl.bws, vm.Bw)
		}
		cl.Index[j] = id
	}
	cl.K = len(cl.Reps)
	return cl
}

// ExecTimes fills buf (len ≥ K) with Eq. 6's d for cloudlet c on each class
// and returns buf[:K]. Per-arrival policies use this to price a cloudlet
// against a whole fleet with K formula evaluations instead of m. The fill
// runs through kernel.ExecRow, bit-identical to ExecTime per entry.
func (cl *Classes) ExecTimes(c *cloud.Cloudlet, buf []float64) []float64 {
	buf = buf[:cl.K]
	if cl.caps == nil {
		// Classes built by hand (without classesOf) lack the SoA views.
		for i, rep := range cl.Reps {
			buf[i] = ExecTime(c, rep)
		}
		return buf
	}
	kernel.ExecRow(c.Length, c.FileSize, cl.caps, cl.bws, buf)
	return buf
}

// MinExecTime returns the smallest d_ij of c across the fleet — its
// best-case execution time, used e.g. to derive deadlines.
func (cl *Classes) MinExecTime(c *cloud.Cloudlet) float64 {
	best := math.Inf(1)
	for _, rep := range cl.Reps {
		if t := ExecTime(c, rep); t < best {
			best = t
		}
	}
	return best
}

// ---------------------------------------------------------------------------

// VMLoads sums Eq. 6 estimates per VM for the paired (cloudlet, VM) slices
// of an assignment — the quantity schedulers and tests use to reason about
// balance. Accumulation follows slice order.
func VMLoads(cloudlets []*cloud.Cloudlet, vms []*cloud.VM) map[*cloud.VM]float64 {
	load := make(map[*cloud.VM]float64)
	for i, c := range cloudlets {
		load[vms[i]] += ExecTime(c, vms[i])
	}
	return load
}

// EstimatedMakespan returns Eq. 8's estimated makespan of the paired
// assignment slices: the maximum per-VM summed Eq. 6 estimate.
func EstimatedMakespan(cloudlets []*cloud.Cloudlet, vms []*cloud.VM) float64 {
	var max float64
	for _, l := range VMLoads(cloudlets, vms) {
		if l > max {
			max = l
		}
	}
	return max
}
