package objective_test

import (
	"math"
	"math/rand"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/schedtest"
)

func bits(x float64) uint64 { return math.Float64bits(x) }

// TestExecBitIdenticalAllModes is the layer's core contract: Exec (and Cost)
// must be bit-identical to the cloud model in every storage mode.
func TestExecBitIdenticalAllModes(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 9, 40, 1)
	modes := map[string]objective.Options{
		"auto":          {},
		"materialized":  {Mode: objective.Materialized, WithCost: true},
		"ondemand":      {Mode: objective.OnDemand, WithCost: true},
		"auto-fallback": {MaxCells: 1, WithCost: true},
	}
	for name, opts := range modes {
		mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, opts)
		if mx.N() != len(ctx.Cloudlets) || mx.M() != len(ctx.VMs) {
			t.Fatalf("%s: dims %dx%d", name, mx.N(), mx.M())
		}
		for i, c := range ctx.Cloudlets {
			for j, vm := range ctx.VMs {
				if got, want := mx.Exec(i, j), vm.EstimateExecTime(c); bits(got) != bits(want) {
					t.Fatalf("%s: Exec(%d,%d)=%v want %v", name, i, j, got, want)
				}
				if got, want := mx.Cost(i, j), cloud.ProcessingCost(c, vm); bits(got) != bits(want) {
					t.Fatalf("%s: Cost(%d,%d)=%v want %v", name, i, j, got, want)
				}
				if cl := mx.Class(j); bits(mx.ExecByClass(i, cl)) != bits(mx.Exec(i, j)) {
					t.Fatalf("%s: ExecByClass(%d,%d) disagrees with Exec(%d,%d)", name, i, cl, i, j)
				}
			}
		}
	}
}

func TestStorageModes(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 6, 20, 2)
	if mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{Mode: objective.OnDemand}); mx.Cached() {
		t.Fatal("OnDemand materialized")
	}
	if mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{MaxCells: 1}); mx.Cached() {
		t.Fatal("Auto ignored MaxCells")
	}
	if mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{Mode: objective.Materialized, MaxCells: 1}); !mx.Cached() {
		t.Fatal("Materialized respected MaxCells")
	}
	if mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{}); !mx.Cached() {
		t.Fatal("Auto did not materialize a tiny problem")
	}
}

// TestCompression checks the homogeneous fleet collapses to one class and
// the all-distinct heterogeneous fleet does not.
func TestCompression(t *testing.T) {
	hom := schedtest.Homogeneous(t, 12, 30, 3)
	mx := objective.NewMatrix(hom.Cloudlets, hom.VMs, objective.Options{})
	if mx.K() != 1 {
		t.Fatalf("homogeneous fleet: K=%d want 1", mx.K())
	}
	if !mx.Cached() {
		t.Fatal("homogeneous fleet should materialize")
	}
	het := schedtest.Heterogeneous(t, 7, 10, 4)
	if k := objective.NewMatrix(het.Cloudlets, het.VMs, objective.Options{}).K(); k != len(het.VMs) {
		t.Fatalf("distinct-MIPS fleet: K=%d want %d", k, len(het.VMs))
	}
}

// TestCostClassKey: VMs identical in capacity and bandwidth but priced by
// different datacenters share an exec class but must not share a cost class
// when the matrix is built WithCost.
func TestCostClassKey(t *testing.T) {
	mk := func(id int, ch cloud.Characteristics) *cloud.VM {
		h := cloud.NewHost(id, cloud.NewPEs(4, 1000), 1<<20, 1<<20, 1<<30)
		cloud.NewDatacenter(id, "dc", ch, []*cloud.Host{h})
		vm := cloud.NewVM(id, 1000, 1, 512, 500, 5000)
		if err := cloud.Allocate(cloud.FirstFit{}, []*cloud.Host{h}, []*cloud.VM{vm}); err != nil {
			t.Fatal(err)
		}
		return vm
	}
	vms := []*cloud.VM{
		mk(0, cloud.Characteristics{CostPerMemory: 0.05, CostPerProcessing: 3}),
		mk(1, cloud.Characteristics{CostPerMemory: 0.01, CostPerProcessing: 3}),
	}
	cls := []*cloud.Cloudlet{cloud.NewCloudlet(0, 4000, 1, 100, 100)}
	exec := objective.NewMatrix(cls, vms, objective.Options{})
	if exec.K() != 1 {
		t.Fatalf("exec partition: K=%d want 1", exec.K())
	}
	mx := objective.NewMatrix(cls, vms, objective.Options{WithCost: true})
	if mx.K() != 2 {
		t.Fatalf("cost partition: K=%d want 2", mx.K())
	}
	for j, vm := range vms {
		if got, want := mx.Cost(0, j), cloud.ProcessingCost(cls[0], vm); bits(got) != bits(want) {
			t.Fatalf("Cost(0,%d)=%v want %v", j, got, want)
		}
	}
	if mx.Cost(0, 0) == mx.Cost(0, 1) {
		t.Fatal("differently priced VMs produced identical cost")
	}
}

func TestNewMatrixPanics(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 2, 2, 5)
	for name, call := range map[string]func(){
		"no-cloudlets": func() { objective.NewMatrix(nil, ctx.VMs, objective.Options{}) },
		"no-vms":       func() { objective.NewMatrix(ctx.Cloudlets, nil, objective.Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

func TestMakespanCostNorms(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 8, 60, 6)
	n, m := len(ctx.Cloudlets), len(ctx.VMs)
	for name, opts := range map[string]objective.Options{
		"cached":   {WithCost: true},
		"ondemand": {Mode: objective.OnDemand, WithCost: true},
	} {
		mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, opts)
		rnd := rand.New(rand.NewSource(7))
		pos := make([]int, n)
		for i := range pos {
			pos[i] = rnd.Intn(m)
		}
		busy := make([]float64, m)
		wantBusy := make([]float64, m)
		var wantCost float64
		for i, j := range pos {
			wantBusy[j] += ctx.VMs[j].EstimateExecTime(ctx.Cloudlets[i])
			wantCost += cloud.ProcessingCost(ctx.Cloudlets[i], ctx.VMs[j])
		}
		var wantMk float64
		for _, b := range wantBusy {
			if b > wantMk {
				wantMk = b
			}
		}
		if got := mx.MakespanOf(pos, busy); bits(got) != bits(wantMk) {
			t.Fatalf("%s: MakespanOf=%v want %v", name, got, wantMk)
		}
		if got := mx.CostOf(pos); bits(got) != bits(wantCost) {
			t.Fatalf("%s: CostOf=%v want %v", name, got, wantCost)
		}
		var wantNT, wantNC float64
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				wantNT += ctx.VMs[j].EstimateExecTime(ctx.Cloudlets[i])
				wantNC += cloud.ProcessingCost(ctx.Cloudlets[i], ctx.VMs[j])
			}
		}
		nt, nc := mx.Norms()
		if bits(nt) != bits(wantNT) || bits(nc) != bits(wantNC) {
			t.Fatalf("%s: Norms=(%v,%v) want (%v,%v)", name, nt, nc, wantNT, wantNC)
		}
	}
}

// TestNormsZeroLift: costless VMs (no datacenter) must lift the zero cost
// normalizer to 1 so Combined objectives can divide by it.
func TestNormsZeroLift(t *testing.T) {
	vms := []*cloud.VM{cloud.NewVM(0, 1000, 1, 512, 500, 5000)}
	cls := []*cloud.Cloudlet{cloud.NewCloudlet(0, 1000, 1, 0, 0)}
	_, nc := objective.NewMatrix(cls, vms, objective.Options{WithCost: true}).Norms()
	if nc != 1 {
		t.Fatalf("zero cost normalizer = %v, want lifted to 1", nc)
	}
}

func TestClassesHelpers(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 10, 5, 8)
	classes := objective.ClassesOf(ctx.VMs)
	if len(classes.Index) != len(ctx.VMs) || len(classes.Reps) != classes.K {
		t.Fatalf("inconsistent partition: %d VMs, %d reps, K=%d", len(classes.Index), len(classes.Reps), classes.K)
	}
	for j, vm := range ctx.VMs {
		rep := classes.Reps[classes.Index[j]]
		if rep.Capacity() != vm.Capacity() || rep.Bw != vm.Bw {
			t.Fatalf("VM %d classed with non-equivalent rep", j)
		}
	}
	buf := make([]float64, classes.K)
	for _, c := range ctx.Cloudlets {
		times := classes.ExecTimes(c, buf)
		for cl, rep := range classes.Reps {
			if bits(times[cl]) != bits(rep.EstimateExecTime(c)) {
				t.Fatalf("ExecTimes[%d] mismatch", cl)
			}
		}
		want := math.Inf(1)
		for _, vm := range ctx.VMs {
			if d := vm.EstimateExecTime(c); d < want {
				want = d
			}
		}
		if got := classes.MinExecTime(c); bits(got) != bits(want) {
			t.Fatalf("MinExecTime=%v want %v", got, want)
		}
	}
}

func TestVMLoadsAndEstimatedMakespan(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 5, 25, 9)
	rnd := rand.New(rand.NewSource(10))
	vms := make([]*cloud.VM, len(ctx.Cloudlets))
	for i := range vms {
		vms[i] = ctx.VMs[rnd.Intn(len(ctx.VMs))]
	}
	want := map[*cloud.VM]float64{}
	for i, c := range ctx.Cloudlets {
		want[vms[i]] += vms[i].EstimateExecTime(c)
	}
	got := objective.VMLoads(ctx.Cloudlets, vms)
	if len(got) != len(want) {
		t.Fatalf("VMLoads: %d VMs want %d", len(got), len(want))
	}
	var wantMk float64
	for vm, l := range want {
		if bits(got[vm]) != bits(l) {
			t.Fatalf("load of VM %d = %v want %v", vm.ID, got[vm], l)
		}
		if l > wantMk {
			wantMk = l
		}
	}
	if mk := objective.EstimatedMakespan(ctx.Cloudlets, vms); bits(mk) != bits(wantMk) {
		t.Fatalf("EstimatedMakespan=%v want %v", mk, wantMk)
	}
}
