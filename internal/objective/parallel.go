package objective

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"bioschedsim/internal/xrand"
)

// FitnessFunc scores one assignment vector. busy is per-worker scratch of
// length ≥ M(); implementations must not retain it. It must be pure: the
// score may depend only on (mx, pos), never on evaluation order — that is
// what makes parallel evaluation deterministic.
type FitnessFunc func(mx *Matrix, pos []int, busy []float64) float64

// Makespan is the default FitnessFunc: Eq. 8's estimated makespan.
func Makespan(mx *Matrix, pos []int, busy []float64) float64 {
	return mx.MakespanOf(pos, busy)
}

// minParallelWork is the population-size × problem-size product below which
// PopEvaluator stays serial: goroutine dispatch costs more than it saves on
// small batches, and serial evaluation is trivially deterministic.
const minParallelWork = 1 << 15

// EffectiveWorkers resolves a Workers knob under the repository convention
// (0 = GOMAXPROCS, 1 = serial) against the approximate scalar work of one
// parallel section. Sections below minWork run serially — goroutine dispatch
// costs more than it saves there, and the Workers determinism contract makes
// the serial and parallel results identical anyway, so the cutover is
// invisible. minWork ≤ 0 selects the package default break-even point.
func EffectiveWorkers(workers int, work, minWork int64) int {
	if minWork <= 0 {
		minWork = minParallelWork
	}
	if work < minWork {
		return 1
	}
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelFor runs fn(i) for every i in [0, items) across up to workers
// goroutines (≤ 1 means serial; resolve 0-means-GOMAXPROCS through
// EffectiveWorkers first) and returns after all iterations complete. It is
// the shared fan-out primitive under the repository's Workers convention:
// iterations must be independent — fn(i) may write only state owned by
// iteration i — which is exactly what makes results bit-identical for every
// worker count. Work is claimed off an atomic cursor in contiguous chunks,
// so interleaving reorders the wall clock, never the outputs.
func ParallelFor(workers, items int, fn func(i int)) {
	if items <= 0 {
		return
	}
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			fn(i)
		}
		return
	}
	chunk := items / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= items {
					return
				}
				hi := lo + chunk
				if hi > items {
					hi = items
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// PopEvaluator evaluates populations of assignment vectors on a bounded
// worker pool with a hard determinism contract: for a fixed matrix, fitness
// function, and population, the output fitness vector is byte-identical for
// every worker count (1, 2, 8, …). Each individual is scored independently
// into its own output slot by a pure function, so worker interleaving can
// reorder the work but never the results — the same contract
// internal/experiments guarantees for parameter sweeps.
type PopEvaluator struct {
	// Mx is the evaluation matrix.
	Mx *Matrix
	// Fitness scores one individual; nil means Makespan.
	Fitness FitnessFunc
	// Workers bounds the pool; 0 means GOMAXPROCS. 1 forces serial.
	Workers int

	scratch sync.Pool
}

// NewPopEvaluator returns a population evaluator over mx.
func NewPopEvaluator(mx *Matrix, fitness FitnessFunc, workers int) *PopEvaluator {
	return &PopEvaluator{Mx: mx, Fitness: fitness, Workers: workers}
}

// workerCount resolves the effective pool size for items individuals.
func (p *PopEvaluator) workerCount(items int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	// Below the dispatch break-even point parallelism only adds overhead.
	if int64(items)*int64(p.Mx.n) < minParallelWork {
		return 1
	}
	return w
}

// Eval scores every individual of pop into out (len(out) ≥ len(pop)).
// out[i] depends only on pop[i]; worker count never changes any value.
func (p *PopEvaluator) Eval(pop [][]int, out []float64) {
	fitness := p.Fitness
	if fitness == nil {
		fitness = Makespan
	}
	p.run(len(pop), func(i int, busy []float64) {
		out[i] = fitness(p.Mx, pop[i], busy)
	})
}

// EvalSeeded scores individuals with a stochastic fitness function: item i
// receives the i-th xrand substream of seed, so randomized scoring (noisy
// objectives, sampled simulations) stays reproducible and, because the
// stream depends only on (seed, i), independent of worker interleaving.
func (p *PopEvaluator) EvalSeeded(seed uint64, pop [][]int, out []float64,
	fitness func(mx *Matrix, pos []int, busy []float64, rng *rand.Rand) float64) {
	p.run(len(pop), func(i int, busy []float64) {
		out[i] = fitness(p.Mx, pop[i], busy, xrand.New(seed, uint64(i)))
	})
}

// run executes fn(i) for i in [0, items) on the bounded pool. Each worker
// owns one scratch buffer; items are claimed from an atomic cursor.
func (p *PopEvaluator) run(items int, fn func(i int, busy []float64)) {
	if items == 0 {
		return
	}
	workers := p.workerCount(items)
	if workers == 1 {
		busy := p.getScratch()
		for i := 0; i < items; i++ {
			fn(i, busy)
		}
		p.scratch.Put(&busy)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			busy := p.getScratch()
			defer p.scratch.Put(&busy)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= items {
					return
				}
				fn(i, busy)
			}
		}()
	}
	wg.Wait()
}

func (p *PopEvaluator) getScratch() []float64 {
	if b, ok := p.scratch.Get().(*[]float64); ok && len(*b) >= p.Mx.m {
		return *b
	}
	return make([]float64, p.Mx.m)
}
