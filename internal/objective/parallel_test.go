package objective_test

import (
	"math/rand"
	"testing"

	"bioschedsim/internal/objective"
	"bioschedsim/internal/schedtest"
	"bioschedsim/internal/xrand"
)

// randomPop draws pop random assignment vectors for the context.
func randomPop(ctx *testingContext, pop int, seed int64) [][]int {
	rnd := rand.New(rand.NewSource(seed))
	out := make([][]int, pop)
	for p := range out {
		v := make([]int, ctx.n)
		for i := range v {
			v[i] = rnd.Intn(ctx.m)
		}
		out[p] = v
	}
	return out
}

type testingContext struct {
	mx   *objective.Matrix
	n, m int
}

func newTestingContext(t *testing.T) *testingContext {
	ctx := schedtest.Heterogeneous(t, 30, 300, 21)
	mx := objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{})
	return &testingContext{mx: mx, n: len(ctx.Cloudlets), m: len(ctx.VMs)}
}

// TestPopEvaluatorDeterminism is the determinism contract of the parallel
// evaluator: for a fixed population, fitness vectors are byte-identical and
// the best individual is the same for every worker count. The population is
// large enough (300·200 items×genes) to clear the serial threshold, so the
// multi-worker runs genuinely race goroutines over the shared cursor.
func TestPopEvaluatorDeterminism(t *testing.T) {
	tc := newTestingContext(t)
	pop := randomPop(tc, 200, 22)
	ref := make([]float64, len(pop))
	objective.NewPopEvaluator(tc.mx, nil, 1).Eval(pop, ref)
	argmin := func(v []float64) int {
		best := 0
		for i := range v {
			if v[i] < v[best] {
				best = i
			}
		}
		return best
	}
	// The serial reference must agree with direct evaluation.
	busy := make([]float64, tc.m)
	for p := range pop {
		if bits(ref[p]) != bits(tc.mx.MakespanOf(pop[p], busy)) {
			t.Fatalf("serial fitness %d disagrees with direct evaluation", p)
		}
	}
	for _, workers := range []int{2, 8} {
		got := make([]float64, len(pop))
		objective.NewPopEvaluator(tc.mx, objective.Makespan, workers).Eval(pop, got)
		for p := range pop {
			if bits(got[p]) != bits(ref[p]) {
				t.Fatalf("workers=%d: fitness[%d]=%v differs from serial %v", workers, p, got[p], ref[p])
			}
		}
		if a, b := argmin(got), argmin(ref); a != b {
			t.Fatalf("workers=%d: best individual %d differs from serial %d", workers, a, b)
		}
	}
}

func TestPopEvaluatorSmallAndEmpty(t *testing.T) {
	tc := newTestingContext(t)
	pe := objective.NewPopEvaluator(tc.mx, nil, 0) // GOMAXPROCS default
	pe.Eval(nil, nil)                              // empty population: no-op
	pop := randomPop(tc, 3, 23)                    // below the serial threshold
	out := make([]float64, len(pop))
	pe.Eval(pop, out)
	busy := make([]float64, tc.m)
	for p := range pop {
		if bits(out[p]) != bits(tc.mx.MakespanOf(pop[p], busy)) {
			t.Fatalf("small-batch fitness %d mismatch", p)
		}
	}
}

// TestEvalSeeded: item i must see exactly the (seed, i) substream no matter
// how many workers interleave, making stochastic fitness reproducible.
func TestEvalSeeded(t *testing.T) {
	tc := newTestingContext(t)
	pop := randomPop(tc, 150, 24)
	const seed = 99
	fitness := func(mx *objective.Matrix, pos []int, busy []float64, rng *rand.Rand) float64 {
		return mx.MakespanOf(pos, busy) * (1 + rng.Float64())
	}
	want := make([]float64, len(pop))
	busy := make([]float64, tc.m)
	for i := range pop {
		want[i] = tc.mx.MakespanOf(pop[i], busy) * (1 + xrand.New(seed, uint64(i)).Float64())
	}
	for _, workers := range []int{1, 2, 8} {
		got := make([]float64, len(pop))
		objective.NewPopEvaluator(tc.mx, nil, workers).EvalSeeded(seed, pop, got, fitness)
		for i := range got {
			if bits(got[i]) != bits(want[i]) {
				t.Fatalf("workers=%d: seeded fitness[%d]=%v want %v", workers, i, got[i], want[i])
			}
		}
	}
}
