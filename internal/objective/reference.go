package objective

import (
	"fmt"
	"math"

	"bioschedsim/internal/cloud"
)

// This file is the differential oracle for the evaluation layer: a
// deliberately naive re-implementation of Eq. 8 and the §VI-C-4 cost that
// replays each VM's queue straight-line from the cloud model, with no class
// compression, no materialized matrix, and no delta bookkeeping. The
// property-testing harness (internal/check) runs it against the Evaluator
// on randomized assignments; any divergence beyond tolerance means the
// optimized hot path drifted from the paper's formulas.
//
// Keep these functions boring. Their value is that they share nothing with
// Matrix/Evaluator except cloud.VM.EstimateExecTime and
// cloud.ProcessingCost themselves.

// ReferenceLoads computes per-VM estimated busy seconds for the assignment
// vector pos (pos[i] = VM index of cloudlet i) by summing Eq. 6 estimates
// in ascending cloudlet order — the canonical accumulation order — directly
// from the cloud model.
func ReferenceLoads(cloudlets []*cloud.Cloudlet, vms []*cloud.VM, pos []int) []float64 {
	busy := make([]float64, len(vms))
	for i, j := range pos {
		busy[j] += vms[j].EstimateExecTime(cloudlets[i])
	}
	return busy
}

// ReferenceMakespan computes Eq. 8's estimated makespan of pos the slow way:
// max over ReferenceLoads.
func ReferenceMakespan(cloudlets []*cloud.Cloudlet, vms []*cloud.VM, pos []int) float64 {
	var max float64
	for _, t := range ReferenceLoads(cloudlets, vms, pos) {
		if t > max {
			max = t
		}
	}
	return max
}

// ReferenceCost sums the §VI-C-4 processing cost of pos in ascending
// cloudlet order directly from the cloud pricing model.
func ReferenceCost(cloudlets []*cloud.Cloudlet, vms []*cloud.VM, pos []int) float64 {
	var total float64
	for i, j := range pos {
		total += cloud.ProcessingCost(cloudlets[i], vms[j])
	}
	return total
}

// relDiff returns |a−b| scaled by max(1, |a|, |b|), so the tolerance reads
// as absolute near zero and relative for large magnitudes.
func relDiff(a, b float64) float64 {
	scale := 1.0
	if s := math.Abs(a); s > scale {
		scale = s
	}
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) / scale
}

// VerifyAgainstReference checks that the class-compressed fast path (a
// Matrix plus an Evaluator SetAll) agrees with the straight-line reference
// executor on the assignment vector pos, to relative tolerance tol on both
// makespan and (when mx was built WithCost) total cost. It returns a
// descriptive error on the first divergence.
func VerifyAgainstReference(mx *Matrix, pos []int, tol float64) error {
	if len(pos) != mx.n {
		return fmt.Errorf("objective: assignment vector has %d entries for %d cloudlets", len(pos), mx.n)
	}
	for i, j := range pos {
		if j < 0 || j >= mx.m {
			return fmt.Errorf("objective: cloudlet %d assigned to out-of-range VM index %d (fleet %d)", i, j, mx.m)
		}
	}
	refMk := ReferenceMakespan(mx.cloudlets, mx.vms, pos)

	ev := NewEvaluator(mx, mx.cost != nil)
	ev.SetAll(pos)
	if d := relDiff(ev.Makespan(), refMk); d > tol {
		return fmt.Errorf("objective: Evaluator makespan %v diverges from reference %v (rel %.3g > tol %.3g)",
			ev.Makespan(), refMk, d, tol)
	}
	if d := relDiff(mx.MakespanOf(pos, make([]float64, mx.m)), refMk); d > tol {
		return fmt.Errorf("objective: Matrix.MakespanOf %v diverges from reference %v (rel %.3g > tol %.3g)",
			mx.MakespanOf(pos, make([]float64, mx.m)), refMk, d, tol)
	}
	if mx.cost != nil {
		refCost := ReferenceCost(mx.cloudlets, mx.vms, pos)
		if d := relDiff(ev.TotalCost(), refCost); d > tol {
			return fmt.Errorf("objective: Evaluator cost %v diverges from reference %v (rel %.3g > tol %.3g)",
				ev.TotalCost(), refCost, d, tol)
		}
		if d := relDiff(mx.CostOf(pos), refCost); d > tol {
			return fmt.Errorf("objective: Matrix.CostOf %v diverges from reference %v (rel %.3g > tol %.3g)",
				mx.CostOf(pos), refCost, d, tol)
		}
	}
	return nil
}
