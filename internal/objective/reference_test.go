package objective

import (
	"strings"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/xrand"
)

// refProblem builds a small heterogeneous problem with pricing so both the
// makespan and the cost sides of the oracle are exercised.
func refProblem(tb testing.TB, nVMs, nCls int, seed uint64) ([]*cloud.Cloudlet, []*cloud.VM) {
	tb.Helper()
	r := xrand.New(seed, 0)
	hosts := make([]*cloud.Host, nVMs/4+1)
	for i := range hosts {
		hosts[i] = cloud.NewHost(i, cloud.NewPEs(16, 4000), 1<<20, 1<<20, 1<<30)
	}
	// NewDatacenter wires Host.Datacenter, which ProcessingCost prices by.
	cloud.NewDatacenter(0, "dc", cloud.Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, hosts)
	vms := make([]*cloud.VM, nVMs)
	for i := range vms {
		vms[i] = cloud.NewVM(i, 500+r.Float64()*3500, 1, 512, 500, 5000)
	}
	if err := cloud.Allocate(cloud.LeastLoaded{}, hosts, vms); err != nil {
		tb.Fatal(err)
	}
	cls := make([]*cloud.Cloudlet, nCls)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 1000+r.Float64()*19000, 1, 300, 300)
	}
	return cls, vms
}

func TestVerifyAgainstReferenceAgreesOnRandomAssignments(t *testing.T) {
	cls, vms := refProblem(t, 7, 60, 11)
	for _, opts := range []Options{
		{},
		{Mode: OnDemand},
		{WithCost: true},
		{Mode: OnDemand, WithCost: true},
	} {
		mx := NewMatrix(cls, vms, opts)
		r := xrand.New(12, 1)
		for trial := 0; trial < 25; trial++ {
			pos := make([]int, len(cls))
			for i := range pos {
				pos[i] = r.Intn(len(vms))
			}
			if err := VerifyAgainstReference(mx, pos, 1e-9); err != nil {
				t.Fatalf("opts %+v trial %d: %v", opts, trial, err)
			}
		}
	}
}

func TestVerifyAgainstReferenceRejectsMalformedVectors(t *testing.T) {
	cls, vms := refProblem(t, 4, 10, 3)
	mx := NewMatrix(cls, vms, Options{})
	if err := VerifyAgainstReference(mx, make([]int, 3), 1e-9); err == nil {
		t.Fatal("short assignment vector accepted")
	}
	bad := make([]int, len(cls))
	bad[5] = len(vms) // out of range
	if err := VerifyAgainstReference(mx, bad, 1e-9); err == nil {
		t.Fatal("out-of-range VM index accepted")
	} else if !strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReferenceMakespanMatchesEstimatedMakespan(t *testing.T) {
	cls, vms := refProblem(t, 5, 40, 7)
	r := xrand.New(99, 0)
	pos := make([]int, len(cls))
	pairedVMs := make([]*cloud.VM, len(cls))
	for i := range pos {
		pos[i] = r.Intn(len(vms))
		pairedVMs[i] = vms[pos[i]]
	}
	ref := ReferenceMakespan(cls, vms, pos)
	est := EstimatedMakespan(cls, pairedVMs)
	if d := relDiff(ref, est); d > 1e-12 {
		t.Fatalf("ReferenceMakespan %v != EstimatedMakespan %v (rel %v)", ref, est, d)
	}
}
