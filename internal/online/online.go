// Package online implements event-driven (per-arrival) scheduling, the
// dynamic counterpart of the paper's static batch mapping. §I motivates
// schedulers that "adapt to changes along with defined demand"; this
// package lets cloudlets arrive over time (e.g. workload.PoissonArrivals)
// and places each one the moment it arrives, using only the fleet's
// current state — the "local knowledge" the paper's introduction calls for.
//
// Three of the online policies are the natural per-arrival forms of the
// paper's algorithms: OnlineACO keeps a per-VM pheromone trail reinforced
// by completion feedback; OnlineHBO is Nakrani & Tovey's honey-bee server
// allocation (the paper's [16]), where VMs advertise profitability and
// foragers follow the waggle dance; OnlineRBS walks the VM groups exactly
// as Algorithm 3 does, which is already an online procedure.
package online

import (
	"fmt"
	"math"
	"math/rand"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
)

// fleetClasses caches the VM exec-equivalence partition of the current fleet
// so per-arrival policies price a cloudlet with K Eq. 6 evaluations (one per
// distinct VM class) instead of one per VM. The partition rebuilds lazily
// whenever the fleet slice changes (autoscaling, decommissioning).
type fleetClasses struct {
	fleet []*cloud.VM
	cls   *objective.Classes
	buf   []float64
}

func (f *fleetClasses) ensure(vms []*cloud.VM) {
	if len(f.fleet) == len(vms) {
		same := true
		for i := range vms {
			if f.fleet[i] != vms[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	f.cls = objective.ClassesOf(vms)
	f.buf = make([]float64, f.cls.K)
	f.fleet = append(f.fleet[:0], vms...)
}

// execTimes returns c's per-class Eq. 6 estimates and the VM→class map.
func (f *fleetClasses) execTimes(c *cloud.Cloudlet, vms []*cloud.VM) ([]float64, []int32) {
	f.ensure(vms)
	return f.cls.ExecTimes(c, f.buf), f.cls.Index
}

// Scheduler places one arriving cloudlet at a time. Implementations may
// keep state across placements (cursors, pheromone, profitability) and
// receive completion feedback through the Feedback interface if they
// implement it.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Place returns the VM for an arriving cloudlet given the current
	// fleet. The fleet slice is never empty.
	Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error)
}

// Feedback is implemented by online schedulers that learn from completions.
type Feedback interface {
	// Completed reports a finished cloudlet and its execution time.
	Completed(c *cloud.Cloudlet, execSeconds float64)
}

// ---------------------------------------------------------------------------

// RoundRobin cycles the fleet, the online form of the base test.
type RoundRobin struct {
	cursor int
}

// NewRoundRobin returns an online round-robin placer.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "online-rr" }

// Place implements Scheduler.
func (s *RoundRobin) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	vm := vms[s.cursor%len(vms)]
	s.cursor++
	return vm, nil
}

// LeastLoaded places each arrival on the VM with the fewest resident
// cloudlets — the instantaneous-state greedy.
type LeastLoaded struct{}

// NewLeastLoaded returns an online least-loaded placer.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Scheduler.
func (*LeastLoaded) Name() string { return "online-least" }

// Place implements Scheduler.
func (*LeastLoaded) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	best := vms[0]
	for _, vm := range vms[1:] {
		if vm.QueuedOrRunning() < best.QueuedOrRunning() {
			best = vm
		}
	}
	return best, nil
}

// EarliestFinish places each arrival on the VM minimizing the estimated
// completion time given current residency: (resident+1) · d(c, vm) under
// processor sharing.
type EarliestFinish struct {
	fleet fleetClasses
}

// NewEarliestFinish returns an online earliest-finish placer.
func NewEarliestFinish() *EarliestFinish { return &EarliestFinish{} }

// Name implements Scheduler.
func (*EarliestFinish) Name() string { return "online-eft" }

// Place implements Scheduler.
func (s *EarliestFinish) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	times, cls := s.fleet.execTimes(c, vms)
	best := vms[0]
	bestETA := math.Inf(1)
	for i, vm := range vms {
		eta := float64(vm.QueuedOrRunning()+1) * times[cls[i]]
		if eta < bestETA {
			best, bestETA = vm, eta
		}
	}
	return best, nil
}

// TwoChoices is the power-of-two-choices balancer (Mitzenmacher): sample d
// VMs uniformly at random and take the least loaded. It is the modern
// descendant of RBS's biased random sampling — d=2 already collapses the
// maximum queue length from Θ(log n/log log n) to Θ(log log n) versus
// purely random placement, with O(d) work per arrival.
type TwoChoices struct {
	D    int // sample size (default 2)
	rand *rand.Rand
}

// NewTwoChoices returns a d=2 sampler over rnd.
func NewTwoChoices(rnd *rand.Rand) *TwoChoices { return &TwoChoices{D: 2, rand: rnd} }

// Name implements Scheduler.
func (*TwoChoices) Name() string { return "online-2choice" }

// Place implements Scheduler.
func (s *TwoChoices) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	if s.rand == nil {
		return nil, fmt.Errorf("online: TwoChoices requires a random source")
	}
	d := s.D
	if d < 1 {
		d = 2
	}
	if d > len(vms) {
		d = len(vms)
	}
	best := vms[s.rand.Intn(len(vms))]
	for k := 1; k < d; k++ {
		cand := vms[s.rand.Intn(len(vms))]
		if cand.QueuedOrRunning() < best.QueuedOrRunning() {
			best = cand
		}
	}
	return best, nil
}

// ---------------------------------------------------------------------------

// ACO is the per-arrival ant: each arriving cloudlet is an ant choosing a
// VM by Eq. 5's rule over a per-VM pheromone trail. Completions deposit
// pheromone inversely proportional to observed execution time (fast
// completions strengthen their VM's trail), and every placement applies a
// small evaporation — so the trail tracks the fleet's current speed and
// congestion rather than a precomputed estimate.
type ACO struct {
	Alpha float64 // pheromone weight (paper Table II: 0.01)
	Beta  float64 // heuristic weight (paper Table II: 0.99)
	Rho   float64 // evaporation per completion (paper Table II: 0.4)
	Q     float64 // deposit constant (paper Table II: 100)
	rand  *rand.Rand

	tau   map[*cloud.VM]float64
	fleet fleetClasses
}

// NewACO returns an online ACO placer with Table II parameters; rnd must be
// the run's seeded source.
func NewACO(rnd *rand.Rand) *ACO {
	return &ACO{Alpha: 0.01, Beta: 0.99, Rho: 0.4, Q: 100, rand: rnd, tau: map[*cloud.VM]float64{}}
}

// Name implements Scheduler.
func (*ACO) Name() string { return "online-aco" }

// Place implements Scheduler.
func (s *ACO) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	if s.rand == nil {
		return nil, fmt.Errorf("online: ACO requires a random source")
	}
	times, cls := s.fleet.execTimes(c, vms)
	weights := make([]float64, len(vms))
	total := 0.0
	for i, vm := range vms {
		tau := s.tau[vm]
		if tau <= 0 {
			tau = 1
		}
		// Congestion-aware heuristic: idealized time inflated by residency.
		d := float64(vm.QueuedOrRunning()+1) * times[cls[i]]
		w := math.Pow(tau, s.Alpha) * math.Pow(1/d, s.Beta)
		weights[i] = w
		total += w
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return vms[0], nil
	}
	x := s.rand.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 && w > 0 {
			return vms[i], nil
		}
	}
	return vms[len(vms)-1], nil
}

// Completed implements Feedback: evaporate, then deposit Q/exec on the
// completing VM's trail.
func (s *ACO) Completed(c *cloud.Cloudlet, execSeconds float64) {
	if c.VM == nil || execSeconds <= 0 {
		return
	}
	for vm, tau := range s.tau {
		s.tau[vm] = tau * (1 - s.Rho)
	}
	cur := s.tau[c.VM]
	if cur <= 0 {
		cur = 1
	}
	s.tau[c.VM] = cur + s.Q/execSeconds
}

// ---------------------------------------------------------------------------

// HBO is Nakrani & Tovey's honey-bee server allocation (the paper's [16]):
// each VM is a flower patch whose profitability is the work it retired per
// unit busy time; a fraction of arrivals are scout bees that sample
// uniformly at random, the rest are foragers following the dance floor
// (profitability-weighted roulette, discounted by current congestion).
type HBO struct {
	ScoutFraction float64 // fraction of arrivals exploring randomly
	rand          *rand.Rand

	profit map[*cloud.VM]float64 // exponentially-averaged MI per second
}

// NewHBO returns an online honey-bee placer with a 10% scout rate.
func NewHBO(rnd *rand.Rand) *HBO {
	return &HBO{ScoutFraction: 0.1, rand: rnd, profit: map[*cloud.VM]float64{}}
}

// Name implements Scheduler.
func (*HBO) Name() string { return "online-hbo" }

// Place implements Scheduler.
func (s *HBO) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	if s.rand == nil {
		return nil, fmt.Errorf("online: HBO requires a random source")
	}
	if s.rand.Float64() < s.ScoutFraction {
		return vms[s.rand.Intn(len(vms))], nil // scout
	}
	weights := make([]float64, len(vms))
	total := 0.0
	for i, vm := range vms {
		p := s.profit[vm]
		if p <= 0 {
			p = vm.Capacity() // optimistic prior: advertised speed
		}
		w := p / float64(vm.QueuedOrRunning()+1)
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return vms[s.rand.Intn(len(vms))], nil
	}
	x := s.rand.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 && w > 0 {
			return vms[i], nil
		}
	}
	return vms[len(vms)-1], nil
}

// Completed implements Feedback: fold the observed MI/s into the patch's
// exponentially-averaged profitability.
func (s *HBO) Completed(c *cloud.Cloudlet, execSeconds float64) {
	if c.VM == nil || execSeconds <= 0 {
		return
	}
	observed := c.Length / execSeconds
	const alpha = 0.3
	prev := s.profit[c.VM]
	if prev <= 0 {
		prev = observed
	}
	s.profit[c.VM] = (1-alpha)*prev + alpha*observed
}

// ---------------------------------------------------------------------------

// RBS is Algorithm 3 run per arrival: the fleet is split into groups with
// walk-length thresholds and NIDs; each arriving cloudlet draws ω and walks
// from a random entry group until the execution test passes. NIDs reset
// when the whole plant is exhausted, exactly as in the batch form.
type RBS struct {
	Groups int
	rand   *rand.Rand

	groups []rbsGroup
	fleet  []*cloud.VM // fleet the groups were built for
}

type rbsGroup struct {
	vms       []*cloud.VM
	threshold int
	nid       int
	cursor    int
}

// NewRBS returns an online RBS placer with the paper's two groups.
func NewRBS(rnd *rand.Rand) *RBS { return &RBS{Groups: 2, rand: rnd} }

// Name implements Scheduler.
func (*RBS) Name() string { return "online-rbs" }

// Place implements Scheduler.
func (s *RBS) Place(c *cloud.Cloudlet, vms []*cloud.VM) (*cloud.VM, error) {
	if s.rand == nil {
		return nil, fmt.Errorf("online: RBS requires a random source")
	}
	s.ensureGroups(vms)
	q := len(s.groups)
	omega := 1 + s.rand.Intn(q)
	start := s.rand.Intn(q)
	for hops := 0; hops <= 2*q; hops++ {
		g := &s.groups[(start+hops)%q]
		if g.nid > 0 && omega >= g.threshold {
			return s.take(g), nil
		}
		omega++
	}
	// All thresholds passed: only exhaustion blocks — reset NIDs (new round).
	for i := range s.groups {
		s.groups[i].nid = len(s.groups[i].vms)
	}
	return s.take(&s.groups[start]), nil
}

func (s *RBS) take(g *rbsGroup) *cloud.VM {
	vm := g.vms[g.cursor%len(g.vms)]
	g.cursor++
	g.nid--
	exhausted := true
	for i := range s.groups {
		if s.groups[i].nid > 0 {
			exhausted = false
			break
		}
	}
	if exhausted {
		for i := range s.groups {
			s.groups[i].nid = len(s.groups[i].vms)
		}
	}
	return vm
}

// ensureGroups (re)builds group state when the fleet changes.
func (s *RBS) ensureGroups(vms []*cloud.VM) {
	if len(s.fleet) == len(vms) {
		same := true
		for i := range vms {
			if s.fleet[i] != vms[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	q := s.Groups
	if q <= 0 {
		q = 2
	}
	if q > len(vms) {
		q = len(vms)
	}
	s.groups = make([]rbsGroup, q)
	for g := range s.groups {
		s.groups[g].threshold = g + 1
	}
	for i, vm := range vms {
		s.groups[i%q].vms = append(s.groups[i%q].vms, vm)
	}
	for g := range s.groups {
		s.groups[g].nid = len(s.groups[g].vms)
	}
	s.fleet = append(s.fleet[:0], vms...)
}
