package online

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/workload"
)

// hetEnv materializes a small heterogeneous environment + cloudlets.
func hetEnv(t testing.TB, nVMs, nCls int, seed uint64) (*cloud.Environment, []*cloud.Cloudlet) {
	t.Helper()
	s, err := workload.Heterogeneous(nVMs, nCls, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s.Env, s.Cloudlets
}

// uniformArrivals spaces n arrivals dt apart.
func uniformArrivals(n int, dt float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * dt
	}
	return out
}

func allSchedulers(rnd *rand.Rand) []Scheduler {
	return []Scheduler{
		NewRoundRobin(), NewLeastLoaded(), NewEarliestFinish(),
		NewACO(rnd), NewHBO(rnd), NewRBS(rnd), NewTwoChoices(rnd),
	}
}

func TestAllOnlineSchedulersCompleteEverything(t *testing.T) {
	for _, s := range allSchedulers(rand.New(rand.NewSource(1))) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			env, cls := hetEnv(t, 8, 80, 3)
			res, err := Run(env, s, cls, uniformArrivals(80, 0.1), cloud.TimeSharedFactory)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Finished) != 80 {
				t.Fatalf("finished: %d", len(res.Finished))
			}
			if res.MeanResponse <= 0 || res.SimTime <= 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			if res.MeanWait < 0 {
				t.Fatalf("negative wait: %v", res.MeanWait)
			}
		})
	}
}

func TestRoundRobinCursorCycles(t *testing.T) {
	env, _ := hetEnv(t, 4, 4, 1)
	s := NewRoundRobin()
	c := cloud.NewCloudlet(0, 100, 1, 0, 0)
	var got []int
	for i := 0; i < 8; i++ {
		vm, err := s.Place(c, env.VMs)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, vm.ID)
	}
	for i := 0; i < 4; i++ {
		if got[i] != got[i+4] {
			t.Fatalf("cursor not cyclic: %v", got)
		}
	}
}

func TestLeastLoadedPicksIdleVM(t *testing.T) {
	env, cls := hetEnv(t, 3, 3, 5)
	// Manually load VM 0 and 1 via a running engine-less check: bind
	// schedulers through a Run with arrivals that pile up.
	s := NewLeastLoaded()
	res, err := Run(env, s, cls, []float64{0, 0, 0}, cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, c := range res.Finished {
		used[c.VM.ID] = true
	}
	// Three simultaneous arrivals on an idle 3-VM fleet must spread out.
	if len(used) != 3 {
		t.Fatalf("least-loaded piled up: %v", used)
	}
}

func TestEarliestFinishPrefersFastVMWhenIdle(t *testing.T) {
	env, _ := hetEnv(t, 6, 1, 7)
	var fastest *cloud.VM
	for _, vm := range env.VMs {
		if fastest == nil || vm.Capacity() > fastest.Capacity() {
			fastest = vm
		}
	}
	s := NewEarliestFinish()
	c := cloud.NewCloudlet(0, 10000, 1, 300, 300)
	vm, err := s.Place(c, env.VMs)
	if err != nil {
		t.Fatal(err)
	}
	if vm != fastest {
		t.Fatalf("EFT picked VM %d (%.0f MIPS), fastest is %d (%.0f)", vm.ID, vm.Capacity(), fastest.ID, fastest.Capacity())
	}
}

func TestOnlineACOLearnsFromCompletions(t *testing.T) {
	env, cls := hetEnv(t, 6, 300, 11)
	rnd := rand.New(rand.NewSource(2))
	aco := NewACO(rnd)
	res, err := Run(env, aco, cls, uniformArrivals(300, 0.05), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	// After 300 completions the pheromone map must be populated with
	// positive trails (evaporation never drives them negative) and every
	// cloudlet must have completed.
	if len(aco.tau) == 0 {
		t.Fatal("no pheromone accumulated")
	}
	for vm, tau := range aco.tau {
		if tau <= 0 {
			t.Fatalf("non-positive trail on VM %d: %v", vm.ID, tau)
		}
	}
	if len(res.Finished) != 300 {
		t.Fatalf("finished: %d", len(res.Finished))
	}
}

func TestOnlineACOBeatsRoundRobinOnHeterogeneous(t *testing.T) {
	run := func(s Scheduler) float64 {
		env, cls := hetEnv(t, 10, 400, 13)
		res, err := Run(env, s, cls, uniformArrivals(400, 0.02), cloud.TimeSharedFactory)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.MeanResponse)
	}
	acoResp := run(NewACO(rand.New(rand.NewSource(3))))
	rrResp := run(NewRoundRobin())
	if acoResp >= rrResp {
		t.Fatalf("online ACO response %v not below round-robin %v", acoResp, rrResp)
	}
}

func TestOnlineHBOLearnsProfitability(t *testing.T) {
	env, cls := hetEnv(t, 6, 300, 17)
	rnd := rand.New(rand.NewSource(4))
	hbo := NewHBO(rnd)
	if _, err := Run(env, hbo, cls, uniformArrivals(300, 0.05), cloud.TimeSharedFactory); err != nil {
		t.Fatal(err)
	}
	if len(hbo.profit) == 0 {
		t.Fatal("no profitability recorded")
	}
	for vm, p := range hbo.profit {
		if p <= 0 {
			t.Fatalf("non-positive profitability for VM %d: %v", vm.ID, p)
		}
	}
}

func TestOnlineHBOScoutFractionExplores(t *testing.T) {
	env, _ := hetEnv(t, 8, 1, 19)
	rnd := rand.New(rand.NewSource(5))
	hbo := NewHBO(rnd)
	hbo.ScoutFraction = 1.0 // every arrival scouts
	counts := map[int]int{}
	c := cloud.NewCloudlet(0, 100, 1, 0, 0)
	for i := 0; i < 400; i++ {
		vm, err := hbo.Place(c, env.VMs)
		if err != nil {
			t.Fatal(err)
		}
		counts[vm.ID]++
	}
	if len(counts) != 8 {
		t.Fatalf("pure scouting should reach all VMs: %v", counts)
	}
}

func TestOnlineRBSGroupRebuild(t *testing.T) {
	env, _ := hetEnv(t, 6, 1, 23)
	rnd := rand.New(rand.NewSource(6))
	s := NewRBS(rnd)
	c := cloud.NewCloudlet(0, 100, 1, 0, 0)
	if _, err := s.Place(c, env.VMs); err != nil {
		t.Fatal(err)
	}
	if len(s.groups) != 2 {
		t.Fatalf("groups: %d", len(s.groups))
	}
	// Shrink the fleet: groups must rebuild.
	if _, err := s.Place(c, env.VMs[:3]); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range s.groups {
		total += len(g.vms)
	}
	if total != 3 {
		t.Fatalf("groups not rebuilt for new fleet: %d VMs grouped", total)
	}
}

func TestOnlineRBSBalancesCounts(t *testing.T) {
	env, cls := hetEnv(t, 6, 240, 29)
	res, err := Run(env, NewRBS(rand.New(rand.NewSource(7))), cls, uniformArrivals(240, 0.01), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, c := range res.Finished {
		counts[c.VM.ID]++
	}
	min, max := 1<<30, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 2 {
		t.Fatalf("RBS count spread too wide: min %d max %d", min, max)
	}
}

func TestTwoChoicesBeatsRandomSpread(t *testing.T) {
	// Under simultaneous arrivals, d=2 sampling must spread counts far
	// tighter than uniform random placement.
	spread := func(s Scheduler, seed uint64) int {
		env, cls := hetEnv(t, 10, 400, seed)
		res, err := Run(env, s, cls, uniformArrivals(400, 0.001), cloud.TimeSharedFactory)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, c := range res.Finished {
			counts[c.VM.ID]++
		}
		min, max := 1<<30, 0
		for _, vm := range env.VMs {
			n := counts[vm.ID]
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return max - min
	}
	two := spread(NewTwoChoices(rand.New(rand.NewSource(1))), 41)
	// A pure d=1 sampler is uniform random placement.
	one := &TwoChoices{D: 1, rand: rand.New(rand.NewSource(1))}
	rnd := spread(one, 41)
	if two >= rnd {
		t.Fatalf("two choices spread %d not below random %d", two, rnd)
	}
}

func TestTwoChoicesClampsD(t *testing.T) {
	env, _ := hetEnv(t, 3, 1, 43)
	s := &TwoChoices{D: 50, rand: rand.New(rand.NewSource(2))}
	c := cloud.NewCloudlet(0, 100, 1, 0, 0)
	if _, err := s.Place(c, env.VMs); err != nil {
		t.Fatal(err)
	}
	s2 := &TwoChoices{D: 0, rand: rand.New(rand.NewSource(2))}
	if _, err := s2.Place(c, env.VMs); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChoicesRequiresRand(t *testing.T) {
	env, _ := hetEnv(t, 3, 1, 47)
	s := &TwoChoices{D: 2}
	if _, err := s.Place(cloud.NewCloudlet(0, 100, 1, 0, 0), env.VMs); err == nil {
		t.Fatal("expected error without rand")
	}
}

func TestRunInputValidation(t *testing.T) {
	env, cls := hetEnv(t, 2, 4, 31)
	if _, err := Run(env, NewRoundRobin(), nil, nil, cloud.TimeSharedFactory); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := Run(env, NewRoundRobin(), cls, uniformArrivals(3, 1), cloud.TimeSharedFactory); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Run(env, NewRoundRobin(), cls, []float64{-1, 0, 1, 2}, cloud.TimeSharedFactory); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestRunPlaceErrorPropagates(t *testing.T) {
	env, cls := hetEnv(t, 2, 4, 37)
	// ACO without a random source fails at the first placement.
	if _, err := Run(env, &ACO{Alpha: 1, Beta: 1, Rho: .5, Q: 1}, cls, uniformArrivals(4, 1), cloud.TimeSharedFactory); err == nil {
		t.Fatal("place error swallowed")
	}
}

func TestOnlinePropertyAllComplete(t *testing.T) {
	f := func(seed uint64, schedIdx uint8, nRaw uint8) bool {
		n := 10 + int(nRaw)%60
		env, cls := hetEnv(t, 5, n, seed)
		rnd := rand.New(rand.NewSource(int64(seed)))
		scheds := allSchedulers(rnd)
		s := scheds[int(schedIdx)%len(scheds)]
		res, err := Run(env, s, cls, uniformArrivals(n, 0.05), cloud.TimeSharedFactory)
		if err != nil {
			return false
		}
		return len(res.Finished) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
