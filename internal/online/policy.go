package online

import (
	"fmt"
	"math/rand"
	"sort"
)

// policyFactories maps policy names to constructors. Unlike the batch
// registry in internal/sched, the set is closed: online policies live in
// this package, so a static table keeps lookups allocation-free and the
// name list stable.
var policyFactories = map[string]func(rnd *rand.Rand) Scheduler{
	"online-rr":      func(*rand.Rand) Scheduler { return NewRoundRobin() },
	"online-least":   func(*rand.Rand) Scheduler { return NewLeastLoaded() },
	"online-eft":     func(*rand.Rand) Scheduler { return NewEarliestFinish() },
	"online-aco":     func(rnd *rand.Rand) Scheduler { return NewACO(rnd) },
	"online-hbo":     func(rnd *rand.Rand) Scheduler { return NewHBO(rnd) },
	"online-rbs":     func(rnd *rand.Rand) Scheduler { return NewRBS(rnd) },
	"online-2choice": func(rnd *rand.Rand) Scheduler { return NewTwoChoices(rnd) },
}

// NewPolicy builds the per-arrival policy registered under name. Stochastic
// policies draw from rnd; deterministic ones ignore it. rnd must not be nil
// for online-aco, online-hbo, online-rbs, and online-2choice.
func NewPolicy(name string, rnd *rand.Rand) (Scheduler, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("online: unknown policy %q (have %v)", name, PolicyNames())
	}
	return f(rnd), nil
}

// IsPolicy reports whether name identifies an online policy.
func IsPolicy(name string) bool {
	_, ok := policyFactories[name]
	return ok
}

// PolicyNames lists the online policies in sorted order.
func PolicyNames() []string {
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
