package online

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sim"
)

// Result summarizes an online run.
type Result struct {
	Finished     []*cloud.Cloudlet
	MeanResponse sim.Time // mean (finish − arrival) across cloudlets
	MeanWait     sim.Time // mean (start − arrival)
	SimTime      sim.Time // Eq. 12 over the run
	Imbalance    float64  // Eq. 13
	Cost         float64
	EngineEvents uint64
}

// Run drives cloudlets through env with per-arrival placement: cloudlet i
// arrives at arrivals[i] seconds, scheduler.Place picks its VM using only
// the fleet's state at that instant, and completion feedback reaches
// schedulers implementing Feedback. The cloudlets must be fresh (created
// state); arrivals must be non-negative and len(arrivals)==len(cloudlets).
func Run(env *cloud.Environment, scheduler Scheduler, cloudlets []*cloud.Cloudlet, arrivals []float64, factory cloud.SchedulerFactory) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(cloudlets) == 0 {
		return nil, fmt.Errorf("online: empty cloudlet batch")
	}
	if len(arrivals) != len(cloudlets) {
		return nil, fmt.Errorf("online: %d arrivals for %d cloudlets", len(arrivals), len(cloudlets))
	}
	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, env, factory)

	learner, _ := scheduler.(Feedback)
	if learner != nil {
		broker.OnFinish(func(c *cloud.Cloudlet) {
			learner.Completed(c, c.ExecTime())
		})
	}

	var placeErr error
	for i, c := range cloudlets {
		if arrivals[i] < 0 {
			return nil, fmt.Errorf("online: negative arrival %v at index %d", arrivals[i], i)
		}
		c := c
		eng.ScheduleAt(arrivals[i], sim.PriorityAcquire, func() {
			if placeErr != nil {
				return
			}
			vm, err := scheduler.Place(c, env.VMs)
			if err != nil {
				placeErr = fmt.Errorf("online: placing cloudlet %d: %w", c.ID, err)
				eng.Stop()
				return
			}
			broker.Submit(c, vm)
		})
	}
	eng.Run()
	if placeErr != nil {
		return nil, placeErr
	}
	finished := broker.Finished()
	if len(finished) != len(cloudlets) {
		return nil, fmt.Errorf("online: %d of %d cloudlets unfinished", len(cloudlets)-len(finished), len(cloudlets))
	}

	res := &Result{Finished: finished, EngineEvents: eng.Fired()}
	res.SimTime = metrics.SimulationTime(finished)
	res.Imbalance = metrics.TimeImbalance(finished)
	res.Cost = metrics.ProcessingCost(finished)
	var resp, wait sim.Time
	for i, c := range cloudlets {
		resp += c.FinishTime - sim.Time(arrivals[i])
		wait += c.StartTime - sim.Time(arrivals[i])
	}
	res.MeanResponse = resp / sim.Time(len(cloudlets))
	res.MeanWait = wait / sim.Time(len(cloudlets))
	return res, nil
}
