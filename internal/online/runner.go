package online

import (
	"errors"
	"fmt"
	"math"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/metrics"
	"bioschedsim/internal/sim"
)

// ErrEmptyBatch reports a run or flush that carried no cloudlets. Callers
// that coalesce submissions (the scheduling service's time-bounded batcher)
// legitimately produce empty flushes and use errors.Is to distinguish this
// from real failures.
var ErrEmptyBatch = errors.New("online: empty cloudlet batch")

// validArrival reports whether a is a usable arrival offset: finite and
// non-negative.
func validArrival(a float64) bool {
	return a >= 0 && !math.IsNaN(a) && !math.IsInf(a, 0)
}

// Result summarizes an online run.
type Result struct {
	Finished     []*cloud.Cloudlet
	MeanResponse sim.Time // mean (finish − arrival) across cloudlets
	MeanWait     sim.Time // mean (start − arrival)
	SimTime      sim.Time // Eq. 12 over the run
	Imbalance    float64  // Eq. 13
	Cost         float64
	EngineEvents uint64
}

// Run drives cloudlets through env with per-arrival placement: cloudlet i
// arrives at arrivals[i] seconds, scheduler.Place picks its VM using only
// the fleet's state at that instant, and completion feedback reaches
// schedulers implementing Feedback. The cloudlets must be fresh (created
// state); arrivals need not be sorted but every element must be finite and
// non-negative, and len(arrivals)==len(cloudlets). An empty batch returns
// ErrEmptyBatch.
func Run(env *cloud.Environment, scheduler Scheduler, cloudlets []*cloud.Cloudlet, arrivals []float64, factory cloud.SchedulerFactory) (*Result, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(cloudlets) == 0 {
		return nil, ErrEmptyBatch
	}
	if len(arrivals) != len(cloudlets) {
		return nil, fmt.Errorf("online: %d arrivals for %d cloudlets", len(arrivals), len(cloudlets))
	}
	for i, a := range arrivals {
		if !validArrival(a) {
			return nil, fmt.Errorf("online: invalid arrival %v at index %d (want finite, non-negative)", a, i)
		}
	}
	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, env, factory)

	learner, _ := scheduler.(Feedback)
	if learner != nil {
		broker.OnFinish(func(c *cloud.Cloudlet) {
			learner.Completed(c, c.ExecTime())
		})
	}

	var placeErr error
	for i, c := range cloudlets {
		c := c
		eng.ScheduleAt(arrivals[i], sim.PriorityAcquire, func() {
			if placeErr != nil {
				return
			}
			vm, err := scheduler.Place(c, env.VMs)
			if err != nil {
				placeErr = fmt.Errorf("online: placing cloudlet %d: %w", c.ID, err)
				eng.Stop()
				return
			}
			broker.Submit(c, vm)
		})
	}
	eng.Run()
	if placeErr != nil {
		return nil, placeErr
	}
	finished := broker.Finished()
	if len(finished) != len(cloudlets) {
		return nil, fmt.Errorf("online: %d of %d cloudlets unfinished", len(cloudlets)-len(finished), len(cloudlets))
	}

	res := &Result{Finished: finished, EngineEvents: eng.Fired()}
	res.SimTime = metrics.SimulationTime(finished)
	res.Imbalance = metrics.TimeImbalance(finished)
	res.Cost = metrics.ProcessingCost(finished)
	var resp, wait sim.Time
	for i, c := range cloudlets {
		resp += c.FinishTime - sim.Time(arrivals[i])
		wait += c.StartTime - sim.Time(arrivals[i])
	}
	res.MeanResponse = resp / sim.Time(len(cloudlets))
	res.MeanWait = wait / sim.Time(len(cloudlets))
	return res, nil
}
