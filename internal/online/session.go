package online

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sim"
)

// Session is a long-lived incremental scheduling context: one engine and one
// broker survive across many batches, so placements always see the fleet's
// live residency and completion feedback accumulates in the policy instead
// of resetting per run. This is the execution substrate of the scheduling
// service (internal/service): each flushed batch is placed — per-arrival by
// an online policy, or wholesale from a batch scheduler's assignment — and
// then Run drains the engine, advancing the shared simulated clock.
//
// A Session is not safe for concurrent use; callers serialize access (the
// service holds one mutex around place/submit/run).
type Session struct {
	env      *cloud.Environment
	eng      *sim.Engine
	broker   *cloud.Broker
	policy   Scheduler // nil when the session only receives pre-placed work
	onFinish cloud.FinishFunc
	drained  int // prefix of broker.Finished() already returned by Run
}

// NewSession validates env and binds a fresh engine and broker to it. policy
// may be nil for sessions that only accept externally assigned placements
// via SubmitPlaced. If the policy implements Feedback it receives completion
// reports for every cloudlet the session finishes.
func NewSession(env *cloud.Environment, policy Scheduler, factory cloud.SchedulerFactory) (*Session, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(env.VMs) == 0 {
		return nil, fmt.Errorf("online: session over empty fleet")
	}
	eng := sim.NewEngine()
	s := &Session{env: env, eng: eng, policy: policy}
	s.broker = cloud.NewBroker(eng, env, factory)
	learner, _ := policy.(Feedback)
	s.broker.OnFinish(func(c *cloud.Cloudlet) {
		if learner != nil {
			learner.Completed(c, c.ExecTime())
		}
		if s.onFinish != nil {
			s.onFinish(c)
		}
	})
	return s, nil
}

// NewSubsetSession builds a session over the slice of base's fleet given by
// vms — a shard engine. The subset environment shares base's datacenters but
// owns only the listed VMs, with pointer identity (and therefore VM IDs)
// preserved, so per-shard results report the same VM numbering an unsharded
// run would. Each subset session gets its own engine, broker, and clock;
// sessions over disjoint subsets touch disjoint VM state and may run
// concurrently (the datacenters they share are read-only during execution).
func NewSubsetSession(base *cloud.Environment, vms []*cloud.VM, policy Scheduler, factory cloud.SchedulerFactory) (*Session, error) {
	sub, err := base.Subset(vms)
	if err != nil {
		return nil, err
	}
	return NewSession(sub, policy, factory)
}

// OnFinish registers a hook invoked at each cloudlet completion, after any
// policy feedback. It must be set before work is submitted.
func (s *Session) OnFinish(fn cloud.FinishFunc) { s.onFinish = fn }

// Now returns the session's current simulated time. The clock only moves
// forward: each Run resumes where the previous one stopped.
func (s *Session) Now() sim.Time { return s.eng.Now() }

// Environment returns the live environment the session schedules against.
func (s *Session) Environment() *cloud.Environment { return s.env }

// Place picks a VM for c with the session's policy against the fleet's
// current residency and submits it at the session's current time, so
// consecutive placements within one batch see each other's load.
func (s *Session) Place(c *cloud.Cloudlet) (*cloud.VM, error) {
	if s.policy == nil {
		return nil, fmt.Errorf("online: session has no placement policy")
	}
	vm, err := s.policy.Place(c, s.env.VMs)
	if err != nil {
		return nil, err
	}
	if err := s.SubmitPlaced(c, vm); err != nil {
		return nil, err
	}
	return vm, nil
}

// PlaceBatch places each cloudlet of a flushed batch in order. An empty
// batch returns ErrEmptyBatch so callers can treat time-triggered empty
// flushes as a no-op rather than a failure.
func (s *Session) PlaceBatch(cloudlets []*cloud.Cloudlet) error {
	if len(cloudlets) == 0 {
		return ErrEmptyBatch
	}
	for i, c := range cloudlets {
		if _, err := s.Place(c); err != nil {
			return fmt.Errorf("online: placing cloudlet %d (batch index %d): %w", c.ID, i, err)
		}
	}
	return nil
}

// SubmitPlaced hands an externally assigned (cloudlet, VM) pair to the
// session's broker at the current time — the path batch schedulers use to
// reuse one broker across flushes.
func (s *Session) SubmitPlaced(c *cloud.Cloudlet, vm *cloud.VM) error {
	if c == nil || vm == nil {
		return fmt.Errorf("online: nil cloudlet or VM in placement")
	}
	if vm.Scheduler() == nil {
		return fmt.Errorf("online: VM %d has no bound cloudlet scheduler", vm.ID)
	}
	s.broker.Submit(c, vm)
	return nil
}

// Run drains every scheduled event and returns the cloudlets that finished
// since the previous Run, in completion order. The returned slice aliases
// the broker's history; callers must not mutate it.
func (s *Session) Run() []*cloud.Cloudlet {
	s.eng.Run()
	fin := s.broker.Finished()
	out := fin[s.drained:]
	s.drained = len(fin)
	return out
}

// Finished returns every cloudlet the session has completed since creation.
func (s *Session) Finished() []*cloud.Cloudlet { return s.broker.Finished() }
