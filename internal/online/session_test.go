package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"bioschedsim/internal/cloud"
)

func TestRunEmptyBatchIsTyped(t *testing.T) {
	env, _ := hetEnv(t, 2, 4, 31)
	_, err := Run(env, NewRoundRobin(), nil, nil, cloud.TimeSharedFactory)
	if !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("want ErrEmptyBatch, got %v", err)
	}
}

func TestRunRejectsInvalidArrivalElements(t *testing.T) {
	env, cls := hetEnv(t, 2, 4, 31)
	cases := map[string][]float64{
		"negative": {0, 1, -0.5, 2},
		"nan":      {0, math.NaN(), 1, 2},
		"+inf":     {0, 1, math.Inf(1), 2},
		"-inf":     {0, 1, 2, math.Inf(-1)},
	}
	for name, arrivals := range cases {
		if _, err := Run(env, NewRoundRobin(), cls, arrivals, cloud.TimeSharedFactory); err == nil {
			t.Errorf("%s arrival accepted", name)
		} else if errors.Is(err, ErrEmptyBatch) {
			t.Errorf("%s arrival misreported as empty batch: %v", name, err)
		}
	}
}

func TestRunAcceptsUnsortedArrivals(t *testing.T) {
	const n = 40
	env, cls := hetEnv(t, 4, n, 11)
	// Reverse-ordered and interleaved arrivals: cloudlet i arrives at
	// (n-1-i)·0.1s, so the last list element arrives first.
	arrivals := make([]float64, n)
	for i := range arrivals {
		arrivals[i] = float64(n-1-i) * 0.1
	}
	res, err := Run(env, NewEarliestFinish(), cls, arrivals, cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Finished) != n {
		t.Fatalf("finished %d of %d", len(res.Finished), n)
	}
	if res.MeanResponse <= 0 || res.MeanWait < 0 {
		t.Fatalf("degenerate result with unsorted arrivals: %+v", res)
	}
	// First list element arrives last, so it cannot have started before its
	// own arrival instant.
	if cls[0].StartTime < arrivals[0] {
		t.Fatalf("cloudlet 0 started at %v before its arrival %v", cls[0].StartTime, arrivals[0])
	}
}

func TestSessionPlacesBatchesIncrementally(t *testing.T) {
	env, cls := hetEnv(t, 4, 20, 7)
	s, err := NewSession(env, NewEarliestFinish(), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	var finishedHook int
	s.OnFinish(func(*cloud.Cloudlet) { finishedHook++ })

	// First flush: 12 cloudlets.
	if err := s.PlaceBatch(cls[:12]); err != nil {
		t.Fatal(err)
	}
	first := s.Run()
	if len(first) != 12 {
		t.Fatalf("first flush finished %d, want 12", len(first))
	}
	t1 := s.Now()
	if t1 <= 0 {
		t.Fatalf("clock did not advance: %v", t1)
	}

	// Second flush reuses the same broker; the clock keeps moving forward.
	if err := s.PlaceBatch(cls[12:]); err != nil {
		t.Fatal(err)
	}
	second := s.Run()
	if len(second) != 8 {
		t.Fatalf("second flush finished %d, want 8", len(second))
	}
	if s.Now() < t1 {
		t.Fatalf("clock went backwards: %v after %v", s.Now(), t1)
	}
	if got := len(s.Finished()); got != 20 {
		t.Fatalf("session finished %d, want 20", got)
	}
	if finishedHook != 20 {
		t.Fatalf("OnFinish fired %d times, want 20", finishedHook)
	}
	// Second-flush cloudlets were submitted at the advanced clock.
	for _, c := range second {
		if c.SubmitTime < t1 {
			t.Fatalf("cloudlet %d submitted at %v, before batch hand-off at %v", c.ID, c.SubmitTime, t1)
		}
	}
}

func TestSessionEmptyFlushIsTyped(t *testing.T) {
	env, _ := hetEnv(t, 2, 2, 3)
	s, err := NewSession(env, NewRoundRobin(), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("want ErrEmptyBatch, got %v", err)
	}
	if got := s.Run(); len(got) != 0 {
		t.Fatalf("empty flush finished %d cloudlets", len(got))
	}
}

func TestSessionSubmitPlacedWithoutPolicy(t *testing.T) {
	env, cls := hetEnv(t, 3, 6, 5)
	s, err := NewSession(env, nil, cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(cls[0]); err == nil {
		t.Fatal("Place without a policy accepted")
	}
	for i, c := range cls {
		if err := s.SubmitPlaced(c, env.VMs[i%len(env.VMs)]); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Run()); got != 6 {
		t.Fatalf("finished %d, want 6", got)
	}
	if err := s.SubmitPlaced(nil, env.VMs[0]); err == nil {
		t.Fatal("nil cloudlet accepted")
	}
	if err := s.SubmitPlaced(cls[0], nil); err == nil {
		t.Fatal("nil VM accepted")
	}
}

func TestSessionFeedsBackCompletions(t *testing.T) {
	env, cls := hetEnv(t, 3, 9, 13)
	policy := NewACO(rand.New(rand.NewSource(1)))
	s, err := NewSession(env, policy, cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceBatch(cls); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(policy.tau) == 0 {
		t.Fatal("completion feedback never reached the policy's pheromone trail")
	}
}

func TestNewPolicyRegistryRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, rnd)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
		if !IsPolicy(name) {
			t.Errorf("IsPolicy(%q) = false", name)
		}
	}
	if _, err := NewPolicy("no-such-policy", rnd); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if IsPolicy("aco") {
		t.Fatal("batch scheduler name misclassified as online policy")
	}
}

func TestSubsetSessionsPreserveIdentityAndIsolate(t *testing.T) {
	env, cls := hetEnv(t, 6, 24, 13)
	ranges, err := cloud.PartitionVMs(env.VMs, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSubsetSession(env, ranges[0], NewRoundRobin(), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSubsetSession(env, ranges[1], NewRoundRobin(), cloud.TimeSharedFactory)
	if err != nil {
		t.Fatal(err)
	}
	// Each subset session sees only its range, with the original VM objects
	// and IDs — nothing renumbered.
	if len(a.Environment().VMs) != 3 || len(b.Environment().VMs) != 3 {
		t.Fatalf("subset fleets %d/%d, want 3/3", len(a.Environment().VMs), len(b.Environment().VMs))
	}
	for i, vm := range b.Environment().VMs {
		if vm != env.VMs[3+i] {
			t.Fatalf("shard 1 VM %d is not fleet VM %d", i, 3+i)
		}
	}
	if err := a.PlaceBatch(cls[:12]); err != nil {
		t.Fatal(err)
	}
	if err := b.PlaceBatch(cls[12:]); err != nil {
		t.Fatal(err)
	}
	finA, finB := a.Run(), b.Run()
	if len(finA) != 12 || len(finB) != 12 {
		t.Fatalf("finished %d/%d, want 12/12", len(finA), len(finB))
	}
	seen := make(map[int]int)
	for _, c := range finA {
		if c.VM == nil || c.VM.ID > 2 {
			t.Fatalf("shard 0 cloudlet %d ran on VM outside its range: %v", c.ID, c.VM)
		}
		seen[c.ID]++
	}
	for _, c := range finB {
		if c.VM == nil || c.VM.ID < 3 {
			t.Fatalf("shard 1 cloudlet %d ran on VM outside its range: %v", c.ID, c.VM)
		}
		seen[c.ID]++
	}
	if len(seen) != 24 {
		t.Fatalf("union covers %d of 24 cloudlets", len(seen))
	}
	// Clocks are independent: each shard advanced its own simulated time.
	if a.Now() <= 0 || b.Now() <= 0 {
		t.Fatalf("shard clocks did not advance: %v / %v", a.Now(), b.Now())
	}
}

func TestSubsetSessionRejectsForeignVMs(t *testing.T) {
	env, _ := hetEnv(t, 4, 4, 5)
	other, _ := hetEnv(t, 2, 2, 6)
	if _, err := NewSubsetSession(env, other.VMs[:1], NewRoundRobin(), cloud.TimeSharedFactory); err == nil {
		t.Fatal("foreign VM subset accepted")
	}
	if _, err := NewSubsetSession(env, nil, NewRoundRobin(), cloud.TimeSharedFactory); err == nil {
		t.Fatal("empty subset accepted")
	}
}
