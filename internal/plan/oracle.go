package plan

import (
	"fmt"

	"bioschedsim/internal/qmodel"
)

// OracleCase is one qmodel-differential configuration: a homogeneous
// fleet exposed to Poisson arrivals at offered load Rho per server, whose
// simulated mean wait must agree with the analytic M/M/1 (Servers == 1) or
// M/M/c oracle within Tol relative error. internal/check's qmodel-oracle
// invariant and `cloudsched plan oracle` both run exactly this, so a
// failing invariant prints a replay line that reproduces the differential
// outside the test harness.
type OracleCase struct {
	Rho     float64 // offered load λ/(c·μ), in (0, 1)
	Servers int     // total service channels c (PEs across the fleet)
	VMs     int     // VM count; Servers/VMs PEs each (must divide evenly)
	N       int     // arrivals to simulate
	Warmup  int     // leading arrivals excluded from statistics
	Mu      float64 // per-channel service rate, cloudlets/s
	Seed    uint64
	Tol     float64 // relative-error band
}

// Validate rejects unusable cases.
func (c OracleCase) Validate() error {
	if !finitePos(c.Rho) || c.Rho >= 1 {
		return fmt.Errorf("plan: oracle rho must be in (0, 1), got %v", c.Rho)
	}
	if c.Servers < 1 || c.VMs < 1 || c.Servers%c.VMs != 0 {
		return fmt.Errorf("plan: oracle needs servers (%d) divisible by vms (%d), both positive", c.Servers, c.VMs)
	}
	if c.N <= 0 || c.Warmup < 0 || c.Warmup >= c.N {
		return fmt.Errorf("plan: oracle needs 0 ≤ warmup (%d) < n (%d)", c.Warmup, c.N)
	}
	if !finitePos(c.Mu) {
		return fmt.Errorf("plan: oracle mu must be positive and finite, got %v", c.Mu)
	}
	if !finitePos(c.Tol) {
		return fmt.Errorf("plan: oracle tol must be positive and finite, got %v", c.Tol)
	}
	return nil
}

// Lambda returns the arrival rate λ = Rho·Servers·Mu.
func (c OracleCase) Lambda() float64 { return c.Rho * float64(c.Servers) * c.Mu }

// Spec materializes the case as a capacity-planning spec: queue dispatch
// (the exact-M/M/c configuration), a pinned fleet, and a per-PE MIPS of
// 1000 with the mean demand chosen so μ comes out exactly.
func (c OracleCase) Spec() *Spec {
	return &Spec{
		Name: fmt.Sprintf("oracle-rho%g-c%d", c.Rho, c.Servers),
		Workload: WorkloadSpec{
			Process:      "poisson",
			Rate:         c.Lambda(),
			Cloudlets:    c.N,
			Warmup:       c.Warmup,
			MeanLengthMI: 1000 / c.Mu,
		},
		Fleet: FleetSpec{
			VMMips:   1000,
			VMPes:    c.Servers / c.VMs,
			MinVMs:   c.VMs,
			MaxVMs:   c.VMs,
			Dispatch: DispatchQueue,
		},
		// The oracle judges mean wait directly; the SLO fields just have
		// to be valid.
		SLO:  SLOSpec{Quantile: 0.99, TargetSeconds: 1e9},
		Seed: c.Seed,
	}
}

// OracleResult is one differential measurement.
type OracleResult struct {
	SimMeanWait float64 // simulated mean queue wait, post-warmup
	TheoryWait  float64 // qmodel M/M/1 or M/M/c Wq
	RelErr      float64 // qmodel.RelativeError(sim, theory)
	Count       uint64  // recorded observations (must be N − Warmup)
}

// Pass reports whether the differential landed inside the band and every
// post-warmup sample was recorded.
func (r *OracleResult) Pass(c OracleCase) bool {
	return r.RelErr <= c.Tol && r.Count == uint64(c.N-c.Warmup)
}

// RunOracle executes the differential. opts carries the check harness's
// plant seams; pass nil for the real engine.
func (c OracleCase) RunOracle(opts *RunOptions) (*OracleResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	res, err := Run(c.Spec(), c.VMs, opts)
	if err != nil {
		return nil, err
	}
	var theory float64
	if c.Servers == 1 {
		theory, err = qmodel.MM1WaitQueue(c.Lambda(), c.Mu)
	} else {
		theory, err = qmodel.MMcWaitQueue(c.Lambda(), c.Mu, c.Servers)
	}
	if err != nil {
		return nil, err
	}
	sim := res.Recorder.MeanWait()
	return &OracleResult{
		SimMeanWait: sim,
		TheoryWait:  theory,
		RelErr:      qmodel.RelativeError(sim, theory),
		Count:       res.Recorder.Count(),
	}, nil
}

// ReplayCommand formats the case as a runnable one-liner.
func (c OracleCase) ReplayCommand() string {
	return OracleReplayCommand(c.Rho, c.Servers, c.VMs, c.N, c.Warmup, c.Mu, c.Seed, c.Tol)
}
