package plan

import (
	"fmt"
	"strconv"
)

// Probe is one measured fleet size inside a verdict, in probe order.
type Probe struct {
	Fleet         int
	PeakFleet     int
	Count         uint64
	MeanWait      float64
	QuantileValue float64 // latency at the spec's SLO quantile
	Met           bool
	ScaleUps      int
	ScaleDowns    int
}

// Verdict answers the capacity question for one spec.
type Verdict struct {
	Spec        *Spec
	Elastic     bool
	Sustainable bool
	// MinFleet is the smallest fleet meeting the SLO (static specs), or
	// the peak fleet the autoscaler reached (elastic specs). Zero when the
	// SLO is unreachable within the fleet bounds.
	MinFleet int
	Probes   []Probe
}

// probe runs one fleet size and appends the measurement.
func (v *Verdict) probe(fleet int, opts *RunOptions) (bool, error) {
	res, err := Run(v.Spec, fleet, opts)
	if err != nil {
		return false, err
	}
	met := res.SLOMet(v.Spec)
	p := Probe{
		Fleet:         fleet,
		PeakFleet:     res.PeakFleet,
		Count:         res.Recorder.Count(),
		MeanWait:      res.Recorder.MeanWait(),
		QuantileValue: res.SLOValue(v.Spec),
		Met:           met,
		ScaleUps:      res.ScaleUps,
		ScaleDowns:    res.ScaleDowns,
	}
	v.Probes = append(v.Probes, p)
	return met, nil
}

// Plan answers "will this fleet sustain the workload within the SLO?". For
// static specs it binary-searches the smallest fleet size in
// [MinVMs, MaxVMs] that meets the SLO — queue wait is monotone in capacity,
// so the passing region is an up-set and bisection is sound. For elastic
// specs it runs once from MinVMs and reports whether the autoscaler held
// the SLO and how big the fleet had to get. Every probe is recorded so the
// verdict documents its own evidence.
func Plan(spec *Spec, opts *RunOptions) (*Verdict, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	v := &Verdict{Spec: spec, Elastic: spec.Elastic != nil}
	if v.Elastic {
		met, err := v.probe(spec.Fleet.MinVMs, opts)
		if err != nil {
			return nil, err
		}
		v.Sustainable = met
		if met {
			v.MinFleet = v.Probes[0].PeakFleet
		}
		return v, nil
	}

	lo, hi := spec.Fleet.MinVMs, spec.Fleet.MaxVMs
	// The whole search is pointless if even the largest allowed fleet
	// misses the SLO — establish the upper bracket first.
	met, err := v.probe(hi, opts)
	if err != nil {
		return nil, err
	}
	if !met {
		return v, nil
	}
	v.Sustainable = true
	for lo < hi {
		mid := lo + (hi-lo)/2
		met, err := v.probe(mid, opts)
		if err != nil {
			return nil, err
		}
		if met {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v.MinFleet = lo
	return v, nil
}

// ReplayCommand formats the one-liner that reproduces a single measured
// run from its spec file — the same UX as `schedcheck replay`.
func ReplayCommand(specPath string, seed uint64, fleet int) string {
	return "cloudsched plan replay -spec " + specPath +
		" -seed " + strconv.FormatUint(seed, 10) +
		" -fleet " + strconv.Itoa(fleet)
}

// OracleReplayCommand formats the one-liner that reproduces one
// qmodel-oracle differential case outside the test harness; internal/check
// prints it in qmodel-oracle violations.
func OracleReplayCommand(rho float64, servers, vms, n, warmup int, mu float64, seed uint64, tol float64) string {
	return fmt.Sprintf("cloudsched plan oracle -rho %g -servers %d -vms %d -n %d -warmup %d -mu %g -seed %d -tol %g",
		rho, servers, vms, n, warmup, mu, seed, tol)
}
