package plan

import (
	"bioschedsim/internal/metrics"
)

// Recorder collects per-cloudlet wait (arrival → execution start) and
// latency (arrival → completion) samples during a run. The engine feeds it
// every post-warmup completion; the verdict reads quantiles back out. It is
// an interface so internal/check can plant a broken recorder (dropping
// samples) and prove the qmodel-oracle invariant catches it.
type Recorder interface {
	// Observe records one completed cloudlet.
	Observe(wait, latency float64)
	// Count returns how many observations were recorded.
	Count() uint64
	// MeanWait returns the mean recorded wait, NaN when empty.
	MeanWait() float64
	// Quantile estimates the q-quantile of the latency distribution,
	// NaN when empty.
	Quantile(q float64) float64
}

// LatencyBuckets is the bucket layout shared by every LatencyStats: 100
// exponential bounds from 1 ms growing 15% per bucket (≈ 1.2 ks ceiling).
// The 1.15 factor bounds quantile interpolation error at ~7% of the value,
// well under the oracle tolerance bands; a shared static layout is what
// makes cross-shard merges legal.
func LatencyBuckets() []float64 {
	return metrics.ExpBuckets(1e-3, 1.15, 100)
}

// LatencyStats is the default Recorder: a latency histogram plus exact
// running sums for mean wait and mean latency.
type LatencyStats struct {
	hist    *metrics.Histogram
	count   uint64
	waitSum float64
	latSum  float64
}

// NewLatencyStats returns an empty recorder over LatencyBuckets.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{hist: metrics.NewHistogram(LatencyBuckets())}
}

// Observe implements Recorder.
func (s *LatencyStats) Observe(wait, latency float64) {
	s.hist.Observe(latency)
	s.count++
	s.waitSum += wait
	s.latSum += latency
}

// Count implements Recorder.
func (s *LatencyStats) Count() uint64 { return s.count }

// MeanWait implements Recorder.
func (s *LatencyStats) MeanWait() float64 { return s.waitSum / float64(s.count) }

// MeanLatency returns the mean recorded latency, NaN when empty.
func (s *LatencyStats) MeanLatency() float64 { return s.latSum / float64(s.count) }

// Quantile implements Recorder.
func (s *LatencyStats) Quantile(q float64) float64 { return s.hist.Quantile(q) }

// Merge folds o into s: bucket counts, observation counts, and sums all
// add. Quantiles are bit-identical under any shard split because bucket
// counts are integers; the float sums are order-dependent, so deterministic
// cross-shard aggregation folds shards in ascending shard-index order
// (MergeAll) — same convention as the daemon's Eq. 12/13 metric merge.
func (s *LatencyStats) Merge(o *LatencyStats) {
	s.hist.Merge(o.hist)
	s.count += o.count
	s.waitSum += o.waitSum
	s.latSum += o.latSum
}

// MergeAll merges per-shard recorders into one in ascending index order,
// the canonical deterministic fold.
func MergeAll(shards []*LatencyStats) *LatencyStats {
	out := NewLatencyStats()
	for _, sh := range shards {
		out.Merge(sh)
	}
	return out
}

// LatencySummary is a rendered view of a LatencyStats for reports.
type LatencySummary struct {
	Count       uint64
	MeanWait    float64
	MeanLatency float64
	P50         float64
	P95         float64
	P99         float64
}

// Summary renders the standard report quantiles.
func (s *LatencyStats) Summary() LatencySummary {
	return LatencySummary{
		Count:       s.count,
		MeanWait:    s.MeanWait(),
		MeanLatency: s.MeanLatency(),
		P50:         s.Quantile(0.50),
		P95:         s.Quantile(0.95),
		P99:         s.Quantile(0.99),
	}
}
