package plan

import (
	"math"
	"testing"

	"bioschedsim/internal/xrand"
)

// TestLatencyStatsBasics checks the exact-sum paths and the histogram
// quantile wiring.
func TestLatencyStatsBasics(t *testing.T) {
	s := NewLatencyStats()
	if s.Count() != 0 {
		t.Fatalf("fresh Count = %d", s.Count())
	}
	if !math.IsNaN(s.Quantile(0.99)) || !math.IsNaN(s.MeanWait()) {
		t.Fatal("empty recorder must report NaN")
	}
	s.Observe(1, 2)
	s.Observe(3, 4)
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if s.MeanWait() != 2 {
		t.Fatalf("MeanWait = %v, want 2", s.MeanWait())
	}
	if s.MeanLatency() != 3 {
		t.Fatalf("MeanLatency = %v, want 3", s.MeanLatency())
	}
	sum := s.Summary()
	if sum.Count != 2 || sum.MeanWait != 2 || sum.MeanLatency != 3 {
		t.Fatalf("Summary = %+v", sum)
	}
	if sum.P50 <= 0 || sum.P99 < sum.P50 {
		t.Fatalf("quantiles inconsistent: %+v", sum)
	}
}

// TestLatencyStatsShardMergeDeterministic proves the cross-shard
// aggregation contract: for any shard split of the same observation
// stream, the merged quantiles are bit-identical to the unsharded
// recorder's (integer bucket counts), and the ascending-order fold
// reproduces mean wait bit-identically across different shard counts.
func TestLatencyStatsShardMergeDeterministic(t *testing.T) {
	const n = 50000
	r := xrand.New(31, 0)
	waits := make([]float64, n)
	lats := make([]float64, n)
	for i := range waits {
		waits[i] = r.ExpFloat64() * 0.3
		lats[i] = waits[i] + r.ExpFloat64()
	}

	whole := NewLatencyStats()
	for i := range waits {
		whole.Observe(waits[i], lats[i])
	}

	var meanRef float64
	for _, shards := range []int{1, 2, 3, 7, 16} {
		parts := make([]*LatencyStats, shards)
		for s := range parts {
			parts[s] = NewLatencyStats()
		}
		// Round-robin split: shard s sees observations s, s+k, s+2k, …
		for i := range waits {
			parts[i%shards].Observe(waits[i], lats[i])
		}
		merged := MergeAll(parts)
		if merged.Count() != whole.Count() {
			t.Fatalf("%d shards: Count %d vs %d", shards, merged.Count(), whole.Count())
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			if mq, wq := merged.Quantile(q), whole.Quantile(q); mq != wq {
				t.Fatalf("%d shards: Quantile(%v) %v vs unsharded %v", shards, q, mq, wq)
			}
		}
		// Mean wait is a float fold: for a FIXED split the ascending-order
		// MergeAll convention pins it bit for bit (checked implicitly by
		// determinism of this test), while across different shard counts
		// the partition changes rounding order, so only agreement to
		// ~machine precision is guaranteed.
		if shards == 1 {
			meanRef = merged.MeanWait()
			// One shard is literally the whole stream: exact equality with
			// the unsharded recorder is guaranteed.
			if meanRef != whole.MeanWait() {
				t.Fatalf("1 shard: MeanWait %v vs %v", meanRef, whole.MeanWait())
			}
			continue
		}
		if rel := relErr(merged.MeanWait(), meanRef); rel > 1e-12 {
			t.Fatalf("%d shards: MeanWait %v drifted from %v (rel %g)", shards, merged.MeanWait(), meanRef, rel)
		}
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestLatencyBucketsShared pins the layout contract Merge depends on.
func TestLatencyBucketsShared(t *testing.T) {
	a, b := LatencyBuckets(), LatencyBuckets()
	if len(a) != 100 {
		t.Fatalf("bucket count %d, want 100", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("LatencyBuckets not reproducible at %d", i)
		}
	}
}
