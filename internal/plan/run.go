package plan

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/elastic"
	"bioschedsim/internal/sim"
	"bioschedsim/internal/workload"
	"bioschedsim/internal/xrand"
)

// RunOptions are injection points for the check harness; zero values mean
// "use the spec".
type RunOptions struct {
	// Process overrides the spec's arrival process (the biased-generator
	// plant swaps one in here).
	Process workload.ArrivalProcess
	// Recorder overrides the default LatencyStats (the dropping-recorder
	// plant swaps one in here).
	Recorder Recorder
}

// RunResult is one measured run at a fixed (or autoscaled) fleet size.
type RunResult struct {
	Fleet     int // fleet size at start
	PeakFleet int // max fleet size reached (== Fleet unless elastic)

	Recorder Recorder // post-warmup wait/latency samples

	ScaleUps, ScaleDowns int // autoscaler decisions (elastic only)

	EngineEvents uint64 // DES events fired, for throughput benches
}

// SLOValue returns the latency at the spec's SLO quantile.
func (r *RunResult) SLOValue(spec *Spec) float64 {
	return r.Recorder.Quantile(spec.SLO.Quantile)
}

// SLOMet reports whether the run met the spec's SLO. An empty recorder
// yields NaN, which never meets a target.
func (r *RunResult) SLOMet(spec *Spec) bool {
	return r.SLOValue(spec) <= spec.SLO.TargetSeconds
}

// vmNeed mirrors SpaceShared's PE accounting: a cloudlet occupies
// min(c.PEs, vm.PEs) processing elements on its VM.
func vmNeed(c *cloud.Cloudlet, vm *cloud.VM) int {
	if c.PEs < vm.PEs {
		return c.PEs
	}
	return vm.PEs
}

// centralQueue is the queue-dispatch engine: one FIFO over the whole
// fleet, each arrival handed to the lowest-ID VM with enough free PEs, and
// each completion pulling the queue head onto the freed capacity. For a
// homogeneous fleet and single-PE cloudlets this is textbook M/M/c — the
// property the qmodel-oracle invariant certifies.
type centralQueue struct {
	broker  *cloud.Broker
	vms     []*cloud.VM
	index   map[*cloud.VM]int
	freePEs []int
	fifo    []*cloud.Cloudlet
	head    int
}

func newCentralQueue(broker *cloud.Broker, vms []*cloud.VM) *centralQueue {
	q := &centralQueue{broker: broker, vms: vms, index: make(map[*cloud.VM]int, len(vms)), freePEs: make([]int, len(vms))}
	for i, vm := range vms {
		q.index[vm] = i
		q.freePEs[i] = vm.PEs
	}
	return q
}

// pick returns the lowest-ID VM index with enough free PEs for c, or -1.
func (q *centralQueue) pick(c *cloud.Cloudlet) int {
	for i, vm := range q.vms {
		if q.freePEs[i] >= vmNeed(c, vm) {
			return i
		}
	}
	return -1
}

func (q *centralQueue) dispatch(c *cloud.Cloudlet, i int) {
	q.freePEs[i] -= vmNeed(c, q.vms[i])
	q.broker.Submit(c, q.vms[i])
}

// arrive dispatches immediately when capacity is free, else queues.
func (q *centralQueue) arrive(c *cloud.Cloudlet) {
	if i := q.pick(c); i >= 0 {
		q.dispatch(c, i)
		return
	}
	q.fifo = append(q.fifo, c)
}

// onFinish releases c's PEs and drains the queue head while it fits
// somewhere — strict FIFO: if the head fits nowhere, nothing behind it may
// overtake.
func (q *centralQueue) onFinish(c *cloud.Cloudlet) {
	i := q.index[c.VM]
	q.freePEs[i] += vmNeed(c, c.VM)
	for q.head < len(q.fifo) {
		next := q.fifo[q.head]
		j := q.pick(next)
		if j < 0 {
			break
		}
		q.fifo[q.head] = nil // release for GC; the slice itself is reused
		q.head++
		q.dispatch(next, j)
	}
	// Compact the drained prefix once it dominates the backing array.
	if q.head > 4096 && q.head*2 > len(q.fifo) {
		q.fifo = append(q.fifo[:0], q.fifo[q.head:]...)
		q.head = 0
	}
}

// spreadPick returns the VM with the fewest resident cloudlets (lowest ID
// on ties) from the live fleet — the per-VM-queue dispatch the autoscaler
// monitors.
func spreadPick(vms []*cloud.VM) *cloud.VM {
	var best *cloud.VM
	bestLoad := 0
	for _, vm := range vms {
		if vm.Scheduler() == nil {
			continue // still booting
		}
		load := vm.QueuedOrRunning()
		if best == nil || load < bestLoad || (load == bestLoad && vm.ID < best.ID) {
			best, bestLoad = vm, load
		}
	}
	return best
}

// buildFleet materializes hosts and the initial VM fleet. hostSlots is the
// number of single-VM hosts to provision (> fleet for elastic headroom).
func buildFleet(spec *Spec, fleet, hostSlots int) (*cloud.Environment, error) {
	env := &cloud.Environment{}
	hosts := make([]*cloud.Host, hostSlots)
	for i := range hosts {
		hosts[i] = cloud.NewHost(i, cloud.NewPEs(spec.Fleet.VMPes, spec.Fleet.VMMips), 1<<16, 1<<20, 1<<30)
	}
	dc := cloud.NewDatacenter(0, "plan", cloud.Characteristics{}, hosts)
	env.Datacenters = []*cloud.Datacenter{dc}
	for i := 0; i < fleet; i++ {
		vm := cloud.NewVM(i, spec.Fleet.VMMips, spec.Fleet.VMPes, 512, 500, 5000)
		if err := hosts[i].Place(vm); err != nil {
			return nil, err
		}
		env.VMs = append(env.VMs, vm)
	}
	return env, nil
}

// Run executes the spec's workload against a fleet of the given size and
// returns the measured result. The run is a pure function of
// (spec, fleet, opts): arrivals come from the spec's process (stream
// seed/5, 8, or 9 by kind), service demands are exponential with mean
// MeanLengthMI (stream (seed, 6)), and the engine is the deterministic DES
// kernel — same spec, same seed, same verdict.
func Run(spec *Spec, fleet int, opts *RunOptions) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if fleet < 1 {
		return nil, fmt.Errorf("plan: fleet size must be at least 1, got %d", fleet)
	}
	if opts == nil {
		opts = &RunOptions{}
	}
	proc := opts.Process
	if proc == nil {
		var err error
		if proc, err = spec.Workload.Arrivals(); err != nil {
			return nil, err
		}
	}
	rec := opts.Recorder
	if rec == nil {
		rec = NewLatencyStats()
	}

	n := spec.Workload.Cloudlets
	offsets, err := proc.Offsets(n, spec.Seed)
	if err != nil {
		return nil, err
	}

	// Service demands: exponential length with mean MeanLengthMI, clamped
	// to the engine's positive-length floor. Stream (seed, 6) is reserved
	// for service draws so arrival and service randomness never correlate.
	lengths := make([]float64, n)
	r := xrand.New(spec.Seed, 6)
	for i := range lengths {
		l := r.ExpFloat64() * spec.Workload.MeanLengthMI
		if l < 1e-6 {
			l = 1e-6
		}
		lengths[i] = l
	}

	hostSlots := fleet
	if spec.Elastic != nil && spec.Fleet.MaxVMs > hostSlots {
		hostSlots = spec.Fleet.MaxVMs
	}
	env, err := buildFleet(spec, fleet, hostSlots)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	broker := cloud.NewBroker(eng, env, cloud.SpaceSharedFactory)

	cloudlets := make([]*cloud.Cloudlet, n)
	for i := range cloudlets {
		cloudlets[i] = cloud.NewCloudlet(i, lengths[i], 1, 0, 0)
	}

	// Latency is measured against the arrival offset, not SubmitTime:
	// under queue dispatch a cloudlet is only submitted once capacity
	// frees, so its scheduler-visible wait is ~0 and the queueing delay
	// lives between arrival and submission.
	warmup := spec.Workload.Warmup
	var queue *centralQueue
	mode := spec.DispatchMode()
	if mode == DispatchQueue {
		queue = newCentralQueue(broker, env.VMs)
	}
	broker.OnFinish(func(c *cloud.Cloudlet) {
		if queue != nil {
			queue.onFinish(c)
		}
		if c.ID >= warmup {
			arrival := offsets[c.ID]
			rec.Observe(float64(c.StartTime)-arrival, float64(c.FinishTime)-arrival)
		}
	})

	for i := range cloudlets {
		c := cloudlets[i]
		at := sim.Time(offsets[i])
		if queue != nil {
			eng.ScheduleAt(at, sim.PriorityAcquire, func() { queue.arrive(c) })
		} else {
			eng.ScheduleAt(at, sim.PriorityAcquire, func() {
				if vm := spreadPick(broker.Environment().VMs); vm != nil {
					broker.Submit(c, vm)
				}
			})
		}
	}

	var scaler *elastic.Autoscaler
	if e := spec.Elastic; e != nil {
		pol := elastic.Policy{
			ScaleUpLoad:   e.ScaleUpLoad,
			ScaleDownLoad: e.ScaleDownLoad,
			Interval:      sim.Time(e.Interval),
			MinVMs:        spec.Fleet.MinVMs,
			MaxVMs:        spec.Fleet.MaxVMs,
			Template: elastic.VMTemplate{
				MIPS: spec.Fleet.VMMips, PEs: spec.Fleet.VMPes,
				RAM: 512, Bw: 500, Size: 5000,
			},
			BootDelay: sim.Time(e.BootDelay),
			// Arrivals are open, not a batch: monitoring must survive idle
			// instants between them or one drained moment ends autoscaling
			// for the rest of the run.
			MonitorUntil: sim.Time(offsets[n-1]),
		}
		if scaler, err = elastic.New(broker, pol, cloud.SpaceSharedFactory, fleet); err != nil {
			return nil, err
		}
		scaler.Start()
	}

	eng.Run()

	if got := len(broker.Finished()); got != n {
		return nil, fmt.Errorf("plan: %d of %d cloudlets unfinished after run", n-got, n)
	}

	res := &RunResult{Fleet: fleet, PeakFleet: fleet, Recorder: rec, EngineEvents: eng.Fired()}
	if scaler != nil {
		size := fleet
		for _, ev := range scaler.Events() {
			switch ev.Act {
			case elastic.ScaleUp:
				res.ScaleUps++
				size++
			case elastic.ScaleDown:
				res.ScaleDowns++
				size--
			}
			if size > res.PeakFleet {
				res.PeakFleet = size
			}
		}
	}
	return res, nil
}
