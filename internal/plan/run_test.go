package plan

import (
	"math"
	"testing"
)

// oracleSweep is the documented qmodel-differential table: the simulated
// queue must agree with the analytic M/M/1 and M/M/c mean wait within
// these relative-error bands. The configuration is fixed-seed and fully
// deterministic, so the bands are not statistical gambles — they were
// measured once (max observed 7.4% at ρ=0.3, c=4, where the tiny absolute
// Wq ≈ 13 ms amplifies relative error) and hold bit-for-bit in CI. ρ=0.9
// gets a wider band and a longer stream because an M/M/1 queue's
// relaxation time grows like 1/(μ(1−ρ)²): at ρ=0.9 transients decay ~36×
// slower than at ρ=0.6, so the estimator needs 60k arrivals and still
// carries more autocorrelation-induced error.
var oracleSweep = []OracleCase{
	{Rho: 0.3, Servers: 1, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.6, Servers: 1, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.9, Servers: 1, VMs: 1, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
	{Rho: 0.3, Servers: 4, VMs: 4, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.6, Servers: 4, VMs: 4, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.9, Servers: 4, VMs: 4, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
	{Rho: 0.3, Servers: 4, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.6, Servers: 4, VMs: 1, N: 20000, Warmup: 2000, Mu: 1, Seed: 1, Tol: 0.10},
	{Rho: 0.9, Servers: 4, VMs: 1, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15},
}

// TestQModelDifferential is the headline differential: simulated mean wait
// vs the analytic oracle across the ρ-sweep, plus full sample accounting.
func TestQModelDifferential(t *testing.T) {
	for _, c := range oracleSweep {
		res, err := c.RunOracle(nil)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if res.Count != uint64(c.N-c.Warmup) {
			t.Errorf("rho=%v c=%d vms=%d: recorded %d samples, want %d", c.Rho, c.Servers, c.VMs, res.Count, c.N-c.Warmup)
		}
		if res.RelErr > c.Tol {
			t.Errorf("rho=%v c=%d vms=%d: sim %.4f vs theory %.4f — rel err %.4f exceeds band %.2f\nreplay: %s",
				c.Rho, c.Servers, c.VMs, res.SimMeanWait, res.TheoryWait, res.RelErr, c.Tol, c.ReplayCommand())
		}
		if !res.Pass(c) && res.RelErr <= c.Tol && res.Count == uint64(c.N-c.Warmup) {
			t.Errorf("Pass() inconsistent with its parts: %+v", res)
		}
	}
}

// TestCentralQueueFleetShapeInvariant pins the M/M/c equivalence that makes
// the oracle differential meaningful: a 4-VM × 1-PE fleet behind the
// central queue and a single 4-PE VM are the same queueing system, so with
// identical seeds their mean waits must be bit-identical.
func TestCentralQueueFleetShapeInvariant(t *testing.T) {
	multi := OracleCase{Rho: 0.6, Servers: 4, VMs: 4, N: 20000, Warmup: 2000, Mu: 1, Seed: 5, Tol: 0.10}
	single := multi
	single.VMs = 1
	a, err := multi.RunOracle(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := single.RunOracle(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimMeanWait != b.SimMeanWait || a.Count != b.Count {
		t.Fatalf("4×1PE (%v, %d) differs from 1×4PE (%v, %d)", a.SimMeanWait, a.Count, b.SimMeanWait, b.Count)
	}
}

// TestRunDeterministic pins run-level reproducibility: same spec, same
// seed, same statistics, and a different seed moves them.
func TestRunDeterministic(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload.Cloudlets, spec.Workload.Warmup = 4000, 400
	a, err := Run(spec, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recorder.MeanWait() != b.Recorder.MeanWait() || a.Recorder.Quantile(0.99) != b.Recorder.Quantile(0.99) {
		t.Fatalf("identical runs diverged: %v vs %v", a.Recorder.MeanWait(), b.Recorder.MeanWait())
	}
	other := *spec
	other.Seed = spec.Seed + 1
	c, err := Run(&other, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recorder.MeanWait() == c.Recorder.MeanWait() {
		t.Fatal("different seeds produced identical mean wait")
	}
}

// TestRunSpreadDispatch exercises the per-VM-queue path: everything
// finishes, all post-warmup samples are recorded, and waits are
// non-negative.
func TestRunSpreadDispatch(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Fleet.Dispatch = DispatchSpread
	spec.Workload.Cloudlets, spec.Workload.Warmup = 3000, 300
	res, err := Run(spec, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Count() != 2700 {
		t.Fatalf("recorded %d samples, want 2700", res.Recorder.Count())
	}
	if mw := res.Recorder.MeanWait(); math.IsNaN(mw) || mw < 0 {
		t.Fatalf("mean wait %v", mw)
	}
	if res.PeakFleet != 12 || res.ScaleUps != 0 {
		t.Fatalf("static run reported scaling: %+v", res)
	}
}

// TestRunElastic drives the autoscaled variant: an underprovisioned fleet
// facing a sustained overload must scale up, finish everything, and record
// every post-warmup sample.
func TestRunElastic(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload.Rate = 6 // needs ~6 servers at μ=1; starts with 1
	spec.Workload.Cloudlets, spec.Workload.Warmup = 4000, 400
	spec.Fleet.MinVMs, spec.Fleet.MaxVMs = 1, 16
	spec.Elastic = &ElasticSpec{ScaleUpLoad: 3, ScaleDownLoad: 0.5, Interval: 5}
	res, err := Run(spec, spec.Fleet.MinVMs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleUps == 0 {
		t.Fatal("overloaded elastic run never scaled up")
	}
	if res.PeakFleet <= 1 || res.PeakFleet > 16 {
		t.Fatalf("peak fleet %d out of bounds", res.PeakFleet)
	}
	if res.Recorder.Count() != 3600 {
		t.Fatalf("recorded %d samples, want 3600", res.Recorder.Count())
	}
}

// TestRunRejects covers the run-level argument guards.
func TestRunRejects(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, 0, nil); err == nil {
		t.Fatal("fleet 0 accepted")
	}
	bad := *spec
	bad.SLO.TargetSeconds = math.NaN()
	if _, err := Run(&bad, 1, nil); err == nil {
		t.Fatal("invalid spec accepted by Run")
	}
}

// TestPlanBinarySearch validates the verdict against a brute-force linear
// scan: Plan's MinFleet must be the smallest fleet size whose SLO probe
// passes, and the probes must all be recorded.
func TestPlanBinarySearch(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	// λ=8, μ=1: stability needs ≥ 9 servers. The exponential service time
	// alone puts p95 ≈ 3.0 s (ln 20), so the achievable part of the SLO
	// target is the queueing headroom above that.
	spec.Workload.Cloudlets, spec.Workload.Warmup = 4000, 400
	spec.Fleet.MinVMs, spec.Fleet.MaxVMs = 1, 24
	spec.SLO = SLOSpec{Quantile: 0.95, TargetSeconds: 4}

	v, err := Plan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Sustainable {
		t.Fatalf("24 VMs at λ=8 μ=1 should sustain p95 ≤ 4 s: %+v", v.Probes)
	}
	if len(v.Probes) == 0 || v.Probes[0].Fleet != spec.Fleet.MaxVMs {
		t.Fatalf("first probe must bracket at max fleet: %+v", v.Probes)
	}

	smallest := 0
	for fleet := spec.Fleet.MinVMs; fleet <= spec.Fleet.MaxVMs; fleet++ {
		res, err := Run(spec, fleet, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.SLOMet(spec) {
			smallest = fleet
			break
		}
	}
	if smallest == 0 {
		t.Fatal("linear scan found no passing fleet")
	}
	if v.MinFleet != smallest {
		t.Fatalf("Plan MinFleet %d, linear scan %d", v.MinFleet, smallest)
	}
}

// TestPlanUnsustainable checks the bracket short-circuit: when even the
// max fleet misses the SLO, Plan reports unsustainable after one probe.
func TestPlanUnsustainable(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload.Cloudlets, spec.Workload.Warmup = 3000, 300
	spec.Fleet.MinVMs, spec.Fleet.MaxVMs = 1, 4 // λ=8, μ=1: 4 servers can't
	v, err := Plan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Sustainable || v.MinFleet != 0 {
		t.Fatalf("unsustainable spec judged sustainable: %+v", v)
	}
	if len(v.Probes) != 1 {
		t.Fatalf("expected exactly the bracket probe, got %d", len(v.Probes))
	}
}

// TestPlanElasticVerdict runs the elastic path end to end.
func TestPlanElasticVerdict(t *testing.T) {
	spec, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload.Rate = 4
	spec.Workload.Cloudlets, spec.Workload.Warmup = 4000, 400
	spec.SLO = SLOSpec{Quantile: 0.95, TargetSeconds: 60}
	spec.Fleet.MinVMs, spec.Fleet.MaxVMs = 1, 16
	spec.Elastic = &ElasticSpec{ScaleUpLoad: 3, ScaleDownLoad: 0.5, Interval: 5}
	v, err := Plan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Elastic || len(v.Probes) != 1 {
		t.Fatalf("elastic verdict shape wrong: %+v", v)
	}
	if v.Sustainable && v.MinFleet != v.Probes[0].PeakFleet {
		t.Fatalf("elastic MinFleet %d != peak %d", v.MinFleet, v.Probes[0].PeakFleet)
	}
	if v.Probes[0].ScaleUps == 0 {
		t.Fatal("elastic probe never scaled up from 1 VM at λ=4")
	}
}

// TestReplayCommands pins the replay-line formats — they are user-facing
// API printed into failure messages.
func TestReplayCommands(t *testing.T) {
	if got, want := ReplayCommand("specs/peak.json", 7, 12), "cloudsched plan replay -spec specs/peak.json -seed 7 -fleet 12"; got != want {
		t.Fatalf("ReplayCommand = %q, want %q", got, want)
	}
	c := OracleCase{Rho: 0.9, Servers: 4, VMs: 4, N: 60000, Warmup: 10000, Mu: 1, Seed: 1, Tol: 0.15}
	want := "cloudsched plan oracle -rho 0.9 -servers 4 -vms 4 -n 60000 -warmup 10000 -mu 1 -seed 1 -tol 0.15"
	if got := c.ReplayCommand(); got != want {
		t.Fatalf("OracleCase.ReplayCommand = %q, want %q", got, want)
	}
}

// TestOracleCaseValidate covers the oracle guard rails.
func TestOracleCaseValidate(t *testing.T) {
	good := OracleCase{Rho: 0.5, Servers: 4, VMs: 2, N: 100, Warmup: 10, Mu: 1, Seed: 1, Tol: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid case rejected: %v", err)
	}
	bads := []OracleCase{
		{Rho: 0, Servers: 1, VMs: 1, N: 100, Mu: 1, Tol: 0.1},
		{Rho: 1, Servers: 1, VMs: 1, N: 100, Mu: 1, Tol: 0.1},
		{Rho: math.NaN(), Servers: 1, VMs: 1, N: 100, Mu: 1, Tol: 0.1},
		{Rho: 0.5, Servers: 3, VMs: 2, N: 100, Mu: 1, Tol: 0.1},
		{Rho: 0.5, Servers: 0, VMs: 1, N: 100, Mu: 1, Tol: 0.1},
		{Rho: 0.5, Servers: 1, VMs: 1, N: 0, Mu: 1, Tol: 0.1},
		{Rho: 0.5, Servers: 1, VMs: 1, N: 100, Warmup: 100, Mu: 1, Tol: 0.1},
		{Rho: 0.5, Servers: 1, VMs: 1, N: 100, Mu: 0, Tol: 0.1},
		{Rho: 0.5, Servers: 1, VMs: 1, N: 100, Mu: 1, Tol: 0},
		{Rho: 0.5, Servers: 1, VMs: 1, N: 100, Mu: math.Inf(1), Tol: 0.1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, c)
		}
	}
	if _, err := (bads[0]).RunOracle(nil); err == nil {
		t.Error("RunOracle on invalid case succeeded")
	}
}
