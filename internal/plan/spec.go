// Package plan is the SLO-driven capacity-planning harness: it answers
// "will this fleet sustain arrival rate R within a pXX latency SLO of T?"
// by running the deterministic simulator over a seeded arrival process,
// recording per-cloudlet wait and latency (arrival → completion) into
// metrics.Histogram, and binary-searching the smallest fleet that meets the
// SLO. Experiment runs are driven by a spec file (workload, fleet,
// dispatch, SLO, success criteria) so every result is self-documenting and
// replayable: the same spec and seed reproduce the same verdict bit for
// bit.
//
// The engine's credibility rests on internal/check's qmodel-oracle
// invariant: with queue dispatch the simulated fleet is an exact M/M/c
// system whose mean wait is validated against internal/qmodel analytic
// oracles at ρ ∈ {0.3, 0.6, 0.9}.
package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"bioschedsim/internal/workload"
)

// Dispatch modes.
const (
	// DispatchQueue holds arrivals in one central FIFO and hands each to
	// the first VM with free PEs (lowest ID on ties). A homogeneous fleet
	// under queue dispatch is an exact M/M/c queue, which is what lets
	// internal/check validate the engine against analytic oracles.
	DispatchQueue = "queue"
	// DispatchSpread submits each arrival immediately to the VM with the
	// fewest resident cloudlets (lowest ID on ties) — per-VM queues, the
	// shape elastic autoscaling monitors.
	DispatchSpread = "spread"
)

// WorkloadSpec selects and parameterizes the arrival process and the
// service-demand distribution.
type WorkloadSpec struct {
	// Process is one of "poisson", "mmpp", "diurnal".
	Process string `json:"process"`

	// Rate is the Poisson arrival rate (arrivals/s).
	Rate float64 `json:"rate,omitempty"`

	// MMPP parameters: arrival rates and mean sojourns of the two states.
	RateA    float64 `json:"rate_a,omitempty"`
	RateB    float64 `json:"rate_b,omitempty"`
	SojournA float64 `json:"sojourn_a,omitempty"`
	SojournB float64 `json:"sojourn_b,omitempty"`

	// Diurnal parameters.
	BaseRate  float64 `json:"base_rate,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    float64 `json:"period,omitempty"`

	// Cloudlets is the number of arrivals to simulate; Warmup of them
	// (from the front) are executed but excluded from latency statistics
	// so the queue reaches steady state first.
	Cloudlets int `json:"cloudlets"`
	Warmup    int `json:"warmup,omitempty"`

	// MeanLengthMI is the mean of the exponential service-demand
	// distribution in million instructions (stream (seed, 6)). A VM with M
	// MIPS per PE serves at rate μ = M/MeanLengthMI cloudlets/s.
	MeanLengthMI float64 `json:"mean_length_mi"`
}

// Arrivals builds the configured arrival process.
func (w *WorkloadSpec) Arrivals() (workload.ArrivalProcess, error) {
	switch w.Process {
	case "poisson":
		return workload.NewPoisson(w.Rate)
	case "mmpp":
		return workload.NewMMPP(w.RateA, w.RateB, w.SojournA, w.SojournB)
	case "diurnal":
		return workload.NewDiurnal(w.BaseRate, w.Amplitude, w.Period)
	default:
		return nil, fmt.Errorf("plan: unknown arrival process %q (want poisson, mmpp, or diurnal)", w.Process)
	}
}

// FleetSpec describes the homogeneous VM fleet and its dispatch mode.
type FleetSpec struct {
	VMMips float64 `json:"vm_mips"` // per-PE MIPS of each VM
	VMPes  int     `json:"vm_pes"`  // PEs per VM

	// MinVMs/MaxVMs bound the binary search (and the autoscaler, when the
	// spec is elastic).
	MinVMs int `json:"min_vms"`
	MaxVMs int `json:"max_vms"`

	// Dispatch is "queue" (central FIFO, exact M/M/c) or "spread"
	// (per-VM queues, least-outstanding). Defaults to "queue".
	Dispatch string `json:"dispatch,omitempty"`
}

// SLOSpec is the success criterion: the Quantile of the latency
// (arrival → completion) distribution must not exceed TargetSeconds.
type SLOSpec struct {
	Quantile      float64 `json:"quantile"` // e.g. 0.99
	TargetSeconds float64 `json:"target_seconds"`
}

// ElasticSpec switches the run to an autoscaled fleet: the fleet starts at
// MinVMs and internal/elastic's threshold rules grow or shrink it between
// the fleet bounds. Elastic runs always use spread dispatch — the
// autoscaler triggers on per-VM residency, which a central queue hides.
type ElasticSpec struct {
	ScaleUpLoad   float64 `json:"scale_up_load"`
	ScaleDownLoad float64 `json:"scale_down_load"`
	Interval      float64 `json:"interval"` // monitoring period, seconds
	BootDelay     float64 `json:"boot_delay,omitempty"`
}

// Spec is a complete capacity-planning experiment: everything needed to
// reproduce a verdict lives in the file plus one seed.
type Spec struct {
	Name     string       `json:"name"`
	Workload WorkloadSpec `json:"workload"`
	Fleet    FleetSpec    `json:"fleet"`
	SLO      SLOSpec      `json:"slo"`
	Seed     uint64       `json:"seed"`
	Elastic  *ElasticSpec `json:"elastic,omitempty"`
}

// finitePos reports v > 0 and finite.
func finitePos(v float64) bool {
	return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 1)
}

// Validate rejects unusable specs with positioned messages — the same
// hardening bar as workload.ReadTrace: NaN/Inf and non-positive rates,
// targets, and demands never reach the engine.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("plan: spec needs a name")
	}
	proc, err := s.Workload.Arrivals()
	if err != nil {
		return err
	}
	if err := proc.Validate(); err != nil {
		return err
	}
	if s.Workload.Cloudlets <= 0 {
		return fmt.Errorf("plan: workload.cloudlets must be positive, got %d", s.Workload.Cloudlets)
	}
	if s.Workload.Warmup < 0 || s.Workload.Warmup >= s.Workload.Cloudlets {
		return fmt.Errorf("plan: workload.warmup %d out of range [0, %d)", s.Workload.Warmup, s.Workload.Cloudlets)
	}
	if !finitePos(s.Workload.MeanLengthMI) {
		return fmt.Errorf("plan: workload.mean_length_mi must be positive and finite, got %v", s.Workload.MeanLengthMI)
	}
	if !finitePos(s.Fleet.VMMips) {
		return fmt.Errorf("plan: fleet.vm_mips must be positive and finite, got %v", s.Fleet.VMMips)
	}
	if s.Fleet.VMPes <= 0 {
		return fmt.Errorf("plan: fleet.vm_pes must be positive, got %d", s.Fleet.VMPes)
	}
	if s.Fleet.MinVMs < 1 {
		return fmt.Errorf("plan: fleet.min_vms must be at least 1, got %d", s.Fleet.MinVMs)
	}
	if s.Fleet.MaxVMs < s.Fleet.MinVMs {
		return fmt.Errorf("plan: fleet.max_vms %d below fleet.min_vms %d", s.Fleet.MaxVMs, s.Fleet.MinVMs)
	}
	switch s.Fleet.Dispatch {
	case "", DispatchQueue, DispatchSpread:
	default:
		return fmt.Errorf("plan: fleet.dispatch %q unknown (want %q or %q)", s.Fleet.Dispatch, DispatchQueue, DispatchSpread)
	}
	if math.IsNaN(s.SLO.Quantile) || s.SLO.Quantile <= 0 || s.SLO.Quantile >= 1 {
		return fmt.Errorf("plan: slo.quantile must be in (0, 1), got %v", s.SLO.Quantile)
	}
	if !finitePos(s.SLO.TargetSeconds) {
		return fmt.Errorf("plan: slo.target_seconds must be positive and finite, got %v", s.SLO.TargetSeconds)
	}
	if e := s.Elastic; e != nil {
		if !finitePos(e.Interval) {
			return fmt.Errorf("plan: elastic.interval must be positive and finite, got %v", e.Interval)
		}
		if math.IsNaN(e.ScaleUpLoad) || math.IsNaN(e.ScaleDownLoad) || e.ScaleUpLoad <= e.ScaleDownLoad {
			return fmt.Errorf("plan: elastic.scale_up_load (%v) must exceed elastic.scale_down_load (%v)", e.ScaleUpLoad, e.ScaleDownLoad)
		}
		if e.BootDelay < 0 || math.IsNaN(e.BootDelay) || math.IsInf(e.BootDelay, 0) {
			return fmt.Errorf("plan: elastic.boot_delay must be finite and non-negative, got %v", e.BootDelay)
		}
	}
	return nil
}

// DispatchMode returns the effective dispatch: the spec's, with queue as
// the default, and spread forced for elastic specs.
func (s *Spec) DispatchMode() string {
	if s.Elastic != nil {
		return DispatchSpread
	}
	if s.Fleet.Dispatch == "" {
		return DispatchQueue
	}
	return s.Fleet.Dispatch
}

// ServiceRate returns μ, the per-PE service rate implied by the workload
// and fleet (cloudlets per second per processing element).
func (s *Spec) ServiceRate() float64 {
	return s.Fleet.VMMips / s.Workload.MeanLengthMI
}

// ParseSpec decodes and validates a spec from JSON bytes. Unknown fields
// are rejected — a typoed knob silently reverting to a default would make
// the "self-documenting run" lie.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("plan: parsing spec: %w", err)
	}
	// A second document in the same file is a concatenation mistake, not
	// configuration.
	if dec.More() {
		return nil, fmt.Errorf("plan: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSpec loads a spec file from disk.
func ReadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: reading spec: %w", err)
	}
	return ParseSpec(data)
}
