package plan

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// validSpecJSON is the baseline document the mutation tests below edit.
const validSpecJSON = `{
  "name": "checkout-peak",
  "workload": {
    "process": "poisson",
    "rate": 8,
    "cloudlets": 2000,
    "warmup": 200,
    "mean_length_mi": 1000
  },
  "fleet": {
    "vm_mips": 1000,
    "vm_pes": 1,
    "min_vms": 1,
    "max_vms": 32,
    "dispatch": "queue"
  },
  "slo": {"quantile": 0.99, "target_seconds": 2.5},
  "seed": 7
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "checkout-peak" || s.Workload.Rate != 8 || s.Fleet.MaxVMs != 32 || s.Seed != 7 {
		t.Fatalf("fields lost in parse: %+v", s)
	}
	if got := s.DispatchMode(); got != DispatchQueue {
		t.Fatalf("DispatchMode = %q, want queue", got)
	}
	if mu := s.ServiceRate(); mu != 1 {
		t.Fatalf("ServiceRate = %v, want 1", mu)
	}
	proc, err := s.Workload.Arrivals()
	if err != nil || proc.Name() != "poisson" || proc.Rate() != 8 {
		t.Fatalf("Arrivals: %v, %v", proc, err)
	}
}

// mutate parses the valid document, applies edit to the generic tree, and
// re-serializes — keeps each invalid case minimal and readable.
func mutate(t *testing.T, edit func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(validSpecJSON), &m); err != nil {
		t.Fatal(err)
	}
	edit(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"not json", []byte("{"), "parsing spec"},
		{"trailing document", []byte(validSpecJSON + `{"name":"x"}`), "trailing data"},
		{"unknown field", []byte(strings.Replace(validSpecJSON, `"seed": 7`, `"sedd": 7`, 1)), "unknown field"},
		{"empty name", mutate(t, func(m map[string]any) { m["name"] = "" }), "needs a name"},
		{"unknown process", mutate(t, func(m map[string]any) {
			m["workload"].(map[string]any)["process"] = "flat"
		}), "unknown arrival process"},
		{"zero rate", mutate(t, func(m map[string]any) {
			m["workload"].(map[string]any)["rate"] = 0
		}), "rate must be positive"},
		{"negative cloudlets", mutate(t, func(m map[string]any) {
			m["workload"].(map[string]any)["cloudlets"] = -1
		}), "cloudlets must be positive"},
		{"warmup too large", mutate(t, func(m map[string]any) {
			m["workload"].(map[string]any)["warmup"] = 2000
		}), "warmup"},
		{"zero mean length", mutate(t, func(m map[string]any) {
			m["workload"].(map[string]any)["mean_length_mi"] = 0
		}), "mean_length_mi"},
		{"zero mips", mutate(t, func(m map[string]any) {
			m["fleet"].(map[string]any)["vm_mips"] = 0
		}), "vm_mips"},
		{"zero pes", mutate(t, func(m map[string]any) {
			m["fleet"].(map[string]any)["vm_pes"] = 0
		}), "vm_pes"},
		{"zero min vms", mutate(t, func(m map[string]any) {
			m["fleet"].(map[string]any)["min_vms"] = 0
		}), "min_vms"},
		{"max below min", mutate(t, func(m map[string]any) {
			m["fleet"].(map[string]any)["max_vms"] = 0
		}), "max_vms"},
		{"bad dispatch", mutate(t, func(m map[string]any) {
			m["fleet"].(map[string]any)["dispatch"] = "hash"
		}), "dispatch"},
		{"quantile zero", mutate(t, func(m map[string]any) {
			m["slo"].(map[string]any)["quantile"] = 0
		}), "quantile"},
		{"quantile one", mutate(t, func(m map[string]any) {
			m["slo"].(map[string]any)["quantile"] = 1
		}), "quantile"},
		{"zero slo target", mutate(t, func(m map[string]any) {
			m["slo"].(map[string]any)["target_seconds"] = 0
		}), "target_seconds"},
		{"elastic bad interval", mutate(t, func(m map[string]any) {
			m["elastic"] = map[string]any{"scale_up_load": 4, "scale_down_load": 1, "interval": 0}
		}), "elastic.interval"},
		{"elastic inverted thresholds", mutate(t, func(m map[string]any) {
			m["elastic"] = map[string]any{"scale_up_load": 1, "scale_down_load": 4, "interval": 5}
		}), "scale_up_load"},
		{"elastic negative boot", mutate(t, func(m map[string]any) {
			m["elastic"] = map[string]any{"scale_up_load": 4, "scale_down_load": 1, "interval": 5, "boot_delay": -1}
		}), "boot_delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.data)
			if err == nil {
				t.Fatalf("accepted invalid spec %s", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseSpecRejectsNonFinite pushes NaN/Inf through every float knob.
// JSON cannot literally encode NaN/Inf, so raw documents use huge exponents
// (1e999 decodes to an unmarshal error) and the Validate layer is exercised
// directly for NaN.
func TestParseSpecRejectsNonFinite(t *testing.T) {
	if _, err := ParseSpec([]byte(strings.Replace(validSpecJSON, `"rate": 8`, `"rate": 1e999`, 1))); err == nil {
		t.Fatal("accepted rate 1e999")
	}
	base, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		s := *base
		s.Workload.Rate = bad
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted rate %v", bad)
		}
		s = *base
		s.SLO.TargetSeconds = bad
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted slo target %v", bad)
		}
		s = *base
		s.Workload.MeanLengthMI = bad
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted mean length %v", bad)
		}
		s = *base
		s.SLO.Quantile = bad
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted quantile %v", bad)
		}
	}
}

func TestDispatchModeElasticForcesSpread(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.Elastic = &ElasticSpec{ScaleUpLoad: 4, ScaleDownLoad: 1, Interval: 5}
	if err := s.Validate(); err != nil {
		t.Fatalf("elastic spec invalid: %v", err)
	}
	if got := s.DispatchMode(); got != DispatchSpread {
		t.Fatalf("elastic DispatchMode = %q, want spread", got)
	}
}

func TestReadSpecMissingFile(t *testing.T) {
	if _, err := ReadSpec(t.TempDir() + "/nope.json"); err == nil {
		t.Fatal("ReadSpec on missing file succeeded")
	}
}

// FuzzPlanSpec drives arbitrary bytes through the spec parser: it must
// never panic, never accept a spec that fails Validate, and every accepted
// spec must survive a marshal → reparse round trip (self-documenting specs
// cannot depend on unserializable state).
func FuzzPlanSpec(f *testing.F) {
	f.Add([]byte(validSpecJSON))
	f.Add([]byte(`{"name":"m","workload":{"process":"mmpp","rate_a":2,"rate_b":10,"sojourn_a":30,"sojourn_b":10,"cloudlets":100,"mean_length_mi":500},"fleet":{"vm_mips":2000,"vm_pes":2,"min_vms":1,"max_vms":4},"slo":{"quantile":0.95,"target_seconds":1},"seed":3}`))
	f.Add([]byte(`{"name":"d","workload":{"process":"diurnal","base_rate":4,"amplitude":0.5,"period":300,"cloudlets":50,"mean_length_mi":100},"fleet":{"vm_mips":500,"vm_pes":1,"min_vms":2,"max_vms":2,"dispatch":"spread"},"slo":{"quantile":0.5,"target_seconds":10},"seed":1,"elastic":null}`))
	f.Add([]byte(`{"name":"e","workload":{"process":"poisson","rate":1,"cloudlets":10,"mean_length_mi":1},"fleet":{"vm_mips":1,"vm_pes":1,"min_vms":1,"max_vms":8},"slo":{"quantile":0.99,"target_seconds":0.5},"seed":0,"elastic":{"scale_up_load":3,"scale_down_load":0.5,"interval":2,"boot_delay":1}}`))
	f.Add([]byte(`{"workload":{"rate":null},"slo":{"quantile":1e999}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted a spec Validate rejects: %v", err)
		}
		if !finitePos(s.SLO.TargetSeconds) || s.SLO.Quantile <= 0 || s.SLO.Quantile >= 1 {
			t.Fatalf("accepted unusable SLO %+v", s.SLO)
		}
		proc, err := s.Workload.Arrivals()
		if err != nil {
			t.Fatalf("accepted spec with unbuildable arrivals: %v", err)
		}
		if !finitePos(proc.Rate()) {
			t.Fatalf("accepted process with unusable rate %v", proc.Rate())
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		if _, err := ParseSpec(out); err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
	})
}
