// Package pso implements a discrete Particle Swarm Optimization scheduler,
// the related-work baseline the paper repeatedly cites ([18], [28], [30]):
// each particle encodes a complete cloudlet→VM mapping as an integer vector
// (one resource index per task, the encoding of [18] and [23]); velocity is
// modeled discretely as per-dimension adoption probabilities of the
// particle's personal best and the global best, the standard discrete-PSO
// relaxation surveyed in [30].
//
// The optimization objective is selectable: Makespan (Eq. 8's estimated
// makespan), Cost (the §VI-C-4 processing-cost model, the objective of
// [18]), or Combined — addressing the critique in §II that [3]'s factors
// lacked dependency by mixing both into one scalar.
package pso

import (
	"fmt"
	"math"

	"bioschedsim/internal/objective"
	"bioschedsim/internal/sched"
)

// Objective selects what a swarm minimizes.
type Objective int

// Objectives.
const (
	Makespan Objective = iota // estimated makespan (Eq. 8)
	Cost                      // processing cost (§VI-C-4)
	Combined                  // normalized sum of both
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case Makespan:
		return "makespan"
	case Cost:
		return "cost"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Config holds the discrete-PSO parameters.
type Config struct {
	Particles  int     // swarm size
	Iterations int     // velocity/position update rounds
	W          float64 // inertia: probability of keeping the current value
	C1         float64 // cognitive: probability of adopting the personal best
	C2         float64 // social: probability of adopting the global best
	Objective  Objective
}

// DefaultConfig returns the conventional small-swarm setup.
func DefaultConfig() Config {
	return Config{Particles: 30, Iterations: 50, W: 0.4, C1: 0.3, C2: 0.2, Objective: Makespan}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Particles <= 0:
		return fmt.Errorf("pso: Particles must be positive, got %d", c.Particles)
	case c.Iterations <= 0:
		return fmt.Errorf("pso: Iterations must be positive, got %d", c.Iterations)
	case c.W < 0 || c.C1 < 0 || c.C2 < 0:
		return fmt.Errorf("pso: W/C1/C2 must be non-negative, got %v/%v/%v", c.W, c.C1, c.C2)
	case c.W+c.C1+c.C2 > 1:
		return fmt.Errorf("pso: W+C1+C2 must not exceed 1, got %v", c.W+c.C1+c.C2)
	}
	return nil
}

// Scheduler is the discrete-PSO batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns a PSO scheduler; zero numeric fields fall back to defaults.
func New(cfg Config) *Scheduler {
	def := DefaultConfig()
	if cfg.Particles == 0 {
		cfg.Particles = def.Particles
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = def.Iterations
	}
	//schedlint:ignore floateq 0 is the documented "use default" sentinel on caller-set config, not a computed value
	if cfg.W == 0 && cfg.C1 == 0 && cfg.C2 == 0 {
		cfg.W, cfg.C1, cfg.C2 = def.W, def.C1, def.C2
	}
	return &Scheduler{cfg: cfg}
}

// Default returns a PSO scheduler with DefaultConfig.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "pso" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("pso: scheduler requires ctx.Rand")
	}
	n, m := len(ctx.Cloudlets), len(ctx.VMs)
	rnd := ctx.Rand

	fit := newFitness(ctx, s.cfg.Objective)

	type particle struct {
		pos, best []int
		bestFit   float64
	}
	swarm := make([]particle, s.cfg.Particles)
	gbest := make([]int, n)
	gbestFit := math.Inf(1)
	for p := range swarm {
		pos := make([]int, n)
		for i := range pos {
			pos[i] = rnd.Intn(m)
		}
		f := fit.eval(pos)
		swarm[p] = particle{pos: pos, best: append([]int(nil), pos...), bestFit: f}
		if f < gbestFit {
			gbestFit = f
			copy(gbest, pos)
		}
	}

	for it := 0; it < s.cfg.Iterations; it++ {
		for p := range swarm {
			part := &swarm[p]
			for i := 0; i < n; i++ {
				r := rnd.Float64()
				switch {
				case r < s.cfg.W:
					// inertia: keep current value
				case r < s.cfg.W+s.cfg.C1:
					part.pos[i] = part.best[i]
				case r < s.cfg.W+s.cfg.C1+s.cfg.C2:
					part.pos[i] = gbest[i]
				default:
					part.pos[i] = rnd.Intn(m) // exploration
				}
			}
			f := fit.eval(part.pos)
			if f < part.bestFit {
				part.bestFit = f
				copy(part.best, part.pos)
			}
			if f < gbestFit {
				gbestFit = f
				copy(gbest, part.pos)
			}
		}
	}

	out := make([]sched.Assignment, n)
	for i, v := range gbest {
		out[i] = sched.Assignment{Cloudlet: ctx.Cloudlets[i], VM: ctx.VMs[v]}
	}
	return out, nil
}

// fitness evaluates positions under an Objective on the shared evaluation
// layer. The compressed matrix caches execution estimates per VM class; the
// cost matrix is only built when the objective actually reads costs, which
// the private per-algorithm matrices this replaced always paid for.
type fitness struct {
	objective Objective
	mx        *objective.Matrix
	vmBusy    []float64 // scratch for MakespanOf
	normTime  float64   // normalizers for Combined
	normCost  float64
}

func newFitness(ctx *sched.Context, obj Objective) *fitness {
	f := &fitness{
		objective: obj,
		mx: objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{
			WithCost: obj != Makespan,
		}),
		vmBusy: make([]float64, len(ctx.VMs)),
	}
	if obj == Combined {
		f.normTime, f.normCost = f.mx.Norms()
	}
	return f
}

func (f *fitness) eval(pos []int) float64 {
	switch f.objective {
	case Cost:
		return f.mx.CostOf(pos)
	case Makespan:
		return f.mx.MakespanOf(pos, f.vmBusy)
	case Combined:
		totalCost := f.mx.CostOf(pos)
		return f.mx.MakespanOf(pos, f.vmBusy)/f.normTime + totalCost/f.normCost
	default:
		panic(fmt.Sprintf("pso: unknown objective %d", int(f.objective)))
	}
}

func init() {
	sched.Register("pso", func() sched.Scheduler { return Default() })
	sched.DeclareTraits("pso", sched.Traits{Stochastic: true})
}
