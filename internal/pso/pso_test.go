package pso

import (
	"testing"
	"testing/quick"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Particles: 0, Iterations: 1, W: .1, C1: .1, C2: .1},
		{Particles: 1, Iterations: 0, W: .1, C1: .1, C2: .1},
		{Particles: 1, Iterations: 1, W: -.1, C1: .1, C2: .1},
		{Particles: 1, Iterations: 1, W: .5, C1: .4, C2: .2}, // sums > 1
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestObjectiveString(t *testing.T) {
	if Makespan.String() != "makespan" || Cost.String() != "cost" || Combined.String() != "combined" {
		t.Fatal("objective strings wrong")
	}
	if Objective(9).String() != "Objective(9)" {
		t.Fatal("unknown objective string wrong")
	}
}

func TestNewDefaults(t *testing.T) {
	s := New(Config{})
	if s.Config().Particles != 30 || s.Config().Iterations != 50 {
		t.Fatalf("defaults: %+v", s.Config())
	}
	if s.Config().W != 0.4 {
		t.Fatalf("W default: %v", s.Config().W)
	}
}

func TestScheduleValidAndDeterministic(t *testing.T) {
	mk := func() []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 8, 60, 11)
		got, err := New(Config{Particles: 10, Iterations: 10}).Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.ValidateAssignments(ctx, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestMakespanObjectiveBeatsRandom(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 10, 120, 5)
	psoAs, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := schedtest.Heterogeneous(t, 10, 120, 5)
	randAs, err := sched.NewRandom().Schedule(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if sched.EstimatedMakespan(psoAs) >= sched.EstimatedMakespan(randAs) {
		t.Fatalf("PSO makespan %v not below random %v",
			sched.EstimatedMakespan(psoAs), sched.EstimatedMakespan(randAs))
	}
}

func TestCostObjectiveCheaperThanMakespanObjective(t *testing.T) {
	ctxA := schedtest.Heterogeneous(t, 10, 120, 9)
	costAs, err := New(Config{Particles: 20, Iterations: 30, W: .4, C1: .3, C2: .2, Objective: Cost}).Schedule(ctxA)
	if err != nil {
		t.Fatal(err)
	}
	ctxB := schedtest.Heterogeneous(t, 10, 120, 9)
	timeAs, err := New(Config{Particles: 20, Iterations: 30, W: .4, C1: .3, C2: .2, Objective: Makespan}).Schedule(ctxB)
	if err != nil {
		t.Fatal(err)
	}
	if schedtest.TotalCost(costAs) >= schedtest.TotalCost(timeAs) {
		t.Fatalf("cost objective %v not cheaper than makespan objective %v",
			schedtest.TotalCost(costAs), schedtest.TotalCost(timeAs))
	}
}

func TestCombinedObjectiveValid(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 6, 40, 3)
	got, err := New(Config{Particles: 8, Iterations: 10, W: .4, C1: .3, C2: .2, Objective: Combined}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestRequiresRand(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	ctx.Rand = nil
	if _, err := Default().Schedule(ctx); err == nil {
		t.Fatal("expected error without ctx.Rand")
	}
}

func TestRegistered(t *testing.T) {
	s, err := sched.New("pso")
	if err != nil || s.Name() != "pso" {
		t.Fatalf("registry: %v %v", s, err)
	}
}

func TestPropertyValid(t *testing.T) {
	f := func(seed int64, vmN, clN uint8) bool {
		ctx := schedtest.Heterogeneous(t, 1+int(vmN)%8, 1+int(clN)%40, seed)
		got, err := New(Config{Particles: 5, Iterations: 5}).Schedule(ctx)
		if err != nil {
			return false
		}
		return sched.ValidateAssignments(ctx, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
