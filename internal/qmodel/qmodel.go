// Package qmodel provides closed-form queueing results used to validate
// the discrete-event substrate: if the simulator disagrees with M/M/1,
// M/D/1, M/M/c, or M/M/1-PS beyond sampling error, the execution engine is
// wrong in a way example-based tests cannot localize. The cloud package's
// validation tests and `cloudsched validate` check against these formulas.
//
// Conventions: lambda is the arrival rate, mu the per-server service rate,
// c the server count; all results are in the same time unit as 1/lambda.
package qmodel

import (
	"fmt"
	"math"
)

// Rho returns the offered utilization λ/(c·μ).
func Rho(lambda, mu float64, c int) float64 {
	return lambda / (float64(c) * mu)
}

// validate rejects non-ergodic or degenerate parameters.
func validate(lambda, mu float64, c int) error {
	if lambda <= 0 || mu <= 0 {
		return fmt.Errorf("qmodel: rates must be positive (λ=%v, μ=%v)", lambda, mu)
	}
	if c < 1 {
		return fmt.Errorf("qmodel: need at least one server, got %d", c)
	}
	if Rho(lambda, mu, c) >= 1 {
		return fmt.Errorf("qmodel: unstable system (ρ=%v ≥ 1)", Rho(lambda, mu, c))
	}
	return nil
}

// MM1WaitQueue returns the mean time in queue Wq = ρ/(μ−λ) for M/M/1.
func MM1WaitQueue(lambda, mu float64) (float64, error) {
	if err := validate(lambda, mu, 1); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (mu - lambda), nil
}

// MM1Response returns the mean time in system W = 1/(μ−λ) for M/M/1.
// The same value holds for M/M/1 under processor sharing (M/M/1-PS),
// which is what validates the time-shared cloudlet scheduler.
func MM1Response(lambda, mu float64) (float64, error) {
	if err := validate(lambda, mu, 1); err != nil {
		return 0, err
	}
	return 1 / (mu - lambda), nil
}

// MM1QueueLength returns the mean number in system L = ρ/(1−ρ) for M/M/1.
func MM1QueueLength(lambda, mu float64) (float64, error) {
	if err := validate(lambda, mu, 1); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (1 - rho), nil
}

// MD1WaitQueue returns the mean time in queue Wq = ρ/(2μ(1−ρ)) for M/D/1
// (deterministic service) — exactly half the M/M/1 wait.
func MD1WaitQueue(lambda, mu float64) (float64, error) {
	if err := validate(lambda, mu, 1); err != nil {
		return 0, err
	}
	rho := lambda / mu
	return rho / (2 * mu * (1 - rho)), nil
}

// ErlangC returns the probability an arrival must queue in M/M/c
// (the Erlang-C formula).
func ErlangC(lambda, mu float64, c int) (float64, error) {
	if err := validate(lambda, mu, c); err != nil {
		return 0, err
	}
	a := lambda / mu // offered load in Erlangs
	rho := Rho(lambda, mu, c)

	// Compute via the numerically stable iterative form of Erlang B, then
	// convert: C = B / (1 − ρ(1 − B)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MMcWaitQueue returns the mean time in queue for M/M/c:
// Wq = C(c, a) / (c·μ − λ).
func MMcWaitQueue(lambda, mu float64, c int) (float64, error) {
	pc, err := ErlangC(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return pc / (float64(c)*mu - lambda), nil
}

// MMcResponse returns the mean time in system for M/M/c.
func MMcResponse(lambda, mu float64, c int) (float64, error) {
	wq, err := MMcWaitQueue(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return wq + 1/mu, nil
}

// RelativeError returns |observed−expected|/expected, guarding zero.
func RelativeError(observed, expected float64) float64 {
	//schedlint:ignore floateq exact-zero guard against division by zero on a caller-supplied expectation, not a computed sum
	if expected == 0 {
		return math.Abs(observed)
	}
	return math.Abs(observed-expected) / math.Abs(expected)
}
