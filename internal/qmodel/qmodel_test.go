package qmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Formulas(t *testing.T) {
	wq, err := MM1WaitQueue(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wq-7.0/3) > 1e-12 {
		t.Fatalf("Wq: %v want 2.333", wq)
	}
	w, _ := MM1Response(0.7, 1)
	if math.Abs(w-wq-1) > 1e-12 {
		t.Fatalf("W − Wq should be the service time 1: %v", w-wq)
	}
	l, _ := MM1QueueLength(0.5, 1)
	if math.Abs(l-1) > 1e-12 {
		t.Fatalf("L at ρ=.5: %v want 1", l)
	}
}

func TestMD1HalvesMM1Wait(t *testing.T) {
	mm1, _ := MM1WaitQueue(0.6, 1)
	md1, _ := MD1WaitQueue(0.6, 1)
	if math.Abs(md1*2-mm1) > 1e-12 {
		t.Fatalf("M/D/1 (%v) should be half M/M/1 (%v)", md1, mm1)
	}
}

func TestErlangCSingleServerIsRho(t *testing.T) {
	// With one server, P(wait) = ρ.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		c, err := ErlangC(rho, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-rho) > 1e-12 {
			t.Fatalf("ErlangC(1 server, ρ=%v): %v", rho, c)
		}
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	wq1, _ := MM1WaitQueue(0.7, 1)
	wqc, err := MMcWaitQueue(0.7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wq1-wqc) > 1e-12 {
		t.Fatalf("M/M/1 vs M/M/c(1): %v vs %v", wq1, wqc)
	}
}

func TestMMcKnownValue(t *testing.T) {
	// Classic textbook case: λ=2, μ=1, c=3 → a=2, ρ=2/3.
	// Erlang C = (a^c/c!)/( (1-ρ)Σ_{k<c} a^k/k! + a^c/c! )
	//          = (8/6) / ( (1/3)(1+2+2) + 8/6 ) = 1.3333/(1.6667+1.3333) = 0.4444
	pc, err := ErlangC(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-4.0/9) > 1e-9 {
		t.Fatalf("ErlangC: %v want 0.4444", pc)
	}
	wq, _ := MMcWaitQueue(2, 1, 3)
	if math.Abs(wq-(4.0/9)/1) > 1e-9 {
		t.Fatalf("Wq: %v want 0.4444", wq)
	}
	w, _ := MMcResponse(2, 1, 3)
	if math.Abs(w-(4.0/9+1)) > 1e-9 {
		t.Fatalf("W: %v", w)
	}
}

func TestValidation(t *testing.T) {
	if _, err := MM1WaitQueue(1, 1); err == nil {
		t.Fatal("ρ=1 accepted")
	}
	if _, err := MM1WaitQueue(-1, 1); err == nil {
		t.Fatal("negative λ accepted")
	}
	if _, err := ErlangC(1, 1, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := MMcWaitQueue(5, 1, 3); err == nil {
		t.Fatal("unstable M/M/c accepted")
	}
}

func TestErlangCInUnitIntervalProperty(t *testing.T) {
	f := func(lRaw, cRaw uint8) bool {
		c := 1 + int(cRaw)%16
		lambda := 0.01 + float64(lRaw)/256*float64(c)*0.95 // keep ρ<0.96
		pc, err := ErlangC(lambda, 1, c)
		if err != nil {
			return true // unstable corner skipped
		}
		return pc >= 0 && pc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGrowsWithLoadProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		la := 0.01 + float64(aRaw)/256*0.9
		lb := 0.01 + float64(bRaw)/256*0.9
		if la > lb {
			la, lb = lb, la
		}
		wa, err1 := MM1WaitQueue(la, 1)
		wb, err2 := MM1WaitQueue(lb, 1)
		if err1 != nil || err2 != nil {
			return true
		}
		return wa <= wb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(11, 10) != 0.1 {
		t.Fatalf("rel err: %v", RelativeError(11, 10))
	}
	if RelativeError(5, 0) != 5 {
		t.Fatalf("zero-expected guard: %v", RelativeError(5, 0))
	}
}

// TestRelativeErrorEdges pins the corner cases the plan/check qmodel-oracle
// band checks depend on: a zero expected value falls back to absolute
// error (sign-insensitively), and NaN on either side must propagate — a
// NaN comparison silently passing a `rel ≤ tol` band would make a broken
// measurement look calibrated.
func TestRelativeErrorEdges(t *testing.T) {
	if got := RelativeError(0.25, 0); got != 0.25 {
		t.Errorf("RelativeError(0.25, 0) = %v, want 0.25", got)
	}
	if got := RelativeError(-0.25, 0); got != 0.25 {
		t.Errorf("RelativeError(-0.25, 0) = %v, want 0.25", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0, 0) = %v, want 0", got)
	}
	if got := RelativeError(math.NaN(), 1); !math.IsNaN(got) {
		t.Errorf("RelativeError(NaN, 1) = %v, want NaN", got)
	}
	if got := RelativeError(1, math.NaN()); !math.IsNaN(got) {
		t.Errorf("RelativeError(1, NaN) = %v, want NaN", got)
	}
	if got := RelativeError(math.NaN(), 0); !math.IsNaN(got) {
		t.Errorf("RelativeError(NaN, 0) = %v, want NaN", got)
	}
	// ±Inf expected: error is NaN only for Inf-Inf; an infinite expected
	// with finite observation yields... |obs-∞|/∞ = NaN per IEEE — pin it
	// so a future "improvement" cannot make Inf bands pass silently.
	if got := RelativeError(1, math.Inf(1)); !math.IsNaN(got) {
		t.Errorf("RelativeError(1, +Inf) = %v, want NaN", got)
	}
}
