// Package rbs implements the paper's Random Biased Sampling scheduler
// (§V, Algorithm 3), a network-inspired load balancer.
//
// The VM fleet is divided into q equal groups. Group g carries a
// walk-length threshold υ_g = g+1 and a node in-degree NID_g equal to the
// number of free VMs in the group. Every incoming cloudlet draws a random
// walk-in length ω ∈ {1..q} and performs the execution test against groups
// in cyclic order: a group with free capacity accepts the cloudlet when
// ω ≥ υ_g; otherwise ω is incremented by one and the walk moves to the next
// group. Within a group, VMs are used cyclically; when every group's NID is
// exhausted all NIDs reset, starting a new balancing round.
//
// RBS inspects neither VM speed nor price — only free slots — so its
// scheduling decision is O(1) per cloudlet. The random draws behind each
// decision are independent per cloudlet and precomputed on a worker pool
// (Config.Workers); only the execution test's shared cursor/NID bookkeeping
// is serial, so assignments are bit-identical for every worker count while
// remaining submission-order dependent. That yields the paper's
// profile: second-fastest scheduling time after the base test (Fig. 6b),
// second-best load balance (Fig. 6c), and makespan close to the base test
// with visible fluctuations caused by the random ω draws (Figs. 4a, 6a).
package rbs

import (
	"fmt"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
	"bioschedsim/internal/sched"
	"bioschedsim/internal/xrand"
)

// Config holds the RBS parameters.
type Config struct {
	// Groups is the number of VM groups the fleet is divided into
	// (Algorithm 3's q). Zero means the default of 2 (the paper's Figure 3
	// illustration). Values larger than the fleet are clamped.
	Groups int
	// Workers bounds the pool that pre-draws each cloudlet's walk-in length
	// and entry point: 0 means GOMAXPROCS, 1 forces serial. Every cloudlet
	// owns its own xrand child stream, so the draws — and hence the
	// assignments — are bit-identical for every worker count.
	Workers int
}

// DefaultConfig returns the two-group configuration of the paper's Figure 3.
func DefaultConfig() Config { return Config{Groups: 2} }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Groups < 0 {
		return fmt.Errorf("rbs: Groups must be non-negative, got %d", c.Groups)
	}
	if c.Workers < 0 {
		return fmt.Errorf("rbs: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Scheduler is the RBS batch scheduler.
type Scheduler struct {
	cfg Config
}

// New returns an RBS scheduler; zero Groups falls back to the default.
func New(cfg Config) *Scheduler {
	if cfg.Groups == 0 {
		cfg.Groups = DefaultConfig().Groups
	}
	return &Scheduler{cfg: cfg}
}

// Default returns an RBS scheduler with the paper's configuration.
func Default() *Scheduler { return New(DefaultConfig()) }

// Config returns the scheduler's effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetWorkers implements sched.WorkerTunable: it bounds the draw-precompute
// pool (0 = GOMAXPROCS, 1 = serial) without changing any assignment.
func (s *Scheduler) SetWorkers(workers int) { s.cfg.Workers = workers }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "rbs" }

// vmGroup is one node group of the resource graph.
type vmGroup struct {
	vms       []*cloud.VM
	threshold int // υ: walk-length threshold (group index + 1)
	nid       int // free VMs remaining this round
	cursor    int // cyclic assignment position
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) ([]sched.Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("rbs: scheduler requires ctx.Rand")
	}
	q := s.cfg.Groups
	if q > len(ctx.VMs) {
		q = len(ctx.VMs)
	}
	if q < 1 {
		q = 1
	}
	// Step 1: split the fleet into q near-equal groups.
	groups := make([]*vmGroup, q)
	for g := range groups {
		groups[g] = &vmGroup{threshold: g + 1}
	}
	for i, vm := range ctx.VMs {
		groups[i%q].vms = append(groups[i%q].vms, vm)
	}
	for _, g := range groups {
		g.nid = len(g.vms) // step 2: NID = free VMs in the group
	}

	// Step 3's draws — the random walk-in length ω and the random entry
	// point ("tasks come into the servers" at a random node, §V; the source
	// of the RBS fluctuations in Figs. 4a and 6a) — are independent per
	// cloudlet: one draw off ctx.Rand seeds the batch, and cloudlet i reads
	// its pair from xrand child stream i. The fill therefore fans out across
	// the worker pool while the execution test below — a serial state
	// machine over the shared cursor/NID bookkeeping — consumes the draws in
	// submission order. Assignments stay bit-identical for every worker
	// count, yet still depend on submission order, exactly as declared in
	// the traits.
	n := len(ctx.Cloudlets)
	seed := ctx.Rand.Uint64()
	omegas := make([]int32, n)
	starts := make([]int32, n)
	workers := objective.EffectiveWorkers(s.cfg.Workers, int64(n), 0)
	objective.ParallelFor(workers, n, func(i int) {
		src := xrand.Stream(seed, uint64(i))
		// Modulo instead of Intn: two raw draws per cloudlet keep the stream
		// layout obvious, and the bias over small q is ~q/2⁶⁴ — far below
		// any observable effect.
		omegas[i] = int32(1 + src.Uint64()%uint64(q))
		starts[i] = int32(src.Uint64() % uint64(q))
	})

	out := make([]sched.Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		omega := int(omegas[i]) // step 3: random walk-in length
		walk := int(starts[i])
		g := s.walkToGroup(groups, &walk, omega)
		vm := g.vms[g.cursor%len(g.vms)] // step 6: cyclic within the group
		g.cursor++
		g.nid-- // step 5
		if allExhausted(groups) {
			for _, gg := range groups {
				gg.nid = len(gg.vms)
			}
		}
		out[i] = sched.Assignment{Cloudlet: c, VM: vm}
	}
	return out, nil
}

// walkToGroup performs Algorithm 3's execution test: starting from the
// shared cyclic cursor, the first non-exhausted group whose threshold the
// walk length meets accepts the cloudlet; each failed test increments ω.
func (s *Scheduler) walkToGroup(groups []*vmGroup, walk *int, omega int) *vmGroup {
	q := len(groups)
	for hops := 0; ; hops++ {
		g := groups[*walk%q]
		*walk++
		if g.nid > 0 && omega >= g.threshold {
			return g
		}
		omega++ // step: increment ω and re-test at the next node
		if hops >= 2*q {
			// ω now exceeds every threshold; only exhaustion can block, and
			// exhaustion resets are handled by the caller — accept the first
			// group with capacity to guarantee termination.
			for _, cand := range groups {
				if cand.nid > 0 {
					return cand
				}
			}
			return groups[0]
		}
	}
}

// allExhausted reports whether every group's NID reached zero.
func allExhausted(groups []*vmGroup) bool {
	for _, g := range groups {
		if g.nid > 0 {
			return false
		}
	}
	return true
}

func init() {
	sched.Register("rbs", func() sched.Scheduler { return Default() })
	// RBS consumes one random walk-in draw per submitted cloudlet, so its
	// placement — and hence makespan — depends on submission order even for
	// identical cloudlets: not permutation-invariant. The draws themselves
	// are precomputed on a worker pool (Parallel), which never changes them.
	sched.DeclareTraits("rbs", sched.Traits{Stochastic: true, Parallel: true})
}
