package rbs

import (
	"math"
	"testing"
	"testing/quick"

	"bioschedsim/internal/sched"
	"bioschedsim/internal/schedtest"
)

func TestDefaultConfig(t *testing.T) {
	if DefaultConfig().Groups != 2 {
		t.Fatalf("Groups: %d want 2", DefaultConfig().Groups)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Groups: -1}).Validate() == nil {
		t.Fatal("negative groups accepted")
	}
	if err := (Config{Groups: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewDefaults(t *testing.T) {
	if New(Config{}).Config().Groups != 2 {
		t.Fatal("zero Groups not defaulted")
	}
	if New(Config{Groups: 9}).Config().Groups != 9 {
		t.Fatal("explicit Groups overridden")
	}
}

func TestScheduleValid(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 10, 100, 1)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	mk := func() []sched.Assignment {
		ctx := schedtest.Heterogeneous(t, 8, 64, 3)
		got, err := Default().Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].VM.ID != b[i].VM.ID {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestRBSBalancesCounts(t *testing.T) {
	// NID rounds keep per-VM counts within a tight band of the fair share.
	ctx := schedtest.Homogeneous(t, 10, 400, 5)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range got {
		counts[a.VM.ID]++
	}
	if len(counts) != 10 {
		t.Fatalf("only %d of 10 VMs used", len(counts))
	}
	fair := 40.0
	for id, n := range counts {
		if math.Abs(float64(n)-fair) > fair {
			t.Fatalf("VM %d count %d too far from fair share %v", id, n, fair)
		}
	}
}

func TestRBSMoreBalancedThanRandom(t *testing.T) {
	ctx := schedtest.Homogeneous(t, 10, 500, 9)
	rbsAs, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := schedtest.Homogeneous(t, 10, 500, 9)
	randAs, err := sched.NewRandom().Schedule(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(as []sched.Assignment) float64 {
		counts := map[int]int{}
		for _, a := range as {
			counts[a.VM.ID]++
		}
		min, max := 1<<30, 0
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return float64(max - min)
	}
	if spread(rbsAs) > spread(randAs) {
		t.Fatalf("RBS spread %v worse than random %v", spread(rbsAs), spread(randAs))
	}
}

func TestRBSGroupsClampedToFleet(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 3, 12, 2)
	got, err := New(Config{Groups: 50}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestRBSSingleVM(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 1, 8, 4)
	got, err := Default().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a.VM != ctx.VMs[0] {
			t.Fatal("single VM must take everything")
		}
	}
}

func TestRBSRequiresRand(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	ctx.Rand = nil
	if _, err := Default().Schedule(ctx); err == nil {
		t.Fatal("expected error without ctx.Rand")
	}
}

func TestRBSConfigErrorSurfacesAtSchedule(t *testing.T) {
	ctx := schedtest.Heterogeneous(t, 4, 8, 1)
	s := &Scheduler{cfg: Config{Groups: -3}}
	if _, err := s.Schedule(ctx); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRBSWalkExhaustionFallback(t *testing.T) {
	// Tiny fleet with many groups forces frequent NID exhaustion and the
	// fallback path where ω exceeds every threshold; everything must still
	// be assigned exactly once.
	ctx := schedtest.Heterogeneous(t, 4, 200, 31)
	got, err := New(Config{Groups: 4}).Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range got {
		counts[a.VM.ID]++
	}
	if len(counts) != 4 {
		t.Fatalf("not all VMs used: %v", counts)
	}
}

func TestRegisteredInSchedRegistry(t *testing.T) {
	s, err := sched.New("rbs")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "rbs" {
		t.Fatalf("name: %s", s.Name())
	}
}

func TestSchedulePropertyValid(t *testing.T) {
	f := func(seed int64, vmN, clN, q uint8) bool {
		nVMs := 1 + int(vmN)%12
		nCls := 1 + int(clN)%80
		groups := 1 + int(q)%6
		ctx := schedtest.Heterogeneous(t, nVMs, nCls, seed)
		got, err := New(Config{Groups: groups}).Schedule(ctx)
		if err != nil {
			return false
		}
		return sched.ValidateAssignments(ctx, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRBSSchedule(b *testing.B) {
	ctx := schedtest.Heterogeneous(b, 50, 1000, 1)
	s := Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
