// Package report renders experiment results for humans and tools: aligned
// ASCII tables, CSV for downstream plotting, and a dependency-free ASCII
// line chart good enough to eyeball the paper's figure shapes in a
// terminal.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bioschedsim/internal/experiments"
)

// algorithms returns the sorted set of algorithm names present in a result.
func algorithms(res *experiments.Result) []string {
	set := map[string]bool{}
	for _, p := range res.Points {
		for name := range p.Reports {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WriteTable renders the result as an aligned ASCII table: one row per
// x value, one column per algorithm.
func WriteTable(w io.Writer, res *experiments.Result) error {
	algs := algorithms(res)
	if _, err := fmt.Fprintf(w, "# %s\n# x: %s\n# y: %s\n", res.Title, res.XLabel, res.YLabel); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s", "x"); err != nil {
		return err
	}
	for _, a := range algs {
		if _, err := fmt.Fprintf(w, " %14s", a); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%12g", p.X); err != nil {
			return err
		}
		for _, a := range algs {
			if _, err := fmt.Fprintf(w, " %14.4f", experiments.ExtractMetric(p.Reports[a], res.Metric)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the result as CSV with a header row
// (vms,<alg1>,<alg2>,...) for external plotting tools.
func WriteCSV(w io.Writer, res *experiments.Result) error {
	algs := algorithms(res)
	cols := append([]string{"vms"}, algs...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, p := range res.Points {
		row := make([]string, 0, len(cols))
		row = append(row, fmt.Sprintf("%g", p.X))
		for _, a := range algs {
			row = append(row, fmt.Sprintf("%g", experiments.ExtractMetric(p.Reports[a], res.Metric)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the result as a GitHub-flavoured Markdown table,
// the format EXPERIMENTS.md embeds.
func WriteMarkdown(w io.Writer, res *experiments.Result) error {
	algs := algorithms(res)
	if _, err := fmt.Fprintf(w, "**%s** (y: %s)\n\n", res.Title, res.YLabel); err != nil {
		return err
	}
	header := append([]string{"x"}, algs...)
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, p := range res.Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, a := range algs {
			row = append(row, fmt.Sprintf("%.4f", experiments.ExtractMetric(p.Reports[a], res.Metric)))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders an ASCII line chart of the result, one glyph per algorithm.
// Width and height are the plot-area dimensions in characters.
func Chart(res *experiments.Result, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	algs := algorithms(res)
	glyphs := []byte("*o+x#@%&")

	// Bounds.
	minX, maxX, minY, maxY := 0.0, 0.0, 0.0, 0.0
	first := true
	for _, a := range algs {
		xs, ys := res.Series(a)
		for i := range xs {
			if first {
				minX, maxX, minY, maxY = xs[i], xs[i], ys[i], ys[i]
				first = false
				continue
			}
			if xs[i] < minX {
				minX = xs[i]
			}
			if xs[i] > maxX {
				maxX = xs[i]
			}
			if ys[i] < minY {
				minY = ys[i]
			}
			if ys[i] > maxY {
				maxY = ys[i]
			}
		}
	}
	if first {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		cx := int((x - minX) / (maxX - minX) * float64(width-1))
		cy := int((y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = glyph
		}
	}
	for ai, a := range algs {
		xs, ys := res.Series(a)
		for i := range xs {
			plot(xs[i], ys[i], glyphs[ai%len(glyphs)])
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", res.Title, res.YLabel)
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%10.3g", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%10.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*g%*g\n", strings.Repeat(" ", 10), width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%s  x: %s\n", strings.Repeat(" ", 10), res.XLabel)
	var legend []string
	for ai, a := range algs {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[ai%len(glyphs)], a))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 10), strings.Join(legend, "  "))
	return b.String()
}
