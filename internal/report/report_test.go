package report

import (
	"strings"
	"testing"
	"time"

	"bioschedsim/internal/experiments"
	"bioschedsim/internal/metrics"
)

// fakeResult builds a small two-algorithm result for rendering tests.
func fakeResult() *experiments.Result {
	mk := func(sim float64, sched time.Duration) metrics.Report {
		return metrics.Report{SimTime: sim, SchedulingTime: sched}
	}
	return &experiments.Result{
		ID: "figX", Title: "Fake Figure", XLabel: "VMs", YLabel: "Sim (ms)", Metric: "sim_ms",
		Points: []experiments.Point{
			{X: 10, Reports: map[string]metrics.Report{"aco": mk(1, time.Second), "base": mk(2, 0)}},
			{X: 20, Reports: map[string]metrics.Report{"aco": mk(0.5, time.Second), "base": mk(1, 0)}},
			{X: 30, Reports: map[string]metrics.Report{"aco": mk(0.25, time.Second), "base": mk(0.5, 0)}},
		},
	}
}

func TestWriteTable(t *testing.T) {
	var b strings.Builder
	if err := WriteTable(&b, fakeResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fake Figure", "Sim (ms)", "aco", "base", "1000.0000", "250.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 7 { // 3 header comments + 1 column row + 3 data rows
		t.Fatalf("table has %d lines:\n%s", got, out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, fakeResult()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "vms,aco,base" {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "10,1000,2000" {
		t.Fatalf("row 1: %q", lines[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := WriteMarkdown(&b, fakeResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Fake Figure**", "| x | aco | base |", "|---|---|---|", "| 10 | 1000.0000 | 2000.0000 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestChartContainsSeriesAndLegend(t *testing.T) {
	out := Chart(fakeResult(), 40, 10)
	for _, want := range []string{"Fake Figure", "legend:", "*=aco", "o=base", "VMs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart has no plotted points:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &experiments.Result{ID: "e", Metric: "sim_ms"}
	if got := Chart(empty, 40, 10); got != "(no data)\n" {
		t.Fatalf("empty chart: %q", got)
	}
	// Constant series must not divide by zero.
	flat := fakeResult()
	for i := range flat.Points {
		for k, r := range flat.Points[i].Reports {
			r.SimTime = 1
			flat.Points[i].Reports[k] = r
		}
	}
	out := Chart(flat, 40, 10)
	if !strings.Contains(out, "legend:") {
		t.Fatalf("flat chart broken:\n%s", out)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	out := Chart(fakeResult(), 1, 1)
	if len(out) == 0 {
		t.Fatal("clamped chart empty")
	}
}
