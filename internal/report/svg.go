package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"bioschedsim/internal/experiments"
)

// seriesColors is a color-blind-friendly categorical palette (Okabe–Ito).
var seriesColors = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7",
	"#E69F00", "#56B4E9", "#F0E442", "#000000",
	"#999999", "#8B4513",
}

// WriteSVG renders the result as a self-contained SVG line chart — the
// closest artifact to the paper's published figures. Width and height are
// the full canvas size in pixels.
func WriteSVG(w io.Writer, res *experiments.Result, width, height int) error {
	if width < 320 {
		width = 320
	}
	if height < 240 {
		height = 240
	}
	algs := algorithms(res)
	if len(algs) == 0 || len(res.Points) == 0 {
		return fmt.Errorf("report: no data to chart for %q", res.ID)
	}

	const (
		marginLeft   = 80
		marginRight  = 20
		marginTop    = 48
		marginBottom = 64
	)
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	// Bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, a := range algs {
		xs, ys := res.Series(a)
		for i := range xs {
			minX = math.Min(minX, xs[i])
			maxX = math.Max(maxX, xs[i])
			minY = math.Min(minY, ys[i])
			maxY = math.Max(maxY, ys[i])
		}
	}
	if minY > 0 && minY/math.Max(maxY, 1e-300) < 0.5 {
		minY = 0 // anchor at zero unless the series is a tight band
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(marginLeft) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(marginTop) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, xmlEscape(res.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)

	// Ticks: 5 per axis with grid lines.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		x := px(fx)
		y := py(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#dddddd"/>`+"\n",
			x, marginTop, x, height-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, height-marginBottom+16, fmtTick(fx))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, fmtTick(fy))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, height-16, xmlEscape(res.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, xmlEscape(res.YLabel))

	// Series.
	for ai, a := range algs {
		xs, ys := res.Series(a)
		color := seriesColors[ai%len(seriesColors)]
		var pts []string
		for i := range xs {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(xs[i]), py(ys[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range xs {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(xs[i]), py(ys[i]), color)
		}
	}

	// Legend, top-right inside the plot.
	lx := width - marginRight - 150
	ly := marginTop + 8
	for ai, a := range algs {
		color := seriesColors[ai%len(seriesColors)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly+ai*18, lx+22, ly+ai*18, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+28, ly+ai*18+4, xmlEscape(a))
	}

	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtTick renders an axis tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
