package report

import (
	"strings"
	"testing"

	"bioschedsim/internal/experiments"
)

func TestWriteSVG(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, fakeResult(), 640, 480); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"Fake Figure", "Sim (ms)", ">aco<", ">base<",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines: %d", got)
	}
	// Every plotted point appears: 3 points × 2 series.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("circles: %d", got)
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, &experiments.Result{ID: "x", Metric: "sim_ms"}, 640, 480); err == nil {
		t.Fatal("empty result accepted")
	}
}

func TestWriteSVGClampsSize(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, fakeResult(), 10, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `width="320"`) {
		t.Fatal("width not clamped")
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	res := fakeResult()
	res.Title = `A<B & "C"`
	var b strings.Builder
	if err := WriteSVG(&b, res, 640, 480); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `A<B &`) {
		t.Fatal("labels not escaped")
	}
	if !strings.Contains(b.String(), "A&lt;B &amp; &quot;C&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		12000:   "12.0k",
		42:      "42",
		0.25:    "0.25",
		0:       "0",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Fatalf("fmtTick(%v): got %q want %q", v, got, want)
		}
	}
}
