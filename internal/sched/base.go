package sched

import "fmt"

// RoundRobin is the paper's "Base Test": CloudSim's default mapper, which
// assigns cloudlets to VMs cyclically with no inspection of either side. In
// a homogeneous plant it is the optimal schedule; its scheduling time is
// effectively zero, which is the yardstick of Figs. 5 and 6b.
type RoundRobin struct{}

// NewRoundRobin returns the base-test scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "base" }

// Schedule implements Scheduler.
func (*RoundRobin) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	out := make([]Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = Assignment{Cloudlet: c, VM: ctx.VMs[i%len(ctx.VMs)]}
	}
	return out, nil
}

// Random assigns every cloudlet to a uniformly random VM. It is the
// zero-intelligence control: any scheduler worth running must beat it on
// heterogeneous plants.
type Random struct{}

// NewRandom returns the random scheduler.
func NewRandom() *Random { return &Random{} }

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Schedule implements Scheduler.
func (*Random) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if ctx.Rand == nil {
		return nil, fmt.Errorf("sched: random scheduler requires ctx.Rand")
	}
	out := make([]Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = Assignment{Cloudlet: c, VM: ctx.VMs[ctx.Rand.Intn(len(ctx.VMs))]}
	}
	return out, nil
}

func init() {
	Register("base", func() Scheduler { return NewRoundRobin() })
	Register("random", func() Scheduler { return NewRandom() })
	DeclareTraits("base", Traits{PermutationInvariant: true})
	DeclareTraits("random", Traits{Stochastic: true})
}
