package sched

import (
	"sort"

	"bioschedsim/internal/cloud"
)

// Deadline is the SLA-aware extension scheduler: cloudlets are ordered by
// earliest deadline first (no-deadline cloudlets last, longest first) and
// each is placed on the VM that finishes it soonest given the load booked
// so far — EDF ordering over EFT placement. The paper's §I lists deadlines
// among the demands cloud schedulers must accommodate; the related work it
// cites ([10], [23]) builds priority and provisioning schemes around them.
type Deadline struct{}

// NewDeadline returns the deadline-aware scheduler.
func NewDeadline() *Deadline { return &Deadline{} }

// Name implements Scheduler.
func (*Deadline) Name() string { return "deadline" }

// Schedule implements Scheduler.
func (*Deadline) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	order := append([]*cloud.Cloudlet(nil), ctx.Cloudlets...)
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := order[i].Deadline, order[j].Deadline
		switch {
		case di != 0 && dj != 0:
			return di < dj // EDF among constrained cloudlets
		case di != 0:
			return true // constrained before unconstrained
		case dj != 0:
			return false
		default:
			return order[i].Length > order[j].Length // LPT among the rest
		}
	})
	rt := newReadyTimes(ctx.VMs)
	chosen := make(map[*cloud.Cloudlet]*cloud.VM, len(order))
	for _, c := range order {
		v := rt.bestVM(c)
		rt.assign(c, v)
		chosen[c] = ctx.VMs[v]
	}
	out := make([]Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = Assignment{Cloudlet: c, VM: chosen[c]}
	}
	return out, nil
}

func init() {
	Register("deadline", func() Scheduler { return NewDeadline() })
}
