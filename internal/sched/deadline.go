package sched

import (
	"sort"

	"bioschedsim/internal/cloud"
)

// Deadline is the SLA-aware extension scheduler: cloudlets are ordered by
// earliest deadline first (no-deadline cloudlets last, longest first) and
// each is placed on the VM that finishes it soonest given the load booked
// so far — EDF ordering over EFT placement. The paper's §I lists deadlines
// among the demands cloud schedulers must accommodate; the related work it
// cites ([10], [23]) builds priority and provisioning schemes around them.
type Deadline struct{}

// NewDeadline returns the deadline-aware scheduler.
func NewDeadline() *Deadline { return &Deadline{} }

// Name implements Scheduler.
func (*Deadline) Name() string { return "deadline" }

// Schedule implements Scheduler.
func (*Deadline) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(ctx.Cloudlets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := ctx.Cloudlets[order[a]], ctx.Cloudlets[order[b]]
		di, dj := ca.Deadline, cb.Deadline
		switch {
		//schedlint:ignore floateq Deadline 0 is the documented "unconstrained" sentinel, assigned literally and never accumulated
		case di != 0 && dj != 0:
			return di < dj // EDF among constrained cloudlets
		//schedlint:ignore floateq Deadline 0 is the documented "unconstrained" sentinel, assigned literally and never accumulated
		case di != 0:
			return true // constrained before unconstrained
		//schedlint:ignore floateq Deadline 0 is the documented "unconstrained" sentinel, assigned literally and never accumulated
		case dj != 0:
			return false
		default:
			return ca.Length > cb.Length // LPT among the rest
		}
	})
	rt := newReadyTimes(ctx)
	chosen := make([]*cloud.VM, len(ctx.Cloudlets))
	for _, i := range order {
		v := rt.bestVM(i)
		rt.assign(i, v)
		chosen[i] = ctx.VMs[v]
	}
	out := make([]Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		out[i] = Assignment{Cloudlet: c, VM: chosen[i]}
	}
	return out, nil
}

func init() {
	Register("deadline", func() Scheduler { return NewDeadline() })
	// EDF over EFT: identical cloudlets make the sort a no-op (stable ties),
	// leaving order-free earliest-finish placement.
	DeclareTraits("deadline", Traits{PermutationInvariant: true})
}
