package sched

import (
	"testing"

	"bioschedsim/internal/cloud"
)

func TestDeadlineValidAssignments(t *testing.T) {
	ctx := hetCtx(t, 8, 60, 3)
	for i, c := range ctx.Cloudlets {
		if i%2 == 0 {
			c.Deadline = 10 + float64(i)
		}
	}
	got, err := NewDeadline().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
	// Output order must match input order.
	for i, a := range got {
		if a.Cloudlet != ctx.Cloudlets[i] {
			t.Fatalf("assignment %d out of input order", i)
		}
	}
}

func TestDeadlineEDFOrdering(t *testing.T) {
	// Two tight-deadline cloudlets and many unconstrained: the constrained
	// ones must book first, landing on the fastest available VMs.
	ctx := hetCtx(t, 5, 40, 7)
	tight := []*cloud.Cloudlet{ctx.Cloudlets[10], ctx.Cloudlets[30]}
	for _, c := range tight {
		c.Deadline = 0.001 // effectively "as early as possible"
	}
	got, err := NewDeadline().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A constrained cloudlet must sit alone on its VM's booked queue head:
	// its estimated completion equals its solo execution on that VM.
	byCloudlet := map[*cloud.Cloudlet]*cloud.VM{}
	for _, a := range got {
		byCloudlet[a.Cloudlet] = a.VM
	}
	for _, c := range tight {
		vm := byCloudlet[c]
		if vm == nil {
			t.Fatal("tight cloudlet unassigned")
		}
	}
}

func TestDeadlineImprovesCompliance(t *testing.T) {
	// Moderately slack deadlines: deadline-aware scheduling must meet at
	// least as many as the base test does.
	mkCtx := func() *Context {
		ctx := hetCtx(t, 10, 100, 9)
		for _, c := range ctx.Cloudlets {
			best := ctx.VMs[0].EstimateExecTime(c)
			for _, vm := range ctx.VMs[1:] {
				if tt := vm.EstimateExecTime(c); tt < best {
					best = tt
				}
			}
			c.Deadline = best * 6
		}
		return ctx
	}
	met := func(ctx *Context, as []Assignment) int {
		// Estimated completion per booked order approximates compliance
		// without running the simulator: completion = booked load on the VM
		// at assignment time, which Load() exposes only in aggregate — use
		// a simple sequential booking replay instead.
		loads := map[*cloud.VM]float64{}
		n := 0
		for _, a := range as {
			loads[a.VM] += a.VM.EstimateExecTime(a.Cloudlet)
			if loads[a.VM] <= a.Cloudlet.Deadline {
				n++
			}
		}
		return n
	}
	ctxD := mkCtx()
	dAs, err := NewDeadline().Schedule(ctxD)
	if err != nil {
		t.Fatal(err)
	}
	ctxB := mkCtx()
	bAs, err := NewRoundRobin().Schedule(ctxB)
	if err != nil {
		t.Fatal(err)
	}
	if met(ctxD, dAs) < met(ctxB, bAs) {
		t.Fatalf("deadline scheduler met %d estimated deadlines, base %d", met(ctxD, dAs), met(ctxB, bAs))
	}
}

func TestDeadlineRegistered(t *testing.T) {
	s, err := New("deadline")
	if err != nil || s.Name() != "deadline" {
		t.Fatalf("registry: %v %v", s, err)
	}
}
