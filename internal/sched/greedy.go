package sched

import (
	"sort"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
)

// readyTimes tracks the estimated time at which each VM becomes free, the
// standard bookkeeping of list-scheduling heuristics. All Eq. 6 estimates
// come from one shared objective.Matrix built per Schedule call, so peeking
// at a completion time and committing the assignment read the same cached
// cell instead of recomputing the estimate.
type readyTimes struct {
	mx    *objective.Matrix
	ready []float64
}

func newReadyTimes(ctx *Context) *readyTimes {
	return &readyTimes{
		mx:    objective.NewMatrix(ctx.Cloudlets, ctx.VMs, objective.Options{}),
		ready: make([]float64, len(ctx.VMs)),
	}
}

// completion returns the estimated completion time of cloudlet i on VM v.
func (r *readyTimes) completion(i, v int) float64 {
	return r.ready[v] + r.mx.Exec(i, v)
}

// assign books cloudlet i onto VM v.
func (r *readyTimes) assign(i, v int) {
	r.ready[v] += r.mx.Exec(i, v)
}

// bestVM returns the VM index minimizing completion time for cloudlet i.
func (r *readyTimes) bestVM(i int) int {
	best, bestCT := 0, r.completion(i, 0)
	for v := 1; v < r.mx.M(); v++ {
		if ct := r.completion(i, v); ct < bestCT {
			best, bestCT = v, ct
		}
	}
	return best
}

// Greedy is first-come-first-served earliest-finish-time mapping: each
// cloudlet, in submission order, goes to the VM that would finish it
// soonest given the load booked so far. O(n·m); the cheapest
// heterogeneity-aware baseline.
type Greedy struct{}

// NewGreedy returns the greedy EFT scheduler.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Scheduler.
func (*Greedy) Name() string { return "greedy" }

// Schedule implements Scheduler.
func (*Greedy) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	rt := newReadyTimes(ctx)
	out := make([]Assignment, len(ctx.Cloudlets))
	for i, c := range ctx.Cloudlets {
		v := rt.bestVM(i)
		rt.assign(i, v)
		out[i] = Assignment{Cloudlet: c, VM: ctx.VMs[v]}
	}
	return out, nil
}

// MinMin is the classic Min-Min heuristic: repeatedly assign the cloudlet
// whose best completion time is smallest. Short tasks schedule first, which
// minimizes average completion at some cost in makespan. O(n²) in the
// cloudlet count (with the per-cloudlet best VM cached between rounds).
type MinMin struct{}

// NewMinMin returns the Min-Min scheduler.
func NewMinMin() *MinMin { return &MinMin{} }

// Name implements Scheduler.
func (*MinMin) Name() string { return "minmin" }

// Schedule implements Scheduler.
func (*MinMin) Schedule(ctx *Context) ([]Assignment, error) {
	return minMaxSchedule(ctx, false)
}

// MaxMin is the improved Max-Min of the related work [4]: assign the
// *largest* remaining cloudlet to the VM that completes it earliest (the
// least-loaded capable VM), pulling long tasks forward to cut makespan.
type MaxMin struct{}

// NewMaxMin returns the improved Max-Min scheduler.
func NewMaxMin() *MaxMin { return &MaxMin{} }

// Name implements Scheduler.
func (*MaxMin) Name() string { return "maxmin" }

// Schedule implements Scheduler.
func (*MaxMin) Schedule(ctx *Context) ([]Assignment, error) {
	return minMaxSchedule(ctx, true)
}

// minMaxSchedule implements both Min-Min (pickMax=false) and Max-Min
// (pickMax=true). Each round recomputes the best completion time only for
// cloudlets whose cached best VM was the one just loaded, which keeps the
// common case near O(n·m + n²/m) instead of a full O(n²·m).
func minMaxSchedule(ctx *Context, pickMax bool) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	rt := newReadyTimes(ctx)
	n := len(ctx.Cloudlets)
	type cand struct {
		idx  int // cloudlet index
		vm   int
		ct   float64
		done bool
	}
	cands := make([]cand, n)
	for i := range ctx.Cloudlets {
		v := rt.bestVM(i)
		cands[i] = cand{idx: i, vm: v, ct: rt.completion(i, v)}
	}
	length := func(i int) float64 { return ctx.Cloudlets[i].Length }
	out := make([]Assignment, 0, n)
	for len(out) < n {
		pick := -1
		for i := range cands {
			if cands[i].done {
				continue
			}
			if pick == -1 {
				pick = i
				continue
			}
			if pickMax {
				// Max-Min compares by task size first: largest task, then
				// earliest completion for determinism.
				if length(cands[i].idx) > length(cands[pick].idx) ||
					// The tie-break compares raw input lengths (Table IV/VI data),
					// not computed sums; exact grouping is intended.
					(length(cands[i].idx) == length(cands[pick].idx) && cands[i].ct < cands[pick].ct) { //schedlint:ignore floateq tie-break on raw input lengths, not computed sums
					pick = i
				}
			} else if cands[i].ct < cands[pick].ct {
				pick = i
			}
		}
		chosen := &cands[pick]
		// Refresh the cached best VM: it may be stale if that VM was loaded
		// since the cache was computed.
		v := rt.bestVM(chosen.idx)
		rt.assign(chosen.idx, v)
		out = append(out, Assignment{Cloudlet: ctx.Cloudlets[chosen.idx], VM: ctx.VMs[v]})
		chosen.done = true
		// Invalidate caches pointing at the VM we just loaded.
		for i := range cands {
			if cands[i].done || cands[i].vm != v {
				continue
			}
			nv := rt.bestVM(cands[i].idx)
			cands[i].vm, cands[i].ct = nv, rt.completion(cands[i].idx, nv)
		}
	}
	return out, nil
}

// Sufferage is the classic heterogeneous-scheduling heuristic: each round,
// every unassigned cloudlet computes how much it would "suffer" if denied
// its best VM (second-best minus best completion time); the cloudlet with
// the largest sufferage books its best VM first. It often beats both
// Min-Min and Max-Min on heterogeneous plants and rounds out the classical
// baseline set the bio-inspired algorithms are measured against.
type Sufferage struct{}

// NewSufferage returns the sufferage scheduler.
func NewSufferage() *Sufferage { return &Sufferage{} }

// Name implements Scheduler.
func (*Sufferage) Name() string { return "sufferage" }

// Schedule implements Scheduler.
func (*Sufferage) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	rt := newReadyTimes(ctx)
	n := len(ctx.Cloudlets)
	type cand struct {
		idx       int // cloudlet index
		best      int // VM index of best completion
		sufferage float64
		done      bool
	}
	// bestTwo computes the best VM and the sufferage value for cloudlet i.
	bestTwo := func(i int) (int, float64) {
		best, second := -1, -1
		var bestCT, secondCT float64
		for v := range ctx.VMs {
			ct := rt.completion(i, v)
			switch {
			case best == -1 || ct < bestCT:
				second, secondCT = best, bestCT
				best, bestCT = v, ct
			case second == -1 || ct < secondCT:
				second, secondCT = v, ct
			}
		}
		if second == -1 {
			return best, 0 // single-VM fleet: nothing to suffer
		}
		return best, secondCT - bestCT
	}
	cands := make([]cand, n)
	for i := range ctx.Cloudlets {
		b, s := bestTwo(i)
		cands[i] = cand{idx: i, best: b, sufferage: s}
	}
	chosen := make([]*cloud.VM, n)
	for assigned := 0; assigned < n; assigned++ {
		pick := -1
		for i := range cands {
			if cands[i].done {
				continue
			}
			if pick == -1 || cands[i].sufferage > cands[pick].sufferage {
				pick = i
			}
		}
		chosenCand := &cands[pick]
		// Refresh: the cached best may be stale.
		b, _ := bestTwo(chosenCand.idx)
		rt.assign(chosenCand.idx, b)
		chosen[chosenCand.idx] = ctx.VMs[b]
		chosenCand.done = true
		// Invalidate candidates whose cached best was the VM just loaded.
		for i := range cands {
			if cands[i].done || cands[i].best != b {
				continue
			}
			nb, ns := bestTwo(cands[i].idx)
			cands[i].best, cands[i].sufferage = nb, ns
		}
	}
	out := make([]Assignment, n)
	for i, c := range ctx.Cloudlets {
		out[i] = Assignment{Cloudlet: c, VM: chosen[i]}
	}
	return out, nil
}

// CostPriority reproduces the related-work cost-based scheduler [25]: tasks
// are ranked into three priority bands by their resource-cost estimate, and
// high-cost tasks are mapped to the cheapest capable VMs first, cycling
// within cost tiers to avoid pile-ups.
type CostPriority struct{}

// NewCostPriority returns the cost-priority scheduler.
func NewCostPriority() *CostPriority { return &CostPriority{} }

// Name implements Scheduler.
func (*CostPriority) Name() string { return "costpriority" }

// Schedule implements Scheduler.
func (*CostPriority) Schedule(ctx *Context) ([]Assignment, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	// Rank VMs by resource cost rate, cheapest first.
	vms := append([]*cloud.VM(nil), ctx.VMs...)
	sort.SliceStable(vms, func(i, j int) bool {
		return cloud.ResourceCostRate(vms[i]) < cloud.ResourceCostRate(vms[j])
	})
	// Rank cloudlets by length (cost driver), longest first, split in 3 bands.
	cls := append([]*cloud.Cloudlet(nil), ctx.Cloudlets...)
	sort.SliceStable(cls, func(i, j int) bool { return cls[i].Length > cls[j].Length })
	out := make([]Assignment, 0, len(cls))
	bands := 3
	for b := 0; b < bands; b++ {
		lo, hi := b*len(cls)/bands, (b+1)*len(cls)/bands
		// Band 0 (most expensive tasks) cycles over the cheapest third of
		// VMs, band 1 the middle third, band 2 the rest.
		vlo, vhi := b*len(vms)/bands, (b+1)*len(vms)/bands
		if vhi == vlo {
			vlo, vhi = 0, len(vms)
		}
		span := vhi - vlo
		for i, c := range cls[lo:hi] {
			out = append(out, Assignment{Cloudlet: c, VM: vms[vlo+i%span]})
		}
	}
	return out, nil
}

func init() {
	Register("greedy", func() Scheduler { return NewGreedy() })
	Register("minmin", func() Scheduler { return NewMinMin() })
	Register("maxmin", func() Scheduler { return NewMaxMin() })
	Register("sufferage", func() Scheduler { return NewSufferage() })
	Register("costpriority", func() Scheduler { return NewCostPriority() })
	// On identical cloudlets every candidate ties, so the list heuristics
	// degenerate to load-state-driven placement independent of input order.
	DeclareTraits("greedy", Traits{PermutationInvariant: true})
	DeclareTraits("minmin", Traits{PermutationInvariant: true})
	DeclareTraits("maxmin", Traits{PermutationInvariant: true})
	DeclareTraits("sufferage", Traits{PermutationInvariant: true})
	DeclareTraits("costpriority", Traits{PermutationInvariant: true})
}
