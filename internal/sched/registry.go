package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a Scheduler with its package defaults. Algorithm packages
// (aco, hbo, rbs, ...) register themselves in their init functions so the
// CLI and the experiment harness can look algorithms up by name.
type Factory func() Scheduler

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a scheduler constructor available under name. It panics on
// duplicates — registration happens at init time, where failing fast is the
// only sensible behaviour.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration for %q", name))
	}
	if f == nil {
		panic(fmt.Sprintf("sched: nil factory for %q", name))
	}
	registry[name] = f
}

// Option configures a freshly built Scheduler before New returns it.
type Option func(Scheduler)

// WorkerTunable is implemented by schedulers carrying a Workers knob under
// the repository convention: 0 means GOMAXPROCS, 1 forces serial, and the
// resulting assignments are bit-identical for every worker count at a fixed
// seed. Schedulers advertise the capability via Traits.Parallel; the check
// harness holds them to the invariance contract.
type WorkerTunable interface {
	SetWorkers(workers int)
}

// WithWorkers bounds the scheduler's internal worker pool (0 = GOMAXPROCS,
// 1 = serial). Schedulers without the knob ignore it, so callers can apply
// the option unconditionally across the registry.
func WithWorkers(workers int) Option {
	return func(s Scheduler) {
		if wt, ok := s.(WorkerTunable); ok {
			wt.SetWorkers(workers)
		}
	}
}

// New builds the scheduler registered under name and applies opts in order.
func New(name string, opts ...Option) (Scheduler, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	s := f()
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Names lists registered schedulers in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
