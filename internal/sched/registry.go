package sched

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a Scheduler with its package defaults. Algorithm packages
// (aco, hbo, rbs, ...) register themselves in their init functions so the
// CLI and the experiment harness can look algorithms up by name.
type Factory func() Scheduler

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes a scheduler constructor available under name. It panics on
// duplicates — registration happens at init time, where failing fast is the
// only sensible behaviour.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration for %q", name))
	}
	if f == nil {
		panic(fmt.Sprintf("sched: nil factory for %q", name))
	}
	registry[name] = f
}

// New builds the scheduler registered under name.
func New(name string) (Scheduler, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists registered schedulers in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
