package sched

import "testing"

// tunableStub records the Workers value WithWorkers hands it.
type tunableStub struct{ workers int }

func (t *tunableStub) Name() string     { return "testopt-tunable" }
func (t *tunableStub) SetWorkers(n int) { t.workers = n }
func (t *tunableStub) Schedule(ctx *Context) ([]Assignment, error) {
	return nil, nil
}

func init() {
	Register("testopt-tunable", func() Scheduler { return &tunableStub{workers: -1} })
}

func TestNewAppliesWithWorkersToTunableSchedulers(t *testing.T) {
	s, err := New("testopt-tunable", WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*tunableStub).workers; got != 4 {
		t.Fatalf("SetWorkers saw %d, want 4", got)
	}
	// Without the option the factory value must survive untouched.
	s, err = New("testopt-tunable")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.(*tunableStub).workers; got != -1 {
		t.Fatalf("option-free New mutated workers to %d", got)
	}
}

func TestWithWorkersIsIgnoredByNonTunableSchedulers(t *testing.T) {
	// base has no Workers knob; the option must be a silent no-op so callers
	// can apply it unconditionally across the registry.
	s, err := New("base", WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(WorkerTunable); ok {
		t.Fatal("base unexpectedly implements WorkerTunable; test premise broken")
	}
}

func TestUnknownSchedulerStillErrorsWithOptions(t *testing.T) {
	if _, err := New("nosuch-scheduler", WithWorkers(2)); err == nil {
		t.Fatal("unknown name accepted")
	}
}
