// Package sched defines the scheduling interface the paper's algorithms
// implement, plus the classical baselines they are compared against: the
// CloudSim default cyclic mapper ("Base Test"), random assignment, greedy
// earliest-finish, Min-Min, the improved Max-Min of the related work [4],
// and the cost-priority scheduler of [25].
//
// Scheduling here is static batch mapping, exactly as in the paper: the
// scheduler sees the whole cloudlet list and the whole VM fleet up front and
// returns a complete assignment; the broker then injects that assignment
// into the simulator. The wall-clock duration of Schedule is the paper's
// "scheduling time" metric (Figs. 5 and 6b).
package sched

import (
	"fmt"
	"math/rand"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/objective"
)

// Context is the immutable scheduling problem handed to a Scheduler.
type Context struct {
	Cloudlets   []*cloud.Cloudlet
	VMs         []*cloud.VM
	Datacenters []*cloud.Datacenter
	// Rand is the run's seeded randomness source. Stochastic schedulers must
	// draw from it (never from global rand) so runs stay reproducible.
	Rand *rand.Rand
}

// Validate checks the context is well-formed for batch scheduling.
func (c *Context) Validate() error {
	if len(c.Cloudlets) == 0 {
		return fmt.Errorf("sched: empty cloudlet list")
	}
	if len(c.VMs) == 0 {
		return fmt.Errorf("sched: empty VM list")
	}
	for i, cl := range c.Cloudlets {
		if cl == nil {
			return fmt.Errorf("sched: nil cloudlet at index %d", i)
		}
	}
	for i, vm := range c.VMs {
		if vm == nil {
			return fmt.Errorf("sched: nil VM at index %d", i)
		}
	}
	return nil
}

// Assignment maps one cloudlet to one VM.
type Assignment struct {
	Cloudlet *cloud.Cloudlet
	VM       *cloud.VM
}

// Scheduler maps a batch of cloudlets onto VMs.
type Scheduler interface {
	// Name identifies the algorithm in reports ("aco", "hbo", "base", ...).
	Name() string
	// Schedule returns exactly one assignment per cloudlet in ctx. It must
	// not mutate the cloudlets or VMs; execution happens later.
	Schedule(ctx *Context) ([]Assignment, error)
}

// ValidateAssignments checks that got covers every cloudlet in ctx exactly
// once and only uses VMs from ctx. Experiment harnesses run this after every
// Schedule call so a buggy algorithm fails loudly instead of skewing metrics.
func ValidateAssignments(ctx *Context, got []Assignment) error {
	if len(got) != len(ctx.Cloudlets) {
		return fmt.Errorf("sched: %d assignments for %d cloudlets", len(got), len(ctx.Cloudlets))
	}
	vmSet := make(map[*cloud.VM]struct{}, len(ctx.VMs))
	for _, vm := range ctx.VMs {
		vmSet[vm] = struct{}{}
	}
	seen := make(map[*cloud.Cloudlet]struct{}, len(got))
	for i, a := range got {
		if a.Cloudlet == nil || a.VM == nil {
			return fmt.Errorf("sched: nil entry in assignment %d", i)
		}
		if _, ok := vmSet[a.VM]; !ok {
			return fmt.Errorf("sched: assignment %d uses VM %d not in context", i, a.VM.ID)
		}
		if _, dup := seen[a.Cloudlet]; dup {
			return fmt.Errorf("sched: cloudlet %d assigned twice", a.Cloudlet.ID)
		}
		seen[a.Cloudlet] = struct{}{}
	}
	for _, cl := range ctx.Cloudlets {
		if _, ok := seen[cl]; !ok {
			return fmt.Errorf("sched: cloudlet %d not assigned", cl.ID)
		}
	}
	return nil
}

// Split converts assignments into the parallel slices cloud.Execute expects.
func Split(assignments []Assignment) ([]*cloud.Cloudlet, []*cloud.VM) {
	cls := make([]*cloud.Cloudlet, len(assignments))
	vms := make([]*cloud.VM, len(assignments))
	for i, a := range assignments {
		cls[i] = a.Cloudlet
		vms[i] = a.VM
	}
	return cls, vms
}

// Load summarizes the estimated execution seconds each VM would absorb under
// an assignment; schedulers and tests use it to reason about balance. It
// delegates to the shared evaluation layer so the helper and the search
// algorithms can never drift on Eq. 6/8 semantics.
func Load(assignments []Assignment) map[*cloud.VM]float64 {
	cls, vms := Split(assignments)
	return objective.VMLoads(cls, vms)
}

// EstimatedMakespan returns the max per-VM estimated load (Eq. 8) — the
// quantity compute-oriented schedulers try to minimize — via the shared
// evaluation layer.
func EstimatedMakespan(assignments []Assignment) float64 {
	cls, vms := Split(assignments)
	return objective.EstimatedMakespan(cls, vms)
}
