package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bioschedsim/internal/cloud"
)

// hetCtx builds a heterogeneous scheduling context: nVMs VMs with MIPS
// spread over [500,4000] placed across two datacenters with different
// prices, and nCls cloudlets with lengths spread over [1000,20000].
func hetCtx(t testing.TB, nVMs, nCls int, seed int64) *Context {
	t.Helper()
	mkHosts := func(base, n int) []*cloud.Host {
		hosts := make([]*cloud.Host, n)
		for i := range hosts {
			hosts[i] = cloud.NewHost(base+i, cloud.NewPEs(16, 4000), 1<<20, 1<<20, 1<<30)
		}
		return hosts
	}
	nh := nVMs/8 + 1
	dcs := []*cloud.Datacenter{
		cloud.NewDatacenter(0, "pricey", cloud.Characteristics{CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3}, mkHosts(0, nh)),
		cloud.NewDatacenter(1, "cheap", cloud.Characteristics{CostPerMemory: 0.01, CostPerStorage: 0.001, CostPerBandwidth: 0.01, CostPerProcessing: 3}, mkHosts(nh, nh)),
	}
	r := rand.New(rand.NewSource(seed))
	vms := make([]*cloud.VM, nVMs)
	for i := range vms {
		vms[i] = cloud.NewVM(i, 500+r.Float64()*3500, 1, 512, 500, 5000)
	}
	var hosts []*cloud.Host
	for _, dc := range dcs {
		hosts = append(hosts, dc.Hosts...)
	}
	if err := cloud.Allocate(cloud.LeastLoaded{}, hosts, vms); err != nil {
		t.Fatal(err)
	}
	cls := make([]*cloud.Cloudlet, nCls)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 1000+r.Float64()*19000, 1, 300, 300)
	}
	return &Context{Cloudlets: cls, VMs: vms, Datacenters: dcs, Rand: rand.New(rand.NewSource(seed + 1))}
}

// homCtx builds a homogeneous context: identical VMs and cloudlets.
func homCtx(t testing.TB, nVMs, nCls int) *Context {
	t.Helper()
	hosts := []*cloud.Host{cloud.NewHost(0, cloud.NewPEs(nVMs, 1000), 1<<30, 1<<30, 1<<40)}
	dc := cloud.NewDatacenter(0, "dc", cloud.Characteristics{CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3}, hosts)
	vms := make([]*cloud.VM, nVMs)
	for i := range vms {
		vms[i] = cloud.NewVM(i, 1000, 1, 512, 500, 5000)
	}
	if err := cloud.Allocate(cloud.FirstFit{}, hosts, vms); err != nil {
		t.Fatal(err)
	}
	cls := make([]*cloud.Cloudlet, nCls)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 250, 1, 300, 300)
	}
	return &Context{Cloudlets: cls, VMs: vms, Datacenters: []*cloud.Datacenter{dc}, Rand: rand.New(rand.NewSource(7))}
}

func TestContextValidate(t *testing.T) {
	ctx := homCtx(t, 2, 4)
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Context{VMs: ctx.VMs}).Validate(); err == nil {
		t.Fatal("empty cloudlets accepted")
	}
	if err := (&Context{Cloudlets: ctx.Cloudlets}).Validate(); err == nil {
		t.Fatal("empty VMs accepted")
	}
	bad := homCtx(t, 2, 4)
	bad.Cloudlets[1] = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil cloudlet accepted")
	}
	bad2 := homCtx(t, 2, 4)
	bad2.VMs[0] = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("nil VM accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	ctx := homCtx(t, 3, 10)
	got, err := NewRoundRobin().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
	for i, a := range got {
		if a.VM != ctx.VMs[i%3] {
			t.Fatalf("assignment %d: VM %d, want %d", i, a.VM.ID, ctx.VMs[i%3].ID)
		}
	}
}

func TestRoundRobinBalancedCounts(t *testing.T) {
	ctx := homCtx(t, 4, 40)
	got, _ := NewRoundRobin().Schedule(ctx)
	counts := map[*cloud.VM]int{}
	for _, a := range got {
		counts[a.VM]++
	}
	for vm, n := range counts {
		if n != 10 {
			t.Fatalf("VM %d received %d cloudlets, want 10", vm.ID, n)
		}
	}
}

func TestRandomCoversAndSeeds(t *testing.T) {
	ctx := hetCtx(t, 10, 200, 3)
	got, err := NewRandom().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
	// Same seed ⇒ same assignment.
	ctx2 := hetCtx(t, 10, 200, 3)
	got2, _ := NewRandom().Schedule(ctx2)
	for i := range got {
		if got[i].VM.ID != got2[i].VM.ID {
			t.Fatalf("random scheduler not reproducible at %d", i)
		}
	}
}

func TestRandomRequiresRand(t *testing.T) {
	ctx := homCtx(t, 2, 2)
	ctx.Rand = nil
	if _, err := NewRandom().Schedule(ctx); err == nil {
		t.Fatal("expected error without ctx.Rand")
	}
}

func TestGreedyBeatsRoundRobinOnHeterogeneous(t *testing.T) {
	ctx := hetCtx(t, 20, 400, 11)
	g, err := NewGreedy().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rr, _ := NewRoundRobin().Schedule(ctx)
	if EstimatedMakespan(g) >= EstimatedMakespan(rr) {
		t.Fatalf("greedy makespan %v not better than round-robin %v",
			EstimatedMakespan(g), EstimatedMakespan(rr))
	}
}

func TestMinMinMaxMinValid(t *testing.T) {
	ctx := hetCtx(t, 15, 150, 5)
	for _, s := range []Scheduler{NewMinMin(), NewMaxMin()} {
		got, err := s.Schedule(ctx)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := ValidateAssignments(ctx, got); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestMaxMinSchedulesLongestFirst(t *testing.T) {
	ctx := hetCtx(t, 5, 50, 9)
	got, _ := NewMaxMin().Schedule(ctx)
	// The first assignment must be the longest cloudlet.
	var maxLen float64
	for _, c := range ctx.Cloudlets {
		if c.Length > maxLen {
			maxLen = c.Length
		}
	}
	if got[0].Cloudlet.Length != maxLen {
		t.Fatalf("max-min first pick length %v, want %v", got[0].Cloudlet.Length, maxLen)
	}
}

func TestMinMinSchedulesShortestFirst(t *testing.T) {
	ctx := hetCtx(t, 5, 50, 9)
	got, _ := NewMinMin().Schedule(ctx)
	first := got[0].Cloudlet
	// First pick must have the globally smallest best-case completion time,
	// which on an empty plant is the smallest EstimateExecTime over VMs.
	best := func(c *cloud.Cloudlet) float64 {
		bv := c.Length
		b := false
		for _, vm := range ctx.VMs {
			if tt := vm.EstimateExecTime(c); !b || tt < bv {
				bv, b = tt, true
			}
		}
		return bv
	}
	for _, c := range ctx.Cloudlets {
		if best(c) < best(first)-1e-12 {
			t.Fatalf("min-min first pick not minimal: %v vs cloudlet %d %v", best(first), c.ID, best(c))
		}
	}
}

func TestSufferageValidAndCompetitive(t *testing.T) {
	ctx := hetCtx(t, 12, 150, 17)
	suf, err := NewSufferage().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, suf); err != nil {
		t.Fatal(err)
	}
	rr, _ := NewRoundRobin().Schedule(ctx)
	if EstimatedMakespan(suf) >= EstimatedMakespan(rr) {
		t.Fatalf("sufferage makespan %v not below round-robin %v",
			EstimatedMakespan(suf), EstimatedMakespan(rr))
	}
}

func TestSufferageSingleVM(t *testing.T) {
	ctx := hetCtx(t, 1, 10, 3)
	got, err := NewSufferage().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, got); err != nil {
		t.Fatal(err)
	}
}

func TestSufferageFirstPickMaximizesSufferage(t *testing.T) {
	ctx := hetCtx(t, 4, 30, 21)
	got, _ := NewSufferage().Schedule(ctx)
	// The output preserves input order, so recompute which cloudlet should
	// have booked first on an empty plant and check it got its best VM.
	bestTwo := func(c *cloud.Cloudlet) (int, float64) {
		best, second := -1, -1
		var bct, sct float64
		for v, vm := range ctx.VMs {
			ct := vm.EstimateExecTime(c)
			switch {
			case best == -1 || ct < bct:
				second, sct = best, bct
				best, bct = v, ct
			case second == -1 || ct < sct:
				second, sct = v, ct
			}
		}
		_ = second
		return best, sct - bct
	}
	var maxIdx int
	var maxSuf float64 = -1
	for i, c := range ctx.Cloudlets {
		if _, s := bestTwo(c); s > maxSuf {
			maxSuf, maxIdx = s, i
		}
	}
	wantVM, _ := bestTwo(ctx.Cloudlets[maxIdx])
	if got[maxIdx].VM != ctx.VMs[wantVM] {
		t.Fatalf("max-sufferage cloudlet %d did not get its best VM", maxIdx)
	}
}

func TestCostPriorityPrefersCheapVMs(t *testing.T) {
	ctx := hetCtx(t, 20, 300, 13)
	cp, err := NewCostPriority().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAssignments(ctx, cp); err != nil {
		t.Fatal(err)
	}
	rr, _ := NewRoundRobin().Schedule(ctx)
	cost := func(as []Assignment) float64 {
		var sum float64
		for _, a := range as {
			sum += cloud.ProcessingCost(a.Cloudlet, a.VM)
		}
		return sum
	}
	if cost(cp) >= cost(rr) {
		t.Fatalf("cost-priority %v not cheaper than round-robin %v", cost(cp), cost(rr))
	}
}

// TestAllBaselinesProduceValidAssignments is the property every registered
// baseline must satisfy on arbitrary problem sizes.
func TestAllBaselinesProduceValidAssignments(t *testing.T) {
	f := func(seed int64, vmN, clN uint8) bool {
		nVMs := 1 + int(vmN)%12
		nCls := 1 + int(clN)%60
		for _, name := range []string{"base", "random", "greedy", "minmin", "maxmin", "sufferage", "costpriority"} {
			s, err := New(name)
			if err != nil {
				return false
			}
			ctx := hetCtx(t, nVMs, nCls, seed)
			got, err := s.Schedule(ctx)
			if err != nil {
				return false
			}
			if ValidateAssignments(ctx, got) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAssignmentsCatchesBugs(t *testing.T) {
	ctx := homCtx(t, 2, 3)
	good, _ := NewRoundRobin().Schedule(ctx)

	if err := ValidateAssignments(ctx, good[:2]); err == nil {
		t.Fatal("short assignment accepted")
	}
	dup := append([]Assignment(nil), good...)
	dup[2] = dup[0]
	if err := ValidateAssignments(ctx, dup); err == nil {
		t.Fatal("duplicate cloudlet accepted")
	}
	foreign := append([]Assignment(nil), good...)
	foreign[0].VM = cloud.NewVM(99, 1000, 1, 0, 0, 0)
	if err := ValidateAssignments(ctx, foreign); err == nil {
		t.Fatal("foreign VM accepted")
	}
	nilled := append([]Assignment(nil), good...)
	nilled[1].VM = nil
	if err := ValidateAssignments(ctx, nilled); err == nil {
		t.Fatal("nil VM accepted")
	}
}

func TestSplitAndLoad(t *testing.T) {
	ctx := homCtx(t, 2, 4)
	as, _ := NewRoundRobin().Schedule(ctx)
	cls, vms := Split(as)
	if len(cls) != 4 || len(vms) != 4 {
		t.Fatalf("split lengths: %d %d", len(cls), len(vms))
	}
	for i := range as {
		if cls[i] != as[i].Cloudlet || vms[i] != as[i].VM {
			t.Fatalf("split mismatch at %d", i)
		}
	}
	load := Load(as)
	// 2 cloudlets per VM, each estimate 250/1000 + 300/500 = 0.85 s.
	for vm, l := range load {
		if l < 1.69 || l > 1.71 {
			t.Fatalf("VM %d load %v, want 1.7", vm.ID, l)
		}
	}
	if m := EstimatedMakespan(as); m < 1.69 || m > 1.71 {
		t.Fatalf("makespan %v", m)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	s, err := New("base")
	if err != nil || s.Name() != "base" {
		t.Fatalf("New(base): %v %v", s, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("base", func() Scheduler { return NewRoundRobin() })
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("brandnew", nil)
}
