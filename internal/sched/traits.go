package sched

import "fmt"

// Traits is per-scheduler correctness metadata declared alongside
// registration. The property-testing harness (internal/check) reads it to
// decide which invariants apply to which algorithm: every scheduler is
// subject to conservation, determinism, and the differential oracle, but
// e.g. permutation invariance only holds for algorithms whose placement
// decisions do not depend on submission order (RBS's random-walk admission
// is order-dependent, so it must not be declared invariant).
//
// Traits are declarative claims, not measurements: declaring a trait opts
// the scheduler into the corresponding check, and an undeclared trait simply
// skips it. Declare conservatively.
type Traits struct {
	// Stochastic reports that Schedule draws from ctx.Rand. Deterministic
	// replays must therefore reconstruct the context's random stream from the
	// scenario seed; the harness does this for every scheduler, but the flag
	// lets tooling distinguish search heuristics from fixed-rule mappers.
	Stochastic bool
	// PermutationInvariant claims that on workloads of identical cloudlets,
	// permuting the submission order leaves the assignment's estimated
	// makespan (Eq. 8) unchanged. True for order-free mappers (round-robin,
	// EFT variants, EDF); false for algorithms whose randomness or group
	// bookkeeping is consumed per submission position (RBS).
	PermutationInvariant bool
	// Parallel claims the scheduler implements WorkerTunable: its hot paths
	// fan out over a bounded worker pool under the shared Workers convention
	// (0 = GOMAXPROCS, 1 = serial), and its assignments are bit-identical for
	// every worker count at a fixed seed. Declaring it opts the scheduler
	// into the check harness's worker-invariance suite.
	Parallel bool
}

var traits = map[string]Traits{}

// DeclareTraits records correctness metadata for a registered scheduler.
// Like Register it runs at init time and panics on duplicates, so a package
// cannot silently overwrite another's claims.
func DeclareTraits(name string, t Traits) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := traits[name]; dup {
		panic(fmt.Sprintf("sched: duplicate traits declaration for %q", name))
	}
	traits[name] = t
}

// TraitsOf returns the declared traits for name. Undeclared schedulers get
// the zero Traits (no optional invariants claimed) and ok=false.
func TraitsOf(name string) (Traits, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	t, ok := traits[name]
	return t, ok
}
