// Package schedtest provides shared fixtures for scheduler tests: canned
// heterogeneous and homogeneous environments mirroring the paper's Tables
// III–VII, small enough for unit tests and property checks. The fixtures
// themselves live in internal/check (the property-testing harness checks
// the same environments it hands to unit tests); this package wraps them
// with the testing.TB error handling scheduler tests want.
package schedtest

import (
	"testing"

	"bioschedsim/internal/check"
	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"
)

// Heterogeneous builds a two-datacenter context with nVMs VMs whose MIPS
// are uniform in [500,4000] (Table V) and nCls cloudlets with lengths in
// [1000,20000] (Table VI). Datacenter 0 carries Table VII's expensive end
// of the price ranges, datacenter 1 the cheap end. All randomness is drawn
// from xrand streams of seed.
func Heterogeneous(tb testing.TB, nVMs, nCls int, seed int64) *sched.Context {
	tb.Helper()
	b, err := check.HeterogeneousFixture(nVMs, nCls, uint64(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return b.Ctx
}

// Homogeneous builds a single-datacenter context with identical VMs
// (Table III) and identical cloudlets (Table IV), seeded through xrand
// streams.
func Homogeneous(tb testing.TB, nVMs, nCls int, seed int64) *sched.Context {
	tb.Helper()
	b, err := check.HomogeneousFixture(nVMs, nCls, uint64(seed))
	if err != nil {
		tb.Fatal(err)
	}
	return b.Ctx
}

// TotalCost sums ProcessingCost over an assignment without executing it.
func TotalCost(assignments []sched.Assignment) float64 {
	var sum float64
	for _, a := range assignments {
		sum += cloud.ProcessingCost(a.Cloudlet, a.VM)
	}
	return sum
}
