// Package schedtest provides shared fixtures for scheduler tests: canned
// heterogeneous and homogeneous environments mirroring the paper's Tables
// III–VII, small enough for unit tests and property checks.
package schedtest

import (
	"math/rand"
	"testing"

	"bioschedsim/internal/cloud"
	"bioschedsim/internal/sched"
)

// Heterogeneous builds a two-datacenter context with nVMs VMs whose MIPS
// are uniform in [500,4000] (Table V) and nCls cloudlets with lengths in
// [1000,20000] (Table VI). Datacenter 0 carries Table VII's expensive end
// of the price ranges, datacenter 1 the cheap end.
func Heterogeneous(tb testing.TB, nVMs, nCls int, seed int64) *sched.Context {
	tb.Helper()
	mkHosts := func(base, n int) []*cloud.Host {
		hosts := make([]*cloud.Host, n)
		for i := range hosts {
			hosts[i] = cloud.NewHost(base+i, cloud.NewPEs(16, 4000), 1<<20, 1<<20, 1<<30)
		}
		return hosts
	}
	nh := nVMs/8 + 1
	dcs := []*cloud.Datacenter{
		cloud.NewDatacenter(0, "pricey", cloud.Characteristics{
			CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
		}, mkHosts(0, nh)),
		cloud.NewDatacenter(1, "cheap", cloud.Characteristics{
			CostPerMemory: 0.01, CostPerStorage: 0.001, CostPerBandwidth: 0.01, CostPerProcessing: 3,
		}, mkHosts(nh, nh)),
	}
	r := rand.New(rand.NewSource(seed))
	vms := make([]*cloud.VM, nVMs)
	for i := range vms {
		vms[i] = cloud.NewVM(i, 500+r.Float64()*3500, 1, 512, 500, 5000)
	}
	var hosts []*cloud.Host
	for _, dc := range dcs {
		hosts = append(hosts, dc.Hosts...)
	}
	if err := cloud.Allocate(cloud.LeastLoaded{}, hosts, vms); err != nil {
		tb.Fatal(err)
	}
	cls := make([]*cloud.Cloudlet, nCls)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 1000+r.Float64()*19000, 1, 300, 300)
	}
	return &sched.Context{
		Cloudlets: cls, VMs: vms, Datacenters: dcs,
		Rand: rand.New(rand.NewSource(seed + 1)),
	}
}

// Homogeneous builds a single-datacenter context with identical VMs
// (Table III) and identical cloudlets (Table IV).
func Homogeneous(tb testing.TB, nVMs, nCls int, seed int64) *sched.Context {
	tb.Helper()
	nh := nVMs/16 + 1
	hosts := make([]*cloud.Host, nh)
	for i := range hosts {
		hosts[i] = cloud.NewHost(i, cloud.NewPEs(16, 1000), 1<<24, 1<<24, 1<<36)
	}
	dc := cloud.NewDatacenter(0, "dc", cloud.Characteristics{
		CostPerMemory: 0.05, CostPerStorage: 0.004, CostPerBandwidth: 0.05, CostPerProcessing: 3,
	}, hosts)
	vms := make([]*cloud.VM, nVMs)
	for i := range vms {
		vms[i] = cloud.NewVM(i, 1000, 1, 512, 500, 5000)
	}
	if err := cloud.Allocate(cloud.FirstFit{}, hosts, vms); err != nil {
		tb.Fatal(err)
	}
	cls := make([]*cloud.Cloudlet, nCls)
	for i := range cls {
		cls[i] = cloud.NewCloudlet(i, 250, 1, 300, 300)
	}
	return &sched.Context{
		Cloudlets: cls, VMs: vms, Datacenters: []*cloud.Datacenter{dc},
		Rand: rand.New(rand.NewSource(seed)),
	}
}

// TotalCost sums ProcessingCost over an assignment without executing it.
func TotalCost(assignments []sched.Assignment) float64 {
	var sum float64
	for _, a := range assignments {
		sum += cloud.ProcessingCost(a.Cloudlet, a.VM)
	}
	return sum
}
